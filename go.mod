module tagmatch

go 1.24
