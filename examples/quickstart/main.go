// Quickstart: the smallest complete TagMatch program.
//
// Build a tiny database of user interests, consolidate it, and run both
// match and match-unique queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tagmatch"
)

func main() {
	// One simulated GPU; CPU-only (GPUs: 0) behaves identically but
	// runs the subset-match stage on the host.
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// add-set(set, key): stage interests. Keys are application values —
	// here, user ids. The same key may be attached to several sets, and
	// the same set to several keys.
	eng.AddSet([]string{"en_go", "en_gpu"}, 1001)
	eng.AddSet([]string{"en_go"}, 1002)
	eng.AddSet([]string{"en_gpu", "en_cuda"}, 1003)
	eng.AddSet([]string{"fr_cuisine"}, 1004)
	eng.AddSet([]string{"en_go", "en_gpu"}, 1002) // 1002 also follows this pair

	// consolidate(): build the partitioned index (Algorithm 1) and
	// upload the tagset table to the device.
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	// A tweet tagged {go, gpu, eurosys} reaches everyone whose interest
	// set is contained in the tweet's tags.
	tweet := []string{"en_go", "en_gpu", "en_eurosys"}

	keys, err := eng.Match(tweet) // multiset: 1002 appears twice
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("match        →", keys)

	unique, err := eng.MatchUnique(tweet) // deduplicated
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("match-unique →", unique)

	st := eng.Stats()
	fmt.Printf("database: %d unique sets in %d partitions, %d keys\n",
		st.UniqueSets, st.Partitions, st.Keys)
}
