// Twitterstream: the paper's headline scenario (§4.2) end to end.
//
// Generate a scaled Twitter-like workload — users with language-prefixed
// interest sets derived from followed publishers — load it into a
// two-GPU TagMatch engine, and stream tweets through match-unique,
// reporting throughput and latency. This is the application the paper
// sizes against Twitter's 6000 tweets/second.
//
//	go run ./examples/twitterstream [-users 50000] [-tweets 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"tagmatch"
	"tagmatch/internal/metrics"
	"tagmatch/internal/workload"
)

func main() {
	users := flag.Int("users", 50000, "number of users to generate")
	tweets := flag.Int("tweets", 20000, "number of tweets to stream")
	flag.Parse()

	gen, err := workload.New(workload.NewConfig(*users, 42))
	if err != nil {
		log.Fatal(err)
	}

	eng, err := tagmatch.New(tagmatch.Config{
		GPUs:              2,
		Threads:           4,
		BatchTimeout:      200 * time.Millisecond,
		RealisticGPUCosts: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Load every user's interests; keep a sample to synthesize tweets.
	var sample []workload.Interest
	start := time.Now()
	n := gen.Generate(*users, func(in workload.Interest) {
		eng.AddSet(in.Tags, tagmatch.Key(in.User))
		if len(sample) < 4096 {
			sample = append(sample, in)
		}
	})
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("loaded %d interests (%d unique sets, %d partitions) in %v; consolidate took %v\n",
		n, st.UniqueSets, st.Partitions, time.Since(start).Round(time.Millisecond), st.LastConsolidate.Round(time.Millisecond))

	// Stream tweets: each is a sampled interest plus 2-4 trending tags.
	lat := metrics.NewLatencies()
	meter := metrics.NewMeter()
	var delivered int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	streamStart := time.Now()
	for i := 0; i < *tweets; i++ {
		tweet := gen.Query(rng, sample[rng.Intn(len(sample))].Tags, -1)
		wg.Add(1)
		err := eng.SubmitUnique(tweet, func(r tagmatch.MatchResult) {
			lat.Observe(r.Latency)
			mu.Lock()
			delivered += int64(len(r.Keys))
			mu.Unlock()
			wg.Done()
		})
		if err != nil {
			log.Fatal(err)
		}
		meter.Add(1)
	}
	eng.Drain()
	wg.Wait()
	elapsed := time.Since(streamStart)

	s := lat.Summarize()
	fmt.Printf("streamed %d tweets in %v → %s input, %s fan-out\n",
		*tweets, elapsed.Round(time.Millisecond),
		metrics.FmtRate(float64(*tweets)/elapsed.Seconds()),
		metrics.FmtRate(float64(delivered)/elapsed.Seconds()))
	fmt.Printf("latency: median %v, p99 %v, max %v\n",
		s.Median.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	fmt.Printf("for reference: Twitter's 2015 average was 6000 tweets/second\n")
}
