// Adserver: the paper's introductory ad-selection example.
//
// "Within the Twitter messaging system, the first stage in ad selection
// for user queries finds a match between user attributes and targeting
// criteria across the corpus of ads, which at a minimum amounts to
// checking that the attributes of the user query contain the targeting
// criteria of the ads."
//
// Here the database holds ad campaigns keyed by campaign id, each with a
// set of targeting criteria; an incoming user request carries the user's
// attributes, and match-unique returns every campaign whose criteria are
// contained in those attributes.
//
//	go run ./examples/adserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tagmatch"
)

// campaign is one ad with its targeting criteria.
type campaign struct {
	id       tagmatch.Key
	name     string
	criteria []string
}

func main() {
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	campaigns := []campaign{
		{1, "mountain bikes", []string{"geo:ch", "sport:cycling"}},
		{2, "espresso machines", []string{"geo:it", "interest:coffee"}},
		{3, "gpu cloud credits", []string{"job:developer", "interest:ml"}},
		{4, "hiking boots", []string{"geo:ch", "sport:hiking", "age:25-40"}},
		{5, "generic cola", nil}, // empty criteria: targets everyone
	}
	names := map[tagmatch.Key]string{}
	for _, c := range campaigns {
		eng.AddSet(c.criteria, c.id)
		names[c.id] = c.name
	}
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	// Serve some user requests.
	requests := [][]string{
		{"geo:ch", "sport:cycling", "age:25-40", "job:teacher"},
		{"geo:it", "interest:coffee", "interest:ml", "job:developer"},
		{"geo:de", "sport:football"},
	}
	for _, attrs := range requests {
		ads, err := eng.MatchUnique(attrs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %v\n", attrs)
		if len(ads) == 0 {
			fmt.Println("  no eligible campaigns")
		}
		for _, id := range ads {
			fmt.Printf("  eligible: %s (campaign %d)\n", names[id], id)
		}
	}

	// A synthetic load: 100K campaigns with 1-4 criteria over a modest
	// attribute vocabulary, then a burst of requests.
	rng := rand.New(rand.NewSource(1))
	attr := func() string { return fmt.Sprintf("a:%d", rng.Intn(3000)) }
	for id := tagmatch.Key(100); id < 100_000; id++ {
		n := 1 + rng.Intn(4)
		crit := make([]string, n)
		for i := range crit {
			crit[i] = attr()
		}
		eng.AddSet(crit, id)
	}
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	const requestsN = 5000
	matched := 0
	done := make(chan int, requestsN)
	for i := 0; i < requestsN; i++ {
		attrs := make([]string, 12)
		for j := range attrs {
			attrs[j] = attr()
		}
		if err := eng.SubmitUnique(attrs, func(r tagmatch.MatchResult) {
			done <- len(r.Keys)
		}); err != nil {
			log.Fatal(err)
		}
	}
	eng.Drain()
	for i := 0; i < requestsN; i++ {
		matched += <-done
	}
	el := time.Since(start)
	fmt.Printf("\nserved %d ad requests over %d campaigns in %v (%.0f req/s, %.1f eligible ads/request)\n",
		requestsN, eng.Stats().UniqueSets, el.Round(time.Millisecond),
		requestsN/el.Seconds(), float64(matched)/requestsN)
}
