// Icnrouter: tag-based information-centric networking (ICN) forwarding.
//
// The paper's §5 relates TagMatch to ICN architectures where the
// forwarding information base (FIB) maps tag-set descriptors to next-hop
// interfaces, and forwarding a packet means finding every FIB entry
// whose descriptor is a subset of the packet's description (Papalini et
// al., ICN'14 / ANCS'16). This example builds such a router: keys are
// interface ids, stored sets are FIB descriptors, and match-unique
// computes the forwarding set of each packet.
//
//	go run ./examples/icnrouter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tagmatch"
)

func main() {
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A small FIB: interface ← descriptor. Several descriptors can
	// point to the same interface; a packet is replicated to every
	// interface with at least one covered descriptor.
	type fibEntry struct {
		iface      tagmatch.Key
		descriptor []string
	}
	fib := []fibEntry{
		{1, []string{"video", "sports"}},
		{1, []string{"news", "europe"}},
		{2, []string{"video", "music"}},
		{3, []string{"news"}},
		{3, []string{"weather", "alps"}},
	}
	for _, e := range fib {
		eng.AddSet(e.descriptor, e.iface)
	}
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	packets := [][]string{
		{"news", "europe", "politics"},
		{"video", "sports", "live", "hd"},
		{"weather", "alps", "snow"},
		{"cooking"},
	}
	for _, desc := range packets {
		ifaces, err := eng.MatchUnique(desc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packet %v → interfaces %v\n", desc, ifaces)
	}

	// Forwarding-plane load test: a FIB of 200K descriptors over 64
	// interfaces, packets with 8-tag descriptions.
	rng := rand.New(rand.NewSource(3))
	vocabulary := 5000
	tag := func() string { return fmt.Sprintf("c%d", rng.Intn(vocabulary)) }
	for i := 0; i < 200_000; i++ {
		n := 2 + rng.Intn(4)
		d := make([]string, n)
		for j := range d {
			d[j] = tag()
		}
		eng.AddSet(d, tagmatch.Key(rng.Intn(64)))
	}
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	const packetsN = 10000
	start := time.Now()
	forwarded := make(chan int, packetsN)
	for i := 0; i < packetsN; i++ {
		desc := make([]string, 8)
		for j := range desc {
			desc[j] = tag()
		}
		if err := eng.SubmitUnique(desc, func(r tagmatch.MatchResult) {
			forwarded <- len(r.Keys)
		}); err != nil {
			log.Fatal(err)
		}
	}
	eng.Drain()
	copies := 0
	for i := 0; i < packetsN; i++ {
		copies += <-forwarded
	}
	el := time.Since(start)
	st := eng.Stats()
	fmt.Printf("\nforwarded %d packets against a %d-descriptor FIB in %v (%.0f pkts/s, avg %.2f output interfaces)\n",
		packetsN, st.UniqueSets, el.Round(time.Millisecond),
		packetsN/el.Seconds(), float64(copies)/packetsN)
}
