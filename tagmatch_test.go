package tagmatch_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"tagmatch"
)

func sortKeys(k []tagmatch.Key) {
	sort.Slice(k, func(i, j int) bool { return k[i] < k[j] })
}

func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	eng.AddSet([]string{"en_go", "en_gpu"}, 1001)
	eng.AddSet([]string{"en_go"}, 1002)
	eng.AddSet([]string{"fr_cuisine"}, 1003)
	if eng.PendingOps() != 3 {
		t.Fatalf("PendingOps = %d", eng.PendingOps())
	}
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}

	keys, err := eng.MatchUnique([]string{"en_go", "en_gpu", "en_eurosys"})
	if err != nil {
		t.Fatal(err)
	}
	sortKeys(keys)
	if fmt.Sprint(keys) != "[1001 1002]" {
		t.Fatalf("keys = %v", keys)
	}

	keys, err = eng.Match([]string{"fr_cuisine", "fr_paris"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[1003]" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPublicAPICPUOnly(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.AddSet([]string{"x"}, 1)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	keys, err := eng.Match([]string{"x", "y"})
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys=%v err=%v", keys, err)
	}
}

func TestPublicAPIStreaming(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{
		GPUs: 2, Threads: 4, BatchSize: 32,
		BatchTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 500; i++ {
		eng.AddSet([]string{fmt.Sprintf("tag%d", i%50), "common"}, tagmatch.Key(i))
	}
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		err := eng.SubmitUnique([]string{fmt.Sprintf("tag%d", i%50), "common", "extra"},
			func(r tagmatch.MatchResult) {
				mu.Lock()
				total += len(r.Keys)
				mu.Unlock()
				wg.Done()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	wg.Wait()
	// Each query matches exactly the 10 sets with its tag index.
	if total != 200*10 {
		t.Fatalf("total keys = %d, want 2000", total)
	}
	st := eng.Stats()
	if st.QueriesCompleted != 200 {
		t.Fatalf("completed = %d", st.QueriesCompleted)
	}
	if len(st.DeviceBytes) != 2 {
		t.Fatalf("DeviceBytes = %v", st.DeviceBytes)
	}
}

func TestPublicAPIRemoveAndReconsolidate(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.AddSet([]string{"a"}, 1)
	eng.AddSet([]string{"a"}, 2)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	eng.RemoveSet([]string{"a"}, 1)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	keys, _ := eng.Match([]string{"a", "b"})
	if fmt.Sprint(keys) != "[2]" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPublicAPIInvalidConfig(t *testing.T) {
	if _, err := tagmatch.New(tagmatch.Config{GPUs: -1}); err == nil {
		t.Fatal("negative GPU count accepted")
	}
}

func TestPublicAPIPartitionedGPUs(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{
		GPUs: 2, Threads: 2, PartitionAcrossGPUs: true, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 300; i++ {
		eng.AddSet([]string{fmt.Sprintf("t%d", i)}, tagmatch.Key(i))
	}
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	keys, err := eng.Match([]string{"t7", "t8"})
	if err != nil {
		t.Fatal(err)
	}
	sortKeys(keys)
	if fmt.Sprint(keys) != "[7 8]" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestPublicAPISnapshot(t *testing.T) {
	src, err := tagmatch.New(tagmatch.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.AddSet([]string{"snap"}, 3)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	keys, err := dst.Match([]string{"snap", "extra"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[3]" {
		t.Fatalf("restored engine answered %v", keys)
	}
}
