// Macro-benchmarks: one per table and figure of the paper's evaluation.
//
// Each benchmark executes the corresponding experiment end to end on a
// small workload (scale and query counts reduced so a full `go test
// -bench=.` pass completes in minutes) and reports, besides ns/op,
// custom metrics extracted from the experiment's result table — the
// headline number a reader would compare against the paper.
//
// For paper-style output at larger scale, use the CLI instead:
//
//	go run ./cmd/tagmatch-bench -scale 0.002 all
package tagmatch_test

import (
	"testing"

	"tagmatch/internal/experiments"
)

// benchParams keeps macro-benchmarks tractable on small hosts.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Scale = 0.0001 // ~30K users → ~170K interests
	p.Queries = 4000
	p.SmallDBDocs = 2000
	return p
}

// report attaches a row's last value as a custom benchmark metric.
func report(b *testing.B, t *experiments.Table, rowLabel, unit string) {
	b.Helper()
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			b.ReportMetric(r.Values[len(r.Values)-1], unit)
			return
		}
	}
	b.Fatalf("row %q not found in %s", rowLabel, t.ID)
}

func BenchmarkTable1Summary(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(p)
		report(b, t, "TagMatch", "tagmatch-Kqps")
		report(b, t, "GPU-only, plain", "gpuplain-Kqps")
		report(b, t, "CPU-only, prefix tree", "tree-Kqps")
	}
}

func BenchmarkTable3Baselines(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Table3(p)
		report(b, t, "TagMatch", "tagmatch-Kqps")
		report(b, t, "ICN matcher", "icn-Kqps")
	}
}

func BenchmarkFig2QuerySizeInput(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		f2, _ := experiments.Fig2And3(p)
		report(b, f2, "TagMatch", "at+10tags-Kqps")
	}
}

func BenchmarkFig3QuerySizeOutput(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, f3 := experiments.Fig2And3(p)
		report(b, f3, "TagMatch", "at+10tags-Kkeyps")
	}
}

func BenchmarkFig4DatabaseSize(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4(p)
		report(b, t, "TagMatch match", "full-db-Kqps")
		report(b, t, "TagMatch match-unique", "full-db-unique-Kqps")
	}
}

func BenchmarkFig5Threads(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5(p)
		report(b, t, "TagMatch match", "maxthreads-Kqps")
	}
}

func BenchmarkFig6LatencyTimeouts(b *testing.B) {
	p := benchParams()
	p.Queries = 1500
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6(p)
		report(b, t, "300ms", "at300ms-median-ms")
	}
}

func BenchmarkFig7MaxPartitionSize(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(p)
		report(b, t, "match", "largest-maxp-Kqps")
	}
}

func BenchmarkFig8ConsolidateTime(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8(p)
		report(b, t, "consolidate time (s)", "full-db-seconds")
	}
}

func BenchmarkFig9MemoryUsage(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9(p)
		report(b, t, "Host (key table + index)", "host-MB")
		report(b, t, "GPUs (tagset tables)", "gpu-MB")
	}
}

func BenchmarkFig10MiniDB(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10(p)
		report(b, t, t.Rows[0].Label, "minidb-smallest-qps")
		report(b, t, t.Rows[len(t.Rows)-1].Label, "tagmatch-qps")
	}
}

func BenchmarkFig11MiniDBSharding(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11(p)
		report(b, t, "minidb cluster", "at24inst-qps")
	}
}

func BenchmarkAblationPipeline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.AblationPipeline(p)
		report(b, t, "full TagMatch", "full-Kqps")
		report(b, t, "no block pre-filter (Alg 4 off)", "noprefilter-Kqps")
	}
}

func BenchmarkAblationGPUOnly(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.AblationGPUOnly(p)
		report(b, t, "GPU-only dynamic parallelism", "dynpar-Kqps")
		report(b, t, "TagMatch (hybrid)", "hybrid-Kqps")
	}
}

func BenchmarkFamilies(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t := experiments.Families(p)
		report(b, t, "TagMatch", "tagmatch-wide-Kqps")
		report(b, t, "Hash-table subsets", "hashsub-wide-Kqps")
	}
}

func BenchmarkPreprocessRouting(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, r := experiments.Preprocess(p)
		report(b, t, "scalar routing", "scalar-Kqps")
		report(b, t, "sliced routing", "sliced-Kqps")
		b.ReportMetric(r.Speedup, "routing-speedup-x")
	}
}
