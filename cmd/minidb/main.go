// Command minidb runs one standalone instance of the document store
// used as the MongoDB stand-in in the paper's §4.4 comparison. Start
// several on different ports to hand-build the sharded deployment of
// Fig 11 (the benchmark harness automates this with ephemeral ports).
//
// Usage:
//
//	minidb [-addr 127.0.0.1:27017]
//
// The wire protocol is newline-delimited JSON; see internal/minidb.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"tagmatch/internal/minidb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27017", "listen address")
	flag.Parse()

	srv, err := minidb.NewServer(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("minidb listening on %s", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down with %d documents", srv.Store().Len())
	srv.Close()
}
