// Command tagmatch-obsdiff is the repository's perf-regression gate: a
// benchstat-style differ for the BENCH_*.json files cmd/tagmatch-bench
// emits. It runs in two modes:
//
// Diff mode — compare two result files and fail past a threshold:
//
//	tagmatch-obsdiff [-threshold 5] old.json new.json
//
// Every metric present in both files is compared; direction is inferred
// from the metric name (qps/speedup up is good; ns/us/pct/allocs/bytes
// down is good; bare counters are informational). A directional metric
// worse by more than -threshold percent is a regression, and the exit
// status is 1 (2 for usage/IO errors).
//
// Assert mode — check budgets against a single file, for checked-in
// baselines where a stored "old" run on different hardware would be
// meaningless:
//
//	tagmatch-obsdiff -assert "overhead_pct<=2" -assert "results_match>=1" file.json
//
// Metric keys are the flattened JSON paths: nested objects dot-join
// ("e2e.p99_us"), object-array elements are labeled by their identity
// fields ("e2e[routing=sliced].qps"). Run with -v to list every key.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"tagmatch/internal/benchdiff"
)

type assertList []string

func (a *assertList) String() string     { return fmt.Sprint(*a) }
func (a *assertList) Set(s string) error { *a = append(*a, s); return nil }

func main() {
	os.Exit(run())
}

func run() int {
	var asserts assertList
	threshold := flag.Float64("threshold", 5,
		"regression threshold in percent for diff mode")
	verbose := flag.Bool("v", false, "print every compared metric, not just regressions")
	flag.Var(&asserts, "assert",
		"budget check `key<=value` against a single file (repeatable; ops: <= >= < > ==)")
	flag.Parse()

	if len(asserts) > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tagmatch-obsdiff -assert 'key<=value' [...] file.json")
			return 2
		}
		return runAsserts(flag.Arg(0), asserts, *verbose)
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tagmatch-obsdiff [-threshold pct] old.json new.json")
		return 2
	}
	return runDiff(flag.Arg(0), flag.Arg(1), *threshold, *verbose)
}

func load(path string) (map[string]float64, int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagmatch-obsdiff: %v\n", err)
		return nil, 2
	}
	m, err := benchdiff.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagmatch-obsdiff: %s: %v\n", path, err)
		return nil, 2
	}
	return m, 0
}

func runAsserts(path string, exprs []string, verbose bool) int {
	metrics, code := load(path)
	if code != 0 {
		return code
	}
	if verbose {
		printMetrics(metrics)
	}
	failed := 0
	for _, expr := range exprs {
		a, err := benchdiff.ParseAssertion(expr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tagmatch-obsdiff: %v\n", err)
			return 2
		}
		if err := a.Eval(metrics); err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			failed++
		} else {
			fmt.Printf("ok   %s: %s\n", path, expr)
		}
	}
	if failed > 0 {
		fmt.Printf("%d of %d budget checks failed\n", failed, len(exprs))
		return 1
	}
	return 0
}

func runDiff(oldPath, newPath string, threshold float64, verbose bool) int {
	oldM, code := load(oldPath)
	if code != 0 {
		return code
	}
	newM, code := load(newPath)
	if code != 0 {
		return code
	}
	rep := benchdiff.Compare(oldM, newM, threshold)

	for _, row := range rep.Rows {
		if !row.Regression && !verbose {
			continue
		}
		status := "  "
		if row.Regression {
			status = "!!"
		}
		fmt.Printf("%s %-55s %14.4g → %-14.4g %s (%s)\n",
			status, row.Key, row.Old, row.New, fmtDelta(row.DeltaPct), row.Direction)
	}
	if verbose {
		for _, k := range rep.OnlyOld {
			fmt.Printf("   %-55s only in %s\n", k, oldPath)
		}
		for _, k := range rep.OnlyNew {
			fmt.Printf("   %-55s only in %s\n", k, newPath)
		}
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Printf("%d regression(s) past %.3g%% between %s and %s\n",
			len(regs), threshold, oldPath, newPath)
		return 1
	}
	fmt.Printf("no regressions past %.3g%% (%d metrics compared)\n",
		threshold, len(rep.Rows))
	return 0
}

func fmtDelta(pct float64) string {
	if math.IsNaN(pct) {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", pct)
}

func printMetrics(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("   %-55s %g\n", k, m[k])
	}
}
