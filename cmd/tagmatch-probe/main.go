// Command tagmatch-probe is a small diagnostic: it runs the same query
// stream through the CPU-only, one-GPU and two-GPU configurations of the
// engine and prints pipeline and device counters side by side. Useful
// when calibrating the simulated cost model or investigating throughput
// regressions.
//
// Usage:
//
//	tagmatch-probe [-scale 0.0002] [-queries 3000] [-frac 0.189]
package main

import (
	"flag"
	"fmt"
	"time"

	"tagmatch/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.0002, "workload scale")
	queries := flag.Int("queries", 3000, "queries per run")
	frac := flag.Float64("frac", 0.189, "database fraction")
	flag.Parse()

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.Queries = *queries
	ds := experiments.BuildDataset(p)
	sigs, keys := ds.Slice(*frac)
	qs := ds.Queries(4096, *frac, -1, 99)

	for _, gpus := range []int{0, 1, 2} {
		eng, devs, err := experiments.BuildEngine(experiments.EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: gpus, MaxP: ds.BaseMaxP(),
		})
		if err != nil {
			panic(err)
		}
		r := experiments.MeasureEngine(eng, qs, p.Queries, false)
		st := eng.Stats()
		fmt.Printf("gpus=%d qps=%.0f partsSearched/q=%.1f batches=%d pairs=%d overflows=%d elapsed=%v partitions=%d\n",
			gpus, r.QPS, float64(st.PartitionsSearched)/float64(st.QueriesCompleted),
			st.BatchesDispatched, st.PairsProduced, st.ResultOverflows, r.Elapsed, st.Partitions)
		fmt.Printf("  stages: preprocess=%v subset-match(wait+kernel+copy)=%v reduce=%v\n",
			st.PreprocessTime.Round(time.Millisecond),
			st.SubsetMatchTime.Round(time.Millisecond),
			st.ReduceTime.Round(time.Millisecond))
		for _, s := range eng.Obs().Stages() {
			if s.Count == 0 {
				continue
			}
			fmt.Printf("  %-12s n=%-6d p50=%-10v p99=%-10v max=%v\n",
				s.Stage, s.Count,
				s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond),
				s.Max.Round(time.Microsecond))
		}
		occ := eng.Obs().BatchOccupancy.Snapshot()
		fmt.Printf("  batch occupancy: mean=%.1f p50=%d max=%d queries/batch\n",
			occ.Mean(), occ.Quantile(0.50), occ.Max)
		for _, ps := range eng.Obs().Parts.Hottest(3) {
			fmt.Printf("  hot partition %d: routed=%d batches(full/timeout/flush)=%d/%d/%d pairs=%d\n",
				ps.ID, ps.QueriesRouted, ps.BatchesFull, ps.BatchesTimedOut, ps.BatchesFlushed, ps.Pairs)
		}
		for _, d := range devs {
			gs := d.Stats()
			fmt.Printf("  %s: launches=%d blocks=%d H2D=%d(%dB) D2H=%d(%dB) atomics=%d mem=%dB\n",
				d.Name(), gs.KernelLaunches, gs.BlocksExecuted,
				gs.CopiesHtoD, gs.BytesHtoD, gs.CopiesDtoH, gs.BytesDtoH,
				gs.AtomicOps, gs.MemInUse)
		}
		eng.Close()
		for _, d := range devs {
			d.Close()
		}
	}
}
