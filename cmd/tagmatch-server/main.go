// Command tagmatch-server exposes a TagMatch engine over HTTP — a small
// interactive deployment of the library ("integration of TagMatch within
// a full-fledged messaging system", the paper's future-work direction).
//
// Endpoints (JSON): POST /add, /remove, /consolidate, /match,
// /match-unique; GET /stats, /healthz. See internal/httpserver for the
// request/response shapes.
//
// Usage:
//
//	tagmatch-server [-addr :8080] [-gpus 2] [-threads 4] [-exact]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"tagmatch"
	"tagmatch/internal/httpserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	threads := flag.Int("threads", 4, "pipeline CPU threads")
	exact := flag.Bool("exact", false, "exact-verify matches (no Bloom false positives)")
	flag.Parse()

	eng, err := tagmatch.New(tagmatch.Config{
		GPUs:         *gpus,
		Threads:      *threads,
		BatchTimeout: 50 * time.Millisecond,
		ExactVerify:  *exact,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	log.Printf("tagmatch-server listening on %s (%d simulated GPUs, %d threads, exact=%v)",
		*addr, *gpus, *threads, *exact)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpserver.Handler(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
