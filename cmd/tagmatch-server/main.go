// Command tagmatch-server exposes a TagMatch engine over HTTP — a small
// interactive deployment of the library ("integration of TagMatch within
// a full-fledged messaging system", the paper's future-work direction).
//
// Endpoints (JSON): POST /add, /remove, /consolidate, /match,
// /match-unique, POST/DELETE /sets (live-update aliases of add/remove);
// GET /stats, /debug/stats, /metrics (Prometheus text format),
// /healthz. See internal/httpserver for the request/response shapes and
// the metric catalogue.
//
// Updates are live by default: an added set matches on the very next
// query and a removed one disappears immediately, with a background
// consolidator folding the delta overlay into the GPU index once it
// outgrows -delta-max-sets / -delta-max-ratio. -no-live-updates reverts
// to the batch contract (updates invisible until POST /consolidate).
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight HTTP requests finish (bounded by -shutdown-timeout),
// and the engine drains its in-flight queries before the process exits.
// With -max-inflight set, saturated /match requests answer 503 with a
// Retry-After header instead of queueing without bound.
//
// Usage:
//
//	tagmatch-server [-addr :8080] [-gpus 2] [-threads 4] [-exact]
//	                [-max-inflight 0] [-shutdown-timeout 10s]
//	                [-delta-max-sets 4096] [-delta-max-ratio 0.25]
//	                [-no-live-updates]
//	                [-trace 1000] [-stats-log 30s] [-pprof]
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers exposed only with -pprof (see below)
	"os"
	"os/signal"
	"syscall"
	"time"

	"tagmatch"
	"tagmatch/internal/httpserver"
	"tagmatch/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	threads := flag.Int("threads", 4, "pipeline CPU threads")
	exact := flag.Bool("exact", false, "exact-verify matches (no Bloom false positives)")
	maxInflight := flag.Int("max-inflight", 0,
		"max submitted-but-incomplete queries before /match sheds with 503 (0 = unbounded)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight HTTP requests on SIGINT/SIGTERM")
	deltaMaxSets := flag.Int("delta-max-sets", 0,
		"overlay entries triggering background consolidation (0 = default 4096)")
	deltaMaxRatio := flag.Float64("delta-max-ratio", 0,
		"overlay-to-index ratio triggering background consolidation (0 = default 0.25)")
	noLiveUpdates := flag.Bool("no-live-updates", false,
		"disable the delta overlay: updates take effect only at POST /consolidate")
	trace := flag.Int("trace", 0, "sample one query in N for full pipeline tracing (0 = off)")
	statsLog := flag.Duration("stats-log", 30*time.Second,
		"interval between stats log lines (0 = off)")
	pprofFlag := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ (CPU profiles carry stage/device goroutine labels)")
	flag.Parse()

	eng, err := tagmatch.New(tagmatch.Config{
		GPUs:               *gpus,
		Threads:            *threads,
		BatchTimeout:       50 * time.Millisecond,
		MaxInFlight:        *maxInflight,
		ExactVerify:        *exact,
		DeltaMaxSets:       *deltaMaxSets,
		DeltaMaxRatio:      *deltaMaxRatio,
		DisableLiveUpdates: *noLiveUpdates,
		TraceEvery:         *trace,
		Logger:             slog.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if *statsLog > 0 {
		go logStats(eng, *statsLog)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tagmatch-server listening on %s (%d simulated GPUs, %d threads, exact=%v, max-inflight=%d, trace=1/%d)",
		ln.Addr(), *gpus, *threads, *exact, *maxInflight, *trace)
	handler := httpserver.Handler(eng)
	if *pprofFlag {
		// net/http/pprof registers on the default mux at import; expose
		// it only when asked, keeping the API mux as the fallback.
		root := http.NewServeMux()
		root.Handle("/debug/pprof/", http.DefaultServeMux)
		root.Handle("/", handler)
		handler = root
		log.Printf("pprof enabled at /debug/pprof/ (worker goroutines carry stage=/device= labels)")
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := httpserver.Serve(ctx, srv, ln, eng, *shutdownTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("tagmatch-server: drained and stopped")
}

// logStats periodically emits a one-line digest: queries and batches
// since the previous line, plus stage p50/p99 latencies from the
// observability layer. Quiet intervals (no new queries) are skipped.
func logStats(eng *tagmatch.Engine, every time.Duration) {
	var lastQ, lastB int64
	for range time.Tick(every) {
		st := eng.Stats()
		dq, db := st.QueriesCompleted-lastQ, st.BatchesDispatched-lastB
		lastQ, lastB = st.QueriesCompleted, st.BatchesDispatched
		if dq == 0 && db == 0 {
			continue
		}
		var e2e, sm obs.StageSnapshot
		for _, s := range eng.Obs().Stages() {
			switch s.Stage {
			case obs.StageE2E:
				e2e = s
			case obs.StageSubsetMatch:
				sm = s
			}
		}
		log.Printf("stats: %.0f q/s, %d batches, e2e p50=%v p99=%v, subset_match p50=%v p99=%v, pairs=%d overflows=%d",
			float64(dq)/every.Seconds(), db,
			e2e.P50.Round(time.Microsecond), e2e.P99.Round(time.Microsecond),
			sm.P50.Round(time.Microsecond), sm.P99.Round(time.Microsecond),
			st.PairsProduced, st.ResultOverflows)
	}
}
