// Command tagmatch-server exposes a TagMatch engine over HTTP — a small
// interactive deployment of the library ("integration of TagMatch within
// a full-fledged messaging system", the paper's future-work direction).
//
// Endpoints (JSON): POST /add, /remove, /consolidate, /match,
// /match-unique; GET /stats, /debug/stats, /metrics (Prometheus text
// format), /healthz. See internal/httpserver for the request/response
// shapes and the metric catalogue.
//
// Usage:
//
//	tagmatch-server [-addr :8080] [-gpus 2] [-threads 4] [-exact]
//	                [-trace 1000] [-stats-log 30s]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"tagmatch"
	"tagmatch/internal/httpserver"
	"tagmatch/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpus := flag.Int("gpus", 2, "simulated GPUs")
	threads := flag.Int("threads", 4, "pipeline CPU threads")
	exact := flag.Bool("exact", false, "exact-verify matches (no Bloom false positives)")
	trace := flag.Int("trace", 0, "sample one query in N for full pipeline tracing (0 = off)")
	statsLog := flag.Duration("stats-log", 30*time.Second,
		"interval between stats log lines (0 = off)")
	flag.Parse()

	eng, err := tagmatch.New(tagmatch.Config{
		GPUs:         *gpus,
		Threads:      *threads,
		BatchTimeout: 50 * time.Millisecond,
		ExactVerify:  *exact,
		TraceEvery:   *trace,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if *statsLog > 0 {
		go logStats(eng, *statsLog)
	}

	log.Printf("tagmatch-server listening on %s (%d simulated GPUs, %d threads, exact=%v, trace=1/%d)",
		*addr, *gpus, *threads, *exact, *trace)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpserver.Handler(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

// logStats periodically emits a one-line digest: queries and batches
// since the previous line, plus stage p50/p99 latencies from the
// observability layer. Quiet intervals (no new queries) are skipped.
func logStats(eng *tagmatch.Engine, every time.Duration) {
	var lastQ, lastB int64
	for range time.Tick(every) {
		st := eng.Stats()
		dq, db := st.QueriesCompleted-lastQ, st.BatchesDispatched-lastB
		lastQ, lastB = st.QueriesCompleted, st.BatchesDispatched
		if dq == 0 && db == 0 {
			continue
		}
		var e2e, sm obs.StageSnapshot
		for _, s := range eng.Obs().Stages() {
			switch s.Stage {
			case obs.StageE2E:
				e2e = s
			case obs.StageSubsetMatch:
				sm = s
			}
		}
		log.Printf("stats: %.0f q/s, %d batches, e2e p50=%v p99=%v, subset_match p50=%v p99=%v, pairs=%d overflows=%d",
			float64(dq)/every.Seconds(), db,
			e2e.P50.Round(time.Microsecond), e2e.P99.Round(time.Microsecond),
			sm.P50.Round(time.Microsecond), sm.P99.Round(time.Microsecond),
			st.PairsProduced, st.ResultOverflows)
	}
}
