// Command tagmatch-bench regenerates the tables and figures of the
// TagMatch paper's evaluation (EuroSys 2017, §4) on the scaled synthetic
// workload.
//
// Usage:
//
//	tagmatch-bench [flags] <experiment>...
//	tagmatch-bench all
//
// Experiments: table1, table3, fig2 (with fig3), fig4, fig5, fig6, fig7,
// fig8, fig9, fig10, fig11, ablation-pipeline, ablation-gpuonly,
// obs-overhead (observability-layer cost, also written to
// BENCH_obs.json), hotpath (buffer-pooling before/after, also
// written to BENCH_hotpath.json), chaos (throughput under injected
// GPU faults and a mid-run device death, also written to
// BENCH_chaos.json), preprocess (bit-sliced vs. scalar partition
// routing, also written to BENCH_preprocess.json), kernel
// (bit-sliced vs. scalar subset-match kernel, also written to
// BENCH_kernel.json), tail (query-latency percentiles with and
// without hedged re-dispatch under injected stragglers, also written
// to BENCH_tail.json), pipeline (stream depth x query window
// dispatch matrix, also written to BENCH_pipeline.json), and churn
// (live updates through the delta overlay with background
// consolidation vs the stop-the-world ablation, also written to
// BENCH_churn.json).
//
// Text-format output is also teed to results/results_scale<scale>.txt
// (gitignored) so run transcripts accumulate outside the repo root.
//
// Flags:
//
//	-scale f         fraction of the paper's 300M-user workload (default 0.002)
//	-seed n          workload seed (default 1)
//	-threads n       CPU threads per subject system (default GOMAXPROCS)
//	-gpus n          simulated GPUs for TagMatch (default 2)
//	-queries n       queries per throughput measurement (default 20000)
//	-stream-depth n  pipelined stream depth for the pipeline experiment
//	                 (0 = engine default of 2)
//	-query-window n  per-device query window ring size (0 = engine
//	                 default of 16x the batch size)
//	-format f        output format: text, json, csv, benchstat
//	-no-bench-files  skip writing BENCH_*.json artifacts (smoke runs at
//	                 reduced scale must not overwrite committed numbers)
//	-results-dir d   directory for run transcripts (default "results";
//	                 empty disables teeing)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tagmatch/internal/experiments"
)

var noBenchFiles bool

func main() {
	var p experiments.Params
	flag.Float64Var(&p.Scale, "scale", experiments.DefaultScale, "fraction of the paper's workload")
	flag.Int64Var(&p.Seed, "seed", 1, "workload seed")
	flag.IntVar(&p.Threads, "threads", runtime.GOMAXPROCS(0), "CPU threads per subject system")
	flag.IntVar(&p.GPUs, "gpus", 2, "simulated GPUs")
	flag.IntVar(&p.Queries, "queries", 20000, "queries per measurement")
	flag.IntVar(&p.StreamDepth, "stream-depth", 0, "pipelined stream depth for the pipeline experiment (0 = engine default)")
	flag.IntVar(&p.QueryWindow, "query-window", 0, "per-device query window ring size (0 = engine default)")
	format := flag.String("format", "text", "output format: text, json, csv, benchstat")
	flag.BoolVar(&noBenchFiles, "no-bench-files", false, "skip writing BENCH_*.json artifacts")
	resultsDir := flag.String("results-dir", "results", "directory for run transcripts (empty disables)")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tagmatch-bench [flags] <experiment>... | all")
		fmt.Fprintln(os.Stderr, "experiments:", allNames())
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = allNames()
	}

	// Text runs are teed into the (gitignored) results directory so the
	// transcript of a recorded run lands outside the repo root.
	out := io.Writer(os.Stdout)
	if *format == "text" && *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*resultsDir, fmt.Sprintf("results_scale%g.txt", p.Scale))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintf(f, "# tagmatch-bench -scale %g -seed %d -threads %d -gpus %d -queries %d %s\n",
			p.Scale, p.Seed, p.Threads, p.GPUs, p.Queries, strings.Join(names, " "))
		out = io.MultiWriter(os.Stdout, f)
	}
	for _, name := range names {
		runOne(out, name, p, *format)
	}
}

// jsonWriter is any experiment result that serializes itself; every
// BENCH_*.json artifact goes through writeBenchFile so -no-bench-files
// can gate them all.
type jsonWriter interface {
	WriteJSON(io.Writer) error
}

func writeBenchFile(name string, r jsonWriter) {
	if noBenchFiles {
		return
	}
	f, err := os.Create(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := r.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
}

func allNames() []string {
	return []string{
		"table1", "table3", "fig2", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "families",
		"ablation-pipeline", "ablation-gpuonly", "obs-overhead", "hotpath",
		"chaos", "preprocess", "kernel", "tail", "pipeline", "churn",
	}
}

func runOne(out io.Writer, name string, p experiments.Params, format string) {
	start := time.Now()
	var tables []*experiments.Table
	switch name {
	case "table1":
		tables = append(tables, experiments.Table1(p))
	case "table3":
		tables = append(tables, experiments.Table3(p))
	case "fig2", "fig3":
		f2, f3 := experiments.Fig2And3(p)
		tables = append(tables, f2, f3)
	case "fig4":
		tables = append(tables, experiments.Fig4(p))
	case "fig5":
		tables = append(tables, experiments.Fig5(p))
	case "fig6":
		tables = append(tables, experiments.Fig6(p))
	case "fig7":
		tables = append(tables, experiments.Fig7(p))
	case "fig8":
		tables = append(tables, experiments.Fig8(p))
	case "fig9":
		tables = append(tables, experiments.Fig9(p))
	case "fig10":
		tables = append(tables, experiments.Fig10(p))
	case "fig11":
		tables = append(tables, experiments.Fig11(p))
	case "families":
		tables = append(tables, experiments.Families(p))
	case "ablation-pipeline":
		tables = append(tables, experiments.AblationPipeline(p))
	case "ablation-gpuonly":
		tables = append(tables, experiments.AblationGPUOnly(p))
	case "obs-overhead":
		t, r := experiments.ObsOverhead(p)
		tables = append(tables, t)
		// The overhead comparison also lands in BENCH_obs.json so CI can
		// track the instrumentation cost across commits.
		writeBenchFile("BENCH_obs.json", r)
	case "hotpath":
		t, r := experiments.Hotpath(p)
		tables = append(tables, t)
		// Hot-path before/after numbers land in BENCH_hotpath.json so the
		// pooling win (and any p99 regression) is tracked across commits.
		writeBenchFile("BENCH_hotpath.json", r)
	case "chaos":
		t, r := experiments.Chaos(p)
		tables = append(tables, t)
		// Degraded-mode throughput and the results-match bit land in
		// BENCH_chaos.json so fault-tolerance cost (and any correctness
		// break under faults) is tracked across commits.
		writeBenchFile("BENCH_chaos.json", r)
	case "preprocess":
		t, r := experiments.Preprocess(p)
		tables = append(tables, t)
		// Routing before/after numbers land in BENCH_preprocess.json so
		// the bit-sliced speedup (acceptance bar: ≥2x) is tracked across
		// commits.
		writeBenchFile("BENCH_preprocess.json", r)
	case "kernel":
		t, r := experiments.Kernel(p)
		tables = append(tables, t)
		// Match-kernel before/after numbers land in BENCH_kernel.json so
		// the bit-sliced speedup (acceptance bar: ≥2x) and the exactness
		// re-checks are tracked across commits.
		writeBenchFile("BENCH_kernel.json", r)
	case "tail":
		t, r := experiments.Tail(p)
		tables = append(tables, t)
		// Tail percentiles with and without hedging land in
		// BENCH_tail.json so the hedging win (acceptance bar: p99 >= 2x
		// better) and the exactly-once property are tracked across
		// commits.
		writeBenchFile("BENCH_tail.json", r)
	case "pipeline":
		t, r := experiments.Pipeline(p)
		tables = append(tables, t)
		// The depth x window matrix lands in BENCH_pipeline.json so the
		// query-window copy-tax win (acceptance bar: >= 2x fewer H2D
		// bytes per query) and the four-cell exactness check are
		// tracked across commits.
		writeBenchFile("BENCH_pipeline.json", r)
	case "churn":
		t, r := experiments.Churn(p)
		tables = append(tables, t)
		// Live-update numbers land in BENCH_churn.json so the cost of
		// churn (acceptance bar: >= 0.9x no-churn qps), the swap-pause
		// win (>= 5x smaller than stop-the-world), and overlay/oracle
		// parity are tracked across commits.
		writeBenchFile("BENCH_churn.json", r)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", name, allNames())
		os.Exit(2)
	}
	for _, t := range tables {
		switch format {
		case "json":
			if err := t.WriteJSON(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "csv":
			if err := t.WriteCSV(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "benchstat":
			if err := t.WriteBenchstat(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		default:
			t.Print(out)
		}
	}
	if format == "text" {
		fmt.Fprintf(out, "  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
