// Command workload-gen dumps the synthetic Twitter-like workload (§4.2)
// as newline-delimited JSON, for feeding external systems or inspecting
// the generator's statistical properties.
//
// Usage:
//
//	workload-gen -users 10000 [-seed 1] [-queries 0] > interests.ndjson
//
// Each interest line: {"user":123,"tags":["en_t5","user:77"]}.
// With -queries N, N tweet queries follow: {"query":["en_t5","en_t9"]}.
// With -stats, a summary is printed to stderr instead of data to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"

	"tagmatch/internal/workload"
)

func main() {
	users := flag.Int("users", 10000, "users to generate")
	seed := flag.Int64("seed", 1, "workload seed")
	queries := flag.Int("queries", 0, "tweet queries to append")
	stats := flag.Bool("stats", false, "print distribution statistics instead of data")
	flag.Parse()

	gen, err := workload.New(workload.NewConfig(*users, *seed))
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		printStats(gen, *users)
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	enc := json.NewEncoder(w)

	type interestLine struct {
		User uint32   `json:"user"`
		Tags []string `json:"tags"`
	}
	var sample []workload.Interest
	gen.Generate(*users, func(in workload.Interest) {
		if err := enc.Encode(interestLine{User: in.User, Tags: in.Tags}); err != nil {
			log.Fatal(err)
		}
		if len(sample) < 4096 {
			sample = append(sample, in)
		}
	})

	if *queries > 0 {
		type queryLine struct {
			Query []string `json:"query"`
		}
		rng := rand.New(rand.NewSource(*seed + 1))
		for i := 0; i < *queries; i++ {
			q := gen.Query(rng, sample[rng.Intn(len(sample))].Tags, -1)
			if err := enc.Encode(queryLine{Query: q}); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// printStats summarizes the generated workload: interest counts, tag
// width distribution, language shares, tag popularity skew.
func printStats(gen *workload.Generator, users int) {
	interests := 0
	tagWidth := map[int]int{}
	langCount := map[string]int{}
	tagFreq := map[string]int{}
	uniqueSets := map[string]struct{}{}
	gen.Generate(users, func(in workload.Interest) {
		interests++
		tagWidth[len(in.Tags)]++
		uniqueSets[strings.Join(in.Tags, "\x00")] = struct{}{}
		for _, t := range in.Tags {
			tagFreq[t]++
			if i := strings.IndexByte(t, '_'); i > 0 && !strings.HasPrefix(t, "user:") {
				langCount[t[:i]]++
			}
		}
	})

	fmt.Fprintf(os.Stderr, "users:            %d\n", users)
	fmt.Fprintf(os.Stderr, "interests:        %d (%.2f per user)\n", interests, float64(interests)/float64(users))
	fmt.Fprintf(os.Stderr, "unique tag sets:  %d\n", len(uniqueSets))
	fmt.Fprintf(os.Stderr, "distinct tags:    %d\n", len(tagFreq))

	widths := make([]int, 0, len(tagWidth))
	totalTags := 0
	for w, c := range tagWidth {
		widths = append(widths, w)
		totalTags += w * c
	}
	sort.Ints(widths)
	fmt.Fprintf(os.Stderr, "tags/interest:    mean %.2f, distribution:", float64(totalTags)/float64(interests))
	for _, w := range widths {
		fmt.Fprintf(os.Stderr, " %d:%d", w, tagWidth[w])
	}
	fmt.Fprintln(os.Stderr)

	type lf struct {
		lang string
		n    int
	}
	var langs []lf
	for l, n := range langCount {
		langs = append(langs, lf{l, n})
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i].n > langs[j].n })
	fmt.Fprintf(os.Stderr, "top languages:   ")
	for i, l := range langs {
		if i >= 8 {
			break
		}
		fmt.Fprintf(os.Stderr, " %s:%d", l.lang, l.n)
	}
	fmt.Fprintln(os.Stderr)

	top := make([]int, 0, len(tagFreq))
	for _, n := range tagFreq {
		top = append(top, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	if len(top) >= 10 {
		fmt.Fprintf(os.Stderr, "tag skew:         top tag %d uses, 10th %d, median %d\n",
			top[0], top[9], top[len(top)/2])
	}
}
