// Command tagmatch-loadgen drives a running tagmatch-server with the
// synthetic Twitter-like workload: it loads user interests over HTTP,
// consolidates, then streams tweet queries from concurrent clients and
// reports end-to-end service throughput and latency.
//
// With -churn-rate set, a churn client runs alongside the query phase,
// streaming live updates through POST /sets and DELETE /sets at the
// requested rate; -churn-ratio picks the fraction of those that are
// removes of previously churned associations. This exercises the
// server's delta overlay and background consolidation under load.
//
// Usage:
//
//	tagmatch-server &
//	tagmatch-loadgen -server http://localhost:8080 -users 20000 -queries 5000 -clients 4
//	tagmatch-loadgen -churn-rate 500 -churn-ratio 0.5   # live updates during queries
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"tagmatch"
	"tagmatch/internal/httpserver"
	"tagmatch/internal/metrics"
	"tagmatch/internal/workload"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "tagmatch-server base URL")
	users := flag.Int("users", 20000, "users to load")
	queries := flag.Int("queries", 5000, "tweet queries to stream")
	clients := flag.Int("clients", 4, "concurrent query clients")
	seed := flag.Int64("seed", 42, "workload seed")
	unique := flag.Bool("unique", true, "use match-unique (vs match)")
	churnRate := flag.Float64("churn-rate", 0,
		"live updates per second streamed during the query phase (0 = none)")
	churnRatio := flag.Float64("churn-ratio", 0.5,
		"fraction of churn ops that remove a previously churned association")
	flag.Parse()

	gen, err := workload.New(workload.NewConfig(*users, *seed))
	if err != nil {
		log.Fatal(err)
	}
	httpc := &http.Client{Timeout: 60 * time.Second}

	post := func(path string, body any, out any) error {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := httpc.Post(*server+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	// Phase 1: load interests.
	log.Printf("loading interests for %d users ...", *users)
	start := time.Now()
	var sample []workload.Interest
	n := gen.Generate(*users, func(in workload.Interest) {
		if err := post("/add", httpserver.SetRequest{Tags: in.Tags, Key: tagmatch.Key(in.User)}, nil); err != nil {
			log.Fatal(err)
		}
		if len(sample) < 4096 {
			sample = append(sample, in)
		}
	})
	log.Printf("loaded %d interests in %v", n, time.Since(start).Round(time.Millisecond))

	var cons httpserver.ConsolidateResponse
	if err := post("/consolidate", struct{}{}, &cons); err != nil {
		log.Fatal(err)
	}
	log.Printf("consolidated: %d sets, %d partitions (%s)", cons.Sets, cons.Partitions, cons.Elapsed)

	// Optional churn client: streams live adds and removes through the
	// REST live-update endpoints for the duration of the query phase.
	doSet := func(method string, req httpserver.SetRequest) error {
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		hreq, err := http.NewRequest(method, *server+"/sets", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(hreq)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s /sets: HTTP %d", method, resp.StatusCode)
		}
		return nil
	}
	churnStop := make(chan struct{})
	var churnOps int64
	var churnWG sync.WaitGroup
	if *churnRate > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			rng := rand.New(rand.NewSource(*seed + 7919))
			tick := time.NewTicker(time.Duration(float64(time.Second) / *churnRate))
			defer tick.Stop()
			next := tagmatch.Key(10_000_000)
			var pool []httpserver.SetRequest
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
				}
				if len(pool) > 0 && rng.Float64() < *churnRatio {
					i := rng.Intn(len(pool))
					if err := doSet(http.MethodDelete, pool[i]); err != nil {
						log.Fatal(err)
					}
					pool[i] = pool[len(pool)-1]
					pool = pool[:len(pool)-1]
				} else {
					req := httpserver.SetRequest{
						Tags: sample[rng.Intn(len(sample))].Tags,
						Key:  next,
					}
					next++
					if err := doSet(http.MethodPost, req); err != nil {
						log.Fatal(err)
					}
					pool = append(pool, req)
				}
				churnOps++
			}
		}()
	}

	// Phase 2: stream queries from concurrent clients.
	endpoint := "/match"
	if *unique {
		endpoint = "/match-unique"
	}
	lat := metrics.NewLatencies()
	var delivered int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (*queries + *clients - 1) / *clients
	qStart := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for i := 0; i < per; i++ {
				tweet := gen.Query(rng, sample[rng.Intn(len(sample))].Tags, -1)
				t0 := time.Now()
				var resp httpserver.MatchResponse
				if err := post(endpoint, httpserver.MatchRequest{Tags: tweet}, &resp); err != nil {
					log.Fatal(err)
				}
				lat.Observe(time.Since(t0))
				mu.Lock()
				delivered += int64(resp.Count)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	el := time.Since(qStart)
	close(churnStop)
	churnWG.Wait()
	total := per * *clients
	s := lat.Summarize()
	fmt.Printf("%d %s queries from %d clients in %v\n", total, endpoint, *clients, el.Round(time.Millisecond))
	if *churnRate > 0 {
		fmt.Printf("churn: %d live updates (%s, remove ratio %.2f)\n",
			churnOps, metrics.FmtRate(float64(churnOps)/el.Seconds()), *churnRatio)
	}
	fmt.Printf("throughput: %s, fan-out %s\n",
		metrics.FmtRate(float64(total)/el.Seconds()),
		metrics.FmtRate(float64(delivered)/el.Seconds()))
	fmt.Printf("latency over HTTP: median %v, p99 %v, max %v\n",
		s.Median.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
