# TagMatch reproduction build targets.

GO ?= go

.PHONY: check build vet test race chaos bench-smoke bench-obs bench-hotpath bench-chaos bench-preprocess bench-preprocess-smoke bench-kernel bench-kernel-smoke bench-tail bench-tail-smoke bench-pipeline bench-pipeline-smoke bench-churn bench-churn-smoke obs-smoke obsdiff-gate clean

## check: full CI gate — vet, build, tests, race detector on the
## concurrency-heavy packages, the chaos (fault-injection) suite, a
## short allocation-tracking benchmark pass over the hot path,
## reduced-scale smoke runs of the routing, match-kernel, tail-latency,
## and dispatch-pipeline experiments, the observability export smoke
## test, and the perf budgets on checked-in baselines.
check: vet build test race chaos bench-smoke bench-preprocess-smoke bench-kernel-smoke bench-tail-smoke bench-pipeline-smoke bench-churn-smoke obs-smoke obsdiff-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the engine pipeline and the lock-free observability layer are
## the packages with real concurrency; -race on the full tree is slow.
race:
	$(GO) test -race ./internal/core/ ./internal/obs/

## chaos: the fault-injection suite under the race detector — seeded
## deterministic GPU faults, scripted device death, quarantine/recovery,
## OOM degrade, overload shedding, straggler injection, deadline
## propagation, hedged re-dispatch, and snapshot-restore parity must all
## hold with -race on.
chaos:
	$(GO) test -race -run 'TestFaultPlan|TestStreamSegmentError|TestKill|TestChaos|TestQuarantine|TestConsolidateOOM|TestSubmit|TestMaxInFlight|TestMatchOverloaded|TestServeGraceful|TestConsolidateDegraded|TestStraggler|TestDeadline|TestHedge|TestMatchCtx|TestSnapshotRestore|TestMatchTimeout|TestPipelined|TestQueryWindow|TestStreamDepth|TestDelta' \
		./internal/gpu/ ./internal/core/ ./internal/httpserver/

## bench-smoke: quick -benchmem pass over the hot-path benchmarks so a
## regression in allocs/op shows up in the CI gate without a full
## benchmark run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkHotpathSubmit|BenchmarkBlockingMatch|BenchmarkPartitionLookup' \
		-benchtime=100x -benchmem ./internal/core/

## bench-obs: measure the observability layer's throughput overhead and
## write BENCH_obs.json (budget <2%, gated by obsdiff-gate).
bench-obs:
	$(GO) run ./cmd/tagmatch-bench obs-overhead

## bench-hotpath: measure the buffer-pooling before/after (throughput,
## p50/p99 latency, allocs per query) and write BENCH_hotpath.json.
bench-hotpath:
	$(GO) run ./cmd/tagmatch-bench hotpath

## bench-chaos: measure throughput under seeded GPU faults plus a
## mid-run device death vs. a healthy engine, assert identical match
## output, and write BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/tagmatch-bench chaos

## bench-preprocess: measure the bit-sliced vs. scalar routing lookup
## (ns/query) and the end-to-end throughput of both flavors, and write
## BENCH_preprocess.json. Use `-format benchstat` by hand to diff runs.
bench-preprocess:
	$(GO) run ./cmd/tagmatch-bench preprocess

## bench-preprocess-smoke: the same experiment at reduced scale as a CI
## gate; -no-bench-files keeps the small-scale numbers from overwriting
## the committed BENCH_preprocess.json.
bench-preprocess-smoke:
	$(GO) run ./cmd/tagmatch-bench -scale 0.0005 -queries 4000 -no-bench-files preprocess

## bench-kernel: measure the bit-sliced vs. scalar subset-match kernel
## (ns/query) and the end-to-end throughput of both flavors, re-check
## exactness under the chaos fault plan on the sliced path, and write
## BENCH_kernel.json. Use `-format benchstat` by hand to diff runs.
bench-kernel:
	$(GO) run ./cmd/tagmatch-bench kernel

## bench-kernel-smoke: the same experiment at reduced scale as a CI
## gate; -no-bench-files keeps the small-scale numbers from overwriting
## the committed BENCH_kernel.json.
bench-kernel-smoke:
	$(GO) run ./cmd/tagmatch-bench -scale 0.0005 -queries 4000 -no-bench-files kernel

## bench-tail: measure query-latency percentiles with and without hedged
## re-dispatch while one degraded device straggles on 2% of its
## operations, and write BENCH_tail.json (hedged p99 must be >= 2x
## better, gated by obsdiff-gate).
bench-tail:
	$(GO) run ./cmd/tagmatch-bench tail

## bench-tail-smoke: the same experiment at reduced scale as a CI gate;
## -no-bench-files keeps the small-scale numbers from overwriting the
## committed BENCH_tail.json.
bench-tail-smoke:
	$(GO) run ./cmd/tagmatch-bench -scale 0.0005 -queries 4000 -no-bench-files tail

## bench-pipeline: measure the stream-depth x query-window dispatch
## matrix (H2D bytes/query, copy/compute overlap, throughput, p99) and
## write BENCH_pipeline.json (window must cut H2D bytes/query >= 2x,
## gated by obsdiff-gate).
bench-pipeline:
	$(GO) run ./cmd/tagmatch-bench pipeline

## bench-pipeline-smoke: the same experiment at reduced scale as a CI
## gate; -no-bench-files keeps the small-scale numbers from overwriting
## the committed BENCH_pipeline.json.
bench-pipeline-smoke:
	$(GO) run ./cmd/tagmatch-bench -scale 0.0005 -queries 4000 -no-bench-files pipeline

## bench-churn: measure live updates through the delta overlay — query
## throughput under churn with background consolidation vs the no-churn
## baseline and the stop-the-world ablation, update-visibility latency,
## swap-pause percentiles, and overlay/oracle parity — and write
## BENCH_churn.json (qps ratio >= 0.9, pause p99 >= 5x better than
## stop-the-world, gated by obsdiff-gate).
bench-churn:
	$(GO) run ./cmd/tagmatch-bench churn

## bench-churn-smoke: the same experiment at reduced scale as a CI
## gate; -no-bench-files keeps the small-scale numbers from overwriting
## the committed BENCH_churn.json.
bench-churn-smoke:
	$(GO) run ./cmd/tagmatch-bench -scale 0.0005 -queries 4000 -no-bench-files churn

## obs-smoke: boot a server, push traffic, and assert the export
## surfaces are well-formed — /metrics parses as Prometheus exposition
## (with the GPU overlap/utilization/op-latency families), /debug/timeline
## parses as a Chrome trace-event file, /debug/stats carries the latency
## attribution table.
obs-smoke:
	$(GO) test -race -count=1 -run TestObsSmoke ./internal/httpserver/

## obsdiff-gate: the perf-regression gate — budget assertions against
## the checked-in BENCH_*.json baselines via cmd/tagmatch-obsdiff
## (which exits non-zero on a violated budget). Regenerate baselines
## with the bench-* targets when an intentional perf change lands.
obsdiff-gate:
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'overhead_pct<=2' BENCH_obs.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'results_match>=1' -assert 'cpu_fallbacks>=1' BENCH_chaos.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'routing_speedup>=2' BENCH_preprocess.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'kernel_speedup>=2' -assert 'results_match>=1' \
		-assert 'chaos_results_match>=1' BENCH_kernel.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'hedged_p99_improvement>=2' -assert 'hedge_exactness>=1' \
		-assert 'results_match>=1' BENCH_tail.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'h2d_reduction>=2' -assert 'pipeline_results_match>=1' \
		-assert 'throughput_ratio>=0.9' BENCH_pipeline.json
	$(GO) run ./cmd/tagmatch-obsdiff \
		-assert 'churn_results_match>=1' -assert 'qps_ratio>=0.9' \
		-assert 'pause_improvement>=5' -assert 'swap_pause_p99_ms<=250' \
		-assert 'visibility_p99_ms<=250' BENCH_churn.json

clean:
	rm -f BENCH_obs.json BENCH_hotpath.json BENCH_chaos.json BENCH_preprocess.json BENCH_kernel.json BENCH_tail.json BENCH_pipeline.json BENCH_churn.json
	rm -rf results
