# TagMatch reproduction build targets.

GO ?= go

.PHONY: check build vet test race bench-obs clean

## check: full CI gate — vet, build, tests, race detector on the
## concurrency-heavy packages.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the engine pipeline and the lock-free observability layer are
## the packages with real concurrency; -race on the full tree is slow.
race:
	$(GO) test -race ./internal/core/ ./internal/obs/

## bench-obs: measure the observability layer's throughput overhead and
## write BENCH_obs.json (budget <5%).
bench-obs:
	$(GO) run ./cmd/tagmatch-bench obs-overhead

clean:
	rm -f BENCH_obs.json
