// Package tagmatch is a high-throughput subset-matching engine for
// hybrid CPU/GPU systems, reproducing Rogora et al., "High-Throughput
// Subset Matching on Commodity GPU-Based Systems" (EuroSys 2017).
//
// An Engine stores a database of tag sets, each associated with an
// application key, and answers streaming subset queries: Match(q)
// returns the keys of every stored set s with s ⊆ q. Sets are
// represented internally as 192-bit Bloom filters with 7 hash functions,
// partitioned with the paper's balanced partitioning (Algorithm 1), and
// matched through a four-stage CPU/GPU pipeline (pre-process → subset
// match → key lookup/reduce → merge) with query batching, flush
// timeouts, GPU streams, and packed result transfers.
//
// Because this reproduction runs without GPU hardware, the subset-match
// stage executes on simulated GPU devices (package internal/gpu): SPMD
// kernels over thread blocks with modeled kernel-launch and PCIe-copy
// costs. Setting Config.GPUs to zero selects the CPU-only pipeline.
//
// # Quick start
//
//	eng, err := tagmatch.New(tagmatch.Config{GPUs: 2})
//	if err != nil { ... }
//	defer eng.Close()
//
//	eng.AddSet([]string{"en_go", "en_gpu"}, 1001)   // user 1001's interest
//	eng.AddSet([]string{"en_go"}, 1002)
//
//	keys, err := eng.MatchUnique([]string{"en_go", "en_gpu", "en_eurosys"})
//	// keys == [1001, 1002]
//
// Updates are live: AddSet and RemoveSet take effect on the very next
// query through a CPU-side delta overlay (staged adds matched by a
// bit-sliced mini-index, removes suppressed by tombstones), while a
// background consolidator periodically folds the overlay into the
// partitioned GPU index with only a brief swap pause. An explicit
// Consolidate forces that fold synchronously.
//
// For maximal throughput, stream queries with Submit/SubmitUnique and a
// BatchTimeout instead of the blocking Match calls.
package tagmatch

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// ErrOverloaded is returned by Submit-family calls rejected by the
// Config.MaxInFlight admission gate. Shed load or back off and retry;
// SubmitCtx blocks for capacity instead.
var ErrOverloaded = core.ErrOverloaded

// ErrDeviceDegraded wraps Consolidate errors that left the engine
// running CPU-only after a device upload failure (typically device
// memory exhaustion). The engine stays fully usable.
var ErrDeviceDegraded = core.ErrDeviceDegraded

// ErrDeadlineExceeded is carried by MatchResult.Err (and returned by the
// MatchCtx family) when a query's context ended before its batch was
// dispatched. Deadlines are observed at stage boundaries: a query whose
// batch is already running on a device finishes normally.
var ErrDeadlineExceeded = core.ErrDeadlineExceeded

// HedgePolicy configures hedged batch re-dispatch: a dispatched batch
// exceeding its straggler budget is speculatively re-run on another
// healthy device (or the host), the first completion winning. The zero
// value disables hedging. See the HedgeFixed and HedgePercentile modes.
type HedgePolicy = core.HedgePolicy

// HedgeMode selects how the straggler budget is derived.
type HedgeMode = core.HedgeMode

// Hedge modes: off (zero value), a fixed budget, or an adaptive budget
// tracking a percentile of the device's own batch service time.
const (
	HedgeOff        = core.HedgeOff
	HedgeFixed      = core.HedgeFixed
	HedgePercentile = core.HedgePercentile
)

// Key is the application value associated with a stored tag set — a user
// id in the paper's Twitter-like workload.
type Key = core.Key

// MatchResult carries the outcome of one streamed query.
type MatchResult = core.MatchResult

// Stats is a snapshot of engine activity and memory usage.
type Stats = core.Stats

// Config configures an Engine. The zero value is a valid CPU-only
// configuration with defaults suitable for small databases.
type Config struct {
	// GPUs is the number of simulated GPU devices to create. Zero runs
	// the pipeline CPU-only.
	GPUs int
	// GPUWorkers is the number of simulated streaming multiprocessors
	// per device, i.e. thread blocks executing in parallel. Defaults to 4.
	GPUWorkers int
	// GPUMemBytes is the per-device memory budget (default 12 GiB, one
	// TITAN X as in the paper's testbed).
	GPUMemBytes int64
	// RealisticGPUCosts enables the calibrated kernel-launch and
	// PCIe-copy cost model. Leave false in unit tests, set true in
	// benchmarks: batching and stream effects only appear with costs.
	RealisticGPUCosts bool

	// MaxPartitionSize is MAX_P of Algorithm 1 (0 = pick from database
	// size at Consolidate: dbSize/1000, min 64, the paper's ratio).
	MaxPartitionSize int
	// BatchSize is the number of queries per GPU batch (max 256).
	BatchSize int
	// BatchTimeout flushes partially filled batches (0 = no timeout; the
	// blocking Match calls flush explicitly).
	BatchTimeout time.Duration
	// Threads is the number of CPU worker threads across pipeline stages.
	Threads int
	// StreamsPerGPU is the number of streams per device (default 10).
	StreamsPerGPU int
	// Replicate replicates the tagset table on every device (default
	// true). When explicitly disabled with PartitionAcrossGPUs, each
	// device holds only its share of the partitions.
	PartitionAcrossGPUs bool
	// MaxInFlight bounds the number of submitted-but-incomplete queries
	// admitted before Submit-family calls return ErrOverloaded (the
	// SubmitCtx variants block for capacity instead). Zero disables the
	// gate.
	MaxInFlight int
	// FailureThreshold is the number of consecutive failed batch
	// attempts before a GPU is quarantined and its batches re-route to
	// surviving devices or the CPU (default 3).
	FailureThreshold int
	// QuarantineBackoff is the delay before a quarantined GPU receives
	// its first recovery probe; failed probes double it, up to 64x
	// (default 250ms).
	QuarantineBackoff time.Duration
	// Hedge configures hedged re-dispatch of straggling batches. The
	// zero value disables hedging.
	Hedge HedgePolicy
	// ExactVerify re-checks every match against the original tag sets
	// during key lookup, eliminating Bloom-filter false positives at the
	// cost of storing the tags and one string-set containment check per
	// candidate key.
	ExactVerify bool

	// DeltaMaxSets is the number of live overlay entries (staged adds
	// plus tombstones) that triggers a background consolidation
	// (default 4096). Together with DeltaMaxRatio it bounds how much of
	// each query is answered by the slower CPU-side overlay before the
	// consolidator folds it into the partitioned index.
	DeltaMaxSets int
	// DeltaMaxRatio triggers background consolidation when the overlay
	// grows past this fraction of the main index's set count (default
	// 0.25). The effective threshold is max(DeltaMaxSets,
	// DeltaMaxRatio × sets), so small databases are not consolidated on
	// every handful of updates.
	DeltaMaxRatio float64
	// DisableLiveUpdates turns off the match-visible delta overlay and
	// the background consolidator: adds and removes stage silently and
	// take effect only at an explicit Consolidate, the pre-live-update
	// batch contract. Intended for ablation benchmarks.
	DisableLiveUpdates bool

	// TraceEvery samples one query in N for full pipeline tracing,
	// retrievable via Obs().Tracer or GET /debug/stats. Zero disables
	// tracing (the default).
	TraceEvery int

	// DisableObservability turns off the stage histograms, per-partition
	// counters and traces of the observability layer, keeping only the
	// cumulative Stats counters. It also disables the per-device op log
	// (DeviceOpRecords). Overhead with observability on is a few percent
	// at most (see cmd/tagmatch-bench obs-overhead).
	DisableObservability bool

	// Logger receives structured records of operationally significant
	// events (device quarantine entry/exit, device death, CPU fallbacks).
	// Nil disables logging.
	Logger *slog.Logger
}

// opLogSize is the per-device ring of recent operation records kept for
// GET /debug/timeline and DeviceOpRecords (when observability is on).
const opLogSize = 2048

// Engine is a TagMatch subset-matching engine. See the package
// documentation for the lifecycle; all methods are safe for concurrent
// use.
type Engine struct {
	core    *core.Engine
	devices []*gpu.Device
}

// New creates an engine and its simulated GPU devices.
func New(cfg Config) (*Engine, error) {
	if cfg.GPUs < 0 {
		return nil, fmt.Errorf("tagmatch: negative GPU count")
	}
	var devices []*gpu.Device
	for i := 0; i < cfg.GPUs; i++ {
		gcfg := gpu.Config{
			Name:           fmt.Sprintf("sim-gpu-%d", i),
			Workers:        cfg.GPUWorkers,
			GlobalMemBytes: cfg.GPUMemBytes,
		}
		if !cfg.DisableObservability {
			gcfg.OpLogSize = opLogSize
		}
		if cfg.RealisticGPUCosts {
			gcfg.Cost = gpu.DefaultCost
		}
		devices = append(devices, gpu.New(gcfg))
	}
	ccfg := core.Config{
		MaxPartitionSize:     cfg.MaxPartitionSize,
		BatchSize:            cfg.BatchSize,
		BatchTimeout:         cfg.BatchTimeout,
		Threads:              cfg.Threads,
		Devices:              devices,
		StreamsPerDevice:     cfg.StreamsPerGPU,
		Replicate:            !cfg.PartitionAcrossGPUs,
		MaxInFlight:          cfg.MaxInFlight,
		FailureThreshold:     cfg.FailureThreshold,
		QuarantineBackoff:    cfg.QuarantineBackoff,
		HedgePolicy:          cfg.Hedge,
		ExactVerify:          cfg.ExactVerify,
		DeltaMaxSets:         cfg.DeltaMaxSets,
		DeltaMaxRatio:        cfg.DeltaMaxRatio,
		DisableDeltaOverlay:  cfg.DisableLiveUpdates,
		TraceEvery:           cfg.TraceEvery,
		DisableObservability: cfg.DisableObservability,
		Logger:               cfg.Logger,
	}
	eng, err := core.New(ccfg)
	if err != nil {
		for _, d := range devices {
			d.Close()
		}
		return nil, err
	}
	return &Engine{core: eng, devices: devices}, nil
}

// AddSet adds a tag set associated with key. The association is
// matchable immediately: it is staged into the delta overlay, answered
// alongside the main index, and folded into the partitioned GPU index by
// the next consolidation (background or explicit). With
// Config.DisableLiveUpdates it stays invisible until Consolidate.
func (e *Engine) AddSet(tags []string, key Key) { e.core.AddSet(tags, key) }

// RemoveSet removes one (set, key) association. The removal takes
// effect immediately: a tombstone suppresses the association from every
// subsequent Match and MatchUnique until a consolidation rebuilds the
// index without it. Removing an association that does not exist is a
// no-op. With Config.DisableLiveUpdates the removal waits for
// Consolidate.
func (e *Engine) RemoveSet(tags []string, key Key) { e.core.RemoveSet(tags, key) }

// PendingOps returns the number of staged operations not yet folded
// into the partitioned index. With live updates enabled these are
// already match-visible through the overlay; the background consolidator
// drains them once the overlay outgrows Config.DeltaMaxSets /
// Config.DeltaMaxRatio.
func (e *Engine) PendingOps() int { return e.core.PendingOps() }

// Consolidate synchronously folds all staged operations into the
// partitioned index, rebuilding it offline and uploading the tagset
// table to the GPUs. With live updates enabled this is optional — the
// background consolidator does the same work automatically — but remains
// useful to force a clean index before benchmarking, or as the only
// update mechanism when Config.DisableLiveUpdates is set.
func (e *Engine) Consolidate() error { return e.core.Consolidate() }

// Match returns the multiset of keys of every stored set that is a
// subset of the query tags (blocking).
func (e *Engine) Match(tags []string) ([]Key, error) { return e.core.Match(tags) }

// MatchUnique returns the deduplicated keys of all matching sets
// (blocking).
func (e *Engine) MatchUnique(tags []string) ([]Key, error) { return e.core.MatchUnique(tags) }

// MatchCtx is Match with an end-to-end deadline: the context's deadline
// and cancellation propagate into the pipeline, where expired queries
// are completed with an error matching ErrDeadlineExceeded before any
// kernel launch, and the call returns promptly when the context ends.
func (e *Engine) MatchCtx(ctx context.Context, tags []string) ([]Key, error) {
	return e.core.MatchCtx(ctx, tags)
}

// MatchUniqueCtx is MatchUnique with MatchCtx's deadline propagation.
func (e *Engine) MatchUniqueCtx(ctx context.Context, tags []string) ([]Key, error) {
	return e.core.MatchUniqueCtx(ctx, tags)
}

// Submit enqueues a streaming match; done is called exactly once.
func (e *Engine) Submit(tags []string, done func(MatchResult)) error {
	return e.core.Submit(tags, done)
}

// SubmitUnique enqueues a streaming match-unique.
func (e *Engine) SubmitUnique(tags []string, done func(MatchResult)) error {
	return e.core.SubmitUnique(tags, done)
}

// SubmitCtx is Submit that blocks for admission capacity instead of
// returning ErrOverloaded, up to the context's deadline. On cancellation
// it returns an error matching both ErrOverloaded and the context error.
func (e *Engine) SubmitCtx(ctx context.Context, tags []string, done func(MatchResult)) error {
	return e.core.SubmitCtx(ctx, tags, done)
}

// SubmitUniqueCtx is SubmitUnique with SubmitCtx's blocking admission.
func (e *Engine) SubmitUniqueCtx(ctx context.Context, tags []string, done func(MatchResult)) error {
	return e.core.SubmitUniqueCtx(ctx, tags, done)
}

// Drain blocks until every submitted query has completed.
func (e *Engine) Drain() { e.core.Drain() }

// Stats returns engine counters, database shape and memory usage.
func (e *Engine) Stats() Stats { return e.core.Stats() }

// Obs returns the engine's observability layer: per-stage latency
// histograms (p50/p99/max), per-partition hot-spot counters, queue-depth
// gauges, and sampled query traces. See internal/obs.
func (e *Engine) Obs() *obs.Pipeline { return e.core.Obs() }

// DeviceStat pairs a simulated GPU's name with its activity counters.
type DeviceStat struct {
	Name  string    `json:"name"`
	Stats gpu.Stats `json:"stats"`
}

// DeviceStats returns per-device counters: kernel launches, blocks,
// copies and bytes in each direction, atomics, and memory in use.
func (e *Engine) DeviceStats() []DeviceStat {
	out := make([]DeviceStat, len(e.devices))
	for i, d := range e.devices {
		out[i] = DeviceStat{Name: d.Name(), Stats: d.Stats()}
	}
	return out
}

// DeviceOps pairs a simulated GPU's name with its recent operation
// records, oldest first.
type DeviceOps struct {
	Name string         `json:"name"`
	Ops  []gpu.OpRecord `json:"ops"`
}

// DeviceOpRecords returns each device's ring of recent operations (H2D
// copies, kernel launches, D2H copies) with per-op queue-wait and
// service times — the raw feed of GET /debug/timeline's device tracks.
// Empty when DisableObservability is set.
func (e *Engine) DeviceOpRecords() []DeviceOps {
	out := make([]DeviceOps, len(e.devices))
	for i, d := range e.devices {
		out[i] = DeviceOps{Name: d.Name(), Ops: d.OpRecords()}
	}
	return out
}

// SaveSnapshot writes the database to w in the engine's binary snapshot
// format. Staged (unconsolidated) operations are included: the stream
// carries the logical database with pending adds and removes applied, so
// a snapshot taken mid-churn restores to exactly what a Consolidate at
// the same instant would have committed.
func (e *Engine) SaveSnapshot(w io.Writer) error { return e.core.SaveSnapshot(w) }

// LoadSnapshot stages a previously saved database from r and
// consolidates. Load into a freshly created engine to restore state, or
// into a populated one to merge.
func (e *Engine) LoadSnapshot(r io.Reader) error { return e.core.LoadSnapshot(r) }

// Close drains the pipeline and releases all resources, including the
// simulated devices.
func (e *Engine) Close() error {
	err := e.core.Close()
	for _, d := range e.devices {
		d.Close()
	}
	return err
}
