package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func newGen(t *testing.T, users int) *Generator {
	t.Helper()
	g, err := New(NewConfig(users, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Publishers = 0 },
		func(c *Config) { c.Vocabulary = 0 },
		func(c *Config) { c.TagZipfS = 1.0 },
		func(c *Config) { c.FollowZipfS = 0.5 },
		func(c *Config) { c.MinTweetTags = 0 },
		func(c *Config) { c.MaxTweetTags = 1 },
		func(c *Config) { c.MaxFollows = 0 },
		func(c *Config) { c.QueryExtraMax = 1 },
	}
	for i, mut := range bad {
		cfg := NewConfig(1000, 1)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1 := newGen(t, 1000)
	g2 := newGen(t, 1000)
	for u := uint32(0); u < 50; u++ {
		a, b := g1.InterestsOf(u), g2.InterestsOf(u)
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d interests", u, len(a), len(b))
		}
		for i := range a {
			if strings.Join(a[i].Tags, ",") != strings.Join(b[i].Tags, ",") {
				t.Fatalf("user %d interest %d differs", u, i)
			}
		}
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := NewConfig(1000, 1)
	g1, _ := New(cfg)
	cfg.Seed = 2
	g2, _ := New(cfg)
	same := 0
	for u := uint32(0); u < 20; u++ {
		a, b := g1.InterestsOf(u), g2.InterestsOf(u)
		if len(a) == len(b) && strings.Join(a[0].Tags, ",") == strings.Join(b[0].Tags, ",") {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestInterestShape(t *testing.T) {
	g := newGen(t, 5000)
	totalTags, totalInterests := 0, 0
	withPublisher := 0
	g.Generate(2000, func(in Interest) {
		totalInterests++
		totalTags += len(in.Tags)
		if len(in.Tags) == 0 {
			t.Fatal("empty interest")
		}
		for _, tag := range in.Tags {
			if strings.HasPrefix(tag, "user:") {
				withPublisher++
				continue
			}
			if !strings.Contains(tag, "_") {
				t.Fatalf("tag %q missing language prefix", tag)
			}
		}
	})
	if totalInterests < 2000 {
		t.Fatalf("users must have at least one interest each: %d", totalInterests)
	}
	avg := float64(totalTags) / float64(totalInterests)
	// Paper: interests contain an average of five tags.
	if avg < 3.5 || avg > 6.5 {
		t.Fatalf("average tags per interest = %.2f, want ≈ 5", avg)
	}
	// Frequent writers are 30% of publishers but, being low-rank ids and
	// uniformly chosen, roughly 30% of interests should carry an id tag.
	share := float64(withPublisher) / float64(totalInterests)
	if share < 0.15 || share > 0.45 {
		t.Fatalf("publisher-tag share = %.2f, want ≈ 0.30", share)
	}
}

func TestFollowDistributionSkewed(t *testing.T) {
	g := newGen(t, 5000)
	counts := map[int]int{}
	maxF := 0
	for u := uint32(0); u < 3000; u++ {
		f := len(g.InterestsOf(u))
		counts[f]++
		if f > maxF {
			maxF = f
		}
	}
	// Power law: following exactly one publisher must dominate, and a
	// heavy tail must exist.
	if counts[1] < 1000 {
		t.Fatalf("only %d single-follow users out of 3000; follow counts not skewed", counts[1])
	}
	if maxF < 8 {
		t.Fatalf("max follows = %d; tail missing", maxF)
	}
}

func TestLanguageDistribution(t *testing.T) {
	g := newGen(t, 20000)
	en, total := 0, 0
	g.Generate(3000, func(in Interest) {
		for _, tag := range in.Tags {
			if strings.HasPrefix(tag, "user:") {
				continue
			}
			total++
			if strings.HasPrefix(tag, "en_") {
				en++
			}
		}
	})
	share := float64(en) / float64(total)
	// English dominates Twitter (~51% first language) but bilingual
	// second languages dilute it; expect a broad band around 0.45.
	if share < 0.25 || share > 0.70 {
		t.Fatalf("English tag share = %.2f, implausible", share)
	}
}

func TestTagPopularitySkewed(t *testing.T) {
	g := newGen(t, 5000)
	freq := map[string]int{}
	total := 0
	g.Generate(1500, func(in Interest) {
		for _, tag := range in.Tags {
			freq[tag]++
			total++
		}
	})
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// Zipf: the most popular tag should be far above uniform share.
	uniform := float64(total) / float64(len(freq))
	if float64(max) < 5*uniform {
		t.Fatalf("top tag count %d vs uniform %.1f: no skew", max, uniform)
	}
}

func TestQueryConstruction(t *testing.T) {
	g := newGen(t, 1000)
	base := []string{"en_t1", "en_t2", "en_t3"}
	rng := rand.New(rand.NewSource(7))
	q := g.Query(rng, base, 4)
	if len(q) != 7 {
		t.Fatalf("query has %d tags, want 7", len(q))
	}
	for i, tag := range base {
		if q[i] != tag {
			t.Fatal("query must contain the base set")
		}
	}
	// Default extra range 2..4.
	for i := 0; i < 50; i++ {
		q := g.Query(rng, base, -1)
		extra := len(q) - len(base)
		if extra < 2 || extra > 4 {
			t.Fatalf("default extra = %d, want in [2,4]", extra)
		}
	}
}

func TestQueryStream(t *testing.T) {
	g := newGen(t, 1000)
	var sample []Interest
	g.Generate(100, func(in Interest) { sample = append(sample, in) })
	n := 0
	g.QueryStream(9, sample, 250, 3, func(tags []string) {
		n++
		if len(tags) < 4 {
			t.Fatalf("query too short: %v", tags)
		}
	})
	if n != 250 {
		t.Fatalf("emitted %d queries, want 250", n)
	}
}

func TestGenerateCapsAtUsers(t *testing.T) {
	g := newGen(t, 50)
	users := map[uint32]bool{}
	g.Generate(1000, func(in Interest) { users[in.User] = true })
	if len(users) != 50 {
		t.Fatalf("generated %d users, want 50", len(users))
	}
}

func BenchmarkGenerateInterests(b *testing.B) {
	g, err := New(NewConfig(1000000, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InterestsOf(uint32(i % 1000000))
	}
}
