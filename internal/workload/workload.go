// Package workload synthesizes the Twitter-like workload of the paper's
// evaluation (§4.2).
//
// The original workload was derived from the TREC 2011 tweet corpus and
// the Kwak et al. Twitter follower graph — neither redistributable here —
// so this generator reproduces the statistical properties the paper
// derives from them:
//
//   - a Zipf-skewed hashtag vocabulary (popular tags are reused heavily);
//   - power-law follower counts (how many publishers a user follows);
//   - 40% monolingual / 60% bilingual users, first language drawn from
//     the Twitter language distribution (Hong et al., ICWSM 2011) and
//     second language from the world second-language distribution, with
//     tags "translated" by language prefix (cat → fr_cat);
//   - one interest per followed publisher, built from the hashtags of one
//     of the publisher's tweets in one of the user's languages;
//   - the publisher's id added as an extra tag when the publisher is a
//     frequent writer (top 30% by tweet volume);
//   - interests averaging about five tags.
//
// Queries follow §4.2.2: a database interest plus a configurable number
// of extra random tags, so every query survives pre-filtering — the
// conservative construction the paper uses for all throughput numbers.
//
// All generation is deterministic given Config.Seed: interests are
// derived per-user from a hash of (seed, user), so a workload can be
// regenerated piecemeal without storing it.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Config parameterizes the generator. NewConfig supplies paper-faithful
// defaults scaled to a target user count.
type Config struct {
	Seed       int64
	Users      int // number of keys (paper: 300M)
	Publishers int // distinct publishers users can follow

	Vocabulary int     // distinct base hashtags before language prefixing
	TagZipfS   float64 // Zipf skew of hashtag popularity (>1)

	FollowZipfS float64 // Zipf skew of follows-per-user (>1)
	MaxFollows  int     // cap on follows per user

	MinTweetTags int // hashtags per tweet: uniform in [Min, Max]
	MaxTweetTags int

	FrequentWriterShare float64 // publishers whose id becomes a tag (0.30)
	BilingualShare      float64 // users speaking two languages (0.60)

	// QueryExtraMin/Max: extra tags appended to a database set to form a
	// query (paper default: 2..4).
	QueryExtraMin int
	QueryExtraMax int
}

// NewConfig returns the paper-faithful configuration for a given scale.
// users is the number of keys; the remaining knobs scale from it the way
// the paper's full workload relates to its 300M users.
func NewConfig(users int, seed int64) Config {
	pubs := users / 7 // the Kwak graph has ~42M publishers for ~300M users
	if pubs < 10 {
		pubs = 10
	}
	vocab := users / 30
	if vocab < 500 {
		vocab = 500
	}
	return Config{
		Seed:                seed,
		Users:               users,
		Publishers:          pubs,
		Vocabulary:          vocab,
		TagZipfS:            1.2,
		FollowZipfS:         1.6,
		MaxFollows:          64,
		MinTweetTags:        3,
		MaxTweetTags:        6,
		FrequentWriterShare: 0.30,
		BilingualShare:      0.60,
		QueryExtraMin:       2,
		QueryExtraMax:       4,
	}
}

// langFreq is one entry of a language distribution.
type langFreq struct {
	code string
	freq float64
}

// twitterLangs approximates the Twitter language distribution of Hong,
// Convertino & Chi (ICWSM 2011).
var twitterLangs = []langFreq{
	{"en", 0.513}, {"ja", 0.191}, {"pt", 0.096}, {"id", 0.056},
	{"es", 0.047}, {"nl", 0.014}, {"ko", 0.013}, {"fr", 0.013},
	{"de", 0.011}, {"ms", 0.009}, {"it", 0.008}, {"tr", 0.007},
	{"th", 0.005}, {"ru", 0.004}, {"ar", 0.004}, {"zh", 0.009},
}

// secondLangs approximates the distribution of the world's most common
// second languages (Ethnologue).
var secondLangs = []langFreq{
	{"en", 0.43}, {"hi", 0.12}, {"fr", 0.09}, {"es", 0.07},
	{"zh", 0.06}, {"ru", 0.05}, {"pt", 0.04}, {"de", 0.04},
	{"ar", 0.04}, {"ja", 0.03}, {"it", 0.02}, {"id", 0.01},
}

func pickLang(dist []langFreq, r float64) string {
	acc := 0.0
	for _, lf := range dist {
		acc += lf.freq
		if r < acc {
			return lf.code
		}
	}
	return dist[0].code
}

// Interest is one database entry: a tag set and the user (key) holding it.
type Interest struct {
	User uint32
	Tags []string
}

// Generator produces interests and queries.
type Generator struct {
	cfg Config
}

// New validates the configuration and returns a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Users <= 0 || cfg.Publishers <= 0 || cfg.Vocabulary <= 0 {
		return nil, fmt.Errorf("workload: Users, Publishers, Vocabulary must be positive")
	}
	if cfg.TagZipfS <= 1 || cfg.FollowZipfS <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponents must be > 1")
	}
	if cfg.MinTweetTags < 1 || cfg.MaxTweetTags < cfg.MinTweetTags {
		return nil, fmt.Errorf("workload: invalid tweet tag bounds [%d,%d]", cfg.MinTweetTags, cfg.MaxTweetTags)
	}
	if cfg.MaxFollows < 1 {
		return nil, fmt.Errorf("workload: MaxFollows must be >= 1")
	}
	if cfg.QueryExtraMin < 0 || cfg.QueryExtraMax < cfg.QueryExtraMin {
		return nil, fmt.Errorf("workload: invalid query extra bounds")
	}
	return &Generator{cfg: cfg}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// userRNG returns the deterministic per-user random stream.
func (g *Generator) userRNG(user uint32) *rand.Rand {
	h := fnv.New64a()
	var b [12]byte
	putU64(b[:8], uint64(g.cfg.Seed))
	putU32(b[8:], user)
	h.Write(b[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// zipfRank draws a Zipf-distributed rank in [0, n).
func zipfRank(rng *rand.Rand, s float64, n int) int {
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// baseTag returns the rank-th most popular base hashtag.
func (g *Generator) baseTag(rank int) string {
	return fmt.Sprintf("t%d", rank)
}

// translate applies the paper's language prefixing.
func translate(lang, tag string) string { return lang + "_" + tag }

// languagesOf draws a user's one or two languages.
func (g *Generator) languagesOf(rng *rand.Rand) []string {
	first := pickLang(twitterLangs, rng.Float64())
	if rng.Float64() >= g.cfg.BilingualShare {
		return []string{first}
	}
	second := pickLang(secondLangs, rng.Float64())
	if second == first {
		second = pickLang(secondLangs, rng.Float64()) // one retry, then accept
	}
	return []string{first, second}
}

// isFrequentWriter reports whether a publisher is in the top
// FrequentWriterShare by volume; publishers are numbered by rank, so the
// check is positional.
func (g *Generator) isFrequentWriter(pub int) bool {
	return pub < int(float64(g.cfg.Publishers)*g.cfg.FrequentWriterShare)
}

// tweetTags synthesizes the hashtags of one tweet of a publisher, in the
// publisher's own "topic area" (a Zipf draw biased by the publisher id so
// a publisher's tweets correlate, as real accounts do).
func (g *Generator) tweetTags(rng *rand.Rand, pub int) []string {
	n := g.cfg.MinTweetTags
	if g.cfg.MaxTweetTags > g.cfg.MinTweetTags {
		n += rng.Intn(g.cfg.MaxTweetTags - g.cfg.MinTweetTags + 1)
	}
	tags := make([]string, 0, n+1)
	seen := map[int]bool{}
	for len(tags) < n {
		rank := zipfRank(rng, g.cfg.TagZipfS, g.cfg.Vocabulary)
		// Bias one third of the draws toward the publisher's topic
		// neighbourhood to create realistic tag co-occurrence.
		if rng.Intn(3) == 0 {
			rank = (rank + pub) % g.cfg.Vocabulary
		}
		if seen[rank] {
			continue
		}
		seen[rank] = true
		tags = append(tags, g.baseTag(rank))
	}
	return tags
}

// InterestsOf deterministically generates all interests of one user:
// one per followed publisher, translated into one of the user's
// languages, with the publisher-id tag appended for frequent writers.
func (g *Generator) InterestsOf(user uint32) []Interest {
	rng := g.userRNG(user)
	langs := g.languagesOf(rng)
	follows := 1 + zipfRank(rng, g.cfg.FollowZipfS, g.cfg.MaxFollows)
	out := make([]Interest, 0, follows)
	for f := 0; f < follows; f++ {
		pub := rng.Intn(g.cfg.Publishers)
		lang := langs[rng.Intn(len(langs))]
		base := g.tweetTags(rng, pub)
		tags := make([]string, 0, len(base)+1)
		for _, bt := range base {
			tags = append(tags, translate(lang, bt))
		}
		if g.isFrequentWriter(pub) {
			tags = append(tags, fmt.Sprintf("user:%d", pub))
		}
		out = append(out, Interest{User: user, Tags: tags})
	}
	return out
}

// Generate streams the interests of users [0, n) to emit. It returns the
// total number of interests produced.
func (g *Generator) Generate(n int, emit func(Interest)) int {
	if n > g.cfg.Users {
		n = g.cfg.Users
	}
	total := 0
	for u := 0; u < n; u++ {
		for _, in := range g.InterestsOf(uint32(u)) {
			emit(in)
			total++
		}
	}
	return total
}

// Query builds one query per §4.2.2: the given database tag set plus
// extra random tags in a random language. extra < 0 draws the count from
// [QueryExtraMin, QueryExtraMax].
func (g *Generator) Query(rng *rand.Rand, base []string, extra int) []string {
	if extra < 0 {
		extra = g.cfg.QueryExtraMin
		if g.cfg.QueryExtraMax > g.cfg.QueryExtraMin {
			extra += rng.Intn(g.cfg.QueryExtraMax - g.cfg.QueryExtraMin + 1)
		}
	}
	out := make([]string, len(base), len(base)+extra)
	copy(out, base)
	lang := pickLang(twitterLangs, rng.Float64())
	for i := 0; i < extra; i++ {
		rank := zipfRank(rng, g.cfg.TagZipfS, g.cfg.Vocabulary)
		out = append(out, translate(lang, g.baseTag(rank)))
	}
	return out
}

// QueryStream produces n queries built on a sample of base interests,
// calling emit with each query's tags. It is the harness used by every
// throughput experiment.
func (g *Generator) QueryStream(seed int64, sample []Interest, n, extra int, emit func([]string)) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		base := sample[rng.Intn(len(sample))]
		emit(g.Query(rng, base.Tags, extra))
	}
}
