// Package gpuonly implements the GPU-centric strawmen of the paper's
// evaluation:
//
//   - Plain: the "GPU-only, plain" row of Table 1 — one kernel invocation
//     per query over the entire unpartitioned tagset table, paying the
//     full copy/launch/copy round trip for every single query.
//   - Batched: the "GPU-only, plain with batching" row — the same
//     unpartitioned brute-force kernel, but over batches of queries with
//     the table sorted lexicographically so the thread-block pre-filter
//     applies; batching amortizes the per-call costs but there is still
//     no CPU-side partition index to prune work.
//   - DynamicParallelism: the §4.5 alternative architecture — both the
//     pre-process and the subset match run on the GPU, the pre-process
//     kernel appending queries to per-partition queues in global device
//     memory with atomic operations and launching nested subset-match
//     kernels when queues fill.
//
// These exist to reproduce the comparisons that motivate TagMatch's
// hybrid design; they share the simulated device of package gpu.
package gpuonly

import (
	"sort"
	"sync/atomic"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// Key is the application value associated with a stored set.
type Key = uint32

// table is the shared device-resident database representation.
type table struct {
	dev    *gpu.Device
	sets   *gpu.Buffer[bitvec.Vector]
	n      int
	keyOff []uint32 // host-side CSR key table, as in TagMatch
	keys   []Key
}

func uploadTable(dev *gpu.Device, sigs []bitvec.Vector, keysBySet [][]Key, sorted bool) (*table, error) {
	t := &table{dev: dev, n: len(sigs)}
	order := make([]int, len(sigs))
	for i := range order {
		order[i] = i
	}
	if sorted {
		sort.Slice(order, func(a, b int) bool {
			return bitvec.Less(sigs[order[a]], sigs[order[b]])
		})
	}
	flat := make([]bitvec.Vector, len(sigs))
	t.keyOff = make([]uint32, 1, len(sigs)+1)
	for i, o := range order {
		flat[i] = sigs[o]
		t.keys = append(t.keys, keysBySet[o]...)
		t.keyOff = append(t.keyOff, uint32(len(t.keys)))
	}
	var err error
	t.sets, err = gpu.Alloc[bitvec.Vector](dev, len(flat))
	if err != nil {
		return nil, err
	}
	if err := t.sets.CopyToDevice(0, flat); err != nil {
		t.sets.Free()
		return nil, err
	}
	return t, nil
}

func (t *table) free() { t.sets.Free() }

func (t *table) visitKeys(setID uint32, visit func(Key)) {
	for _, k := range t.keys[t.keyOff[setID]:t.keyOff[setID+1]] {
		visit(k)
	}
}

// bruteKernel checks every set of the table against a batch of queries,
// with an optional block pre-filter, appending (query, set) ids to two
// flat output arrays guarded by an atomic counter.
func bruteKernel(
	sets *gpu.Buffer[bitvec.Vector],
	n int,
	queries *gpu.Buffer[bitvec.Vector],
	nQueries int,
	outHdr *gpu.Buffer[uint32], // [count, overflow]
	outQ, outS *gpu.Buffer[uint32],
	maxPairs int,
	prefilter bool,
) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		all := sets.Data()[:n]
		qs := queries.Data()[:nQueries]
		hdr, oq, os := outHdr.Data(), outQ.Data(), outS.Data()

		first := b.FirstGlobalID()
		if first >= len(all) {
			return
		}
		block := all[first:min(first+b.Grid.BlockDim, len(all))]

		var survivors []uint16
		if prefilter {
			prefixLen := bitvec.CommonPrefixLen(block[0], block[len(block)-1])
			prefix := block[0].Prefix(prefixLen)
			survivors = make([]uint16, 0, len(qs))
			b.Threads(func(tid int) {
				for i := tid; i < len(qs); i += b.Grid.BlockDim {
					if prefix.SubsetOf(qs[i]) {
						survivors = append(survivors, uint16(i))
					}
				}
			})
			if len(survivors) == 0 {
				return
			}
		}

		b.Threads(func(tid int) {
			if tid >= len(block) {
				return
			}
			set := block[tid]
			setID := uint32(first + tid)
			emit := func(qi int) {
				idx := int(b.AtomicAddU32(&hdr[0], 1))
				if idx >= maxPairs {
					atomic.StoreUint32(&hdr[1], 1)
					return
				}
				oq[idx] = uint32(qi)
				os[idx] = setID
			}
			if prefilter {
				for _, qi := range survivors {
					if set.SubsetOf(qs[qi]) {
						emit(int(qi))
					}
				}
			} else {
				for i := range qs {
					if set.SubsetOf(qs[i]) {
						emit(i)
					}
				}
			}
		})
	}
}

// Plain is the one-kernel-per-query GPU matcher.
type Plain struct {
	t        *table
	stream   *gpu.Stream
	qbuf     *gpu.Buffer[bitvec.Vector]
	hdr      *gpu.Buffer[uint32]
	outQ     *gpu.Buffer[uint32]
	outS     *gpu.Buffer[uint32]
	maxPairs int
	blockDim int
}

// NewPlain uploads the database and prepares a single stream.
func NewPlain(dev *gpu.Device, sigs []bitvec.Vector, keysBySet [][]Key, maxPairs int) (*Plain, error) {
	t, err := uploadTable(dev, sigs, keysBySet, false)
	if err != nil {
		return nil, err
	}
	p := &Plain{t: t, maxPairs: maxPairs, blockDim: 256}
	if p.stream, err = dev.OpenStream(); err != nil {
		t.free()
		return nil, err
	}
	p.qbuf = gpu.MustAlloc[bitvec.Vector](dev, 1)
	p.hdr = gpu.MustAlloc[uint32](dev, 2)
	p.outQ = gpu.MustAlloc[uint32](dev, maxPairs)
	p.outS = gpu.MustAlloc[uint32](dev, maxPairs)
	return p, nil
}

// Match runs one query through the full copy/launch/copy round trip and
// visits every matching key. Overflowing maxPairs falls back to a host
// scan for correctness.
func (p *Plain) Match(q bitvec.Vector, visit func(Key)) {
	gpu.CopyToDeviceAsync(p.stream, p.hdr, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(p.stream, p.qbuf, 0, []bitvec.Vector{q})
	grid := gpu.Grid{Blocks: (p.t.n + p.blockDim - 1) / p.blockDim, BlockDim: p.blockDim}
	p.stream.LaunchAsync(grid, bruteKernel(p.t.sets, p.t.n, p.qbuf, 1, p.hdr, p.outQ, p.outS, p.maxPairs, false))
	hdrHost := make([]uint32, 2)
	gpu.CopyFromDeviceAsync(p.stream, p.hdr, hdrHost, 0)
	p.stream.Synchronize()

	if hdrHost[1] != 0 || int(hdrHost[0]) > p.maxPairs {
		p.hostFallback(q, visit)
		return
	}
	n := int(hdrHost[0])
	ids := make([]uint32, n)
	if n > 0 {
		if err := p.outS.CopyFromDevice(ids, 0); err != nil {
			panic(err)
		}
	}
	for _, s := range ids {
		p.t.visitKeys(s, visit)
	}
}

func (p *Plain) hostFallback(q bitvec.Vector, visit func(Key)) {
	for s, v := range p.t.sets.Data()[:p.t.n] {
		if v.SubsetOf(q) {
			p.t.visitKeys(uint32(s), visit)
		}
	}
}

// Close releases device resources.
func (p *Plain) Close() {
	p.stream.Synchronize()
	p.qbuf.Free()
	p.hdr.Free()
	p.outQ.Free()
	p.outS.Free()
	p.stream.Close()
	p.t.free()
}

// Batched is the batching GPU matcher: brute force over the whole sorted
// table, many queries per kernel.
type Batched struct {
	t         *table
	stream    *gpu.Stream
	qbuf      *gpu.Buffer[bitvec.Vector]
	hdr       *gpu.Buffer[uint32]
	outQ      *gpu.Buffer[uint32]
	outS      *gpu.Buffer[uint32]
	batchSize int
	maxPairs  int
	blockDim  int
}

// NewBatched uploads the database sorted lexicographically (enabling the
// block pre-filter) and prepares a stream for batches of batchSize
// queries.
func NewBatched(dev *gpu.Device, sigs []bitvec.Vector, keysBySet [][]Key, batchSize, maxPairs int) (*Batched, error) {
	t, err := uploadTable(dev, sigs, keysBySet, true)
	if err != nil {
		return nil, err
	}
	m := &Batched{t: t, batchSize: batchSize, maxPairs: maxPairs, blockDim: 256}
	if m.stream, err = dev.OpenStream(); err != nil {
		t.free()
		return nil, err
	}
	m.qbuf = gpu.MustAlloc[bitvec.Vector](dev, batchSize)
	m.hdr = gpu.MustAlloc[uint32](dev, 2)
	m.outQ = gpu.MustAlloc[uint32](dev, maxPairs)
	m.outS = gpu.MustAlloc[uint32](dev, maxPairs)
	return m, nil
}

// MatchBatch matches up to batchSize queries in one kernel invocation,
// invoking visit(queryIndex, key) for every match.
func (m *Batched) MatchBatch(queries []bitvec.Vector, visit func(int, Key)) {
	if len(queries) > m.batchSize {
		panic("gpuonly: batch larger than configured batchSize")
	}
	gpu.CopyToDeviceAsync(m.stream, m.hdr, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(m.stream, m.qbuf, 0, queries)
	grid := gpu.Grid{Blocks: (m.t.n + m.blockDim - 1) / m.blockDim, BlockDim: m.blockDim}
	m.stream.LaunchAsync(grid, bruteKernel(m.t.sets, m.t.n, m.qbuf, len(queries), m.hdr, m.outQ, m.outS, m.maxPairs, true))
	hdrHost := make([]uint32, 2)
	gpu.CopyFromDeviceAsync(m.stream, m.hdr, hdrHost, 0)
	m.stream.Synchronize()

	if hdrHost[1] != 0 || int(hdrHost[0]) > m.maxPairs {
		for qi, q := range queries {
			for s, v := range m.t.sets.Data()[:m.t.n] {
				if v.SubsetOf(q) {
					m.t.visitKeys(uint32(s), func(k Key) { visit(qi, k) })
				}
			}
		}
		return
	}
	n := int(hdrHost[0])
	qs := make([]uint32, n)
	ss := make([]uint32, n)
	if n > 0 {
		if err := m.outQ.CopyFromDevice(qs, 0); err != nil {
			panic(err)
		}
		if err := m.outS.CopyFromDevice(ss, 0); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		qi := int(qs[i])
		m.t.visitKeys(ss[i], func(k Key) { visit(qi, k) })
	}
}

// Close releases device resources.
func (m *Batched) Close() {
	m.stream.Synchronize()
	m.qbuf.Free()
	m.hdr.Free()
	m.outQ.Free()
	m.outS.Free()
	m.stream.Close()
	m.t.free()
}
