package gpuonly

import (
	"sort"
	"sync/atomic"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// DynPar is the alternative GPU-only architecture of §4.5: the
// pre-process stage also runs on the GPU, appending queries to
// per-partition queues in global device memory via atomic operations,
// and subset-match kernels are launched from the device through dynamic
// parallelism.
//
// The paper found this design underperforms whenever many queries
// survive pre-processing: the per-partition queues induce heavy atomic
// traffic and near-random writes into (slow) global memory, and results
// still have to be synchronized back to the CPU. Both effects are
// present here — the queue appends are atomic ops on the simulated
// device and the nested launches serialize behind their parent block —
// so the ablation benchmark reproduces the crossover.
//
// One simplification relative to a real CUDA implementation: queue
// flushes happen in a device-side drain pass after the pre-process grid
// (launched with dynamic parallelism per non-empty queue) rather than
// racily mid-kernel; this favors the design, making the measured
// disadvantage conservative.
type DynPar struct {
	dev    *gpu.Device
	stream *gpu.Stream

	sets  *gpu.Buffer[bitvec.Vector]
	masks *gpu.Buffer[bitvec.Vector]
	parts []dynPartition
	n     int

	keyOff []uint32
	keys   []Key

	qbuf   *gpu.Buffer[bitvec.Vector]
	queues *gpu.Buffer[uint32] // per-partition query queues, qcap each
	qlens  *gpu.Buffer[uint32] // per-partition queue lengths (atomics)
	hdr    *gpu.Buffer[uint32] // result [count, overflow]
	outQ   *gpu.Buffer[uint32]
	outS   *gpu.Buffer[uint32]

	batchSize int
	qcap      int
	maxPairs  int
	blockDim  int
}

type dynPartition struct {
	off, n int
}

// NewDynPar uploads the database, split into contiguous partitions of at
// most maxP lexicographically sorted sets; each partition's mask is the
// intersection of its members (the tightest mask all members share).
func NewDynPar(dev *gpu.Device, sigs []bitvec.Vector, keysBySet [][]Key, maxP, batchSize, maxPairs int) (*DynPar, error) {
	d := &DynPar{
		dev: dev, n: len(sigs),
		batchSize: batchSize, qcap: batchSize, maxPairs: maxPairs, blockDim: 256,
	}
	order := make([]int, len(sigs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bitvec.Less(sigs[order[a]], sigs[order[b]]) })
	flat := make([]bitvec.Vector, len(sigs))
	d.keyOff = make([]uint32, 1, len(sigs)+1)
	for i, o := range order {
		flat[i] = sigs[o]
		d.keys = append(d.keys, keysBySet[o]...)
		d.keyOff = append(d.keyOff, uint32(len(d.keys)))
	}

	var masks []bitvec.Vector
	for off := 0; off < len(flat); off += maxP {
		end := min(off+maxP, len(flat))
		mask := flat[off]
		for _, v := range flat[off+1 : end] {
			mask = mask.And(v)
		}
		d.parts = append(d.parts, dynPartition{off: off, n: end - off})
		masks = append(masks, mask)
	}

	var err error
	if d.stream, err = dev.OpenStream(); err != nil {
		return nil, err
	}
	d.sets, err = gpu.Alloc[bitvec.Vector](dev, len(flat))
	if err != nil {
		return nil, err
	}
	if err = d.sets.CopyToDevice(0, flat); err != nil {
		return nil, err
	}
	d.masks, err = gpu.Alloc[bitvec.Vector](dev, len(masks))
	if err != nil {
		return nil, err
	}
	if err = d.masks.CopyToDevice(0, masks); err != nil {
		return nil, err
	}
	d.qbuf = gpu.MustAlloc[bitvec.Vector](dev, batchSize)
	d.queues = gpu.MustAlloc[uint32](dev, len(d.parts)*d.qcap)
	d.qlens = gpu.MustAlloc[uint32](dev, len(d.parts))
	d.hdr = gpu.MustAlloc[uint32](dev, 2)
	d.outQ = gpu.MustAlloc[uint32](dev, maxPairs)
	d.outS = gpu.MustAlloc[uint32](dev, maxPairs)
	return d, nil
}

// MatchBatch routes a batch of queries entirely on the device: an
// on-device pre-process kernel, then a drain kernel that launches one
// nested subset-match kernel per non-empty partition queue.
func (d *DynPar) MatchBatch(queries []bitvec.Vector, visit func(int, Key)) {
	if len(queries) > d.batchSize {
		panic("gpuonly: batch larger than configured batchSize")
	}
	nQ := len(queries)
	gpu.CopyToDeviceAsync(d.stream, d.hdr, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(d.stream, d.qlens, 0, make([]uint32, len(d.parts)))
	gpu.CopyToDeviceAsync(d.stream, d.qbuf, 0, queries)

	// Pre-process kernel: one thread per query, scanning every partition
	// mask and appending to queues in global memory — the atomic-heavy,
	// scatter-heavy pattern §4.5 describes.
	preGrid := gpu.Grid{Blocks: (nQ + d.blockDim - 1) / d.blockDim, BlockDim: d.blockDim}
	d.stream.LaunchAsync(preGrid, func(b *gpu.BlockCtx) {
		qs := d.qbuf.Data()[:nQ]
		masks := d.masks.Data()
		queues, qlens := d.queues.Data(), d.qlens.Data()
		hdr := d.hdr.Data()
		b.Threads(func(tid int) {
			qi := b.GlobalID(tid)
			if qi >= nQ {
				return
			}
			for p := range masks {
				if masks[p].SubsetOf(qs[qi]) {
					slot := b.AtomicAddU32(&qlens[p], 1)
					if int(slot) < d.qcap {
						queues[p*d.qcap+int(slot)] = uint32(qi)
					} else {
						// Queue overflow: flag so the host falls back,
						// otherwise this query's matches would be lost.
						atomic.StoreUint32(&hdr[1], 1)
					}
				}
			}
		})
	})

	// Drain kernel: dynamic parallelism — one nested subset-match kernel
	// per non-empty partition queue.
	d.stream.LaunchAsync(gpu.Grid{Blocks: 1, BlockDim: 1}, func(b *gpu.BlockCtx) {
		qlens := d.qlens.Data()
		b.Threads(func(int) {
			for p := range d.parts {
				qlen := int(atomic.LoadUint32(&qlens[p]))
				if qlen == 0 {
					continue
				}
				if qlen > d.qcap {
					qlen = d.qcap
				}
				part := d.parts[p]
				grid := gpu.Grid{Blocks: (part.n + d.blockDim - 1) / d.blockDim, BlockDim: d.blockDim}
				b.LaunchNested(grid, d.partitionKernel(part, p, qlen, nQ))
			}
		})
	})

	hdrHost := make([]uint32, 2)
	gpu.CopyFromDeviceAsync(d.stream, d.hdr, hdrHost, 0)
	d.stream.Synchronize()

	if hdrHost[1] != 0 || int(hdrHost[0]) > d.maxPairs {
		// Queue or result overflow: host fallback.
		for qi, q := range queries {
			for s, v := range d.sets.Data()[:d.n] {
				if v.SubsetOf(q) {
					d.visitKeys(uint32(s), func(k Key) { visit(qi, k) })
				}
			}
		}
		return
	}
	n := int(hdrHost[0])
	qs := make([]uint32, n)
	ss := make([]uint32, n)
	if n > 0 {
		if err := d.outQ.CopyFromDevice(qs, 0); err != nil {
			panic(err)
		}
		if err := d.outS.CopyFromDevice(ss, 0); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		qi := int(qs[i])
		d.visitKeys(ss[i], func(k Key) { visit(qi, k) })
	}
}

// partitionKernel is the nested subset-match kernel over one partition's
// queued queries.
func (d *DynPar) partitionKernel(part dynPartition, p, qlen, nQ int) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		sets := d.sets.Data()[part.off : part.off+part.n]
		allQ := d.qbuf.Data()[:nQ]
		queue := d.queues.Data()[p*d.qcap : p*d.qcap+qlen]
		hdr, oq, os := d.hdr.Data(), d.outQ.Data(), d.outS.Data()
		first := b.FirstGlobalID()
		if first >= len(sets) {
			return
		}
		block := sets[first:min(first+b.Grid.BlockDim, len(sets))]
		b.Threads(func(tid int) {
			if tid >= len(block) {
				return
			}
			set := block[tid]
			setID := uint32(part.off + first + tid)
			for _, qi := range queue {
				if set.SubsetOf(allQ[qi]) {
					idx := int(b.AtomicAddU32(&hdr[0], 1))
					if idx >= d.maxPairs {
						atomic.StoreUint32(&hdr[1], 1)
						return
					}
					oq[idx] = qi
					os[idx] = setID
				}
			}
		})
	}
}

func (d *DynPar) visitKeys(setID uint32, visit func(Key)) {
	for _, k := range d.keys[d.keyOff[setID]:d.keyOff[setID+1]] {
		visit(k)
	}
}

// Partitions returns the number of device-side partitions.
func (d *DynPar) Partitions() int { return len(d.parts) }

// Close releases device resources.
func (d *DynPar) Close() {
	d.stream.Synchronize()
	d.sets.Free()
	d.masks.Free()
	d.qbuf.Free()
	d.queues.Free()
	d.qlens.Free()
	d.hdr.Free()
	d.outQ.Free()
	d.outS.Free()
	d.stream.Close()
}
