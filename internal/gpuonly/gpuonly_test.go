package gpuonly

import (
	"math/rand"
	"sort"
	"testing"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

type fixture struct {
	sigs []bitvec.Vector
	keys [][]Key
}

func makeFixture(n int, seed int64) *fixture {
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{}
	seen := map[bitvec.Vector]bool{}
	for len(f.sigs) < n {
		var v bitvec.Vector
		for j := 0; j < 35; j++ {
			v.Set(rng.Intn(bitvec.W))
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		f.sigs = append(f.sigs, v)
		ks := []Key{Key(len(f.sigs))}
		if rng.Intn(3) == 0 {
			ks = append(ks, Key(1000000+len(f.sigs)))
		}
		f.keys = append(f.keys, ks)
	}
	return f
}

func (f *fixture) queries(n int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bitvec.Vector, n)
	for i := range out {
		q := f.sigs[rng.Intn(len(f.sigs))]
		for j := 0; j < 14; j++ {
			q.Set(rng.Intn(bitvec.W))
		}
		out[i] = q
	}
	return out
}

func (f *fixture) expected(q bitvec.Vector) []Key {
	var out []Key
	for i, v := range f.sigs {
		if v.SubsetOf(q) {
			out = append(out, f.keys[i]...)
		}
	}
	sortK(out)
	return out
}

func sortK(k []Key) { sort.Slice(k, func(i, j int) bool { return k[i] < k[j] }) }

func equalK(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlainMatchesBruteForce(t *testing.T) {
	f := makeFixture(3000, 81)
	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	p, err := NewPlain(dev, f.sigs, f.keys, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, q := range f.queries(50, 82) {
		var got []Key
		p.Match(q, func(k Key) { got = append(got, k) })
		sortK(got)
		if want := f.expected(q); !equalK(got, want) {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPlainOverflowFallback(t *testing.T) {
	f := makeFixture(500, 83)
	dev := gpu.New(gpu.Config{Workers: 2})
	defer dev.Close()
	p, err := NewPlain(dev, f.sigs, f.keys, 1) // force overflow
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q := f.queries(1, 84)[0]
	var got []Key
	p.Match(q, func(k Key) { got = append(got, k) })
	sortK(got)
	if want := f.expected(q); !equalK(got, want) {
		t.Fatalf("overflow fallback wrong: got %v want %v", got, want)
	}
}

func TestBatchedMatchesBruteForce(t *testing.T) {
	f := makeFixture(3000, 85)
	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	m, err := NewBatched(dev, f.sigs, f.keys, 64, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	queries := f.queries(64, 86)
	got := make([][]Key, len(queries))
	m.MatchBatch(queries, func(qi int, k Key) { got[qi] = append(got[qi], k) })
	for i, q := range queries {
		sortK(got[i])
		if want := f.expected(q); !equalK(got[i], want) {
			t.Fatalf("query %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestBatchedPartialBatch(t *testing.T) {
	f := makeFixture(1000, 87)
	dev := gpu.New(gpu.Config{Workers: 2})
	defer dev.Close()
	m, err := NewBatched(dev, f.sigs, f.keys, 256, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	queries := f.queries(3, 88)
	got := make([][]Key, len(queries))
	m.MatchBatch(queries, func(qi int, k Key) { got[qi] = append(got[qi], k) })
	for i, q := range queries {
		sortK(got[i])
		if want := f.expected(q); !equalK(got[i], want) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestBatchedTooLargePanics(t *testing.T) {
	f := makeFixture(100, 89)
	dev := gpu.New(gpu.Config{Workers: 2})
	defer dev.Close()
	m, err := NewBatched(dev, f.sigs, f.keys, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch should panic")
		}
	}()
	m.MatchBatch(make([]bitvec.Vector, 5), func(int, Key) {})
}

func TestDynParMatchesBruteForce(t *testing.T) {
	f := makeFixture(3000, 90)
	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	d, err := NewDynPar(dev, f.sigs, f.keys, 200, 64, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Partitions() < 3000/200 {
		t.Fatalf("partitions = %d", d.Partitions())
	}
	queries := f.queries(64, 91)
	got := make([][]Key, len(queries))
	d.MatchBatch(queries, func(qi int, k Key) { got[qi] = append(got[qi], k) })
	for i, q := range queries {
		sortK(got[i])
		if want := f.expected(q); !equalK(got[i], want) {
			t.Fatalf("query %d: got %d keys want %d", i, len(got[i]), len(f.expected(q)))
		}
	}
	// The defining trait: device-side pre-processing uses atomics and
	// nested launches.
	st := dev.Stats()
	if st.AtomicOps == 0 || st.NestedLaunches == 0 {
		t.Fatalf("dynamic-parallelism design must show atomics and nested launches: %+v", st)
	}
}

func TestDynParQueueOverflowFallsBack(t *testing.T) {
	f := makeFixture(300, 92)
	dev := gpu.New(gpu.Config{Workers: 2})
	defer dev.Close()
	// qcap = batchSize = 4, but a broad query set routed to few
	// partitions can overflow per-partition queues; correctness must
	// survive via host fallback.
	d, err := NewDynPar(dev, f.sigs, f.keys, 300 /* one partition */, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	queries := f.queries(4, 93)
	got := make([][]Key, len(queries))
	d.MatchBatch(queries, func(qi int, k Key) { got[qi] = append(got[qi], k) })
	for i, q := range queries {
		sortK(got[i])
		if want := f.expected(q); !equalK(got[i], want) {
			t.Fatalf("query %d mismatch after queue pressure", i)
		}
	}
}
