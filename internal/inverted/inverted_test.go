package inverted

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func randomTagSets(n, maxTags, vocab int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, n)
	for i := range out {
		k := 1 + rng.Intn(maxTags)
		out[i] = make([]string, k)
		for j := range out[i] {
			out[i][j] = fmt.Sprintf("t%d", rng.Intn(vocab))
		}
	}
	return out
}

func build(sets [][]string) *Matcher {
	m := New()
	for i, s := range sets {
		m.Add(s, Key(i))
	}
	m.Freeze()
	return m
}

func bruteForce(sets [][]string, q []string) []Key {
	qset := map[string]bool{}
	for _, t := range q {
		qset[t] = true
	}
	var out []Key
	for i, s := range sets {
		ok := true
		for _, t := range s {
			if !qset[t] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Key(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collect(m *Matcher, q []string, unique bool) []Key {
	var out []Key
	if unique {
		m.MatchUnique(q, func(k Key) { out = append(out, k) })
	} else {
		m.Match(q, func(k Key) { out = append(out, k) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalKeys(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicMatch(t *testing.T) {
	sets := [][]string{
		{"a", "b"},
		{"a"},
		{"c"},
		{"a", "b", "c"},
	}
	m := build(sets)
	if got := collect(m, []string{"a", "b"}, false); !equalKeys(got, []Key{0, 1}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(m, []string{"a", "b", "c", "d"}, false); !equalKeys(got, []Key{0, 1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(m, []string{"z"}, false); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestExactNoFalsePositives(t *testing.T) {
	// Unlike the Bloom matchers, counting on actual tags is exact even
	// over tiny shared vocabularies.
	sets := randomTagSets(5000, 4, 50, 91)
	m := build(sets)
	queries := randomTagSets(100, 12, 50, 92)
	for _, q := range queries {
		if got, want := collect(m, q, false), bruteForce(sets, q); !equalKeys(got, want) {
			t.Fatalf("got %d keys, want %d", len(got), len(want))
		}
	}
}

func TestDuplicateQueryTagsDoNotDoubleCount(t *testing.T) {
	m := build([][]string{{"a", "b"}})
	// "a" twice must not make the counter reach cardinality 2.
	if got := collect(m, []string{"a", "a"}, false); len(got) != 0 {
		t.Fatalf("duplicate query tags double-counted: %v", got)
	}
	if got := collect(m, []string{"a", "a", "b"}, false); !equalKeys(got, []Key{0}) {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicateStoredTags(t *testing.T) {
	m := New()
	m.Add([]string{"x", "x", "y"}, 5)
	m.Freeze()
	if got := collect(m, []string{"x", "y"}, false); !equalKeys(got, []Key{5}) {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyStoredSetMatchesAll(t *testing.T) {
	m := New()
	m.Add(nil, 9)
	m.Add([]string{"a"}, 10)
	m.Freeze()
	if got := collect(m, []string{"zzz"}, false); !equalKeys(got, []Key{9}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(m, nil, false); !equalKeys(got, []Key{9}) {
		t.Fatalf("empty query: %v", got)
	}
}

func TestDuplicateSetsAccumulateKeys(t *testing.T) {
	m := New()
	m.Add([]string{"b", "a"}, 1)
	m.Add([]string{"a", "b"}, 2) // same canonical set
	m.Freeze()
	if m.Sets() != 1 || m.Keys() != 2 {
		t.Fatalf("Sets=%d Keys=%d", m.Sets(), m.Keys())
	}
	if got := collect(m, []string{"a", "b"}, false); !equalKeys(got, []Key{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestMatchUnique(t *testing.T) {
	m := New()
	m.Add([]string{"a"}, 7)
	m.Add([]string{"b"}, 7)
	m.Freeze()
	if got := collect(m, []string{"a", "b"}, false); !equalKeys(got, []Key{7, 7}) {
		t.Fatalf("match: %v", got)
	}
	if got := collect(m, []string{"a", "b"}, true); !equalKeys(got, []Key{7}) {
		t.Fatalf("unique: %v", got)
	}
}

func TestLifecyclePanics(t *testing.T) {
	m := New()
	m.Add([]string{"a"}, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Match before Freeze should panic")
			}
		}()
		m.Match([]string{"a"}, func(Key) {})
	}()
	m.Freeze()
	m.Freeze() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Add after Freeze should panic")
		}
	}()
	m.Add([]string{"b"}, 2)
}

func TestConcurrentMatch(t *testing.T) {
	sets := randomTagSets(3000, 4, 80, 93)
	m := build(sets)
	queries := randomTagSets(50, 10, 80, 94)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				if !equalKeys(collect(m, q, false), bruteForce(sets, q)) {
					errs <- "mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := build(randomTagSets(1000, 4, 100, 95))
	if m.MemoryBytes() <= 0 {
		t.Fatal("memory not accounted")
	}
}

func TestCount(t *testing.T) {
	m := build([][]string{{"a"}, {"a", "b"}})
	if got := m.Count([]string{"a", "b", "c"}); got != 2 {
		t.Fatalf("Count = %d", got)
	}
}

// Property: equivalence with brute force for arbitrary small inputs.
func TestQuickEquivalence(t *testing.T) {
	f := func(rawSets [][]byte, rawQ []byte) bool {
		sets := make([][]string, len(rawSets))
		for i, rs := range rawSets {
			for _, b := range rs {
				sets[i] = append(sets[i], fmt.Sprintf("t%d", b%16))
			}
		}
		var q []string
		for _, b := range rawQ {
			q = append(q, fmt.Sprintf("t%d", b%16))
		}
		return equalKeys(collect(build(sets), q, false), bruteForce(sets, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInvertedMatch(b *testing.B) {
	sets := randomTagSets(100000, 5, 3000, 96)
	m := build(sets)
	queries := randomTagSets(256, 9, 3000, 97)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(queries[i&255])
	}
}
