// Package inverted implements the counting-based subset matcher built on
// an inverted index — the second classical solution family the paper
// describes (§1, §5): "for each element x, an inverted index stores the
// list list(x) of all sets s_i that contain element x ... subset matching
// amounts to counting how many times each set appears in all the lists"
// (Yan & Garcia-Molina, TODS 1994).
//
// The index maps each tag to the posting list of set ids containing it.
// A set with n distinct tags matches a query exactly when it appears in n
// of the query's posting lists, so matching scans the query tags'
// posting lists and counts occurrences per set id. Unlike the signature
// matchers, this operates on the actual tags — it is exact, with no
// Bloom false positives — at the cost of string hashing per query tag
// and counter memory proportional to the touched postings.
//
// The matcher is immutable after Freeze and safe for concurrent Match
// calls; each call uses its own counting scratch (from an internal pool)
// so concurrent queries do not contend.
package inverted

import (
	"sort"
	"sync"
)

// Key is the application value associated with a stored set.
type Key = uint32

// setID indexes the deduplicated stored sets.
type setID = uint32

// Matcher is a counting-based subset matcher over an inverted index.
type Matcher struct {
	postings map[string][]setID // tag → sorted list of sets containing it
	cardinal []uint16           // set id → number of distinct tags
	keyOff   []uint32           // CSR: set id → keys
	keys     []Key
	emptyIDs []setID // sets with zero tags match every query

	bySet  map[string]setID // canonical tag-set encoding → id (build only)
	tagSeq [][]string       // set id → its distinct tags (build only)
	keysBy [][]Key          // set id → keys (build only)
	frozen bool

	scratch sync.Pool // *counterSet
}

// counterSet is a sparse counting scratch: counts addressed by set id
// with a touched-list for O(touched) reset.
type counterSet struct {
	counts  []uint16
	touched []setID
}

// New returns an empty matcher.
func New() *Matcher {
	m := &Matcher{
		postings: make(map[string][]setID),
		bySet:    make(map[string]setID),
	}
	m.scratch.New = func() any { return &counterSet{} }
	return m
}

// canonical returns a canonical string encoding of a deduplicated,
// sorted tag list.
func canonical(tags []string) ([]string, string) {
	d := make([]string, 0, len(tags))
	seen := make(map[string]struct{}, len(tags))
	for _, t := range tags {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			d = append(d, t)
		}
	}
	sort.Strings(d)
	var enc []byte
	for _, t := range d {
		enc = append(enc, byte(len(t)>>8), byte(len(t)))
		enc = append(enc, t...)
	}
	return d, string(enc)
}

// Add associates a key with a tag set. Duplicate tag sets accumulate
// keys. Panics after Freeze.
func (m *Matcher) Add(tags []string, key Key) {
	if m.frozen {
		panic("inverted: Add after Freeze")
	}
	distinct, enc := canonical(tags)
	id, ok := m.bySet[enc]
	if !ok {
		id = setID(len(m.tagSeq))
		m.bySet[enc] = id
		m.tagSeq = append(m.tagSeq, distinct)
		m.keysBy = append(m.keysBy, nil)
	}
	m.keysBy[id] = append(m.keysBy[id], key)
}

// Freeze builds the final posting lists and releases build-time state.
// It must be called before Match.
func (m *Matcher) Freeze() {
	if m.frozen {
		return
	}
	m.frozen = true
	m.cardinal = make([]uint16, len(m.tagSeq))
	m.keyOff = make([]uint32, 1, len(m.tagSeq)+1)
	for id, tags := range m.tagSeq {
		if len(tags) > 65535 {
			panic("inverted: tag set too large")
		}
		m.cardinal[id] = uint16(len(tags))
		if len(tags) == 0 {
			m.emptyIDs = append(m.emptyIDs, setID(id))
		}
		for _, t := range tags {
			m.postings[t] = append(m.postings[t], setID(id))
		}
		m.keys = append(m.keys, m.keysBy[id]...)
		m.keyOff = append(m.keyOff, uint32(len(m.keys)))
	}
	m.bySet = nil
	m.tagSeq = nil
	m.keysBy = nil
}

// Sets returns the number of distinct stored tag sets.
func (m *Matcher) Sets() int { return len(m.cardinal) }

// Keys returns the number of stored associations.
func (m *Matcher) Keys() int { return len(m.keys) }

// MemoryBytes estimates the index's resident size.
func (m *Matcher) MemoryBytes() int64 {
	var n int64
	for t, p := range m.postings {
		n += int64(len(t)) + 16 + int64(len(p))*4
	}
	return n + int64(len(m.cardinal))*2 + int64(len(m.keys))*4 + int64(len(m.keyOff))*4
}

// Match visits the keys of every stored set contained in the query tags,
// once per association. Matching is exact (no false positives).
func (m *Matcher) Match(query []string, visit func(Key)) {
	if !m.frozen {
		panic("inverted: Match before Freeze")
	}
	cs := m.scratch.Get().(*counterSet)
	defer m.scratch.Put(cs)
	if len(cs.counts) < len(m.cardinal) {
		cs.counts = make([]uint16, len(m.cardinal))
	}

	// Count each set's occurrences across the query tags' posting lists.
	// Duplicate query tags must not double-count.
	seen := make(map[string]struct{}, len(query))
	for _, t := range query {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		for _, id := range m.postings[t] {
			if cs.counts[id] == 0 {
				cs.touched = append(cs.touched, id)
			}
			cs.counts[id]++
		}
	}

	for _, id := range cs.touched {
		if cs.counts[id] == m.cardinal[id] {
			for _, k := range m.keys[m.keyOff[id]:m.keyOff[id+1]] {
				visit(k)
			}
		}
		cs.counts[id] = 0
	}
	cs.touched = cs.touched[:0]

	// Empty stored sets are subsets of every query.
	for _, id := range m.emptyIDs {
		for _, k := range m.keys[m.keyOff[id]:m.keyOff[id+1]] {
			visit(k)
		}
	}
}

// MatchUnique visits each distinct matching key once.
func (m *Matcher) MatchUnique(query []string, visit func(Key)) {
	dedup := make(map[Key]struct{})
	m.Match(query, func(k Key) {
		if _, dup := dedup[k]; !dup {
			dedup[k] = struct{}{}
			visit(k)
		}
	})
}

// Count returns the number of matching associations.
func (m *Matcher) Count(query []string) int {
	n := 0
	m.Match(query, func(Key) { n++ })
	return n
}
