package inverted

import (
	"fmt"
	"testing"

	"tagmatch/internal/hashsub"
)

// FuzzMatchersAgree derives a database and a query from fuzz bytes and
// checks that the inverted-index counting matcher, the hash-table
// subset matcher, and a brute-force scan all return identical key
// multisets. Three independent implementations agreeing on arbitrary
// inputs is strong evidence all three are right.
func FuzzMatchersAgree(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5, 0, 6}, []byte{1, 4, 6})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0}, []byte{9})
	f.Fuzz(func(t *testing.T, dbBytes, qBytes []byte) {
		// Decode: zero bytes separate sets; values mod 16 are tags.
		var sets [][]string
		var cur []string
		for _, b := range dbBytes {
			if b == 0 {
				sets = append(sets, cur)
				cur = nil
				continue
			}
			cur = append(cur, fmt.Sprintf("t%d", b%16))
		}
		sets = append(sets, cur)
		if len(sets) > 64 {
			sets = sets[:64]
		}
		var query []string
		for _, b := range qBytes {
			query = append(query, fmt.Sprintf("t%d", b%16))
		}
		if len(query) > 12 {
			query = query[:12]
		}

		inv := New()
		hs := hashsub.New()
		for i, s := range sets {
			inv.Add(s, Key(i))
			hs.Add(s, hashsub.Key(i))
		}
		inv.Freeze()
		hs.Freeze()

		counts := func(visit func(func(uint32))) map[uint32]int {
			m := map[uint32]int{}
			visit(func(k uint32) { m[k]++ })
			return m
		}
		got := counts(func(v func(uint32)) { inv.Match(query, v) })
		got2 := counts(func(v func(uint32)) {
			if err := hs.Match(query, v); err != nil {
				t.Fatal(err)
			}
		})
		want := map[uint32]int{}
		qset := map[string]bool{}
		for _, tg := range query {
			qset[tg] = true
		}
		for i, s := range sets {
			ok := true
			for _, tg := range s {
				if !qset[tg] {
					ok = false
					break
				}
			}
			if ok {
				want[uint32(i)]++
			}
		}

		for name, m := range map[string]map[uint32]int{"inverted": got, "hashsub": got2} {
			if len(m) != len(want) {
				t.Fatalf("%s: %d matched sets, brute force %d (query %v)", name, len(m), len(want), query)
			}
			for k, c := range want {
				if m[k] != c {
					t.Fatalf("%s: key %d count %d, want %d", name, k, m[k], c)
				}
			}
		}
	})
}
