package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tagmatch/internal/bitvec"
)

func TestHashTagDeterministic(t *testing.T) {
	a := HashTag("hello")
	b := HashTag("hello")
	if a != b {
		t.Fatal("HashTag not deterministic")
	}
	c := HashTag("world")
	if a == c {
		t.Fatal("distinct tags produced identical positions (suspicious)")
	}
	for _, p := range a {
		if p < 0 || p >= M {
			t.Fatalf("position %d out of range", p)
		}
	}
}

func TestSignatureSubsetPreserved(t *testing.T) {
	// S1 ⊆ S2 must imply B1 ⊆ B2 — this is the no-false-negative
	// guarantee that the whole system depends on.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		super := make([]string, n+rng.Intn(5))
		for i := range super {
			super[i] = fmt.Sprintf("tag-%d-%d", trial, rng.Intn(1000))
		}
		sub := super[:n]
		bSub, bSuper := Signature(sub), Signature(super)
		if !bSub.SubsetOf(bSuper) {
			t.Fatalf("signature of subset not subset of signature: %v vs %v", sub, super)
		}
	}
}

func TestSignatureEmpty(t *testing.T) {
	if !Signature(nil).IsZero() {
		t.Fatal("empty set should have zero signature")
	}
}

func TestSignatureDuplicateTags(t *testing.T) {
	a := Signature([]string{"x", "y"})
	b := Signature([]string{"x", "y", "x", "y", "y"})
	if a != b {
		t.Fatal("duplicate tags should not change the signature")
	}
}

func TestSignatureOrderIndependent(t *testing.T) {
	a := Signature([]string{"a", "b", "c"})
	b := Signature([]string{"c", "a", "b"})
	if a != b {
		t.Fatal("signature should not depend on tag order")
	}
}

func TestMightContain(t *testing.T) {
	tags := []string{"news", "sports", "go"}
	sig := Signature(tags)
	for _, tag := range tags {
		if !MightContain(sig, tag) {
			t.Fatalf("MightContain(%q) = false for member tag", tag)
		}
	}
	// A random long tag is overwhelmingly unlikely to be a false positive
	// in a 3-tag signature.
	if MightContain(sig, "definitely-not-present-tag-xyzzy-123456789") {
		t.Log("false positive for absent tag (possible but unlikely)")
	}
}

func TestFalsePositiveProb(t *testing.T) {
	// Footnote 3: m=192, k=7, |S2|=10, diff=3 gives ~1e-11.
	p := FalsePositiveProb(10, 3)
	if p > 1e-9 || p <= 0 {
		t.Fatalf("P(10,3) = %g, want around 1e-11", p)
	}
	// |S2|=5, diff=2 is also about 1e-11 per the paper.
	p2 := FalsePositiveProb(5, 2)
	if p2 > 1e-9 || p2 <= 0 {
		t.Fatalf("P(5,2) = %g, want around 1e-11", p2)
	}
	if FalsePositiveProb(10, 0) != 1 {
		t.Fatal("diff=0 means subset: probability of inclusion should be 1")
	}
	if FalsePositiveProb(0, 3) != 0 {
		t.Fatal("empty query cannot contain a non-empty set")
	}
	// Monotonicity: more missing elements → lower probability.
	if !(FalsePositiveProb(10, 4) < FalsePositiveProb(10, 2)) {
		t.Fatal("false-positive probability should decrease with diff")
	}
	// Larger query → higher probability.
	if !(FalsePositiveProb(20, 2) > FalsePositiveProb(5, 2)) {
		t.Fatal("false-positive probability should increase with |S2|")
	}
}

func TestExpectedOnes(t *testing.T) {
	if got := ExpectedOnes(0); got != 0 {
		t.Fatalf("ExpectedOnes(0) = %g", got)
	}
	one := ExpectedOnes(1)
	if one < 6.5 || one > 7.0 {
		t.Fatalf("ExpectedOnes(1) = %g, want just under 7", one)
	}
	// Saturation: very large sets approach m.
	if got := ExpectedOnes(10000); math.Abs(got-M) > 1 {
		t.Fatalf("ExpectedOnes(10000) = %g, want ≈ %d", got, M)
	}
	// Monotonic.
	prev := 0.0
	for n := 1; n < 100; n++ {
		cur := ExpectedOnes(n)
		if cur <= prev {
			t.Fatalf("ExpectedOnes not increasing at n=%d", n)
		}
		prev = cur
	}
}

func TestMeasuredFalsePositiveRateIsLow(t *testing.T) {
	// Empirical sanity check of the Bloom parameters: generate database
	// sets of 5 tags and queries of 8 unrelated tags; bitwise inclusion
	// should almost never hold.
	rng := rand.New(rand.NewSource(99))
	fp := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		db := make([]string, 5)
		for j := range db {
			db[j] = fmt.Sprintf("d%d-%d", i, j)
		}
		q := make([]string, 8)
		for j := range q {
			q[j] = fmt.Sprintf("q%d-%d-%d", i, j, rng.Int())
		}
		if Signature(db).SubsetOf(Signature(q)) {
			fp++
		}
	}
	if fp > 2 {
		t.Fatalf("measured %d false positives in %d trials; Bloom parameters broken", fp, trials)
	}
}

// Property: signatures are unions of per-tag signatures.
func TestQuickSignatureIsUnion(t *testing.T) {
	f := func(raw []string) bool {
		var union bitvec.Vector
		for _, tag := range raw {
			union = union.Or(Signature([]string{tag}))
		}
		return union == Signature(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every member tag passes MightContain.
func TestQuickMightContainMembers(t *testing.T) {
	f := func(raw []string) bool {
		sig := Signature(raw)
		for _, tag := range raw {
			if !MightContain(sig, tag) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignature5Tags(b *testing.B) {
	tags := []string{"en_news", "en_sports", "en_go", "en_gpu", "user:42"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Signature(tags)
	}
}

func TestSharedVocabularyFalsePositiveRate(t *testing.T) {
	// Regression test: with a small shared vocabulary ("a:0".."a:2999"),
	// the original Kirsch–Mitzenmacher probe scheme produced a ~5%
	// false-positive rate for 1-tag sets against 12-tag queries — 70x
	// the footnote-3 formula. The mixed-probe scheme must stay close to
	// the formula (~7e-4 here; allow 4x slack for sampling noise).
	rng := rand.New(rand.NewSource(2))
	tag := func(i int) string { return fmt.Sprintf("a:%d", i) }
	fp, trials := 0, 100000
	for i := 0; i < trials; i++ {
		used := map[int]bool{}
		tags := make([]string, 12)
		for j := range tags {
			k := rng.Intn(3000)
			used[k] = true
			tags[j] = tag(k)
		}
		q := Signature(tags)
		var f int
		for {
			f = rng.Intn(3000)
			if !used[f] {
				break
			}
		}
		if MightContain(q, tag(f)) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 4*FalsePositiveProb(12, 1) {
		t.Fatalf("1-tag false-positive rate %.5f far above formula %.5f: hash distribution degraded",
			rate, FalsePositiveProb(12, 1))
	}
}

func TestHashTagBitUniformity(t *testing.T) {
	var hist [M]int
	const n = 20000
	for i := 0; i < n; i++ {
		for _, p := range HashTag(fmt.Sprintf("a:%d", i)) {
			hist[p]++
		}
	}
	mean := float64(n*K) / float64(M)
	for p, h := range hist {
		if float64(h) < mean*0.7 || float64(h) > mean*1.3 {
			t.Fatalf("bit %d hit %d times, mean %.0f: positions not uniform", p, h, mean)
		}
	}
}
