// Package bloom encodes tag sets as fixed-width Bloom-filter signatures.
//
// TagMatch represents every database set and every query as a 192-bit
// Bloom filter with 7 hash functions (paper §3). For Bloom filters B1, B2
// of sets S1, S2, S1 ⊆ S2 implies B1 ⊆ B2 bitwise, and the converse holds
// with high probability; FalsePositiveProb computes the residual
// false-positive probability from the paper's footnote-3 formula.
package bloom

import (
	"hash/fnv"
	"math"

	"tagmatch/internal/bitvec"
)

// K is the number of hash functions per tag.
const K = 7

// M is the signature width in bits (the bitvec width).
const M = bitvec.W

// HashTag returns the K bit positions a single tag sets in the signature.
//
// Each position is derived by running the tag's 64-bit FNV-1a digest
// through a SplitMix64 finalizer with a per-probe increment. Plain
// Kirsch–Mitzenmacher double hashing (h1 + i·h2 mod 192) is NOT adequate
// here: 192 = 2^6·3 interacts with the stride structure and measured
// false-positive rates came out ~70x above the footnote-3 formula;
// independent mixed probes restore the expected uniformity.
func HashTag(tag string) [K]int {
	h := fnv.New64a()
	h.Write([]byte(tag)) // never returns an error
	d := h.Sum64()
	var out [K]int
	for i := 0; i < K; i++ {
		out[i] = int(splitmix64(d+uint64(i)*0x9E3779B97F4A7C15) % M)
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a fast, high-avalanche 64-bit
// mixer (Steele, Lea & Flood, OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// AddTag sets the signature bits of one tag in v.
func AddTag(v *bitvec.Vector, tag string) {
	for _, p := range HashTag(tag) {
		v.Set(p)
	}
}

// Signature encodes a whole tag set as a Bloom-filter signature.
func Signature(tags []string) bitvec.Vector {
	var v bitvec.Vector
	for _, t := range tags {
		AddTag(&v, t)
	}
	return v
}

// MightContain reports whether the signature v could contain tag, i.e.
// whether all of the tag's bit positions are set. False positives are
// possible; false negatives are not.
func MightContain(v bitvec.Vector, tag string) bool {
	for _, p := range HashTag(tag) {
		if !v.Test(p) {
			return false
		}
	}
	return true
}

// FalsePositiveProb returns the probability that a set S1 that is NOT a
// subset of S2 nevertheless has B1 ⊆ B2, following the paper's footnote 3:
//
//	P = (1 - e^(-k·|S2|/m))^(k·|S1\S2|)
//
// where s2 = |S2| is the size of the query set and diff = |S1\S2| > 0 is
// the number of elements of S1 missing from S2.
func FalsePositiveProb(s2, diff int) float64 {
	if diff <= 0 {
		return 1
	}
	if s2 <= 0 {
		return 0
	}
	p := 1 - math.Exp(-float64(K)*float64(s2)/float64(M))
	return math.Pow(p, float64(K*diff))
}

// ExpectedOnes returns the expected number of set bits in the signature of
// a set with n distinct tags: m·(1 − (1 − 1/m)^(k·n)).
func ExpectedOnes(n int) float64 {
	return float64(M) * (1 - math.Pow(1-1.0/float64(M), float64(K*n)))
}
