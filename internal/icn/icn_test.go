package icn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tagmatch/internal/bitvec"
)

func randomVectors(n, tags int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bitvec.Vector, n)
	for i := range out {
		for j := 0; j < tags*7; j++ {
			out[i].Set(rng.Intn(bitvec.W))
		}
	}
	return out
}

func build(vs []bitvec.Vector) *Matcher {
	b := NewBuilder()
	for i, v := range vs {
		b.Add(v, Key(i))
	}
	return b.Build()
}

func collect(m *Matcher, q bitvec.Vector, unique bool) []Key {
	var out []Key
	if unique {
		m.MatchUnique(q, func(k Key) { out = append(out, k) })
	} else {
		m.Match(q, func(k Key) { out = append(out, k) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteForce(vs []bitvec.Vector, q bitvec.Vector) []Key {
	var out []Key
	for i, v := range vs {
		if v.SubsetOf(q) {
			out = append(out, Key(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalKeys(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	m := NewBuilder().Build()
	if got := collect(m, bitvec.FromOnes(1), false); len(got) != 0 {
		t.Fatalf("empty matcher returned %v", got)
	}
}

func TestBasicMatch(t *testing.T) {
	vs := []bitvec.Vector{
		bitvec.FromOnes(1, 50),
		bitvec.FromOnes(1, 50, 100),
		bitvec.FromOnes(2),
	}
	m := build(vs)
	if m.Sets() != 3 || m.Keys() != 3 {
		t.Fatalf("Sets=%d Keys=%d", m.Sets(), m.Keys())
	}
	q := bitvec.FromOnes(1, 50, 100, 150)
	if got := collect(m, q, false); !equalKeys(got, []Key{0, 1}) {
		t.Fatalf("got %v, want [0 1]", got)
	}
}

func TestDuplicateVectors(t *testing.T) {
	v := bitvec.FromOnes(4, 99)
	b := NewBuilder()
	b.Add(v, 1)
	b.Add(v, 2)
	m := b.Build()
	if m.Sets() != 1 || m.Keys() != 2 {
		t.Fatalf("Sets=%d Keys=%d", m.Sets(), m.Keys())
	}
	if got := collect(m, v, false); !equalKeys(got, []Key{1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	vs := randomVectors(5000, 5, 71)
	m := build(vs)
	queries := randomVectors(150, 9, 72)
	for i := 0; i < 100; i++ {
		queries = append(queries, vs[i*17%len(vs)].Or(queries[i%len(queries)]))
	}
	for _, q := range queries {
		got := collect(m, q, false)
		want := bruteForce(vs, q)
		if !equalKeys(got, want) {
			t.Fatalf("query %s: got %d, want %d", q.Hex(), len(got), len(want))
		}
	}
}

func TestMatchUnique(t *testing.T) {
	b := NewBuilder()
	b.Add(bitvec.FromOnes(1), 5)
	b.Add(bitvec.FromOnes(2), 5)
	m := b.Build()
	q := bitvec.FromOnes(1, 2)
	if got := collect(m, q, false); !equalKeys(got, []Key{5, 5}) {
		t.Fatalf("match: %v", got)
	}
	if got := collect(m, q, true); !equalKeys(got, []Key{5}) {
		t.Fatalf("match-unique: %v", got)
	}
}

func TestBuildPeakExceedsResident(t *testing.T) {
	m := build(randomVectors(10000, 5, 73))
	if m.BuildPeakBytes() <= m.MemoryBytes() {
		t.Fatalf("build peak %d should exceed resident %d — the ICN matcher's defining cost",
			m.BuildPeakBytes(), m.MemoryBytes())
	}
	// The paper could only build 20% of the database: peak should be a
	// multiple of resident, not a rounding error above it.
	if m.BuildPeakBytes() < m.MemoryBytes()*2 {
		t.Fatalf("build peak %d < 2x resident %d", m.BuildPeakBytes(), m.MemoryBytes())
	}
}

func TestCount(t *testing.T) {
	m := build([]bitvec.Vector{bitvec.FromOnes(1), bitvec.FromOnes(1, 2)})
	if got := m.Count(bitvec.FromOnes(1, 2, 3)); got != 2 {
		t.Fatalf("Count = %d", got)
	}
}

func TestQuickEquivalence(t *testing.T) {
	f := func(raw []bitvec.Vector, q bitvec.Vector) bool {
		return equalKeys(collect(build(raw), q, false), bruteForce(raw, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMatch(t *testing.T) {
	vs := randomVectors(3000, 5, 74)
	m := build(vs)
	queries := randomVectors(32, 9, 75)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for _, q := range queries {
				done <- equalKeys(collect(m, q, false), bruteForce(vs, q))
			}
		}()
	}
	for i := 0; i < 8*len(queries); i++ {
		if !<-done {
			t.Fatal("concurrent mismatch")
		}
	}
}

func BenchmarkICNMatch(b *testing.B) {
	vs := randomVectors(100000, 5, 76)
	m := build(vs)
	queries := randomVectors(1024, 8, 77)
	for i := range queries {
		queries[i] = queries[i].Or(vs[i*31%len(vs)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(queries[i&1023])
	}
}
