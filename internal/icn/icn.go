// Package icn implements the paper's second CPU baseline: a matcher in
// the style of Papalini et al., "High throughput forwarding for ICN with
// descriptors and locators" (ANCS 2016), the "ICN matcher" of §4.1.
//
// Like that system, this matcher first builds a pointer-based prefix trie
// over the 192-bit signatures and then restructures it into a compressed,
// cache-friendly form — here a DFS-linearized array of nodes with skip
// offsets, so that matching is a single forward scan with subtree pruning
// and no pointer chasing. The restructuring pass is what makes the build
// memory-hungry (the paper could only index 20% of the full Twitter
// database in 64 GB): the transient pointer trie plus the DFS buffers
// peak at several times the final index size, which BuildPeakBytes
// reports.
//
// Matching exploits one elegant property of the linearization: a node's
// stored prefix includes its subtree's branch bits, so the single check
// prefix ⊆ q simultaneously decides descent and branch admissibility; the
// whole match is
//
//	if prefix ⊆ q { next node } else { skip subtree }
//
// three 64-bit operations per visited node over a contiguous array.
package icn

import (
	"tagmatch/internal/bitvec"
)

// Key is the application value associated with a stored set.
type Key = uint32

// builderNode is the transient pointer-trie node used during Build.
type builderNode struct {
	prefix bitvec.Vector
	pos    int
	child  [2]*builderNode
	keys   []Key
}

// flatNode is one entry of the compressed index: the subtree prefix, the
// DFS index just past the subtree (skip target on prune), and the key
// range for leaves.
type flatNode struct {
	prefix bitvec.Vector
	skip   int32
	keyOff int32
	keyLen int32
}

// Matcher answers subset-match queries over a compressed trie.
// Build it with a Builder; a built Matcher is immutable and safe for
// concurrent use.
type Matcher struct {
	nodes []flatNode
	keys  []Key
	sets  int

	buildPeak int64
}

// Builder accumulates (vector, key) associations for a Matcher.
type Builder struct {
	root  *builderNode
	sets  int
	keys  int
	nodes int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add inserts one association.
func (b *Builder) Add(v bitvec.Vector, key Key) {
	b.keys++
	if b.root == nil {
		b.root = &builderNode{prefix: v, pos: bitvec.W, keys: []Key{key}}
		b.sets++
		b.nodes++
		return
	}
	cur := &b.root
	for {
		n := *cur
		d := bitvec.CommonPrefixLen(v, n.prefix)
		if d < n.pos {
			leaf := &builderNode{prefix: v, pos: bitvec.W, keys: []Key{key}}
			branch := &builderNode{prefix: v.Prefix(d), pos: d}
			if v.Test(d) {
				branch.child[1], branch.child[0] = leaf, n
			} else {
				branch.child[0], branch.child[1] = leaf, n
			}
			*cur = branch
			b.sets++
			b.nodes += 2
			return
		}
		if n.pos == bitvec.W {
			n.keys = append(n.keys, key)
			return
		}
		if v.Test(n.pos) {
			cur = &n.child[1]
		} else {
			cur = &n.child[0]
		}
	}
}

// Build restructures the pointer trie into the compressed index and
// discards the transient structures.
func (b *Builder) Build() *Matcher {
	m := &Matcher{sets: b.sets}
	m.nodes = make([]flatNode, 0, b.nodes)
	m.keys = make([]Key, 0, b.keys)
	if b.root != nil {
		m.flatten(b.root)
	}
	// Peak transient memory: the pointer trie (72 B/node plus key slice
	// headers) coexists with the final arrays during flattening.
	const builderNodeBytes = 24 + 8 + 16 + 24
	m.buildPeak = int64(b.nodes)*builderNodeBytes + int64(b.keys)*4 + m.MemoryBytes()
	b.root = nil // allow the pointer trie to be collected
	return m
}

// flatten emits the subtree rooted at n in DFS order (child0 before
// child1) and returns nothing; skip offsets are patched after each
// subtree completes.
func (m *Matcher) flatten(n *builderNode) {
	self := len(m.nodes)
	fn := flatNode{prefix: n.prefix, keyOff: -1}
	if n.pos == bitvec.W {
		fn.keyOff = int32(len(m.keys))
		fn.keyLen = int32(len(n.keys))
		m.keys = append(m.keys, n.keys...)
	}
	m.nodes = append(m.nodes, fn)
	if n.pos != bitvec.W {
		m.flatten(n.child[0])
		m.flatten(n.child[1])
	}
	m.nodes[self].skip = int32(len(m.nodes))
}

// Sets returns the number of distinct stored vectors.
func (m *Matcher) Sets() int { return m.sets }

// Keys returns the number of stored associations.
func (m *Matcher) Keys() int { return len(m.keys) }

// MemoryBytes is the resident size of the compressed index.
func (m *Matcher) MemoryBytes() int64 {
	return int64(len(m.nodes))*36 + int64(len(m.keys))*4
}

// BuildPeakBytes is the peak transient memory consumed while building
// the index — the quantity that limited the original system to 20% of
// the full Twitter database.
func (m *Matcher) BuildPeakBytes() int64 { return m.buildPeak }

// Match visits the keys of every stored vector v ⊆ q, once per
// association.
func (m *Matcher) Match(q bitvec.Vector, visit func(Key)) {
	nodes := m.nodes
	for i := 0; i < len(nodes); {
		n := &nodes[i]
		if !n.prefix.SubsetOf(q) {
			i = int(n.skip)
			continue
		}
		if n.keyOff >= 0 {
			for _, k := range m.keys[n.keyOff : n.keyOff+n.keyLen] {
				visit(k)
			}
		}
		i++
	}
}

// MatchUnique visits each distinct matching key once.
func (m *Matcher) MatchUnique(q bitvec.Vector, visit func(Key)) {
	seen := make(map[Key]struct{})
	m.Match(q, func(k Key) {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			visit(k)
		}
	})
}

// Count returns the number of matching associations.
func (m *Matcher) Count(q bitvec.Vector) int {
	n := 0
	m.Match(q, func(Key) { n++ })
	return n
}
