package core

import (
	"time"

	"tagmatch/internal/bitvec"
)

// RoutingBenchmark measures the pre-process routing lookup (Algorithm 2)
// in isolation: it partitions sigs with the balanced partitioner, builds
// the partition table, and times iters passes of every query through the
// scalar scan and through the bit-sliced lookup. It returns the
// nanoseconds per query of each flavor and the number of partitions the
// table indexes. The query signatures' one-bit positions are precomputed
// once, exactly as the pipeline's pre-process workers do, so the timings
// cover only the table scan itself.
func RoutingBenchmark(sigs []bitvec.Vector, maxP int, queries []bitvec.Vector, iters int) (scalarNs, slicedNs float64, partitions int) {
	specs := balancedPartition(sigs, maxP)
	parts := make([]partition, len(specs))
	for i, s := range specs {
		parts[i] = partition{mask: s.mask}
	}
	pt, _ := buildPartitionTable(parts)
	ones := make([][]int, len(queries))
	for i, q := range queries {
		ones[i] = q.Ones(nil)
	}
	if iters < 1 {
		iters = 1
	}
	n := float64(iters * len(queries))
	var dst []uint32
	t0 := time.Now()
	for it := 0; it < iters; it++ {
		for i, q := range queries {
			dst = pt.lookup(q, ones[i], dst[:0])
		}
	}
	scalarNs = float64(time.Since(t0)) / n
	t0 = time.Now()
	for it := 0; it < iters; it++ {
		for i, q := range queries {
			dst = pt.lookupSliced(q, ones[i], dst[:0])
		}
	}
	slicedNs = float64(time.Since(t0)) / n
	return scalarNs, slicedNs, len(parts)
}
