package core

import (
	"math/bits"
	"sync/atomic"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// Bit-sliced subset-match kernel. The scalar kernel (kernel.go) assigns
// one tag set per thread and spends three word operations per (set,
// query) subset check — 192 operations to test 64 sets. The sliced
// kernel instead reads the partition's sets column-transposed
// (bitvec.SlicedGroup: 64 sets per group), assigns one group per
// thread, and tests all 64 lanes at once: OR-ing the used column words
// at the query's zero bits into a running 64-wide hit word, with a
// per-column early exit as soon as no lane survives. Algorithm 4's
// common-prefix block pre-filter becomes a per-group gate — one
// three-word test against the group's signature intersection discards
// 64 sets before any column is touched. Matches leave through the same
// packed atomic-append result path (§3.3.1) as the scalar kernel, so
// the two flavors are pair-for-pair interchangeable (differential- and
// fuzz-tested; Config.ScalarKernel selects the scalar baseline).

// slicedGrid returns the launch geometry for the sliced kernels: one
// thread per 64-lane group, with max(1, blockDim/64) groups per block
// so a block covers roughly the same number of sets as a scalar-kernel
// block of blockDim threads. Groups never straddle blocks, so no pair
// can be emitted twice regardless of blockDim.
func slicedGrid(nGroups, blockDim int) gpu.Grid {
	gpb := blockDim / 64
	if gpb < 1 {
		gpb = 1
	}
	return gpu.Grid{
		Blocks:   (nGroups + gpb - 1) / gpb,
		BlockDim: gpb,
	}
}

// slicedStats accumulates kernel telemetry in locals; flush performs
// one bulk atomic add per thread block (per batch on the host path).
type slicedStats struct {
	gateChecks, gatePruned int64
	groupScans, colsWalked int64
	blocks, blocksPruned   int64 // group-gate analogue of the prefilter block counters
}

func (st *slicedStats) flush(pf *obs.PartitionCounters, kc *obs.KernelCounters) {
	if pf != nil && st.blocks > 0 {
		pf.PrefilterBlocks.Add(st.blocks)
		pf.PrefilterPruned.Add(st.blocksPruned)
	}
	if kc == nil {
		return
	}
	kc.GateChecks.Add(st.gateChecks)
	kc.GatePruned.Add(st.gatePruned)
	kc.GroupScans.Add(st.groupScans)
	kc.ColumnsWalked.Add(st.colsWalked)
	kc.Columns.Observe(st.colsWalked)
}

// matchGroup tests every query of the batch against one transposed
// group, emitting a (query, set) pair per surviving lane. base is the
// global set id of the group's lane 0.
func matchGroup(
	grp *bitvec.SlicedGroup,
	base uint32,
	qs []bitvec.Vector,
	gate bool,
	st *slicedStats,
	emit func(qi uint8, setID uint32),
) {
	survived := false
	for qi := range qs {
		if gate {
			st.gateChecks++
			if !bitvec.AndNotIsZero(grp.Gate, qs[qi]) {
				// Some bit shared by ALL 64 members is absent from the
				// query: no member can be a subset of it.
				st.gatePruned++
				continue
			}
		}
		survived = true
		hits, cols := grp.SubsetLanesCols(qs[qi])
		st.groupScans++
		st.colsWalked += int64(cols)
		for hits != 0 {
			l := bits.TrailingZeros64(hits)
			emit(uint8(qi), base+uint32(l))
			hits &= hits - 1
		}
	}
	if gate {
		st.blocks++
		if !survived {
			st.blocksPruned++
		}
	}
}

// slicedMatchKernelAt returns the bit-sliced subset-match kernel for
// one batch over one partition, the transposed counterpart of
// matchKernelAt. groups is the device-resident transposed index (full
// index in replicated mode, the device's shard otherwise); the kernel
// reads the slice [grpOff, grpOff+nGroups). globalBase is the global
// set id of the partition's first set; gate enables the per-group
// intersection pre-filter (Config.DisablePrefilter turns it off, the
// same ablation switch as the scalar prefix test).
func slicedMatchKernelAt(
	groups *gpu.Buffer[bitvec.SlicedGroup],
	grpOff, nGroups, globalBase int,
	qsrc querySrc,
	hdr *gpu.Buffer[uint32],
	pairs *gpu.Buffer[byte],
	maxPairs int,
	gate bool,
	pf *obs.PartitionCounters,
	kc *obs.KernelCounters,
) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		gs := groups.Data()[grpOff : grpOff+nGroups]
		qs := qsrc.gather()
		h, out := hdr.Data(), pairs.Data()
		if b.FirstGlobalID() >= len(gs) {
			return
		}
		var st slicedStats
		b.Threads(func(tid int) {
			g := b.GlobalID(tid)
			if g >= len(gs) {
				return
			}
			matchGroup(&gs[g], uint32(globalBase+g*64), qs, gate, &st,
				func(qi uint8, setID uint32) {
					emitPacked(b, h, out, maxPairs, qi, setID)
				})
		})
		st.flush(pf, kc)
	}
}

// slicedSplitMatchKernelAt is the sliced kernel with the split output
// layout (two separate id arrays; the ablation §3.3.1 rejects), the
// transposed counterpart of splitMatchKernelAt.
func slicedSplitMatchKernelAt(
	groups *gpu.Buffer[bitvec.SlicedGroup],
	grpOff, nGroups, globalBase int,
	qsrc querySrc,
	outQ *gpu.Buffer[uint32],
	outS *gpu.Buffer[uint32],
	maxPairs int,
	gate bool,
	pf *obs.PartitionCounters,
	kc *obs.KernelCounters,
) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		gs := groups.Data()[grpOff : grpOff+nGroups]
		qs := qsrc.gather()
		qout, sout := outQ.Data(), outS.Data()
		if b.FirstGlobalID() >= len(gs) {
			return
		}
		var st slicedStats
		b.Threads(func(tid int) {
			g := b.GlobalID(tid)
			if g >= len(gs) {
				return
			}
			matchGroup(&gs[g], uint32(globalBase+g*64), qs, gate, &st,
				func(qi uint8, setID uint32) {
					idx := int(b.AtomicAddU32(&qout[0], 1))
					if idx >= maxPairs {
						atomic.StoreUint32(&qout[1], 1)
						return
					}
					qout[splitHeaderWords+idx] = uint32(qi)
					sout[idx] = setID
				})
		})
		st.flush(pf, kc)
	}
}

// cpuMatchBatchSliced runs the bit-sliced subset match for a whole
// batch on the host: the CPU-only execution path — and the
// overflow/fault fallback — of an engine configured for the sliced
// kernel flavor. Pair-for-pair equivalent to cpuMatchBatch, which
// remains the scalar baseline.
func cpuMatchBatchSliced(
	groups []bitvec.SlicedGroup, // the partition's slice of the transposed index
	globalBase int, // global set id of the partition's first set
	queries []bitvec.Vector,
	gate bool,
	pf *obs.PartitionCounters,
	kc *obs.KernelCounters,
	visit func(q uint8, s uint32),
) {
	var st slicedStats
	for g := range groups {
		matchGroup(&groups[g], uint32(globalBase+g*64), queries, gate, &st, visit)
	}
	st.flush(pf, kc)
}
