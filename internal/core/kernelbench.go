package core

import (
	"slices"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// KernelBenchResult is the outcome of KernelBenchmark: the isolated
// subset-match kernel cost per submitted query for each flavor, exact
// result parity between them, and the sliced kernel's work telemetry.
type KernelBenchResult struct {
	ScalarNs   float64 // scalar kernel ns per submitted query
	SlicedNs   float64 // sliced kernel ns per submitted query
	Parity     bool    // both flavors emitted exactly the reference pair multiset
	Partitions int
	Batches    int // (partition, batch) kernel launches per iteration

	// Sliced-kernel telemetry accumulated over the parity pass: gate
	// tests vs groups discarded, and column words walked vs scans run.
	GateChecks    int64
	GatePruned    int64
	GroupScans    int64
	ColumnsWalked int64

	// H2DCopiesPerBatch is the mean H2D copy operations issued per
	// kernel launch over the timed passes. With the result-header reset
	// fused into the launch (LaunchZeroedAsync), exactly one copy — the
	// query batch — remains; the kernel bench test asserts this stays 1
	// so the separate header-reset transfer cannot silently come back.
	H2DCopiesPerBatch float64
}

// KernelBenchmark measures the subset-match kernel in isolation: it
// partitions sigs (Algorithm 1 + lexicographic sort, exactly as
// Consolidate does), routes every query through the partition table to
// form per-partition batches of at most batchSize, and times iters
// passes of the whole batch set through the scalar per-thread kernel
// and through the bit-sliced kernel on one simulated zero-cost device —
// so the comparison isolates the matching work itself from bus and
// driver overheads, which are identical for the two flavors. Before
// timing, an untimed pass checks both flavors against the brute-force
// reference pair multiset (Parity).
func KernelBenchmark(sigs []bitvec.Vector, maxP int, queries []bitvec.Vector, batchSize, blockDim, iters, workers int) KernelBenchResult {
	if batchSize <= 0 || batchSize > maxBatchSize {
		batchSize = maxBatchSize
	}
	if blockDim <= 0 {
		blockDim = 256
	}
	if iters < 1 {
		iters = 1
	}

	// Build the index the way Consolidate does: balanced partitions,
	// members sorted lexicographically, flat row table plus the
	// column-transposed mirror, and the routing table.
	specs := balancedPartition(sigs, maxP)
	var sets []bitvec.Vector
	var groups []bitvec.SlicedGroup
	parts := make([]partition, len(specs))
	for pi, spec := range specs {
		sortMembersLexicographically(sigs, spec.members)
		off := uint32(len(sets))
		for _, m := range spec.members {
			sets = append(sets, sigs[m])
		}
		parts[pi] = partition{
			mask:   spec.mask,
			off:    off,
			n:      uint32(len(spec.members)),
			grpOff: uint32(len(groups)),
		}
		groups = append(groups, bitvec.BuildSlicedGroups(sets[off:])...)
	}
	pt, maskless := buildPartitionTable(parts)

	// Route queries and pack them into per-partition batches, the work
	// units the pipeline would dispatch.
	type workItem struct {
		pid uint32
		qs  []bitvec.Vector
	}
	perPart := make([][]bitvec.Vector, len(parts))
	var pids []uint32
	for _, q := range queries {
		pids = pt.lookupSliced(q, q.Ones(nil), pids[:0])
		pids = append(pids, maskless...)
		for _, pid := range pids {
			perPart[pid] = append(perPart[pid], q)
		}
	}
	var items []workItem
	for pid, qs := range perPart {
		for len(qs) > 0 {
			n := min(len(qs), batchSize)
			items = append(items, workItem{pid: uint32(pid), qs: qs[:n]})
			qs = qs[n:]
		}
	}

	res := KernelBenchResult{Partitions: len(parts), Batches: len(items)}
	if len(items) == 0 || len(sets) == 0 {
		res.Parity = true
		return res
	}

	// Reference pair multisets and the result-buffer bound: the exact
	// pair count per batch, so the timed runs can never overflow.
	type pair struct {
		q uint8
		s uint32
	}
	cmpPair := func(a, b pair) int {
		if a.q != b.q {
			return int(a.q) - int(b.q)
		}
		if a.s != b.s {
			if a.s < b.s {
				return -1
			}
			return 1
		}
		return 0
	}
	ref := make([][]pair, len(items))
	maxPairs := 1
	for i, it := range items {
		p := &parts[it.pid]
		for si, set := range sets[p.off : p.off+p.n] {
			for qi := range it.qs {
				if set.SubsetOf(it.qs[qi]) {
					ref[i] = append(ref[i], pair{uint8(qi), p.off + uint32(si)})
				}
			}
		}
		slices.SortFunc(ref[i], cmpPair)
		if len(ref[i]) > maxPairs {
			maxPairs = len(ref[i])
		}
	}

	dev := gpu.New(gpu.Config{Workers: workers}) // zero cost model: kernel work only
	defer dev.Close()
	stream, err := dev.OpenStream()
	if err != nil {
		panic(err)
	}
	defer stream.Close()
	setsBuf := gpu.MustAlloc[bitvec.Vector](dev, len(sets))
	groupsBuf := gpu.MustAlloc[bitvec.SlicedGroup](dev, len(groups))
	qbuf := gpu.MustAlloc[bitvec.Vector](dev, batchSize)
	hdr := gpu.MustAlloc[uint32](dev, resHeaderWords)
	pairs := gpu.MustAlloc[byte](dev, pairBufBytes(maxPairs))
	if err := setsBuf.CopyToDevice(0, sets); err != nil {
		panic(err)
	}
	if err := groupsBuf.CopyToDevice(0, groups); err != nil {
		panic(err)
	}

	var kc obs.KernelCounters
	launch := func(it workItem, sliced bool) {
		p := &parts[it.pid]
		qsrc := querySrc{direct: qbuf, n: len(it.qs)}
		gpu.CopyToDeviceAsync(stream, qbuf, 0, it.qs)
		// Header reset fused into the launch: no separate tiny H2D copy.
		if sliced {
			nG := (int(p.n) + 63) / 64
			stream.LaunchZeroedAsync(slicedGrid(nG, blockDim), hdr, resHeaderWords,
				slicedMatchKernelAt(groupsBuf, int(p.grpOff), nG, int(p.off),
					qsrc, hdr, pairs, maxPairs, true, nil, &kc))
		} else {
			grid := gpu.Grid{
				Blocks:   (int(p.n) + blockDim - 1) / blockDim,
				BlockDim: blockDim,
			}
			stream.LaunchZeroedAsync(grid, hdr, resHeaderWords,
				matchKernelAt(setsBuf, int(p.off), int(p.n), int(p.off),
					qsrc, hdr, pairs, maxPairs, true, nil))
		}
	}

	// Untimed parity pass: both flavors must emit exactly the reference
	// pair multiset for every batch.
	res.Parity = true
	hdrHost := make([]uint32, resHeaderWords)
	packed := make([]byte, pairBufBytes(maxPairs))
	for i, it := range items {
		for _, sliced := range []bool{false, true} {
			launch(it, sliced)
			if err := stream.SynchronizeErr(); err != nil {
				panic(err)
			}
			if err := hdr.CopyFromDevice(hdrHost, 0); err != nil {
				panic(err)
			}
			if err := pairs.CopyFromDevice(packed, 0); err != nil {
				panic(err)
			}
			count, overflow := clampCount(hdrHost[0], hdrHost[1], maxPairs)
			got := make([]pair, 0, count)
			decodePacked(packed, count, func(q uint8, s uint32) {
				got = append(got, pair{q, s})
			})
			slices.SortFunc(got, cmpPair)
			if overflow || !slices.Equal(got, ref[i]) {
				res.Parity = false
			}
		}
	}
	res.GateChecks = kc.GateChecks.Load()
	res.GatePruned = kc.GatePruned.Load()
	res.GroupScans = kc.GroupScans.Load()
	res.ColumnsWalked = kc.ColumnsWalked.Load()

	// Timed passes: enqueue a full iteration's batches back to back and
	// synchronize once, so host-side bookkeeping stays off the clock.
	// The H2D op count is measured across the passes: fused header
	// resets mean exactly one copy (the query batch) per launch.
	n := float64(iters * len(queries))
	copies0 := dev.Stats().CopiesHtoD
	launches := 0
	for _, flavor := range []struct {
		sliced bool
		out    *float64
	}{{false, &res.ScalarNs}, {true, &res.SlicedNs}} {
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			for _, item := range items {
				launch(item, flavor.sliced)
				launches++
			}
			if err := stream.SynchronizeErr(); err != nil {
				panic(err)
			}
		}
		*flavor.out = float64(time.Since(t0)) / n
	}
	if launches > 0 {
		res.H2DCopiesPerBatch = float64(dev.Stats().CopiesHtoD-copies0) / float64(launches)
	}
	return res
}
