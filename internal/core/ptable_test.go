package core

import (
	"testing"

	"tagmatch/internal/bitvec"
)

func buildParts(masks ...bitvec.Vector) []partition {
	parts := make([]partition, len(masks))
	for i, m := range masks {
		parts[i] = partition{mask: m}
	}
	return parts
}

func TestPartitionTableLookupFindsAllSubsetMasks(t *testing.T) {
	masks := []bitvec.Vector{
		bitvec.FromOnes(1),
		bitvec.FromOnes(1, 5),
		bitvec.FromOnes(5),
		bitvec.FromOnes(7, 100),
		bitvec.FromOnes(100),
	}
	pt, maskless := buildPartitionTable(buildParts(masks...))
	if len(maskless) != 0 {
		t.Fatalf("unexpected maskless partitions: %v", maskless)
	}
	if pt.entries() != len(masks) {
		t.Fatalf("entries = %d, want %d", pt.entries(), len(masks))
	}

	q := bitvec.FromOnes(1, 5, 100)
	got := pt.lookup(q, q.Ones(nil), nil)
	want := map[uint32]bool{0: true, 1: true, 2: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("lookup returned %v, want ids %v", got, want)
	}
	for _, pid := range got {
		if !want[pid] {
			t.Fatalf("unexpected partition %d in %v", pid, got)
		}
	}
}

func TestPartitionTableLookupNoDuplicates(t *testing.T) {
	// A mask is indexed once (by leftmost bit), so even a query with all
	// mask bits set must see it exactly once.
	m := bitvec.FromOnes(3, 9, 50)
	pt, _ := buildPartitionTable(buildParts(m))
	q := bitvec.FromOnes(3, 9, 50, 80)
	got := pt.lookup(q, q.Ones(nil), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("lookup = %v, want exactly [0]", got)
	}
}

func TestPartitionTableLookupEmptyQuery(t *testing.T) {
	pt, _ := buildPartitionTable(buildParts(bitvec.FromOnes(1)))
	if got := pt.lookup(bitvec.Vector{}, nil, nil); len(got) != 0 {
		t.Fatalf("empty query matched %v", got)
	}
}

func TestPartitionTableMaskless(t *testing.T) {
	parts := buildParts(bitvec.Vector{}, bitvec.FromOnes(2))
	pt, maskless := buildPartitionTable(parts)
	if len(maskless) != 1 || maskless[0] != 0 {
		t.Fatalf("maskless = %v, want [0]", maskless)
	}
	if pt.entries() != 1 {
		t.Fatalf("entries = %d, want 1", pt.entries())
	}
}

func TestPartitionTableAgainstBruteForce(t *testing.T) {
	sets := randomSets(2000, 5, 11)
	specs := balancedPartition(sets, 100)
	parts := make([]partition, len(specs))
	for i, s := range specs {
		parts[i] = partition{mask: s.mask}
	}
	pt, maskless := buildPartitionTable(parts)
	if len(maskless) != 0 {
		t.Fatalf("maskless partitions from random sets: %v", maskless)
	}

	queries := randomSets(100, 8, 12)
	for _, q := range queries {
		got := map[uint32]bool{}
		for _, pid := range pt.lookup(q, q.Ones(nil), nil) {
			if got[pid] {
				t.Fatalf("duplicate pid %d for query %s", pid, q.Hex())
			}
			got[pid] = true
		}
		for pid := range parts {
			want := parts[pid].mask.SubsetOf(q)
			if got[uint32(pid)] != want {
				t.Fatalf("query %s partition %d: got %v want %v",
					q.Hex(), pid, got[uint32(pid)], want)
			}
		}
	}
}

func benchLookup(b *testing.B, fn func(pt *partitionTable, q bitvec.Vector, qOnes []int, dst []uint32) []uint32) {
	sets := randomSets(200000, 5, 13)
	specs := balancedPartition(sets, 1000)
	parts := make([]partition, len(specs))
	for i, s := range specs {
		parts[i] = partition{mask: s.mask}
	}
	pt, _ := buildPartitionTable(parts)
	queries := randomSets(1024, 8, 14)
	ones := make([][]int, len(queries))
	for i, q := range queries {
		ones[i] = q.Ones(nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var dst []uint32
	for i := 0; i < b.N; i++ {
		dst = fn(pt, queries[i&1023], ones[i&1023], dst[:0])
	}
}

func BenchmarkPartitionLookupScalar(b *testing.B) {
	benchLookup(b, (*partitionTable).lookup)
}

func BenchmarkPartitionLookupSliced(b *testing.B) {
	benchLookup(b, (*partitionTable).lookupSliced)
}
