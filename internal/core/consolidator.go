package core

import (
	"errors"
	"sort"
	"sync"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// This file is the consolidation machinery behind the live-update
// subsystem: the three-phase consolidateOnce that both the synchronous
// Consolidate and the background consolidator run, and the background
// goroutine that auto-triggers it when the delta overlay outgrows
// Config.DeltaMaxSets / Config.DeltaMaxRatio.
//
// The background form (the zero-drain path) splits the rebuild so the
// old index and the overlay keep serving while the expensive work runs:
//
//	Phase A (stagedMu, brief)    cut := len(staged); snapshot db ⊕ staged[:cut]
//	                             without mutating db (copy-on-write overlay)
//	Phase B (no locks, long)     partition + sort + key table + transposed
//	                             mirror, host-side only
//	Phase C (submitMu+stagedMu)  drain in-flight queries, apply the prefix
//	                             to db, swap the index, upload to devices,
//	                             rebuild the overlay from the staged suffix
//
// Only Phase C pauses traffic, and its cost is drain + device upload —
// not the full rebuild. db must stay unmutated until Phase C because the
// overlay classifies removes against "what the live index serves", which
// is db as of the last swap; and because SaveSnapshot serializes
// db ⊕ staged under stagedMu concurrently with Phase B.
//
// When the cut is small relative to the index, Phase B runs the
// incremental form (buildIncrementalIndex): existing rows keep their
// partition, row order, transposed groups, and key CSR — all aliased
// from the old generation, with changed rows patched in a side map —
// and just the genuinely new signatures are partitioned. That drops
// the steady-state fold cost from O(database) partitioning
// to O(delta) appends, which is what lets the background
// consolidator keep up with sustained churn without starving the query
// path for CPU. Drift (emptied "dud" rows, appended partitions) is
// bounded by incrementalEligible, which forces a periodic full rebuild.

// applyOpEntries applies one staged op to a set's entry list, returning
// the updated list: an add appends, a remove drops the first entry
// carrying the key (swap-with-last; entry order within a set is not
// meaningful). Consolidation and the snapshot overlay share this helper
// so the two transforms cannot diverge.
func applyOpEntries(entries []dbEntry, op stagedOp) []dbEntry {
	if !op.remove {
		return append(entries, dbEntry{key: op.key, tags: op.tags})
	}
	for i := range entries {
		if entries[i].key == op.key {
			entries[i] = entries[len(entries)-1]
			return entries[:len(entries)-1]
		}
	}
	return entries
}

// snapshotWithPrefix materializes the database with the first cut staged
// ops applied, without mutating db: touched signatures are cloned on
// first write, untouched ones alias the live db slices (safe — db slices
// are only mutated by applyPrefix, in a later critical section of the
// same serialized consolidation). Called with e.stagedMu held.
func (e *Engine) snapshotWithPrefix(cut int) ([]bitvec.Vector, [][]dbEntry) {
	var touched map[bitvec.Vector][]dbEntry
	if cut > 0 {
		touched = make(map[bitvec.Vector][]dbEntry)
		for _, op := range e.staged[:cut] {
			cur, ok := touched[op.sig]
			if !ok {
				cur = append([]dbEntry(nil), e.db[op.sig]...)
			}
			touched[op.sig] = applyOpEntries(cur, op)
		}
	}
	sigs := make([]bitvec.Vector, 0, len(e.db)+len(touched))
	entriesBySet := make([][]dbEntry, 0, len(e.db)+len(touched))
	for sig, entries := range e.db {
		if _, ok := touched[sig]; ok {
			continue
		}
		sigs = append(sigs, sig)
		entriesBySet = append(entriesBySet, entries)
	}
	for sig, entries := range touched {
		if len(entries) == 0 {
			continue
		}
		sigs = append(sigs, sig)
		entriesBySet = append(entriesBySet, entries)
	}
	return sigs, entriesBySet
}

// applyPrefix commits the first cut staged ops to the master database
// and compacts the log to the surviving suffix. Called with e.stagedMu
// held; must apply exactly the transform snapshotWithPrefix previewed.
func (e *Engine) applyPrefix(cut int) {
	for _, op := range e.staged[:cut] {
		entries := applyOpEntries(e.db[op.sig], op)
		if len(entries) == 0 {
			delete(e.db, op.sig)
		} else {
			e.db[op.sig] = entries
		}
	}
	rest := len(e.staged) - cut
	if cap(e.staged) > 4096 && cap(e.staged) > 4*rest {
		// Release the log's backing array after a large consolidation —
		// a bulk load can leave multi-million-op capacity behind that
		// the steady-state suffix will never refill, and the GC would
		// otherwise mark it on every cycle.
		e.staged = append(make([]stagedOp, 0, rest), e.staged[cut:]...)
	} else {
		e.staged = append(e.staged[:0], e.staged[cut:]...)
	}
}

// consolidateOnce runs one full consolidation. The synchronous form
// (background=false — the public Consolidate, and the stop-the-world
// ablation baseline) blocks submissions across all three phases, exactly
// like the pre-overlay engine. The background form defers the exclusive
// submitMu section to Phase C, so queries keep flowing — served by the
// old index plus the overlay — during the long Phase B build.
// consolidateMu serializes concurrent callers (explicit Consolidate vs
// the background goroutine).
//
// bulk, if non-nil, is a batch of ops spliced into the staged log inside
// Phase A and consolidated in the same pass (LoadSnapshot's path). Only
// the synchronous form accepts it: submissions are blocked for the whole
// pass, so the spliced ops never need an overlay generation of their own
// — a snapshot-sized overlay would cost hundreds of MB of bit-sliced
// groups and maps just to be discarded at the swap.
func (e *Engine) consolidateOnce(background bool, bulk []stagedOp) error {
	e.consolidateMu.Lock()
	defer e.consolidateMu.Unlock()
	if e.closed.Load() {
		return ErrClosed
	}

	start := time.Now()
	if !background {
		e.submitMu.Lock()
		defer e.submitMu.Unlock()
		// Finish everything routed through the old index.
		e.flushAll(e.idx.Load())
		e.awaitDrain()
	}

	// Phase A: cut the log and snapshot db ⊕ prefix. Background folds of
	// a small delta take the incremental path: only the touched
	// signatures are captured, and Phase B splices them into the old
	// index's layout instead of re-partitioning the world.
	e.stagedMu.Lock()
	e.staged = append(e.staged, bulk...)
	cut := len(e.staged)
	old := e.idx.Load()
	incremental := background && incrementalEligible(old, cut)
	var idx *index
	if incremental {
		touched, hadSig := e.deltaPrefix(cut)
		e.stagedMu.Unlock()
		idx = e.buildIncrementalIndex(old, touched, hadSig)
		e.incFolds.Add(1)
	} else {
		sigs, entriesBySet := e.snapshotWithPrefix(cut)
		e.stagedMu.Unlock()
		// Phase B: the expensive host-side build — off the hot path in
		// background mode. Device memory is untouched here, so the old
		// index's buffers are not double-counted against the device
		// budget.
		idx = e.buildHostIndex(sigs, entriesBySet)
	}

	// Phase C: drain, swap, upload.
	if background {
		e.submitMu.Lock()
		defer e.submitMu.Unlock()
		if e.closed.Load() {
			return ErrClosed
		}
		e.flushAll(e.idx.Load())
		e.awaitDrain()
	}
	pauseStart := time.Now()

	e.stagedMu.Lock()
	e.applyPrefix(cut)
	old = e.idx.Load()
	e.idx.Store(&index{pt: &partitionTable{}})
	var degraded error
	if !incremental || !e.adoptDevices(idx, old) {
		// Full path: release the old index before the new one allocates
		// device memory, or the per-device stream and memory budgets
		// would be double-counted. The pipeline is drained and
		// submissions are blocked, so nothing references it.
		old.release()
		degraded = e.attachDevices(idx)
	}
	e.idx.Store(idx)
	if !e.cfg.DisableDeltaOverlay {
		e.delta.rebuild(e.db, e.staged)
	}
	e.stagedMu.Unlock()

	// Fresh per-partition hot-spot counters for the new generation, so
	// partition ids in the stats always refer to the live index.
	if e.obs.On {
		sizes := make([]int, len(idx.parts))
		for i := range idx.parts {
			sizes[i] = int(idx.parts[i].n)
		}
		e.obs.Parts.Reset(sizes)
	}

	if background {
		pause := time.Since(pauseStart)
		e.swapPauseNs.Store(int64(pause))
		e.obs.Delta.AutoConsolidations.Add(1)
		e.obs.Delta.SwapPause.Observe(int64(pause))
	}
	e.consolidateTime.Store(int64(time.Since(start)))
	return degraded
}

// deltaPrefix captures just the signatures touched by the first cut
// staged ops: the final entry list each touched signature should serve
// (empty = fully removed), and whether the live database had the
// signature before the prefix. Entry slices are cloned, so Phase B can
// use them lock-free. Called with e.stagedMu held.
func (e *Engine) deltaPrefix(cut int) (touched map[bitvec.Vector][]dbEntry, hadSig map[bitvec.Vector]bool) {
	touched = make(map[bitvec.Vector][]dbEntry, cut)
	hadSig = make(map[bitvec.Vector]bool, cut)
	for _, op := range e.staged[:cut] {
		cur, ok := touched[op.sig]
		if !ok {
			cur = append([]dbEntry(nil), e.db[op.sig]...)
			hadSig[op.sig] = len(cur) > 0
		}
		touched[op.sig] = applyOpEntries(cur, op)
	}
	return touched, hadSig
}

// incrementalEligible decides whether a background fold may splice the
// delta into the old index instead of rebuilding from scratch. The
// incremental form never re-partitions existing rows, so three kinds of
// drift accumulate until a full rebuild resets them: the delta itself
// must be small (else splicing approaches rebuild cost), emptied dud
// rows waste kernel lanes, and appended delta partitions dilute the
// Algorithm-1 balance.
func incrementalEligible(old *index, cut int) bool {
	if old.fullSets <= 0 || len(old.sets) == 0 || cut <= 0 {
		return false
	}
	if cut*4 > old.fullSets {
		return false
	}
	if old.dudRows*8 > old.fullSets {
		return false
	}
	if (len(old.sets)-old.fullSets)*4 > old.fullSets {
		return false
	}
	// The CSR patch map is cloned on every fold and probed per matched
	// row at reduce; once it covers a meaningful fraction of the rows, a
	// full rebuild that folds the patches back into a flat CSR is both
	// cheaper and faster to query.
	if len(old.patched)*8 > old.fullSets {
		return false
	}
	return true
}

// buildIncrementalIndex is the O(delta) Phase B: a new index whose
// existing rows keep their signature, partition, row order, transposed
// groups, and key CSR verbatim (aliased, not copied), with touched
// substitutions recorded in a per-row patch map the reduce consults
// first. A signature whose entry list emptied keeps its row as a "dud"
// — the kernel still matches it, the reduce finds zero keys — so no
// group retranspose or offset shift is ever needed. Genuinely new signatures are partitioned among
// themselves (same Algorithm 1, delta-sized input) and appended as
// fresh partitions; the partition table is rebuilt over the combined
// set, so routing sees them immediately.
//
// The sig→row map rides along from fold to fold (old.rowOf, stolen
// under consolidateMu) so only the first incremental fold pays the
// O(rows) map build. Duplicate signatures can exist (a dud plus a
// later re-add); the map always points at the live row — appends
// overwrite, and within one fold a signature resolves to a single
// final entry list, so the dud and its successor are never updated
// together.
func (e *Engine) buildIncrementalIndex(old *index, touched map[bitvec.Vector][]dbEntry, hadSig map[bitvec.Vector]bool) *index {
	rowOf := old.rowOf
	old.rowOf = nil
	if rowOf == nil {
		rowOf = make(map[bitvec.Vector]uint32, len(old.sets))
		for r, sig := range old.sets {
			if _, dup := rowOf[sig]; !dup || old.keyOff[r+1] > old.keyOff[r] {
				rowOf[sig] = uint32(r)
			}
		}
	}

	// Split the touched signatures into in-place row substitutions and
	// brand-new sets. A touched signature the database didn't have
	// (or — defensively — one the row map cannot place) becomes a new
	// row; its possible dud predecessor serves zero keys and stays
	// harmless.
	replaced := make(map[uint32][]dbEntry, len(touched))
	var newSigs []bitvec.Vector
	var newEntries map[bitvec.Vector][]dbEntry
	for sig, entries := range touched {
		if hadSig[sig] {
			if r, ok := rowOf[sig]; ok {
				replaced[r] = entries
				continue
			}
		}
		if len(entries) > 0 {
			if newEntries == nil {
				newEntries = make(map[bitvec.Vector][]dbEntry)
			}
			newSigs = append(newSigs, sig)
			newEntries[sig] = entries
		}
	}
	// Map iteration order is random; sort so the delta partitioning is
	// deterministic for a given op sequence.
	sort.Slice(newSigs, func(i, j int) bool { return bitvec.Less(newSigs[i], newSigs[j]) })

	idx := &index{devices: e.cfg.Devices}
	// Alias the old generation's row and group arrays instead of copying
	// them: the incremental build only ever appends (new sets start new
	// partitions, and each partition's transposed groups are
	// self-contained), so writing past the old length is invisible to
	// queries still served by the old index. With the slack capacity the
	// full build reserves, a steady-state fold's cost is the key-CSR
	// rewrite plus O(delta) — not an O(database) flat-array copy whose
	// allocation and GC marking would tax the query path it is supposed
	// to stay off.
	idx.sets = old.sets
	idx.groups = old.groups

	// The key CSR is aliased too: rows whose entry list changed land in
	// the patch map the reduce consults before the CSR, so a fold never
	// walks the full key table. The map is cloned copy-on-write — the
	// old generation keeps serving its own view while this build runs —
	// and incrementalEligible bounds its size, so the clone is O(delta
	// accumulated since the last full rebuild), not O(rows).
	idx.keyOff = old.keyOff
	idx.keys = old.keys
	idx.keyTags = old.keyTags
	idx.patched = make(map[uint32]patchedRow, len(old.patched)+len(replaced))
	for r, pe := range old.patched {
		idx.patched[r] = pe
	}
	duds := old.dudRows
	rowEmpty := func(r uint32) bool {
		if pe, ok := old.patched[r]; ok {
			return len(pe.keys) == 0
		}
		return old.keyOff[r+1] == old.keyOff[r]
	}
	for r, entries := range replaced {
		pe := patchedRow{keys: make([]Key, len(entries))}
		if e.cfg.ExactVerify {
			pe.tags = make([][]string, len(entries))
		}
		for i, en := range entries {
			pe.keys[i] = en.key
			if e.cfg.ExactVerify {
				pe.tags[i] = en.tags
			}
		}
		if len(entries) == 0 {
			if !rowEmpty(r) {
				duds++
			}
		} else if rowEmpty(r) {
			duds--
		}
		idx.patched[r] = pe
	}

	// Existing partitions keep their layout; only the immutable fields
	// are copied (batch/dirty state belongs to the old generation, which
	// is still serving traffic while this build runs).
	// Field-by-field, not a struct copy: the old generation is still
	// serving traffic, and its batch/dirty fields are written under the
	// partition lock this build does not hold. The layout fields read
	// here are immutable after a build.
	idx.parts = make([]partition, 0, len(old.parts)+1)
	for i := range old.parts {
		p := &old.parts[i]
		idx.parts = append(idx.parts, partition{
			mask: p.mask, off: p.off, n: p.n, dev: p.dev, grpOff: p.grpOff,
			devOff: p.devOff, devGrpOff: p.devGrpOff, ext: p.ext,
		})
	}

	if len(newSigs) > 0 {
		var specs []partitionSpec
		if e.cfg.FirstFitPartitioning {
			specs = firstFitPartition(newSigs, e.cfg.MaxPartitionSize)
		} else {
			specs = balancedPartition(newSigs, e.cfg.MaxPartitionSize)
		}
		nDev := len(e.cfg.Devices)
		for _, spec := range specs {
			sortMembersLexicographically(newSigs, spec.members)
			off := uint32(len(idx.sets))
			for _, m := range spec.members {
				sig := newSigs[m]
				rowOf[sig] = uint32(len(idx.sets))
				idx.sets = append(idx.sets, sig)
				for _, en := range newEntries[sig] {
					idx.keys = append(idx.keys, en.key)
					if e.cfg.ExactVerify {
						idx.keyTags = append(idx.keyTags, en.tags)
					}
				}
				idx.keyOff = append(idx.keyOff, uint32(len(idx.keys)))
			}
			pi := len(idx.parts)
			dev := 0
			if nDev > 0 {
				dev = pi % nDev
			}
			grpOff := uint32(len(idx.groups))
			if !e.cfg.ScalarKernel {
				idx.groups = append(idx.groups, bitvec.BuildSlicedGroups(idx.sets[off:])...)
			}
			idx.parts = append(idx.parts, partition{
				mask: spec.mask, off: off, n: uint32(len(spec.members)),
				dev: dev, grpOff: grpOff,
			})
		}
	}

	idx.locks = make([]sync.Mutex, len(idx.parts))
	idx.pt, idx.maskless = buildPartitionTable(idx.parts)
	idx.hostBytes = hostBytesFor(idx)
	idx.fullSets = old.fullSets
	idx.dudRows = duds
	idx.rowOf = rowOf
	return idx
}

// adoptDevices is the O(delta) Phase C: instead of freeing the old
// generation's device state and re-uploading the whole index (a bus
// copy proportional to the database, which would dominate the swap
// pause), the new index adopts the old one's base shards, extent
// buffers, stream pools, and query-window rings — all still valid,
// because the incremental build keeps every existing row's signature,
// row order, and transposed groups verbatim — and uploads only the
// partitions appended by this fold as one fresh extent buffer per
// device. Key rewrites need no device traffic at all: keys live
// host-side in the reduce stage. Returns false (having changed
// nothing) when the old index has no usable device state or the extent
// upload fails; the caller then takes the full release+attach path.
// Called with the pipeline drained and submissions blocked.
func (e *Engine) adoptDevices(idx, old *index) bool {
	nDev := len(idx.devices)
	if nDev == 0 {
		return true // CPU-only engine: nothing device-side to move
	}
	if len(old.devBufs) != nDev {
		return false // old generation degraded to CPU: retry a full attach
	}
	sliced := idx.groups != nil
	baseExt := make([]int, nDev) // extents already carried by the old generation
	for d := range baseExt {
		if old.devExts != nil {
			baseExt[d] = len(old.devExts[d])
		}
	}

	// Upload the appended partitions, one extent per device. In
	// replicate mode every device receives all new rows; partitioned
	// placement gathers each device's own partitions, extent-relative.
	newBufs := make([]*gpu.Buffer[bitvec.Vector], nDev)
	newGrpBufs := make([]*gpu.Buffer[bitvec.SlicedGroup], nDev)
	fail := func() bool {
		for _, b := range newBufs {
			b.Free()
		}
		for _, b := range newGrpBufs {
			b.Free()
		}
		return false
	}
	for d, dev := range idx.devices {
		var mine []bitvec.Vector
		var mineGroups []bitvec.SlicedGroup
		for pi := len(old.parts); pi < len(idx.parts); pi++ {
			p := &idx.parts[pi]
			if !e.cfg.Replicate && p.dev != d {
				continue
			}
			p.devOff = uint32(len(mine))
			mine = append(mine, idx.sets[p.off:p.off+p.n]...)
			if sliced {
				p.devGrpOff = uint32(len(mineGroups))
				nG := (int(p.n) + 63) / 64
				mineGroups = append(mineGroups,
					idx.groups[p.grpOff:int(p.grpOff)+nG]...)
			}
		}
		if len(mine) == 0 {
			continue // pure key-substitution fold: no device traffic at all
		}
		buf, err := gpu.Alloc[bitvec.Vector](dev, len(mine))
		if err != nil {
			return fail()
		}
		newBufs[d] = buf
		if err := buf.CopyToDevice(0, mine); err != nil {
			return fail()
		}
		if sliced {
			gbuf, err := gpu.Alloc[bitvec.SlicedGroup](dev, len(mineGroups))
			if err != nil {
				return fail()
			}
			newGrpBufs[d] = gbuf
			if err := gbuf.CopyToDevice(0, mineGroups); err != nil {
				return fail()
			}
		}
	}
	for pi := len(old.parts); pi < len(idx.parts); pi++ {
		p := &idx.parts[pi]
		d := p.dev
		if e.cfg.Replicate {
			d = 0 // uniform extent counts across devices in replicate mode
		}
		if newBufs[d] == nil {
			// Appended partition with zero rows cannot happen (specs are
			// non-empty), so every new partition's device has an extent.
			return fail()
		}
		p.ext = uint32(baseExt[d] + 1)
	}

	// The uploads landed; from here the adoption cannot fail. Fence the
	// old generation's attempt chains (losing hedge attempts may still
	// be enqueueing stream operations — safe, since every buffer they
	// reference is carried over, not freed) and steal its device state.
	old.dispatching.Wait()
	idx.devBufs, old.devBufs = old.devBufs, nil
	idx.devGroupBufs, old.devGroupBufs = old.devGroupBufs, nil
	idx.devExts, old.devExts = old.devExts, nil
	idx.devGrpExts, old.devGrpExts = old.devGrpExts, nil
	if idx.devExts == nil {
		idx.devExts = make([][]*gpu.Buffer[bitvec.Vector], nDev)
	}
	if idx.devGrpExts == nil {
		idx.devGrpExts = make([][]*gpu.Buffer[bitvec.SlicedGroup], nDev)
	}
	for d := range newBufs {
		if newBufs[d] == nil {
			continue
		}
		idx.devExts[d] = append(idx.devExts[d], newBufs[d])
		if sliced {
			idx.devGrpExts[d] = append(idx.devGrpExts[d], newGrpBufs[d])
		}
	}
	idx.windows, old.windows = old.windows, nil
	idx.streams, old.streams = old.streams, nil
	idx.devStreams, old.devStreams = old.devStreams, nil
	idx.allStreams, old.allStreams = old.allStreams, nil
	return true
}

// deltaOverThreshold reports whether the overlay has outgrown the
// auto-consolidation trigger: DeltaMaxSets pending live ops, or
// DeltaMaxRatio of the main index's set count, whichever is LARGER (the
// max keeps rebuild cost amortized-geometric under bulk loads: each
// background rebuild grows the index by at least the ratio). A backlog
// of staged ops whose overlay entries cancelled out (add+remove churn of
// the same associations) still forces consolidation at 8x the op
// threshold, bounding the log.
func (e *Engine) deltaOverThreshold() bool {
	if e.cfg.DisableDeltaOverlay {
		return false
	}
	size := e.delta.addsLive.Load() + e.delta.tombsLive.Load()
	if backlog := int64(e.PendingOps()) / 8; backlog > size {
		size = backlog
	}
	if size == 0 {
		return false
	}
	thr := int64(e.cfg.DeltaMaxSets)
	if byRatio := int64(e.cfg.DeltaMaxRatio * float64(len(e.idx.Load().sets))); byRatio > thr {
		thr = byRatio
	}
	return size >= thr
}

// maybeKickConsolidator nudges the background consolidator when the
// overlay is over threshold. Non-blocking: the kick channel holds one
// pending wakeup and the loop re-checks the threshold itself.
func (e *Engine) maybeKickConsolidator() {
	if e.consolKick == nil || !e.deltaOverThreshold() {
		return
	}
	select {
	case e.consolKick <- struct{}{}:
	default:
	}
}

// consolidatorLoop is the background consolidator goroutine: woken by
// maybeKickConsolidator, it re-checks the threshold and folds the
// overlay into the main index until the overlay is back under it (churn
// absorbed during a swap re-arms the loop immediately). Started by New
// unless Config.DisableDeltaOverlay; stopped first thing in Close.
func (e *Engine) consolidatorLoop() {
	defer close(e.consolDone)
	for {
		select {
		case <-e.consolStop:
			return
		case <-e.consolKick:
		}
		for e.deltaOverThreshold() {
			err := e.consolidateOnce(true, nil)
			if err != nil && !errors.Is(err, ErrDeviceDegraded) {
				return // ErrClosed: the engine is shutting down
			}
			if err != nil {
				e.log.Warn("background consolidation degraded to CPU-only", "err", err)
			}
			select {
			case <-e.consolStop:
				return
			default:
			}
		}
	}
}
