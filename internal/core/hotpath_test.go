package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
)

// hotpathEngine builds a consolidated CPU-only engine over nSets small
// tag sets, together with query signatures that each match matchWidth of
// those sets (matchWidth 0 builds queries that match nothing).
func hotpathEngine(t testing.TB, cfg Config, nSets, matchWidth int) (*Engine, []bitvec.Vector) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for i := 0; i < nSets; i++ {
		e.AddSet([]string{fmt.Sprintf("g%d", i/max(matchWidth, 1)), fmt.Sprintf("m%d", i)}, Key(i))
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	queries := make([]bitvec.Vector, 64)
	for i := range queries {
		if matchWidth == 0 {
			queries[i] = bloom.Signature([]string{fmt.Sprintf("nomatch%d", i)})
		} else {
			// Contains every tag of one whole group: matches its
			// matchWidth sets.
			tags := []string{fmt.Sprintf("g%d", i%(nSets/matchWidth))}
			for j := 0; j < matchWidth; j++ {
				tags = append(tags, fmt.Sprintf("m%d", (i%(nSets/matchWidth))*matchWidth+j))
			}
			queries[i] = bloom.Signature(tags)
		}
	}
	return e, queries
}

func TestBatchSizeValidation(t *testing.T) {
	if _, err := New(Config{BatchSize: 257}); err != ErrBatchSizeTooLarge {
		t.Fatalf("New(BatchSize=257) err = %v, want ErrBatchSizeTooLarge", err)
	}
	if _, err := New(Config{BatchSize: 10000}); err != ErrBatchSizeTooLarge {
		t.Fatalf("New(BatchSize=10000) err = %v, want ErrBatchSizeTooLarge", err)
	}
	e, err := New(Config{BatchSize: 256})
	if err != nil {
		t.Fatalf("New(BatchSize=256) err = %v, want nil", err)
	}
	e.Close()
}

// TestReduceLocksOncePerQueryBatch asserts the batch-local reduce takes
// each query's mutex at most once per (query, batch): queries matching
// many sets within one partition must not acquire per pair.
func TestReduceLocksOncePerQueryBatch(t *testing.T) {
	const nSets, matchWidth, nQueries = 512, 32, 64
	// One partition (MaxPartitionSize ≥ nSets) and one batch (BatchSize ≥
	// nQueries) make the expected acquisition count exactly predictable.
	e, queries := hotpathEngine(t, Config{
		MaxPartitionSize: nSets, BatchSize: 64, Threads: 2,
	}, nSets, matchWidth)

	var wg sync.WaitGroup
	wg.Add(nQueries)
	for i := 0; i < nQueries; i++ {
		if err := e.SubmitSignature(queries[i%len(queries)], false, func(r MatchResult) {
			if len(r.Keys) < matchWidth {
				t.Errorf("query matched %d keys, want >= %d", len(r.Keys), matchWidth)
			}
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	wg.Wait()

	pairs := e.pairs.Load()
	acqs := e.queryLockAcqs.Load()
	memberships := e.partsSearched.Load() // (query, batch) memberships: one per routed pair
	if pairs < int64(nQueries*matchWidth) {
		t.Fatalf("pairs = %d, want >= %d", pairs, nQueries*matchWidth)
	}
	// At most one acquisition per (query, batch) membership — the old
	// per-pair locking would have taken one per pair (pairs >> memberships
	// here, since every query matches matchWidth sets in its home batch).
	if acqs > memberships {
		t.Fatalf("reduce acquired query locks %d times for %d (query,batch) memberships; want <= one per membership",
			acqs, memberships)
	}
	if acqs*2 > pairs {
		t.Fatalf("reduce lock acquisitions (%d) not well below pair count (%d): batch-local reduce not in effect", acqs, pairs)
	}
}

// TestSteadyStateAllocsPooledVsUnpooled drives identical bursts through
// a pooled and an unpooled engine and requires pooling to cut
// steady-state allocations per query by at least half.
func TestSteadyStateAllocsPooledVsUnpooled(t *testing.T) {
	const nSets, burst = 1024, 256
	measure := func(disablePooling bool) float64 {
		e, queries := hotpathEngine(t, Config{
			MaxPartitionSize: 128, BatchSize: 64, Threads: 4,
			DisablePooling: disablePooling,
		}, nSets, 0) // no matches: isolates pipeline bookkeeping from result delivery
		done := func(MatchResult) {}
		run := func() {
			for i := 0; i < burst; i++ {
				if err := e.SubmitSignature(queries[i%len(queries)], false, done); err != nil {
					t.Fatal(err)
				}
			}
			e.Drain()
		}
		run() // warm up pools and partition state
		return testing.AllocsPerRun(20, run) / burst
	}
	pooled := measure(false)
	unpooled := measure(true)
	t.Logf("allocs/query: pooled %.2f, unpooled %.2f", pooled, unpooled)
	if pooled > unpooled/2 {
		t.Fatalf("pooled allocs/query %.2f, want <= half of unpooled %.2f", pooled, unpooled)
	}
}

// TestMatchPromptWithoutTimeout exercises the event-driven blocking
// match: with no BatchTimeout and no background traffic, Match must
// complete via the progress-epoch handshake rather than hanging until a
// flush tick that never comes.
func TestMatchPromptWithoutTimeout(t *testing.T) {
	e, _ := hotpathEngine(t, Config{
		MaxPartitionSize: 64, BatchSize: 256, Threads: 2, // batches never fill
	}, 512, 4)
	start := time.Now()
	for i := 0; i < 50; i++ {
		keys, err := e.Match([]string{fmt.Sprintf("g%d", i%8), fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		_ = keys
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("50 blocking matches took %v; blocking path is stalling", el)
	}
}

// BenchmarkHotpathSubmit measures the steady-state submit→complete path
// (the hot path the pooling overhaul targets) in queries per op.
func BenchmarkHotpathSubmit(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			e, queries := hotpathEngine(b, Config{
				MaxPartitionSize: 128, BatchSize: 64, Threads: 4,
				DisablePooling: !pooled,
			}, 4096, 4)
			done := func(MatchResult) {}
			// Warm up pools and partition batches.
			for i := 0; i < 1024; i++ {
				if err := e.SubmitSignature(queries[i%len(queries)], false, done); err != nil {
					b.Fatal(err)
				}
			}
			e.Drain()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.SubmitSignature(queries[i%len(queries)], false, done); err != nil {
					b.Fatal(err)
				}
			}
			e.Drain()
		})
	}
}

// BenchmarkBlockingMatch covers the event-driven blocking path end to
// end (submit, flush handshake, reduce, merge).
func BenchmarkBlockingMatch(b *testing.B) {
	e, queries := hotpathEngine(b, Config{
		MaxPartitionSize: 128, BatchSize: 64, Threads: 4,
	}, 4096, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.MatchSignature(queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
	}
}
