package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// saturatedEngine builds a CPU-only engine with MaxInFlight=1 and parks
// its single reduce worker inside the done callback of one admitted
// query, plus a second admitted query filling the budget. It returns the
// engine and the release function that unblocks the reduce worker.
//
// Threads=2 gives one pre-process and one reduce worker; BatchSize=1
// dispatches every query immediately. Blocking done of query 1 stalls
// the only reduce worker, so query 2 — admitted because completion (and
// thus capacity release) happens just before done runs — stays in flight
// until release is called.
func saturatedEngine(t *testing.T) (*Engine, func()) {
	t.Helper()
	e, err := New(Config{
		MaxPartitionSize: 100, BatchSize: 1, Threads: 2, MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.AddSet([]string{"a"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	if err := e.Submit([]string{"a"}, func(MatchResult) {
		close(entered)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-entered // reduce worker is now parked in query 1's done

	if err := e.Submit([]string{"a"}, func(MatchResult) {}); err != nil {
		t.Fatalf("query filling the in-flight budget was rejected: %v", err)
	}

	var released bool
	return e, func() {
		if !released {
			released = true
			close(release)
		}
	}
}

// TestSubmitOverloadedRejectsImmediately checks the admission gate: at
// MaxInFlight, Submit returns ErrOverloaded without blocking, sheds are
// counted, and capacity returns once queries complete.
func TestSubmitOverloadedRejectsImmediately(t *testing.T) {
	e, release := saturatedEngine(t)

	start := time.Now()
	err := e.Submit([]string{"a"}, func(MatchResult) {
		t.Error("done called for a shed query")
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit at capacity: got %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v, want immediate", d)
	}
	if got := e.Stats().QueriesShed; got != 1 {
		t.Fatalf("QueriesShed = %d, want 1", got)
	}

	release()
	e.Drain()
	if err := e.Submit([]string{"a"}, func(MatchResult) {}); err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
	e.Drain()
	st := e.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("submitted %d completed %d", st.QueriesSubmitted, st.QueriesCompleted)
	}
}

// TestSubmitCtxBlocksForCapacity checks the blocking variant: SubmitCtx
// waits out a saturated engine and succeeds once capacity frees up.
func TestSubmitCtxBlocksForCapacity(t *testing.T) {
	e, release := saturatedEngine(t)

	time.AfterFunc(20*time.Millisecond, release)
	got := make(chan struct{})
	err := e.SubmitCtx(context.Background(), []string{"a"}, func(MatchResult) {
		close(got)
	})
	if err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	e.Drain()
	select {
	case <-got:
	default:
		t.Fatal("done never called for the blocked-then-admitted query")
	}
}

// TestSubmitCtxCancellation checks that a cancelled SubmitCtx returns an
// error matching both ErrOverloaded and the context error, within the
// context's deadline rather than blocking forever.
func TestSubmitCtxCancellation(t *testing.T) {
	e, release := saturatedEngine(t)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.SubmitCtx(ctx, []string{"a"}, func(MatchResult) {
		t.Error("done called for a cancelled submission")
	})
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrOverloaded+DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestMaxInFlightDisabledByDefault checks that the zero value keeps the
// historical unbounded-admission behavior.
func TestMaxInFlightDisabledByDefault(t *testing.T) {
	e, err := New(Config{MaxPartitionSize: 100, BatchSize: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"a"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.Submit([]string{"a"}, func(MatchResult) {}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	e.Drain()
	if got := e.Stats().QueriesShed; got != 0 {
		t.Fatalf("QueriesShed = %d with the gate disabled", got)
	}
}
