package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/trie"
)

// testDB is a small reference database with known expected answers.
type testDB struct {
	sigs []bitvec.Vector
	keys [][]Key
}

func makeTestDB(nSets, tagsPerSet, maxKeysPerSet int, seed int64) *testDB {
	rng := rand.New(rand.NewSource(seed))
	db := &testDB{sigs: randomSets(nSets, tagsPerSet, seed)}
	db.keys = make([][]Key, nSets)
	next := Key(1)
	for i := range db.keys {
		n := 1 + rng.Intn(maxKeysPerSet)
		for j := 0; j < n; j++ {
			db.keys[i] = append(db.keys[i], next)
			next++
		}
	}
	return db
}

func (db *testDB) load(e *Engine) {
	for i, sig := range db.sigs {
		for _, k := range db.keys[i] {
			e.AddSignature(sig, k)
		}
	}
}

// expected computes the reference answer for one query.
func (db *testDB) expected(q bitvec.Vector, unique bool) []Key {
	var out []Key
	for i, sig := range db.sigs {
		if sig.SubsetOf(q) {
			out = append(out, db.keys[i]...)
		}
	}
	sortKeysSlice(out)
	if unique {
		out = dedupKeys(out)
	}
	return out
}

func sortKeysSlice(k []Key) {
	sort.Slice(k, func(i, j int) bool { return k[i] < k[j] })
}

// makeQueries builds queries as database sets plus extra random bits
// (§4.2.2: every query matches at least one set).
func (db *testDB) makeQueries(n int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]bitvec.Vector, n)
	for i := range qs {
		base := db.sigs[rng.Intn(len(db.sigs))]
		extra := randomSets(1, 2+rng.Intn(3), seed+int64(i)+500)[0]
		qs[i] = base.Or(extra)
	}
	return qs
}

func newTestGPU(t *testing.T, workers int) *gpu.Device {
	t.Helper()
	d := gpu.New(gpu.Config{Workers: workers})
	t.Cleanup(d.Close)
	return d
}

// verifyEngine runs queries through the engine and compares every answer
// against the brute-force reference.
func verifyEngine(t *testing.T, e *Engine, db *testDB, queries []bitvec.Vector, unique bool) {
	t.Helper()
	type outcome struct {
		got  []Key
		want []Key
	}
	results := make([]outcome, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		i, q := i, q
		wg.Add(1)
		if err := e.SubmitSignature(q, unique, func(r MatchResult) {
			results[i].got = r.Keys
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
		results[i].want = db.expected(q, unique)
	}
	e.Drain()
	wg.Wait()
	for i := range results {
		got := append([]Key(nil), results[i].got...)
		sortKeysSlice(got)
		want := results[i].want
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d keys, want %d (unique=%v)\n got=%v\nwant=%v",
				i, len(got), len(want), unique, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d key %d: got %d want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestEngineCPUOnlyCorrectness(t *testing.T) {
	db := makeTestDB(3000, 5, 3, 31)
	e, err := New(Config{MaxPartitionSize: 200, BatchSize: 64, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	queries := db.makeQueries(300, 32)
	verifyEngine(t, e, db, queries, false)
	verifyEngine(t, e, db, queries, true)
}

func TestEngineGPUCorrectness(t *testing.T) {
	db := makeTestDB(5000, 5, 3, 33)
	dev := newTestGPU(t, 4)
	e, err := New(Config{
		MaxPartitionSize: 300, BatchSize: 64, Threads: 4,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 4, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	queries := db.makeQueries(400, 34)
	verifyEngine(t, e, db, queries, false)
	verifyEngine(t, e, db, queries, true)
}

func TestEngineMultiGPUReplicated(t *testing.T) {
	db := makeTestDB(4000, 5, 2, 35)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 250, BatchSize: 32, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	verifyEngine(t, e, db, db.makeQueries(300, 36), true)
	// Both devices hold a full copy of the tagset table.
	st := e.Stats()
	if len(st.DeviceBytes) != 2 {
		t.Fatalf("DeviceBytes = %v", st.DeviceBytes)
	}
	if st.DeviceBytes[0] == 0 || st.DeviceBytes[1] == 0 {
		t.Fatalf("replicated mode must use memory on both devices: %v", st.DeviceBytes)
	}
}

func TestEngineMultiGPUPartitioned(t *testing.T) {
	db := makeTestDB(4000, 5, 2, 37)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 250, BatchSize: 32, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	verifyEngine(t, e, db, db.makeQueries(300, 38), false)
	// Partitioned mode: the two shards together hold ONE copy of the
	// index — the row table (24 B/set) plus its transposed mirror for
	// the sliced kernel (1592 B per 64-lane group, at most one partial
	// group per partition) — not one copy per device. The 2x headroom
	// absorbs the per-stream batch buffers.
	st := e.Stats()
	total := st.DeviceBytes[0] + st.DeviceBytes[1]
	lo := int64(st.UniqueSets)*24 + int64(st.UniqueSets/64)*1592
	hi := 2 * (int64(st.UniqueSets)*24 + int64(st.UniqueSets/64+st.Partitions)*1592)
	if total < lo || total > hi {
		t.Fatalf("sharded index memory %d not within [%d, %d]", total, lo, hi)
	}
}

func TestEngineOverflowFallback(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 39)
	dev := newTestGPU(t, 4)
	e, err := New(Config{
		MaxPartitionSize: 500, BatchSize: 64, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2,
		MaxPairsPerBatch: 4, // force overflows
		Replicate:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	verifyEngine(t, e, db, db.makeQueries(200, 40), false)
	if e.Stats().ResultOverflows == 0 {
		t.Fatal("expected result-buffer overflows with MaxPairsPerBatch=4")
	}
	// The per-partition observability counters must agree that overflows
	// happened (they drive the tagmatch_partition_overflows_total series).
	var obsOverflows int64
	for _, ps := range e.Obs().Parts.Snapshot() {
		obsOverflows += ps.Overflows
	}
	if obsOverflows == 0 {
		t.Fatal("obs partition counters recorded no overflows")
	}
	// Overflow fallback is a planned host re-run, not a device fault: the
	// fault-tolerance counters must stay untouched.
	if st := e.Stats(); st.GPUFaults != 0 || st.CPUFallbacks != 0 {
		t.Fatalf("overflow fallback counted as fault: faults=%d fallbacks=%d",
			st.GPUFaults, st.CPUFallbacks)
	}
}

func TestEngineAblationConfigs(t *testing.T) {
	db := makeTestDB(2500, 5, 2, 41)
	queries := db.makeQueries(200, 42)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no-prefilter", func(c *Config) { c.DisablePrefilter = true }},
		{"split-output", func(c *Config) { c.SplitOutputLayout = true }},
		{"size-then-copy", func(c *Config) { c.SizeThenCopy = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := newTestGPU(t, 4)
			cfg := Config{
				MaxPartitionSize: 200, BatchSize: 64, Threads: 2,
				Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
			}
			tc.mut(&cfg)
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			db.load(e)
			if err := e.Consolidate(); err != nil {
				t.Fatal(err)
			}
			verifyEngine(t, e, db, queries, true)
		})
	}
}

func TestEngineMatchVsMatchUniqueSemantics(t *testing.T) {
	// One key associated with two different sets, both matching the
	// query: match returns it twice, match-unique once.
	e, err := New(Config{MaxPartitionSize: 8, BatchSize: 4, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"a"}, 7)
	e.AddSet([]string{"b"}, 7)
	e.AddSet([]string{"a", "b"}, 9)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, err := e.Match([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[7 7 9]" {
		t.Fatalf("match = %v, want [7 7 9]", got)
	}
	gotU, err := e.MatchUnique([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	sortKeysSlice(gotU)
	if fmt.Sprint(gotU) != "[7 9]" {
		t.Fatalf("match-unique = %v, want [7 9]", gotU)
	}
}

func TestEngineRemoveSet(t *testing.T) {
	e, err := New(Config{MaxPartitionSize: 8, BatchSize: 4, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"x"}, 1)
	e.AddSet([]string{"x"}, 2)
	e.AddSet([]string{"y"}, 3)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Match([]string{"x", "y"}); len(got) != 3 {
		t.Fatalf("before removal: %v", got)
	}

	// Removal takes effect immediately through the delta overlay (a
	// tombstone suppresses the main-index entry), while the op stays in
	// the staged log until consolidation.
	e.RemoveSet([]string{"x"}, 1)
	got, _ := e.Match([]string{"x", "y"})
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[2 3]" {
		t.Fatalf("tombstoned removal still visible: %v, want [2 3]", got)
	}
	if e.PendingOps() != 1 {
		t.Fatalf("PendingOps = %d", e.PendingOps())
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, _ = e.Match([]string{"x", "y"})
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[2 3]" {
		t.Fatalf("after removal: %v, want [2 3]", got)
	}

	// Removing the last key of a set drops the set entirely.
	e.RemoveSet([]string{"x"}, 2)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.UniqueSets != 1 {
		t.Fatalf("UniqueSets = %d after dropping set x", st.UniqueSets)
	}
}

// TestEngineRemoveSetOverlayDisabled pins the ablation contract: with
// the delta overlay off, updates are batch-only and a staged removal is
// invisible until Consolidate — the pre-live-update behavior.
func TestEngineRemoveSetOverlayDisabled(t *testing.T) {
	e, err := New(Config{
		MaxPartitionSize: 8, BatchSize: 4, Threads: 1,
		DisableDeltaOverlay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"x"}, 1)
	e.AddSet([]string{"y"}, 2)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	e.RemoveSet([]string{"x"}, 1)
	if got, _ := e.Match([]string{"x", "y"}); len(got) != 2 {
		t.Fatalf("staged removal visible with overlay disabled: %v", got)
	}
	e.AddSet([]string{"z"}, 3)
	if got, _ := e.Match([]string{"z"}); len(got) != 0 {
		t.Fatalf("staged add visible with overlay disabled: %v", got)
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Match([]string{"x", "y", "z"})
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[2 3]" {
		t.Fatalf("after consolidate: %v, want [2 3]", got)
	}
}

func TestEngineEmptyDatabase(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := e.Match([]string{"anything"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty database matched %v", got)
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Match([]string{"anything"}); len(got) != 0 {
		t.Fatalf("still empty database matched %v", got)
	}
}

func TestEngineEmptyQuery(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"a"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, err := e.Match(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty query matched %v", got)
	}
}

func TestEngineBatchTimeout(t *testing.T) {
	// A single query in a 256-deep batch must complete within the flush
	// timeout without any manual flush.
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 100, BatchSize: 256, Threads: 2,
		BatchTimeout: 20 * time.Millisecond,
		Devices:      []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db := makeTestDB(500, 5, 1, 43)
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	q := db.makeQueries(1, 44)[0]
	done := make(chan MatchResult, 1)
	if err := e.SubmitSignature(q, false, func(r MatchResult) { done <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		want := db.expected(q, false)
		if len(r.Keys) != len(want) {
			t.Fatalf("timeout-flushed result has %d keys, want %d", len(r.Keys), len(want))
		}
		if e.Stats().BatchesTimedOut == 0 {
			t.Fatal("expected a timed-out batch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query never completed: timeout flush broken")
	}
}

func TestEngineConsolidateUnderLoad(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 45)
	e, err := New(Config{MaxPartitionSize: 100, BatchSize: 16, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	queries := db.makeQueries(500, 46)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wg.Add(1)
			q := queries[i%len(queries)]
			if err := e.SubmitSignature(q, true, func(MatchResult) { wg.Done() }); err != nil {
				wg.Done()
				return
			}
			if i%50 == 0 {
				e.Drain()
			}
		}
	}()
	// Interleave consolidations with live traffic.
	for c := 0; c < 3; c++ {
		e.AddSet([]string{fmt.Sprintf("new-tag-%d", c)}, Key(100000+c))
		if err := e.Consolidate(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	// Join the feeder before draining: a submission concurrent with Drain
	// may legitimately miss the flush (and, with no batch timeout, park in
	// an open batch until the next one), and wg.Add must not race wg.Wait.
	<-feederDone
	e.Drain()
	wg.Wait()

	// The new sets are matchable after their consolidation.
	got, _ := e.Match([]string{"new-tag-0", "new-tag-1"})
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[100000 100001]" {
		t.Fatalf("post-consolidate match = %v", got)
	}
}

func TestEngineClosedErrors(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := e.Submit([]string{"a"}, nil); err != ErrClosed {
		t.Fatalf("Submit after close = %v, want ErrClosed", err)
	}
	if err := e.Consolidate(); err != ErrClosed {
		t.Fatalf("Consolidate after close = %v, want ErrClosed", err)
	}
}

func TestEngineStats(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 47)
	e, err := New(Config{MaxPartitionSize: 100, BatchSize: 16, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.UniqueSets != 1000 {
		t.Fatalf("UniqueSets = %d", st.UniqueSets)
	}
	if st.Partitions < 1000/100 {
		t.Fatalf("Partitions = %d", st.Partitions)
	}
	if st.HostBytes <= 0 {
		t.Fatal("HostBytes not accounted")
	}
	if st.LastConsolidate <= 0 {
		t.Fatal("LastConsolidate not recorded")
	}

	verifyEngine(t, e, db, db.makeQueries(50, 48), false)
	st = e.Stats()
	if st.QueriesSubmitted != 50 || st.QueriesCompleted != 50 {
		t.Fatalf("query counters: %+v", st)
	}
	if st.BatchesDispatched == 0 || st.PairsProduced == 0 || st.KeysDelivered == 0 {
		t.Fatalf("pipeline counters empty: %+v", st)
	}
}

func TestEngineLatencyReported(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"t"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	done := make(chan MatchResult, 1)
	if err := e.Submit([]string{"t", "u"}, func(r MatchResult) { done <- r }); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	r := <-done
	if r.Latency <= 0 {
		t.Fatalf("latency = %v", r.Latency)
	}
	if len(r.Keys) != 1 || r.Keys[0] != 1 {
		t.Fatalf("keys = %v", r.Keys)
	}
}

func TestDedupKeys(t *testing.T) {
	cases := []struct {
		in, want []Key
	}{
		{nil, nil},
		{[]Key{5}, []Key{5}},
		{[]Key{3, 3, 3}, []Key{3}},
		{[]Key{5, 1, 5, 2, 1}, []Key{1, 2, 5}},
	}
	for _, c := range cases {
		got := dedupKeys(append([]Key(nil), c.in...))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("dedup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Large randomized check against a map-based reference.
	rng := rand.New(rand.NewSource(49))
	in := make([]Key, 5000)
	ref := map[Key]bool{}
	for i := range in {
		in[i] = Key(rng.Intn(700))
		ref[in[i]] = true
	}
	got := dedupKeys(in)
	if len(got) != len(ref) {
		t.Fatalf("dedup size %d, want %d", len(got), len(ref))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("dedup output not strictly increasing")
		}
	}
}

func TestEngineFirstFitAblationCorrect(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 51)
	dev := newTestGPU(t, 4)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
		FirstFitPartitioning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	verifyEngine(t, e, db, db.makeQueries(150, 52), true)
}

func TestEngineStageTimes(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 53)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	verifyEngine(t, e, db, db.makeQueries(200, 54), false)
	st := e.Stats()
	if st.PreprocessTime <= 0 || st.SubsetMatchTime <= 0 || st.ReduceTime <= 0 {
		t.Fatalf("stage times not recorded: pre=%v match=%v reduce=%v",
			st.PreprocessTime, st.SubsetMatchTime, st.ReduceTime)
	}
}

// TestQuickEngineAgreesWithTrie cross-validates two independent matcher
// implementations: a CPU-only engine and the Patricia trie must return
// identical key multisets for arbitrary generated databases and queries.
func TestQuickEngineAgreesWithTrie(t *testing.T) {
	f := func(dbSeed, qSeed int64, nRaw uint16) bool {
		n := int(nRaw%800) + 10
		sets := randomSets(n, 4, dbSeed)
		e, err := New(Config{MaxPartitionSize: 64, BatchSize: 16, Threads: 2})
		if err != nil {
			return false
		}
		defer e.Close()
		tr := trie.New()
		for i, s := range sets {
			e.AddSignature(s, Key(i))
			tr.Add(s, uint32(i))
		}
		if err := e.Consolidate(); err != nil {
			return false
		}
		tr.Freeze()
		for _, q := range randomSets(20, 7, qSeed) {
			got, err := e.MatchSignature(q, false)
			if err != nil {
				return false
			}
			var want []Key
			tr.Match(q, func(k uint32) { want = append(want, Key(k)) })
			sortKeysSlice(got)
			sortKeysSlice(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
