package core

import (
	"encoding/binary"
	"sync/atomic"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// Result layout (§3.3.1). A (query, set) pair uses an 8-bit query id (its
// index within the batch) and a 32-bit set id. A naive struct would pad
// each pair to 64 bits, wasting 38% of memory and bus bandwidth; storing
// ids in two separate arrays would avoid the waste but require two result
// copies. TagMatch instead packs results in groups of four pairs — four
// query-id bytes followed by four little-endian 32-bit set ids:
//
//	| q1 q2 q3 q4 | s1 s1 s1 s1 | s2 .. | s3 .. | s4 .. |   (20 bytes)
//
// which is byte-dense (worst-case loss: the unused lanes of the final
// group) and needs a single copy.
//
// The pair counter and the overflow flag live in a separate two-word
// header buffer so the kernel's atomic append has a stable address and
// the host can reset it with one tiny H2D transfer per batch.
const (
	resHeaderWords   = 2  // header buffer: [pair counter, overflow flag]
	bytesPerGroup    = 20 // 4 query-id bytes + 4×4 set-id bytes
	splitHeaderWords = 2  // split-layout ablation: counter + overflow

	// maxBatchSize bounds Config.BatchSize: query ids within a batch are
	// uint8 throughout the kernels and the reduce stage, so a larger
	// batch would alias query indices. Config validation enforces it.
	maxBatchSize = 256
)

// pairBufBytes returns the byte size of a packed pair buffer holding up
// to maxPairs pairs.
func pairBufBytes(maxPairs int) int {
	return ((maxPairs + 3) / 4) * bytesPerGroup
}

// emitPacked appends one (query, set) pair to the packed result buffer.
// Each pair writes to byte addresses owned exclusively by its slot, so
// concurrent emits from different threads never touch the same byte.
func emitPacked(b *gpu.BlockCtx, hdr []uint32, pairs []byte, maxPairs int, q uint8, setID uint32) {
	idx := int(b.AtomicAddU32(&hdr[0], 1))
	if idx >= maxPairs {
		atomic.StoreUint32(&hdr[1], 1) // overflow: host re-runs the batch on CPU
		return
	}
	base := (idx / 4) * bytesPerGroup
	lane := idx % 4
	pairs[base+lane] = q
	binary.LittleEndian.PutUint32(pairs[base+4+4*lane:], setID)
}

// decodePacked yields the first count pairs of a packed result buffer.
func decodePacked(packed []byte, count int, visit func(q uint8, s uint32)) {
	for idx := 0; idx < count; idx++ {
		base := (idx / 4) * bytesPerGroup
		lane := idx % 4
		visit(packed[base+lane], binary.LittleEndian.Uint32(packed[base+4+4*lane:]))
	}
}

// blockPrefilter implements Algorithm 4: compute the block's common
// signature prefix length — one XOR between the block's first and last
// set, valid because the tagset table is lexicographically sorted — and
// collect into block-shared memory the indices of the queries that
// contain that prefix. The prefix-containment test runs fused
// (PrefixSubsetOf), so no prefix vector is materialized on the
// per-block hot path. Returns nil when no query survives.
func blockPrefilter(b *gpu.BlockCtx, blockSets []bitvec.Vector, qs []bitvec.Vector) []uint8 {
	prefixLen := bitvec.CommonPrefixLen(blockSets[0], blockSets[len(blockSets)-1])
	first := blockSets[0]
	shared := make([]uint8, 0, len(qs)) // block shared memory
	b.Threads(func(tid int) {
		// Threads stride through the original batch in parallel
		// (Algorithm 4's while loop); block-sequential execution in the
		// simulator keeps the appends well-ordered without the atomic.
		for i := tid; i < len(qs); i += b.Grid.BlockDim {
			if first.PrefixSubsetOf(prefixLen, qs[i]) {
				shared = append(shared, uint8(i))
			}
		}
	})
	if len(shared) == 0 {
		return nil
	}
	return shared
}

// matchKernelAt returns the subset-match kernel (Algorithms 3 and 4) for
// one batch over one partition.
//
//   - tagsets: device-resident tagset table (full table in replicated
//     mode, the device's shard otherwise); the kernel reads the slice
//     [partOff, partOff+partLen).
//   - globalBase: global set id of the partition's first set, used to
//     produce globally meaningful set ids in the output.
//   - qsrc: the batch's device-resident query signatures — a dense
//     per-batch upload, or indices into the device's query window.
//   - hdr, pairs: result header and packed pair buffer.
//   - pf: optional per-partition observability counters; the kernel
//     reports prefilter effectiveness (blocks evaluated vs. fully
//     pruned) through it.
//
// Each thread owns one tag set (the paper's thread_id); the block-level
// pre-filter prunes the query batch before the per-set subset checks.
func matchKernelAt(
	tagsets *gpu.Buffer[bitvec.Vector],
	partOff, partLen, globalBase int,
	qsrc querySrc,
	hdr *gpu.Buffer[uint32],
	pairs *gpu.Buffer[byte],
	maxPairs int,
	prefilter bool,
	pf *obs.PartitionCounters,
) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		sets := tagsets.Data()[partOff : partOff+partLen]
		qs := qsrc.gather()
		h, out := hdr.Data(), pairs.Data()

		first := b.FirstGlobalID()
		if first >= len(sets) {
			return
		}
		blockSets := sets[first:min(first+b.Grid.BlockDim, len(sets))]

		var shared []uint8
		if prefilter {
			if pf != nil {
				pf.PrefilterBlocks.Add(1)
			}
			if shared = blockPrefilter(b, blockSets, qs); shared == nil {
				if pf != nil {
					pf.PrefilterPruned.Add(1)
				}
				return
			}
		}

		// Main subset match (Algorithm 3): one thread per tag set, three
		// block operations per subset check, atomic append of results.
		b.Threads(func(tid int) {
			if tid >= len(blockSets) {
				return
			}
			set := blockSets[tid]
			setID := uint32(globalBase + first + tid)
			if prefilter {
				for _, qi := range shared {
					if set.SubsetOf(qs[qi]) {
						emitPacked(b, h, out, maxPairs, qi, setID)
					}
				}
			} else {
				for i := range qs {
					if set.SubsetOf(qs[i]) {
						emitPacked(b, h, out, maxPairs, uint8(i), setID)
					}
				}
			}
		})
	}
}

// splitMatchKernelAt is the ablation variant that stores query ids and
// set ids in two separate arrays (the layout §3.3.1 rejects), forcing the
// host to issue two result copies.
func splitMatchKernelAt(
	tagsets *gpu.Buffer[bitvec.Vector],
	partOff, partLen, globalBase int,
	qsrc querySrc,
	outQ *gpu.Buffer[uint32],
	outS *gpu.Buffer[uint32],
	maxPairs int,
	prefilter bool,
	pf *obs.PartitionCounters,
) gpu.KernelFunc {
	return func(b *gpu.BlockCtx) {
		sets := tagsets.Data()[partOff : partOff+partLen]
		qs := qsrc.gather()
		qout, sout := outQ.Data(), outS.Data()

		first := b.FirstGlobalID()
		if first >= len(sets) {
			return
		}
		blockSets := sets[first:min(first+b.Grid.BlockDim, len(sets))]

		var shared []uint8
		if prefilter {
			if pf != nil {
				pf.PrefilterBlocks.Add(1)
			}
			if shared = blockPrefilter(b, blockSets, qs); shared == nil {
				if pf != nil {
					pf.PrefilterPruned.Add(1)
				}
				return
			}
		}

		b.Threads(func(tid int) {
			if tid >= len(blockSets) {
				return
			}
			set := blockSets[tid]
			setID := uint32(globalBase + first + tid)
			emit := func(q uint8) {
				idx := int(b.AtomicAddU32(&qout[0], 1))
				if idx >= maxPairs {
					atomic.StoreUint32(&qout[1], 1)
					return
				}
				qout[splitHeaderWords+idx] = uint32(q)
				sout[idx] = setID
			}
			if prefilter {
				for _, qi := range shared {
					if set.SubsetOf(qs[qi]) {
						emit(qi)
					}
				}
			} else {
				for i := range qs {
					if set.SubsetOf(qs[i]) {
						emit(uint8(i))
					}
				}
			}
		})
	}
}

// cpuMatchBatch runs the subset match for a whole batch on the CPU: the
// execution path of CPU-only TagMatch, and the correctness fallback when
// a GPU result buffer overflows. It applies the same block-prefix
// shortcut over runs of blockDim lexicographically sorted sets, and
// reports prefilter effectiveness through pf (may be nil) with one
// atomic update per batch. qScratch is an optional reusable buffer for
// the per-block surviving-query list (pass nil to allocate); the
// possibly-grown buffer is returned for the caller to keep.
func cpuMatchBatch(
	sets []bitvec.Vector, // the partition's slice of the tagset table
	globalBase int, // global set id of sets[0]
	queries []bitvec.Vector,
	blockDim int,
	prefilter bool,
	pf *obs.PartitionCounters,
	qScratch []uint8,
	visit func(q uint8, s uint32),
) []uint8 {
	if blockDim <= 0 {
		blockDim = 256
	}
	var pfBlocks, pfPruned int64
	if prefilter && pf != nil {
		defer func() {
			pf.PrefilterBlocks.Add(pfBlocks)
			pf.PrefilterPruned.Add(pfPruned)
		}()
	}
	qIdx := qScratch[:0]
	if cap(qIdx) < len(queries) {
		qIdx = make([]uint8, 0, max(len(queries), maxBatchSize))
	}
	for blk := 0; blk < len(sets); blk += blockDim {
		end := min(blk+blockDim, len(sets))
		block := sets[blk:end]
		qIdx = qIdx[:0]
		if prefilter {
			pfBlocks++
			prefixLen := bitvec.CommonPrefixLen(block[0], block[len(block)-1])
			for i := range queries {
				if block[0].PrefixSubsetOf(prefixLen, queries[i]) {
					qIdx = append(qIdx, uint8(i))
				}
			}
			if len(qIdx) == 0 {
				pfPruned++
				continue
			}
		} else {
			for i := range queries {
				qIdx = append(qIdx, uint8(i))
			}
		}
		for t := range block {
			setID := uint32(globalBase + blk + t)
			for _, qi := range qIdx {
				if bitvec.AndNotIsZero(block[t], queries[qi]) {
					visit(qi, setID)
				}
			}
		}
	}
	return qIdx
}
