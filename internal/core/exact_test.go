package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tagmatch/internal/gpu"
)

// sharedVocabWorkload builds a database and queries over a small shared
// vocabulary, the regime where Bloom false positives actually occur.
func sharedVocabWorkload(nSets, nQueries int, seed int64) (sets [][]string, queries [][]string) {
	rng := rand.New(rand.NewSource(seed))
	tag := func() string { return fmt.Sprintf("a:%d", rng.Intn(800)) }
	sets = make([][]string, nSets)
	for i := range sets {
		n := 1 + rng.Intn(3)
		sets[i] = make([]string, n)
		for j := range sets[i] {
			sets[i][j] = tag()
		}
	}
	queries = make([][]string, nQueries)
	for i := range queries {
		queries[i] = make([]string, 14)
		for j := range queries[i] {
			queries[i][j] = tag()
		}
	}
	return sets, queries
}

// exactExpected computes the true (non-Bloom) answer.
func exactExpected(sets [][]string, keysOf func(int) Key, q []string) []Key {
	qset := map[string]bool{}
	for _, t := range q {
		qset[t] = true
	}
	var out []Key
	for i, s := range sets {
		ok := true
		for _, t := range s {
			if !qset[t] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, keysOf(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestExactVerifyEliminatesFalsePositives(t *testing.T) {
	sets, queries := sharedVocabWorkload(20000, 150, 61)
	keyOf := func(i int) Key { return Key(i + 1) }

	build := func(exact bool) *Engine {
		e, err := New(Config{
			MaxPartitionSize: 500, BatchSize: 64, Threads: 2, ExactVerify: exact,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sets {
			e.AddSet(s, keyOf(i))
		}
		if err := e.Consolidate(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	exactEng := build(true)
	defer exactEng.Close()
	bloomEng := build(false)
	defer bloomEng.Close()

	falsePositives := 0
	for _, q := range queries {
		want := exactExpected(sets, keyOf, q)

		got, err := exactEng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("exact-verify mismatch: got %d keys, want %d", len(got), len(want))
		}

		raw, err := bloomEng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		falsePositives += len(raw) - len(want)
		if len(raw) < len(want) {
			t.Fatal("Bloom matching lost true positives (impossible: no false negatives)")
		}
	}
	// The small shared vocabulary makes Bloom false positives likely
	// across 150 wide queries × 20K sets; if none occurred the exact
	// path was not actually exercised against anything.
	if falsePositives == 0 {
		t.Log("no Bloom false positives occurred; exact path verified only equivalence")
	}
}

func TestExactVerifyMatchUnique(t *testing.T) {
	e, err := New(Config{MaxPartitionSize: 16, BatchSize: 8, Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"x", "y"}, 1)
	e.AddSet([]string{"x"}, 1)
	e.AddSet([]string{"z"}, 2)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, err := e.MatchUnique([]string{"x", "y", "w"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("got %v", got)
	}
}

func TestExactVerifySignatureEntriesPassThrough(t *testing.T) {
	// Entries staged via AddSignature carry no tags and cannot be
	// verified; they must still match (documented pass-through).
	e, err := New(Config{MaxPartitionSize: 16, BatchSize: 8, Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSignature(randomSets(1, 3, 5)[0], 7)
	e.AddSet([]string{"t"}, 8)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	// A query that bitwise-covers the raw signature must return key 7
	// even though it cannot be exactly verified.
	sig := randomSets(1, 3, 5)[0]
	q := sig.Or(randomSets(1, 2, 6)[0])
	got, err := e.MatchSignature(q, false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range got {
		if k == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("signature-staged entry not matched: %v", got)
	}
}

func TestExactVerifyOnGPU(t *testing.T) {
	sets, queries := sharedVocabWorkload(5000, 60, 63)
	keyOf := func(i int) Key { return Key(i + 1) }
	dev := newTestGPU(t, 4)
	e, err := New(Config{
		MaxPartitionSize: 300, BatchSize: 32, Threads: 2, ExactVerify: true,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i, s := range sets {
		e.AddSet(s, keyOf(i))
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want := exactExpected(sets, keyOf, q)
		got, err := e.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("GPU exact-verify mismatch: got %d want %d keys", len(got), len(want))
		}
	}
}
