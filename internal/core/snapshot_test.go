package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := makeTestDB(2000, 5, 3, 71)
	src, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	db.load(src)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	sst, dstSt := src.Stats(), dst.Stats()
	if sst.UniqueSets != dstSt.UniqueSets || sst.Keys != dstSt.Keys {
		t.Fatalf("shape mismatch: src %d/%d, dst %d/%d",
			sst.UniqueSets, sst.Keys, dstSt.UniqueSets, dstSt.Keys)
	}

	// Answers must be identical.
	for _, q := range db.makeQueries(100, 72) {
		a, err := src.MatchSignature(q, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.MatchSignature(q, true)
		if err != nil {
			t.Fatal(err)
		}
		sortKeysSlice(a)
		sortKeysSlice(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("answers diverge after snapshot: %v vs %v", a, b)
		}
	}
}

func TestSnapshotWithExactTags(t *testing.T) {
	src, err := New(Config{Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.AddSet([]string{"a", "b"}, 1)
	src.AddSet([]string{"c"}, 2)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Match([]string{"a", "b", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("got %v", got)
	}
	// The tags survived: a query that bitwise-collides but string-differs
	// is still verified (cannot easily construct a collision; instead
	// assert the loaded engine still answers exactly for a subset query).
	if got, _ := dst.Match([]string{"a"}); len(got) != 0 {
		t.Fatalf("partial query matched %v", got)
	}
}

func TestSnapshotPendingOpsRejected(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"x"}, 1)
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); !errors.Is(err, ErrPendingOps) {
		t.Fatalf("err = %v, want ErrPendingOps", err)
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatalf("after consolidate: %v", err)
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _ := New(Config{Threads: 1})
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Stats().UniqueSets != 0 {
		t.Fatal("empty snapshot produced sets")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	src.AddSet([]string{"a"}, 1)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), full[8:]...),
		"truncated":   full[:len(full)-3],
		"short magic": full[:4],
	}
	for name, data := range cases {
		dst, _ := New(Config{Threads: 1})
		if err := dst.LoadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
		dst.Close()
	}
}

func TestSnapshotLoadMerges(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	src.AddSet([]string{"a"}, 1)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, _ := New(Config{Threads: 1})
	defer dst.Close()
	dst.AddSet([]string{"b"}, 2)
	if err := dst.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Match([]string{"a", "b"})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("merged load: %v", got)
	}
}
