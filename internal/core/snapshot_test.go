package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"tagmatch/internal/gpu"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := makeTestDB(2000, 5, 3, 71)
	src, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	db.load(src)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	sst, dstSt := src.Stats(), dst.Stats()
	if sst.UniqueSets != dstSt.UniqueSets || sst.Keys != dstSt.Keys {
		t.Fatalf("shape mismatch: src %d/%d, dst %d/%d",
			sst.UniqueSets, sst.Keys, dstSt.UniqueSets, dstSt.Keys)
	}

	// Answers must be identical.
	for _, q := range db.makeQueries(100, 72) {
		a, err := src.MatchSignature(q, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.MatchSignature(q, true)
		if err != nil {
			t.Fatal(err)
		}
		sortKeysSlice(a)
		sortKeysSlice(b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("answers diverge after snapshot: %v vs %v", a, b)
		}
	}
}

func TestSnapshotWithExactTags(t *testing.T) {
	src, err := New(Config{Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.AddSet([]string{"a", "b"}, 1)
	src.AddSet([]string{"c"}, 2)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Match([]string{"a", "b", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("got %v", got)
	}
	// The tags survived: a query that bitwise-collides but string-differs
	// is still verified (cannot easily construct a collision; instead
	// assert the loaded engine still answers exactly for a subset query).
	if got, _ := dst.Match([]string{"a"}); len(got) != 0 {
		t.Fatalf("partial query matched %v", got)
	}
}

// TestSnapshotIncludesStaged pins the live-update snapshot contract: a
// snapshot taken mid-churn carries db ⊕ staged, so pending adds and
// removes survive a save/load cycle without a Consolidate first.
func TestSnapshotIncludesStaged(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"a"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	// Staged but unconsolidated: an add and a remove against the main db.
	e.AddSet([]string{"b"}, 2)
	e.RemoveSet([]string{"a"}, 1)
	if e.PendingOps() != 2 {
		t.Fatalf("PendingOps = %d, want 2", e.PendingOps())
	}
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot with staged ops: %v", err)
	}
	// Saving must not drain the staged log.
	if e.PendingOps() != 2 {
		t.Fatalf("PendingOps after save = %d, want 2", e.PendingOps())
	}

	dst, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Match([]string{"a", "b"})
	if fmt.Sprint(got) != "[2]" {
		t.Fatalf("restored engine answered %v, want [2]", got)
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _ := New(Config{Threads: 1})
	defer dst.Close()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Stats().UniqueSets != 0 {
		t.Fatal("empty snapshot produced sets")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	src.AddSet([]string{"a"}, 1)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), full[8:]...),
		"truncated":   full[:len(full)-3],
		"short magic": full[:4],
	}
	for name, data := range cases {
		dst, _ := New(Config{Threads: 1})
		if err := dst.LoadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
		dst.Close()
	}
}

func TestSnapshotLoadMerges(t *testing.T) {
	src, _ := New(Config{Threads: 1})
	defer src.Close()
	src.AddSet([]string{"a"}, 1)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, _ := New(Config{Threads: 1})
	defer dst.Close()
	dst.AddSet([]string{"b"}, 2)
	if err := dst.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Match([]string{"a", "b"})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("merged load: %v", got)
	}
}

// TestSnapshotRestoreSlicedParity restores a snapshot into a GPU-backed
// engine running the default bit-sliced kernel and holds every answer to
// exact parity with the brute-force reference: the restore path
// (LoadSnapshot staging + its internal Consolidate) must rebuild the
// column-transposed device index identically to a live-built one.
func TestSnapshotRestoreSlicedParity(t *testing.T) {
	db := makeTestDB(2000, 5, 3, 91)
	src, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	db.load(src)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	dst, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 2,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	verifyEngine(t, dst, db, db.makeQueries(1000, 92), false)

	st := dst.Stats()
	if st.KernelSliced == 0 {
		t.Fatal("restored engine never ran the bit-sliced kernel")
	}
	launches := devs[0].Stats().KernelLaunches + devs[1].Stats().KernelLaunches
	if launches == 0 {
		t.Fatal("restored engine never launched on a device")
	}
}

// TestSnapshotRestoreChaosParity restores a snapshot and then drives the
// restored engine under a combined fault-and-straggler plan with hedging
// enabled: the restored index must stay exact through retries, hedges,
// and CPU fallbacks, proving restore composes with the whole
// tail-tolerant dispatch path.
func TestSnapshotRestoreChaosParity(t *testing.T) {
	db := makeTestDB(1500, 5, 2, 93)
	src, err := New(Config{MaxPartitionSize: 200, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	db.load(src)
	if err := src.Consolidate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	dst, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 2,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
		HedgePolicy:       HedgePolicy{Mode: HedgeFixed, Budget: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	devs[0].SetFaultPlan(&gpu.FaultPlan{
		Seed: 21, CopyFailProb: 0.05, LaunchFailProb: 0.05,
		SlowProb: 0.02, SlowDelay: 2 * time.Millisecond,
	})

	verifyEngine(t, dst, db, db.makeQueries(2000, 94), false)

	st := dst.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if st.GPUFaults == 0 {
		t.Fatal("no GPU faults recorded despite the fault plan")
	}
}
