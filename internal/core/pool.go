package core

import (
	"sync"
	"time"

	"tagmatch/internal/bitvec"
)

// Hot-path buffer recycling. At steady state the submit→complete path
// allocates the same handful of objects for every query and batch —
// query structs, openBatch slice pairs, batchResult carriers, result
// staging buffers, and the reduce stage's per-batch scratch. All of them
// have a clear last-touch point (the final finish for queries, the end
// of reduceOne for batches/results/scratch), so they are recycled
// through sync.Pools instead of being re-allocated per batch, keeping
// the steady-state pipeline allocation-flat. Config.DisablePooling
// bypasses every pool for before/after comparison (the hotpath
// experiment) and as an escape hatch.
type enginePools struct {
	disabled bool
	query    sync.Pool // *query
	batch    sync.Pool // *openBatch
	result   sync.Pool // *batchResult
	scratch  sync.Pool // *reduceScratch
}

func (ep *enginePools) getQuery() *query {
	if !ep.disabled {
		if q, ok := ep.query.Get().(*query); ok {
			return q
		}
	}
	return &query{}
}

// putQuery recycles a query struct. Only the goroutine that drove
// pending to zero (and has run the done callback) may call it: at that
// point every batch holding the query has performed its last access.
// The keys slice is never recycled — its ownership passed to the done
// callback with the MatchResult.
func (ep *enginePools) putQuery(q *query) {
	if ep.disabled {
		return
	}
	q.sig = bitvec.Vector{}
	q.unique = false
	q.start = time.Time{}
	q.idx = nil
	q.tags = nil
	q.pending.Store(0)
	q.keys = nil
	q.done = nil
	q.trace = nil
	q.deadline = time.Time{}
	q.ctx = nil
	q.expired.Store(false)
	ep.query.Put(q)
}

func (ep *enginePools) getBatch(pid uint32, batchSize int) *openBatch {
	var b *openBatch
	if !ep.disabled {
		b, _ = ep.batch.Get().(*openBatch)
	}
	if b == nil {
		b = &openBatch{
			queries: make([]*query, 0, batchSize),
			sigs:    make([]bitvec.Vector, 0, batchSize),
		}
	}
	b.pid = pid
	b.created = time.Now()
	return b
}

// putBatch recycles a batch once nothing references it anymore. For an
// unhedged batch the stream callback that forwarded the result ran
// after the H2D copy of b.sigs (stream ops are FIFO), so reduceOne's
// unref is the last touch; a hedged batch's losing attempt can outlive
// the reduce, which is why every recycle goes through the refcount
// (batchUnref) rather than calling this directly from reduceOne.
func (ep *enginePools) putBatch(b *openBatch) {
	if ep.disabled {
		return
	}
	clear(b.queries) // drop query refs: they are recycled independently
	b.queries = b.queries[:0]
	b.sigs = b.sigs[:0]
	b.deadlined = false
	b.settled.Store(false)
	b.refs.Store(0)
	b.hedged.Store(false)
	b.hedgeTimer = nil
	b.timerIdx = nil
	clear(b.ctxs) // drop context refs
	b.ctxs = b.ctxs[:0]
	ep.batch.Put(b)
}

func (ep *enginePools) getResult() *batchResult {
	if !ep.disabled {
		if r, ok := ep.result.Get().(*batchResult); ok {
			return r
		}
	}
	return &batchResult{}
}

// putResult recycles a result carrier, retaining the capacity of its
// payload buffers (packed / qIDs / sIDs) for the next batch.
func (ep *enginePools) putResult(r *batchResult) {
	if ep.disabled {
		return
	}
	r.idx = nil
	r.batch = nil
	r.count = 0
	r.overflow = false
	r.kind = payloadCPU
	r.packed = r.packed[:0]
	r.qIDs = r.qIDs[:0]
	r.sIDs = r.sIDs[:0]
	ep.result.Put(r)
}

// reduceScratch is the per-batch accumulation state of the batch-local
// reduce: keys collected per query slot (slot = the query's dense uint8
// index within the batch) and the list of touched slots in first-touch
// order. Key capacities persist across reuse, so a warmed-up scratch
// absorbs a typical batch without allocating.
type reduceScratch struct {
	keys    [][]Key // per batch slot; appended to under no lock
	touched []uint8 // slots with at least one key, in first-touch order
	qIdx    []uint8 // cpuMatchBatch per-block surviving-query scratch
}

func (ep *enginePools) getScratch(batchSize int) *reduceScratch {
	var sc *reduceScratch
	if !ep.disabled {
		sc, _ = ep.scratch.Get().(*reduceScratch)
	}
	if sc == nil {
		sc = &reduceScratch{}
	}
	for len(sc.keys) < batchSize {
		sc.keys = append(sc.keys, nil)
	}
	return sc
}

// putScratch recycles a reduce scratch. The caller must have drained
// every touched slot (flushScratch leaves them empty).
func (ep *enginePools) putScratch(sc *reduceScratch) {
	if ep.disabled {
		return
	}
	ep.scratch.Put(sc)
}

// growBytes returns a length-n byte slice, reusing buf's backing array
// when it is large enough.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// growU32 is growBytes for uint32 slices.
func growU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}
