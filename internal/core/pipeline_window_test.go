package core

import (
	"testing"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// TestQueryWindowHitsAndParity drives a recurring query stream through
// the default configuration (stream depth 2, query window on): answers
// must match the brute-force reference exactly, the window must serve
// repeats from the ring (hits recorded, residual upload rate low), and
// the per-slot H2D byte accounting must come in under the dense
// 24-byte-per-slot baseline.
func TestQueryWindowHitsAndParity(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 81)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// 400 distinct queries, each submitted 8 times: after the first
	// pass the ring holds every signature on every device.
	distinct := db.makeQueries(400, 82)
	queries := make([]bitvec.Vector, 0, len(distinct)*8)
	for i := 0; i < 8; i++ {
		queries = append(queries, distinct...)
	}
	verifyEngine(t, e, db, queries, false)

	st := e.Stats()
	if st.WindowHits == 0 {
		t.Fatal("no window hits on a recurring query stream")
	}
	if st.WindowFallbacks != 0 {
		t.Fatalf("window fell back %d times with an oversized ring", st.WindowFallbacks)
	}
	if st.QuerySlots == 0 || st.H2DQueryBytes == 0 {
		t.Fatalf("stream byte accounting empty: %+v", st)
	}
	dense := st.QuerySlots * int64(sigBytes)
	if st.H2DQueryBytes >= dense {
		t.Fatalf("window saved nothing: %d H2D bytes for %d slots (dense would be %d)",
			st.H2DQueryBytes, st.QuerySlots, dense)
	}
	if st.PipelinedDispatches == 0 {
		t.Fatal("no pipelined dispatches at stream depth 2 under a saturating burst")
	}
}

// TestQueryWindowTinyRingEvicts shrinks the ring to its minimum (one
// batch) and streams far more distinct signatures than it can hold:
// the clock hand must evict (or the assignment fall back to dense
// uploads when every entry is pinned), and every answer must still be
// exact — eviction can never recycle a slot a kernel still reads.
func TestQueryWindowTinyRingEvicts(t *testing.T) {
	db := makeTestDB(1500, 5, 2, 83)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 150, BatchSize: 32, Threads: 4,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
		QueryWindow: 1, // applyDefaults raises it to BatchSize
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	verifyEngine(t, e, db, db.makeQueries(4000, 84), false)

	st := e.Stats()
	if st.WindowEvictions == 0 && st.WindowFallbacks == 0 {
		t.Fatalf("tiny ring neither evicted nor fell back: %+v", st)
	}
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
}

// TestStreamDepthAblationBaseline pins the depth-1, window-off cell the
// pipeline experiment uses as its baseline: results stay exact, every
// query slot pays the full dense signature upload, and no dispatch
// ever overlaps another on the same stream.
func TestStreamDepthAblationBaseline(t *testing.T) {
	db := makeTestDB(1500, 5, 2, 85)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
		StreamDepth:        1,
		DisableQueryWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	verifyEngine(t, e, db, db.makeQueries(2000, 86), false)

	st := e.Stats()
	if st.WindowHits+st.WindowMisses+st.WindowFallbacks != 0 {
		t.Fatalf("window activity with the window disabled: %+v", st)
	}
	if st.PipelinedDispatches != 0 {
		t.Fatalf("%d overlapping dispatches at stream depth 1", st.PipelinedDispatches)
	}
	if want := st.QuerySlots * int64(sigBytes); st.H2DQueryBytes != want {
		t.Fatalf("dense upload accounting: %d H2D bytes for %d slots, want exactly %d",
			st.H2DQueryBytes, st.QuerySlots, want)
	}
}

// TestPipelinedChaosFaultsWindow is the fault-injection suite for the
// pipelined dispatch path: stream depth 2 with a deliberately small
// query window, one device failing ~5% of copies and launches, the
// other scripted to die mid-run. Every slot and every pinned window
// entry must be settled by the fault machinery — answers exact, no
// query lost, the dead device quarantined.
func TestPipelinedChaosFaultsWindow(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 87)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
		StreamDepth:       2,
		QueryWindow:       64, // minimum: constant pin/evict churn under faults
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	devs[0].SetFaultPlan(&gpu.FaultPlan{Seed: 11, DieAtOp: 500})
	devs[1].SetFaultPlan(&gpu.FaultPlan{Seed: 12, CopyFailProb: 0.05, LaunchFailProb: 0.05})

	verifyEngine(t, e, db, db.makeQueries(10000, 88), false)

	if !devs[0].Dead() {
		t.Fatal("device 0 never reached its scripted death")
	}
	st := e.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if st.GPUFaults == 0 || st.BatchRetries == 0 {
		t.Fatalf("fault machinery never engaged: %+v", st)
	}
	if st.DeviceQuarantines == 0 {
		t.Fatal("dead device was never quarantined")
	}
}

// TestPipelinedChaosStragglerHedge crosses the pipelined path with the
// tail-tolerance machinery: depth-2 slots, the window on, one device
// straggling hard, hedged re-dispatch racing the stalls. A losing
// hedge must never recycle a slot (or unpin a window entry) its rival
// attempt still owns: results stay exact and every query completes
// exactly once.
func TestPipelinedChaosStragglerHedge(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 89)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 4,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
		StreamDepth: 2,
		HedgePolicy: HedgePolicy{Mode: HedgeFixed, Budget: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	devs[0].SetFaultPlan(&gpu.FaultPlan{
		Seed: 13, SlowProb: 0.05, SlowFactor: 20, SlowDelay: 20 * time.Millisecond,
	})

	verifyEngine(t, e, db, db.makeQueries(3000, 90), false)

	st := e.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if st.HedgesFired == 0 {
		t.Fatal("no hedges fired against a 5% straggler at a 2ms budget")
	}
	// Every fired hedge resolves as won or lost; cancellations are the
	// timers that found the batch already settled and never re-dispatched.
	if st.HedgesWon+st.HedgesLost > st.HedgesFired {
		t.Fatalf("hedge accounting leaks attempts: fired=%d won=%d lost=%d",
			st.HedgesFired, st.HedgesWon, st.HedgesLost)
	}
}
