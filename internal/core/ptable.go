package core

import (
	"tagmatch/internal/bitvec"
)

// partitionTable is the CPU-side index of Algorithm 2: an array of 192
// bins, where bin j holds the ids of all partitions whose mask's leftmost
// one-bit is at position j. Because a mask that is a subset of a query
// must have its leftmost one-bit among the query's one-bits, scanning only
// the bins of the query's one-bits visits every candidate exactly once.
//
// The table is immutable after construction (Consolidate builds a fresh
// one), so lookups need no locking. The bins store masks inline next to
// the partition ids to keep the scan cache-friendly, as the paper's
// "compact data structure" remark prescribes.
type partitionTable struct {
	bins [bitvec.W][]maskEntry
	n    int
}

type maskEntry struct {
	mask bitvec.Vector
	pid  uint32
}

// buildPartitionTable indexes the given partitions by leftmost mask bit.
// Partitions with an empty mask (possible only for degenerate databases
// that exhausted all 192 pivot bits) are returned separately; the caller
// must route every query to them.
func buildPartitionTable(parts []partition) (*partitionTable, []uint32) {
	pt := &partitionTable{n: len(parts)}
	var maskless []uint32
	for i := range parts {
		j := parts[i].mask.LeftmostOne()
		if j < 0 {
			maskless = append(maskless, uint32(i))
			continue
		}
		pt.bins[j] = append(pt.bins[j], maskEntry{mask: parts[i].mask, pid: uint32(i)})
	}
	return pt, maskless
}

// lookup appends to dst the ids of all partitions whose mask is a bitwise
// subset of q, visiting each candidate bin once per one-bit of q
// (Algorithm 2). Each subset check is three 64-bit block operations.
func (pt *partitionTable) lookup(q bitvec.Vector, dst []uint32) []uint32 {
	for j := q.NextOne(0); j >= 0; j = q.NextOne(j + 1) {
		for _, e := range pt.bins[j] {
			if e.mask.SubsetOf(q) {
				dst = append(dst, e.pid)
			}
		}
	}
	return dst
}

// entries returns the total number of indexed masks, for memory
// accounting and tests.
func (pt *partitionTable) entries() int {
	n := 0
	for j := range pt.bins {
		n += len(pt.bins[j])
	}
	return n
}
