package core

import (
	"math/bits"
	"slices"

	"tagmatch/internal/bitvec"
)

// partitionTable is the CPU-side index of Algorithm 2: an array of 192
// bins, where bin j holds the ids of all partitions whose mask's leftmost
// one-bit is at position j. Because a mask that is a subset of a query
// must have its leftmost one-bit among the query's one-bits, scanning only
// the bins of the query's one-bits visits every candidate exactly once.
//
// Each bin is stored twice: as the scalar mask/pid list the paper
// describes (one three-word SubsetOf per candidate), and as a bit-sliced
// transposed index (bitvec.LaneBlock groups of 64 masks) that tests 64
// candidates per column word by OR-ing the columns at the query's zero
// bits. The sliced form is the production lookup path; the scalar form
// is retained as the differential-testing and ablation baseline
// (Config.ScalarRouting) and costs only the original bin storage.
//
// The table is immutable after construction (Consolidate builds a fresh
// one), so lookups need no locking. The bins store masks inline next to
// the partition ids to keep the scan cache-friendly, as the paper's
// "compact data structure" remark prescribes.
type partitionTable struct {
	bins   [bitvec.W][]maskEntry
	sliced [bitvec.W]slicedBin
	n      int
}

type maskEntry struct {
	mask bitvec.Vector
	pid  uint32
}

// slicedBin is one bin's masks in column-transposed groups of 64. Lane
// L of group g corresponds to pids[g*64+L]. Bins are sorted
// lexicographically before grouping, so each group's members share
// their leading mask bits; ands[g] is the intersection of the group's
// masks — if any lane's mask is a subset of q then so is the
// intersection, so one three-word test (ands[g] ⊄ q) discards the
// whole group before any column is touched, and the sort makes that
// intersection as large (and the gate as selective) as possible.
type slicedBin struct {
	groups []bitvec.LaneBlock
	ands   []bitvec.Vector // per-group mask intersection (group gate)
	pids   []uint32
}

// buildPartitionTable indexes the given partitions by leftmost mask bit.
// Partitions with an empty mask (possible only for degenerate databases
// that exhausted all 192 pivot bits) are returned separately; the caller
// must route every query to them.
func buildPartitionTable(parts []partition) (*partitionTable, []uint32) {
	pt := &partitionTable{n: len(parts)}
	var maskless []uint32
	for i := range parts {
		j := parts[i].mask.LeftmostOne()
		if j < 0 {
			maskless = append(maskless, uint32(i))
			continue
		}
		pt.bins[j] = append(pt.bins[j], maskEntry{mask: parts[i].mask, pid: uint32(i)})
	}
	for j := range pt.bins {
		entries := pt.bins[j]
		if len(entries) == 0 {
			continue
		}
		// Lexicographic order clusters masks sharing leading bits into
		// the same group, maximizing each group's intersection gate.
		slices.SortFunc(entries, func(a, b maskEntry) int {
			return bitvec.Compare(a.mask, b.mask)
		})
		sb := &pt.sliced[j]
		sb.groups = make([]bitvec.LaneBlock, (len(entries)+63)/64)
		sb.ands = make([]bitvec.Vector, len(sb.groups))
		sb.pids = make([]uint32, len(entries))
		for g := range sb.ands {
			sb.ands[g] = bitvec.Vector{^uint64(0), ^uint64(0), ^uint64(0)}
		}
		for i, e := range entries {
			sb.groups[i/64].SetLane(i%64, e.mask)
			sb.ands[i/64] = sb.ands[i/64].And(e.mask)
			sb.pids[i] = e.pid
		}
	}
	return pt, maskless
}

// lookup appends to dst the ids of all partitions whose mask is a bitwise
// subset of q, visiting each candidate bin once per one-bit of q
// (Algorithm 2). Each subset check is three 64-bit block operations.
// qOnes must be q's one-bit positions in increasing order (q.Ones),
// computed once by the caller and shared with the sliced variant.
//
// This is the retained scalar baseline; the engine routes through
// lookupSliced unless Config.ScalarRouting is set.
func (pt *partitionTable) lookup(q bitvec.Vector, qOnes []int, dst []uint32) []uint32 {
	for _, j := range qOnes {
		for _, e := range pt.bins[j] {
			if e.mask.SubsetOf(q) {
				dst = append(dst, e.pid)
			}
		}
	}
	return dst
}

// lookupSliced is the bit-sliced lookup: the same bin walk as lookup,
// but each bin is scanned 64 candidates at a time through its
// column-transposed groups. A group whose mask intersection is not a
// subset of q is discarded with that single three-word test; a
// surviving group's scan touches one column word per used mask-bit
// position at which q is zero (m &^ q == 0 ⇔ no column at a zero bit
// of q has the lane set), then emits the surviving lanes' pids from
// the set bits of the hit mask.
func (pt *partitionTable) lookupSliced(q bitvec.Vector, qOnes []int, dst []uint32) []uint32 {
	for _, j := range qOnes {
		sb := &pt.sliced[j]
		for gi := range sb.groups {
			if !bitvec.AndNotIsZero(sb.ands[gi], q) {
				continue // some bit shared by ALL group members is absent from q
			}
			hits := sb.groups[gi].SubsetLanes(q)
			if hits == 0 {
				continue
			}
			base := gi * 64
			for hits != 0 {
				l := bits.TrailingZeros64(hits)
				dst = append(dst, sb.pids[base+l])
				hits &= hits - 1
			}
		}
	}
	return dst
}

// entries returns the total number of indexed masks, for memory
// accounting and tests.
func (pt *partitionTable) entries() int {
	n := 0
	for j := range pt.bins {
		n += len(pt.bins[j])
	}
	return n
}

// slicedBytes returns the memory footprint of the transposed index
// (column words, used masks, lane validity, pid arrays), for the host
// memory accounting alongside entries().
func (pt *partitionTable) slicedBytes() int64 {
	var b int64
	for j := range pt.sliced {
		sb := &pt.sliced[j]
		b += int64(len(sb.groups))*int64((bitvec.W+bitvec.Blocks+1)*8) +
			int64(len(sb.ands))*int64(bitvec.Blocks*8) +
			int64(len(sb.pids))*4
	}
	return b
}
