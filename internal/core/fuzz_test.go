package core

import (
	"bytes"
	"errors"
	"testing"

	"tagmatch/internal/bitvec"
)

// FuzzLoadSnapshot feeds arbitrary bytes to the snapshot loader: it must
// either load cleanly or fail with ErrBadSnapshot — never panic, never
// hang, never corrupt the engine.
func FuzzLoadSnapshot(f *testing.F) {
	// Seed with a valid snapshot and a few mutations.
	e, err := New(Config{Threads: 1})
	if err != nil {
		f.Fatal(err)
	}
	e.AddSet([]string{"a", "b"}, 1)
	e.AddSet([]string{"c"}, 2)
	if err := e.Consolidate(); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := e.SaveSnapshot(&valid); err != nil {
		f.Fatal(err)
	}
	e.Close()

	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TMSNAP01"))
	f.Add(valid.Bytes()[:12])
	mutated := append([]byte(nil), valid.Bytes()...)
	if len(mutated) > 20 {
		mutated[15] ^= 0xff
	}
	f.Add(mutated)

	// One engine for the whole fuzz process: creating an engine (worker
	// goroutines, channels) per execution makes the fuzz coordinator
	// crawl on small hosts. Loaded state accumulates across executions,
	// which is harmless for a robustness target.
	var eng *Engine
	f.Cleanup(func() {
		if eng != nil {
			eng.Close()
		}
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		// A fuzzed header can declare 2^60 sets, but the loader streams
		// until the reader runs dry, so cost is bounded by len(data).
		if len(data) > 1<<16 {
			return
		}
		if eng == nil {
			var err error
			if eng, err = New(Config{Threads: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.LoadSnapshot(bytes.NewReader(data)); err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		// A successful load must leave a usable engine.
		if _, err := eng.Match([]string{"x"}); err != nil {
			t.Fatalf("engine unusable after load: %v", err)
		}
	})
}

// FuzzSlicedLookup differentially fuzzes the bit-sliced partition lookup
// against the scalar Algorithm 2 scan: for any set of masks and any
// query, the two must return the same pid set.
func FuzzSlicedLookup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 0, 0, 0, 4, 5}, []byte{1, 2, 3, 4, 5})
	f.Add([]byte{}, []byte{7})
	f.Add([]byte{0, 0, 0, 0, 0}, []byte{})
	f.Fuzz(func(t *testing.T, maskBytes, qBytes []byte) {
		var parts []partition
		for i := 0; i < len(maskBytes) && len(parts) < 300; i += 5 {
			var m bitvec.Vector
			for _, x := range maskBytes[i:min(i+5, len(maskBytes))] {
				m.Set(int(x) % bitvec.W)
			}
			parts = append(parts, partition{mask: m})
		}
		pt, _ := buildPartitionTable(parts)
		var q bitvec.Vector
		for _, x := range qBytes {
			q.Set(int(x) % bitvec.W)
		}
		ones := q.Ones(nil)
		scalar := sortedPids(pt.lookup(q, ones, nil))
		sliced := sortedPids(pt.lookupSliced(q, ones, nil))
		if len(scalar) != len(sliced) {
			t.Fatalf("scalar %v != sliced %v (q=%s)", scalar, sliced, q.Hex())
		}
		for i := range scalar {
			if scalar[i] != sliced[i] {
				t.Fatalf("scalar %v != sliced %v (q=%s)", scalar, sliced, q.Hex())
			}
		}
	})
}
