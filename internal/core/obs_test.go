package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

func obsTestEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{MaxPartitionSize: 64, BatchSize: 8, Threads: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for i := 0; i < 200; i++ {
		e.AddSet([]string{"a", fmt.Sprintf("t%d", i%50)}, Key(i))
	}
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestObsStageHistogramsAndPartitions(t *testing.T) {
	e := obsTestEngine(t, nil)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := e.Match([]string{"a", fmt.Sprintf("t%d", i%50), "extra"}); err != nil {
			t.Fatal(err)
		}
	}
	p := e.Obs()
	if !p.On {
		t.Fatal("observability should default on")
	}
	if got := p.E2E.Count(); got != n {
		t.Fatalf("e2e observations = %d, want %d", got, n)
	}
	if p.Preprocess.Count() != n {
		t.Fatalf("preprocess observations = %d, want %d", p.Preprocess.Count(), n)
	}
	if p.SubsetMatch.Count() == 0 || p.Reduce.Count() == 0 {
		t.Fatal("batch-stage histograms empty")
	}
	if p.BatchOccupancy.Count() == 0 {
		t.Fatal("batch occupancy histogram empty")
	}
	if s := p.E2E.Snapshot(); s.QuantileDuration(0.99) <= 0 || s.Max <= 0 {
		t.Fatalf("e2e snapshot = %+v", s)
	}

	parts := p.Parts.Snapshot()
	if len(parts) != e.Stats().Partitions {
		t.Fatalf("partition stats = %d, index partitions = %d", len(parts), e.Stats().Partitions)
	}
	var routed, batches int64
	for _, ps := range parts {
		routed += ps.QueriesRouted
		batches += ps.BatchesFull + ps.BatchesTimedOut + ps.BatchesFlushed
	}
	st := e.Stats()
	if routed == 0 || batches != st.BatchesDispatched {
		t.Fatalf("routed=%d batches=%d dispatched=%d", routed, batches, st.BatchesDispatched)
	}

	// Stage snapshots feed the export surfaces.
	snap := p.Snapshot(true)
	if len(snap.Stages) != 5 || len(snap.Partitions) != len(parts) {
		t.Fatalf("snapshot shape: %d stages, %d partitions", len(snap.Stages), len(snap.Partitions))
	}
	if snap.Gauges == nil {
		t.Fatal("engine gauges not registered")
	}
	if _, ok := snap.Gauges[`tagmatch_queue_depth{queue="input"}`]; !ok {
		t.Fatalf("missing input queue gauge: %v", snap.Gauges)
	}
}

func TestObsPerQueryTracing(t *testing.T) {
	e := obsTestEngine(t, func(c *Config) { c.TraceEvery = 1; c.TraceKeep = 16 })
	if _, err := e.Match([]string{"a", "t3", "x"}); err != nil {
		t.Fatal(err)
	}
	traces := e.Obs().Tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("no traces with TraceEvery=1")
	}
	tr := traces[len(traces)-1]
	stages := map[string]bool{}
	for _, ev := range tr.Events {
		stages[ev.Stage] = true
	}
	for _, want := range []string{obs.StagePreprocess, "batch", "batch-done", "done"} {
		if !stages[want] {
			t.Fatalf("trace missing stage %q: %+v", want, tr.Events)
		}
	}
}

// TestShedTracePublishesError pins the trace-finalization contract of
// the load-shedding path: a sampled query rejected by the admission gate
// must still publish to the trace ring, with terminal status
// "error:overloaded" — it may not vanish silently.
func TestShedTracePublishesError(t *testing.T) {
	e, err := New(Config{
		MaxPartitionSize: 100, BatchSize: 1, Threads: 2, MaxInFlight: 1,
		TraceEvery: 1, TraceKeep: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.AddSet([]string{"a"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// Saturate: park the only reduce worker in query 1's done callback,
	// admit query 2 to fill the in-flight budget (see overload_test.go).
	entered := make(chan struct{})
	release := make(chan struct{})
	if err := e.Submit([]string{"a"}, func(MatchResult) {
		close(entered)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := e.Submit([]string{"a"}, func(MatchResult) {}); err != nil {
		t.Fatalf("query filling the in-flight budget was rejected: %v", err)
	}

	if err := e.Submit([]string{"a"}, func(MatchResult) {
		t.Error("done called for a shed query")
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit at capacity: got %v, want ErrOverloaded", err)
	}

	var shed *obs.TraceRecord
	for _, tr := range e.Obs().Tracer.Recent() {
		if tr.Status == "error:overloaded" {
			shed = &tr
			break
		}
	}
	if shed == nil {
		t.Fatalf("no trace with status error:overloaded in ring: %+v",
			e.Obs().Tracer.Recent())
	}
	var sawEvent bool
	for _, ev := range shed.Events {
		if ev.Stage == "error:overloaded" {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatalf("shed trace missing terminal error event: %+v", shed.Events)
	}
	close(release)
	e.Drain()
}

// TestFaultTracesTerminal pins trace finalization on the degraded paths:
// with a device whose every operation fails, queries complete through
// GPU-fault retries and CPU fallback, and every published trace must
// carry a terminal status — "degraded:<reason>" for the fallback
// survivors, never the empty string.
func TestFaultTracesTerminal(t *testing.T) {
	db := makeTestDB(300, 5, 2, 79)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 100, BatchSize: 8, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: 50 * time.Millisecond,
		TraceEvery:        1, TraceKeep: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPlan(&gpu.FaultPlan{Seed: 5, CopyFailProb: 1})

	for _, q := range db.makeQueries(60, 80) {
		if _, err := e.MatchSignature(q, false); err != nil {
			t.Fatal(err)
		}
	}

	traces := e.Obs().Tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("no traces recorded with TraceEvery=1")
	}
	var degraded int
	for _, tr := range traces {
		if tr.Status == "" {
			t.Fatalf("trace %d published without terminal status: %+v", tr.ID, tr)
		}
		if strings.HasPrefix(tr.Status, "degraded:") {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatalf("no degraded traces despite a fully failing device; statuses: %v",
			traceStatuses(traces))
	}
	if e.Stats().CPUFallbacks == 0 {
		t.Fatal("no CPU fallbacks despite a fully failing device")
	}
}

func traceStatuses(traces []obs.TraceRecord) []string {
	out := make([]string, len(traces))
	for i, tr := range traces {
		out[i] = tr.Status
	}
	return out
}

func TestObsDisabled(t *testing.T) {
	e := obsTestEngine(t, func(c *Config) { c.DisableObservability = true })
	if _, err := e.Match([]string{"a", "t1"}); err != nil {
		t.Fatal(err)
	}
	p := e.Obs()
	if p.On {
		t.Fatal("observability should be off")
	}
	if p.E2E.Count() != 0 || p.BatchOccupancy.Count() != 0 {
		t.Fatal("disabled pipeline recorded samples")
	}
	if p.Parts.Len() != 0 {
		t.Fatal("disabled pipeline allocated partition counters")
	}
}

// TestDrainEventDriven exercises the condition-variable drain: many
// queries submitted with no flush timeout must drain promptly (the old
// implementation polled at 200µs; the new one is woken by completions
// and re-flushes parked batches).
func TestDrainEventDriven(t *testing.T) {
	e := obsTestEngine(t, func(c *Config) { c.BatchSize = 256 }) // batches never fill
	const n = 500
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := e.Submit([]string{"a", fmt.Sprintf("t%d", i%50)}, func(MatchResult) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { e.Drain(); wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st := e.Stats(); st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestConcurrentDrainers runs overlapping submitters and drainers to
// shake races in the progress-epoch handshake (run under -race in CI).
func TestConcurrentDrainers(t *testing.T) {
	e := obsTestEngine(t, func(c *Config) { c.Threads = 4 })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := e.Submit([]string{"a", fmt.Sprintf("t%d", (i+w)%50)}, func(MatchResult) {}); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					e.Drain()
				}
			}
		}(w)
	}
	wg.Wait()
	e.Drain()
	if st := e.Stats(); st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("stats after drain: %+v", st)
	}
}
