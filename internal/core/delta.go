package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
)

// delta is the match-visible overlay over the staged operation log: a
// CPU-side bit-sliced mini-index holding the adds staged since the last
// consolidation, plus the tombstones their removes cast over the main
// index. It makes AddSet/RemoveSet take effect on the next query instead
// of the next Consolidate (the batch-dynamic shape: absorb updates into
// a small dynamic structure on the hot path, fold them into the main
// index asynchronously).
//
// Invariant: the overlay is a pure function of (db, staged) and is
// updated in the same stagedMu critical section that appends the op, so
// matching against (main index + overlay) always equals matching against
// the database Consolidate would produce from the same log. Concretely,
// for every (signature, key):
//
//	live multiplicity = mainCount - tombs[(sig,key)] + liveOverlayAdds
//
// where absorbRemove keeps 0 <= tombs <= mainCount and cancels overlay
// adds oldest-first — exactly the entry Consolidate's first-match
// removal would drop, since main entries precede appended adds in the
// replay order. A key added then removed in the overlay therefore never
// surfaces, and a remove with no target is a no-op both here and at
// replay (exactly-once).
type delta struct {
	mu sync.RWMutex

	// adds mirrors the staged add ops in order: adds[i] occupies lane
	// i%64 of groups[i/64] (lanes are assigned once, so a cancelled add
	// stays in place but is marked dead and masked out of lookups via
	// dead[i/64]). groups reuses the Algorithm-2 bit-sliced layout: the
	// column-transposed LaneBlock plus the running member-intersection
	// Gate, maintained incrementally as lanes fill.
	adds   []deltaAdd
	groups []bitvec.SlicedGroup
	dead   []uint64

	// tombs counts, per (signature, key), how many main-index entries
	// the staged removes suppress; addByKey lists the live overlay adds
	// per (signature, key), oldest first, so a remove cancels the same
	// add a Consolidate replay would.
	tombs    map[tombKey]int
	addByKey map[tombKey][]int32

	// addsLive/tombsLive let the query hot paths skip the overlay with
	// one atomic load when it is empty; sinceNs is the wall clock when
	// the overlay last went from empty to non-empty (the age gauge's
	// reference point, reset by every consolidation swap).
	addsLive  atomic.Int64
	tombsLive atomic.Int64
	sinceNs   atomic.Int64
}

// deltaAdd is one staged, immediately-matchable set addition.
type deltaAdd struct {
	sig  bitvec.Vector
	key  Key
	tags []string // retained only in ExactVerify mode
	dead bool     // cancelled by a later staged remove
}

// tombKey identifies a (signature, key) association — the granularity at
// which removes suppress matches.
type tombKey struct {
	sig bitvec.Vector
	key Key
}

func (d *delta) init() {
	d.tombs = make(map[tombKey]int)
	d.addByKey = make(map[tombKey][]int32)
}

// absorb folds one freshly staged op into the overlay. Called with
// e.stagedMu held, immediately after the op was appended to e.staged, so
// the overlay and the op log stay in lockstep.
func (d *delta) absorb(db map[bitvec.Vector][]dbEntry, op stagedOp) {
	d.mu.Lock()
	d.absorbLocked(db, op)
	d.mu.Unlock()
}

func (d *delta) absorbLocked(db map[bitvec.Vector][]dbEntry, op stagedOp) {
	if op.remove {
		d.absorbRemoveLocked(db, op)
	} else {
		d.absorbAddLocked(op)
	}
}

func (d *delta) absorbAddLocked(op stagedOp) {
	i := len(d.adds)
	d.adds = append(d.adds, deltaAdd{sig: op.sig, key: op.key, tags: op.tags})
	lane := i % 64
	if lane == 0 {
		// A new group's gate starts as its first member and narrows to
		// the member intersection as lanes fill. Dead lanes stay in the
		// intersection: that only keeps the gate smaller, and the gate
		// test needs gate ⊆ m for every live member m.
		d.groups = append(d.groups, bitvec.SlicedGroup{Gate: op.sig})
		d.dead = append(d.dead, 0)
	} else {
		g := &d.groups[len(d.groups)-1]
		g.Gate = g.Gate.And(op.sig)
	}
	d.groups[len(d.groups)-1].SetLane(lane, op.sig)
	tk := tombKey{sig: op.sig, key: op.key}
	d.addByKey[tk] = append(d.addByKey[tk], int32(i))
	if d.addsLive.Add(1)+d.tombsLive.Load() == 1 {
		d.sinceNs.Store(time.Now().UnixNano())
	}
}

func (d *delta) absorbRemoveLocked(db map[bitvec.Vector][]dbEntry, op stagedOp) {
	tk := tombKey{sig: op.sig, key: op.key}
	// Classify against the replay order Consolidate uses: main-index
	// entries precede appended overlay adds, and the remove drops the
	// first occurrence. So while an unsuppressed main entry remains, the
	// remove becomes a tombstone; otherwise it cancels the oldest live
	// overlay add; with neither it is a no-op (as at replay).
	mainCount := 0
	for _, en := range db[op.sig] {
		if en.key == op.key {
			mainCount++
		}
	}
	if d.tombs[tk] < mainCount {
		d.tombs[tk]++
		if d.tombsLive.Add(1)+d.addsLive.Load() == 1 {
			d.sinceNs.Store(time.Now().UnixNano())
		}
		return
	}
	live := d.addByKey[tk]
	if len(live) == 0 {
		return
	}
	i := live[0]
	if len(live) == 1 {
		delete(d.addByKey, tk)
	} else {
		d.addByKey[tk] = live[1:]
	}
	d.adds[i].dead = true
	d.dead[i/64] |= 1 << (uint(i) % 64)
	d.addsLive.Add(-1)
}

// match runs the Algorithm-2 subset test over the overlay's bit-sliced
// groups and appends the matching live keys to dst: the per-group gate
// discards 64 sets with one three-word test, then the column walk yields
// the subset lanes, masked by the group's dead lanes.
func (d *delta) match(sig bitvec.Vector, tags map[string]struct{}, dst []Key) []Key {
	d.mu.RLock()
	for gi := range d.groups {
		g := &d.groups[gi]
		if !bitvec.AndNotIsZero(g.Gate, sig) {
			continue
		}
		lanes := g.SubsetLanes(sig) &^ d.dead[gi]
		for lanes != 0 {
			lane := bits.TrailingZeros64(lanes)
			lanes &= lanes - 1
			a := &d.adds[gi*64+lane]
			if tags != nil && !tagsContained(a.tags, tags) {
				continue
			}
			dst = append(dst, a.key)
		}
	}
	d.mu.RUnlock()
	return dst
}

// rebuild resets the overlay and replays the surviving staged suffix
// against the just-updated master database. Called with e.stagedMu held
// during the consolidation swap, after the consolidated prefix was
// applied to db — the overlay is purely derived state, so rebuilding it
// from (db, staged) restores the invariant for the new generation.
func (d *delta) rebuild(db map[bitvec.Vector][]dbEntry, staged []stagedOp) {
	d.mu.Lock()
	// Reuse the backing arrays across steady-state folds, but release
	// them when they dwarf the surviving suffix: a bulk load absorbed
	// through the overlay leaves multi-million-lane group and map
	// capacity behind, and [:0]-style reuse would pin hundreds of MB
	// for the GC to mark on every cycle thereafter.
	if cap(d.adds) > 4096 && cap(d.adds) > 4*len(staged) {
		d.adds, d.groups, d.dead = nil, nil, nil
		d.tombs = make(map[tombKey]int)
		d.addByKey = make(map[tombKey][]int32)
	} else {
		d.adds = d.adds[:0]
		d.groups = d.groups[:0]
		d.dead = d.dead[:0]
		clear(d.tombs)
		clear(d.addByKey)
	}
	d.addsLive.Store(0)
	d.tombsLive.Store(0)
	for _, op := range staged {
		d.absorbLocked(db, op)
	}
	if len(staged) == 0 {
		d.sinceNs.Store(0)
	} else {
		d.sinceNs.Store(time.Now().UnixNano())
	}
	d.mu.Unlock()
}

// ageSeconds is the delta-age gauge: seconds since the overlay last
// became non-empty, 0 while it is empty.
func (d *delta) ageSeconds() float64 {
	ns := d.sinceNs.Load()
	if ns == 0 || d.addsLive.Load()+d.tombsLive.Load() == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns)).Seconds()
}

// deltaMatch merges the overlay's hits for one query into its key set,
// alongside whatever the main-index batches will deliver. It runs at the
// end of the preprocess stage, before the routing guard drops, so the
// overlay keys are in place before the query can complete; MatchUnique's
// dedup then collapses any key present in both overlay and main index.
func (e *Engine) deltaMatch(w *routeState, q *query) {
	if e.cfg.DisableDeltaOverlay || e.delta.addsLive.Load() == 0 {
		return
	}
	w.dkeys = e.delta.match(q.sig, q.tags, w.dkeys[:0])
	if len(w.dkeys) == 0 {
		return
	}
	e.obs.Delta.OverlayMatches.Add(1)
	e.obs.Delta.OverlayKeys.Add(int64(len(w.dkeys)))
	if q.trace != nil {
		q.trace.Event("delta-keys", -1, int64(len(w.dkeys)))
	}
	q.mu.Lock()
	q.keys = append(q.keys, w.dkeys...)
	q.mu.Unlock()
}

// tombsForReduce pins the overlay's tombstone map for one reduce pass:
// when live tombstones exist it returns the map with the overlay's read
// lock held — the caller must e.delta.mu.RUnlock() after its last visit
// — else nil with no lock taken. The read lock is dropped before any
// query completes, so a completion callback staging new ops cannot
// self-deadlock against the overlay's write lock.
func (e *Engine) tombsForReduce() map[tombKey]int {
	if e.cfg.DisableDeltaOverlay || e.delta.tombsLive.Load() == 0 {
		return nil
	}
	e.delta.mu.RLock()
	if e.delta.tombsLive.Load() == 0 {
		e.delta.mu.RUnlock()
		return nil
	}
	return e.delta.tombs
}

// tombSuppressed reports whether entry j of a set's key run (the CSR
// slice, or a patched row's replacement list) is hidden by the overlay's
// tombstones: the first tombs[(sig,key)] occurrences of the key within
// the run are suppressed. That multiset equals what Consolidate's
// first-match (swap-with-last) removal leaves — removal reorders
// survivors, but Match output is a multiset and MatchUnique dedups, so
// order is immaterial. The occurrence scan is quadratic in the set's
// entry count, which is tiny (most sets carry one key) and only paid
// while tombstones are pending.
func (e *Engine) tombSuppressed(sig bitvec.Vector, keys []Key, j int, tombs map[tombKey]int) bool {
	k := keys[j]
	n := tombs[tombKey{sig: sig, key: k}]
	if n == 0 {
		return false
	}
	occ := 0
	for jj := 0; jj < j; jj++ {
		if keys[jj] == k {
			occ++
		}
	}
	if occ < n {
		e.obs.Delta.TombSuppressed.Add(1)
		return true
	}
	return false
}
