package core

import (
	"sort"
	"sync"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// Per-device query window: a device-resident ring of query signatures
// shared by every stream of the device. A query routed to k partitions
// used to re-upload its 24-byte signature k times — once per
// per-partition batch; the window uploads each unique signature once
// and lets batches carry 4-byte indices into the ring instead,
// collapsing the fan-out-multiplied H2D traffic (the copy tax the
// paper's §3.3 workflow optimizations target from the other side).
//
// Slot protocol. A window slot is free, pending, or ready:
//
//   - free: no content; allocatable.
//   - pending: one in-flight attempt has claimed the slot and enqueued
//     (or is about to enqueue) its H2D fill on its own stream. Only
//     that attempt may reference the slot — a concurrent batch on
//     another stream has no ordering edge to the fill, so it allocates
//     a duplicate slot for the same signature instead of sharing.
//   - ready: the fill landed and the uploading kernel completed; any
//     batch may hit the slot.
//
// Slots referenced by a batch are pinned for the lifetime of its
// kernel: eviction requires pins == 0, so a fill for a new signature
// can never overwrite a slot an enqueued-but-unfinished kernel still
// reads. Pins are released — and pending slots promoted to ready (or
// freed, on a faulted segment) — in the batch's header callback, which
// the stream FIFO orders after the kernel.
//
// All state transitions happen under mu, and none of them sends on a
// stream FIFO, so the lock can never participate in a
// dispatcher/executor deadlock.

const (
	winFree uint8 = iota
	winPending
	winReady
)

// maxWindowRuns caps how many contiguous H2D runs one batch may issue
// to fill its window misses. Each run costs a per-op bus overhead;
// past a handful of runs the overhead eats the byte savings and the
// dense per-slot upload is cheaper, so assignment fails over to it.
const maxWindowRuns = 4

// sigBytes is the wire size of one query signature (bitvec.W bits).
const sigBytes = bitvec.Blocks * 8

// winRun is one contiguous ring range an uploading batch fills.
type winRun struct{ off, n int }

// queryWindow is the host-side bookkeeping of one device's signature
// ring.
type queryWindow struct {
	mu     sync.Mutex
	buf    *gpu.Buffer[bitvec.Vector]
	sigs   []bitvec.Vector // host mirror of slot contents
	pins   []int32
	state  []uint8
	bySig  map[bitvec.Vector]int // signature → newest slot holding it
	cursor int                   // clock hand of the eviction scan
}

func newQueryWindow(buf *gpu.Buffer[bitvec.Vector]) *queryWindow {
	n := buf.Len()
	return &queryWindow{
		buf:   buf,
		sigs:  make([]bitvec.Vector, n),
		pins:  make([]int32, n),
		state: make([]uint8, n),
		bySig: make(map[bitvec.Vector]int, n),
	}
}

// alloc claims a slot for a new fill: the first slot from the clock
// hand that is neither pinned nor pending. Evicting a ready slot drops
// its signature mapping. Returns false when a full scan finds nothing
// — every slot is pinned by in-flight kernels or being filled — in
// which case the batch falls back to the dense upload. Callers hold mu.
func (w *queryWindow) alloc(sct *obs.StreamCounters) (int, bool) {
	n := len(w.sigs)
	for scan := 0; scan < n; scan++ {
		j := w.cursor
		w.cursor++
		if w.cursor == n {
			w.cursor = 0
		}
		if w.pins[j] != 0 || w.state[j] == winPending {
			continue
		}
		if w.state[j] == winReady {
			if cur, ok := w.bySig[w.sigs[j]]; ok && cur == j {
				delete(w.bySig, w.sigs[j])
			}
			sct.WindowEvictions.Add(1)
		}
		return j, true
	}
	return 0, false
}

// assign maps a batch's signatures onto the window, staging everything
// the dispatcher needs on the slot: qidxHost gets one ring index per
// batch position, winHost/winRuns the coalesced fill payload, and
// winPinned/winUploads the slots whose pins and pending states the
// header callback must resolve. Ready slots are hits; anything else
// allocates a fresh slot (a signature pending under a rival attempt is
// deliberately not shared — see the slot protocol above). Returns
// false — with all bookkeeping rolled back — when the ring is
// exhausted or the fill would fragment into more than maxWindowRuns
// copies.
func (w *queryWindow) assign(sl *streamSlot, sigs []bitvec.Vector, sct *obs.StreamCounters) bool {
	sl.qidxHost = growU32(sl.qidxHost, len(sigs))
	sl.winPinned = sl.winPinned[:0]
	sl.winUploads = sl.winUploads[:0]
	if sl.dedup == nil {
		sl.dedup = make(map[bitvec.Vector]uint32, len(sigs))
	}
	clear(sl.dedup)

	w.mu.Lock()
	defer w.mu.Unlock()
	var hits, misses int64
	for i, s := range sigs {
		if j, ok := sl.dedup[s]; ok {
			sl.qidxHost[i] = j // same-batch duplicate: already pinned
			continue
		}
		if j, ok := w.bySig[s]; ok && w.state[j] == winReady {
			w.pins[j]++
			sl.winPinned = append(sl.winPinned, j)
			sl.dedup[s] = uint32(j)
			sl.qidxHost[i] = uint32(j)
			hits++
			continue
		}
		j, ok := w.alloc(sct)
		if !ok {
			w.rollback(sl)
			return false
		}
		w.sigs[j] = s
		w.state[j] = winPending
		w.pins[j]++
		w.bySig[s] = j
		sl.winUploads = append(sl.winUploads, j)
		sl.winPinned = append(sl.winPinned, j)
		sl.dedup[s] = uint32(j)
		sl.qidxHost[i] = uint32(j)
		misses++
	}

	// Coalesce the fills into contiguous ring runs, staging the payload
	// in upload order in the slot-owned host buffer (b.sigs may be
	// recycled by a rival settle; winHost never is).
	sort.Ints(sl.winUploads)
	sl.winRuns = sl.winRuns[:0]
	sl.winHost = sl.winHost[:0]
	for _, j := range sl.winUploads {
		sl.winHost = append(sl.winHost, w.sigs[j])
		if nr := len(sl.winRuns); nr > 0 && sl.winRuns[nr-1].off+sl.winRuns[nr-1].n == j {
			sl.winRuns[nr-1].n++
			continue
		}
		if len(sl.winRuns) == maxWindowRuns {
			w.rollback(sl)
			return false
		}
		sl.winRuns = append(sl.winRuns, winRun{off: j, n: 1})
	}
	sct.WindowHits.Add(hits)
	sct.WindowMisses.Add(misses)
	return true
}

// rollback undoes a partial assign. Callers hold mu.
func (w *queryWindow) rollback(sl *streamSlot) {
	for _, j := range sl.winUploads {
		w.state[j] = winFree
		if cur, ok := w.bySig[w.sigs[j]]; ok && cur == j {
			delete(w.bySig, w.sigs[j])
		}
	}
	for _, j := range sl.winPinned {
		w.pins[j]--
	}
	sl.winUploads = sl.winUploads[:0]
	sl.winPinned = sl.winPinned[:0]
	sl.winRuns = sl.winRuns[:0]
	sl.winHost = sl.winHost[:0]
}

// settle resolves an attempt's window bookkeeping from its header
// callback, once the kernel has provably finished (the FIFO orders the
// callback after it) and the segment error is known. On success the
// attempt's fills become ready and shareable; on a faulted segment
// their device content is unknown, so they are freed and unmapped. All
// pins are released either way.
func (w *queryWindow) settle(sl *streamSlot, failed bool) {
	w.mu.Lock()
	for _, j := range sl.winUploads {
		if failed {
			w.state[j] = winFree
			if cur, ok := w.bySig[w.sigs[j]]; ok && cur == j {
				delete(w.bySig, w.sigs[j])
			}
		} else {
			w.state[j] = winReady
		}
	}
	for _, j := range sl.winPinned {
		w.pins[j]--
	}
	sl.winUploads = sl.winUploads[:0]
	sl.winPinned = sl.winPinned[:0]
	sl.winRuns = sl.winRuns[:0]
	w.mu.Unlock()
}

// querySrc tells a kernel where the batch's query signatures live on
// the device: a dense per-slot upload (direct), or u32 indices into
// the device-resident query window ring (window + qidx).
type querySrc struct {
	direct *gpu.Buffer[bitvec.Vector]
	window *gpu.Buffer[bitvec.Vector]
	qidx   *gpu.Buffer[uint32]
	n      int
}

// gather resolves the batch's query vectors inside a kernel block. The
// indirect form copies the referenced window entries into block-local
// scratch once per block — the CUDA idiom of gathering through an
// index array into shared memory — so the per-set inner loop reads a
// dense array either way. Concurrent H2D fills of other window slots
// touch disjoint ring entries (the pin protocol guarantees it), so the
// reads are race-free.
func (qs querySrc) gather() []bitvec.Vector {
	if qs.direct != nil {
		return qs.direct.Data()[:qs.n]
	}
	idx := qs.qidx.Data()[:qs.n]
	win := qs.window.Data()
	out := make([]bitvec.Vector, qs.n)
	for i, j := range idx {
		out[i] = win[j]
	}
	return out
}
