package core

import (
	"errors"
	"testing"
	"time"

	"tagmatch/internal/gpu"
)

// TestChaosExactResultsUnderFaults is the headline fault-tolerance test:
// 10k queries against two devices, one failing ~5% of its copies and
// launches under a seeded FaultPlan, the other scripted to die mid-run.
// Every query must return exactly the keys a fault-free run returns
// (verifyEngine checks each against the brute-force reference), with
// zero panics and no lost queries, and the circuit breaker must have
// quarantined the dead device.
func TestChaosExactResultsUnderFaults(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 71)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// Install the plans after Consolidate so the index upload is clean:
	// device 0 dies a few hundred operations in (mid-run for this query
	// volume); device 1 fails ~5% of copies and launches throughout.
	devs[0].SetFaultPlan(&gpu.FaultPlan{Seed: 1, DieAtOp: 500})
	devs[1].SetFaultPlan(&gpu.FaultPlan{Seed: 2, CopyFailProb: 0.05, LaunchFailProb: 0.05})

	queries := db.makeQueries(10000, 72)
	verifyEngine(t, e, db, queries, false)

	if !devs[0].Dead() {
		t.Fatal("device 0 never reached its scripted death")
	}
	st := e.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if st.GPUFaults == 0 {
		t.Fatal("no GPU faults recorded despite active fault plans")
	}
	if st.BatchRetries == 0 {
		t.Fatal("no batch retries recorded")
	}
	if st.DeviceQuarantines == 0 {
		t.Fatal("dead device was never quarantined")
	}
	if !e.DeviceQuarantined(0) {
		t.Fatal("device 0 not quarantined at end of run")
	}
}

// TestChaosAllAttemptsFailFallsBackToCPU drives a single device whose
// every operation fails: both GPU attempts of each batch fail, the
// batch re-runs on the host, and results stay exact.
func TestChaosAllAttemptsFailFallsBackToCPU(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 73)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPlan(&gpu.FaultPlan{Seed: 3, CopyFailProb: 1})

	verifyEngine(t, e, db, db.makeQueries(500, 74), true)

	st := e.Stats()
	if st.CPUFallbacks == 0 {
		t.Fatal("no CPU fallbacks despite a fully failing device")
	}
	if st.DeviceQuarantines == 0 {
		t.Fatal("fully failing device was never quarantined")
	}
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
}

// TestQuarantineRecoveryProbe checks the full circuit-breaker cycle:
// repeated failures quarantine the device, a probe after the backoff
// fails while the fault persists, and once the fault clears a probe
// succeeds and returns the device to rotation.
func TestQuarantineRecoveryProbe(t *testing.T) {
	db := makeTestDB(500, 5, 2, 75)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 1000, BatchSize: 16, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	queries := db.makeQueries(40, 76)

	dev.SetFaultPlan(&gpu.FaultPlan{Seed: 4, CopyFailProb: 1})
	for _, q := range queries[:10] {
		if _, err := e.MatchSignature(q, false); err != nil {
			t.Fatal(err)
		}
	}
	if !e.DeviceQuarantined(0) {
		t.Fatal("device not quarantined after consecutive failures")
	}
	if e.Stats().DeviceQuarantines != 1 {
		t.Fatalf("DeviceQuarantines = %d, want 1", e.Stats().DeviceQuarantines)
	}

	// Heal the device and keep submitting until a recovery probe lands.
	// Failed probes before the heal may have grown the backoff, so poll
	// with a generous deadline; results must be correct throughout.
	dev.SetFaultPlan(nil)
	deadline := time.Now().Add(10 * time.Second)
	for e.DeviceQuarantined(0) {
		if time.Now().After(deadline) {
			t.Fatal("device still quarantined after heal + probes")
		}
		if _, err := e.MatchSignature(queries[0], false); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := e.Stats()
	if st.RecoveryProbes == 0 {
		t.Fatal("no recovery probes recorded")
	}
	if st.DeviceRecoveries != 1 {
		t.Fatalf("DeviceRecoveries = %d, want 1", st.DeviceRecoveries)
	}

	// The recovered device serves traffic again: kernel launches grow.
	before := dev.Stats().KernelLaunches
	verifyEngine(t, e, db, queries, false)
	if dev.Stats().KernelLaunches <= before {
		t.Fatal("recovered device served no kernels")
	}
}

// TestConsolidateOOMDegradesToCPU checks the degradation path of the
// offline stage: a device too small for the tagset table makes
// Consolidate return a typed, wrapped error while installing a CPU-only
// index that answers queries correctly.
func TestConsolidateOOMDegradesToCPU(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 77)
	dev := gpu.New(gpu.Config{Workers: 2, GlobalMemBytes: 4096})
	t.Cleanup(dev.Close)
	e, err := New(Config{
		MaxPartitionSize: 500, BatchSize: 32, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)

	err = e.Consolidate()
	if err == nil {
		t.Fatal("Consolidate succeeded on a 4KiB device")
	}
	if !errors.Is(err, ErrDeviceDegraded) {
		t.Fatalf("error %v does not wrap ErrDeviceDegraded", err)
	}
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("error %v does not wrap gpu.ErrOutOfMemory", err)
	}

	// The engine is degraded but fully usable: every query answered on
	// the host, no device memory in use.
	verifyEngine(t, e, db, db.makeQueries(200, 78), false)
	st := e.Stats()
	if st.UniqueSets == 0 {
		t.Fatal("degraded index lost the database")
	}
	if len(st.DeviceBytes) != 0 {
		t.Fatalf("degraded index still holds device memory: %v", st.DeviceBytes)
	}
	if dev.MemInUse() != 0 {
		t.Fatalf("device memory leaked on degrade: %d bytes", dev.MemInUse())
	}
}
