package core

import (
	"fmt"
	"sort"
	"testing"
	"unsafe"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

func TestSlicedGroupBytesMatchesLayout(t *testing.T) {
	// hostBytes and the device-memory accounting both assume this
	// constant; keep it locked to the real struct layout.
	if got := int64(unsafe.Sizeof(bitvec.SlicedGroup{})); got != slicedGroupBytes {
		t.Fatalf("unsafe.Sizeof(SlicedGroup) = %d, slicedGroupBytes = %d", got, slicedGroupBytes)
	}
}

func TestSlicedGrid(t *testing.T) {
	for _, tc := range []struct {
		nGroups, blockDim, blocks, dim int
	}{
		{1, 256, 1, 4},
		{5, 256, 2, 4},
		{5, 64, 5, 1},
		{5, 1, 5, 1},   // blockDim < 64 degrades to one group per block
		{7, 129, 4, 2}, // gpb truncates: 129/64 = 2
		{0, 256, 0, 4},
	} {
		g := slicedGrid(tc.nGroups, tc.blockDim)
		if g.Blocks != tc.blocks || g.BlockDim != tc.dim {
			t.Fatalf("slicedGrid(%d, %d) = %+v, want {%d %d}",
				tc.nGroups, tc.blockDim, g, tc.blocks, tc.dim)
		}
		// Every group must be covered exactly once.
		if g.Blocks*g.BlockDim < tc.nGroups {
			t.Fatalf("slicedGrid(%d, %d) covers only %d groups",
				tc.nGroups, tc.blockDim, g.Blocks*g.BlockDim)
		}
	}
}

// runSlicedGPUKernel is the sliced counterpart of runGPUKernel: it
// transposes the sets into lane groups, uploads them, and runs
// slicedMatchKernelAt over one batch.
func runSlicedGPUKernel(t *testing.T, sets, queries []bitvec.Vector, maxPairs, blockDim int, gate bool, kc *obs.KernelCounters) ([]pair, bool) {
	t.Helper()
	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	s, err := dev.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	groups := bitvec.BuildSlicedGroups(sets)
	groupsBuf := gpu.MustAlloc[bitvec.SlicedGroup](dev, max(1, len(groups)))
	qbuf := gpu.MustAlloc[bitvec.Vector](dev, max(1, len(queries)))
	hdr := gpu.MustAlloc[uint32](dev, resHeaderWords)
	pairsBuf := gpu.MustAlloc[byte](dev, pairBufBytes(maxPairs))
	defer groupsBuf.Free()
	defer qbuf.Free()
	defer hdr.Free()
	defer pairsBuf.Free()

	if len(groups) > 0 {
		if err := groupsBuf.CopyToDevice(0, groups); err != nil {
			t.Fatal(err)
		}
	}
	gpu.CopyToDeviceAsync(s, hdr, 0, []uint32{0, 0})
	if len(queries) > 0 {
		gpu.CopyToDeviceAsync(s, qbuf, 0, queries)
	}
	s.LaunchAsync(slicedGrid(len(groups), blockDim),
		slicedMatchKernelAt(groupsBuf, 0, len(groups), 0, querySrc{direct: qbuf, n: len(queries)}, hdr, pairsBuf, maxPairs, gate, nil, kc))
	hdrHost := make([]uint32, resHeaderWords)
	gpu.CopyFromDeviceAsync(s, hdr, hdrHost, 0)
	s.Synchronize()

	count, overflow := clampCount(hdrHost[0], hdrHost[1], maxPairs)
	if overflow {
		return nil, true
	}
	packed := make([]byte, pairBufBytes(count))
	if count > 0 {
		if err := pairsBuf.CopyFromDevice(packed, 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []pair
	decodePacked(packed, count, func(q uint8, sid uint32) { got = append(got, pair{q, sid}) })
	sortPairs(got)
	return got, false
}

func TestSlicedKernelMatchesBruteForce(t *testing.T) {
	sets, queries := batchFixture(3000, 64, 21)
	want := bruteForcePairs(sets, 0, queries)
	if len(want) == 0 {
		t.Fatal("fixture produced no matches; test is vacuous")
	}
	for _, gate := range []bool{true, false} {
		var kc obs.KernelCounters
		got, overflow := runSlicedGPUKernel(t, sets, queries, 100000, 256, gate, &kc)
		if overflow {
			t.Fatal("unexpected overflow")
		}
		if len(got) != len(want) {
			t.Fatalf("gate=%v: %d pairs, want %d", gate, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gate=%v: pair %d = %+v, want %+v", gate, i, got[i], want[i])
			}
		}
		if kc.GroupScans.Load() == 0 || kc.ColumnsWalked.Load() == 0 {
			t.Fatalf("gate=%v: telemetry not recorded: %+v", gate, kc.Snapshot())
		}
		if gate && kc.GateChecks.Load() == 0 {
			t.Fatal("gate enabled but no gate checks recorded")
		}
		if !gate && kc.GateChecks.Load() != 0 {
			t.Fatal("gate disabled but gate checks recorded")
		}
	}
}

func TestSlicedKernelOddBlockDims(t *testing.T) {
	// Sets deliberately not a multiple of 64, so the last group has
	// invalid lanes; those must never emit.
	sets, queries := batchFixture(777, 31, 22)
	want := bruteForcePairs(sets, 0, queries)
	for _, bd := range []int{1, 7, 64, 129, 256, 1024} {
		got, overflow := runSlicedGPUKernel(t, sets, queries, 100000, bd, true, nil)
		if overflow {
			t.Fatalf("blockDim=%d overflow", bd)
		}
		if len(got) != len(want) {
			t.Fatalf("blockDim=%d: %d pairs, want %d", bd, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("blockDim=%d: pair %d mismatch", bd, i)
			}
		}
	}
}

func TestSlicedKernelOverflow(t *testing.T) {
	sets, queries := batchFixture(2000, 64, 23)
	if len(bruteForcePairs(sets, 0, queries)) < 5 {
		t.Skip("fixture too selective")
	}
	_, overflow := runSlicedGPUKernel(t, sets, queries, 2, 256, true, nil)
	if !overflow {
		t.Fatal("expected overflow with maxPairs=2")
	}
}

func TestSlicedKernelEmptyBatch(t *testing.T) {
	sets, _ := batchFixture(500, 1, 26)
	got, overflow := runSlicedGPUKernel(t, sets, nil, 16, 256, true, nil)
	if overflow || len(got) != 0 {
		t.Fatalf("empty batch emitted %d pairs (overflow=%v)", len(got), overflow)
	}
	// And an empty partition against a non-empty batch.
	got, overflow = runSlicedGPUKernel(t, nil, []bitvec.Vector{bitvec.FromOnes(1)}, 16, 256, true, nil)
	if overflow || len(got) != 0 {
		t.Fatalf("empty partition emitted %d pairs (overflow=%v)", len(got), overflow)
	}
}

func TestSlicedSplitKernelMatchesPacked(t *testing.T) {
	sets, queries := batchFixture(1500, 32, 25)
	want := bruteForcePairs(sets, 0, queries)

	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	s, _ := dev.OpenStream()
	defer s.Close()

	const maxPairs = 100000
	groups := bitvec.BuildSlicedGroups(sets)
	groupsBuf := gpu.MustAlloc[bitvec.SlicedGroup](dev, len(groups))
	qbuf := gpu.MustAlloc[bitvec.Vector](dev, len(queries))
	outQ := gpu.MustAlloc[uint32](dev, splitHeaderWords+maxPairs)
	outS := gpu.MustAlloc[uint32](dev, maxPairs)
	defer func() { groupsBuf.Free(); qbuf.Free(); outQ.Free(); outS.Free() }()

	if err := groupsBuf.CopyToDevice(0, groups); err != nil {
		t.Fatal(err)
	}
	gpu.CopyToDeviceAsync(s, outQ, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(s, qbuf, 0, queries)
	s.LaunchAsync(slicedGrid(len(groups), 256),
		slicedSplitMatchKernelAt(groupsBuf, 0, len(groups), 0, querySrc{direct: qbuf, n: len(queries)}, outQ, outS, maxPairs, true, nil, nil))
	hdrHost := make([]uint32, splitHeaderWords)
	gpu.CopyFromDeviceAsync(s, outQ, hdrHost, 0)
	s.Synchronize()

	count, overflow := clampCount(hdrHost[0], hdrHost[1], maxPairs)
	if overflow {
		t.Fatal("unexpected overflow")
	}
	qs := make([]uint32, count)
	ss := make([]uint32, count)
	if err := outQ.CopyFromDevice(qs, splitHeaderWords); err != nil {
		t.Fatal(err)
	}
	if err := outS.CopyFromDevice(ss, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]pair, count)
	for i := range got {
		got[i] = pair{uint8(qs[i]), ss[i]}
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCPUMatchBatchSlicedMatchesScalar(t *testing.T) {
	sets, queries := batchFixture(2500, 48, 24)
	want := bruteForcePairs(sets, 1000, queries)
	groups := bitvec.BuildSlicedGroups(sets)
	for _, gate := range []bool{true, false} {
		var got []pair
		cpuMatchBatchSliced(groups, 1000, queries, gate, nil, nil, func(q uint8, s uint32) {
			got = append(got, pair{q, s})
		})
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("gate=%v: %d pairs, want %d", gate, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gate=%v: pair %d mismatch", gate, i)
			}
		}
	}
}

// TestEngineScalarKernelAblation runs the same workload through a
// sliced-kernel engine and a Config.ScalarKernel engine (both on GPU)
// and requires identical answers plus correctly attributed flavor
// counters.
func TestEngineScalarKernelAblation(t *testing.T) {
	sets, queries := sharedVocabWorkload(8000, 80, 71)
	keyOf := func(i int) Key { return Key(i + 1) }

	build := func(scalar bool) *Engine {
		dev := newTestGPU(t, 4)
		e, err := New(Config{
			MaxPartitionSize: 400, BatchSize: 32, Threads: 2, ScalarKernel: scalar,
			Devices: []*gpu.Device{dev}, StreamsPerDevice: 2, Replicate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		for i, s := range sets {
			e.AddSet(s, keyOf(i))
		}
		if err := e.Consolidate(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	sliced := build(false)
	scalar := build(true)
	for _, q := range queries {
		a, err := sliced.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scalar.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("flavor mismatch for query %s: sliced %d keys, scalar %d keys", q, len(a), len(b))
		}
	}

	ss, cs := sliced.Stats(), scalar.Stats()
	if ss.KernelSliced == 0 || ss.KernelScalar != 0 {
		t.Fatalf("sliced engine counters: sliced=%d scalar=%d", ss.KernelSliced, ss.KernelScalar)
	}
	if cs.KernelScalar == 0 || cs.KernelSliced != 0 {
		t.Fatalf("scalar engine counters: sliced=%d scalar=%d", cs.KernelSliced, cs.KernelScalar)
	}
	if ss.KernelGateChecks == 0 || ss.KernelColumnsWalked == 0 {
		t.Fatalf("sliced engine recorded no kernel telemetry: %+v", ss)
	}
	// The ablation engine must not pay for the transposed mirror.
	if cs.KernelGateChecks != 0 || cs.KernelColumnsWalked != 0 {
		t.Fatalf("scalar engine recorded sliced telemetry: %+v", cs)
	}
}

// TestEngineMasklessPartitionSliced covers the degenerate all-zero
// signature: it lands in a maskless partition whose group gate is the
// zero vector (passes every query), and must match everything.
func TestEngineMasklessPartitionSliced(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		e, err := New(Config{MaxPartitionSize: 64, BatchSize: 8, Threads: 1, ScalarKernel: scalar})
		if err != nil {
			t.Fatal(err)
		}
		e.AddSignature(bitvec.Vector{}, 99) // empty signature → empty partition mask
		sigs := randomSets(200, 4, 31)
		for i, s := range sigs {
			e.AddSignature(s, Key(i+1))
		}
		if err := e.Consolidate(); err != nil {
			t.Fatal(err)
		}
		for qi, q := range randomSets(30, 9, 32) {
			got, err := e.MatchSignature(q, false)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, k := range got {
				if k == 99 {
					found = true
				}
			}
			if !found {
				t.Fatalf("scalar=%v query %d: empty set missing from %d keys", scalar, qi, len(got))
			}
			// Cross-check the full answer against brute force.
			want := map[Key]bool{99: true}
			for i, s := range sigs {
				if s.SubsetOf(q) {
					want[Key(i+1)] = true
				}
			}
			gotSet := map[Key]bool{}
			for _, k := range got {
				gotSet[k] = true
			}
			if len(gotSet) != len(want) {
				t.Fatalf("scalar=%v query %d: %d keys, want %d", scalar, qi, len(gotSet), len(want))
			}
			for k := range want {
				if !gotSet[k] {
					t.Fatalf("scalar=%v query %d: key %d missing", scalar, qi, k)
				}
			}
		}
		e.Close()
	}
}

func TestKernelBenchmarkSmoke(t *testing.T) {
	sigs := randomSets(4000, 5, 41)
	queries := make([]bitvec.Vector, 200)
	for i := range queries {
		queries[i] = sigs[(i*13)%len(sigs)].Or(randomSets(1, 4, int64(i)+500)[0])
	}
	res := KernelBenchmark(sigs, 500, queries, 64, 256, 1, 4)
	if !res.Parity {
		t.Fatal("sliced and scalar kernels disagree with brute force")
	}
	if res.Partitions == 0 || res.Batches == 0 {
		t.Fatalf("benchmark ran no work: %+v", res)
	}
	if res.ScalarNs <= 0 || res.SlicedNs <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.GateChecks == 0 || res.GroupScans == 0 || res.ColumnsWalked == 0 {
		t.Fatalf("telemetry not recorded: %+v", res)
	}
	// The header reset is fused into the launch: exactly the one query
	// upload per batch, never a separate reset copy.
	if res.H2DCopiesPerBatch != 1 {
		t.Fatalf("H2D copies per batch = %v, want exactly 1 (fused header reset)", res.H2DCopiesPerBatch)
	}
}

func TestKernelBenchmarkEmptyInputs(t *testing.T) {
	res := KernelBenchmark(nil, 500, randomSets(5, 3, 42), 64, 256, 1, 2)
	if !res.Parity {
		t.Fatal("empty database must report parity")
	}
	res = KernelBenchmark(randomSets(100, 3, 43), 500, nil, 64, 256, 1, 2)
	if !res.Parity {
		t.Fatal("empty query set must report parity")
	}
}

// FuzzSlicedMatch differentially fuzzes the bit-sliced host matcher
// against the scalar one: identical pair multisets for any database and
// batch, with and without the group gate.
func FuzzSlicedMatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 9, 9, 9, 200, 201}, []byte{1, 2, 3, 9}, true)
	f.Add([]byte{}, []byte{7}, false)
	f.Add([]byte{0, 0, 0, 0}, []byte{}, true)
	f.Fuzz(func(t *testing.T, setBytes, qBytes []byte, gate bool) {
		var sets []bitvec.Vector
		for i := 0; i < len(setBytes) && len(sets) < 400; i += 3 {
			var v bitvec.Vector
			for _, x := range setBytes[i:min(i+3, len(setBytes))] {
				v.Set(int(x) % bitvec.W)
			}
			sets = append(sets, v)
		}
		var queries []bitvec.Vector
		for i := 0; i < len(qBytes) && len(queries) < maxBatchSize; i += 6 {
			var v bitvec.Vector
			for _, x := range qBytes[i:min(i+6, len(qBytes))] {
				v.Set(int(x) % bitvec.W)
			}
			queries = append(queries, v)
		}

		var scalar []pair
		cpuMatchBatch(sets, 7, queries, 256, gate, nil, nil, func(q uint8, s uint32) {
			scalar = append(scalar, pair{q, s})
		})
		var sliced []pair
		cpuMatchBatchSliced(bitvec.BuildSlicedGroups(sets), 7, queries, gate, nil, nil, func(q uint8, s uint32) {
			sliced = append(sliced, pair{q, s})
		})
		sortPairs(scalar)
		sortPairs(sliced)
		if len(scalar) != len(sliced) {
			t.Fatalf("gate=%v: scalar %d pairs, sliced %d", gate, len(scalar), len(sliced))
		}
		for i := range scalar {
			if scalar[i] != sliced[i] {
				t.Fatalf("gate=%v: pair %d: scalar %+v, sliced %+v", gate, i, scalar[i], sliced[i])
			}
		}
	})
}
