package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tagmatch/internal/bitvec"
)

func randomSets(n, tagsPerSet int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bitvec.Vector, n)
	seen := make(map[bitvec.Vector]bool, n)
	for i := 0; i < n; {
		var v bitvec.Vector
		for j := 0; j < tagsPerSet*7; j++ { // ~7 bits per tag, like Bloom k=7
			v.Set(rng.Intn(bitvec.W))
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out[i] = v
		i++
	}
	return out
}

// checkPartitionInvariants verifies the Algorithm 1 postconditions:
// every input set appears in exactly one partition, and every member of a
// partition contains the partition's mask.
func checkPartitionInvariants(t *testing.T, sets []bitvec.Vector, specs []partitionSpec, maxP int) {
	t.Helper()
	seen := make([]int, len(sets))
	for pi, spec := range specs {
		if len(spec.members) == 0 {
			t.Fatalf("partition %d is empty", pi)
		}
		for _, m := range spec.members {
			seen[m]++
			if !spec.mask.SubsetOf(sets[m]) {
				t.Fatalf("partition %d: member %d does not contain mask", pi, m)
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("set %d appears in %d partitions, want 1", i, c)
		}
	}
	// Size bound: only violable when all 192 pivot bits were exhausted,
	// which cannot happen for these diverse random sets.
	for pi, spec := range specs {
		if len(spec.members) > maxP {
			t.Fatalf("partition %d has %d members > MAX_P %d", pi, len(spec.members), maxP)
		}
		if spec.mask.IsZero() {
			t.Fatalf("partition %d has empty mask", pi)
		}
	}
}

func TestBalancedPartitionInvariants(t *testing.T) {
	sets := randomSets(5000, 5, 1)
	const maxP = 200
	specs := balancedPartition(sets, maxP)
	checkPartitionInvariants(t, sets, specs, maxP)
	if len(specs) < 5000/maxP {
		t.Fatalf("only %d partitions; cannot cover %d sets with max %d", len(specs), 5000, maxP)
	}
}

func TestBalancedPartitionSmallInputs(t *testing.T) {
	if got := balancedPartition(nil, 100); got != nil {
		t.Fatal("empty database should produce no partitions")
	}
	one := []bitvec.Vector{bitvec.FromOnes(3, 77)}
	specs := balancedPartition(one, 100)
	if len(specs) != 1 || len(specs[0].members) != 1 {
		t.Fatalf("single set should form one partition: %+v", specs)
	}
	if specs[0].mask.IsZero() {
		t.Fatal("single-set partition must still acquire a non-empty mask")
	}
}

func TestBalancedPartitionMaxPOne(t *testing.T) {
	sets := randomSets(64, 4, 2)
	specs := balancedPartition(sets, 1)
	checkPartitionInvariants(t, sets, specs, 1)
	if len(specs) != 64 {
		t.Fatalf("with MAX_P=1, want 64 singleton partitions, got %d", len(specs))
	}
}

func TestBalancedPartitionBalance(t *testing.T) {
	// With pivot bits chosen at ~50% frequency, partitions should be
	// reasonably balanced: no partition should hold more than a tiny
	// fraction of the database when MAX_P is small.
	sets := randomSets(20000, 5, 3)
	const maxP = 500
	specs := balancedPartition(sets, maxP)
	largest := 0
	for _, s := range specs {
		if len(s.members) > largest {
			largest = len(s.members)
		}
	}
	if largest > maxP {
		t.Fatalf("largest partition %d exceeds MAX_P %d", largest, maxP)
	}
	// Average fill should not be pathologically small either (balanced
	// splits roughly halve until under MAX_P).
	avg := float64(len(sets)) / float64(len(specs))
	if avg < float64(maxP)/20 {
		t.Fatalf("average partition fill %.1f suspiciously small (specs=%d)", avg, len(specs))
	}
}

func TestBalancedPartitionNearDuplicateSets(t *testing.T) {
	// Sets sharing almost all bits: the partitioner must terminate and
	// cover everything even when most pivots split unevenly.
	base := bitvec.FromOnes(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	sets := make([]bitvec.Vector, 100)
	for i := range sets {
		v := base
		v.Set(20 + i)
		sets[i] = v
	}
	specs := balancedPartition(sets, 10)
	checkPartitionInvariants(t, sets, specs, 100 /* allow loose bound */)
	total := 0
	for _, s := range specs {
		total += len(s.members)
	}
	if total != 100 {
		t.Fatalf("covered %d sets, want 100", total)
	}
}

func TestBalancedPartitionIdenticalPathology(t *testing.T) {
	// Two distinct vectors, one the subset of the other, MAX_P=1: the
	// algorithm must terminate (used bits grow monotonically) and cover
	// both.
	a := bitvec.FromOnes(5)
	b := bitvec.FromOnes(5, 9)
	specs := balancedPartition([]bitvec.Vector{a, b}, 1)
	total := 0
	for _, s := range specs {
		total += len(s.members)
	}
	if total != 2 {
		t.Fatalf("covered %d, want 2 (specs=%v)", total, specs)
	}
}

func TestPickPivotPrefersBalanced(t *testing.T) {
	// Bit 10 set in half the sets, bit 20 in all, bit 30 in none.
	sets := make([]bitvec.Vector, 10)
	for i := range sets {
		sets[i].Set(20)
		if i < 5 {
			sets[i].Set(10)
		}
	}
	members := make([]int32, len(sets))
	for i := range members {
		members[i] = int32(i)
	}
	var used bitvec.Vector
	if got := pickPivot(sets, members, used); got != 10 {
		t.Fatalf("pivot = %d, want 10 (the 50%% bit)", got)
	}
	used.Set(10)
	// With bit 10 used, remaining candidates are all 0%/100% bits; the
	// fallback must still return an unused bit.
	got := pickPivot(sets, members, used)
	if got < 0 || used.Test(got) {
		t.Fatalf("fallback pivot = %d", got)
	}
}

func TestPickPivotExhausted(t *testing.T) {
	sets := []bitvec.Vector{bitvec.FromOnes(0)}
	members := []int32{0}
	var used bitvec.Vector
	for i := 0; i < bitvec.W; i++ {
		used.Set(i)
	}
	if got := pickPivot(sets, members, used); got != -1 {
		t.Fatalf("pivot = %d with all bits used, want -1", got)
	}
}

func TestSortMembersLexicographically(t *testing.T) {
	sets := randomSets(200, 5, 4)
	members := make([]int32, len(sets))
	for i := range members {
		members[i] = int32(i)
	}
	sortMembersLexicographically(sets, members)
	for i := 1; i < len(members); i++ {
		if bitvec.Less(sets[members[i]], sets[members[i-1]]) {
			t.Fatalf("members not sorted at %d", i)
		}
	}
}

// Property: partitioning is a partition in the mathematical sense for
// arbitrary (deduplicated) inputs and arbitrary small MAX_P.
func TestQuickPartitionCovers(t *testing.T) {
	f := func(raw []bitvec.Vector, maxP uint8) bool {
		seen := map[bitvec.Vector]bool{}
		var sets []bitvec.Vector
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				sets = append(sets, v)
			}
		}
		specs := balancedPartition(sets, int(maxP%32)+1)
		count := make([]int, len(sets))
		for _, s := range specs {
			for _, m := range s.members {
				if !s.mask.SubsetOf(sets[m]) {
					return false
				}
				count[m]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBalancedPartition100K(b *testing.B) {
	sets := randomSets(100000, 5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balancedPartition(sets, 1000)
	}
}

func TestFirstFitPartitionCovers(t *testing.T) {
	sets := randomSets(3000, 5, 5)
	specs := firstFitPartition(sets, 250)
	seen := make([]int, len(sets))
	for _, s := range specs {
		if len(s.members) > 250 {
			t.Fatalf("chunk size %d > 250", len(s.members))
		}
		for _, m := range s.members {
			seen[m]++
			if !s.mask.SubsetOf(sets[m]) {
				t.Fatal("first-fit mask not contained in member")
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("set %d covered %d times", i, c)
		}
	}
	if firstFitPartition(nil, 10) != nil {
		t.Fatal("empty input should yield no partitions")
	}
}
