package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// deltaEngineVariants returns the kernel-flavor × device matrix the
// live-update contract is pinned on: CPU fallback, GPU bit-sliced, and
// GPU scalar. The acceptance criterion requires add/remove visibility to
// hold on all three.
func deltaEngineVariants(t *testing.T, base Config) map[string]*Engine {
	t.Helper()
	variants := map[string]struct {
		gpus   int
		scalar bool
	}{
		"cpu":        {0, false},
		"gpu-sliced": {2, false},
		"gpu-scalar": {2, true},
	}
	out := make(map[string]*Engine, len(variants))
	for name, v := range variants {
		cfg := base
		cfg.ScalarKernel = v.scalar
		for i := 0; i < v.gpus; i++ {
			cfg.Devices = append(cfg.Devices, newTestGPU(t, 2))
		}
		if v.gpus > 0 {
			cfg.StreamsPerDevice = 2
			cfg.Replicate = true
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		out[name] = e
	}
	return out
}

// TestDeltaVisibility pins the headline live-update contract on every
// kernel flavor: an AddSignature is matchable immediately — no
// Consolidate — and a RemoveSignature disappears immediately from both
// Match and MatchUnique; an add followed by a remove never surfaces; and
// consolidating afterward changes no answer.
func TestDeltaVisibility(t *testing.T) {
	db := makeTestDB(800, 5, 2, 151)
	for name, e := range deltaEngineVariants(t, Config{
		MaxPartitionSize: 100, BatchSize: 16, Threads: 2,
	}) {
		t.Run(name, func(t *testing.T) {
			db.load(e)
			if err := e.Consolidate(); err != nil {
				t.Fatal(err)
			}

			// A brand-new signature, disjoint from the generator's tag
			// universe, staged but not consolidated.
			fresh := randomSets(1, 6, 9000)[0]
			probe := fresh.Or(randomSets(1, 3, 9001)[0])
			e.AddSignature(fresh, 777)
			got, err := e.MatchSignature(probe, false)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != "[777]" {
				t.Fatalf("staged add not visible: %v, want [777]", got)
			}
			if e.Stats().DeltaMatches == 0 {
				t.Fatal("overlay matched but DeltaMatches counter is zero")
			}

			// Removing a main-index entry tombstones it out of Match and
			// MatchUnique immediately.
			victimSig, victimKeys := db.sigs[3], db.keys[3]
			e.RemoveSignature(victimSig, victimKeys[0])
			q := victimSig.Or(randomSets(1, 2, 9002)[0])
			want := db.expected(q, false)
			want = deleteFirstKey(want, victimKeys[0])
			got, err = e.MatchSignature(q, false)
			if err != nil {
				t.Fatal(err)
			}
			sortKeysSlice(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("tombstoned key still visible: got %v want %v", got, want)
			}
			if len(victimKeys) == 1 {
				gotU, err := e.MatchSignature(q, true)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range gotU {
					if k == victimKeys[0] {
						t.Fatalf("tombstoned key %d still in unique answer", k)
					}
				}
			}

			// Exactly-once: an add immediately cancelled by a remove must
			// never surface, before or after consolidation.
			ghost := randomSets(1, 6, 9003)[0]
			e.AddSignature(ghost, 888)
			e.RemoveSignature(ghost, 888)
			if got, _ := e.MatchSignature(ghost, false); len(got) != 0 {
				t.Fatalf("cancelled add surfaced: %v", got)
			}

			// Re-adding the removed key through the overlay restores it.
			e.AddSignature(victimSig, victimKeys[0])
			got, _ = e.MatchSignature(q, false)
			sortKeysSlice(got)
			wantBack := db.expected(q, false)
			if fmt.Sprint(got) != fmt.Sprint(wantBack) {
				t.Fatalf("re-added key missing: got %v want %v", got, wantBack)
			}

			// Consolidating folds the overlay into the main index with
			// byte-identical answers.
			if err := e.Consolidate(); err != nil {
				t.Fatal(err)
			}
			if e.PendingOps() != 0 {
				t.Fatalf("PendingOps = %d after consolidate", e.PendingOps())
			}
			got, _ = e.MatchSignature(probe, false)
			if fmt.Sprint(got) != "[777]" {
				t.Fatalf("consolidated add lost: %v", got)
			}
			got, _ = e.MatchSignature(q, false)
			sortKeysSlice(got)
			if fmt.Sprint(got) != fmt.Sprint(wantBack) {
				t.Fatalf("post-consolidate divergence: got %v want %v", got, wantBack)
			}
			if got, _ := e.MatchSignature(ghost, false); len(got) != 0 {
				t.Fatalf("cancelled add surfaced after consolidate: %v", got)
			}
		})
	}
}

func deleteFirstKey(ks []Key, k Key) []Key {
	for i := range ks {
		if ks[i] == k {
			return append(ks[:i:i], ks[i+1:]...)
		}
	}
	return ks
}

// TestDeltaExactVerify checks that overlay matches respect exact tag
// verification: a staged add whose signature collides with a query must
// still be filtered by string comparison.
func TestDeltaExactVerify(t *testing.T) {
	e, err := New(Config{Threads: 1, ExactVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"a", "b"}, 1)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	e.AddSet([]string{"a", "c"}, 2) // staged only

	got, err := e.Match([]string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2]" {
		t.Fatalf("exact overlay match = %v, want [2]", got)
	}
	// A query that covers neither set exactly returns nothing even if
	// signatures would pass the Bloom test.
	if got, _ := e.Match([]string{"a"}); len(got) != 0 {
		t.Fatalf("partial query matched staged set: %v", got)
	}
	// Tombstone with exact tags.
	e.RemoveSet([]string{"a", "b"}, 1)
	if got, _ := e.Match([]string{"a", "b"}); len(got) != 0 {
		t.Fatalf("tombstoned exact set still visible: %v", got)
	}
}

// TestDeltaTombstoneMultiset pins multiset semantics: when the same
// (signature, key) association exists twice in the main index, one
// remove suppresses exactly one copy, and a second remove suppresses the
// other.
func TestDeltaTombstoneMultiset(t *testing.T) {
	e, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.AddSet([]string{"m"}, 5)
	e.AddSet([]string{"m"}, 5)
	e.AddSet([]string{"m"}, 6)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	e.RemoveSet([]string{"m"}, 5)
	got, _ := e.Match([]string{"m"})
	sortKeysSlice(got)
	if fmt.Sprint(got) != "[5 6]" {
		t.Fatalf("after one remove: %v, want [5 6]", got)
	}
	gotU, _ := e.MatchUnique([]string{"m"})
	sortKeysSlice(gotU)
	if fmt.Sprint(gotU) != "[5 6]" {
		t.Fatalf("unique after one remove: %v, want [5 6]", gotU)
	}
	if e.Stats().TombstoneSuppressed == 0 {
		t.Fatal("no tombstone suppressions recorded")
	}

	e.RemoveSet([]string{"m"}, 5)
	got, _ = e.Match([]string{"m"})
	if fmt.Sprint(got) != "[6]" {
		t.Fatalf("after two removes: %v, want [6]", got)
	}

	// Consolidation agrees.
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, _ = e.Match([]string{"m"})
	if fmt.Sprint(got) != "[6]" {
		t.Fatalf("after consolidate: %v, want [6]", got)
	}
}

// TestDeltaBackgroundConsolidate forces the auto-consolidation
// threshold low and verifies the background goroutine folds the overlay
// into the main index without any explicit Consolidate call: pending ops
// drain to zero, the auto-consolidation counter advances, and every key
// stays matchable throughout.
func TestDeltaBackgroundConsolidate(t *testing.T) {
	e, err := New(Config{
		MaxPartitionSize: 50, BatchSize: 16, Threads: 2,
		DeltaMaxSets: 16, DeltaMaxRatio: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	db := makeTestDB(400, 5, 1, 157)
	for i, sig := range db.sigs {
		e.AddSignature(sig, db.keys[i][0])
		if i%37 == 0 {
			// Interleave queries with staging; answers must always cover
			// what has been added so far.
			q := db.sigs[i].Or(randomSets(1, 2, int64(9100+i))[0])
			got, err := e.MatchSignature(q, false)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, k := range got {
				if k == db.keys[i][0] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("key %d staged at op %d not matchable", db.keys[i][0], i)
			}
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		st := e.Stats()
		if st.AutoConsolidations >= 1 && e.PendingOps() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background consolidator never drained: %d auto-consolidations, %d pending",
				st.AutoConsolidations, e.PendingOps())
		}
		time.Sleep(5 * time.Millisecond)
	}

	verifyEngine(t, e, db, db.makeQueries(200, 158), false)
	if st := e.Stats(); st.LastSwapPause <= 0 {
		t.Fatalf("LastSwapPause = %v, want > 0", st.LastSwapPause)
	}
}

// TestDeltaIncrementalFold drives sustained add/remove churn through
// many background folds and pins the incremental Phase B path: folds of
// a small delta must take the O(delta) splice (IncrementalFolds
// advances), fully-removed sets (dud rows), re-added signatures
// (duplicate rows), and appended delta partitions must all keep exact
// signature-level answers, and a final synchronous Consolidate — the
// full-rebuild path that resets the drift — must not change any answer.
// The device variants additionally pin the Phase C adoption path: the
// swapped-in index serves appended partitions from extent buffers on
// carried-over device state, in both placement modes.
func TestDeltaIncrementalFold(t *testing.T) {
	t.Run("cpu", func(t *testing.T) { testDeltaIncrementalFold(t, Config{}) })
	t.Run("gpu-partitioned", func(t *testing.T) {
		testDeltaIncrementalFold(t, Config{
			Devices: []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}, StreamsPerDevice: 2,
		})
	})
	t.Run("gpu-replicated", func(t *testing.T) {
		testDeltaIncrementalFold(t, Config{
			Devices: []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}, StreamsPerDevice: 2,
			Replicate: true,
		})
	})
}

func testDeltaIncrementalFold(t *testing.T, cfg Config) {
	cfg.MaxPartitionSize, cfg.BatchSize, cfg.Threads = 50, 16, 2
	cfg.DeltaMaxSets, cfg.DeltaMaxRatio = 24, 1e-9
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	db := makeTestDB(600, 5, 2, 163)
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// Signature-level model of what the engine should serve.
	model := make(map[bitvec.Vector][]Key, len(db.sigs))
	for i, sig := range db.sigs {
		model[sig] = append(model[sig], db.keys[i]...)
	}
	expect := func(q bitvec.Vector) []Key {
		var out []Key
		for sig, ks := range model {
			if sig.SubsetOf(q) {
				out = append(out, ks...)
			}
		}
		sortKeysSlice(out)
		return out
	}
	probe := func(step int) {
		t.Helper()
		q := db.sigs[step%len(db.sigs)].Or(randomSets(1, 2, int64(9300+step))[0])
		got, err := e.MatchSignature(q, false)
		if err != nil {
			t.Fatal(err)
		}
		sortKeysSlice(got)
		if want := expect(q); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: got %v want %v", step, got, want)
		}
	}

	rng := rand.New(rand.NewSource(164))
	var emptied []bitvec.Vector
	next := Key(1_000_000)
	for step := 0; step < 500; step++ {
		switch {
		case rng.Float64() < 0.15:
			// Empty a whole set: its row becomes a dud after the fold.
			sig := db.sigs[rng.Intn(len(db.sigs))]
			for _, k := range model[sig] {
				e.RemoveSignature(sig, k)
			}
			delete(model, sig)
			emptied = append(emptied, sig)
		case len(emptied) > 0 && rng.Float64() < 0.2:
			// Re-add an emptied signature: a fresh row joins a delta
			// partition while the dud row lingers.
			sig := emptied[len(emptied)-1]
			emptied = emptied[:len(emptied)-1]
			e.AddSignature(sig, next)
			model[sig] = append(model[sig], next)
			next++
		case rng.Float64() < 0.3:
			// Remove one association from a random live set.
			sig := db.sigs[rng.Intn(len(db.sigs))]
			if ks := model[sig]; len(ks) > 0 {
				e.RemoveSignature(sig, ks[0])
				if len(ks) == 1 {
					delete(model, sig)
				} else {
					model[sig] = ks[1:]
				}
			}
		default:
			sig := db.sigs[rng.Intn(len(db.sigs))]
			e.AddSignature(sig, next)
			model[sig] = append(model[sig], next)
			next++
		}
		if step%61 == 0 {
			probe(step)
		}
		// Pace the churn so each background fold sees a small cut — the
		// eligibility condition for the splice path (a fold of half the
		// database is rightly a full rebuild).
		if step%10 == 9 {
			for w := 0; w < 400 && e.PendingOps() > 60; w++ {
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Wait for the consolidator to catch up. A residue below the
	// threshold stays staged by design — the overlay serves it.
	deadline := time.Now().Add(20 * time.Second)
	for e.PendingOps() > 24 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := e.Stats()
	if st.IncrementalFolds < 1 {
		t.Fatalf("IncrementalFolds = %d, want >= 1 (splice path never exercised)", st.IncrementalFolds)
	}
	for step := 0; step < 50; step++ {
		probe(1000 + step)
	}

	// The full rebuild must agree with the spliced index it replaces.
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		probe(2000 + step)
	}
}

// FuzzDeltaMatch is the differential fuzz required by the live-update
// contract: a byte string drives an interleaved add/remove/match
// sequence against two engines — one answering straight through the
// delta overlay, the other consolidated before every match (the oracle).
// Sorted answers must be identical at every probe point.
func FuzzDeltaMatch(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x81, 0x12, 0x01})
	f.Add([]byte{0x00, 0x10, 0x90, 0x00, 0x10, 0xff, 0x42})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0x07, 0x86})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		live, err := New(Config{MaxPartitionSize: 8, BatchSize: 4, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer live.Close()
		oracle, err := New(Config{
			MaxPartitionSize: 8, BatchSize: 4, Threads: 1,
			DisableDeltaOverlay: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer oracle.Close()

		// A tiny tag universe (8 tags) and key space (8 keys) so random
		// bytes collide often enough to exercise multiset tombstones.
		tagOf := func(b byte) []string {
			var tags []string
			for i := 0; i < 8; i++ {
				if b&(1<<i) != 0 {
					tags = append(tags, fmt.Sprintf("t%d", i))
				}
			}
			if len(tags) == 0 {
				tags = []string{"t0"}
			}
			return tags
		}
		probe := func(b byte) {
			tags := tagOf(b | b>>1) // widen so subsets exist
			got, err := live.Match(tags)
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.Consolidate(); err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Match(tags)
			if err != nil {
				t.Fatal(err)
			}
			sortKeysSlice(got)
			sortKeysSlice(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("divergence on %v: overlay %v, oracle %v", tags, got, want)
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			key := Key(arg&0x07) + 1
			switch op % 4 {
			case 0, 1: // add (twice as likely as remove)
				live.AddSet(tagOf(arg), key)
				oracle.AddSet(tagOf(arg), key)
			case 2: // remove
				live.RemoveSet(tagOf(arg), key)
				oracle.RemoveSet(tagOf(arg), key)
			case 3: // match
				probe(arg)
			}
		}
		probe(0xff)
		// Final cross-check: consolidating the live engine must not change
		// its answers either.
		if err := live.Consolidate(); err != nil {
			t.Fatal(err)
		}
		probe(0xff)
	})
}

// TestChaosDeltaSwap crosses every moving part shipped so far: a churn
// goroutine streams adds and removes through the overlay while query
// workers run against two faulty devices with hedging enabled, and a
// deliberately low threshold forces repeated background consolidation
// swaps mid-flight. A stable core of the database is never touched by
// churn, so every answer must contain its keys; under -race this also
// proves the three-phase swap publishes the new index safely.
func TestChaosDeltaSwap(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 161)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 100, BatchSize: 32, Threads: 4,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
		HedgePolicy:       HedgePolicy{Mode: HedgeFixed, Budget: time.Millisecond},
		DeltaMaxSets:      32, DeltaMaxRatio: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	devs[0].SetFaultPlan(&gpu.FaultPlan{
		Seed: 31, CopyFailProb: 0.03, LaunchFailProb: 0.03,
		SlowProb: 0.02, SlowDelay: time.Millisecond,
	})

	stableSig, stableKeys := db.sigs[0], db.keys[0]
	stableQuery := stableSig.Or(randomSets(1, 2, 9200)[0])

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Churn worker: streams adds and removes of disposable associations,
	// keeping the overlay hot and repeatedly tripping the consolidation
	// threshold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(163))
		next := Key(1_000_000)
		type assoc struct {
			sig bitvec.Vector
			key Key
		}
		var livePool []assoc
		for !stop.Load() {
			if len(livePool) < 50 || rng.Intn(3) > 0 {
				sig := db.sigs[rng.Intn(len(db.sigs))]
				e.AddSignature(sig, next)
				livePool = append(livePool, assoc{sig, next})
				next++
			} else {
				i := rng.Intn(len(livePool))
				e.RemoveSignature(livePool[i].sig, livePool[i].key)
				livePool[i] = livePool[len(livePool)-1]
				livePool = livePool[:len(livePool)-1]
			}
		}
	}()

	// Query workers: the stable keys must be present in every single
	// answer regardless of swap timing, faults, hedges, or churn.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400 && !stop.Load(); i++ {
				got, err := e.MatchSignature(stableQuery, false)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				present := make(map[Key]bool, len(got))
				for _, k := range got {
					present[k] = true
				}
				for _, k := range stableKeys {
					if !present[k] {
						t.Errorf("worker %d query %d: stable key %d missing from %d-key answer",
							w, i, k, len(got))
						return
					}
				}
			}
		}(w)
	}

	// Let the system churn long enough for several background swaps.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().AutoConsolidations < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	st := e.Stats()
	if st.AutoConsolidations < 2 {
		t.Fatalf("AutoConsolidations = %d, want >= 2 (swaps never exercised)", st.AutoConsolidations)
	}
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d", st.QueriesSubmitted, st.QueriesCompleted)
	}

	// Quiesce and hold the final state to exact parity on the stable
	// portion after one last synchronous consolidation. Faults off
	// first: a still-armed 3% copy fault would occasionally degrade this
	// upload (legal — the engine stays correct CPU-only — but it is the
	// healthy swap we want to assert here).
	devs[0].SetFaultPlan(nil)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	got, err := e.MatchSignature(stableQuery, false)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[Key]bool, len(got))
	for _, k := range got {
		present[k] = true
	}
	for _, k := range stableKeys {
		if !present[k] {
			t.Fatalf("stable key %d missing after final consolidate", k)
		}
	}
}
