package core

import (
	"sort"
	"sync"
	"testing"

	"tagmatch/internal/bitvec"
)

// sortedPids normalizes a lookup result for order-insensitive comparison:
// the scalar scan emits bin order, the sliced scan emits group/lane
// order, and both orders are valid.
func sortedPids(pids []uint32) []uint32 {
	out := append([]uint32(nil), pids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkLookupsAgree(t *testing.T, pt *partitionTable, q bitvec.Vector) {
	t.Helper()
	ones := q.Ones(nil)
	scalar := sortedPids(pt.lookup(q, ones, nil))
	sliced := sortedPids(pt.lookupSliced(q, ones, nil))
	if len(scalar) != len(sliced) {
		t.Fatalf("query %s: scalar found %d pids, sliced %d\nscalar=%v\nsliced=%v",
			q.Hex(), len(scalar), len(sliced), scalar, sliced)
	}
	for i := range scalar {
		if scalar[i] != sliced[i] {
			t.Fatalf("query %s: pid sets differ at %d: scalar=%v sliced=%v",
				q.Hex(), i, scalar, sliced)
		}
	}
}

// TestSlicedLookupEquivalence is the differential property test of the
// tentpole: over random partition tables, the bit-sliced lookup must
// return exactly the same pid set as the retained scalar Algorithm 2
// scan, for every query.
func TestSlicedLookupEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name        string
		nSets, maxP int
		seed        int64
		tags, qtags int
		nQueries    int
	}{
		{"small", 500, 50, 41, 5, 8, 200},
		{"dense", 4000, 100, 43, 3, 14, 200},
		{"sparse", 2000, 40, 47, 9, 10, 200},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sets := randomSets(tc.nSets, tc.tags, tc.seed)
			specs := balancedPartition(sets, tc.maxP)
			parts := make([]partition, len(specs))
			for i, s := range specs {
				parts[i] = partition{mask: s.mask}
			}
			pt, _ := buildPartitionTable(parts)
			checkLookupsAgree(t, pt, bitvec.Vector{}) // empty query
			for _, q := range randomSets(tc.nQueries, tc.qtags, tc.seed+1) {
				checkLookupsAgree(t, pt, q)
			}
			// Query with every bit set matches every mask in both paths.
			all := bitvec.Vector{^uint64(0), ^uint64(0), ^uint64(0)}
			checkLookupsAgree(t, pt, all)
			if got := pt.lookupSliced(all, all.Ones(nil), nil); len(got) != pt.entries() {
				t.Fatalf("all-ones query hit %d of %d masks", len(got), pt.entries())
			}
		})
	}
}

// TestSlicedLookupMultiGroupBin forces a single bin past 64 entries so
// the lookup walks multiple LaneBlock groups, including a partial final
// group, each behind its intersection gate.
func TestSlicedLookupMultiGroupBin(t *testing.T) {
	const n = 200 // bin 0 gets all of them: 3 full groups + an 8-lane one
	masks := make([]bitvec.Vector, n)
	for i := range masks {
		// Leftmost bit fixed at 0 (same bin); vary the rest.
		masks[i] = bitvec.FromOnes(0, 1+(i%150), 40+(i%100))
	}
	pt, maskless := buildPartitionTable(buildParts(masks...))
	if len(maskless) != 0 {
		t.Fatalf("unexpected maskless: %v", maskless)
	}
	if got := len(pt.sliced[0].groups); got != (n+63)/64 {
		t.Fatalf("bin 0 groups = %d, want %d", got, (n+63)/64)
	}
	if got := len(pt.sliced[0].pids); got != n {
		t.Fatalf("bin 0 sliced pids = %d, want %d", got, n)
	}
	for _, q := range randomSets(300, 12, 59) {
		q.Set(0) // make bin 0 reachable for most queries
		checkLookupsAgree(t, pt, q)
	}
}

// TestSlicedLookupMasklessTable checks a degenerate table where some
// partitions have empty masks: those ids come back from
// buildPartitionTable, not from either lookup, and the lookups agree on
// the remainder.
func TestSlicedLookupMasklessTable(t *testing.T) {
	parts := buildParts(bitvec.Vector{}, bitvec.FromOnes(3), bitvec.Vector{}, bitvec.FromOnes(3, 7))
	pt, maskless := buildPartitionTable(parts)
	if len(maskless) != 2 || maskless[0] != 0 || maskless[1] != 2 {
		t.Fatalf("maskless = %v, want [0 2]", maskless)
	}
	for _, q := range []bitvec.Vector{{}, bitvec.FromOnes(3), bitvec.FromOnes(3, 7), bitvec.FromOnes(5)} {
		checkLookupsAgree(t, pt, q)
	}
}

// TestScalarRoutingAblation runs the full engine with Config.ScalarRouting
// and verifies answers against brute force, plus the flavor counters.
func TestScalarRoutingAblation(t *testing.T) {
	db := makeTestDB(2000, 5, 3, 61)
	for _, scalar := range []bool{false, true} {
		e, err := New(Config{MaxPartitionSize: 150, BatchSize: 64, Threads: 4, ScalarRouting: scalar})
		if err != nil {
			t.Fatal(err)
		}
		db.load(e)
		if err := e.Consolidate(); err != nil {
			t.Fatal(err)
		}
		queries := db.makeQueries(200, 62)
		verifyEngine(t, e, db, queries, false)
		st := e.Stats()
		if scalar {
			if st.RoutedScalar == 0 || st.RoutedSliced != 0 {
				t.Fatalf("scalar ablation: routed sliced=%d scalar=%d", st.RoutedSliced, st.RoutedScalar)
			}
		} else {
			if st.RoutedSliced == 0 || st.RoutedScalar != 0 {
				t.Fatalf("sliced default: routed sliced=%d scalar=%d", st.RoutedSliced, st.RoutedScalar)
			}
		}
		e.Close()
	}
}

// TestRouteMergeAccounting pins the worker-local accumulation protocol's
// bookkeeping: every routed (query, partition) append is merged exactly
// once (appends == partitions searched), and merging never takes more
// lock acquisitions than appends — per-append locking would make them
// equal, bursts make locks strictly fewer.
func TestRouteMergeAccounting(t *testing.T) {
	db := makeTestDB(3000, 5, 2, 67)
	e, err := New(Config{MaxPartitionSize: 200, BatchSize: 32, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	queries := db.makeQueries(2000, 68)
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		if err := e.SubmitSignature(q, false, func(MatchResult) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	wg.Wait()
	st := e.Stats()
	if st.RoutedSliced != int64(len(queries)) {
		t.Fatalf("routed %d queries, submitted %d", st.RoutedSliced, len(queries))
	}
	if st.RouteAppends != st.PartitionsSearched {
		t.Fatalf("appends %d != partitions searched %d (lost or duplicated appends)",
			st.RouteAppends, st.PartitionsSearched)
	}
	if st.RouteAppends > 0 && st.RouteMergeLocks == 0 {
		t.Fatal("appends merged without any lock acquisition recorded")
	}
	if st.RouteMergeLocks > st.RouteAppends {
		t.Fatalf("merge locks %d > appends %d: bulk merge regressed past per-append locking",
			st.RouteMergeLocks, st.RouteAppends)
	}
}
