package core

import (
	"context"
	"errors"
	"runtime/pprof"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// query is one match operation flowing through the pipeline.
type query struct {
	sig    bitvec.Vector
	unique bool
	start  time.Time
	idx    *index

	// tags holds the query's tag set in ExactVerify mode; nil queries
	// (submitted by signature) skip exact verification.
	tags map[string]struct{}

	// pending counts the batches this query still has in flight, plus a
	// +1 guard held during pre-processing so the query cannot complete
	// while it is still being routed.
	pending atomic.Int32

	mu   sync.Mutex
	keys []Key

	done func(MatchResult)

	// trace is non-nil for the sampled 1-in-N queries when tracing is
	// configured; all event methods are nil-safe.
	trace *obs.Trace

	// deadline and ctx carry the submitter's cancellation state into the
	// pipeline (both zero for the non-ctx Submit family): batches check
	// them at dispatch, completing already-expired queries with
	// ErrDeadlineExceeded instead of spending device time on answers
	// nobody is waiting for. ctx is stored only when cancellable.
	deadline time.Time
	ctx      context.Context

	// expired marks a query completed early with ErrDeadlineExceeded.
	// The CAS in expire elects exactly one deliverer no matter how many
	// of the query's batches sweep it concurrently; finish() sees the
	// flag and only recycles.
	expired atomic.Bool
}

// finish decrements the outstanding-batch counter and runs the merge
// stage (§3.4) when it reaches zero. The goroutine that reaches zero
// owns the query exclusively — every batch's last access to a query is
// its finish call — so it also recycles the struct.
func (q *query) finish(e *Engine, n int32) {
	if q.pending.Add(-n) != 0 {
		return
	}
	if q.expired.Load() {
		// expire() already delivered the ErrDeadlineExceeded result and
		// counted the completion; the last batch reference only recycles.
		e.pools.putQuery(q)
		e.notifyProgress()
		return
	}
	q.mu.Lock()
	keys := q.keys
	q.keys = nil
	q.mu.Unlock()
	if q.unique {
		if e.obs.On {
			t0 := time.Now()
			keys = dedupKeys(keys)
			spent := time.Since(t0)
			e.obs.Merge.ObserveDuration(spent)
			if q.trace != nil {
				q.trace.Span(obs.StageMerge, "query", t0, 0, spent, -1, "", -1, int64(len(keys)))
			}
		} else {
			keys = dedupKeys(keys)
		}
	}
	e.keysDelivered.Add(int64(len(keys)))
	e.completed.Add(1)
	latency := time.Since(q.start)
	if e.obs.On {
		e.obs.E2E.ObserveDuration(latency)
	}
	q.trace.Done(int64(len(keys)))
	done := q.done
	e.pools.putQuery(q)
	if done != nil {
		done(MatchResult{Keys: keys, Latency: latency})
	}
	e.notifyProgress()
}

// lapsed reports whether the query can no longer meet its caller's
// deadline: the deadline passed or the submitting context was cancelled.
func (q *query) lapsed(now time.Time) bool {
	if !q.deadline.IsZero() && now.After(q.deadline) {
		return true
	}
	return q.ctx != nil && q.ctx.Err() != nil
}

// expiryCause builds the terminal error for an expired query: always
// matchable with ErrDeadlineExceeded, with the context's own error
// joined in so callers can also distinguish cancellation from timeout.
func (q *query) expiryCause() error {
	if q.ctx != nil {
		if err := q.ctx.Err(); err != nil {
			return errors.Join(ErrDeadlineExceeded, err)
		}
	}
	return ErrDeadlineExceeded
}

// expire completes a query early with ErrDeadlineExceeded. The CAS
// elects exactly one deliverer; losers (other batches holding the same
// query) return immediately. The query struct is NOT recycled here — it
// may still sit in other in-flight batches — the last batch reference
// does that via finish, which sees the expired flag and skips delivery.
func (q *query) expire(e *Engine, cause error) {
	if !q.expired.CompareAndSwap(false, true) {
		return
	}
	e.obs.Faults.DeadlineExpired.Add(1)
	e.completed.Add(1)
	latency := time.Since(q.start)
	if q.trace != nil {
		q.trace.Fail("deadline_exceeded")
		q.trace.Done(0)
	}
	if done := q.done; done != nil {
		done(MatchResult{Err: cause, Latency: latency})
	}
	e.notifyProgress()
}

// dedupKeys sorts and compacts a key slice in place (merge stage of
// match-unique).
func dedupKeys(keys []Key) []Key {
	if len(keys) < 2 {
		return keys
	}
	sortKeys(keys)
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

func sortKeys(keys []Key) {
	// Insertion sort for the short slices typical of selective queries;
	// stdlib pdqsort for large fan-out results.
	if len(keys) < 24 {
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		return
	}
	slices.Sort(keys)
}

// openBatch is a per-partition batch of queries being filled by the
// pre-process stage.
type openBatch struct {
	pid        uint32
	queries    []*query
	sigs       []bitvec.Vector
	created    time.Time
	dispatched time.Time

	// deadlined marks that at least one member carries a cancellable
	// context, so dispatch runs the expiry sweep; deadline-free traffic
	// pays nothing.
	deadlined bool

	// Tail-tolerance state. settled elects the one attempt — primary
	// chain or hedge — whose result reaches the reduce stage; refs
	// counts the attachments that may still touch the batch (the
	// reduce-stage hold, each in-flight attempt chain, an armed hedge
	// timer) so recycling waits for the losing attempt; hedged records
	// that a hedge was launched; hedgeTimer is the armed straggler
	// budget, disarmed when the batch settles.
	settled    atomic.Bool
	refs       atomic.Int32
	hedged     atomic.Bool
	hedgeTimer *time.Timer
	timerIdx   *index // index whose dispatching fence the armed timer holds

	// ctxs snapshots every member's context when ALL members carry one
	// (empty otherwise), written once at dispatch before any attempt
	// exists. Late attempt chains poll it — never b.queries, whose
	// members a rival settle may have recycled — to abandon stream
	// acquisition once every caller is gone.
	ctxs []context.Context
}

// streamCtx bundles a GPU stream with its pipelined dispatch slots
// (§3.3.2's even/odd double buffering generalized to StreamDepth). Each
// slot is a full set of per-batch device buffers, so up to depth batches
// can be in flight on one stream: batch n+1's header-reset + H2D +
// kernel are enqueued behind batch n's gated pairs transfer and overlap
// with its reduce, instead of the stream idling while the host walks
// batch n's results.
type streamCtx struct {
	dev    int
	stream *gpu.Stream
	slots  []*streamSlot

	// enqMu serializes whole batch enqueue sequences. With depth slots,
	// two dispatcher goroutines can hold slots of the same stream
	// concurrently; without the lock their FIFO entries could interleave
	// and a segment error of one batch would be consumed by the other's
	// callback. The executor never takes enqMu, so a dispatcher blocked
	// on a full FIFO while holding it cannot deadlock — the executor
	// keeps draining.
	enqMu sync.Mutex

	// inflight counts batches enqueued on the stream and not yet
	// completed; sampled into the slot-occupancy histogram at dispatch,
	// it measures how often the pipeline actually overlaps batches.
	inflight atomic.Int32
}

// streamSlot is one pipelined dispatch slot: the per-batch device
// buffers (query batch, result header, packed pair buffer, the
// split-layout ablation's two id arrays, and the query-window index
// array) plus the slot's host staging state. A slot is owned exclusively
// by one attempt from pool acquisition until its final callback returns
// it — attempts never share a slot, which is what keeps a losing hedge
// or a faulted segment from recycling buffers a rival attempt still
// reads (the cross-attempt sharing happens one level up, in the
// query window, under its pin counts).
//
// hdrHost is the host staging slot for the ablation paths' D2H header
// copy; res and fault carry the batch outcome from the header callback
// to the completion callback. All of the staging state is written by
// the dispatching goroutine before the batch's first enqueue (the
// FIFO send publishes it to the executor) or by the executor itself
// between the slot's callbacks; pool-channel handoff orders reuse.
type streamSlot struct {
	sc     *streamCtx
	qbuf   *gpu.Buffer[bitvec.Vector]
	qidx   *gpu.Buffer[uint32]
	hdr    *gpu.Buffer[uint32]
	pairs  *gpu.Buffer[byte]
	splitQ *gpu.Buffer[uint32]
	splitS *gpu.Buffer[uint32]

	hdrHost  []uint32
	qidxHost []uint32

	// Query-window staging for the batch in flight: the coalesced fill
	// payload (winHost, aligned with winRuns) and the window slots whose
	// pins/pending states the header callback must settle. Slot-owned so
	// async H2D sources never alias b.sigs, whose backing array a rival
	// settle may recycle mid-copy.
	winHost    []bitvec.Vector
	winRuns    []winRun
	winPinned  []int
	winUploads []int
	dedup      map[bitvec.Vector]uint32

	// res and fault are the in-flight batch's outcome, set by the header
	// callback and consumed by the completion callback (both on the
	// executor goroutine, FIFO-ordered).
	res   *batchResult
	fault error

	// traced holds the sampled traces of the batch in flight on this
	// slot; the stream's OnOp observer resolves each op's slot through
	// its attribution tag and attaches device-op spans to them, keeping
	// interleaved batches distinguishable.
	traced []*obs.Trace
}

func (sl *streamSlot) free() {
	sl.qbuf.Free()
	sl.qidx.Free()
	sl.hdr.Free()
	sl.pairs.Free()
	sl.splitQ.Free()
	sl.splitS.Free()
}

// streamOpsBuffer sizes a stream's op FIFO for pipelined dispatch: the
// deepest enqueue burst is ~9 ops per batch (window fill runs + index
// upload + fused launch + callbacks + gated copies), so depth×16 leaves
// slack for depth concurrent batches without a dispatcher ever parking
// on a full FIFO while holding enqMu.
func streamOpsBuffer(depth int) int {
	return max(64, depth*16)
}

// payloadKind selects the payload source the reduce stage decodes.
type payloadKind uint8

const (
	// payloadCPU: no device payload; reduce runs the subset match on the
	// host (CPU-only mode, or the overflow fallback).
	payloadCPU payloadKind = iota
	payloadPacked
	payloadSplit
)

// batchResult carries a completed subset-match batch to the key-lookup
// stage. kind selects the payload source; the payload slices keep their
// backing arrays across pool reuse (lengths are set per batch).
type batchResult struct {
	idx      *index
	batch    *openBatch
	count    int
	overflow bool // GPU result buffer overflowed (kind is payloadCPU)
	kind     payloadKind
	packed   []byte   // packed layout payload
	qIDs     []uint32 // split layout payload
	sIDs     []uint32
}

// Submit enqueues a match(q) operation; done is invoked exactly once with
// the multiset of matching keys. Returns ErrClosed after Close and
// ErrOverloaded when the Config.MaxInFlight admission gate rejects the
// query (done is not called in either case).
func (e *Engine) Submit(tags []string, done func(MatchResult)) error {
	return e.submit(nil, bloom.Signature(tags), e.tagSet(tags), false, done)
}

// SubmitUnique enqueues a match-unique(q) operation.
func (e *Engine) SubmitUnique(tags []string, done func(MatchResult)) error {
	return e.submit(nil, bloom.Signature(tags), e.tagSet(tags), true, done)
}

// SubmitSignature enqueues a match on a pre-computed signature. In
// ExactVerify mode such queries cannot be verified and behave as plain
// Bloom matches.
func (e *Engine) SubmitSignature(sig bitvec.Vector, unique bool, done func(MatchResult)) error {
	return e.submit(nil, sig, nil, unique, done)
}

// tagSet builds the exact-verification set for a query, or nil when the
// engine does not verify.
func (e *Engine) tagSet(tags []string) map[string]struct{} {
	if !e.cfg.ExactVerify {
		return nil
	}
	set := make(map[string]struct{}, len(tags))
	for _, t := range tags {
		set[t] = struct{}{}
	}
	return set
}

// submit is the common submission path. A non-nil cancellable ctx rides
// along on the query: its deadline (when set) and cancellation are
// observed at dispatch time, completing the query early with
// ErrDeadlineExceeded instead of launching device work for it.
func (e *Engine) submit(ctx context.Context, sig bitvec.Vector, tags map[string]struct{}, unique bool, done func(MatchResult)) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.submitMu.RLock()
	// Admission gate: counting this submission, more than MaxInFlight
	// queries would be in flight — shed it. submitted is incremented
	// before the capacity check (and before the channel send, which
	// awaitDrain's completed>=submitted test relies on) so concurrent
	// submitters each see their own claim; a rejected claim is rolled
	// back and progress is signalled for SubmitCtx waiters.
	if max := int64(e.cfg.MaxInFlight); max > 0 {
		if e.submitted.Add(1)-e.completed.Load() > max {
			e.submitted.Add(-1)
			e.submitMu.RUnlock()
			e.obs.Faults.QueriesShed.Add(1)
			// Shed queries never enter the pipeline, so finish() never
			// publishes a trace for them; sample and finalize here so the
			// trace ring reflects shedding instead of silently skipping
			// the rejected 1-in-N queries.
			if tr := e.obs.Tracer.Maybe(); tr != nil {
				tr.Abort("overloaded")
			}
			e.notifyProgress()
			return ErrOverloaded
		}
	} else {
		e.submitted.Add(1)
	}
	q := e.pools.getQuery()
	q.sig, q.tags, q.unique, q.done = sig, tags, unique, done
	q.start = time.Now()
	q.idx = e.idx.Load()
	q.trace = e.obs.Tracer.Maybe()
	if ctx != nil && ctx.Done() != nil {
		q.ctx = ctx
		if d, ok := ctx.Deadline(); ok {
			q.deadline = d
		}
	}
	q.pending.Store(1) // pre-processing guard
	e.inputCh <- q
	e.submitMu.RUnlock()
	return nil
}

// SubmitCtx is Submit that blocks for admission capacity instead of
// returning ErrOverloaded, up to the context's deadline. On cancellation
// it returns an error matching both ErrOverloaded and the context error.
func (e *Engine) SubmitCtx(ctx context.Context, tags []string, done func(MatchResult)) error {
	return e.submitCtx(ctx, bloom.Signature(tags), e.tagSet(tags), false, done)
}

// SubmitUniqueCtx is SubmitUnique with SubmitCtx's blocking admission.
func (e *Engine) SubmitUniqueCtx(ctx context.Context, tags []string, done func(MatchResult)) error {
	return e.submitCtx(ctx, bloom.Signature(tags), e.tagSet(tags), true, done)
}

// SubmitSignatureCtx is SubmitSignature with SubmitCtx's blocking
// admission and deadline propagation.
func (e *Engine) SubmitSignatureCtx(ctx context.Context, sig bitvec.Vector, unique bool, done func(MatchResult)) error {
	return e.submitCtx(ctx, sig, nil, unique, done)
}

func (e *Engine) submitCtx(ctx context.Context, sig bitvec.Vector, tags map[string]struct{}, unique bool, done func(MatchResult)) error {
	for {
		err := e.submit(ctx, sig, tags, unique, done)
		if !errors.Is(err, ErrOverloaded) {
			return err
		}
		if err := e.waitCapacity(ctx); err != nil {
			return err
		}
	}
}

// waitCapacity blocks until the pipeline makes progress (some query
// completes, freeing admission capacity) or the context ends. It flushes
// open batches first so capacity appears even without other traffic
// driving partially filled batches out.
func (e *Engine) waitCapacity(ctx context.Context) error {
	e.drainWaiters.Add(1)
	defer e.drainWaiters.Add(-1)
	stop := context.AfterFunc(ctx, func() {
		e.drainMu.Lock()
		e.drainCond.Broadcast()
		e.drainMu.Unlock()
	})
	defer stop()
	ep := e.progressEpoch.Load()
	e.flushAll(e.idx.Load())
	e.drainMu.Lock()
	for e.progressEpoch.Load() == ep && ctx.Err() == nil {
		e.drainCond.Wait()
	}
	e.drainMu.Unlock()
	if err := ctx.Err(); err != nil {
		return errors.Join(ErrOverloaded, err)
	}
	return nil
}

// Match performs a blocking match(q) and returns the multiset of keys of
// all indexed sets that are subsets of the query. It flushes open batches
// after submitting, so it completes promptly even without traffic; use
// Submit for maximal throughput.
func (e *Engine) Match(tags []string) ([]Key, error) {
	return e.blockingMatch(nil, bloom.Signature(tags), e.tagSet(tags), false)
}

// MatchUnique performs a blocking match-unique(q): the deduplicated set
// of keys associated with at least one matching set.
func (e *Engine) MatchUnique(tags []string) ([]Key, error) {
	return e.blockingMatch(nil, bloom.Signature(tags), e.tagSet(tags), true)
}

// MatchSignature is Match on a pre-computed signature.
func (e *Engine) MatchSignature(sig bitvec.Vector, unique bool) ([]Key, error) {
	return e.blockingMatch(nil, sig, nil, unique)
}

// MatchCtx is Match with an end-to-end deadline: the context's deadline
// and cancellation propagate into the pipeline, where expired queries
// are completed with an error matching ErrDeadlineExceeded before any
// kernel launch, and the call itself returns promptly when the context
// ends while waiting.
func (e *Engine) MatchCtx(ctx context.Context, tags []string) ([]Key, error) {
	return e.blockingMatch(ctx, bloom.Signature(tags), e.tagSet(tags), false)
}

// MatchUniqueCtx is MatchUnique with MatchCtx's deadline propagation.
func (e *Engine) MatchUniqueCtx(ctx context.Context, tags []string) ([]Key, error) {
	return e.blockingMatch(ctx, bloom.Signature(tags), e.tagSet(tags), true)
}

// MatchSignatureCtx is MatchSignature with MatchCtx's deadline
// propagation.
func (e *Engine) MatchSignatureCtx(ctx context.Context, sig bitvec.Vector, unique bool) ([]Key, error) {
	return e.blockingMatch(ctx, sig, nil, unique)
}

func (e *Engine) blockingMatch(ctx context.Context, sig bitvec.Vector, tags map[string]struct{}, unique bool) ([]Key, error) {
	ch := make(chan MatchResult, 1)
	if err := e.submit(ctx, sig, tags, unique, func(r MatchResult) { ch <- r }); err != nil {
		return nil, err
	}
	// Drive the pipeline event-driven until the result arrives, riding
	// the same progress-epoch condition variable as Drain: without
	// background traffic the query's batches would otherwise wait for
	// their flush timeout, and a single flush could race ahead of the
	// pre-process stage enqueuing the query. Each progress event (the
	// query finishing pre-processing, a batch leaving reduce) wakes the
	// waiter, which re-flushes; the epoch check closes the lost-wakeup
	// window where a batch is created while the waiter is inside
	// flushAll. No polling ticker: an idle blocking match costs no
	// flushAll sweeps beyond the ones progress events trigger.
	//
	// With a cancellable ctx the context's end also broadcasts the
	// condvar, so a caller parked in batch-wait unblocks promptly
	// instead of sleeping until the next progress event. The submitted
	// query still completes behind the scenes (its done callback writes
	// to the buffered channel), delivering ErrDeadlineExceeded through
	// the dispatch-time expiry sweep.
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			e.drainMu.Lock()
			e.drainCond.Broadcast()
			e.drainMu.Unlock()
		})
		defer stop()
	}
	e.drainWaiters.Add(1)
	defer e.drainWaiters.Add(-1)
	for {
		ep := e.progressEpoch.Load()
		e.flushAll(e.idx.Load())
		select {
		case r := <-ch:
			return r.Keys, r.Err
		default:
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				// One last chance for a result that raced the cancellation.
				select {
				case r := <-ch:
					return r.Keys, r.Err
				default:
				}
				return nil, errors.Join(ErrDeadlineExceeded, err)
			}
		}
		e.drainMu.Lock()
		if e.progressEpoch.Load() == ep {
			e.drainCond.Wait()
		}
		e.drainMu.Unlock()
	}
}

// routeMergeAppends caps how many (query, partition) appends a
// pre-process worker buffers locally before merging into the shared
// per-partition batches. Merges also happen whenever the input channel
// is momentarily empty, so the cap only bounds buffering (and thus
// added latency) under sustained load, where batch fill dominates
// latency anyway.
const routeMergeAppends = 1024

// routeAccum is a pre-process worker's local batch accumulator: routed
// (query, partition) appends collected across a burst of queries and
// merged into the shared per-partition open batches in bulk, one
// partition-lock acquisition per (burst, partition) instead of one per
// (query, partition). Worker-local, so accumulation itself is
// lock-free; all slices keep their capacity across bursts.
type routeAccum struct {
	idx     *index       // generation the buffered appends belong to
	slots   [][]*query   // queries routed to each partition this burst
	touched []uint32     // partitions with a non-empty slot
	pending int          // buffered appends across all slots
	full    []*openBatch // merge-time scratch for batches that filled
}

// bind points the accumulator at an index generation. The caller must
// have merged (pending == 0), so every retained slot is empty.
func (a *routeAccum) bind(idx *index) {
	a.idx = idx
	if n := len(idx.parts); cap(a.slots) < n {
		a.slots = make([][]*query, n)
	} else {
		a.slots = a.slots[:n]
	}
	a.touched = a.touched[:0]
	a.pending = 0
}

// routeState is the per-worker scratch of the pre-process stage.
type routeState struct {
	pids  []uint32 // routed partition ids, reused across queries
	ones  []int    // the query signature's one-bit positions, computed once
	dkeys []Key    // delta-overlay hits, reused across queries
	acc   routeAccum
}

// preprocessWorker implements the pre-process stage (Algorithm 2): find
// the partitions whose mask is a subset of the query and enqueue the
// query into their batches. Routing uses the bit-sliced partition table
// (Config.ScalarRouting selects the retained scalar scan), and batch
// appends accumulate worker-locally across a burst of queries — as many
// as are immediately available on the input channel, up to
// routeMergeAppends appends — before merging into the shared batches in
// bulk. A worker always merges before blocking for more input, so no
// query ever waits in a local accumulator while the pipeline is idle.
func (e *Engine) preprocessWorker() {
	defer e.workerWg.Done()
	pprof.Do(context.Background(), pprof.Labels("stage", "preprocess"), func(context.Context) {
		var w routeState
		for q := range e.inputCh {
			e.routeOne(&w, q)
		collect:
			for w.acc.pending < routeMergeAppends {
				select {
				case q2, ok := <-e.inputCh:
					if !ok {
						break collect // merge below; the outer range exits next
					}
					e.routeOne(&w, q2)
				default:
					break collect
				}
			}
			e.mergeRoutes(&w.acc)
			e.notifyProgress()
		}
		e.mergeRoutes(&w.acc) // safety net; a clean exit already merged
	})
}

// routeOne runs Algorithm 2 for one query and buffers its batch appends
// in the worker's accumulator. The routing guard (+1 pending) drops
// here: the buffered appends already hold their own pending references,
// so a query routed to no partition completes immediately and one
// routed somewhere cannot complete before its last batch reduces.
func (e *Engine) routeOne(w *routeState, q *query) {
	idx := q.idx
	if w.acc.idx != idx {
		// Index generation changed under the accumulator (Consolidate
		// swapped it): flush the buffered appends of the old generation
		// before touching the new one.
		e.mergeRoutes(&w.acc)
		w.acc.bind(idx)
	}
	t0 := time.Now()
	// One pass over the signature serves both the bin walk (scalar and
	// sliced lookups take the precomputed one-bit positions) and the
	// trace below — the old path re-walked the signature with NextOne.
	w.ones = q.sig.Ones(w.ones[:0])
	if e.cfg.ScalarRouting {
		w.pids = idx.pt.lookup(q.sig, w.ones, w.pids[:0])
		e.obs.Routing.ScalarQueries.Add(1)
	} else {
		w.pids = idx.pt.lookupSliced(q.sig, w.ones, w.pids[:0])
		e.obs.Routing.SlicedQueries.Add(1)
	}
	w.pids = append(w.pids, idx.maskless...)
	e.partsSearched.Add(int64(len(w.pids)))
	for _, pid := range w.pids {
		q.pending.Add(1)
		if len(w.acc.slots[pid]) == 0 {
			w.acc.touched = append(w.acc.touched, pid)
		}
		w.acc.slots[pid] = append(w.acc.slots[pid], q)
	}
	w.acc.pending += len(w.pids)
	spent := time.Since(t0)
	e.preprocessNs.Add(int64(spent))
	if e.obs.On {
		// Per-query routing time; the bulk-merge time is accounted to
		// preprocessNs by mergeRoutes but not attributed per query.
		e.obs.Preprocess.ObserveDuration(spent)
		// Input-queue wait: submit to pre-process pickup.
		e.obs.InputWait.ObserveDuration(t0.Sub(q.start))
	}
	if q.trace != nil {
		q.trace.Event("route-bins", -1, int64(len(w.ones)))
		q.trace.Event(obs.StagePreprocess, -1, int64(len(w.pids)))
		q.trace.Span(obs.StagePreprocess, "query", q.start, t0.Sub(q.start), spent,
			-1, "", -1, int64(len(w.pids)))
		if !q.deadline.IsZero() {
			// Deadline slack remaining after the pre-process stage; the
			// dispatch sweep records the pre-launch counterpart, giving
			// traced queries a per-stage slack attribution.
			q.trace.Event("deadline-slack-routed", -1, int64(time.Until(q.deadline)))
		}
	}
	// Merge the delta overlay's hits before the routing guard drops:
	// staged-but-unconsolidated adds match alongside the main index.
	e.deltaMatch(w, q)
	q.finish(e, 1)
}

// mergeRoutes drains the accumulator into the shared per-partition open
// batches: one partition-lock acquisition per touched partition for the
// whole burst. Batches that fill during the merge are detached under
// the lock and dispatched after it is released, exactly like the old
// per-append path; partially filled batches stay open for the flusher.
func (e *Engine) mergeRoutes(acc *routeAccum) {
	if acc.pending == 0 {
		return
	}
	idx := acc.idx
	t0 := time.Now()
	full := acc.full[:0]
	for _, pid := range acc.touched {
		qs := acc.slots[pid]
		p := &idx.parts[pid]
		idx.locks[pid].Lock()
		for len(qs) > 0 {
			if p.batch == nil {
				p.batch = e.pools.getBatch(pid, e.cfg.BatchSize)
				if !p.dirty {
					// Mark inside the partition lock: flag and list
					// membership stay in lock step, so the dirty list
					// never holds duplicates.
					p.dirty = true
					idx.markDirty(pid)
				}
			}
			b := p.batch
			take := e.cfg.BatchSize - len(b.queries)
			if take > len(qs) {
				take = len(qs)
			}
			for _, q := range qs[:take] {
				b.queries = append(b.queries, q)
				b.sigs = append(b.sigs, q.sig)
				if q.ctx != nil {
					b.deadlined = true
				}
				if q.trace != nil {
					q.trace.Event("batch", int32(pid), int64(len(b.queries)))
				}
			}
			qs = qs[take:]
			if len(b.queries) >= e.cfg.BatchSize {
				// The partition stays dirty (its id stays listed) until
				// the next flush visit notices the batch is gone and
				// clears the flag.
				p.batch = nil
				full = append(full, b)
			}
		}
		idx.locks[pid].Unlock()
		if c := e.partCounters(pid); c != nil {
			c.QueriesRouted.Add(int64(len(acc.slots[pid])))
		}
		clear(acc.slots[pid]) // drop query refs; they recycle independently
		acc.slots[pid] = acc.slots[pid][:0]
	}
	e.obs.Routing.MergeLockAcqs.Add(int64(len(acc.touched)))
	e.obs.Routing.MergedAppends.Add(int64(acc.pending))
	acc.touched = acc.touched[:0]
	acc.pending = 0
	e.preprocessNs.Add(int64(time.Since(t0)))
	for _, b := range full {
		e.dispatch(idx, b, dispatchFull)
	}
	clear(full) // drop batch refs; reduceOne recycles them
	acc.full = full[:0]
}

// markDirty appends pid to the dirty-partition list. Callers hold the
// partition's lock; the lock order partition-lock → dirtyMu is safe
// because no path acquires a partition lock while holding dirtyMu.
func (idx *index) markDirty(pid uint32) {
	idx.dirtyMu.Lock()
	idx.dirty = append(idx.dirty, pid)
	idx.dirtyMu.Unlock()
}

// takeDirty detaches the current dirty-partition list for a flush pass,
// installing the spare buffer so concurrent appends keep recording. The
// caller must hand the returned slice to recycleDirty when done.
func (idx *index) takeDirty() []uint32 {
	idx.dirtyMu.Lock()
	pids := idx.dirty
	if idx.dirtySpare != nil {
		idx.dirty = idx.dirtySpare[:0]
		idx.dirtySpare = nil
	} else {
		idx.dirty = nil
	}
	idx.dirtyMu.Unlock()
	return pids
}

// requeueDirty re-lists partitions whose batches were too young to
// flush; their dirty flags are still set.
func (idx *index) requeueDirty(pids []uint32) {
	if len(pids) == 0 {
		return
	}
	idx.dirtyMu.Lock()
	idx.dirty = append(idx.dirty, pids...)
	idx.dirtyMu.Unlock()
}

// recycleDirty returns a taken list's backing array for reuse.
func (idx *index) recycleDirty(pids []uint32) {
	if cap(pids) == 0 {
		return
	}
	idx.dirtyMu.Lock()
	if idx.dirtySpare == nil {
		idx.dirtySpare = pids[:0]
	}
	idx.dirtyMu.Unlock()
}

// flushAll dispatches every open batch regardless of fill level. Only
// dirty partitions are visited: with P partitions in the thousands and
// a handful seeing traffic, sweeping all P per call would dominate the
// flush path (drain, blocking matches) with uncontended-lock traffic.
func (e *Engine) flushAll(idx *index) {
	pids := idx.takeDirty()
	for _, pid := range pids {
		p := &idx.parts[pid]
		idx.locks[pid].Lock()
		b := p.batch
		p.batch = nil
		p.dirty = false
		idx.locks[pid].Unlock()
		if b != nil {
			e.dispatch(idx, b, dispatchFlush)
		}
	}
	idx.recycleDirty(pids)
}

// flusher enforces the batch timeout (§3): partially filled batches are
// pushed through the pipeline once they age past BatchTimeout. Each tick
// visits only dirty partitions; too-young batches are requeued.
func (e *Engine) flusher() {
	defer close(e.flushDone)
	tick := e.cfg.BatchTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case now := <-t.C:
			idx := e.idx.Load()
			pids := idx.takeDirty()
			keep := pids[:0] // compact in place: write index trails read index
			for _, pid := range pids {
				p := &idx.parts[pid]
				idx.locks[pid].Lock()
				var b *openBatch
				switch {
				case p.batch == nil:
					p.dirty = false // stale entry: batch already dispatched full
				case now.Sub(p.batch.created) >= e.cfg.BatchTimeout:
					b = p.batch
					p.batch = nil
					p.dirty = false
				default:
					keep = append(keep, pid) // too young; stays dirty
				}
				idx.locks[pid].Unlock()
				if b != nil {
					e.batchesTimedOut.Add(1)
					e.dispatch(idx, b, dispatchTimeout)
				}
			}
			// requeueDirty copies keep's values into the live list, so
			// the taken buffer (which keep aliases) is free to recycle.
			idx.requeueDirty(keep)
			idx.recycleDirty(pids)
		}
	}
}

// dispatchReason records why a batch left the pre-process stage, for the
// per-partition fullness-vs-timeout breakdown.
type dispatchReason uint8

const (
	dispatchFull dispatchReason = iota
	dispatchTimeout
	dispatchFlush
)

// dispatch runs the subset-match stage for one batch: on a GPU stream
// when devices are configured, otherwise synchronously on the calling CPU
// thread (CPU-only TagMatch). Batches carrying deadlined queries are
// swept first: members whose deadline already passed complete with
// ErrDeadlineExceeded here, before any device work, and a batch left
// empty by the sweep is cancelled outright — it never counts as
// dispatched and never reaches a kernel launch.
func (e *Engine) dispatch(idx *index, b *openBatch, reason dispatchReason) {
	if b.deadlined {
		if b = e.sweepExpired(b); b == nil {
			return
		}
		for _, q := range b.queries {
			if q.ctx == nil {
				b.ctxs = b.ctxs[:0] // a ctx-less member can never expire
				break
			}
			b.ctxs = append(b.ctxs, q.ctx)
		}
	}
	e.batches.Add(1)
	e.inflightBatches.Add(1)
	if e.obs.On {
		e.obs.BatchOccupancy.Observe(int64(len(b.queries)))
		if c := e.obs.Parts.Get(b.pid); c != nil {
			switch reason {
			case dispatchFull:
				c.BatchesFull.Add(1)
			case dispatchTimeout:
				c.BatchesTimedOut.Add(1)
			default:
				c.BatchesFlushed.Add(1)
			}
		}
	}
	b.dispatched = time.Now()
	if e.obs.On {
		wait := b.dispatched.Sub(b.created)
		e.obs.BatchWait.ObserveDuration(wait)
		if e.obs.Tracing() {
			for _, q := range b.queries {
				q.trace.Span("batch-wait", "query", b.created, wait, 0,
					int32(b.pid), "", -1, int64(len(b.queries)))
			}
		}
	}
	b.refs.Store(1) // the reduce-stage hold, dropped by reduceOne
	if len(idx.devices) == 0 {
		e.cpuDispatch(idx, b, false)
		return
	}
	e.gpuDispatch(idx, b)
}

// sweepExpired completes every already-expired query in the batch with
// ErrDeadlineExceeded and compacts the batch in place. Returns nil when
// every member expired: the batch is cancelled — recycled without ever
// counting as dispatched — which pins the invariant that expired
// queries never reach a kernel launch. Surviving deadline-carrying
// queries record their remaining slack (the headroom the batching
// stages left for the device) in the DeadlineSlack histogram.
func (e *Engine) sweepExpired(b *openBatch) *openBatch {
	now := time.Now()
	keepQ, keepS := b.queries[:0], b.sigs[:0]
	for i, q := range b.queries {
		if q.lapsed(now) {
			q.expire(e, q.expiryCause())
			q.finish(e, 1) // drop this batch's reference
			continue
		}
		if e.obs.On && !q.deadline.IsZero() {
			slack := q.deadline.Sub(now)
			e.obs.DeadlineSlack.ObserveDuration(slack)
			if q.trace != nil {
				q.trace.Event("deadline-slack-dispatch", int32(b.pid), int64(slack))
			}
		}
		keepQ = append(keepQ, q)
		keepS = append(keepS, b.sigs[i])
	}
	if len(keepQ) == 0 {
		e.obs.Faults.BatchesCancelled.Add(1)
		e.pools.putBatch(b)
		e.notifyProgress()
		return nil
	}
	// Clear the compaction tail so dropped query refs don't linger in
	// the batch's backing array until its next recycle.
	clear(b.queries[len(keepQ):])
	b.queries, b.sigs = keepQ, keepS
	return b
}

// cpuDispatch forwards the batch to the reduce stage for a host-side
// subset match, racing any concurrent attempt through the settle CAS.
func (e *Engine) cpuDispatch(idx *index, b *openBatch, hedge bool) {
	res := e.pools.getResult()
	res.idx, res.batch, res.kind = idx, b, payloadCPU // reduce runs the CPU match
	e.deliverResult(b, res, hedge)
}

// gpuDispatch issues the copy/launch/copy sequence on an acquired stream
// (§3.3.2). All operations are asynchronous; the final stream callback
// hands the results to the reduce stage and releases the stream. The
// sampled traces of the batch are captured once here — before any
// concurrent attempt exists — and threaded through retries and hedges,
// which must not re-read b.queries (the reduce stage recycles queries
// as soon as the winning attempt lands).
func (e *Engine) gpuDispatch(idx *index, b *openBatch) {
	var traced []*obs.Trace
	if e.obs.Tracing() {
		for _, q := range b.queries {
			if q.trace != nil {
				traced = append(traced, q.trace)
			}
		}
	}
	e.batchRef(b)
	idx.dispatching.Add(1)
	e.gpuDispatchAttempt(idx, b, 0, -1, false, traced)
}

// batchRef and batchUnref count the attachments that may still touch an
// openBatch: the reduce-stage hold, each in-flight attempt chain, and
// an armed hedge timer. Before hedging exactly one attempt chain ever
// ran, so reduceOne could recycle the batch directly; a losing attempt
// now outlives the reduce, so the last detacher recycles instead.
func (e *Engine) batchRef(b *openBatch) { b.refs.Add(1) }

func (e *Engine) batchUnref(b *openBatch) {
	if n := b.refs.Add(-1); n == 0 {
		e.pools.putBatch(b)
	} else if n < 0 {
		panic("batchUnref: negative refcount")
	}
}

// settleBatch claims the exclusive right to complete the batch: exactly
// one attempt — primary chain or hedge — wins the CAS, extending PR 3's
// "every batch reaches reduce exactly once" guarantee across racing
// attempts. The winner also disarms the straggler budget timer; when
// the timer is stopped before firing, its batch reference and
// dispatching hold are released on its behalf.
func (e *Engine) settleBatch(b *openBatch) bool {
	if !b.settled.CompareAndSwap(false, true) {
		return false
	}
	if t := b.hedgeTimer; t != nil && t.Stop() {
		b.timerIdx.dispatching.Done()
		e.batchUnref(b)
	}
	return true
}

// deliverResult forwards one completed attempt's result to the reduce
// stage if the attempt settled the batch, or discards it when the rival
// attempt already won the race.
func (e *Engine) deliverResult(b *openBatch, res *batchResult, hedge bool) {
	if e.settleBatch(b) {
		if hedge {
			e.obs.Faults.HedgesWon.Add(1)
		}
		e.reduceCh <- res
		return
	}
	if hedge {
		e.obs.Faults.HedgesLost.Add(1)
	}
	e.pools.putResult(res)
}

// hedgingEnabled reports whether Config.HedgePolicy arms straggler
// budgets on GPU dispatches.
func (e *Engine) hedgingEnabled() bool { return e.cfg.HedgePolicy.Mode != HedgeOff }

// hedgeMinSamples is the per-device successful-batch count below which
// the percentile budget falls back to MinBudget: hedging off a
// three-sample "p99" would fire on noise.
const hedgeMinSamples = 16

// hedgeBudget resolves the straggler budget for a batch dispatched to
// dev: the fixed budget, or Multiplier times the device's tracked
// Percentile batch service time once enough samples exist, floored at
// MinBudget.
func (e *Engine) hedgeBudget(dev int) time.Duration {
	hp := &e.cfg.HedgePolicy
	if hp.Mode == HedgeFixed {
		return hp.Budget
	}
	h := &e.health[dev].svc
	if h.Count() >= hedgeMinSamples {
		p := h.Snapshot().QuantileDuration(hp.Percentile)
		if budget := time.Duration(float64(p) * hp.Multiplier); budget > hp.MinBudget {
			return budget
		}
	}
	return hp.MinBudget
}

// maybeHedge fires when a dispatched batch outlives its straggler
// budget: if the primary attempt still has not settled, the batch is
// re-dispatched to another healthy device — or the host's same-flavor
// match — racing the straggler. The settle CAS keeps completion
// exactly-once; the loser's results are discarded. Runs on the budget
// timer's goroutine, holding the batch reference and index dispatching
// hold taken when the timer was armed.
func (e *Engine) maybeHedge(idx *index, b *openBatch, primary int, traced []*obs.Trace) {
	defer idx.dispatching.Done()
	if b.settled.Load() || e.closed.Load() {
		e.obs.Faults.HedgesCancelled.Add(1)
		e.batchUnref(b)
		return
	}
	b.hedged.Store(true)
	e.obs.Faults.HedgesFired.Add(1)
	e.logger().Debug("hedging straggler batch",
		"partition", b.pid, "queries", len(b.queries),
		"primary", e.deviceName(primary))
	// The "hedge" span covers the primary attempt's run-up to the budget
	// firing, so the timeline shows how long the straggler was tolerated;
	// the hedge attempt's own device ops follow as ordinary op spans.
	now := time.Now()
	for _, tr := range traced {
		tr.Span("hedge", "query", b.dispatched, 0, now.Sub(b.dispatched),
			int32(b.pid), "", -1, int64(primary))
		tr.Event("hedge-fired", int32(b.pid), int64(primary))
		tr.Degrade("hedged")
	}
	e.batchRef(b)
	idx.dispatching.Add(1)
	e.gpuDispatchAttempt(idx, b, 0, primary, true, traced)
	e.batchUnref(b) // the timer's own hold
}

// acquireStream pulls a dispatch slot whose device is healthy (or due a
// recovery probe), preferring devices other than avoid — the device of a
// failed prior attempt. The pool holds StreamDepth slots per stream, so
// up to depth batches can be dispatching onto one stream concurrently.
// It returns nil when no usable slot can be found in a bounded number of
// tries, in which case the caller re-runs the batch on the host. Skipped
// slots go straight back into the pool, so quarantining never shrinks
// the pool itself. The inter-pass backoff is abandoned — returning nil
// immediately — when the engine is closing, the batch has already
// settled (a rival hedge attempt delivered), or every member query has
// expired: sleeping through any of those would hold up shutdown or burn
// the callers' remaining deadline for a slot nobody needs anymore.
func (e *Engine) acquireStream(idx *index, b *openBatch, avoid int) *streamSlot {
	if !e.cfg.Replicate {
		// Partitioned placement binds the partition to one device; there
		// is no alternative device to retry on.
		dev := idx.parts[b.pid].dev
		if e.acquireAbandoned(b) {
			return nil
		}
		if !e.deviceUsable(dev) {
			return nil
		}
		if e.health[dev].quarantined.Load() {
			// deviceUsable elected this batch as the recovery probe; the
			// probe must dispatch, so wait out the stream unconditionally.
			return <-idx.devStreams[dev]
		}
		for {
			select {
			case sc := <-idx.devStreams[dev]:
				return sc
			default:
				if e.acquireAbandoned(b) {
					return nil
				}
				time.Sleep(streamAcquireBackoff)
			}
		}
	}
	// Replicate mode: scan the shared pool without ever parking on the
	// channel — a checked-out slot can be hundreds of milliseconds away
	// behind an injected (or real) straggler, and a batch that has become
	// moot in the meantime (engine closed, every member's context ended,
	// or a hedge rival already settled it) must stop waiting for one.
	// Each round drains whatever is currently pooled, preferring a
	// device other than avoid but holding a usable avoided slot as the
	// round's fallback (a single-device engine retries on another slot
	// of the same GPU). A fruitless round when every device is
	// quarantined gives up (CPU fallback); a fruitless round with merely
	// checked-out slots backs off briefly and rescans, re-checking
	// abandonment around the sleep so expired work never queues behind a
	// straggler.
	for {
		var fallback *streamSlot
		for i := 0; i < cap(idx.streams); i++ {
			var sl *streamSlot
			select {
			case sl = <-idx.streams:
			default:
			}
			if sl == nil {
				break // pool exhausted this round
			}
			if e.deviceUsable(sl.sc.dev) {
				// A usable quarantined device means deviceUsable elected
				// this batch as its recovery probe: dispatch there even if
				// it is the avoided device, or the probe would leak.
				if sl.sc.dev != avoid || e.health[sl.sc.dev].quarantined.Load() {
					if fallback != nil {
						idx.streams <- fallback
					}
					return sl
				}
				if fallback == nil {
					fallback = sl
					continue
				}
			}
			idx.streams <- sl
		}
		if fallback != nil {
			return fallback // only the avoided device is usable
		}
		if e.acquireAbandoned(b) || e.allDevicesQuarantined() {
			return nil
		}
		time.Sleep(streamAcquireBackoff)
		if e.acquireAbandoned(b) {
			return nil
		}
	}
}

// allDevicesQuarantined reports whether no device can currently serve
// batches at all; acquireStream stops waiting for pooled streams then
// (the scan itself still lets recovery probes through, because
// deviceUsable elects them while the pool is inspected).
func (e *Engine) allDevicesQuarantined() bool {
	for d := range e.health {
		if !e.health[d].quarantined.Load() {
			return false
		}
	}
	return true
}

// acquireAbandoned reports whether a stream acquisition should give up
// without its backoff sleep: the engine is closing, a rival attempt has
// settled the batch, or every member query's context has ended. The
// expiry check reads the context snapshot captured at dispatch, not
// b.queries — after a rival settles, the reduce stage recycles the
// query structs while this attempt is still running, but a context
// value stays valid forever.
func (e *Engine) acquireAbandoned(b *openBatch) bool {
	if e.closed.Load() || b.settled.Load() {
		return true
	}
	if len(b.ctxs) == 0 {
		return false
	}
	for _, ctx := range b.ctxs {
		if ctx.Err() == nil {
			return false
		}
	}
	return true
}

// streamAcquireBackoff separates acquireStream's two scan passes when
// the first found no usable device at all (typically: every device
// quarantined), so concurrent fallbacks don't spin hot on the pool.
const streamAcquireBackoff = 500 * time.Microsecond

// gpuDispatchAttempt runs one GPU attempt for the batch. attempt 0 is the
// initial dispatch; a failed attempt is retried once (attempt 1) on a
// stream avoiding the failed device, and a second failure — or no usable
// stream at all — re-runs the batch on the host, so every batch reaches
// the reduce stage exactly once no matter how the devices behave. With
// hedge set, the attempt is a straggler hedge racing the primary chain:
// it neither retries nor falls back on failure (the primary chain owns
// the delivery guarantee) and its result goes through the same settle
// CAS, the loser being discarded. The caller has taken one batch
// reference and one index dispatching hold for the chain; every
// terminal path of the chain releases both exactly once.
func (e *Engine) gpuDispatchAttempt(idx *index, b *openBatch, attempt, avoid int, hedge bool, traced []*obs.Trace) {
	p := &idx.parts[b.pid]
	sl := e.acquireStream(idx, b, avoid)
	if sl == nil {
		if hedge {
			// No device to hedge onto: race the straggler on the host.
			// Not a fault fallback — only the hedge counters move.
			e.cpuDispatch(idx, b, true)
		} else {
			e.fallbackCPU(idx, b, traced)
		}
		e.batchUnref(b)
		idx.dispatching.Done()
		return
	}
	sc := sl.sc
	dev := sc.dev
	// Partitions appended by an incremental fold live in per-device
	// extent buffers rather than the base shard of the last full upload;
	// their devOff/devGrpOff are extent-relative in both placement modes.
	buf := idx.devBufs[dev]
	if p.ext > 0 {
		buf = idx.devExts[dev][p.ext-1]
	}
	partOff := int(p.off)
	if !e.cfg.Replicate || p.ext > 0 {
		partOff = int(p.devOff)
	}
	globalBase := int(p.off)
	nQ := len(b.sigs)

	// Kernel flavor: the bit-sliced kernel walks the partition's
	// transposed groups (one 64-set group per thread); the scalar
	// ablation keeps one set per thread. Both emit through the same
	// result path and produce identical pairs.
	sliced := !e.cfg.ScalarKernel && idx.groups != nil
	nGroups := (int(p.n) + 63) / 64
	var grpBuf *gpu.Buffer[bitvec.SlicedGroup]
	if sliced {
		grpBuf = idx.devGroupBufs[dev]
		if p.ext > 0 {
			grpBuf = idx.devGrpExts[dev][p.ext-1]
		}
	}
	grpOff := int(p.grpOff)
	if !e.cfg.Replicate || p.ext > 0 {
		grpOff = int(p.devGrpOff)
	}
	var grid gpu.Grid
	if sliced {
		grid = slicedGrid(nGroups, e.cfg.BlockDim)
		e.obs.Kernel.SlicedBatches.Add(1)
	} else {
		grid = gpu.Grid{
			Blocks:   (int(p.n) + e.cfg.BlockDim - 1) / e.cfg.BlockDim,
			BlockDim: e.cfg.BlockDim,
		}
		e.obs.Kernel.ScalarBatches.Add(1)
	}

	release := func() {
		sc.inflight.Add(-1)
		if e.cfg.Replicate {
			idx.streams <- sl
		} else {
			idx.devStreams[dev] <- sl
		}
	}

	// Point the slot at this batch's sampled traces before any operation
	// is enqueued (every op carries the slot as its attribution tag, so
	// the OnOp observer finds the right traces even with rival batches
	// interleaved on the stream). The traces were captured at dispatch
	// time (gpuDispatch), NOT re-read from b.queries: on a retry or
	// hedge the rival attempt may already have settled the batch and
	// recycled its queries.
	sl.traced = append(sl.traced[:0], traced...)
	sl.res, sl.fault = nil, nil

	// Pipeline occupancy: how many batches share the stream right now.
	occ := sc.inflight.Add(1)
	e.obs.Streams.SlotOccupancy.Observe(int64(occ))
	if occ > 1 {
		e.obs.Streams.PipelinedDispatches.Add(1)
	}

	// Arm the straggler budget on the primary chain's first attempt,
	// before any operation is enqueued (the enqueue's channel send
	// publishes the timer to the settling callback). The timer holds its
	// own batch reference and dispatching fence hold; whoever resolves
	// it — the budget firing, or a settle stopping it first — releases
	// them. The timer is created inert and started with Reset only after
	// b.hedgeTimer is assigned: AfterFunc with the real budget could fire
	// — and lead the hedge chain to read b.hedgeTimer in settleBatch —
	// before the assignment of its own return value completes.
	if attempt == 0 && !hedge && e.hedgingEnabled() {
		e.batchRef(b)
		idx.dispatching.Add(1)
		b.timerIdx = idx
		t := time.AfterFunc(time.Hour, func() {
			e.maybeHedge(idx, b, dev, traced)
		})
		b.hedgeTimer = t
		t.Reset(e.hedgeBudget(dev))
	}

	// Query upload: map the batch onto the device's query window ring
	// (unique signatures upload once, the batch carries u32 indices) when
	// the window is enabled and has room; otherwise the dense per-slot
	// upload. The assignment pins the referenced ring slots until the
	// header callback settles them, so no rival batch's fill can
	// overwrite a signature this kernel still reads.
	var win *queryWindow
	if idx.windows != nil {
		win = idx.windows[dev]
	}
	useWin := win != nil && win.assign(sl, b.sigs, &e.obs.Streams)
	if win != nil && !useWin {
		e.obs.Streams.WindowFallbacks.Add(1)
	}
	e.obs.Streams.QuerySlots.Add(int64(nQ))
	var qsrc querySrc
	if useWin {
		e.obs.Streams.H2DQueryBytes.Add(int64(len(sl.winHost)*sigBytes + nQ*4))
		qsrc = querySrc{window: win.buf, qidx: sl.qidx, n: nQ}
	} else {
		e.obs.Streams.H2DQueryBytes.Add(int64(nQ * sigBytes))
		qsrc = querySrc{direct: sl.qbuf, n: nQ}
	}
	enqueueQueries := func() {
		if useWin {
			off := 0
			for _, run := range sl.winRuns {
				gpu.CopyToDeviceAsync(sc.stream, win.buf, run.off, sl.winHost[off:off+run.n], sl)
				off += run.n
			}
			gpu.CopyToDeviceAsync(sc.stream, sl.qidx, 0, sl.qidxHost[:nQ], sl)
		} else {
			gpu.CopyToDeviceAsync(sc.stream, sl.qbuf, 0, b.sigs, sl)
		}
	}
	// settleWin resolves the window pins/pending states exactly once, in
	// the first error-consuming callback of the batch — by which point
	// the kernel has provably finished (FIFO order) and the fate of the
	// fills is known.
	settleWin := func(failed bool) {
		if useWin {
			win.settle(sl, failed)
		}
	}
	// complete is the batch's final stream callback: it consumes the
	// result-transfer segment's error, takes the outcome staged on the
	// slot by the header callback, releases the slot, and routes to the
	// reduce stage or the fault machinery. Every terminal path of the
	// attempt chain runs through here exactly once (except the ablation
	// paths, which complete inside their single callback).
	complete := func(opErr error) {
		res, fault := sl.res, sl.fault
		sl.res, sl.fault = nil, nil
		if fault != nil {
			release()
			e.batchFault(idx, b, dev, attempt, hedge, traced, fault)
			return
		}
		if opErr != nil {
			if res != nil {
				e.pools.putResult(res)
			}
			release()
			e.batchFault(idx, b, dev, attempt, hedge, traced, opErr)
			return
		}
		e.batchOK(dev, b, hedge)
		release()
		e.deliverResult(b, res, hedge)
		e.batchUnref(b)
		idx.dispatching.Done()
	}

	if e.cfg.SplitOutputLayout {
		// Ablation: two separate id arrays, two result copies.
		var kernel gpu.KernelFunc
		if sliced {
			kernel = slicedSplitMatchKernelAt(grpBuf,
				grpOff, nGroups, globalBase, qsrc, sl.splitQ, sl.splitS,
				e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
				e.partCounters(b.pid), &e.obs.Kernel)
		} else {
			kernel = splitMatchKernelAt(buf, partOff, int(p.n), globalBase,
				qsrc, sl.splitQ, sl.splitS, e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
				e.partCounters(b.pid))
		}
		sc.enqMu.Lock()
		enqueueQueries()
		sc.stream.LaunchZeroedAsync(grid, sl.splitQ, splitHeaderWords, kernel, sl)
		gpu.CopyFromDeviceAsync(sc.stream, sl.splitQ, sl.hdrHost, 0, sl)
		sc.stream.CallbackErr(func(opErr error) {
			settleWin(opErr != nil)
			if opErr != nil {
				sl.fault = opErr
				return
			}
			count, overflow := clampCount(sl.hdrHost[0], sl.hdrHost[1], e.cfg.MaxPairsPerBatch)
			res := e.pools.getResult()
			res.idx, res.batch, res.count, res.overflow = idx, b, count, overflow
			if !overflow {
				res.kind = payloadSplit // payloadCPU (re-run on host) on overflow
			}
			sl.res = res
		})
		// Two exact-size gated copies: the cost the packed layout avoids.
		gpu.CopyFromDeviceGated(sc.stream, sl.splitQ, func() ([]uint32, int) {
			res := sl.res
			if res == nil || res.overflow || res.count == 0 {
				return nil, 0
			}
			res.qIDs = growU32(res.qIDs, res.count)
			return res.qIDs, splitHeaderWords
		}, sl)
		gpu.CopyFromDeviceGated(sc.stream, sl.splitS, func() ([]uint32, int) {
			res := sl.res
			if res == nil || res.overflow || res.count == 0 {
				return nil, 0
			}
			res.sIDs = growU32(res.sIDs, res.count)
			return res.sIDs, 0
		}, sl)
		sc.stream.CallbackErr(complete)
		sc.enqMu.Unlock()
		return
	}

	// Packed layout (§3.3.1). The device-side header reset is fused into
	// the launch (LaunchZeroedAsync — the cudaMemsetAsync that used to be
	// a separate tiny H2D copy now rides in the kernel prologue).
	var kernel gpu.KernelFunc
	if sliced {
		kernel = slicedMatchKernelAt(grpBuf,
			grpOff, nGroups, globalBase, qsrc, sl.hdr, sl.pairs,
			e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
			e.partCounters(b.pid), &e.obs.Kernel)
	} else {
		kernel = matchKernelAt(buf, partOff, int(p.n), globalBase,
			qsrc, sl.hdr, sl.pairs, e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
			e.partCounters(b.pid))
	}

	if e.cfg.SizeThenCopy {
		// Ablation: the naive scheme — copy the 4-byte size, then issue
		// a second exact-size copy synchronously on the executor (an
		// extra paid transfer and an extra synchronization point per
		// batch, and no pipelining while the executor blocks).
		sc.enqMu.Lock()
		enqueueQueries()
		sc.stream.LaunchZeroedAsync(grid, sl.hdr, resHeaderWords, kernel, sl)
		gpu.CopyFromDeviceAsync(sc.stream, sl.hdr, sl.hdrHost, 0, sl)
		sc.stream.CallbackErr(func(opErr error) {
			settleWin(opErr != nil)
			if opErr != nil {
				release()
				e.batchFault(idx, b, dev, attempt, hedge, traced, opErr)
				return
			}
			count, overflow := clampCount(sl.hdrHost[0], sl.hdrHost[1], e.cfg.MaxPairsPerBatch)
			res := e.pools.getResult()
			res.idx, res.batch, res.count, res.overflow = idx, b, count, overflow
			if !overflow {
				res.kind = payloadPacked
			}
			if !overflow && count > 0 {
				res.packed = growBytes(res.packed, ((count+3)/4)*bytesPerGroup)
				if err := gpu.CopyFromDeviceNow(sc.stream, sl.pairs, res.packed, 0, sl); err != nil {
					e.pools.putResult(res)
					release()
					e.batchFault(idx, b, dev, attempt, hedge, traced, err)
					return
				}
			}
			e.batchOK(dev, b, hedge)
			release()
			e.deliverResult(b, res, hedge)
			e.batchUnref(b)
			idx.dispatching.Done()
		})
		sc.enqMu.Unlock()
		return
	}

	// Pipelined double-buffered result transfer (§3.3.2). The header
	// callback reads the device-side length for free and stages the
	// outcome on the slot; the gated copy then resolves its exact-size
	// destination at the FIFO head and transfers asynchronously on the
	// stream. Nothing here blocks the executor, so the next batch's H2D
	// + kernel — already enqueued behind these ops by a rival slot of
	// the same stream — starts the moment the transfer is issued, and
	// depth batches ride the stream in flight at once.
	sc.enqMu.Lock()
	enqueueQueries()
	sc.stream.LaunchZeroedAsync(grid, sl.hdr, resHeaderWords, kernel, sl)
	sc.stream.CallbackErr(func(opErr error) {
		settleWin(opErr != nil)
		if opErr != nil {
			sl.fault = opErr
			return
		}
		rawCount := atomic.LoadUint32(&sl.hdr.Data()[0])
		rawOver := atomic.LoadUint32(&sl.hdr.Data()[1])
		count, overflow := clampCount(rawCount, rawOver, e.cfg.MaxPairsPerBatch)
		res := e.pools.getResult()
		res.idx, res.batch, res.count, res.overflow = idx, b, count, overflow
		if !overflow {
			res.kind = payloadPacked
		}
		sl.res = res
	})
	gpu.CopyFromDeviceGated(sc.stream, sl.pairs, func() ([]byte, int) {
		res := sl.res
		if res == nil || res.overflow || res.count == 0 {
			return nil, 0
		}
		res.packed = growBytes(res.packed, ((res.count+3)/4)*bytesPerGroup)
		return res.packed, 0
	}, sl)
	sc.stream.CallbackErr(complete)
	sc.enqMu.Unlock()
}

// batchOK records a successful GPU attempt for the dispatching stream's
// device, resetting its circuit breaker (and completing a recovery probe
// when the device was quarantined). Primary attempts also feed the
// device's batch service-time distribution, from which the percentile
// hedge mode derives its straggler budget; hedge attempts are excluded
// so the budget tracks the unhedged baseline.
func (e *Engine) batchOK(dev int, b *openBatch, hedge bool) {
	e.recordDeviceSuccess(dev)
	if !hedge {
		e.health[dev].svc.ObserveDuration(time.Since(b.dispatched))
	}
}

// batchFault handles a batch whose GPU attempt failed (copy, launch, or
// result-transfer error, including a dead device): instead of panicking,
// the failure is charged to the device's circuit breaker and the batch
// is retried once on a stream avoiding that device, then — on a second
// failure — re-run on the host through the same payloadCPU mechanism as
// a result-buffer overflow, so no submitted query is ever lost. A
// failed hedge attempt just detaches: the primary chain still owns the
// delivery guarantee. The caller has already released the stream; the
// retry runs on a fresh goroutine (inheriting this chain's batch
// reference and dispatching hold) because this method executes on the
// stream's executor goroutine, which must not block on stream
// acquisition.
func (e *Engine) batchFault(idx *index, b *openBatch, dev, attempt int, hedge bool, traced []*obs.Trace, err error) {
	e.obs.Faults.GPUFaults.Add(1)
	e.recordDeviceFailure(dev, err)
	if hedge || b.settled.Load() {
		// Nothing left for this chain to save: a hedge never retries,
		// and a primary whose batch a rival already settled would only
		// burn a retry re-computing a delivered result.
		e.batchUnref(b)
		idx.dispatching.Done()
		return
	}
	for _, tr := range traced {
		tr.Degrade("gpu-fault")
	}
	if attempt == 0 {
		e.obs.Faults.BatchRetries.Add(1)
		go e.gpuDispatchAttempt(idx, b, 1, dev, false, traced)
		return
	}
	e.fallbackCPU(idx, b, traced)
	e.batchUnref(b)
	idx.dispatching.Done()
}

// fallbackCPU re-runs a batch on the host after the GPU path gave up on
// it (device failures, quarantine, no usable stream).
func (e *Engine) fallbackCPU(idx *index, b *openBatch, traced []*obs.Trace) {
	e.obs.Faults.CPUFallbacks.Add(1)
	e.logger().Debug("batch falling back to CPU",
		"partition", b.pid, "queries", len(b.queries))
	for _, tr := range traced {
		tr.Degrade("cpu-fallback")
	}
	e.cpuDispatch(idx, b, false)
}

// tagsContained reports whether every stored tag is present in the query
// tag set. Entries stored without tags (AddSignature) cannot be verified
// and are accepted.
func tagsContained(tags []string, qset map[string]struct{}) bool {
	if tags == nil {
		return true
	}
	for _, t := range tags {
		if _, ok := qset[t]; !ok {
			return false
		}
	}
	return true
}

// clampCount interprets the kernel's pair counter and overflow flag.
func clampCount(raw, overflowFlag uint32, maxPairs int) (int, bool) {
	if overflowFlag != 0 || int(raw) > maxPairs {
		return 0, true
	}
	return int(raw), false
}

// reduceWorker implements the key lookup/reduce stage (§3.4): decode
// (query, set) pairs, look up the keys of each set, and append them to
// the owning query, completing queries whose last batch this was.
func (e *Engine) reduceWorker() {
	defer e.reduceWg.Done()
	pprof.Do(context.Background(), pprof.Labels("stage", "reduce"), func(context.Context) {
		for res := range e.reduceCh {
			e.reduceOne(res)
		}
	})
}

// observeGPUOp is the per-stream OnOp observer: it feeds the completed
// device operation into the op-kind histograms and attaches a span to
// every sampled trace of the issuing batch. With pipelined dispatch a
// stream interleaves ops of several batches, so the issuing slot rides
// on the op's attribution tag rather than on per-stream state. Runs on
// the stream's executor goroutine.
func (e *Engine) observeGPUOp(r gpu.OpRecord) {
	if !e.obs.On {
		return
	}
	if h := e.obs.GPUOpHist(r.KindName()); h != nil {
		h.Observe(r.Wait(), r.Service())
	}
	sl, _ := r.Tag.(*streamSlot)
	if sl == nil {
		return
	}
	for _, tr := range sl.traced {
		n := r.Bytes
		if r.Kind == gpu.OpKernel {
			n = int64(r.Blocks)
		}
		tr.Span(r.KindName(), obs.StageSubsetMatch, r.Enqueue, r.Wait(), r.Service(),
			-1, r.Device, r.Stream, n)
	}
}

func (e *Engine) reduceOne(res *batchResult) {
	idx := res.idx
	b := res.batch
	p := &idx.parts[b.pid]
	t0 := time.Now()
	matchDur := t0.Sub(b.dispatched)
	e.matchNs.Add(int64(matchDur))
	if e.obs.On {
		e.obs.SubsetMatch.ObserveDuration(matchDur)
	}
	defer func() {
		reduceDur := time.Since(t0)
		e.reduceNs.Add(int64(reduceDur))
		if e.obs.On {
			e.obs.Reduce.ObserveDuration(reduceDur)
		}
	}()

	// Batch-local reduce: keys accumulate lock-free in per-query-slot
	// scratch (query ids are dense uint8 batch indices), then flush to
	// each touched query under ONE lock acquisition per (query, batch)
	// — not one per (query, set) pair. With selective queries matching
	// hundreds of sets in a partition, per-pair locking made the query
	// mutex the reduce stage's contention point.
	sc := e.pools.getScratch(len(b.queries))
	// Live tombstones from the delta overlay suppress removed keys in
	// the batch output; the fast path (no tombstones pending) is one
	// atomic load. The overlay read lock, when taken, is released right
	// after the payload decode below — before any query completes.
	tombs := e.tombsForReduce()
	patched := idx.patched
	if len(patched) == 0 {
		patched = nil // skip the per-pair probe entirely on a flat CSR
	}
	var nPairs int64 // accumulated locally; one atomic add per batch
	visit := func(qi uint8, setID uint32) {
		nPairs++
		lo, hi := idx.keyOff[setID], idx.keyOff[setID+1]
		rowKeys := idx.keys[lo:hi]
		exact := idx.keyTags != nil && b.queries[qi].tags != nil
		var rowTags [][]string
		if exact {
			rowTags = idx.keyTags[lo:hi]
		}
		if patched != nil {
			// Rows changed by incremental folds override the CSR.
			if pe, ok := patched[setID]; ok {
				rowKeys, rowTags = pe.keys, pe.tags
			}
		}
		ks := sc.keys[qi]
		if tombs == nil && !exact {
			ks = append(ks, rowKeys...)
		} else {
			// Exact verification (§3) — dropping Bloom false positives by
			// re-checking the stored tags against the query's tag set
			// (immutable after submit, so no lock needed here) — and
			// tombstone suppression share the per-entry walk.
			for j := range rowKeys {
				if tombs != nil && e.tombSuppressed(idx.sets[setID], rowKeys, j, tombs) {
					continue
				}
				if exact && !tagsContained(rowTags[j], b.queries[qi].tags) {
					continue
				}
				ks = append(ks, rowKeys[j])
			}
		}
		if len(ks) > 0 && len(sc.keys[qi]) == 0 {
			sc.touched = append(sc.touched, qi)
		}
		sc.keys[qi] = ks
	}

	pc := e.partCounters(b.pid)
	switch res.kind {
	case payloadCPU:
		// GPU result buffer overflowed (or CPU-only mode): run the
		// batch's subset match on the host for correctness.
		if res.overflow {
			e.overflows.Add(1)
			if pc != nil {
				pc.Overflows.Add(1)
			}
		}
		if !e.cfg.ScalarKernel && idx.groups != nil {
			// Host-side bit-sliced match: same flavor as the device
			// kernel, so counters and parity hold across fallbacks.
			nG := (int(p.n) + 63) / 64
			e.obs.Kernel.SlicedBatches.Add(1)
			cpuMatchBatchSliced(idx.groups[p.grpOff:int(p.grpOff)+nG], int(p.off),
				b.sigs, !e.cfg.DisablePrefilter, pc, &e.obs.Kernel, visit)
		} else {
			sets := idx.sets[p.off : p.off+p.n]
			e.obs.Kernel.ScalarBatches.Add(1)
			sc.qIdx = cpuMatchBatch(sets, int(p.off), b.sigs, e.cfg.BlockDim,
				!e.cfg.DisablePrefilter, pc, sc.qIdx, visit)
		}
	case payloadPacked:
		decodePacked(res.packed, res.count, visit)
	case payloadSplit:
		for i := 0; i < res.count; i++ {
			visit(uint8(res.qIDs[i]), res.sIDs[i])
		}
	}
	if tombs != nil {
		e.delta.mu.RUnlock()
	}

	// Flush the scratch: one lock acquisition per touched query.
	for _, qi := range sc.touched {
		q := b.queries[qi]
		ks := sc.keys[qi]
		q.mu.Lock()
		q.keys = append(q.keys, ks...)
		q.mu.Unlock()
		sc.keys[qi] = ks[:0]
	}
	e.queryLockAcqs.Add(int64(len(sc.touched)))
	sc.touched = sc.touched[:0]
	e.pools.putScratch(sc)

	e.pairs.Add(nPairs)
	if pc != nil {
		pc.Pairs.Add(nPairs)
	}
	if e.obs.Tracing() {
		reduceSoFar := time.Since(t0)
		for _, q := range b.queries {
			if q.trace != nil {
				q.trace.Event("batch-done", int32(b.pid), nPairs)
				// Spans must attach before finish() below publishes the
				// trace; the reduce span therefore measures up to here,
				// missing only the scratch-recycle tail.
				q.trace.Span(obs.StageSubsetMatch, "query", b.dispatched, 0, matchDur,
					int32(b.pid), "", -1, nPairs)
				q.trace.Span(obs.StageReduce, "query", t0, 0, reduceSoFar,
					int32(b.pid), "", -1, nPairs)
			}
		}
	}

	for _, q := range b.queries {
		q.finish(e, 1)
	}
	// Drop the reduce-stage hold; a losing hedge-race attempt may still
	// be running, in which case the last detacher recycles the batch.
	e.batchUnref(b)
	e.pools.putResult(res)
	e.inflightBatches.Add(-1)
	e.notifyProgress()
}
