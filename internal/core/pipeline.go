package core

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// query is one match operation flowing through the pipeline.
type query struct {
	sig    bitvec.Vector
	unique bool
	start  time.Time
	idx    *index

	// tags holds the query's tag set in ExactVerify mode; nil queries
	// (submitted by signature) skip exact verification.
	tags map[string]struct{}

	// pending counts the batches this query still has in flight, plus a
	// +1 guard held during pre-processing so the query cannot complete
	// while it is still being routed.
	pending atomic.Int32

	mu   sync.Mutex
	keys []Key

	done func(MatchResult)

	// trace is non-nil for the sampled 1-in-N queries when tracing is
	// configured; all event methods are nil-safe.
	trace *obs.Trace
}

// finish decrements the outstanding-batch counter and runs the merge
// stage (§3.4) when it reaches zero.
func (q *query) finish(e *Engine, n int32) {
	if q.pending.Add(-n) != 0 {
		return
	}
	q.mu.Lock()
	keys := q.keys
	q.keys = nil
	q.mu.Unlock()
	if q.unique {
		if e.obs.On {
			t0 := time.Now()
			keys = dedupKeys(keys)
			e.obs.Merge.ObserveDuration(time.Since(t0))
		} else {
			keys = dedupKeys(keys)
		}
	}
	e.keysDelivered.Add(int64(len(keys)))
	e.completed.Add(1)
	latency := time.Since(q.start)
	if e.obs.On {
		e.obs.E2E.ObserveDuration(latency)
	}
	q.trace.Done(int64(len(keys)))
	if q.done != nil {
		q.done(MatchResult{Keys: keys, Latency: latency})
	}
	e.notifyProgress()
}

// dedupKeys sorts and compacts a key slice in place (merge stage of
// match-unique).
func dedupKeys(keys []Key) []Key {
	if len(keys) < 2 {
		return keys
	}
	sortKeys(keys)
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

func sortKeys(keys []Key) {
	// Insertion sort for the short slices typical of selective queries;
	// stdlib pdqsort for large fan-out results.
	if len(keys) < 24 {
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		return
	}
	slices.Sort(keys)
}

// openBatch is a per-partition batch of queries being filled by the
// pre-process stage.
type openBatch struct {
	pid        uint32
	queries    []*query
	sigs       []bitvec.Vector
	created    time.Time
	dispatched time.Time
}

// streamCtx bundles a GPU stream with its per-stream device buffers: the
// query batch buffer, the result header (pair counter + overflow flag),
// the packed pair buffer, and — for the split-layout ablation — the two
// separate id arrays.
type streamCtx struct {
	dev    int
	stream *gpu.Stream
	qbuf   *gpu.Buffer[bitvec.Vector]
	hdr    *gpu.Buffer[uint32]
	pairs  *gpu.Buffer[byte]
	splitQ *gpu.Buffer[uint32]
	splitS *gpu.Buffer[uint32]
}

func (sc *streamCtx) free() {
	sc.qbuf.Free()
	sc.hdr.Free()
	sc.pairs.Free()
	sc.splitQ.Free()
	sc.splitS.Free()
}

// batchResult carries a completed subset-match batch to the key-lookup
// stage. Exactly one of pairsPacked / (qIDs,sIDs) / overflow is the
// payload source.
type batchResult struct {
	idx      *index
	batch    *openBatch
	count    int
	overflow bool
	packed   []byte   // packed layout payload
	qIDs     []uint32 // split layout payload
	sIDs     []uint32
}

// Submit enqueues a match(q) operation; done is invoked exactly once with
// the multiset of matching keys. Returns ErrClosed after Close.
func (e *Engine) Submit(tags []string, done func(MatchResult)) error {
	return e.submit(bloom.Signature(tags), e.tagSet(tags), false, done)
}

// SubmitUnique enqueues a match-unique(q) operation.
func (e *Engine) SubmitUnique(tags []string, done func(MatchResult)) error {
	return e.submit(bloom.Signature(tags), e.tagSet(tags), true, done)
}

// SubmitSignature enqueues a match on a pre-computed signature. In
// ExactVerify mode such queries cannot be verified and behave as plain
// Bloom matches.
func (e *Engine) SubmitSignature(sig bitvec.Vector, unique bool, done func(MatchResult)) error {
	return e.submit(sig, nil, unique, done)
}

// tagSet builds the exact-verification set for a query, or nil when the
// engine does not verify.
func (e *Engine) tagSet(tags []string) map[string]struct{} {
	if !e.cfg.ExactVerify {
		return nil
	}
	set := make(map[string]struct{}, len(tags))
	for _, t := range tags {
		set[t] = struct{}{}
	}
	return set
}

func (e *Engine) submit(sig bitvec.Vector, tags map[string]struct{}, unique bool, done func(MatchResult)) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.submitMu.RLock()
	idx := e.idx.Load()
	q := &query{sig: sig, tags: tags, unique: unique, start: time.Now(), idx: idx, done: done}
	q.trace = e.obs.Tracer.Maybe()
	q.pending.Store(1) // pre-processing guard
	e.submitted.Add(1)
	e.inputCh <- q
	e.submitMu.RUnlock()
	return nil
}

// Match performs a blocking match(q) and returns the multiset of keys of
// all indexed sets that are subsets of the query. It flushes open batches
// after submitting, so it completes promptly even without traffic; use
// Submit for maximal throughput.
func (e *Engine) Match(tags []string) ([]Key, error) {
	return e.blockingMatch(bloom.Signature(tags), e.tagSet(tags), false)
}

// MatchUnique performs a blocking match-unique(q): the deduplicated set
// of keys associated with at least one matching set.
func (e *Engine) MatchUnique(tags []string) ([]Key, error) {
	return e.blockingMatch(bloom.Signature(tags), e.tagSet(tags), true)
}

// MatchSignature is Match on a pre-computed signature.
func (e *Engine) MatchSignature(sig bitvec.Vector, unique bool) ([]Key, error) {
	return e.blockingMatch(sig, nil, unique)
}

func (e *Engine) blockingMatch(sig bitvec.Vector, tags map[string]struct{}, unique bool) ([]Key, error) {
	ch := make(chan MatchResult, 1)
	if err := e.submit(sig, tags, unique, func(r MatchResult) { ch <- r }); err != nil {
		return nil, err
	}
	// Nudge the pipeline until the result arrives: without background
	// traffic the query's batches would otherwise wait for their flush
	// timeout, and a single flush could race ahead of the pre-process
	// stage enqueuing the query.
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case r := <-ch:
			return r.Keys, nil
		case <-tick.C:
			e.flushAll(e.idx.Load())
		}
	}
}

// preprocessWorker implements the pre-process stage (Algorithm 2): find
// the partitions whose mask is a subset of the query and enqueue the
// query into their batches.
func (e *Engine) preprocessWorker() {
	defer e.workerWg.Done()
	var pids []uint32
	for q := range e.inputCh {
		idx := q.idx
		var spent time.Duration // this query's routing time, dispatch excluded
		t0 := time.Now()
		pids = idx.pt.lookup(q.sig, pids[:0])
		pids = append(pids, idx.maskless...)
		e.partsSearched.Add(int64(len(pids)))
		for _, pid := range pids {
			q.pending.Add(1)
			if full := e.appendToBatch(idx, pid, q); full != nil {
				spent += time.Since(t0)
				e.dispatch(idx, full, dispatchFull)
				t0 = time.Now()
			}
		}
		spent += time.Since(t0)
		e.preprocessNs.Add(int64(spent))
		if e.obs.On {
			e.obs.Preprocess.ObserveDuration(spent)
		}
		q.trace.Event(obs.StagePreprocess, -1, int64(len(pids)))
		// Drop the pre-processing guard; completes the query now if it
		// matched no partitions (or they all finished already).
		q.finish(e, 1)
		e.notifyProgress()
	}
}

// appendToBatch adds the query to the partition's open batch and returns
// the batch if it just became full.
func (e *Engine) appendToBatch(idx *index, pid uint32, q *query) *openBatch {
	p := &idx.parts[pid]
	idx.locks[pid].Lock()
	if p.batch == nil {
		p.batch = &openBatch{
			pid:     pid,
			queries: make([]*query, 0, e.cfg.BatchSize),
			sigs:    make([]bitvec.Vector, 0, e.cfg.BatchSize),
			created: time.Now(),
		}
	}
	b := p.batch
	b.queries = append(b.queries, q)
	b.sigs = append(b.sigs, q.sig)
	fill := len(b.queries)
	full := fill >= e.cfg.BatchSize
	if full {
		p.batch = nil
	}
	idx.locks[pid].Unlock()
	if c := e.partCounters(pid); c != nil {
		c.QueriesRouted.Add(1)
	}
	if q.trace != nil {
		q.trace.Event("batch", int32(pid), int64(fill))
	}
	if full {
		return b
	}
	return nil
}

// flushAll dispatches every open batch regardless of fill level.
func (e *Engine) flushAll(idx *index) {
	for pid := range idx.parts {
		p := &idx.parts[pid]
		idx.locks[pid].Lock()
		b := p.batch
		p.batch = nil
		idx.locks[pid].Unlock()
		if b != nil {
			e.dispatch(idx, b, dispatchFlush)
		}
	}
}

// flusher enforces the batch timeout (§3): partially filled batches are
// pushed through the pipeline once they age past BatchTimeout.
func (e *Engine) flusher() {
	defer close(e.flushDone)
	tick := e.cfg.BatchTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case now := <-t.C:
			idx := e.idx.Load()
			for pid := range idx.parts {
				p := &idx.parts[pid]
				idx.locks[pid].Lock()
				var b *openBatch
				if p.batch != nil && now.Sub(p.batch.created) >= e.cfg.BatchTimeout {
					b = p.batch
					p.batch = nil
				}
				idx.locks[pid].Unlock()
				if b != nil {
					e.batchesTimedOut.Add(1)
					e.dispatch(idx, b, dispatchTimeout)
				}
			}
		}
	}
}

// dispatchReason records why a batch left the pre-process stage, for the
// per-partition fullness-vs-timeout breakdown.
type dispatchReason uint8

const (
	dispatchFull dispatchReason = iota
	dispatchTimeout
	dispatchFlush
)

// dispatch runs the subset-match stage for one batch: on a GPU stream
// when devices are configured, otherwise synchronously on the calling CPU
// thread (CPU-only TagMatch).
func (e *Engine) dispatch(idx *index, b *openBatch, reason dispatchReason) {
	e.batches.Add(1)
	e.inflightBatches.Add(1)
	if e.obs.On {
		e.obs.BatchOccupancy.Observe(int64(len(b.queries)))
		if c := e.obs.Parts.Get(b.pid); c != nil {
			switch reason {
			case dispatchFull:
				c.BatchesFull.Add(1)
			case dispatchTimeout:
				c.BatchesTimedOut.Add(1)
			default:
				c.BatchesFlushed.Add(1)
			}
		}
	}
	b.dispatched = time.Now()
	if len(idx.devices) == 0 {
		e.cpuDispatch(idx, b)
		return
	}
	e.gpuDispatch(idx, b)
}

// cpuDispatch executes the batch's subset match inline and forwards the
// result to the reduce stage.
func (e *Engine) cpuDispatch(idx *index, b *openBatch) {
	res := &batchResult{idx: idx, batch: b, overflow: true} // reduce runs the CPU match
	e.reduceCh <- res
}

// gpuDispatch issues the copy/launch/copy sequence on an acquired stream
// (§3.3.2). All operations are asynchronous; the final stream callback
// hands the results to the reduce stage and releases the stream.
func (e *Engine) gpuDispatch(idx *index, b *openBatch) {
	p := &idx.parts[b.pid]
	var sc *streamCtx
	if e.cfg.Replicate {
		sc = <-idx.streams
	} else {
		sc = <-idx.devStreams[p.dev]
	}
	dev := sc.dev
	buf := idx.devBufs[dev]
	partOff := int(p.off)
	if !e.cfg.Replicate {
		partOff = int(p.devOff)
	}
	globalBase := int(p.off)
	nQ := len(b.sigs)
	grid := gpu.Grid{
		Blocks:   (int(p.n) + e.cfg.BlockDim - 1) / e.cfg.BlockDim,
		BlockDim: e.cfg.BlockDim,
	}

	release := func() {
		if e.cfg.Replicate {
			idx.streams <- sc
		} else {
			idx.devStreams[dev] <- sc
		}
	}

	if e.cfg.SplitOutputLayout {
		// Ablation: two separate id arrays, two result copies.
		gpu.CopyToDeviceAsync(sc.stream, sc.splitQ, 0, []uint32{0, 0})
		gpu.CopyToDeviceAsync(sc.stream, sc.qbuf, 0, b.sigs)
		sc.stream.LaunchAsync(grid, splitMatchKernelAt(buf, partOff, int(p.n), globalBase,
			sc.qbuf, nQ, sc.splitQ, sc.splitS, e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
			e.partCounters(b.pid)))
		hdrHost := make([]uint32, splitHeaderWords)
		gpu.CopyFromDeviceAsync(sc.stream, sc.splitQ, hdrHost, 0)
		sc.stream.Callback(func() {
			count, overflow := clampCount(hdrHost[0], hdrHost[1], e.cfg.MaxPairsPerBatch)
			res := &batchResult{idx: idx, batch: b, count: count, overflow: overflow}
			if !overflow && count > 0 {
				res.qIDs = make([]uint32, count)
				res.sIDs = make([]uint32, count)
				// Two exact-size copies: the cost the packed layout avoids.
				if err := sc.splitQ.CopyFromDevice(res.qIDs, splitHeaderWords); err != nil {
					panic(err)
				}
				if err := sc.splitS.CopyFromDevice(res.sIDs, 0); err != nil {
					panic(err)
				}
			}
			release()
			e.reduceCh <- res
		})
		return
	}

	// Packed layout (§3.3.1). Zero the device-side header (the analogue
	// of cudaMemsetAsync), copy the batch, launch, then transfer results.
	gpu.CopyToDeviceAsync(sc.stream, sc.hdr, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(sc.stream, sc.qbuf, 0, b.sigs)
	sc.stream.LaunchAsync(grid, matchKernelAt(buf, partOff, int(p.n), globalBase,
		sc.qbuf, nQ, sc.hdr, sc.pairs, e.cfg.MaxPairsPerBatch, !e.cfg.DisablePrefilter,
		e.partCounters(b.pid)))

	if e.cfg.SizeThenCopy {
		// Ablation: the naive scheme — copy the 4-byte size, then issue
		// a second exact-size copy (an extra paid transfer and an extra
		// synchronization point per batch).
		hdrHost := make([]uint32, resHeaderWords)
		gpu.CopyFromDeviceAsync(sc.stream, sc.hdr, hdrHost, 0)
		sc.stream.Callback(func() {
			count, overflow := clampCount(hdrHost[0], hdrHost[1], e.cfg.MaxPairsPerBatch)
			res := &batchResult{idx: idx, batch: b, count: count, overflow: overflow}
			if !overflow && count > 0 {
				res.packed = make([]byte, ((count+3)/4)*20)
				if err := sc.pairs.CopyFromDevice(res.packed, 0); err != nil {
					panic(err)
				}
			}
			release()
			e.reduceCh <- res
		})
		return
	}

	// Double-buffered result transfer (§3.3.2): the paper interleaves
	// even/odd buffers so each cycle issues exactly one minimal-size
	// result copy, the size having been learned from the previous
	// cycle's transfer. In the simulator the stream callback reads the
	// device-side length for free — the same effect (no extra paid
	// transfer, no extra round trip) without the cycle bookkeeping — and
	// then issues the single exact-size copy of header + pairs.
	sc.stream.Callback(func() {
		rawCount := atomic.LoadUint32(&sc.hdr.Data()[0])
		rawOver := atomic.LoadUint32(&sc.hdr.Data()[1])
		count, overflow := clampCount(rawCount, rawOver, e.cfg.MaxPairsPerBatch)
		res := &batchResult{idx: idx, batch: b, count: count, overflow: overflow}
		if !overflow && count > 0 {
			res.packed = make([]byte, ((count+3)/4)*20)
			if err := sc.pairs.CopyFromDevice(res.packed, 0); err != nil {
				panic(err)
			}
		}
		release()
		e.reduceCh <- res
	})
}

// tagsContained reports whether every stored tag is present in the query
// tag set. Entries stored without tags (AddSignature) cannot be verified
// and are accepted.
func tagsContained(tags []string, qset map[string]struct{}) bool {
	if tags == nil {
		return true
	}
	for _, t := range tags {
		if _, ok := qset[t]; !ok {
			return false
		}
	}
	return true
}

// clampCount interprets the kernel's pair counter and overflow flag.
func clampCount(raw, overflowFlag uint32, maxPairs int) (int, bool) {
	if overflowFlag != 0 || int(raw) > maxPairs {
		return 0, true
	}
	return int(raw), false
}

// reduceWorker implements the key lookup/reduce stage (§3.4): decode
// (query, set) pairs, look up the keys of each set, and append them to
// the owning query, completing queries whose last batch this was.
func (e *Engine) reduceWorker() {
	defer e.reduceWg.Done()
	for res := range e.reduceCh {
		e.reduceOne(res)
	}
}

func (e *Engine) reduceOne(res *batchResult) {
	idx := res.idx
	b := res.batch
	p := &idx.parts[b.pid]
	t0 := time.Now()
	matchDur := t0.Sub(b.dispatched)
	e.matchNs.Add(int64(matchDur))
	if e.obs.On {
		e.obs.SubsetMatch.ObserveDuration(matchDur)
	}
	defer func() {
		reduceDur := time.Since(t0)
		e.reduceNs.Add(int64(reduceDur))
		if e.obs.On {
			e.obs.Reduce.ObserveDuration(reduceDur)
		}
	}()

	var nPairs int64 // accumulated locally; one atomic add per batch
	visit := func(qi uint8, setID uint32) {
		nPairs++
		q := b.queries[qi]
		lo, hi := idx.keyOff[setID], idx.keyOff[setID+1]
		q.mu.Lock()
		if q.tags != nil && idx.keyTags != nil {
			// Exact verification (§3): drop Bloom false positives by
			// re-checking the stored tags against the query's tag set.
			for j := lo; j < hi; j++ {
				if tagsContained(idx.keyTags[j], q.tags) {
					q.keys = append(q.keys, idx.keys[j])
				}
			}
		} else {
			q.keys = append(q.keys, idx.keys[lo:hi]...)
		}
		q.mu.Unlock()
	}

	pc := e.partCounters(b.pid)
	switch {
	case res.overflow:
		// GPU result buffer overflowed (or CPU-only mode): run the
		// batch's subset match on the host for correctness.
		if len(idx.devices) > 0 {
			e.overflows.Add(1)
			if pc != nil {
				pc.Overflows.Add(1)
			}
		}
		sets := idx.sets[p.off : p.off+p.n]
		cpuMatchBatch(sets, int(p.off), b.sigs, e.cfg.BlockDim, !e.cfg.DisablePrefilter, pc, visit)
	case res.packed != nil:
		decodePacked(res.packed, res.count, visit)
	case res.qIDs != nil:
		for i := 0; i < res.count; i++ {
			visit(uint8(res.qIDs[i]), res.sIDs[i])
		}
	}
	e.pairs.Add(nPairs)
	if pc != nil {
		pc.Pairs.Add(nPairs)
	}
	if e.obs.Tracing() {
		for _, q := range b.queries {
			if q.trace != nil {
				q.trace.Event("batch-done", int32(b.pid), nPairs)
			}
		}
	}

	for _, q := range b.queries {
		q.finish(e, 1)
	}
	e.inflightBatches.Add(-1)
	e.notifyProgress()
}
