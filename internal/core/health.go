package core

import (
	"errors"
	"sync/atomic"
	"time"

	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// deviceHealth is the per-device circuit breaker of the fault-tolerant
// dispatch path. A device accumulating Config.FailureThreshold
// consecutive failed batch attempts is quarantined: its streams are
// skipped by stream acquisition (batches re-route to surviving devices
// in Replicate mode, to the CPU otherwise) until a recovery probe — one
// batch let through after an exponentially backed-off delay — succeeds.
//
// All fields are atomics: health is consulted on the dispatch hot path
// and updated from stream-executor callbacks, with no lock ordering
// constraints against the rest of the engine.
type deviceHealth struct {
	consecFails atomic.Int32
	quarantined atomic.Bool

	// probing marks an in-flight recovery probe; the CAS in deviceUsable
	// elects exactly one batch as the probe, and the probe's outcome
	// (recordDeviceSuccess / recordDeviceFailure) clears it.
	probing atomic.Bool

	probeAfter atomic.Int64 // unix nanoseconds of the next probe window
	backoff    atomic.Int64 // current probe backoff, nanoseconds

	// svc tracks the device's batch service time (dispatch to successful
	// completion, primary attempts only) for the HedgePercentile
	// straggler budget. Lock-free and always on: a single histogram
	// observation per successful batch is noise next to the device work.
	svc obs.Histogram
}

// quarantineBackoffCap bounds the exponential probe backoff at this
// multiple of Config.QuarantineBackoff.
const quarantineBackoffCap = 64

func (e *Engine) initHealth() {
	e.health = make([]deviceHealth, len(e.cfg.Devices))
	for i := range e.health {
		e.health[i].backoff.Store(int64(e.cfg.QuarantineBackoff))
	}
}

// deviceUsable reports whether a batch may be dispatched to the device.
// For a quarantined device whose backoff has elapsed it additionally
// elects the caller as the recovery probe; a caller seeing true MUST
// dispatch to the device (the attempt's outcome resolves the probe).
func (e *Engine) deviceUsable(dev int) bool {
	h := &e.health[dev]
	if !h.quarantined.Load() {
		return true
	}
	if time.Now().UnixNano() < h.probeAfter.Load() {
		return false
	}
	if h.probing.CompareAndSwap(false, true) {
		e.obs.Faults.Probes.Add(1)
		return true
	}
	return false // another batch is already probing
}

// recordDeviceSuccess resets the device's failure streak and completes a
// successful recovery probe, returning the device to rotation.
func (e *Engine) recordDeviceSuccess(dev int) {
	h := &e.health[dev]
	h.consecFails.Store(0)
	if h.quarantined.Load() && h.probing.CompareAndSwap(true, false) {
		h.quarantined.Store(false)
		h.backoff.Store(int64(e.cfg.QuarantineBackoff))
		e.obs.Faults.Recoveries.Add(1)
		e.logger().Info("device recovered from quarantine",
			"device", e.deviceName(dev))
	}
}

// recordDeviceFailure advances the circuit breaker after a failed batch
// attempt: quarantining the device at the consecutive-failure threshold,
// or — for a failure while quarantined (the recovery probe, or a
// straggler dispatched before the quarantine) — extending the probe
// backoff exponentially up to quarantineBackoffCap times the base.
// err is the batch attempt's failure, logged so operators see which
// device is misbehaving and why, not just a counter moving.
func (e *Engine) recordDeviceFailure(dev int, err error) {
	h := &e.health[dev]
	if errors.Is(err, gpu.ErrDeviceClosed) {
		// ErrDeviceClosed outside shutdown is the simulator's device
		// death (Kill); every subsequent op fails the same way.
		e.logger().Error("device lost", "device", e.deviceName(dev), "err", err)
	} else {
		e.logger().Debug("device batch attempt failed",
			"device", e.deviceName(dev), "err", err)
	}
	if h.quarantined.Load() {
		h.probing.Store(false)
		b := 2 * h.backoff.Load()
		if max := quarantineBackoffCap * int64(e.cfg.QuarantineBackoff); b > max {
			b = max
		}
		h.backoff.Store(b)
		h.probeAfter.Store(time.Now().UnixNano() + b)
		e.logger().Debug("quarantine probe failed, extending backoff",
			"device", e.deviceName(dev), "backoff", time.Duration(b), "err", err)
		return
	}
	if fails := h.consecFails.Add(1); fails >= int32(e.cfg.FailureThreshold) {
		if h.quarantined.CompareAndSwap(false, true) {
			h.probing.Store(false)
			h.probeAfter.Store(time.Now().UnixNano() + h.backoff.Load())
			e.obs.Faults.Quarantines.Add(1)
			e.logger().Warn("device quarantined",
				"device", e.deviceName(dev),
				"consecutive_failures", fails,
				"probe_backoff", time.Duration(h.backoff.Load()),
				"err", err)
		}
	}
}

// deviceName resolves a device index to its name for log records.
func (e *Engine) deviceName(dev int) string {
	if dev < 0 || dev >= len(e.cfg.Devices) {
		return "?"
	}
	return e.cfg.Devices[dev].Name()
}

// DeviceQuarantined reports whether device dev (an index into
// Config.Devices) is currently quarantined.
func (e *Engine) DeviceQuarantined(dev int) bool {
	return e.health[dev].quarantined.Load()
}
