package core

import (
	"math/bits"
	"sort"

	"tagmatch/internal/bitvec"
)

// partitionSpec is the output of the balanced partitioner: a mask and the
// indices (into the caller's set slice) of the partition members.
type partitionSpec struct {
	mask    bitvec.Vector
	members []int32
}

// balancedPartition implements Algorithm 1 of the paper: recursively split
// the database on the unused bit whose one-frequency is closest to 50%
// until every partition has at most maxP members and a non-empty mask.
//
// Splitting always consumes the pivot bit, so the recursion terminates
// even on pathological inputs; if every bit has been used and a partition
// is still oversized or mask-less (possible only with near-duplicate
// signatures), the partition is accepted as is.
func balancedPartition(sets []bitvec.Vector, maxP int) []partitionSpec {
	if len(sets) == 0 {
		return nil
	}
	if maxP < 1 {
		maxP = 1
	}
	all := make([]int32, len(sets))
	for i := range all {
		all[i] = int32(i)
	}

	type work struct {
		mask    bitvec.Vector
		used    bitvec.Vector
		members []int32
	}
	queue := []work{{members: all}}
	var out []partitionSpec

	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if len(w.members) <= maxP && !w.mask.IsZero() {
			out = append(out, partitionSpec{mask: w.mask, members: w.members})
			continue
		}

		pivot := pickPivot(sets, w.members, w.used)
		if pivot < 0 {
			// All 192 bits consumed; accept the remainder.
			out = append(out, partitionSpec{mask: w.mask, members: w.members})
			continue
		}
		w.used.Set(pivot)

		// Split in place: members with pivot bit zero first.
		var p0, p1 []int32
		for _, idx := range w.members {
			if sets[idx].Test(pivot) {
				p1 = append(p1, idx)
			} else {
				p0 = append(p0, idx)
			}
		}
		if len(p0) > 0 {
			queue = append(queue, work{mask: w.mask, used: w.used, members: p0})
		}
		if len(p1) > 0 {
			m := w.mask
			m.Set(pivot)
			queue = append(queue, work{mask: m, used: w.used, members: p1})
		}
	}
	return out
}

// pickPivot returns the bit position not in used whose one-frequency over
// the member sets is closest to 50%, or -1 when every bit is used.
// Frequencies of exactly 0 or |members| are deprioritized (they do not
// split the partition) but remain legal: consuming such a bit still makes
// progress because used_bits grows.
func pickPivot(sets []bitvec.Vector, members []int32, used bitvec.Vector) int {
	var freq [bitvec.W]int32
	for _, idx := range members {
		v := sets[idx]
		for b := 0; b < bitvec.Blocks; b++ {
			blk := v[b]
			for blk != 0 {
				// Position of leftmost one-bit within the block.
				i := bits.LeadingZeros64(blk)
				freq[b*64+i]++
				blk &^= 1 << (63 - uint(i))
			}
		}
	}
	n := int32(len(members))
	half := n / 2
	best, bestDist := -1, int32(1<<30)
	var fallback int = -1
	for p := 0; p < bitvec.W; p++ {
		if used.Test(p) {
			continue
		}
		f := freq[p]
		if f == 0 || f == n {
			if fallback < 0 {
				fallback = p
			}
			continue
		}
		d := f - half
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = p, d
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}

// firstFitPartition is the naive alternative used by the partitioning
// ablation: sort all sets lexicographically and cut them into runs of at
// most maxP, with each run's mask being the bitwise intersection of its
// members. Unlike Algorithm 1 the masks are whatever the data happens to
// share — frequently empty — so the partition table prunes poorly.
func firstFitPartition(sets []bitvec.Vector, maxP int) []partitionSpec {
	if len(sets) == 0 {
		return nil
	}
	if maxP < 1 {
		maxP = 1
	}
	order := make([]int32, len(sets))
	for i := range order {
		order[i] = int32(i)
	}
	sortMembersLexicographically(sets, order)
	var out []partitionSpec
	for off := 0; off < len(order); off += maxP {
		end := off + maxP
		if end > len(order) {
			end = len(order)
		}
		members := order[off:end]
		mask := sets[members[0]]
		for _, m := range members[1:] {
			mask = mask.And(sets[m])
		}
		out = append(out, partitionSpec{mask: mask, members: members})
	}
	return out
}

// sortMembersLexicographically orders a partition's members in the
// lexicographic bit order of their signatures so that consecutive sets —
// and therefore the sets of one GPU thread block — share long common
// prefixes, which is what makes the Algorithm 4 pre-filter effective.
func sortMembersLexicographically(sets []bitvec.Vector, members []int32) {
	sort.Slice(members, func(i, j int) bool {
		return bitvec.Less(sets[members[i]], sets[members[j]])
	})
}
