package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tagmatch/internal/bitvec"
)

// Snapshot format (little-endian):
//
//	magic   [8]byte  "TMSNAP01"
//	flags   u32      bit 0: entries carry tags (ExactVerify databases)
//	nSets   u64      number of unique signatures
//	then per unique signature:
//	  sig      [24]byte   big-endian blocks (bitvec encoding)
//	  nEntries u32
//	  per entry:
//	    key   u32
//	    nTags u16        (only when flags bit 0 is set)
//	    per tag: u16 length + bytes
//
// A snapshot captures the logical master database — the durable state of
// the engine — with any staged (unconsolidated) operations applied on
// the fly through a copy-on-write overlay, so a snapshot taken mid-churn
// is exactly what a Consolidate at the same instant would have
// committed. The partitioned index is derived state and is rebuilt by
// Consolidate on load, exactly as the paper's system rebuilds its index
// offline.
var snapshotMagic = [8]byte{'T', 'M', 'S', 'N', 'A', 'P', '0', '1'}

const snapFlagTags = 1 << 0

// ErrPendingOps is retained for callers matching the pre-live-update
// contract.
//
// Deprecated: SaveSnapshot no longer returns it — staged operations are
// now included in the snapshot rather than rejected.
var ErrPendingOps = errors.New("tagmatch: staged operations pending; Consolidate before SaveSnapshot")

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("tagmatch: malformed snapshot")

// SaveSnapshot writes the database to w, staged operations included:
// the stream carries db ⊕ staged, materialized without mutating either,
// so pending ops survive a save/load cycle without requiring a
// Consolidate first.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.stagedMu.Lock()
	defer e.stagedMu.Unlock()
	sigs, entriesBySet := e.snapshotWithPrefix(len(e.staged))

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if e.cfg.ExactVerify {
		flags |= snapFlagTags
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(sigs))); err != nil {
		return err
	}

	var sigBuf []byte
	for si, sig := range sigs {
		entries := entriesBySet[si]
		sigBuf = sig.AppendBinary(sigBuf[:0])
		if _, err := bw.Write(sigBuf); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(entries))); err != nil {
			return err
		}
		for _, en := range entries {
			if err := binary.Write(bw, binary.LittleEndian, uint32(en.key)); err != nil {
				return err
			}
			if flags&snapFlagTags != 0 {
				if len(en.tags) > 0xffff {
					return fmt.Errorf("tagmatch: tag set too large to snapshot (%d tags)", len(en.tags))
				}
				if err := binary.Write(bw, binary.LittleEndian, uint16(len(en.tags))); err != nil {
					return err
				}
				for _, t := range en.tags {
					if len(t) > 0xffff {
						return fmt.Errorf("tagmatch: tag too long to snapshot (%d bytes)", len(t))
					}
					if err := binary.Write(bw, binary.LittleEndian, uint16(len(t))); err != nil {
						return err
					}
					if _, err := bw.WriteString(t); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// LoadSnapshot reads a snapshot into the engine's staging area and
// consolidates. It is intended for freshly created engines; loading into
// a non-empty engine merges the snapshot's associations with existing
// ones. A snapshot written with tags loads into any engine, but exact
// verification only applies if the loading engine has ExactVerify set.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	if e.closed.Load() {
		return ErrClosed
	}
	br := bufio.NewReaderSize(r, 1<<20)

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return fmt.Errorf("%w: reading flags: %v", ErrBadSnapshot, err)
	}
	var nSets uint64
	if err := binary.Read(br, binary.LittleEndian, &nSets); err != nil {
		return fmt.Errorf("%w: reading set count: %v", ErrBadSnapshot, err)
	}

	// Accumulate locally and commit only after the whole stream parses:
	// a malformed snapshot must not leave a partial load staged.
	var ops []stagedOp
	sigBuf := make([]byte, bitvec.Blocks*8)
	for s := uint64(0); s < nSets; s++ {
		if _, err := io.ReadFull(br, sigBuf); err != nil {
			return fmt.Errorf("%w: reading signature %d: %v", ErrBadSnapshot, s, err)
		}
		sig, err := bitvec.FromBinary(sigBuf)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		var nEntries uint32
		if err := binary.Read(br, binary.LittleEndian, &nEntries); err != nil {
			return fmt.Errorf("%w: reading entry count: %v", ErrBadSnapshot, err)
		}
		for i := uint32(0); i < nEntries; i++ {
			var key uint32
			if err := binary.Read(br, binary.LittleEndian, &key); err != nil {
				return fmt.Errorf("%w: reading key: %v", ErrBadSnapshot, err)
			}
			var tags []string
			if flags&snapFlagTags != 0 {
				var nTags uint16
				if err := binary.Read(br, binary.LittleEndian, &nTags); err != nil {
					return fmt.Errorf("%w: reading tag count: %v", ErrBadSnapshot, err)
				}
				if e.cfg.ExactVerify {
					tags = make([]string, nTags)
				}
				for j := 0; j < int(nTags); j++ {
					var tl uint16
					if err := binary.Read(br, binary.LittleEndian, &tl); err != nil {
						return fmt.Errorf("%w: reading tag length: %v", ErrBadSnapshot, err)
					}
					if tags == nil {
						// Tags are only consulted by ExactVerify: skip the
						// bytes instead of materializing millions of
						// short-lived strings on a bulk load.
						if _, err := br.Discard(int(tl)); err != nil {
							return fmt.Errorf("%w: reading tag: %v", ErrBadSnapshot, err)
						}
						continue
					}
					raw := make([]byte, tl)
					if _, err := io.ReadFull(br, raw); err != nil {
						return fmt.Errorf("%w: reading tag: %v", ErrBadSnapshot, err)
					}
					tags[j] = string(raw)
				}
			}
			ops = append(ops, stagedOp{sig: sig, key: Key(key), tags: tags})
		}
	}
	// Splice the parsed ops into the staged log inside the synchronous
	// consolidation's Phase A rather than staging them here: submissions
	// are blocked for the whole pass, so the bulk never needs an overlay
	// generation of its own (a snapshot-sized overlay would cost hundreds
	// of MB of bit-sliced groups and per-key maps just to be thrown away
	// at the swap). The loaded sets are matchable when LoadSnapshot
	// returns; concurrently staged ops survive as the suffix and are
	// replayed into the fresh overlay by the swap's rebuild.
	return e.consolidateOnce(false, ops)
}
