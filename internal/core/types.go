// Package core implements the TagMatch subset-matching engine of
// Rogora et al., "High-Throughput Subset Matching on Commodity GPU-Based
// Systems" (EuroSys 2017).
//
// The engine indexes a database of tag sets, represented as 192-bit
// Bloom-filter signatures, into balanced partitions (Algorithm 1 of the
// paper). Queries flow through a four-stage pipeline: pre-process on CPUs
// (Algorithm 2), subset match on (simulated) GPUs (Algorithms 3 and 4),
// key lookup/reduce on CPUs, and merge on CPUs. Batching, per-partition
// flush timeouts, GPU streams, and double-buffered result transfers follow
// §3.3 and §3.4 of the paper.
package core

import (
	"fmt"
	"log/slog"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

// Key is the application-supplied value associated with a tag set; in the
// Twitter-like workload a Key is a user id.
type Key uint32

// SetID identifies a unique tag set in the consolidated tagset table.
type SetID uint32

// Config controls engine construction. The zero value selects CPU-only
// operation with paper defaults scaled for small databases; use
// DefaultConfig for documented defaults.
type Config struct {
	// MaxPartitionSize is MAX_P of Algorithm 1: the maximum number of tag
	// sets per partition. The paper's sweet spot was 200K sets for a 212M
	// set database (Fig 7); scale proportionally.
	MaxPartitionSize int

	// BatchSize is the number of queries per GPU batch. Query ids inside
	// a batch are 8-bit in the packed result layout (§3.3.1), so the
	// batch size may not exceed 256: a larger batch would silently alias
	// query indices and corrupt results. New rejects larger values with
	// ErrBatchSizeTooLarge.
	BatchSize int

	// BatchTimeout flushes partially filled batches after this delay
	// (§3, "configurable timeout period"). Zero disables the timeout:
	// batches wait until full or until Flush/Drain.
	BatchTimeout time.Duration

	// Threads is the number of CPU worker threads shared by the
	// pre-process and key-lookup/reduce/merge stages. Defaults to 4.
	Threads int

	// Devices are the GPUs to use. Empty means CPU-only TagMatch: the
	// same pipeline with the subset-match stage executed synchronously on
	// the dispatching CPU thread (the "CPU-only, TagMatch" row of
	// Table 1).
	Devices []*gpu.Device

	// StreamsPerDevice is the number of streams opened per GPU; the
	// paper's platform supported 10. Defaults to min(10, device max).
	StreamsPerDevice int

	// StreamDepth is the number of pipelined dispatch slots per stream —
	// the generalized even/odd double buffering of §3.3.2. At depth d,
	// up to d batches ride one stream concurrently: batch n+1's header
	// reset + H2D + kernel are enqueued while batch n's results are
	// still transferring, hiding the copy tax behind kernel time.
	// Defaults to 2 (even/odd); 1 reproduces the one-batch-per-stream
	// behavior as the ablation baseline. Depths beyond 2 rarely pay:
	// the FIFO already holds the next batch's work the moment the
	// current kernel finishes, so extra slots only add buffer memory.
	StreamDepth int

	// QueryWindow is the per-device query-signature ring size, in
	// signatures. Dispatch maps each batch's signatures onto the ring —
	// a query routed to k partitions uploads its 24-byte signature once
	// and the k batches carry 4-byte indices — collapsing the
	// fan-out-multiplied H2D query traffic. Defaults to 16×BatchSize;
	// values below BatchSize are raised to BatchSize (a single batch of
	// distinct signatures must fit).
	QueryWindow int

	// DisableQueryWindow turns the query window off: every batch
	// uploads its signatures densely, as before (ablation).
	DisableQueryWindow bool

	// BlockDim is the GPU thread-block size for the subset-match kernel.
	// Defaults to 256.
	BlockDim int

	// MaxPairsPerBatch sizes the kernel result buffer in (query,set)
	// pairs. A batch producing more matches than this falls back to CPU
	// matching for correctness (counted in Stats.ResultOverflows).
	// Defaults to 16×BatchSize.
	MaxPairsPerBatch int

	// Replicate replicates the tagset table on every device so that any
	// stream can serve any partition (maximal inter-GPU parallelism).
	// When false, partitions are spread across devices round-robin and
	// each batch must use a stream of the owning device. Defaults true
	// (set by DefaultConfig).
	Replicate bool

	// DisablePrefilter turns off the thread-block common-prefix
	// pre-filtering of Algorithm 4 (ablation).
	DisablePrefilter bool

	// SplitOutputLayout stores query ids and set ids in two separate
	// device arrays instead of the packed 4+4 layout of §3.3.1,
	// requiring two result copies per batch (ablation).
	SplitOutputLayout bool

	// SizeThenCopy replaces the double-buffered single result transfer
	// with the naive scheme the paper rejects: first copy the 4-byte
	// result size, then issue a second exact-size copy (ablation).
	SizeThenCopy bool

	// ExactVerify keeps the original tag sets alongside the Bloom
	// signatures and re-checks every match exactly during key lookup,
	// eliminating Bloom false positives entirely (§3: "the system or the
	// application can perform an additional exact subset check").
	// Sets staged via AddSignature and queries submitted without tags
	// cannot be verified and pass through unchecked.
	ExactVerify bool

	// FirstFitPartitioning replaces the balanced partitioning of
	// Algorithm 1 with naive first-fit chunking: sets sorted
	// lexicographically and cut into MAX_P-sized runs, each run's mask
	// being the intersection of its members (ablation). Masks produced
	// this way are often empty or tiny, so pre-processing prunes far
	// fewer partitions.
	FirstFitPartitioning bool

	// TraceEvery samples one query in N for full pipeline tracing: the
	// timestamped path through every stage and its batch assignments,
	// retrievable via Obs().Tracer. Zero disables tracing (default).
	TraceEvery int

	// TraceKeep is the number of completed traces retained (default 128).
	TraceKeep int

	// DisableObservability turns off the internal/obs instrumentation —
	// stage histograms, per-partition counters, traces — leaving only
	// the cumulative Stats counters. The obs-overhead benchmark compares
	// against this configuration; production deployments should leave
	// observability on (the overhead is a few percent at most).
	DisableObservability bool

	// MaxInFlight bounds the number of submitted-but-incomplete queries
	// the engine admits. At the bound, Submit-family calls return
	// ErrOverloaded immediately instead of queueing without limit (the
	// SubmitCtx variants block for capacity). Zero disables the gate
	// (the default): submission applies only the pipeline's natural
	// channel backpressure.
	MaxInFlight int

	// FailureThreshold is the number of consecutive failed batch
	// attempts on a device before the circuit breaker quarantines it:
	// the device's streams are skipped (batches re-route to surviving
	// devices in Replicate mode, to the CPU otherwise) until a recovery
	// probe succeeds. Defaults to 3.
	FailureThreshold int

	// QuarantineBackoff is the delay before a quarantined device
	// receives its first recovery probe; each failed probe doubles the
	// delay, up to 64x. Defaults to 250ms.
	QuarantineBackoff time.Duration

	// ScalarRouting replaces the bit-sliced (column-transposed)
	// partition-table lookup of the pre-process stage with the retained
	// scalar Algorithm 2 scan — one three-word subset test per candidate
	// mask (ablation; the preprocess benchmark measures the two paths
	// against each other). Results are identical either way.
	ScalarRouting bool

	// ScalarKernel replaces the bit-sliced (column-transposed)
	// subset-match kernel with the retained scalar per-thread kernel of
	// Algorithms 3 and 4 — one set per thread, three word operations per
	// subset check (ablation; the kernel benchmark measures the two
	// flavors against each other, and the differential tests hold them
	// to exact pair-for-pair parity). A scalar-kernel engine skips
	// building and uploading the transposed group index entirely, so it
	// also reproduces the pre-sliced memory footprint. Results are
	// identical either way.
	ScalarKernel bool

	// DisablePooling turns off the hot-path buffer recycling (query
	// structs, batches, result carriers, reduce scratch), allocating
	// fresh objects for every query and batch instead. Used by the
	// hotpath experiment to quantify the pooling win; production
	// deployments should leave pooling on (the default).
	DisablePooling bool

	// DeltaMaxSets is the live-op count (overlay adds + tombstones) at
	// which the background consolidator folds the delta overlay into the
	// main index. Defaults to 4096.
	DeltaMaxSets int

	// DeltaMaxRatio raises the auto-consolidation threshold to this
	// fraction of the main index's set count when that exceeds
	// DeltaMaxSets, keeping rebuild cost amortized-geometric as the
	// database grows. Defaults to 0.25.
	DeltaMaxRatio float64

	// DisableDeltaOverlay restores the legacy update semantics: staged
	// ops stay invisible until an explicit Consolidate, no overlay is
	// maintained on the query path, and no background consolidator runs
	// (the stop-the-world ablation baseline of the churn experiment).
	DisableDeltaOverlay bool

	// HedgePolicy enables hedged re-dispatch of straggling batches: a
	// dispatched batch that outlives its straggler budget is re-issued to
	// another healthy device (or the host) and the two attempts race,
	// exactly-once completion discarding the loser's results. The zero
	// value disables hedging.
	HedgePolicy HedgePolicy

	// Logger receives structured records of operationally significant
	// events: device quarantine entry/exit, device death, CPU fallbacks.
	// Nil disables logging (the library default — counters and traces
	// still record everything); tagmatch-server wires slog.Default().
	Logger *slog.Logger
}

// HedgeMode selects how HedgePolicy derives a batch's straggler budget.
type HedgeMode string

const (
	// HedgeOff disables hedged re-dispatch (the default).
	HedgeOff HedgeMode = ""
	// HedgeFixed hedges any batch still unsettled Budget after dispatch.
	HedgeFixed HedgeMode = "fixed"
	// HedgePercentile hedges a batch still unsettled after Multiplier
	// times the dispatching device's tracked Percentile batch service
	// time — an adaptive budget that follows the device's own tail, so
	// a uniformly slow device is not hedged while a bimodal one is.
	HedgePercentile HedgeMode = "percentile"
)

// HedgePolicy configures hedged re-dispatch of straggling batches
// (Config.HedgePolicy). The tail-tolerance idea is the classic hedged
// request: rather than waiting out a straggler, re-issue the work
// elsewhere once the response is slower than the expected tail, and let
// the two attempts race.
type HedgePolicy struct {
	// Mode selects the budget derivation; HedgeOff (the zero value)
	// disables hedging. New rejects unknown modes.
	Mode HedgeMode

	// Budget is the fixed straggler budget of HedgeFixed mode.
	// Defaults to 5ms.
	Budget time.Duration

	// Percentile is the per-device batch service-time quantile tracked
	// for HedgePercentile mode. Defaults to 0.99.
	Percentile float64

	// Multiplier scales the tracked percentile into the straggler
	// budget. Defaults to 3.
	Multiplier float64

	// MinBudget floors the adaptive budget, and serves as the budget
	// until a device has accumulated enough batches to trust its
	// tracked distribution. Defaults to 500µs.
	MinBudget time.Duration
}

// DefaultConfig returns the paper-faithful defaults for a database of
// approximately dbSize sets.
func DefaultConfig(dbSize int, devices ...*gpu.Device) Config {
	maxP := dbSize / 1000 // paper ratio: 200K partitions cap for 212M sets
	if maxP < 64 {
		maxP = 64
	}
	return Config{
		MaxPartitionSize: maxP,
		BatchSize:        256,
		BatchTimeout:     200 * time.Millisecond,
		Threads:          4,
		Devices:          devices,
		StreamsPerDevice: 10,
		BlockDim:         256,
		Replicate:        true,
	}
}

// validate rejects configurations that would corrupt results rather
// than merely perform badly. It runs before applyDefaults, on the
// caller's values.
func (c *Config) validate() error {
	if c.BatchSize > maxBatchSize {
		return ErrBatchSizeTooLarge
	}
	switch c.HedgePolicy.Mode {
	case HedgeOff, HedgeFixed, HedgePercentile:
	default:
		return fmt.Errorf("%w: %q", ErrUnknownHedgeMode, c.HedgePolicy.Mode)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.MaxPartitionSize <= 0 {
		c.MaxPartitionSize = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.StreamsPerDevice <= 0 {
		c.StreamsPerDevice = 10
	}
	if c.StreamDepth <= 0 {
		c.StreamDepth = 2
	}
	if c.QueryWindow <= 0 {
		c.QueryWindow = 16 * c.BatchSize
	}
	if c.QueryWindow < c.BatchSize {
		c.QueryWindow = c.BatchSize
	}
	if c.BlockDim <= 0 {
		c.BlockDim = 256
	}
	if c.MaxPairsPerBatch <= 0 {
		c.MaxPairsPerBatch = 16 * c.BatchSize
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.QuarantineBackoff <= 0 {
		c.QuarantineBackoff = 250 * time.Millisecond
	}
	if c.HedgePolicy.Budget <= 0 {
		c.HedgePolicy.Budget = 5 * time.Millisecond
	}
	if c.HedgePolicy.Percentile <= 0 || c.HedgePolicy.Percentile >= 1 {
		c.HedgePolicy.Percentile = 0.99
	}
	if c.HedgePolicy.Multiplier <= 0 {
		c.HedgePolicy.Multiplier = 3
	}
	if c.HedgePolicy.MinBudget <= 0 {
		c.HedgePolicy.MinBudget = 500 * time.Microsecond
	}
	if c.DeltaMaxSets <= 0 {
		c.DeltaMaxSets = 4096
	}
	if c.DeltaMaxRatio <= 0 {
		c.DeltaMaxRatio = 0.25
	}
}

// Stats is a snapshot of engine activity. The JSON field names are part
// of the GET /stats contract of internal/httpserver.
type Stats struct {
	// Database shape after the last Consolidate.
	UniqueSets int `json:"unique_sets"`
	Partitions int `json:"partitions"`
	Keys       int `json:"keys"`

	// Pipeline counters.
	QueriesSubmitted   int64 `json:"queries_submitted"`
	QueriesCompleted   int64 `json:"queries_completed"`
	BatchesDispatched  int64 `json:"batches_dispatched"`
	BatchesTimedOut    int64 `json:"batches_timed_out"`
	PairsProduced      int64 `json:"pairs_produced"`
	KeysDelivered      int64 `json:"keys_delivered"`
	ResultOverflows    int64 `json:"result_overflows"`
	PartitionsSearched int64 `json:"partitions_searched"`

	// Routing counters (mirrors of obs.RoutingCounters): queries per
	// lookup flavor and the lock amortization of the worker-local batch
	// accumulators (RouteAppends / RouteMergeLocks ≥ 1; per-append
	// locking would pin it at 1).
	RoutedSliced    int64 `json:"routed_sliced"`
	RoutedScalar    int64 `json:"routed_scalar"`
	RouteMergeLocks int64 `json:"route_merge_locks"`
	RouteAppends    int64 `json:"route_appends"`

	// Subset-match kernel counters (mirrors of obs.KernelCounters):
	// batches executed per kernel flavor, group-gate effectiveness
	// (KernelGatePruned / KernelGateChecks is the gate hit rate), and
	// the column words touched by the bit-sliced walk.
	KernelSliced        int64 `json:"kernel_sliced"`
	KernelScalar        int64 `json:"kernel_scalar"`
	KernelGateChecks    int64 `json:"kernel_gate_checks"`
	KernelGatePruned    int64 `json:"kernel_gate_pruned"`
	KernelGroupScans    int64 `json:"kernel_group_scans"`
	KernelColumnsWalked int64 `json:"kernel_columns_walked"`

	// Pipelined-dispatch counters (mirrors of obs.StreamCounters):
	// query-window effectiveness and stream-slot overlap.
	// WindowHits/WindowMisses count batch query slots resolved against
	// the device ring; H2DQueryBytes/QuerySlots give the mean H2D bytes
	// per dispatched query slot the window is meant to shrink;
	// PipelinedDispatches counts batches that overlapped another batch
	// already in flight on the same stream.
	WindowHits          int64 `json:"window_hits"`
	WindowMisses        int64 `json:"window_misses"`
	WindowEvictions     int64 `json:"window_evictions"`
	WindowFallbacks     int64 `json:"window_fallbacks"`
	H2DQueryBytes       int64 `json:"h2d_query_bytes"`
	QuerySlots          int64 `json:"query_slots"`
	PipelinedDispatches int64 `json:"pipelined_dispatches"`

	// Fault-tolerance counters (mirrors of obs.FaultCounters): failed
	// GPU batch attempts, re-dispatches, host re-runs, circuit-breaker
	// transitions, and overload rejections.
	GPUFaults         int64 `json:"gpu_faults"`
	BatchRetries      int64 `json:"batch_retries"`
	CPUFallbacks      int64 `json:"cpu_fallbacks"`
	DeviceQuarantines int64 `json:"device_quarantines"`
	RecoveryProbes    int64 `json:"recovery_probes"`
	DeviceRecoveries  int64 `json:"device_recoveries"`
	QueriesShed       int64 `json:"queries_shed"`

	// Tail-tolerance counters: queries completed early because their
	// deadline passed before launch, batches cancelled outright because
	// every member had expired, and straggler hedges by outcome
	// (fired: launched; won: hedge result used; lost: primary won the
	// race; cancelled: budget elapsed after the batch settled).
	DeadlineExpired  int64 `json:"deadline_expired"`
	BatchesCancelled int64 `json:"batches_cancelled"`
	HedgesFired      int64 `json:"hedges_fired"`
	HedgesWon        int64 `json:"hedges_won"`
	HedgesLost       int64 `json:"hedges_lost"`
	HedgesCancelled  int64 `json:"hedges_cancelled"`

	// Live-update counters (mirrors of obs.DeltaCounters plus the
	// overlay's live sizes): DeltaAdds/DeltaTombstones are the overlay
	// entries currently serving queries ahead of consolidation;
	// DeltaMatches/DeltaKeys count its match contribution;
	// TombstoneSuppressed the main-index entries hidden by pending
	// removes; AutoConsolidations the background folds; LastSwapPause
	// the traffic pause of the most recent background swap (drain +
	// index swap + device upload — compare LastConsolidate, the full
	// stop-the-world rebuild time).
	DeltaAdds           int64         `json:"delta_adds"`
	DeltaTombstones     int64         `json:"delta_tombstones"`
	DeltaAbsorbedOps    int64         `json:"delta_absorbed_ops"`
	DeltaMatches        int64         `json:"delta_matches"`
	DeltaKeys           int64         `json:"delta_keys"`
	TombstoneSuppressed int64         `json:"tombstone_suppressions"`
	AutoConsolidations  int64         `json:"auto_consolidations"`
	IncrementalFolds    int64         `json:"incremental_folds"`
	LastSwapPause       time.Duration `json:"last_swap_pause_ns"`

	// Memory accounting (Fig 9): host side and per-device.
	HostBytes   int64   `json:"host_bytes"`
	DeviceBytes []int64 `json:"device_bytes,omitempty"`

	// LastConsolidate is the duration of the most recent Consolidate
	// call (Fig 8).
	LastConsolidate time.Duration `json:"last_consolidate_ns"`

	// Cumulative busy time per pipeline stage, summed across workers:
	// pre-process (Algorithm 2 + batch fill), subset match (dispatch to
	// result arrival), and key lookup/reduce. Useful for locating the
	// pipeline bottleneck on a given host and workload.
	PreprocessTime  time.Duration `json:"preprocess_time_ns"`
	SubsetMatchTime time.Duration `json:"subset_match_time_ns"`
	ReduceTime      time.Duration `json:"reduce_time_ns"`
}

// MatchResult carries the outcome of one query through the pipeline.
type MatchResult struct {
	// Keys holds the matched keys: a multiset for Match, deduplicated
	// for MatchUnique. Nil when Err is set.
	Keys []Key
	// Latency is the end-to-end time from submission to merge (or to
	// the early completion when Err is set).
	Latency time.Duration
	// Err is non-nil when the query terminated without matching: it
	// matches ErrDeadlineExceeded (joined with the causing context
	// error, if any) when the query's deadline passed — or its context
	// was cancelled — before its batches launched.
	Err error
}

// partition is one entry of the partition table: the defining mask and the
// half-open range [off, off+n) of the consolidated tagset table.
type partition struct {
	mask   bitvec.Vector
	off    uint32 // offset in the global flat tagset table
	n      uint32
	dev    int    // owning device index when not replicating
	devOff uint32 // offset in the owning device's shard (partitioned mode)

	// Offsets of the partition's ⌈n/64⌉ bit-sliced groups in the flat
	// transposed index (index.groups / the device group buffers); local
	// set i lives in lane i%64 of group grpOff+i/64. devGrpOff is the
	// per-device analogue of devOff in partitioned mode. Both are zero
	// when the engine runs the scalar kernel (no transposed index).
	grpOff    uint32
	devGrpOff uint32

	// ext is the partition's device extent: 0 for the base shard
	// uploaded by the last full build, e>0 for the e-th extent buffer
	// appended by an incremental fold (index.devExts[dev][e-1], see
	// adoptDevices). When ext > 0, devOff/devGrpOff index into the
	// extent buffer — in replicate mode too, where base partitions use
	// the global offsets instead.
	ext uint32

	batch *openBatch // current filling batch; guarded by the partition lock

	// dirty mirrors the partition's membership in the index's
	// dirty-partition list (guarded by the partition lock): true while
	// the partition has — or recently had — an open batch a flush pass
	// must visit. Keeps flushAll and the flusher tick from sweeping all
	// P partitions when only a handful have traffic.
	dirty bool
}
