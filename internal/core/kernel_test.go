package core

import (
	"sort"
	"sync"
	"testing"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
)

type pair struct {
	q uint8
	s uint32
}

// bruteForcePairs computes the reference result of a batch: every
// (query, set) pair with sets[s-globalBase] ⊆ queries[q].
func bruteForcePairs(sets []bitvec.Vector, globalBase int, queries []bitvec.Vector) []pair {
	var out []pair
	for qi, q := range queries {
		for si, s := range sets {
			if s.SubsetOf(q) {
				out = append(out, pair{uint8(qi), uint32(globalBase + si)})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].q != ps[j].q {
			return ps[i].q < ps[j].q
		}
		return ps[i].s < ps[j].s
	})
}

// batchFixture builds a sorted partition slice and a query batch where
// every query is a database set plus extra bits (the paper's query
// construction), guaranteeing matches.
func batchFixture(nSets, nQueries int, seed int64) (sets, queries []bitvec.Vector) {
	sets = randomSets(nSets, 5, seed)
	sort.Slice(sets, func(i, j int) bool { return bitvec.Less(sets[i], sets[j]) })
	queries = make([]bitvec.Vector, nQueries)
	for i := range queries {
		q := sets[(i*7)%len(sets)]
		extra := randomSets(1, 3, seed+int64(i)+1000)[0]
		queries[i] = q.Or(extra)
	}
	return sets, queries
}

func runGPUKernel(t *testing.T, sets, queries []bitvec.Vector, maxPairs, blockDim int, prefilter bool) ([]pair, bool) {
	t.Helper()
	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	s, err := dev.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tagsets := gpu.MustAlloc[bitvec.Vector](dev, len(sets))
	qbuf := gpu.MustAlloc[bitvec.Vector](dev, len(queries))
	hdr := gpu.MustAlloc[uint32](dev, resHeaderWords)
	pairsBuf := gpu.MustAlloc[byte](dev, pairBufBytes(maxPairs))
	defer tagsets.Free()
	defer qbuf.Free()
	defer hdr.Free()
	defer pairsBuf.Free()

	if err := tagsets.CopyToDevice(0, sets); err != nil {
		t.Fatal(err)
	}
	gpu.CopyToDeviceAsync(s, hdr, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(s, qbuf, 0, queries)
	grid := gpu.Grid{Blocks: (len(sets) + blockDim - 1) / blockDim, BlockDim: blockDim}
	s.LaunchAsync(grid, matchKernelAt(tagsets, 0, len(sets), 0, querySrc{direct: qbuf, n: len(queries)}, hdr, pairsBuf, maxPairs, prefilter, nil))
	hdrHost := make([]uint32, resHeaderWords)
	gpu.CopyFromDeviceAsync(s, hdr, hdrHost, 0)
	s.Synchronize()

	count, overflow := clampCount(hdrHost[0], hdrHost[1], maxPairs)
	if overflow {
		return nil, true
	}
	packed := make([]byte, pairBufBytes(count))
	if count > 0 {
		if err := pairsBuf.CopyFromDevice(packed, 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []pair
	decodePacked(packed, count, func(q uint8, sid uint32) { got = append(got, pair{q, sid}) })
	sortPairs(got)
	return got, false
}

func TestMatchKernelMatchesBruteForce(t *testing.T) {
	sets, queries := batchFixture(3000, 64, 21)
	want := bruteForcePairs(sets, 0, queries)
	if len(want) == 0 {
		t.Fatal("fixture produced no matches; test is vacuous")
	}
	for _, prefilter := range []bool{true, false} {
		got, overflow := runGPUKernel(t, sets, queries, 100000, 256, prefilter)
		if overflow {
			t.Fatal("unexpected overflow")
		}
		if len(got) != len(want) {
			t.Fatalf("prefilter=%v: %d pairs, want %d", prefilter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prefilter=%v: pair %d = %+v, want %+v", prefilter, i, got[i], want[i])
			}
		}
	}
}

func TestMatchKernelOddBlockDims(t *testing.T) {
	sets, queries := batchFixture(777, 31, 22)
	want := bruteForcePairs(sets, 0, queries)
	for _, bd := range []int{1, 7, 64, 1024} {
		got, overflow := runGPUKernel(t, sets, queries, 100000, bd, true)
		if overflow {
			t.Fatalf("blockDim=%d overflow", bd)
		}
		if len(got) != len(want) {
			t.Fatalf("blockDim=%d: %d pairs, want %d", bd, len(got), len(want))
		}
	}
}

func TestMatchKernelOverflow(t *testing.T) {
	sets, queries := batchFixture(2000, 64, 23)
	want := bruteForcePairs(sets, 0, queries)
	if len(want) < 5 {
		t.Skip("fixture too selective")
	}
	_, overflow := runGPUKernel(t, sets, queries, 2, 256, true)
	if !overflow {
		t.Fatal("expected overflow with maxPairs=2")
	}
}

func TestCPUMatchBatchMatchesBruteForce(t *testing.T) {
	sets, queries := batchFixture(2500, 48, 24)
	want := bruteForcePairs(sets, 1000, queries)
	for _, prefilter := range []bool{true, false} {
		var got []pair
		cpuMatchBatch(sets, 1000, queries, 256, prefilter, nil, nil, func(q uint8, s uint32) {
			got = append(got, pair{q, s})
		})
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("prefilter=%v: %d pairs, want %d", prefilter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prefilter=%v: pair %d mismatch", prefilter, i)
			}
		}
	}
}

func TestCPUMatchBatchEmpty(t *testing.T) {
	called := false
	cpuMatchBatch(nil, 0, []bitvec.Vector{bitvec.FromOnes(1)}, 256, true, nil, nil, func(uint8, uint32) { called = true })
	if called {
		t.Fatal("visit called for empty partition")
	}
}

func TestPackedLayoutRoundTrip(t *testing.T) {
	// Encode pairs through emitPacked on a fake block context, then
	// decode; byte-dense layout must survive arbitrary counts including
	// partial final groups.
	dev := gpu.New(gpu.Config{Workers: 1})
	defer dev.Close()
	s, _ := dev.OpenStream()
	defer s.Close()

	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 255} {
		hdr := make([]uint32, resHeaderWords)
		buf := make([]byte, pairBufBytes(n))
		want := make([]pair, n)
		s.LaunchAsync(gpu.Grid{Blocks: 1, BlockDim: 1}, func(b *gpu.BlockCtx) {
			b.Threads(func(tid int) {
				for i := 0; i < n; i++ {
					want[i] = pair{uint8(i % 251), uint32(i * 2654435761)}
					emitPacked(b, hdr, buf, n, want[i].q, want[i].s)
				}
			})
		})
		s.Synchronize()
		if int(hdr[0]) != n || hdr[1] != 0 {
			t.Fatalf("n=%d: header = %v", n, hdr)
		}
		i := 0
		decodePacked(buf, n, func(q uint8, sid uint32) {
			if q != want[i].q || sid != want[i].s {
				t.Fatalf("n=%d: pair %d = (%d,%d), want %+v", n, i, q, sid, want[i])
			}
			i++
		})
		if i != n {
			t.Fatalf("decoded %d pairs, want %d", i, n)
		}
	}
}

func TestPackedLayoutDensity(t *testing.T) {
	// The packed layout must spend exactly 5 bytes per pair (vs 8 for a
	// padded struct): groups of 4 pairs in 20 bytes.
	if got := pairBufBytes(4); got != 20 {
		t.Fatalf("4 pairs take %d bytes, want 20", got)
	}
	if got := pairBufBytes(256); got != 256/4*20 {
		t.Fatalf("256 pairs take %d bytes, want %d", got, 256/4*20)
	}
	// Worst case loss: 3 unused lanes of the last group = 15 bytes,
	// bounded per batch (the paper says at most 3 bytes of query ids plus
	// their set-id lanes).
	if got := pairBufBytes(5); got != 40 {
		t.Fatalf("5 pairs take %d bytes, want 40", got)
	}
}

func TestEmitPackedConcurrentBlocks(t *testing.T) {
	// Emits from many concurrent blocks must produce exactly one slot per
	// pair with no corruption (this exercises the atomic counter and the
	// byte-disjoint write discipline under the race detector).
	dev := gpu.New(gpu.Config{Workers: 8})
	defer dev.Close()
	s, _ := dev.OpenStream()
	defer s.Close()

	const total = 64 * 128
	hdr := make([]uint32, resHeaderWords)
	buf := make([]byte, pairBufBytes(total))
	s.LaunchAsync(gpu.Grid{Blocks: 64, BlockDim: 128}, func(b *gpu.BlockCtx) {
		b.Threads(func(tid int) {
			g := b.GlobalID(tid)
			emitPacked(b, hdr, buf, total, uint8(g%256), uint32(g))
		})
	})
	s.Synchronize()

	if int(hdr[0]) != total {
		t.Fatalf("count = %d, want %d", hdr[0], total)
	}
	seen := make([]bool, total)
	var mu sync.Mutex
	decodePacked(buf, total, func(q uint8, sid uint32) {
		mu.Lock()
		defer mu.Unlock()
		if sid >= total || seen[sid] {
			t.Fatalf("set id %d duplicated or out of range", sid)
		}
		if uint8(sid%256) != q {
			t.Fatalf("pair (%d,%d) corrupted", q, sid)
		}
		seen[sid] = true
	})
}

func TestSplitKernelMatchesPacked(t *testing.T) {
	sets, queries := batchFixture(1500, 32, 25)
	want := bruteForcePairs(sets, 0, queries)

	dev := gpu.New(gpu.Config{Workers: 4})
	defer dev.Close()
	s, _ := dev.OpenStream()
	defer s.Close()

	const maxPairs = 100000
	tagsets := gpu.MustAlloc[bitvec.Vector](dev, len(sets))
	qbuf := gpu.MustAlloc[bitvec.Vector](dev, len(queries))
	outQ := gpu.MustAlloc[uint32](dev, splitHeaderWords+maxPairs)
	outS := gpu.MustAlloc[uint32](dev, maxPairs)
	defer func() { tagsets.Free(); qbuf.Free(); outQ.Free(); outS.Free() }()

	if err := tagsets.CopyToDevice(0, sets); err != nil {
		t.Fatal(err)
	}
	gpu.CopyToDeviceAsync(s, outQ, 0, []uint32{0, 0})
	gpu.CopyToDeviceAsync(s, qbuf, 0, queries)
	grid := gpu.Grid{Blocks: (len(sets) + 255) / 256, BlockDim: 256}
	s.LaunchAsync(grid, splitMatchKernelAt(tagsets, 0, len(sets), 0, querySrc{direct: qbuf, n: len(queries)}, outQ, outS, maxPairs, true, nil))
	hdrHost := make([]uint32, splitHeaderWords)
	gpu.CopyFromDeviceAsync(s, outQ, hdrHost, 0)
	s.Synchronize()

	count, overflow := clampCount(hdrHost[0], hdrHost[1], maxPairs)
	if overflow {
		t.Fatal("unexpected overflow")
	}
	qs := make([]uint32, count)
	ss := make([]uint32, count)
	if err := outQ.CopyFromDevice(qs, splitHeaderWords); err != nil {
		t.Fatal(err)
	}
	if err := outS.CopyFromDevice(ss, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]pair, count)
	for i := range got {
		got[i] = pair{uint8(qs[i]), ss[i]}
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestClampCount(t *testing.T) {
	if c, o := clampCount(5, 0, 10); c != 5 || o {
		t.Fatalf("got %d,%v", c, o)
	}
	if _, o := clampCount(5, 1, 10); !o {
		t.Fatal("overflow flag ignored")
	}
	if _, o := clampCount(11, 0, 10); !o {
		t.Fatal("count beyond capacity must overflow")
	}
}
