package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/gpu"
	"tagmatch/internal/obs"
)

// Engine is a TagMatch subset-matching engine (Table 2 of the paper):
//
//	add-set(set, key)       AddSet / AddSignature
//	remove-set(set, key)    RemoveSet / RemoveSignature
//	consolidate()           Consolidate
//	match(q)                Match / Submit
//	match-unique(q)         MatchUnique / SubmitUnique
//
// Additions and removals are staged in an operation log and, by
// default, simultaneously absorbed into a match-visible delta overlay
// (see delta.go): an AddSet is matchable by the very next query, and a
// RemoveSet suppresses its key immediately, without waiting for a
// rebuild. A background consolidator folds the overlay into the
// partitioned main index (Algorithm 1) once it outgrows
// Config.DeltaMaxSets / Config.DeltaMaxRatio, pausing traffic only for
// the drain + device-upload swap. Consolidate remains as the explicit
// synchronous (stop-the-world) form; Config.DisableDeltaOverlay
// restores the legacy staged-until-Consolidate semantics.
type Engine struct {
	cfg Config

	// submitMu serializes index swaps against query submission: Submit
	// holds it shared for the enqueue only; Consolidate holds it
	// exclusively across drain + rebuild.
	submitMu sync.RWMutex

	// stagedMu guards the master database and staging area. The delta
	// overlay is updated in the same critical section that appends a
	// staged op (lock order stagedMu -> delta.mu), keeping overlay and
	// op log in lockstep.
	stagedMu sync.Mutex
	db       map[bitvec.Vector][]dbEntry // consolidated master copy
	staged   []stagedOp

	// delta is the match-visible overlay over staged; see delta.go.
	delta delta

	// consolidateMu serializes consolidations (explicit Consolidate vs
	// the background consolidator); the channels drive the background
	// goroutine's kick/stop handshake (nil when the overlay is disabled).
	consolidateMu sync.Mutex
	consolKick    chan struct{}
	consolStop    chan struct{}
	consolDone    chan struct{}
	swapPauseNs   atomic.Int64 // last background swap pause, nanoseconds
	incFolds      atomic.Int64 // background folds that took the incremental path

	idx atomic.Pointer[index] // immutable between consolidates; swapped under submitMu

	inputCh  chan *query
	reduceCh chan *batchResult
	workerWg sync.WaitGroup
	reduceWg sync.WaitGroup

	flushStop chan struct{}
	flushDone chan struct{}

	// drainCond is broadcast on pipeline progress (a query finishing
	// pre-processing or completing, a batch leaving the reduce stage) so
	// drain and close wait event-driven instead of polling. The
	// broadcast is skipped entirely while drainWaiters is zero.
	drainMu       sync.Mutex
	drainCond     *sync.Cond
	drainWaiters  atomic.Int32
	progressEpoch atomic.Int64

	// obs is the pipeline-wide observability layer: per-stage latency
	// histograms, per-partition hot-spot counters, sampled traces.
	obs *obs.Pipeline

	closed atomic.Bool

	submitted       atomic.Int64
	completed       atomic.Int64
	batches         atomic.Int64
	batchesTimedOut atomic.Int64
	inflightBatches atomic.Int64
	pairs           atomic.Int64
	keysDelivered   atomic.Int64
	overflows       atomic.Int64
	partsSearched   atomic.Int64

	consolidateTime atomic.Int64 // nanoseconds

	// Cumulative per-stage busy time (nanoseconds), for the stage
	// breakdown diagnostic. Subset-match time covers dispatch to result
	// arrival (queueing + kernel + transfer); on the CPU path it is the
	// synchronous matching time.
	preprocessNs atomic.Int64
	matchNs      atomic.Int64
	reduceNs     atomic.Int64

	// pools recycles hot-path objects (queries, batches, results,
	// reduce scratch); see pool.go.
	pools enginePools

	// queryLockAcqs counts reduce-stage acquisitions of query mutexes.
	// The batch-local reduce takes each query's lock at most once per
	// (query, batch) — regression-tested against this counter.
	queryLockAcqs atomic.Int64

	// health holds the per-device circuit breakers of the fault-tolerant
	// dispatch path, indexed like cfg.Devices; see health.go.
	health []deviceHealth

	// log is the resolved Config.Logger (a discard logger when nil).
	log *slog.Logger
}

type stagedOp struct {
	sig    bitvec.Vector
	key    Key
	tags   []string // retained only in ExactVerify mode
	remove bool
}

// dbEntry is one (key, tags) association of the master database. tags is
// nil unless the engine runs in ExactVerify mode.
type dbEntry struct {
	key  Key
	tags []string
}

// index is the consolidated, immutable matching state (the dirty-batch
// bookkeeping below is the one mutable part, guarded by its own mutex).
type index struct {
	sets []bitvec.Vector // flat tagset table, partition-major, sorted within partitions
	// groups is the column-transposed mirror of sets for the bit-sliced
	// subset-match kernel: partition-major ⌈n/64⌉-group runs, local set
	// i of a partition in lane i%64 of group grpOff+i/64 (see
	// partition.grpOff). Nil when Config.ScalarKernel disables the
	// sliced flavor. The host copy also serves the CPU execution path
	// and the overflow/fault fallback.
	groups   []bitvec.SlicedGroup
	keyOff   []uint32 // CSR offsets into keys; len(sets)+1
	keys     []Key
	keyTags  [][]string // aligned with keys; populated only in ExactVerify mode
	parts    []partition
	locks    []sync.Mutex // per-partition batch locks
	pt       *partitionTable
	maskless []uint32 // partitions with empty mask (degenerate databases)

	// dirty lists the partitions that have (or recently had) an open
	// batch, so flush passes visit only those instead of locking all P
	// partition locks per tick. Invariant: a partition's dirty flag is
	// set iff its id is in this list or held by an in-progress flush
	// pass (which either clears the flag or requeues the id). dirtySpare
	// is the double buffer that keeps takeDirty/recycleDirty
	// allocation-free at steady state.
	dirtyMu    sync.Mutex
	dirty      []uint32
	dirtySpare []uint32

	devices      []*gpu.Device
	devBufs      []*gpu.Buffer[bitvec.Vector]
	devGroupBufs []*gpu.Buffer[bitvec.SlicedGroup] // transposed index per device (nil per entry when sliced kernel disabled)

	// devExts/devGrpExts hold the per-device extent buffers appended by
	// incremental folds: devExts[d][e-1] backs the partitions with
	// dev==d, ext==e. The base buffers above hold every row uploaded by
	// the last full build; an incremental swap carries them (and the
	// streams and windows below) over from the previous generation
	// untouched and uploads only these extents — the zero-drain pause is
	// drain + O(delta) copy, never O(database) (see adoptDevices).
	devExts    [][]*gpu.Buffer[bitvec.Vector]
	devGrpExts [][]*gpu.Buffer[bitvec.SlicedGroup]

	streams    chan *streamSlot   // replicated mode: shared slot pool
	devStreams []chan *streamSlot // partitioned mode: per-device slot pools
	allStreams []*streamCtx

	// windows holds each device's query-signature ring (nil when
	// Config.DisableQueryWindow turns the window off). The ring lives in
	// the index, so a Consolidate swap retires it wholesale with the
	// device tables — no cross-index invalidation protocol is needed.
	windows []*queryWindow

	// dispatching fences release() against attempt chains that may still
	// enqueue stream operations. Before hedging every chain completed
	// before its queries did, so the drain implied quiescence; a losing
	// attempt now outlives its batch's settlement (and the queries'
	// completion), and enqueueing on a closed stream would panic. Held
	// from chain start until the chain can no longer touch a stream;
	// armed hedge timers hold it too.
	dispatching sync.WaitGroup

	hostBytes int64

	// Incremental-fold bookkeeping (see buildIncrementalIndex). fullSets
	// is the row count at the last full rebuild; dudRows counts rows
	// whose key list emptied in place (their signatures still occupy a
	// kernel lane until the next full rebuild); rowOf maps each
	// signature to its live row, built lazily by the first incremental
	// fold and handed forward — under consolidateMu — from generation
	// to generation.
	fullSets int
	dudRows  int
	rowOf    map[bitvec.Vector]uint32

	// patched overrides the key CSR for rows whose entry list changed in
	// an incremental fold: the fold aliases the previous generation's
	// keys/keyOff arrays untouched and records only the changed rows
	// here, so a fold's cost stays O(delta) instead of an O(rows+keys)
	// CSR rewrite. The reduce consults it before the CSR (see visit in
	// reduceBatch); nil after a full rebuild. Bounded by
	// incrementalEligible — too many patched rows forces a full rebuild
	// that folds them back into a flat CSR.
	patched map[uint32]patchedRow
}

// patchedRow is one row's replacement entry list (see index.patched).
// tags is parallel to keys and nil unless the engine runs in ExactVerify
// mode.
type patchedRow struct {
	keys []Key
	tags [][]string
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("tagmatch: engine closed")

// ErrBatchSizeTooLarge is returned by New for Config.BatchSize > 256.
// Query ids within a batch are 8-bit in the packed result layout
// (§3.3.1) and throughout the reduce stage, so a larger batch size
// would silently alias query indices and corrupt results.
var ErrBatchSizeTooLarge = errors.New("tagmatch: BatchSize exceeds 256 (query ids within a batch are 8-bit)")

// ErrOverloaded is returned by Submit-family calls rejected by the
// admission gate: Config.MaxInFlight queries were already in flight. The
// caller should shed load or back off and retry (the HTTP layer maps
// this to 503 with a Retry-After); SubmitCtx blocks for capacity
// instead.
var ErrOverloaded = errors.New("tagmatch: engine overloaded")

// ErrDeadlineExceeded is the terminal status of a query whose context
// deadline passed (or whose context was cancelled) before its batches
// launched: the query completes early with MatchResult.Err matching this
// error, and its expired batch slots never reach a kernel. Deadlines are
// only observed at pipeline stage boundaries — a query already running
// on a device finishes normally.
var ErrDeadlineExceeded = errors.New("tagmatch: query deadline exceeded")

// ErrUnknownHedgeMode is returned by New for a Config.HedgePolicy.Mode
// that is none of HedgeOff, HedgeFixed, HedgePercentile.
var ErrUnknownHedgeMode = errors.New("tagmatch: unknown hedge mode")

// ErrDeviceDegraded is returned (wrapped) by Consolidate when uploading
// the index to the configured devices failed — typically device memory
// exhaustion, matchable with errors.Is(err, gpu.ErrOutOfMemory) — and
// the engine installed a CPU-only index instead. The engine remains
// fully usable; only the GPU offload is lost until the next successful
// Consolidate.
var ErrDeviceDegraded = errors.New("tagmatch: device upload failed, running CPU-only")

// New creates an engine. The engine starts with an empty database; sets
// staged with AddSet are matchable immediately through the delta
// overlay, and an explicit Consolidate after a bulk load folds them
// into the partitioned main index in one rebuild (the background
// consolidator would otherwise do it in Config.DeltaMaxSets increments).
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	e := &Engine{
		cfg:      cfg,
		db:       make(map[bitvec.Vector][]dbEntry),
		inputCh:  make(chan *query, 4*cfg.BatchSize),
		reduceCh: make(chan *batchResult, 64),
		obs: obs.New(obs.Options{
			Disabled:   cfg.DisableObservability,
			TraceEvery: cfg.TraceEvery,
			TraceKeep:  cfg.TraceKeep,
		}),
	}
	e.drainCond = sync.NewCond(&e.drainMu)
	e.log = cfg.Logger
	if e.log == nil {
		e.log = slog.New(slog.DiscardHandler)
	}
	e.pools.disabled = cfg.DisablePooling
	e.idx.Store(&index{pt: &partitionTable{}})
	e.initHealth()
	e.registerGauges()
	e.delta.init()
	if !cfg.DisableDeltaOverlay {
		e.consolKick = make(chan struct{}, 1)
		e.consolStop = make(chan struct{})
		e.consolDone = make(chan struct{})
		go e.consolidatorLoop()
	}

	preWorkers := cfg.Threads / 2
	if preWorkers < 1 {
		preWorkers = 1
	}
	reduceWorkers := cfg.Threads - preWorkers
	if reduceWorkers < 1 {
		reduceWorkers = 1
	}
	e.workerWg.Add(preWorkers)
	for i := 0; i < preWorkers; i++ {
		go e.preprocessWorker()
	}
	e.reduceWg.Add(reduceWorkers)
	for i := 0; i < reduceWorkers; i++ {
		go e.reduceWorker()
	}
	if cfg.BatchTimeout > 0 {
		e.flushStop = make(chan struct{})
		e.flushDone = make(chan struct{})
		go e.flusher()
	}
	return e, nil
}

// Obs returns the engine's observability layer. The returned pipeline is
// live: snapshots taken from it reflect activity up to the moment of the
// call.
func (e *Engine) Obs() *obs.Pipeline { return e.obs }

// logger returns the engine's structured logger (never nil).
func (e *Engine) logger() *slog.Logger { return e.log }

// registerGauges wires the queue-depth and stream-pool gauges the export
// surfaces (GET /metrics) evaluate at scrape time.
func (e *Engine) registerGauges() {
	e.obs.RegisterGauge("tagmatch_queue_depth",
		"Queued items per pipeline queue.",
		obs.Labels{{"queue", "input"}}, func() float64 { return float64(len(e.inputCh)) })
	e.obs.RegisterGauge("tagmatch_queue_depth",
		"Queued items per pipeline queue.",
		obs.Labels{{"queue", "reduce"}}, func() float64 { return float64(len(e.reduceCh)) })
	e.obs.RegisterGauge("tagmatch_inflight_batches",
		"Batches dispatched to the subset-match stage and not yet reduced.",
		nil, func() float64 { return float64(e.inflightBatches.Load()) })
	e.obs.RegisterGauge("tagmatch_staged_ops",
		"Staged add/remove operations awaiting Consolidate.",
		nil, func() float64 { return float64(e.PendingOps()) })
	e.obs.RegisterGauge("tagmatch_delta_sets",
		"Live delta-overlay adds matchable ahead of consolidation.",
		nil, func() float64 { return float64(e.delta.addsLive.Load()) })
	e.obs.RegisterGauge("tagmatch_delta_tombstones",
		"Live tombstones suppressing main-index keys ahead of consolidation.",
		nil, func() float64 { return float64(e.delta.tombsLive.Load()) })
	e.obs.RegisterGauge("tagmatch_delta_age_seconds",
		"Seconds since the delta overlay last became non-empty (0 when empty).",
		nil, e.delta.ageSeconds)
	e.obs.RegisterGauge("tagmatch_dirty_partitions",
		"Partitions with an open (unflushed) batch awaiting a flush visit.",
		nil, func() float64 {
			idx := e.idx.Load()
			idx.dirtyMu.Lock()
			n := len(idx.dirty)
			idx.dirtyMu.Unlock()
			return float64(n)
		})
	e.obs.RegisterGauge("tagmatch_streams_idle",
		"GPU stream dispatch slots currently idle in the acquisition pools.",
		nil, func() float64 {
			idx := e.idx.Load()
			n := len(idx.streams)
			for _, ch := range idx.devStreams {
				n += len(ch)
			}
			return float64(n)
		})
	e.obs.RegisterGauge("tagmatch_pipeline_overlap_fraction",
		"Fraction of cumulative kernel time overlapped with copies, aggregated across devices.",
		nil, func() float64 {
			var kernelNs, overlapNs int64
			for _, dev := range e.cfg.Devices {
				s := dev.OverlapStats()
				kernelNs += s.KernelNs
				overlapNs += s.OverlapNs
			}
			if kernelNs == 0 {
				return 0
			}
			return float64(overlapNs) / float64(kernelNs)
		})
	e.obs.RegisterGauge("tagmatch_devices_quarantined",
		"Devices currently quarantined by the failure circuit breaker.",
		nil, func() float64 {
			n := 0
			for i := range e.health {
				if e.health[i].quarantined.Load() {
					n++
				}
			}
			return float64(n)
		})
	e.obs.RegisterGauge("tagmatch_stream_ops_pending",
		"Device operations queued on GPU streams and not yet executed.",
		nil, func() float64 {
			n := 0
			for _, sc := range e.idx.Load().allStreams {
				n += sc.stream.QueueDepth()
			}
			return float64(n)
		})
	for di, dev := range e.cfg.Devices {
		di, dev := di, dev
		labels := obs.Labels{{"device", dev.Name()}}
		e.obs.RegisterGauge("tagmatch_gpu_overlap_fraction",
			"Fraction of cumulative kernel time overlapped with copies on the device.",
			labels, dev.OverlapFraction)
		e.obs.RegisterGauge("tagmatch_gpu_utilization",
			"Fraction of device SM-worker capacity busy executing blocks since creation.",
			labels, dev.Utilization)
		e.obs.RegisterGauge("tagmatch_gpu_stream_queue_depth",
			"Device operations queued (not yet started) across the device's streams.",
			labels, func() float64 {
				n := 0
				for _, sc := range e.idx.Load().allStreams {
					if sc.dev == di {
						n += sc.stream.QueueDepth()
					}
				}
				return float64(n)
			})
	}
}

// partCounters returns the hot-spot counters for a partition, or nil
// when observability is disabled (or the index was swapped mid-flight).
func (e *Engine) partCounters(pid uint32) *obs.PartitionCounters {
	if !e.obs.On {
		return nil
	}
	return e.obs.Parts.Get(pid)
}

// notifyProgress advances the progress epoch and wakes drain/close
// waiters after a pipeline progress event. The atomic waiter check keeps
// the common no-waiter case to two atomic operations on the completion
// path.
func (e *Engine) notifyProgress() {
	e.progressEpoch.Add(1)
	if e.drainWaiters.Load() == 0 {
		return
	}
	e.drainMu.Lock()
	e.drainCond.Broadcast()
	e.drainMu.Unlock()
}

// AddSet stages the addition of a tag set with an associated key. The
// set is matchable by the next query through the delta overlay (unless
// Config.DisableDeltaOverlay defers visibility to the next Consolidate).
// In ExactVerify mode the original tags are retained so matches can be
// confirmed exactly (Bloom signatures alone admit rare false positives).
func (e *Engine) AddSet(tags []string, key Key) {
	op := stagedOp{sig: bloom.Signature(tags), key: key}
	if e.cfg.ExactVerify {
		op.tags = append([]string(nil), tags...)
	}
	e.stageOp(op)
}

// AddSignature stages the addition of a pre-computed signature, with the
// same immediate visibility as AddSet.
func (e *Engine) AddSignature(sig bitvec.Vector, key Key) {
	e.stageOp(stagedOp{sig: sig, key: key})
}

// RemoveSet stages the removal of one (set, key) association; the key
// stops matching immediately (a tombstone suppresses the main-index
// entry, or the pending overlay add is cancelled) unless the overlay is
// disabled.
func (e *Engine) RemoveSet(tags []string, key Key) {
	e.RemoveSignature(bloom.Signature(tags), key)
}

// RemoveSignature stages the removal of one (signature, key)
// association, with the same immediate effect as RemoveSet.
func (e *Engine) RemoveSignature(sig bitvec.Vector, key Key) {
	e.stageOp(stagedOp{sig: sig, key: key, remove: true})
}

// stageOp appends one op to the log, absorbs it into the delta overlay
// in the same critical section, and wakes the background consolidator if
// the overlay outgrew its threshold.
func (e *Engine) stageOp(op stagedOp) {
	e.stagedMu.Lock()
	e.staged = append(e.staged, op)
	if !e.cfg.DisableDeltaOverlay {
		e.delta.absorb(e.db, op)
		e.obs.Delta.AbsorbedOps.Add(1)
	}
	e.stagedMu.Unlock()
	e.maybeKickConsolidator()
}

// PendingOps returns the number of staged, unconsolidated operations.
func (e *Engine) PendingOps() int {
	e.stagedMu.Lock()
	defer e.stagedMu.Unlock()
	return len(e.staged)
}

// Consolidate synchronously applies all staged operations and rebuilds
// the index: the balanced partitioning of Algorithm 1, lexicographic
// sorting within partitions, the partition table, the key table, and
// the device-resident tagset tables. It drains in-flight queries first
// and blocks new submissions for the full rebuild — the stop-the-world
// form, kept as the explicit bulk-load API and as the ablation baseline
// for the background consolidator (which runs the same rebuild but
// pauses traffic only for the drain + device-upload swap; see
// consolidator.go).
//
// If the device upload fails (errors.Is(err, ErrDeviceDegraded), with
// the underlying cause — e.g. gpu.ErrOutOfMemory — in the chain), the
// rebuilt index is still installed in CPU-only form: matching keeps
// working on the host, only the GPU offload is lost.
func (e *Engine) Consolidate() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.consolidateOnce(false, nil)
}

// buildHostIndex constructs the host-side half of a fresh index from a
// database snapshot: partitioning, sorted flat table, transposed mirror,
// key table, partition table. It touches no device state, so the
// background consolidator can run it while the previous index still
// holds every device's memory; attachDevices completes the index inside
// the swap's critical section.
func (e *Engine) buildHostIndex(sigs []bitvec.Vector, entriesBySet [][]dbEntry) *index {
	var specs []partitionSpec
	if e.cfg.FirstFitPartitioning {
		specs = firstFitPartition(sigs, e.cfg.MaxPartitionSize)
	} else {
		specs = balancedPartition(sigs, e.cfg.MaxPartitionSize)
	}

	idx := &index{devices: e.cfg.Devices}
	// The row and group arrays carry ~12% slack so incremental folds can
	// append new partitions in place (buildIncrementalIndex aliases these
	// arrays rather than copying them); once the slack is gone, append's
	// own growth re-establishes headroom for the folds that follow.
	idx.sets = make([]bitvec.Vector, 0, len(sigs)+len(sigs)/8+1024)
	if !e.cfg.ScalarKernel && len(sigs) > 0 {
		// idx.groups stays nil for an empty build — it doubles as the
		// "sliced kernel in use" sentinel.
		idx.groups = make([]bitvec.SlicedGroup, 0, len(sigs)/64+len(specs)+len(sigs)/512+64)
	}
	idx.keyOff = make([]uint32, 1, len(sigs)+len(sigs)/8+1025)
	idx.parts = make([]partition, len(specs))
	idx.locks = make([]sync.Mutex, len(specs))

	nDev := len(e.cfg.Devices)
	for pi, spec := range specs {
		sortMembersLexicographically(sigs, spec.members)
		off := uint32(len(idx.sets))
		for _, m := range spec.members {
			idx.sets = append(idx.sets, sigs[m])
			for _, en := range entriesBySet[m] {
				idx.keys = append(idx.keys, en.key)
				if e.cfg.ExactVerify {
					idx.keyTags = append(idx.keyTags, en.tags)
				}
			}
			idx.keyOff = append(idx.keyOff, uint32(len(idx.keys)))
		}
		dev := 0
		if nDev > 0 {
			dev = pi % nDev
		}
		grpOff := uint32(len(idx.groups))
		if !e.cfg.ScalarKernel {
			// Column-transpose the partition for the sliced kernel. The
			// lexicographic sort above doubles as the gate optimizer: it
			// clusters similar signatures into the same 64-lane group,
			// maximizing each group's intersection.
			idx.groups = append(idx.groups,
				bitvec.BuildSlicedGroups(idx.sets[off:])...)
		}
		idx.parts[pi] = partition{
			mask:   spec.mask,
			off:    off,
			n:      uint32(len(spec.members)),
			dev:    dev,
			grpOff: grpOff,
		}
	}
	idx.pt, idx.maskless = buildPartitionTable(idx.parts)
	idx.hostBytes = hostBytesFor(idx)
	// A fresh full build has no duds and no carried row map; incremental
	// folds measure their drift against this baseline.
	idx.fullSets = len(idx.sets)
	return idx
}

// hostBytesFor is the host memory accounting (Fig 9): tagset table host
// copy (24 B/set), its transposed mirror for the sliced kernel (1592 B
// per 64-set SlicedGroup ≈ 24.9 B/set), key table, CSR offsets,
// partition table (scalar bins + bit-sliced groups).
func hostBytesFor(idx *index) int64 {
	return int64(len(idx.sets))*24 +
		int64(len(idx.groups))*slicedGroupBytes +
		int64(len(idx.keys))*4 +
		int64(len(idx.keyOff))*4 +
		int64(idx.pt.entries())*28 +
		idx.pt.slicedBytes() +
		int64(len(idx.parts))*48
}

// attachDevices uploads a host-built index to the configured devices and
// opens its stream pools. On failure the index is degraded in place to a
// usable CPU-only form (dispatch sees no devices and runs every batch on
// the host) and an ErrDeviceDegraded-wrapped error is returned.
func (e *Engine) attachDevices(idx *index) error {
	if len(idx.devices) == 0 {
		return nil
	}
	if err := e.uploadToDevices(idx); err != nil {
		// Device upload failed (out of device memory, too few streams, a
		// dead device): degrade to a CPU-only index rather than leaving
		// the engine without a database.
		idx.release()
		idx.devices = nil
		idx.devBufs = nil
		idx.devGroupBufs = nil
		idx.streams = nil
		idx.devStreams = nil
		return fmt.Errorf("%w: %w", ErrDeviceDegraded, err)
	}
	return nil
}

// slicedGroupBytes is the in-memory size of one bitvec.SlicedGroup:
// 192 column words + 3 used-mask words + the valid word + the 3-word
// gate, 8 bytes each. Asserted against unsafe.Sizeof in the tests.
const slicedGroupBytes = (bitvec.W + bitvec.Blocks + 1 + bitvec.Blocks) * 8

// uploadToDevices allocates and fills the device-resident tagset tables
// and opens the stream pools with their per-stream batch buffers.
func (e *Engine) uploadToDevices(idx *index) error {
	nDev := len(idx.devices)
	idx.devBufs = make([]*gpu.Buffer[bitvec.Vector], nDev)
	idx.devGroupBufs = make([]*gpu.Buffer[bitvec.SlicedGroup], nDev)
	// A full upload lays every row into the base shards; extent ids from
	// an incrementally-built host index (whose adoption fell through)
	// would otherwise point at buffers this index never had.
	idx.devExts, idx.devGrpExts = nil, nil
	for pi := range idx.parts {
		idx.parts[pi].ext = 0
	}

	if e.cfg.Replicate {
		// Full replication: every device holds the whole table (and its
		// transposed mirror for the sliced kernel).
		for d, dev := range idx.devices {
			buf, err := gpu.Alloc[bitvec.Vector](dev, len(idx.sets))
			if err != nil {
				return fmt.Errorf("uploading tagset table to %s: %w", dev.Name(), err)
			}
			if err := buf.CopyToDevice(0, idx.sets); err != nil {
				return err
			}
			idx.devBufs[d] = buf
			if idx.groups == nil {
				continue
			}
			gbuf, err := gpu.Alloc[bitvec.SlicedGroup](dev, len(idx.groups))
			if err != nil {
				return fmt.Errorf("uploading transposed index to %s: %w", dev.Name(), err)
			}
			if err := gbuf.CopyToDevice(0, idx.groups); err != nil {
				return err
			}
			idx.devGroupBufs[d] = gbuf
		}
	} else {
		// Partitioned placement: device d holds only its partitions,
		// re-packed contiguously. Because partitions are assigned
		// round-robin in partition order and the flat table is
		// partition-major, each device's slice is a gather of ranges;
		// the transposed mirror gathers whole-group runs the same way.
		for d, dev := range idx.devices {
			var mine []bitvec.Vector
			var mineGroups []bitvec.SlicedGroup
			for pi := range idx.parts {
				if idx.parts[pi].dev != d {
					continue
				}
				p := &idx.parts[pi]
				p.devOff = uint32(len(mine))
				mine = append(mine, idx.sets[p.off:p.off+p.n]...)
				if idx.groups != nil {
					p.devGrpOff = uint32(len(mineGroups))
					nG := (int(p.n) + 63) / 64
					mineGroups = append(mineGroups,
						idx.groups[p.grpOff:int(p.grpOff)+nG]...)
				}
			}
			buf, err := gpu.Alloc[bitvec.Vector](dev, len(mine))
			if err != nil {
				return fmt.Errorf("uploading tagset shard to %s: %w", dev.Name(), err)
			}
			if err := buf.CopyToDevice(0, mine); err != nil {
				return err
			}
			idx.devBufs[d] = buf
			if idx.groups == nil {
				continue
			}
			gbuf, err := gpu.Alloc[bitvec.SlicedGroup](dev, len(mineGroups))
			if err != nil {
				return fmt.Errorf("uploading transposed shard to %s: %w", dev.Name(), err)
			}
			if err := gbuf.CopyToDevice(0, mineGroups); err != nil {
				return err
			}
			idx.devGroupBufs[d] = gbuf
		}
	}

	// Per-device query window rings: one shared signature ring per
	// device, hit by every stream of the device.
	if !e.cfg.DisableQueryWindow {
		idx.windows = make([]*queryWindow, nDev)
		for d, dev := range idx.devices {
			wbuf, err := gpu.Alloc[bitvec.Vector](dev, e.cfg.QueryWindow)
			if err != nil {
				return fmt.Errorf("allocating query window on %s: %w", dev.Name(), err)
			}
			idx.windows[d] = newQueryWindow(wbuf)
		}
	}

	depth := e.cfg.StreamDepth
	if e.cfg.Replicate {
		idx.streams = make(chan *streamSlot, nDev*e.cfg.StreamsPerDevice*depth)
	} else {
		idx.devStreams = make([]chan *streamSlot, nDev)
		for d := range idx.devStreams {
			idx.devStreams[d] = make(chan *streamSlot, e.cfg.StreamsPerDevice*depth)
		}
	}
	for d, dev := range idx.devices {
		for i := 0; i < e.cfg.StreamsPerDevice; i++ {
			s, err := dev.OpenStreamBuffered(streamOpsBuffer(depth))
			if err != nil {
				if errors.Is(err, gpu.ErrTooManyStreams) && i > 0 {
					break // use as many as the device allows
				}
				return err
			}
			sc := &streamCtx{dev: d, stream: s}
			// Feed every device op issued through the stream into the
			// per-op-kind histograms and the issuing batch's trace (the
			// batch's slot rides on the op's attribution tag).
			s.OnOp(e.observeGPUOp)
			// depth slots per stream: the even/odd double buffering of
			// §3.3.2 (generalized), letting batch n+1's upload + kernel
			// run behind batch n's result transfer on the same stream.
			for k := 0; k < depth; k++ {
				sl := &streamSlot{sc: sc, hdrHost: make([]uint32, resHeaderWords)}
				sl.qbuf, err = gpu.Alloc[bitvec.Vector](dev, e.cfg.BatchSize)
				if err == nil {
					sl.qidx, err = gpu.Alloc[uint32](dev, e.cfg.BatchSize)
				}
				if err == nil {
					sl.hdr, err = gpu.Alloc[uint32](dev, resHeaderWords)
				}
				if err == nil {
					sl.pairs, err = gpu.Alloc[byte](dev, pairBufBytes(e.cfg.MaxPairsPerBatch))
				}
				if err == nil && e.cfg.SplitOutputLayout {
					sl.splitQ, err = gpu.Alloc[uint32](dev, splitHeaderWords+e.cfg.MaxPairsPerBatch)
					if err == nil {
						sl.splitS, err = gpu.Alloc[uint32](dev, e.cfg.MaxPairsPerBatch)
					}
				}
				if err != nil {
					sl.free()
					for _, prev := range sc.slots {
						prev.free()
					}
					s.Close()
					return fmt.Errorf("allocating stream buffers on %s: %w", dev.Name(), err)
				}
				sc.slots = append(sc.slots, sl)
			}
			idx.allStreams = append(idx.allStreams, sc)
			for _, sl := range sc.slots {
				if e.cfg.Replicate {
					idx.streams <- sl
				} else {
					idx.devStreams[d] <- sl
				}
			}
		}
	}
	return nil
}

// release frees an index's device resources. Called only after the
// pipeline has drained, so no kernel references the buffers. The
// dispatching fence additionally waits out losing hedge-race attempts,
// which can still be enqueueing stream operations after the drain.
func (idx *index) release() {
	idx.dispatching.Wait()
	for _, sc := range idx.allStreams {
		sc.stream.Synchronize()
		for _, sl := range sc.slots {
			sl.free()
		}
		sc.stream.Close()
	}
	idx.allStreams = nil
	for _, w := range idx.windows {
		w.buf.Free()
	}
	idx.windows = nil
	for _, b := range idx.devBufs {
		b.Free()
	}
	idx.devBufs = nil
	for _, b := range idx.devGroupBufs {
		b.Free()
	}
	idx.devGroupBufs = nil
	for _, exts := range idx.devExts {
		for _, b := range exts {
			b.Free()
		}
	}
	idx.devExts = nil
	for _, exts := range idx.devGrpExts {
		for _, b := range exts {
			b.Free()
		}
	}
	idx.devGrpExts = nil
}

// Close drains the pipeline and releases all resources. The engine cannot
// be used afterwards.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Stop the background consolidator before tearing the pipeline down:
	// a swap in flight completes (its drain still has live workers), and
	// no new one can start once closed is set.
	if e.consolStop != nil {
		close(e.consolStop)
		<-e.consolDone
	}
	if e.flushStop != nil {
		close(e.flushStop)
		<-e.flushDone
	}
	close(e.inputCh)
	e.workerWg.Wait()
	// Preprocess workers are gone; flush whatever they batched, then
	// wait (event-driven, woken by each batch leaving the reduce stage)
	// for the in-flight batches to land.
	e.flushAll(e.idx.Load())
	e.drainWaiters.Add(1)
	e.drainMu.Lock()
	for e.inflightBatches.Load() > 0 {
		e.drainCond.Wait()
	}
	e.drainMu.Unlock()
	e.drainWaiters.Add(-1)
	close(e.reduceCh)
	e.reduceWg.Wait()
	e.idx.Load().release()
	return nil
}

// Drain blocks until every submitted query has completed, flushing open
// batches as needed.
func (e *Engine) Drain() {
	e.flushAll(e.idx.Load())
	e.awaitDrain()
}

// awaitDrain blocks until every submitted query has completed. It is
// event-driven: each progress event (a query finishing pre-processing or
// completing, a batch leaving reduce) wakes the waiter, which re-flushes
// open batches so queries parked in partially filled batches make
// progress. The epoch check closes the lost-wakeup window where a batch
// is created while the waiter is inside flushAll: the waiter only sleeps
// if nothing has progressed since before its flush, and any later event
// must broadcast under drainMu. Go's sequentially consistent atomics
// make the waiter-count/epoch handshake with notifyProgress safe.
func (e *Engine) awaitDrain() {
	if e.completed.Load() >= e.submitted.Load() {
		return
	}
	e.drainWaiters.Add(1)
	defer e.drainWaiters.Add(-1)
	for {
		ep := e.progressEpoch.Load()
		e.flushAll(e.idx.Load())
		if e.completed.Load() >= e.submitted.Load() {
			return
		}
		e.drainMu.Lock()
		if e.progressEpoch.Load() == ep && e.completed.Load() < e.submitted.Load() {
			e.drainCond.Wait()
		}
		e.drainMu.Unlock()
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	idx := e.idx.Load()
	st := Stats{
		UniqueSets:          len(idx.sets),
		Partitions:          len(idx.parts),
		Keys:                len(idx.keys),
		QueriesSubmitted:    e.submitted.Load(),
		QueriesCompleted:    e.completed.Load(),
		BatchesDispatched:   e.batches.Load(),
		BatchesTimedOut:     e.batchesTimedOut.Load(),
		PairsProduced:       e.pairs.Load(),
		KeysDelivered:       e.keysDelivered.Load(),
		ResultOverflows:     e.overflows.Load(),
		PartitionsSearched:  e.partsSearched.Load(),
		RoutedSliced:        e.obs.Routing.SlicedQueries.Load(),
		RoutedScalar:        e.obs.Routing.ScalarQueries.Load(),
		RouteMergeLocks:     e.obs.Routing.MergeLockAcqs.Load(),
		RouteAppends:        e.obs.Routing.MergedAppends.Load(),
		KernelSliced:        e.obs.Kernel.SlicedBatches.Load(),
		KernelScalar:        e.obs.Kernel.ScalarBatches.Load(),
		KernelGateChecks:    e.obs.Kernel.GateChecks.Load(),
		KernelGatePruned:    e.obs.Kernel.GatePruned.Load(),
		KernelGroupScans:    e.obs.Kernel.GroupScans.Load(),
		KernelColumnsWalked: e.obs.Kernel.ColumnsWalked.Load(),
		WindowHits:          e.obs.Streams.WindowHits.Load(),
		WindowMisses:        e.obs.Streams.WindowMisses.Load(),
		WindowEvictions:     e.obs.Streams.WindowEvictions.Load(),
		WindowFallbacks:     e.obs.Streams.WindowFallbacks.Load(),
		H2DQueryBytes:       e.obs.Streams.H2DQueryBytes.Load(),
		QuerySlots:          e.obs.Streams.QuerySlots.Load(),
		PipelinedDispatches: e.obs.Streams.PipelinedDispatches.Load(),
		HostBytes:           idx.hostBytes,
		LastConsolidate:     time.Duration(e.consolidateTime.Load()),
		PreprocessTime:      time.Duration(e.preprocessNs.Load()),
		SubsetMatchTime:     time.Duration(e.matchNs.Load()),
		ReduceTime:          time.Duration(e.reduceNs.Load()),
		GPUFaults:           e.obs.Faults.GPUFaults.Load(),
		BatchRetries:        e.obs.Faults.BatchRetries.Load(),
		CPUFallbacks:        e.obs.Faults.CPUFallbacks.Load(),
		DeviceQuarantines:   e.obs.Faults.Quarantines.Load(),
		RecoveryProbes:      e.obs.Faults.Probes.Load(),
		DeviceRecoveries:    e.obs.Faults.Recoveries.Load(),
		QueriesShed:         e.obs.Faults.QueriesShed.Load(),
		DeadlineExpired:     e.obs.Faults.DeadlineExpired.Load(),
		BatchesCancelled:    e.obs.Faults.BatchesCancelled.Load(),
		HedgesFired:         e.obs.Faults.HedgesFired.Load(),
		HedgesWon:           e.obs.Faults.HedgesWon.Load(),
		HedgesLost:          e.obs.Faults.HedgesLost.Load(),
		HedgesCancelled:     e.obs.Faults.HedgesCancelled.Load(),
		DeltaAdds:           e.delta.addsLive.Load(),
		DeltaTombstones:     e.delta.tombsLive.Load(),
		DeltaAbsorbedOps:    e.obs.Delta.AbsorbedOps.Load(),
		DeltaMatches:        e.obs.Delta.OverlayMatches.Load(),
		DeltaKeys:           e.obs.Delta.OverlayKeys.Load(),
		TombstoneSuppressed: e.obs.Delta.TombSuppressed.Load(),
		AutoConsolidations:  e.obs.Delta.AutoConsolidations.Load(),
		IncrementalFolds:    e.incFolds.Load(),
		LastSwapPause:       time.Duration(e.swapPauseNs.Load()),
	}
	for _, dev := range idx.devices {
		st.DeviceBytes = append(st.DeviceBytes, dev.MemInUse())
	}
	return st
}
