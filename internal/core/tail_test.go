package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tagmatch/internal/gpu"
)

// TestDeadlineExpiredNeverLaunches pins the tentpole invariant of
// deadline propagation: queries whose context has already ended are
// completed with ErrDeadlineExceeded by the dispatch-time expiry sweep,
// and since every member of every batch is expired, no batch reaches a
// kernel launch — the device's launch counter does not move.
func TestDeadlineExpiredNeverLaunches(t *testing.T) {
	db := makeTestDB(500, 5, 2, 81)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 16, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	baseLaunches := dev.Stats().KernelLaunches

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every submission is born expired

	const n = 200
	queries := db.makeQueries(n, 82)
	errs := make(chan error, n)
	for _, q := range queries {
		if err := e.SubmitSignatureCtx(ctx, q, false, func(r MatchResult) { errs <- r.Err }); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	for i := 0; i < n; i++ {
		err := <-errs
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("expired query %d: err = %v, want ErrDeadlineExceeded", i, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expired query %d: err = %v does not carry the context cause", i, err)
		}
	}

	st := e.Stats()
	if st.DeadlineExpired != n {
		t.Fatalf("DeadlineExpired = %d, want %d", st.DeadlineExpired, n)
	}
	if st.BatchesCancelled == 0 {
		t.Fatal("no batches cancelled despite all-expired membership")
	}
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if got := dev.Stats().KernelLaunches; got != baseLaunches {
		t.Fatalf("expired queries reached the device: launches %d -> %d",
			baseLaunches, got)
	}
}

// TestMatchCtxDeadline checks the blocking path: a straggling device
// holds every batch far beyond the caller's deadline, and MatchSignatureCtx
// returns promptly with an error matching both ErrDeadlineExceeded and
// the context cause instead of waiting out the stall.
func TestMatchCtxDeadline(t *testing.T) {
	db := makeTestDB(500, 5, 2, 83)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 16, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPlan(&gpu.FaultPlan{Seed: 5, SlowProb: 1, SlowDelay: 100 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	keys, err := e.MatchSignatureCtx(ctx, db.makeQueries(1, 84)[0], false)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not carry context.DeadlineExceeded", err)
	}
	if keys != nil {
		t.Fatalf("keys = %v alongside a deadline error", keys)
	}
	// The batch itself stalls in 100ms steps; the caller must return on
	// the 5ms deadline, not on batch completion. Allow generous headroom
	// for scheduling, but far below one full stall chain.
	if elapsed > 80*time.Millisecond {
		t.Fatalf("MatchSignatureCtx took %v, want prompt return on the deadline", elapsed)
	}
}

// TestHedgeExactlyOnce drives a two-device engine where the first device
// straggles on every operation and the hedge budget is far below the
// stall: nearly every batch hedges, the rival attempt lands on the clean
// device, and despite two attempts racing per batch every query is
// answered exactly once with exact keys.
func TestHedgeExactlyOnce(t *testing.T) {
	db := makeTestDB(1000, 5, 2, 85)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 32, Threads: 2,
		Devices: devs, StreamsPerDevice: 2, Replicate: true,
		HedgePolicy: HedgePolicy{Mode: HedgeFixed, Budget: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}
	devs[0].SetFaultPlan(&gpu.FaultPlan{Seed: 6, SlowProb: 1, SlowDelay: 3 * time.Millisecond})

	verifyEngine(t, e, db, db.makeQueries(2000, 86), false)

	st := e.Stats()
	if st.HedgesFired == 0 {
		t.Fatal("no hedges fired despite a fully straggling device")
	}
	if st.HedgesWon == 0 {
		t.Fatal("no hedge ever won despite a clean rival device")
	}
	if st.HedgesWon+st.HedgesLost > st.HedgesFired {
		t.Fatalf("hedge accounting: fired %d < won %d + lost %d",
			st.HedgesFired, st.HedgesWon, st.HedgesLost)
	}
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost or duplicated queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
}

// TestChaosStragglersHedged is the tail-tolerance headline test from the
// acceptance criteria: 10k queries against two devices under combined
// chaos — 2% of operations straggling at ~20x magnitude, 5% injected
// faults, and one device dying mid-run — with hedging enabled. Every
// query must return exactly the brute-force reference keys (hedged
// re-dispatch is exactly-once), and hedges must actually have fired.
func TestChaosStragglersHedged(t *testing.T) {
	db := makeTestDB(2000, 5, 2, 87)
	devs := []*gpu.Device{newTestGPU(t, 2), newTestGPU(t, 2)}
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 64, Threads: 4,
		Devices: devs, StreamsPerDevice: 3, Replicate: true,
		FailureThreshold:  3,
		QuarantineBackoff: time.Millisecond,
		HedgePolicy:       HedgePolicy{Mode: HedgeFixed, Budget: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// Device 0 dies a few hundred operations in; device 1 survives under
	// 5% faults plus 2% stragglers stalled 2ms — ~20x the microsecond
	// scale of an unslowed simulated operation.
	devs[0].SetFaultPlan(&gpu.FaultPlan{
		Seed: 11, DieAtOp: 500, SlowProb: 0.02, SlowDelay: 2 * time.Millisecond,
	})
	devs[1].SetFaultPlan(&gpu.FaultPlan{
		Seed: 12, CopyFailProb: 0.05, LaunchFailProb: 0.05,
		SlowProb: 0.02, SlowDelay: 2 * time.Millisecond,
	})

	verifyEngine(t, e, db, db.makeQueries(10000, 88), false)

	if !devs[0].Dead() {
		t.Fatal("device 0 never reached its scripted death")
	}
	st := e.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("lost queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	if st.HedgesFired == 0 {
		t.Fatal("no hedges fired under injected stragglers")
	}
	if st.GPUFaults == 0 {
		t.Fatal("no GPU faults recorded despite active fault plans")
	}
	if st.DeviceQuarantines == 0 {
		t.Fatal("dead device was never quarantined")
	}
	slowed := devs[0].Stats().InjectedSlowdowns + devs[1].Stats().InjectedSlowdowns
	if slowed == 0 {
		t.Fatal("no stragglers injected despite SlowProb plans")
	}
}

// TestHedgePercentileBudget checks the adaptive budget: before the
// per-device service histogram has hedgeMinSamples observations the
// budget is the floor, and once warmed it tracks the configured quantile
// times the multiplier.
func TestHedgePercentileBudget(t *testing.T) {
	db := makeTestDB(500, 5, 2, 89)
	dev := newTestGPU(t, 2)
	e, err := New(Config{
		MaxPartitionSize: 200, BatchSize: 16, Threads: 2,
		Devices: []*gpu.Device{dev}, StreamsPerDevice: 2,
		HedgePolicy: HedgePolicy{
			Mode: HedgePercentile, Percentile: 0.99,
			Multiplier: 3, MinBudget: 750 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db.load(e)
	if err := e.Consolidate(); err != nil {
		t.Fatal(err)
	}

	if got := e.hedgeBudget(0); got != 750*time.Microsecond {
		t.Fatalf("cold budget = %v, want the MinBudget floor", got)
	}

	// Warm the histogram past hedgeMinSamples with real batches.
	verifyEngine(t, e, db, db.makeQueries(600, 90), false)
	if n := e.health[0].svc.Count(); n < hedgeMinSamples {
		t.Fatalf("service histogram has %d samples, want >= %d", n, hedgeMinSamples)
	}
	warm := e.hedgeBudget(0)
	if warm < 750*time.Microsecond {
		t.Fatalf("warm budget %v below the MinBudget floor", warm)
	}
	want := time.Duration(float64(e.health[0].svc.Snapshot().QuantileDuration(0.99)) * 3)
	if want > 750*time.Microsecond && warm != want {
		t.Fatalf("warm budget = %v, want p99*multiplier = %v", warm, want)
	}
}

// TestHedgePolicyValidation checks config validation and defaulting of
// the hedge policy.
func TestHedgePolicyValidation(t *testing.T) {
	if _, err := New(Config{Threads: 1, HedgePolicy: HedgePolicy{Mode: "wild"}}); !errors.Is(err, ErrUnknownHedgeMode) {
		t.Fatalf("err = %v, want ErrUnknownHedgeMode", err)
	}
	e, err := New(Config{Threads: 1, HedgePolicy: HedgePolicy{Mode: HedgeFixed}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.cfg.HedgePolicy.Budget; got != 5*time.Millisecond {
		t.Fatalf("defaulted fixed budget = %v, want 5ms", got)
	}
	e2, err := New(Config{Threads: 1, HedgePolicy: HedgePolicy{Mode: HedgePercentile}})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	p := e2.cfg.HedgePolicy
	if p.Percentile != 0.99 || p.Multiplier != 3 || p.MinBudget != 500*time.Microsecond {
		t.Fatalf("percentile defaults = %+v", p)
	}
}
