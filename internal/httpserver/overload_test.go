package httpserver

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tagmatch"
)

// saturatedServer builds a server over a CPU-only engine with
// MaxInFlight=1 whose admission budget is fully consumed: one query is
// parked inside its done callback (stalling the single reduce worker)
// and a second admitted query is stuck behind it. The returned release
// function unblocks them.
func saturatedServer(t *testing.T) (*httptest.Server, *tagmatch.Engine, func()) {
	t.Helper()
	eng, err := tagmatch.New(tagmatch.Config{
		Threads: 2, BatchSize: 1, MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddSet([]string{"a"}, 1)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	entered := make(chan struct{})
	release := make(chan struct{})
	if err := eng.Submit([]string{"a"}, func(tagmatch.MatchResult) {
		close(entered)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := eng.Submit([]string{"a"}, func(tagmatch.MatchResult) {}); err != nil {
		t.Fatalf("budget-filling query rejected: %v", err)
	}

	var once sync.Once
	return srv, eng, func() { once.Do(func() { close(release) }) }
}

// TestMatchOverloadedReturns503 checks the HTTP mapping of the admission
// gate: a shed /match answers 503 with a Retry-After header, and the
// server recovers once load drains.
func TestMatchOverloadedReturns503(t *testing.T) {
	srv, eng, release := saturatedServer(t)

	resp, err := http.Post(srv.URL+"/match", "application/json",
		bytes.NewReader([]byte(`{"tags":["a"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /match → %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	if got := eng.Stats().QueriesShed; got == 0 {
		t.Fatal("no shed recorded in engine stats")
	}

	release()
	eng.Drain()
	var match MatchResponse
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"a"}}, &match)
	if match.Count != 1 {
		t.Fatalf("post-recovery match = %+v", match)
	}
}

// TestShedCounterExported checks that the shed shows up on /metrics.
func TestShedCounterExported(t *testing.T) {
	srv, _, release := saturatedServer(t)
	defer release()

	resp, err := http.Post(srv.URL+"/match", "application/json",
		bytes.NewReader([]byte(`{"tags":["a"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(m.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tagmatch_queries_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", buf.String())
	}
}

// TestServeGracefulShutdown checks the Serve helper: cancelling the
// context stops the listener, lets in-flight requests finish, and drains
// the engine so every accepted query completes before Serve returns.
func TestServeGracefulShutdown(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{
		Threads: 2, BatchSize: 4, BatchTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.AddSet([]string{"a"}, 1)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: Handler(eng)}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, srv, ln, eng, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Some in-flight traffic, then the shutdown signal.
	for i := 0; i < 20; i++ {
		var match MatchResponse
		post(t, base+"/match", MatchRequest{Tags: []string{"a", "b"}}, &match)
		if match.Count != 1 {
			t.Fatalf("match %d = %+v", i, match)
		}
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}

	// Every accepted query drained before Serve returned.
	st := eng.Stats()
	if st.QueriesCompleted != st.QueriesSubmitted {
		t.Fatalf("undrained queries: submitted %d completed %d",
			st.QueriesSubmitted, st.QueriesCompleted)
	}
	// The listener is closed: new connections are refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestConsolidateDegradedReported checks the HTTP view of a CPU-only
// degrade: /consolidate answers 200 with the degradation noted, and
// /match keeps working.
func TestConsolidateDegradedReported(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{
		GPUs: 1, GPUMemBytes: 4096, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	for i := 0; i < 2000; i++ {
		post(t, srv.URL+"/add", SetRequest{Tags: []string{"t", string(rune('a' + i%26)), string(rune('A' + i%20))}, Key: tagmatch.Key(i)}, nil)
	}
	resp, err := http.Post(srv.URL+"/consolidate", "application/json",
		bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded consolidate → %d, want 200", resp.StatusCode)
	}
	var cons ConsolidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&cons); err != nil {
		t.Fatal(err)
	}
	if cons.Degraded == "" {
		t.Fatalf("degradation not reported: %+v", cons)
	}
	var match MatchResponse
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"t", "a", "A", "z"}}, &match)
	if match.Count == 0 {
		t.Fatal("degraded engine answered no matches")
	}
}
