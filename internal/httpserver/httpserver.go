// Package httpserver exposes a TagMatch engine over HTTP — the service
// face of the library, toward the paper's future-work goal of embedding
// TagMatch in a full messaging system. cmd/tagmatch-server is a thin
// wrapper around this package.
//
// Endpoints (JSON bodies):
//
//	POST /add          {"tags": ["a","b"], "key": 42}
//	POST /remove       {"tags": ["a","b"], "key": 42}
//	POST /consolidate  {}
//	POST /match        {"tags": ["a","b","c"]}
//	POST /match-unique {"tags": ["a","b","c"]}
//	GET  /stats
//	GET  /healthz
package httpserver

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"tagmatch"
)

// SetRequest stages an addition or removal.
type SetRequest struct {
	Tags []string     `json:"tags"`
	Key  tagmatch.Key `json:"key"`
}

// MatchRequest carries a query.
type MatchRequest struct {
	Tags []string `json:"tags"`
}

// MatchResponse carries a query result.
type MatchResponse struct {
	Keys    []tagmatch.Key `json:"keys"`
	Count   int            `json:"count"`
	Elapsed string         `json:"elapsed"`
}

// ConsolidateResponse reports the index shape after a rebuild.
type ConsolidateResponse struct {
	Sets       int    `json:"sets"`
	Partitions int    `json:"partitions"`
	Keys       int    `json:"keys"`
	Elapsed    string `json:"elapsed"`
}

// StagedResponse reports the staging backlog after add/remove.
type StagedResponse struct {
	Staged int `json:"staged"`
}

// Handler builds the HTTP handler for an engine. The caller owns the
// engine's lifecycle.
func Handler(eng *tagmatch.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /add", func(w http.ResponseWriter, r *http.Request) {
		var req SetRequest
		if !decode(w, r, &req) {
			return
		}
		eng.AddSet(req.Tags, req.Key)
		writeJSON(w, StagedResponse{Staged: eng.PendingOps()})
	})
	mux.HandleFunc("POST /remove", func(w http.ResponseWriter, r *http.Request) {
		var req SetRequest
		if !decode(w, r, &req) {
			return
		}
		eng.RemoveSet(req.Tags, req.Key)
		writeJSON(w, StagedResponse{Staged: eng.PendingOps()})
	})
	mux.HandleFunc("POST /consolidate", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if err := eng.Consolidate(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st := eng.Stats()
		writeJSON(w, ConsolidateResponse{
			Sets:       st.UniqueSets,
			Partitions: st.Partitions,
			Keys:       st.Keys,
			Elapsed:    time.Since(start).String(),
		})
	})
	mux.HandleFunc("POST /match", matchHandler(eng, false))
	mux.HandleFunc("POST /match-unique", matchHandler(eng, true))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func matchHandler(eng *tagmatch.Engine, unique bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MatchRequest
		if !decode(w, r, &req) {
			return
		}
		start := time.Now()
		var keys []tagmatch.Key
		var err error
		if unique {
			keys, err = eng.MatchUnique(req.Tags)
		} else {
			keys, err = eng.Match(req.Tags)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if keys == nil {
			keys = []tagmatch.Key{}
		}
		writeJSON(w, MatchResponse{Keys: keys, Count: len(keys), Elapsed: time.Since(start).String()})
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpserver: encoding response: %v", err)
	}
}
