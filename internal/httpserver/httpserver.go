// Package httpserver exposes a TagMatch engine over HTTP — the service
// face of the library, toward the paper's future-work goal of embedding
// TagMatch in a full messaging system. cmd/tagmatch-server is a thin
// wrapper around this package.
//
// Endpoints (JSON bodies):
//
//	POST   /add          {"tags": ["a","b"], "key": 42}
//	POST   /remove       {"tags": ["a","b"], "key": 42}
//	POST   /sets         alias of /add (live-update REST face)
//	DELETE /sets         alias of /remove
//	POST   /consolidate  {}
//	POST   /match        {"tags": ["a","b","c"], "timeout_ms": 50}
//	POST   /match-unique {"tags": ["a","b","c"], "timeout_ms": 50}
//	GET    /stats        cumulative engine counters (JSON, snake_case keys)
//	GET    /debug/stats  stats + stage histograms, per-partition counters,
//	                     gauges, recent traces, latency attribution with
//	                     exemplar trace ids, per-device counters (JSON)
//	GET    /debug/timeline  sampled traces + device op logs as a Chrome
//	                     trace-event file (load in Perfetto); ?trace=<id>
//	                     restricts to one sampled query
//	GET    /metrics      Prometheus text exposition (format 0.0.4)
//	GET    /healthz
//
// Adds and removes are match-visible immediately (the engine's delta
// overlay); POST /consolidate remains available to force a synchronous
// fold of staged operations into the partitioned index, which otherwise
// happens in the background once the overlay outgrows its threshold.
//
// When the engine's MaxInFlight admission gate sheds a query, /match and
// /match-unique answer 503 Service Unavailable with a Retry-After
// header; clients should back off and retry. A query that misses its
// timeout_ms budget — or whose client disconnects — answers 504 Gateway
// Timeout instead, counted separately (tagmatch_http_timeouts_total) so
// dashboards distinguish tail latency from load shedding.
//
// The /metrics endpoint exports everything a dashboard needs: engine
// counters as tagmatch_*_total, database shape and memory as gauges,
// per-stage latency histograms labeled {stage=...}, per-device counters
// labeled {device=...}, and the hottest partitions' counters labeled
// {partition=...} (capped to keep series cardinality bounded; the JSON
// /debug/stats carries every partition).
package httpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"tagmatch"
	"tagmatch/internal/obs"
)

// SetRequest stages an addition or removal.
type SetRequest struct {
	Tags []string     `json:"tags"`
	Key  tagmatch.Key `json:"key"`
}

// MatchRequest carries a query. TimeoutMs, when positive, bounds the
// query's end-to-end time inside the engine: past it the request is
// answered 504 and the query is expired at the next stage boundary
// instead of occupying a device. The client disconnecting has the same
// effect (the request context propagates into the engine either way).
type MatchRequest struct {
	Tags      []string `json:"tags"`
	TimeoutMs int      `json:"timeout_ms,omitempty"`
}

// MatchResponse carries a query result.
type MatchResponse struct {
	Keys    []tagmatch.Key `json:"keys"`
	Count   int            `json:"count"`
	Elapsed string         `json:"elapsed"`
}

// ConsolidateResponse reports the index shape after a rebuild. Degraded
// is non-empty when the rebuild succeeded but the device upload failed
// and the engine is running CPU-only (tagmatch.ErrDeviceDegraded).
type ConsolidateResponse struct {
	Sets       int    `json:"sets"`
	Partitions int    `json:"partitions"`
	Keys       int    `json:"keys"`
	Elapsed    string `json:"elapsed"`
	Degraded   string `json:"degraded,omitempty"`
}

// StagedResponse reports the staging backlog after add/remove.
type StagedResponse struct {
	Staged int `json:"staged"`
}

// Handler builds the HTTP handler for an engine. The caller owns the
// engine's lifecycle.
func Handler(eng *tagmatch.Engine) http.Handler {
	mux := http.NewServeMux()
	addHandler := func(w http.ResponseWriter, r *http.Request) {
		var req SetRequest
		if !decode(w, r, &req) {
			return
		}
		eng.AddSet(req.Tags, req.Key)
		writeJSON(w, StagedResponse{Staged: eng.PendingOps()})
	}
	removeHandler := func(w http.ResponseWriter, r *http.Request) {
		var req SetRequest
		if !decode(w, r, &req) {
			return
		}
		eng.RemoveSet(req.Tags, req.Key)
		writeJSON(w, StagedResponse{Staged: eng.PendingOps()})
	}
	mux.HandleFunc("POST /add", addHandler)
	mux.HandleFunc("POST /remove", removeHandler)
	// RESTful aliases for the live-update workflow: POST adds an
	// association, DELETE removes one — both visible on the very next
	// query through the delta overlay.
	mux.HandleFunc("POST /sets", addHandler)
	mux.HandleFunc("DELETE /sets", removeHandler)
	mux.HandleFunc("POST /consolidate", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		resp := ConsolidateResponse{}
		if err := eng.Consolidate(); err != nil {
			if !errors.Is(err, tagmatch.ErrDeviceDegraded) {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			// The index was installed CPU-only; report success with the
			// degradation, mirroring the engine's own semantics.
			resp.Degraded = err.Error()
		}
		st := eng.Stats()
		resp.Sets, resp.Partitions, resp.Keys = st.UniqueSets, st.Partitions, st.Keys
		resp.Elapsed = time.Since(start).String()
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /match", matchHandler(eng, false))
	mux.HandleFunc("POST /match-unique", matchHandler(eng, true))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("GET /debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, DebugStats{
			Stats:   eng.Stats(),
			Obs:     eng.Obs().Snapshot(true),
			Devices: eng.DeviceStats(),
		})
	})
	mux.HandleFunc("GET /debug/timeline", timelineHandler(eng))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, eng)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// DebugStats is the GET /debug/stats response: the cumulative counters,
// the full observability snapshot (all partitions, recent traces), and
// per-device activity.
type DebugStats struct {
	Stats   tagmatch.Stats        `json:"stats"`
	Obs     obs.Snapshot          `json:"obs"`
	Devices []tagmatch.DeviceStat `json:"devices,omitempty"`
}

// writeMetrics renders the Prometheus exposition: engine counters and
// shape first, then per-device counters, then the obs layer (stage
// histograms, gauges, hot partitions).
func writeMetrics(w http.ResponseWriter, eng *tagmatch.Engine) {
	pw := obs.NewPromWriter(w)
	st := eng.Stats()

	pw.Counter("tagmatch_queries_submitted_total",
		"Queries accepted by Submit/Match.", nil, float64(st.QueriesSubmitted))
	pw.Counter("tagmatch_queries_completed_total",
		"Queries whose results were delivered.", nil, float64(st.QueriesCompleted))
	pw.Counter("tagmatch_batches_dispatched_total",
		"Batches dispatched to the subset-match stage.", nil, float64(st.BatchesDispatched))
	pw.Counter("tagmatch_batches_timed_out_total",
		"Batches dispatched by the flush timeout rather than by filling.", nil, float64(st.BatchesTimedOut))
	pw.Counter("tagmatch_pairs_produced_total",
		"(query,set) candidate pairs produced by subset match.", nil, float64(st.PairsProduced))
	pw.Counter("tagmatch_keys_delivered_total",
		"Keys delivered to callers across all queries.", nil, float64(st.KeysDelivered))
	pw.Counter("tagmatch_result_overflows_total",
		"Batches whose result buffer overflowed (CPU fallback).", nil, float64(st.ResultOverflows))
	pw.Counter("tagmatch_partitions_searched_total",
		"Partition visits after Algorithm 2 pruning.", nil, float64(st.PartitionsSearched))

	pw.Gauge("tagmatch_db_sets", "Unique tag sets in the consolidated index.",
		nil, float64(st.UniqueSets))
	pw.Gauge("tagmatch_db_partitions", "Partitions in the consolidated index.",
		nil, float64(st.Partitions))
	pw.Gauge("tagmatch_db_keys", "Distinct (set,key) associations.",
		nil, float64(st.Keys))
	pw.Gauge("tagmatch_host_bytes", "Host memory held by the index.",
		nil, float64(st.HostBytes))
	pw.Gauge("tagmatch_last_consolidate_seconds",
		"Duration of the most recent Consolidate.", nil, st.LastConsolidate.Seconds())

	for _, sb := range []struct {
		stage string
		d     time.Duration
	}{
		{obs.StagePreprocess, st.PreprocessTime},
		{obs.StageSubsetMatch, st.SubsetMatchTime},
		{obs.StageReduce, st.ReduceTime},
	} {
		pw.Counter("tagmatch_stage_busy_seconds_total",
			"Cumulative busy time per pipeline stage, summed across workers.",
			obs.Labels{{"stage", sb.stage}}, sb.d.Seconds())
	}

	for _, ds := range eng.DeviceStats() {
		lbl := obs.Labels{{"device", ds.Name}}
		pw.Counter("tagmatch_device_kernel_launches_total",
			"Kernel launches on the device.", lbl, float64(ds.Stats.KernelLaunches))
		pw.Counter("tagmatch_device_blocks_executed_total",
			"Thread blocks executed on the device.", lbl, float64(ds.Stats.BlocksExecuted))
		pw.Counter("tagmatch_device_copies_htod_total",
			"Host-to-device copies.", lbl, float64(ds.Stats.CopiesHtoD))
		pw.Counter("tagmatch_device_copies_dtoh_total",
			"Device-to-host copies.", lbl, float64(ds.Stats.CopiesDtoH))
		pw.Counter("tagmatch_device_bytes_htod_total",
			"Bytes copied host-to-device.", lbl, float64(ds.Stats.BytesHtoD))
		pw.Counter("tagmatch_device_bytes_dtoh_total",
			"Bytes copied device-to-host.", lbl, float64(ds.Stats.BytesDtoH))
		pw.Gauge("tagmatch_device_mem_bytes",
			"Device memory currently allocated.", lbl, float64(ds.Stats.MemInUse))
		pw.Gauge("tagmatch_device_mem_high_water_bytes",
			"Peak device memory allocated.", lbl, float64(ds.Stats.MemHighWater))
	}

	eng.Obs().WriteProm(pw)
}

func matchHandler(eng *tagmatch.Engine, unique bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MatchRequest
		if !decode(w, r, &req) {
			return
		}
		start := time.Now()
		// The request context propagates into the engine: a client
		// deadline (TimeoutMs) or disconnect expires the query at the
		// next stage boundary instead of letting it occupy a device.
		ctx := r.Context()
		if req.TimeoutMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
			defer cancel()
		}
		var keys []tagmatch.Key
		var err error
		if unique {
			keys, err = eng.MatchUniqueCtx(ctx, req.Tags)
		} else {
			keys, err = eng.MatchCtx(ctx, req.Tags)
		}
		if err != nil {
			if errors.Is(err, tagmatch.ErrOverloaded) {
				// Load shed by the admission gate: tell the client to back
				// off and retry rather than reporting a server fault.
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			if errors.Is(err, tagmatch.ErrDeadlineExceeded) ||
				errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				// Deadline or cancellation, not a server fault: a distinct
				// status and counter so dashboards separate tail latency
				// from breakage.
				eng.Obs().Faults.HTTPTimeouts.Add(1)
				http.Error(w, err.Error(), http.StatusGatewayTimeout)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if keys == nil {
			keys = []tagmatch.Key{}
		}
		writeJSON(w, MatchResponse{Keys: keys, Count: len(keys), Elapsed: time.Since(start).String()})
	}
}

// Serve runs srv on ln until ctx is cancelled (cmd/tagmatch-server wires
// ctx to SIGINT/SIGTERM), then shuts down gracefully: the listener stops
// accepting, in-flight HTTP requests get up to timeout to complete, and
// the engine drains its in-flight queries so no accepted work is lost.
// It returns nil after a clean shutdown, or the first serve/shutdown
// error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, eng *tagmatch.Engine, timeout time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err // serve failed before any shutdown request
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Stragglers were cut off; their engine queries still drain below.
		err = nil
	}
	eng.Drain()
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpserver: encoding response: %v", err)
	}
}
