package httpserver

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tagmatch"
)

// TestMatchTimeoutReturns504 checks the HTTP mapping of end-to-end
// deadlines: a /match whose timeout_ms budget lapses while the pipeline
// is stalled answers 504 Gateway Timeout, the dedicated timeout counter
// moves (distinct from the 503 shed counter), and the server answers
// normally once the stall clears.
func TestMatchTimeoutReturns504(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{Threads: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.AddSet([]string{"a"}, 1)
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	// Park one query inside its done callback, stalling the reduce
	// worker so the timed query cannot complete inside its budget.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	unstall := func() { once.Do(func() { close(release) }) }
	defer unstall()
	if err := eng.Submit([]string{"a"}, func(tagmatch.MatchResult) {
		close(entered)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-entered

	resp, err := http.Post(srv.URL+"/match", "application/json",
		bytes.NewReader([]byte(`{"tags":["a"],"timeout_ms":30}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled /match with timeout_ms → %d (%s), want 504",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if got := eng.Obs().Faults.HTTPTimeouts.Load(); got != 1 {
		t.Fatalf("HTTPTimeouts = %d, want 1", got)
	}
	if got := eng.Stats().QueriesShed; got != 0 {
		t.Fatalf("timeout counted as shed: QueriesShed = %d", got)
	}

	// The timeout is exported on /metrics for dashboards.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "tagmatch_http_timeouts_total 1") {
		t.Fatal("tagmatch_http_timeouts_total not exported on /metrics")
	}

	// Clear the stall: the server recovers and answers within budget.
	unstall()
	eng.Drain()
	var match MatchResponse
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"a"}, TimeoutMs: 5000}, &match)
	if match.Count != 1 {
		t.Fatalf("post-recovery match = %+v", match)
	}
}
