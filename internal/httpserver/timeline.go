package httpserver

import (
	"net/http"
	"strconv"
	"time"

	"tagmatch"
	"tagmatch/internal/obs"
)

// GET /debug/timeline renders the sampled traces and the per-device
// operation logs as a Chrome trace-event file (the JSON format Perfetto
// and chrome://tracing load directly). Two groups of tracks come out:
//
//   - pid 1, "queries": one thread per sampled query (named by trace id
//     and terminal status), carrying the query's stage spans — each
//     split into a "<stage> (wait)" slice followed by the service slice
//     — and the service phase of its device ops (h2d/kernel/d2h, queue
//     wait in args, nested under the subset_match window).
//   - pid 2+d, one per device: one thread per stream (plus "direct" for
//     non-stream ops), carrying every retained device operation with
//     bytes/blocks/queue-wait in args. This is where the §3.3.2 copy/
//     kernel overlap across streams is visible at a glance.
//
// ?trace=<id> restricts the query tracks to one sampled query (device
// tracks are always complete). A query fanned out to several partitions
// legitimately has overlapping subset_match slices on its track;
// Perfetto renders partial overlap best-effort.

// traceEvent is one entry of the Chrome trace-event format. Timestamps
// and durations are microseconds relative to the capture's epoch.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// timelineDoc is the GET /debug/timeline response body.
type timelineDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const queriesPID = 1 // device d gets pid 2+d

func timelineHandler(eng *tagmatch.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var only uint64
		if s := r.URL.Query().Get("trace"); s != "" {
			id, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+s, http.StatusBadRequest)
				return
			}
			only = id
		}
		traces := eng.Obs().Tracer.Recent()
		if only != 0 {
			kept := traces[:0]
			for _, tr := range traces {
				if tr.ID == only {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		writeJSON(w, buildTimeline(traces, eng.DeviceOpRecords()))
	}
}

// buildTimeline converts trace records and device op logs into one
// trace-event document on a shared epoch (the earliest timestamp seen).
func buildTimeline(traces []obs.TraceRecord, devices []tagmatch.DeviceOps) timelineDoc {
	var epoch time.Time
	for _, tr := range traces {
		if epoch.IsZero() || tr.Start.Before(epoch) {
			epoch = tr.Start
		}
	}
	for _, d := range devices {
		for _, op := range d.Ops {
			if epoch.IsZero() || op.Start.Before(epoch) {
				epoch = op.Start
			}
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(epoch).Nanoseconds()) / 1e3 }
	durUS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

	doc := timelineDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	emit := func(ev traceEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }
	meta := func(pid, tid int, kind, name string) {
		emit(traceEvent{Name: kind, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name}})
	}

	if len(traces) > 0 {
		meta(queriesPID, 0, "process_name", "queries")
	}
	for _, tr := range traces {
		tid := int(tr.ID)
		meta(queriesPID, tid, "thread_name",
			"trace "+strconv.FormatUint(tr.ID, 10)+" ("+tr.Status+")")
		// Root span: the query's full submit→finalize extent.
		emit(traceEvent{Name: "query", Cat: "query", Ph: "X",
			TS: us(tr.Start), Dur: durUS(tr.End), PID: queriesPID, TID: tid,
			Args: map[string]any{"trace_id": tr.ID, "status": tr.Status}})
		for _, sp := range tr.Spans {
			args := map[string]any{"parent": sp.Parent}
			if sp.Partition >= 0 {
				args["partition"] = sp.Partition
			}
			if sp.Device != "" {
				args["device"] = sp.Device
				args["stream"] = sp.Stream
			}
			if sp.N != 0 {
				args["n"] = sp.N
			}
			start := tr.Start.Add(sp.Start)
			if sp.Parent == obs.StageSubsetMatch {
				// Device op: service slice only; its queue wait overlaps
				// the preceding op's service, which would break slice
				// nesting on the track. The wait rides along in args.
				args["wait_us"] = durUS(sp.Wait)
				emit(traceEvent{Name: sp.Name, Cat: "gpu", Ph: "X",
					TS: us(start.Add(sp.Wait)), Dur: durUS(sp.Dur),
					PID: queriesPID, TID: tid, Args: args})
				continue
			}
			if sp.Wait > 0 {
				emit(traceEvent{Name: sp.Name + " (wait)", Cat: "wait", Ph: "X",
					TS: us(start), Dur: durUS(sp.Wait),
					PID: queriesPID, TID: tid, Args: args})
			}
			if sp.Dur > 0 || sp.Wait == 0 {
				emit(traceEvent{Name: sp.Name, Cat: "stage", Ph: "X",
					TS: us(start.Add(sp.Wait)), Dur: durUS(sp.Dur),
					PID: queriesPID, TID: tid, Args: args})
			}
		}
	}

	for d, dev := range devices {
		pid := 2 + d
		if len(dev.Ops) == 0 {
			continue
		}
		meta(pid, 0, "process_name", dev.Name)
		named := map[int]bool{}
		for _, op := range dev.Ops {
			tid := op.Stream
			name := "stream " + strconv.Itoa(op.Stream)
			if op.Stream < 0 {
				tid = 1 << 20 // park direct (non-stream) ops on their own track
				name = "direct"
			}
			if !named[tid] {
				named[tid] = true
				meta(pid, tid, "thread_name", name)
			}
			args := map[string]any{"wait_us": durUS(op.Wait())}
			if op.Bytes > 0 {
				args["bytes"] = op.Bytes
			}
			if op.Blocks > 0 {
				args["blocks"] = op.Blocks
			}
			emit(traceEvent{Name: op.KindName(), Cat: "gpu", Ph: "X",
				TS: us(op.Start), Dur: durUS(op.Service()),
				PID: pid, TID: tid, Args: args})
		}
	}
	return doc
}
