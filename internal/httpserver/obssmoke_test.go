package httpserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tagmatch"
)

// TestObsSmoke is the `make obs-smoke` target: boot a server with
// tracing on, push traffic through it, and assert the two observability
// export surfaces are well-formed — /metrics parses as Prometheus text
// exposition (and carries the GPU utilization/overlap/op-latency
// families), /debug/timeline parses as a Chrome trace-event file with
// per-stream device-op slices, and /debug/stats carries the latency
// attribution table with exemplar trace ids.
func TestObsSmoke(t *testing.T) {
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	for i := 0; i < 40; i++ {
		post(t, srv.URL+"/add", SetRequest{
			Tags: []string{"a", fmt.Sprintf("t%d", i%10)}, Key: tagmatch.Key(i),
		}, nil)
	}
	post(t, srv.URL+"/consolidate", struct{}{}, nil)
	for i := 0; i < 25; i++ {
		var mr MatchResponse
		post(t, srv.URL+"/match", MatchRequest{
			Tags: []string{"a", fmt.Sprintf("t%d", i%10), "x"},
		}, &mr)
	}

	t.Run("metrics", func(t *testing.T) {
		body := get(t, srv.URL+"/metrics")
		families := validatePromExposition(t, body)
		for _, want := range []string{
			"tagmatch_gpu_overlap_fraction",
			"tagmatch_gpu_utilization",
			"tagmatch_gpu_stream_queue_depth",
			"tagmatch_gpu_op_duration_seconds",
			"tagmatch_queue_wait_seconds",
			"tagmatch_stage_duration_seconds",
			"tagmatch_query_window_lookups_total",
			"tagmatch_h2d_query_bytes_per_query",
			"tagmatch_stream_slot_occupancy",
			"tagmatch_pipelined_dispatches_total",
			"tagmatch_pipeline_overlap_fraction",
		} {
			if !families[want] {
				t.Errorf("metric family %q missing from /metrics", want)
			}
		}
		if !strings.Contains(body, `tagmatch_gpu_utilization{device="sim-gpu-0"}`) {
			t.Error("per-device utilization sample missing")
		}
		if !strings.Contains(body, `tagmatch_gpu_op_duration_seconds_bucket{op="kernel",phase="service"`) {
			t.Error("per-op-kind latency histogram missing")
		}
	})

	t.Run("timeline", func(t *testing.T) {
		var doc struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				TS   float64 `json:"ts"`
				Dur  float64 `json:"dur"`
				PID  int     `json:"pid"`
				TID  int     `json:"tid"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/timeline")), &doc); err != nil {
			t.Fatalf("timeline is not valid JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatal("timeline has no events")
		}
		names := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" && ev.Ph != "M" {
				t.Fatalf("unexpected event phase %q: %+v", ev.Ph, ev)
			}
			if ev.Ph == "X" && (ev.TS < 0 || ev.Dur < 0) {
				t.Fatalf("negative timestamp or duration: %+v", ev)
			}
			names[ev.Name] = true
		}
		for _, want := range []string{
			"query", "preprocess", "subset_match", "h2d", "kernel", "d2h",
		} {
			if !names[want] {
				t.Errorf("timeline missing %q spans; have %v", want, names)
			}
		}
	})

	t.Run("attribution", func(t *testing.T) {
		var ds DebugStats
		if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/stats")), &ds); err != nil {
			t.Fatalf("/debug/stats is not valid JSON: %v", err)
		}
		if len(ds.Obs.Attribution) == 0 {
			t.Fatal("no attribution components in /debug/stats")
		}
		stages := map[string]bool{}
		var exemplared int
		for _, c := range ds.Obs.Attribution {
			stages[c.Stage] = true
			if c.ExemplarTraceID != 0 {
				exemplared++
			}
		}
		for _, want := range []string{"preprocess", "gpu_kernel", "reduce", "merge"} {
			if !stages[want] {
				t.Errorf("attribution missing stage %q; have %v", want, stages)
			}
		}
		if exemplared == 0 {
			t.Error("no attribution component carries an exemplar trace id")
		}
		if len(ds.Obs.Exemplars) == 0 {
			t.Error("no latency exemplars in /debug/stats")
		}
	})

	t.Run("streams", func(t *testing.T) {
		var ds DebugStats
		if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/stats")), &ds); err != nil {
			t.Fatalf("/debug/stats is not valid JSON: %v", err)
		}
		// The window is on by default, so every dispatched batch resolved
		// its query slots through it (hit or miss), and the H2D
		// byte/slot accounting must have moved.
		if ds.Stats.WindowHits+ds.Stats.WindowMisses == 0 {
			t.Error("no query-window lookups recorded in /debug/stats")
		}
		if ds.Stats.QuerySlots == 0 || ds.Stats.H2DQueryBytes == 0 {
			t.Errorf("stream byte accounting empty: slots=%d bytes=%d",
				ds.Stats.QuerySlots, ds.Stats.H2DQueryBytes)
		}
		if ds.Obs.Streams.QuerySlots != ds.Stats.QuerySlots {
			t.Errorf("obs snapshot (%d) and stats mirror (%d) disagree on query slots",
				ds.Obs.Streams.QuerySlots, ds.Stats.QuerySlots)
		}
	})
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
)

// validatePromExposition checks text-format structural validity line by
// line — every line is a HELP/TYPE header or a sample whose value parses
// as a float and whose family was declared by a preceding TYPE — and
// returns the declared family names.
func validatePromExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	families := map[string]bool{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				families[m[1]] = true
				continue
			}
			if promHelpRe.MatchString(line) {
				continue
			}
			t.Fatalf("line %d: malformed comment %q", i+1, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); families[base] {
				name = base
				break
			}
		}
		if !families[name] {
			t.Fatalf("line %d: sample %q precedes its # TYPE header", i+1, m[1])
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", i+1, m[3], err)
		}
	}
	if len(families) == 0 {
		t.Fatal("no metric families found")
	}
	return families
}
