package httpserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"tagmatch"
)

func newTestServer(t *testing.T) (*httptest.Server, *tagmatch.Engine) {
	t.Helper()
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestEndToEndFlow(t *testing.T) {
	srv, _ := newTestServer(t)

	var staged StagedResponse
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"go", "gpu"}, Key: 1}, &staged)
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"go"}, Key: 2}, &staged)
	if staged.Staged != 2 {
		t.Fatalf("staged = %d", staged.Staged)
	}

	var cons ConsolidateResponse
	post(t, srv.URL+"/consolidate", struct{}{}, &cons)
	if cons.Sets != 2 || cons.Keys != 2 {
		t.Fatalf("consolidate = %+v", cons)
	}

	var match MatchResponse
	post(t, srv.URL+"/match-unique", MatchRequest{Tags: []string{"go", "gpu", "x"}}, &match)
	keys := match.Keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if match.Count != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("match = %+v", match)
	}
	if match.Elapsed == "" {
		t.Fatal("elapsed missing")
	}
}

func TestRemoveFlow(t *testing.T) {
	srv, _ := newTestServer(t)
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"a"}, Key: 1}, nil)
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"a"}, Key: 2}, nil)
	post(t, srv.URL+"/consolidate", struct{}{}, nil)
	post(t, srv.URL+"/remove", SetRequest{Tags: []string{"a"}, Key: 1}, nil)
	post(t, srv.URL+"/consolidate", struct{}{}, nil)

	var match MatchResponse
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"a", "b"}}, &match)
	if match.Count != 1 || match.Keys[0] != 2 {
		t.Fatalf("after removal: %+v", match)
	}
}

// TestLiveSetsEndpoints drives the RESTful live-update face: POST /sets
// is matchable on the very next query with no consolidate in between,
// and DELETE /sets suppresses the association immediately.
func TestLiveSetsEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)

	var staged StagedResponse
	post(t, srv.URL+"/sets", SetRequest{Tags: []string{"live"}, Key: 9}, &staged)
	if staged.Staged != 1 {
		t.Fatalf("staged = %d, want 1", staged.Staged)
	}
	var match MatchResponse
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"live", "x"}}, &match)
	if match.Count != 1 || match.Keys[0] != 9 {
		t.Fatalf("staged add not live: %+v", match)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/sets",
		bytes.NewReader([]byte(`{"tags":["live"],"key":9}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /sets → %d", resp.StatusCode)
	}
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"live", "x"}}, &match)
	if match.Count != 0 {
		t.Fatalf("removed association still live: %+v", match)
	}
}

func TestEmptyResultIsJSONArray(t *testing.T) {
	srv, _ := newTestServer(t)
	post(t, srv.URL+"/consolidate", struct{}{}, nil)
	resp, err := http.Post(srv.URL+"/match", "application/json",
		bytes.NewReader([]byte(`{"tags":["nothing"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"keys":[]`)) {
		t.Fatalf("empty keys should serialize as []: %s", buf.String())
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/match", "application/json",
		bytes.NewReader([]byte(`{not json`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body → %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(srv.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /match → %d, want 405", getResp.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st tagmatch.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz → %d", h.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"m"}, Key: 7}, nil)
	post(t, srv.URL+"/consolidate", struct{}{}, nil)
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"m", "x"}}, nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE tagmatch_queries_submitted_total counter",
		"tagmatch_queries_submitted_total 1",
		"tagmatch_queries_completed_total 1",
		"tagmatch_db_sets 1",
		`tagmatch_stage_busy_seconds_total{stage="preprocess"}`,
		`tagmatch_device_kernel_launches_total{device="sim-gpu-0"}`,
		`tagmatch_stage_duration_seconds_bucket{stage="e2e",le="+Inf"} 1`,
		`tagmatch_stage_duration_seconds_count{stage="e2e"} 1`,
		"tagmatch_batch_occupancy_queries_count 1",
		`tagmatch_partition_queries_routed_total{partition="0"} 1`,
		`tagmatch_queue_depth{queue="input"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestDebugStatsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	post(t, srv.URL+"/add", SetRequest{Tags: []string{"d"}, Key: 1}, nil)
	post(t, srv.URL+"/consolidate", struct{}{}, nil)
	post(t, srv.URL+"/match", MatchRequest{Tags: []string{"d", "y"}}, nil)

	resp, err := http.Get(srv.URL + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ds DebugStats
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	if ds.Stats.QueriesCompleted != 1 {
		t.Fatalf("stats = %+v", ds.Stats)
	}
	if len(ds.Obs.Stages) != 5 {
		t.Fatalf("obs stages = %d, want 5", len(ds.Obs.Stages))
	}
	found := false
	for _, st := range ds.Obs.Stages {
		if st.Stage == "e2e" && st.Count == 1 && st.P99 > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no populated e2e stage: %+v", ds.Obs.Stages)
	}
	if len(ds.Obs.Partitions) == 0 {
		t.Fatal("debug stats should include all partitions")
	}
	if len(ds.Devices) != 1 || ds.Devices[0].Name != "sim-gpu-0" {
		t.Fatalf("devices = %+v", ds.Devices)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := newTestServer(t)
	for i := 0; i < 50; i++ {
		post(t, srv.URL+"/add", SetRequest{Tags: []string{"common"}, Key: tagmatch.Key(i)}, nil)
	}
	post(t, srv.URL+"/consolidate", struct{}{}, nil)

	done := make(chan int, 16)
	for g := 0; g < 16; g++ {
		go func() {
			var match MatchResponse
			post(t, srv.URL+"/match", MatchRequest{Tags: []string{"common", "x"}}, &match)
			done <- match.Count
		}()
	}
	for g := 0; g < 16; g++ {
		if n := <-done; n != 50 {
			t.Fatalf("concurrent match returned %d keys, want 50", n)
		}
	}
}
