package hashsub

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func randomTagSets(n, maxTags, vocab int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, n)
	for i := range out {
		k := 1 + rng.Intn(maxTags)
		out[i] = make([]string, k)
		for j := range out[i] {
			out[i][j] = fmt.Sprintf("t%d", rng.Intn(vocab))
		}
	}
	return out
}

func build(sets [][]string) *Matcher {
	m := New()
	for i, s := range sets {
		m.Add(s, Key(i))
	}
	m.Freeze()
	return m
}

func bruteForce(sets [][]string, q []string) []Key {
	qset := map[string]bool{}
	for _, t := range q {
		qset[t] = true
	}
	var out []Key
	for i, s := range sets {
		ok := true
		for _, t := range s {
			if !qset[t] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Key(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collect(t *testing.T, m *Matcher, q []string) []Key {
	t.Helper()
	var out []Key
	if err := m.Match(q, func(k Key) { out = append(out, k) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalKeys(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicMatch(t *testing.T) {
	m := build([][]string{{"a", "b"}, {"a"}, {"c"}})
	if got := collect(t, m, []string{"a", "b"}); !equalKeys(got, []Key{0, 1}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(t, m, []string{"c"}); !equalKeys(got, []Key{2}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(t, m, []string{"d"}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	sets := randomTagSets(3000, 4, 40, 101)
	m := build(sets)
	queries := randomTagSets(200, 10, 40, 102)
	for _, q := range queries {
		if got, want := collect(t, m, q), bruteForce(sets, q); !equalKeys(got, want) {
			t.Fatalf("query %v: got %d want %d keys", q, len(got), len(want))
		}
	}
}

func TestQueryWidthBound(t *testing.T) {
	m := build([][]string{{"a"}})
	wide := make([]string, MaxQueryTags+1)
	for i := range wide {
		wide[i] = fmt.Sprintf("w%d", i)
	}
	err := m.Match(wide, func(Key) {})
	var tooWide ErrQueryTooWide
	if !errors.As(err, &tooWide) {
		t.Fatalf("err = %v, want ErrQueryTooWide", err)
	}
	if tooWide.Tags != MaxQueryTags+1 {
		t.Fatalf("reported %d tags", tooWide.Tags)
	}
	// Duplicates do not count against the bound.
	dup := make([]string, 2*MaxQueryTags)
	for i := range dup {
		dup[i] = fmt.Sprintf("d%d", i%MaxQueryTags)
	}
	if err := m.Match(dup, func(Key) {}); err != nil {
		t.Fatalf("duplicate-heavy query rejected: %v", err)
	}
}

func TestEmptyStoredSet(t *testing.T) {
	m := New()
	m.Add(nil, 4)
	m.Freeze()
	if got := collect(t, m, []string{"anything"}); !equalKeys(got, []Key{4}) {
		t.Fatalf("got %v", got)
	}
	if got := collect(t, m, nil); !equalKeys(got, []Key{4}) {
		t.Fatalf("empty query: %v", got)
	}
}

func TestCanonicalizationOrderAndDuplicates(t *testing.T) {
	m := New()
	m.Add([]string{"b", "a", "b"}, 1)
	m.Freeze()
	if m.Sets() != 1 {
		t.Fatalf("Sets = %d", m.Sets())
	}
	if got := collect(t, m, []string{"a", "b"}); !equalKeys(got, []Key{1}) {
		t.Fatalf("got %v", got)
	}
}

func TestEncodingIsPrefixSafe(t *testing.T) {
	// Tag lists that would collide under naive concatenation must not.
	m := New()
	m.Add([]string{"ab"}, 1)
	m.Add([]string{"a", "b"}, 2)
	m.Freeze()
	if got := collect(t, m, []string{"ab"}); !equalKeys(got, []Key{1}) {
		t.Fatalf(`query {"ab"}: got %v`, got)
	}
	if got := collect(t, m, []string{"a", "b"}); !equalKeys(got, []Key{2}) {
		t.Fatalf(`query {"a","b"}: got %v`, got)
	}
	if got := collect(t, m, []string{"a", "b", "ab"}); !equalKeys(got, []Key{1, 2}) {
		t.Fatalf("combined query: got %v", got)
	}
}

func TestMatchUniqueAndCount(t *testing.T) {
	m := New()
	m.Add([]string{"a"}, 7)
	m.Add([]string{"b"}, 7)
	m.Freeze()
	var u []Key
	if err := m.MatchUnique([]string{"a", "b"}, func(k Key) { u = append(u, k) }); err != nil {
		t.Fatal(err)
	}
	if !equalKeys(u, []Key{7}) {
		t.Fatalf("unique: %v", u)
	}
	n, err := m.Count([]string{"a", "b"})
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	m := New()
	m.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Add([]string{"x"}, 1)
}

func TestQueryCostIndependentOfDatabaseSize(t *testing.T) {
	// The defining property of the subset-enumeration approach: probes
	// depend only on query width. Compare wall time loosely across a
	// 100x database growth; allow generous slack for map effects.
	small := build(randomTagSets(1000, 4, 5000, 103))
	large := build(randomTagSets(100000, 4, 5000, 104))
	q := randomTagSets(1, 10, 5000, 105)[0]
	timeIt := func(m *Matcher) float64 {
		const reps = 200
		start := nowNanos()
		for i := 0; i < reps; i++ {
			if _, err := m.Count(q); err != nil {
				t.Fatal(err)
			}
		}
		return float64(nowNanos()-start) / reps
	}
	ts, tl := timeIt(small), timeIt(large)
	if tl > 20*ts {
		t.Fatalf("query cost grew %fx over a 100x database: not size-independent", tl/ts)
	}
}

func BenchmarkHashsubMatch10Tags(b *testing.B) {
	m := build(randomTagSets(100000, 4, 3000, 106))
	q := randomTagSets(1, 10, 3000, 107)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Count(q); err != nil {
			b.Fatal(err)
		}
	}
}

func nowNanos() int64 { return time.Now().UnixNano() }
