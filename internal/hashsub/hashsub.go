// Package hashsub implements Rivest's hash-table subset matcher — the
// first classical solution family the paper describes (§1): "a variant of
// this second solution looks for the subsets q_j ⊆ q directly in the
// database (e.g., using a hash table)."
//
// The database is a hash table keyed by the canonical encoding of each
// stored tag set. Matching a query with t distinct tags enumerates all
// 2^t subsets of the query and probes the table for each, so query cost
// is exponential in query width but wholly independent of database size
// — the opposite trade-off of a database scan. The paper's introduction
// uses exactly this pair of extremes ("one is a linear scan of the
// database; the other one ... is exponential in the size of the query")
// to motivate TagMatch's middle road.
//
// To bound the exponential, Match refuses queries wider than MaxQueryTags
// distinct tags (callers can fall back to a scan); the benchmark harness
// uses this matcher only for narrow-query comparisons.
package hashsub

import (
	"fmt"
	"sort"
)

// Key is the application value associated with a stored set.
type Key = uint32

// MaxQueryTags bounds subset enumeration: 2^20 probes at most.
const MaxQueryTags = 20

// Matcher is a hash-table subset matcher.
type Matcher struct {
	table  map[string][]Key
	sets   int
	keys   int
	frozen bool
}

// New returns an empty matcher.
func New() *Matcher {
	return &Matcher{table: make(map[string][]Key)}
}

// canonical returns the sorted distinct tags and their canonical
// length-prefixed encoding.
func canonical(tags []string) ([]string, string) {
	d := make([]string, 0, len(tags))
	seen := make(map[string]struct{}, len(tags))
	for _, t := range tags {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			d = append(d, t)
		}
	}
	sort.Strings(d)
	return d, encode(d)
}

func encode(sorted []string) string {
	var enc []byte
	for _, t := range sorted {
		enc = append(enc, byte(len(t)>>8), byte(len(t)))
		enc = append(enc, t...)
	}
	return string(enc)
}

// Add associates a key with a tag set.
func (m *Matcher) Add(tags []string, key Key) {
	if m.frozen {
		panic("hashsub: Add after Freeze")
	}
	_, enc := canonical(tags)
	if _, ok := m.table[enc]; !ok {
		m.sets++
	}
	m.table[enc] = append(m.table[enc], key)
	m.keys++
}

// Freeze marks the matcher read-only.
func (m *Matcher) Freeze() { m.frozen = true }

// Sets returns the number of distinct stored sets.
func (m *Matcher) Sets() int { return m.sets }

// Keys returns the number of stored associations.
func (m *Matcher) Keys() int { return m.keys }

// ErrQueryTooWide reports a query beyond the enumeration bound.
type ErrQueryTooWide struct{ Tags int }

func (e ErrQueryTooWide) Error() string {
	return fmt.Sprintf("hashsub: query with %d distinct tags exceeds the %d-tag enumeration bound", e.Tags, MaxQueryTags)
}

// Match visits the keys of every stored set contained in the query by
// enumerating all subsets of the query's distinct tags and probing the
// hash table — O(2^t) probes for t distinct query tags, independent of
// database size.
func (m *Matcher) Match(query []string, visit func(Key)) error {
	distinct, _ := canonical(query)
	t := len(distinct)
	if t > MaxQueryTags {
		return ErrQueryTooWide{Tags: t}
	}
	// Enumerate subsets by bitmask; mask bit i selects distinct[i].
	// distinct is sorted, and selecting in index order preserves
	// sortedness, so encode() keys match the canonical table keys.
	subset := make([]string, 0, t)
	for mask := 0; mask < 1<<t; mask++ {
		subset = subset[:0]
		for i := 0; i < t; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, distinct[i])
			}
		}
		if keys, ok := m.table[encode(subset)]; ok {
			for _, k := range keys {
				visit(k)
			}
		}
	}
	return nil
}

// MatchUnique visits each distinct matching key once.
func (m *Matcher) MatchUnique(query []string, visit func(Key)) error {
	dedup := make(map[Key]struct{})
	return m.Match(query, func(k Key) {
		if _, dup := dedup[k]; !dup {
			dedup[k] = struct{}{}
			visit(k)
		}
	})
}

// Count returns the number of matching associations.
func (m *Matcher) Count(query []string) (int, error) {
	n := 0
	err := m.Match(query, func(Key) { n++ })
	return n, err
}
