// Package benchdiff compares the BENCH_*.json result files emitted by
// cmd/tagmatch-bench, in the spirit of benchstat: it flattens two result
// documents into aligned metric sets, classifies each metric's
// improvement direction from its name (qps up is good, ns/alloc/overhead
// down is good), and reports regressions past a threshold. It also
// evaluates standalone budget assertions ("overhead_pct<=2") against a
// single file, which is how `make check` gates checked-in baselines.
//
// cmd/tagmatch-obsdiff is the CLI around this package.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Direction is a metric's improvement sense.
type Direction int8

const (
	// Neutral metrics (counters, configuration echo) are reported but
	// never gate.
	Neutral Direction = iota
	// HigherBetter metrics regress when they drop (throughput).
	HigherBetter
	// LowerBetter metrics regress when they grow (latency, overhead).
	LowerBetter
)

func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher"
	case LowerBetter:
		return "lower"
	default:
		return "neutral"
	}
}

// higherTokens and lowerTokens classify a metric by the tokens of its
// final path segment. Higher wins ties (none currently collide).
var (
	higherTokens = []string{"qps", "throughput", "speedup", "ops_per_sec", "results_match", "hit_rate", "reduction", "overlap"}
	lowerTokens  = []string{
		"ns", "us", "ms", "seconds", "latency", "p50", "p90", "p99", "max",
		"pct", "overhead", "slowdown", "allocs", "bytes", "errors", "overflows",
	}
)

// Classify returns the improvement direction inferred from a flattened
// metric key. Only the leaf segment (after the last '.') is considered,
// so element labels like "[routing=sliced]" never influence direction.
func Classify(key string) Direction {
	leaf := key
	if i := strings.LastIndex(leaf, "."); i >= 0 {
		leaf = leaf[i+1:]
	}
	toks := strings.Split(leaf, "_")
	has := func(list []string) bool {
		for _, want := range list {
			if strings.Contains(leaf, want) && len(strings.Split(want, "_")) > 1 {
				return true
			}
			for _, tok := range toks {
				if tok == want {
					return true
				}
			}
		}
		return false
	}
	switch {
	case has(higherTokens):
		return HigherBetter
	case has(lowerTokens):
		return LowerBetter
	default:
		return Neutral
	}
}

// labelFields identify an element of an object array, tried in order;
// every matching field contributes to the element's key segment.
var labelFields = []string{"config", "routing", "name", "pooling", "device", "stage"}

// Flatten converts a decoded JSON document into flat metric keys:
// nested objects dot-join their keys, arrays of objects label elements
// by their identity fields (config/routing/name/..., falling back to
// the index), booleans map to 1/0, and arrays of numbers — per-run
// sample lists — are skipped (the summary statistic next to them is the
// comparable metric).
func Flatten(doc any) map[string]float64 {
	out := make(map[string]float64)
	flattenInto(out, "", doc)
	return out
}

func flattenInto(out map[string]float64, prefix string, v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenInto(out, key, sub)
		}
	case []any:
		if len(x) == 0 || !isObjectArray(x) {
			return // numeric sample arrays carry no summary metric
		}
		for i, el := range x {
			obj := el.(map[string]any)
			seg, consumed := elementLabel(obj, i)
			key := seg
			if prefix != "" {
				key = prefix + seg
			}
			// Identity fields became the element's label; flattening them
			// again as metrics would just restate the key.
			rest := make(map[string]any, len(obj))
			for k, v := range obj {
				if !consumed[k] {
					rest[k] = v
				}
			}
			flattenInto(out, key, rest)
		}
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func isObjectArray(x []any) bool {
	for _, el := range x {
		if _, ok := el.(map[string]any); !ok {
			return false
		}
	}
	return true
}

func elementLabel(obj map[string]any, idx int) (string, map[string]bool) {
	var parts []string
	consumed := map[string]bool{}
	for _, f := range labelFields {
		switch val := obj[f].(type) {
		case string:
			parts = append(parts, f+"="+val)
			consumed[f] = true
		case bool:
			parts = append(parts, f+"="+strconv.FormatBool(val))
			consumed[f] = true
		}
	}
	if len(parts) == 0 {
		return "[" + strconv.Itoa(idx) + "]", consumed
	}
	return "[" + strings.Join(parts, ",") + "]", consumed
}

// Parse decodes a benchmark result file into its flat metric set.
func Parse(data []byte) (map[string]float64, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing result file: %w", err)
	}
	if _, ok := doc.(map[string]any); !ok {
		return nil, fmt.Errorf("benchdiff: result file is not a JSON object")
	}
	return Flatten(doc), nil
}

// Row is one compared metric.
type Row struct {
	Key       string
	Direction Direction
	Old, New  float64
	// DeltaPct is the relative change in percent ((new-old)/|old|*100);
	// NaN when old is zero and new differs.
	DeltaPct float64
	// Regression marks a gated metric whose change is worse than the
	// comparison threshold in its harmful direction.
	Regression bool
}

// Report is the outcome of a two-file comparison.
type Report struct {
	Rows []Row
	// OnlyOld and OnlyNew list metrics present in one file only.
	OnlyOld, OnlyNew []string
	// ThresholdPct is the gate the comparison ran with.
	ThresholdPct float64
}

// Regressions returns the rows flagged as regressions.
func (r *Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Regression {
			out = append(out, row)
		}
	}
	return out
}

// Compare diffs two flattened metric sets. A directional metric whose
// change is worse than thresholdPct percent — throughput down, or
// latency/overhead up — is flagged as a regression. Neutral metrics are
// reported with their change but never flagged.
func Compare(old, new map[string]float64, thresholdPct float64) *Report {
	rep := &Report{ThresholdPct: thresholdPct}
	keys := make([]string, 0, len(old))
	for k := range old {
		if _, ok := new[k]; ok {
			keys = append(keys, k)
		} else {
			rep.OnlyOld = append(rep.OnlyOld, k)
		}
	}
	for k := range new {
		if _, ok := old[k]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)

	for _, k := range keys {
		row := Row{Key: k, Direction: Classify(k), Old: old[k], New: new[k]}
		switch {
		case row.Old == row.New:
			row.DeltaPct = 0
		case row.Old == 0:
			row.DeltaPct = math.NaN()
		default:
			row.DeltaPct = (row.New - row.Old) / math.Abs(row.Old) * 100
		}
		worse := math.IsNaN(row.DeltaPct) ||
			(row.Direction == HigherBetter && row.DeltaPct < -thresholdPct) ||
			(row.Direction == LowerBetter && row.DeltaPct > thresholdPct)
		row.Regression = row.Direction != Neutral && worse
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Assertion is one parsed budget check: Key Op Bound.
type Assertion struct {
	Key   string
	Op    string // "<=", ">=", "<", ">", "=="
	Bound float64
}

// ParseAssertion parses "key<=value" (ops: <=, >=, <, >, ==). Spaces
// around the operator are allowed.
func ParseAssertion(s string) (Assertion, error) {
	for _, op := range []string{"<=", ">=", "==", "<", ">"} {
		i := strings.Index(s, op)
		if i < 0 {
			continue
		}
		key := strings.TrimSpace(s[:i])
		val := strings.TrimSpace(s[i+len(op):])
		if key == "" || val == "" {
			return Assertion{}, fmt.Errorf("benchdiff: malformed assertion %q", s)
		}
		bound, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Assertion{}, fmt.Errorf("benchdiff: assertion %q: bad bound: %w", s, err)
		}
		return Assertion{Key: key, Op: op, Bound: bound}, nil
	}
	return Assertion{}, fmt.Errorf("benchdiff: assertion %q has no comparison operator", s)
}

// Eval checks the assertion against a metric set. The error explains a
// violated or unevaluable assertion; nil means it holds.
func (a Assertion) Eval(metrics map[string]float64) error {
	v, ok := metrics[a.Key]
	if !ok {
		return fmt.Errorf("metric %q not present", a.Key)
	}
	holds := false
	switch a.Op {
	case "<=":
		holds = v <= a.Bound
	case ">=":
		holds = v >= a.Bound
	case "<":
		holds = v < a.Bound
	case ">":
		holds = v > a.Bound
	case "==":
		holds = v == a.Bound
	}
	if !holds {
		return fmt.Errorf("%s = %g, want %s %g", a.Key, v, a.Op, a.Bound)
	}
	return nil
}
