package benchdiff

import (
	"math"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := map[string]Direction{
		"qps_on":                            HigherBetter,
		"routing_speedup":                   HigherBetter,
		"results_match":                     HigherBetter,
		"e2e[routing=sliced].qps":           HigherBetter,
		"overhead_pct":                      LowerBetter,
		"slowdown_pct":                      LowerBetter,
		"scalar_ns_per_query":               LowerBetter,
		"p99_us":                            LowerBetter,
		"allocs_per_query":                  LowerBetter,
		"bytes_per_query":                   LowerBetter,
		"h2d_bytes_per_query":               LowerBetter,
		"h2d_reduction":                     HigherBetter,
		"overlap_fraction":                  HigherBetter,
		"pipeline_results_match":            HigherBetter,
		"cells[config=depth2_window_on].qps": HigherBetter,
		"queries":                           Neutral,
		"gpus":                              Neutral,
		"device_quarantines":                Neutral,
		"seed":                              Neutral,
		"e2e[routing=sliced].route_appends": Neutral,
	}
	for key, want := range cases {
		if got := Classify(key); got != want {
			t.Errorf("Classify(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestFlattenShapes(t *testing.T) {
	doc := map[string]any{
		"qps":    1000.0,
		"ok":     true,
		"runs":   []any{1.0, 2.0, 3.0}, // numeric samples: skipped
		"notes":  "ignored",
		"nested": map[string]any{"p99_us": 42.0},
		"variants": []any{
			map[string]any{"config": "cpu", "pooling": true, "qps": 10.0},
			map[string]any{"config": "cpu", "pooling": false, "qps": 7.0},
		},
		"anon": []any{map[string]any{"v": 1.0}},
	}
	got := Flatten(doc)
	want := map[string]float64{
		"qps":                                    1000,
		"ok":                                     1,
		"nested.p99_us":                          42,
		"variants[config=cpu,pooling=true].qps":  10,
		"variants[config=cpu,pooling=false].qps": 7,
		"anon[0].v":                              1,
	}
	if len(got) != len(want) {
		t.Fatalf("Flatten = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Flatten[%q] = %v, want %v", k, got[k], v)
		}
	}
}

// TestDetectsSyntheticRegression is the acceptance check for the perf
// gate: a 20% throughput drop (and a 20% overhead growth) must be
// flagged at a 5% threshold, while neutral counters and improvements
// pass silently.
func TestDetectsSyntheticRegression(t *testing.T) {
	old := map[string]float64{
		"qps_on":       10000,
		"overhead_pct": 1.0,
		"p99_us":       500,
		"queries":      6000,
	}
	new := map[string]float64{
		"qps_on":       8000, // -20%: regression
		"overhead_pct": 1.2,  // +20%: regression
		"p99_us":       400,  // improvement
		"queries":      7000, // neutral: never gates
	}
	rep := Compare(old, new, 5)
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("Regressions = %+v, want qps_on and overhead_pct", regs)
	}
	found := map[string]bool{}
	for _, r := range regs {
		found[r.Key] = true
	}
	if !found["qps_on"] || !found["overhead_pct"] {
		t.Fatalf("wrong regressions flagged: %+v", regs)
	}
	for _, row := range rep.Rows {
		if row.Key == "qps_on" && math.Abs(row.DeltaPct-(-20)) > 1e-9 {
			t.Errorf("qps_on delta = %v, want -20", row.DeltaPct)
		}
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	old := map[string]float64{"qps": 10000, "p99_us": 100}
	new := map[string]float64{"qps": 9700, "p99_us": 103} // 3% worse both ways
	if regs := Compare(old, new, 5).Regressions(); len(regs) != 0 {
		t.Fatalf("3%% drift flagged at 5%% threshold: %+v", regs)
	}
	// The same drift gates at a 1% threshold.
	if regs := Compare(old, new, 1).Regressions(); len(regs) != 2 {
		t.Fatalf("3%% drift not flagged at 1%% threshold: %+v", regs)
	}
}

func TestMissingAndExtraMetrics(t *testing.T) {
	rep := Compare(
		map[string]float64{"qps": 1, "gone": 2},
		map[string]float64{"qps": 1, "added": 3}, 5)
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "gone" {
		t.Fatalf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "added" {
		t.Fatalf("OnlyNew = %v", rep.OnlyNew)
	}
}

func TestZeroBaselineRegression(t *testing.T) {
	// 0 → positive on a lower-better metric has no finite percent change;
	// it must still gate.
	rep := Compare(
		map[string]float64{"errors": 0},
		map[string]float64{"errors": 5}, 5)
	if regs := rep.Regressions(); len(regs) != 1 {
		t.Fatalf("0→5 errors not flagged: %+v", rep.Rows)
	}
}

func TestAssertions(t *testing.T) {
	metrics := map[string]float64{"overhead_pct": 1.4, "results_match": 1}
	for _, tc := range []struct {
		expr string
		ok   bool
	}{
		{"overhead_pct<=2", true},
		{"overhead_pct <= 1", false},
		{"results_match>=1", true},
		{"results_match==1", true},
		{"overhead_pct>2", false},
		{"missing_metric<=2", false},
	} {
		a, err := ParseAssertion(tc.expr)
		if err != nil {
			t.Fatalf("ParseAssertion(%q): %v", tc.expr, err)
		}
		err = a.Eval(metrics)
		if (err == nil) != tc.ok {
			t.Errorf("Eval(%q) = %v, want ok=%v", tc.expr, err, tc.ok)
		}
	}
	for _, bad := range []string{"nocomparison", "<=2", "x<=", "x<=notanumber"} {
		if _, err := ParseAssertion(bad); err == nil {
			t.Errorf("ParseAssertion(%q) succeeded, want error", bad)
		}
	}
}

func TestParseRejectsNonObject(t *testing.T) {
	if _, err := Parse([]byte(`[1,2,3]`)); err == nil {
		t.Fatal("array document accepted")
	}
	if _, err := Parse([]byte(`{"qps": `)); err == nil {
		t.Fatal("truncated document accepted")
	}
	m, err := Parse([]byte(`{"qps": 5, "e2e": [{"routing":"r","qps":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m["qps"] != 5 || m["e2e[routing=r].qps"] != 1 {
		t.Fatalf("Parse = %v", m)
	}
}
