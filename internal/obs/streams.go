package obs

import "sync/atomic"

// StreamCounters instruments the pipelined GPU dispatch path: the
// per-device query window (signature reuse across partition fan-out)
// and the double-buffered stream slots (batch overlap on one stream).
// Like FaultCounters and KernelCounters they are NOT gated by
// Pipeline.On — they feed the engine's Stats, the pipeline bench
// assertions, and the /metrics gauges that derive h2d bytes/query.
type StreamCounters struct {
	// WindowHits counts batch query slots resolved to an already-ready
	// window ring entry (no signature upload); WindowMisses counts slots
	// whose signature had to be uploaded into a freshly claimed ring
	// entry. Misses / (Hits + Misses) is the residual upload rate.
	WindowHits   atomic.Int64
	WindowMisses atomic.Int64
	// WindowEvictions counts ready ring entries reclaimed by the clock
	// hand to make room for new signatures.
	WindowEvictions atomic.Int64
	// WindowFallbacks counts batches that bypassed the window entirely —
	// ring exhausted by pinned in-flight entries, or the fill fragmented
	// into too many copy runs — and uploaded densely instead.
	WindowFallbacks atomic.Int64
	// H2DQueryBytes accumulates the host-to-device bytes spent moving
	// query data (signature fills plus index arrays, or dense signature
	// batches); QuerySlots accumulates the batch query slots those bytes
	// paid for. H2DQueryBytes / QuerySlots is the h2d_bytes_per_query
	// figure the window is meant to shrink: a query routed to k
	// partitions occupies k slots but, with the window on, uploads its
	// signature once.
	H2DQueryBytes atomic.Int64
	QuerySlots    atomic.Int64
	// PipelinedDispatches counts batches dispatched onto a stream that
	// already had at least one batch in flight — the double-buffering
	// actually overlapping, not just configured.
	PipelinedDispatches atomic.Int64

	// SlotOccupancy is the distribution of in-flight batches per stream
	// observed at each dispatch (1 = the stream was idle; StreamDepth =
	// the pipeline was full).
	SlotOccupancy Histogram
}

// StreamSnapshot is the JSON-facing view of StreamCounters.
type StreamSnapshot struct {
	WindowHits          int64        `json:"window_hits"`
	WindowMisses        int64        `json:"window_misses"`
	WindowEvictions     int64        `json:"window_evictions"`
	WindowFallbacks     int64        `json:"window_fallbacks"`
	H2DQueryBytes       int64        `json:"h2d_query_bytes"`
	QuerySlots          int64        `json:"query_slots"`
	PipelinedDispatches int64        `json:"pipelined_dispatches"`
	SlotOccupancy       HistSnapshot `json:"slot_occupancy"`
}

// Snapshot returns an atomic-per-field copy for export.
func (s *StreamCounters) Snapshot() StreamSnapshot {
	return StreamSnapshot{
		WindowHits:          s.WindowHits.Load(),
		WindowMisses:        s.WindowMisses.Load(),
		WindowEvictions:     s.WindowEvictions.Load(),
		WindowFallbacks:     s.WindowFallbacks.Load(),
		H2DQueryBytes:       s.H2DQueryBytes.Load(),
		QuerySlots:          s.QuerySlots.Load(),
		PipelinedDispatches: s.PipelinedDispatches.Load(),
		SlotOccupancy:       s.SlotOccupancy.Snapshot(),
	}
}

// HitRate returns the window hit fraction, 0 before any assignment.
func (s *StreamCounters) HitRate() float64 {
	h, m := s.WindowHits.Load(), s.WindowMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// BytesPerQuerySlot returns the mean H2D query bytes per batch query
// slot, 0 before any dispatch.
func (s *StreamCounters) BytesPerQuerySlot() float64 {
	q := s.QuerySlots.Load()
	if q == 0 {
		return 0
	}
	return float64(s.H2DQueryBytes.Load()) / float64(q)
}

// writeProm emits the stream counters in Prometheus text format.
func (s *StreamCounters) writeProm(w *PromWriter) {
	w.Counter("tagmatch_query_window_lookups_total",
		"Batch query slots resolved against the device query window, by outcome.",
		Labels{{"outcome", "hit"}}, float64(s.WindowHits.Load()))
	w.Counter("tagmatch_query_window_lookups_total",
		"Batch query slots resolved against the device query window, by outcome.",
		Labels{{"outcome", "miss"}}, float64(s.WindowMisses.Load()))
	w.Counter("tagmatch_query_window_evictions_total",
		"Ready window ring entries reclaimed by the clock hand.",
		nil, float64(s.WindowEvictions.Load()))
	w.Counter("tagmatch_query_window_fallbacks_total",
		"Batches that bypassed the window and uploaded signatures densely.",
		nil, float64(s.WindowFallbacks.Load()))
	w.Counter("tagmatch_h2d_query_bytes_total",
		"Host-to-device bytes spent moving query data.",
		nil, float64(s.H2DQueryBytes.Load()))
	w.Counter("tagmatch_query_slots_total",
		"Batch query slots dispatched to devices.",
		nil, float64(s.QuerySlots.Load()))
	w.Counter("tagmatch_pipelined_dispatches_total",
		"Batches dispatched onto a stream that already had a batch in flight.",
		nil, float64(s.PipelinedDispatches.Load()))
	w.Gauge("tagmatch_h2d_query_bytes_per_query",
		"Mean H2D query bytes per dispatched batch query slot (lower is better).",
		nil, s.BytesPerQuerySlot())
	w.Histogram("tagmatch_stream_slot_occupancy",
		"In-flight batches per stream observed at dispatch.",
		nil, s.SlotOccupancy.Snapshot(), 1)
}
