package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTracerRingWraparound fills the ring several times over and checks
// that exactly the last `keep` publications survive, oldest first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(1, 4)
	var ids []uint64
	for i := 0; i < 11; i++ {
		sp := tr.Maybe()
		if sp == nil {
			t.Fatal("every=1 must sample every query")
		}
		sp.Event("preprocess", -1, 0)
		sp.Done(int64(i))
		ids = append(ids, sp.rec.ID)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	for i, rec := range recent {
		if want := ids[len(ids)-4+i]; rec.ID != want {
			t.Fatalf("ring[%d].ID = %d, want %d (oldest-first window)", i, rec.ID, want)
		}
		if rec.Status != "ok" {
			t.Fatalf("ring[%d].Status = %q", i, rec.Status)
		}
	}
}

// TestTraceStatusTransitions pins the terminal-status lattice: first
// degradation reason wins, an error overrides degradation but keeps the
// first error reason, and publication is idempotent.
func TestTraceStatusTransitions(t *testing.T) {
	tr := NewTracer(1, 8)

	sp := tr.Maybe()
	sp.Degrade("gpu-fault")
	sp.Degrade("cpu-fallback") // later degradation: first reason wins
	sp.Done(0)
	if got := last(t, tr).Status; got != "degraded:gpu-fault" {
		t.Fatalf("status = %q, want degraded:gpu-fault", got)
	}

	sp = tr.Maybe()
	sp.Degrade("gpu-fault")
	sp.Fail("device-dead") // error overrides degraded
	sp.Fail("second")      // first error wins
	sp.Done(0)
	if got := last(t, tr).Status; got != "error:device-dead" {
		t.Fatalf("status = %q, want error:device-dead", got)
	}

	// Abort publishes immediately; a later Done must not publish again.
	sp = tr.Maybe()
	sp.Abort("overloaded")
	n := len(tr.Recent())
	sp.Done(42)
	if got := len(tr.Recent()); got != n {
		t.Fatalf("Done after Abort republished: ring %d → %d", n, got)
	}
	if got := last(t, tr).Status; got != "error:overloaded" {
		t.Fatalf("status = %q, want error:overloaded", got)
	}
}

func last(t *testing.T, tr *Tracer) TraceRecord {
	t.Helper()
	recent := tr.Recent()
	if len(recent) == 0 {
		t.Fatal("empty ring")
	}
	return recent[len(recent)-1]
}

func TestTraceSpansRecorded(t *testing.T) {
	tr := NewTracer(1, 4)
	sp := tr.Maybe()
	base := sp.rec.Start
	sp.Span("preprocess", "query", base, 2*time.Millisecond, 3*time.Millisecond, 7, "", -1, 10)
	// A start before the trace's own start (clock skew between the
	// submitting goroutine and the stream executor) clamps to zero.
	sp.Span("h2d", StageSubsetMatch, base.Add(-time.Hour), 0, time.Millisecond, -1, "gpu0", 2, 128)
	sp.Done(1)

	rec := last(t, tr)
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	pp := rec.Spans[0]
	if pp.Name != "preprocess" || pp.Parent != "query" || pp.Wait != 2*time.Millisecond ||
		pp.Dur != 3*time.Millisecond || pp.Partition != 7 || pp.N != 10 {
		t.Fatalf("preprocess span = %+v", pp)
	}
	h2d := rec.Spans[1]
	if h2d.Start != 0 {
		t.Fatalf("skewed span start = %v, want clamp to 0", h2d.Start)
	}
	if h2d.Device != "gpu0" || h2d.Stream != 2 {
		t.Fatalf("h2d span = %+v", h2d)
	}
}

func TestTracerExemplars(t *testing.T) {
	tr := NewTracer(1, 8)
	for i := 0; i < 5; i++ {
		sp := tr.Maybe()
		sp.Done(0)
	}
	ex := tr.Exemplars()
	if len(ex) == 0 {
		t.Fatal("no exemplars after published traces")
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].Latency < ex[i-1].Latency {
			t.Fatalf("exemplars not latency-ascending: %+v", ex)
		}
	}
	for _, e := range ex {
		if e.TraceID == 0 || e.Status == "" {
			t.Fatalf("incomplete exemplar %+v", e)
		}
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines — the
// sampling counter, per-trace appends from two goroutines (the pipeline
// appends to a trace from the preprocess worker and the stream executor
// concurrently), publication, and readers — and relies on -race for the
// verdict.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(2, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Maybe()
				if sp == nil {
					continue
				}
				var inner sync.WaitGroup
				inner.Add(1)
				go func() {
					defer inner.Done()
					sp.Span("h2d", StageSubsetMatch, time.Now(), 0, time.Microsecond, -1, "d", 0, 1)
					sp.Event("batch-done", 3, 9)
				}()
				sp.Event("preprocess", 1, 2)
				if i%3 == 0 {
					sp.Degrade("cpu-fallback")
				}
				inner.Wait()
				sp.Done(int64(i))
			}
		}()
	}
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for i := 0; i < 100; i++ {
			tr.Recent()
			tr.Exemplars()
		}
	}()
	wg.Wait()
	<-readers
	for _, rec := range tr.Recent() {
		if rec.Status == "" {
			t.Fatalf("published trace without status: %+v", rec)
		}
	}
}

// TestNonSampledZeroAlloc pins the fast path: a query that is not
// sampled must cost no allocations — Maybe returns nil and every
// nil-trace method is a no-op.
func TestNonSampledZeroAlloc(t *testing.T) {
	tr := NewTracer(1<<30, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Maybe()
		sp.Event("preprocess", 1, 2)
		sp.Span("h2d", StageSubsetMatch, time.Time{}, 0, 0, -1, "", -1, 0)
		sp.Degrade("x")
		sp.Fail("y")
		sp.Done(3)
	})
	if allocs != 0 {
		t.Fatalf("non-sampled query cost %v allocs/op, want 0", allocs)
	}
}
