package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer samples 1-in-N queries and records their timestamped path
// through the pipeline. Sampling costs one atomic increment per query;
// non-sampled queries carry a nil *Trace and pay nothing further. The
// last completed traces are kept in a fixed-size ring, retrievable as
// structured records (GET /debug/stats serves them as JSON and
// GET /debug/timeline as a Chrome trace-event file).
//
// Alongside the ring, the tracer keeps one exemplar trace ID per
// power-of-two latency bucket, so the slow tail of the E2E histogram
// can be tied back to a concrete sampled query ("p99 is 8ms — look at
// trace 1234 to see where those 8ms went").
type Tracer struct {
	every uint64 // 0 = tracing disabled
	n     atomic.Uint64
	id    atomic.Uint64

	mu        sync.Mutex
	ring      []TraceRecord
	next      int
	filled    bool
	exemplars map[int]Exemplar // key: bits.Len64(latency ns)
}

// NewTracer samples one query in every 'every' (0 disables tracing) and
// retains the most recent 'keep' completed traces (default 128).
func NewTracer(every, keep int) *Tracer {
	if keep <= 0 {
		keep = 128
	}
	t := &Tracer{
		ring:      make([]TraceRecord, keep),
		exemplars: make(map[int]Exemplar),
	}
	if every > 0 {
		t.every = uint64(every)
	}
	return t
}

// Enabled reports whether any query can be sampled.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Maybe returns a new Trace for a sampled query, or nil.
func (t *Tracer) Maybe() *Trace {
	if !t.Enabled() {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	return &Trace{
		tracer: t,
		rec: TraceRecord{
			ID:    t.id.Add(1),
			Start: time.Now(),
		},
	}
}

// Trace accumulates the events and spans of one sampled query. Appends
// are serialized by a per-trace mutex; only the sampled fraction of
// queries ever contend on it.
type Trace struct {
	tracer *Tracer
	mu     sync.Mutex
	rec    TraceRecord
	pub    bool // published to the ring; later finalizers are no-ops
}

// TraceRecord is the exported form of a completed trace.
type TraceRecord struct {
	ID    uint64    `json:"id"`
	Start time.Time `json:"start"`
	// End is the total submit→finalize latency.
	End time.Duration `json:"end_ns"`
	// Status is "ok" for a normally completed query, "degraded:<reason>"
	// when it completed through a fallback path (GPU fault retry, CPU
	// fallback), and "error:<reason>" when it terminated without results
	// (load shedding, device death). Traces always publish with a
	// terminal status; a query can never vanish from the ring silently.
	Status string       `json:"status"`
	Events []TraceEvent `json:"events"`
	// Spans is the parent/child span tree of the query, flat, linked by
	// name: the root "query" span, its stage children (preprocess,
	// batch-wait, subset_match, reduce, merge), and the device-op spans
	// (h2d, kernel, d2h) parented under subset_match.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// TraceEvent is one timestamped step of a traced query.
type TraceEvent struct {
	// At is the offset from the trace's start.
	At time.Duration `json:"at_ns"`
	// Stage names the pipeline step: submit, preprocess, batch,
	// batch-done, merge, done.
	Stage string `json:"stage"`
	// Partition is the partition involved, or -1 when not applicable.
	Partition int32 `json:"partition"`
	// N is a stage-specific magnitude: partitions routed (preprocess),
	// batch fill level (batch), pairs decoded (batch-done), keys
	// delivered (done).
	N int64 `json:"n"`
}

// SpanRecord is one timed interval of a traced query, split into a
// queue-wait phase followed by a service phase. Start is the offset of
// the wait phase from the trace's start; the service phase covers
// [Start+Wait, Start+Wait+Dur). Spans form a tree through Parent, which
// names the enclosing span ("" for the root).
type SpanRecord struct {
	Name      string        `json:"name"`
	Parent    string        `json:"parent,omitempty"`
	Start     time.Duration `json:"start_ns"`
	Wait      time.Duration `json:"wait_ns"`
	Dur       time.Duration `json:"dur_ns"`
	Partition int32         `json:"partition"`
	Device    string        `json:"device,omitempty"`
	Stream    int           `json:"stream"`
	N         int64         `json:"n"`
}

// Event records one step. Safe on a nil trace (non-sampled query).
func (tr *Trace) Event(stage string, partition int32, n int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.rec.Events = append(tr.rec.Events, TraceEvent{
		At:        time.Since(tr.rec.Start),
		Stage:     stage,
		Partition: partition,
		N:         n,
	})
	tr.mu.Unlock()
}

// Span records one timed interval: its wait phase began at start (an
// absolute time, clamped to the trace's start) and lasted wait; the
// service phase followed for dur. partition is -1 when not applicable,
// device/stream identify the GPU context for device-op spans (stream -1
// for host-side spans). Safe on a nil trace.
func (tr *Trace) Span(name, parent string, start time.Time, wait, dur time.Duration, partition int32, device string, stream int, n int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	off := start.Sub(tr.rec.Start)
	if off < 0 {
		off = 0
	}
	tr.rec.Spans = append(tr.rec.Spans, SpanRecord{
		Name:      name,
		Parent:    parent,
		Start:     off,
		Wait:      wait,
		Dur:       dur,
		Partition: partition,
		Device:    device,
		Stream:    stream,
		N:         n,
	})
	tr.mu.Unlock()
}

// Degrade marks the trace as having completed through a fallback path
// (GPU fault retried elsewhere, CPU fallback). The first reason wins;
// an error status is never downgraded. Safe on a nil trace.
func (tr *Trace) Degrade(reason string) {
	if tr == nil {
		return
	}
	tr.Event("degraded:"+reason, -1, 0)
	tr.mu.Lock()
	if tr.rec.Status == "" {
		tr.rec.Status = "degraded:" + reason
	}
	tr.mu.Unlock()
}

// Fail marks the trace as terminated without results. It overrides a
// degraded status but keeps the first error reason. Safe on a nil trace.
func (tr *Trace) Fail(reason string) {
	if tr == nil {
		return
	}
	tr.Event("error:"+reason, -1, 0)
	tr.mu.Lock()
	if !isError(tr.rec.Status) {
		tr.rec.Status = "error:" + reason
	}
	tr.mu.Unlock()
}

// Abort finalizes a trace that will never reach Done — a query rejected
// before entering the pipeline (load shedding) — recording the terminal
// error and publishing immediately. Safe on a nil trace.
func (tr *Trace) Abort(reason string) {
	if tr == nil {
		return
	}
	tr.Fail(reason)
	tr.publish()
}

func isError(status string) bool {
	return len(status) >= 6 && status[:6] == "error:"
}

// Done finalizes the trace and publishes it to the tracer's ring. A
// trace with no recorded degradation or error publishes with status
// "ok". Safe on a nil trace.
func (tr *Trace) Done(keys int64) {
	if tr == nil {
		return
	}
	tr.Event("done", -1, keys)
	tr.publish()
}

// publish snapshots the trace into the ring and the exemplar table,
// exactly once; repeated finalizations are no-ops.
func (tr *Trace) publish() {
	tr.mu.Lock()
	if tr.pub {
		tr.mu.Unlock()
		return
	}
	tr.pub = true
	tr.rec.End = time.Since(tr.rec.Start)
	if tr.rec.Status == "" {
		tr.rec.Status = "ok"
	}
	rec := tr.rec
	rec.Events = append([]TraceEvent(nil), tr.rec.Events...)
	rec.Spans = append([]SpanRecord(nil), tr.rec.Spans...)
	tr.mu.Unlock()

	t := tr.tracer
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.exemplars[bits.Len64(uint64(rec.End))] = Exemplar{
		TraceID: rec.ID,
		Latency: rec.End,
		Status:  rec.Status,
	}
	t.mu.Unlock()
}

// Recent returns the completed traces in the ring, oldest first.
func (t *Tracer) Recent() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceRecord
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Exemplar ties a latency magnitude back to a concrete sampled query.
type Exemplar struct {
	TraceID uint64        `json:"trace_id"`
	Latency time.Duration `json:"latency_ns"`
	Status  string        `json:"status,omitempty"`
}

// Exemplars returns the most recent sampled query per power-of-two E2E
// latency bucket, slowest last — the trace IDs to pull from Recent (or
// /debug/timeline) when a latency histogram's tail needs explaining.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Exemplar, 0, len(t.exemplars))
	for _, e := range t.exemplars {
		out = append(out, e)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Latency < out[j].Latency })
	return out
}
