package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer samples 1-in-N queries and records their timestamped path
// through the pipeline. Sampling costs one atomic increment per query;
// non-sampled queries carry a nil *Trace and pay nothing further. The
// last completed traces are kept in a fixed-size ring, retrievable as
// structured records (GET /debug/stats serves them as JSON).
type Tracer struct {
	every uint64 // 0 = tracing disabled
	n     atomic.Uint64
	id    atomic.Uint64

	mu     sync.Mutex
	ring   []TraceRecord
	next   int
	filled bool
}

// NewTracer samples one query in every 'every' (0 disables tracing) and
// retains the most recent 'keep' completed traces (default 128).
func NewTracer(every, keep int) *Tracer {
	if keep <= 0 {
		keep = 128
	}
	t := &Tracer{ring: make([]TraceRecord, keep)}
	if every > 0 {
		t.every = uint64(every)
	}
	return t
}

// Enabled reports whether any query can be sampled.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Maybe returns a new Trace for a sampled query, or nil.
func (t *Tracer) Maybe() *Trace {
	if !t.Enabled() {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	return &Trace{
		tracer: t,
		rec: TraceRecord{
			ID:    t.id.Add(1),
			Start: time.Now(),
		},
	}
}

// Trace accumulates the events of one sampled query. Event appends are
// serialized by a per-trace mutex; only the sampled fraction of queries
// ever contend on it.
type Trace struct {
	tracer *Tracer
	mu     sync.Mutex
	rec    TraceRecord
}

// TraceRecord is the exported form of a completed trace.
type TraceRecord struct {
	ID     uint64       `json:"id"`
	Start  time.Time    `json:"start"`
	Events []TraceEvent `json:"events"`
}

// TraceEvent is one timestamped step of a traced query.
type TraceEvent struct {
	// At is the offset from the trace's start.
	At time.Duration `json:"at_ns"`
	// Stage names the pipeline step: submit, preprocess, batch,
	// batch-done, merge, done.
	Stage string `json:"stage"`
	// Partition is the partition involved, or -1 when not applicable.
	Partition int32 `json:"partition"`
	// N is a stage-specific magnitude: partitions routed (preprocess),
	// batch fill level (batch), pairs decoded (batch-done), keys
	// delivered (done).
	N int64 `json:"n"`
}

// Event records one step. Safe on a nil trace (non-sampled query).
func (tr *Trace) Event(stage string, partition int32, n int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.rec.Events = append(tr.rec.Events, TraceEvent{
		At:        time.Since(tr.rec.Start),
		Stage:     stage,
		Partition: partition,
		N:         n,
	})
	tr.mu.Unlock()
}

// Done finalizes the trace and publishes it to the tracer's ring. Safe on
// a nil trace.
func (tr *Trace) Done(keys int64) {
	if tr == nil {
		return
	}
	tr.Event("done", -1, keys)
	tr.mu.Lock()
	rec := tr.rec
	rec.Events = append([]TraceEvent(nil), tr.rec.Events...)
	tr.mu.Unlock()

	t := tr.tracer
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Recent returns the completed traces in the ring, oldest first.
func (t *Tracer) Recent() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceRecord
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
