package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Labels is an ordered label set, rendered in declaration order so the
// exposition output is deterministic.
type Labels [][2]string

// String renders the label set as `{k1="v1",k2="v2"}`, or "" when empty.
func (l Labels) String() string {
	if len(l) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, kv := range l {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func (l Labels) with(extra [2]string) Labels {
	out := make(Labels, 0, len(l)+1)
	out = append(out, l...)
	return append(out, extra)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func itoa(v int) string { return strconv.Itoa(v) }

// PromWriter emits the Prometheus text exposition format (version
// 0.0.4). It writes each metric family's # HELP/# TYPE header once, on
// the family's first sample, so callers may interleave families freely
// as long as samples of one family are emitted consecutively.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name, help string, labels Labels, v float64) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels.String(), fmtFloat(v))
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, labels Labels, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels.String(), fmtFloat(v))
}

// Histogram emits a histogram family from a snapshot: cumulative
// `_bucket` samples at the snapshot's (non-empty) bucket bounds plus
// +Inf, and `_sum`/`_count`. scale converts recorded values to the
// exported unit (1e-9 for nanoseconds→seconds).
func (p *PromWriter) Histogram(name, help string, labels Labels, s HistSnapshot, scale float64) {
	p.header(name, help, "histogram")
	lbl := labels.String()
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		le := p.fmtLE(float64(b.Upper) * scale)
		fmt.Fprintf(p.w, "%s_bucket%s %d\n", name, labels.with([2]string{"le", le}).String(), cum)
	}
	fmt.Fprintf(p.w, "%s_bucket%s %d\n", name, labels.with([2]string{"le", "+Inf"}).String(), cum)
	fmt.Fprintf(p.w, "%s_sum%s %s\n", name, lbl, fmtFloat(float64(s.Sum)*scale))
	// _count must equal the +Inf bucket; under concurrent recording the
	// snapshot's Count field can transiently disagree with the buckets.
	fmt.Fprintf(p.w, "%s_count%s %d\n", name, lbl, cum)
}

func (p *PromWriter) fmtLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
