package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing: log-linear, HDR-style. Values below 2^subBits are
// recorded exactly; above that, each power-of-two octave is split into
// 2^subBits sub-buckets, bounding the relative quantile error at
// 1/2^subBits (12.5% worst case, ~6% typical) while keeping the whole
// histogram a fixed 4 KiB array of atomic counters. Recording is a single
// atomic increment plus two atomic adds (sum, max) — no locks, no
// allocation — so it is safe on the pipeline's hot path.
const (
	subBits  = 3
	subCount = 1 << subBits
	// 64 octaves cover the full uint64 range; the top buckets are
	// unreachable for durations but keep index arithmetic branch-free.
	numBuckets = 64 * subCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // >= subBits
	shift := msb - subBits
	minor := int(uint64(v)>>shift) & (subCount - 1)
	idx := (shift+1)*subCount + minor
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest value mapped to bucket idx (the
// Prometheus `le` bound of the bucket), saturating at MaxInt64 in the
// top octaves no int64 value can reach.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := idx/subCount - 1
	minor := idx % subCount
	if shift > 59 { // (subCount+minor+1)<<shift would exceed MaxInt64
		return math.MaxInt64
	}
	u := uint64(subCount+minor+1)<<shift - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Histogram is a lock-free streaming histogram of non-negative int64
// values (typically nanoseconds or counts). The zero value is ready to
// use. All methods are safe for concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Merge adds every sample of o into h. Concurrent recording into either
// histogram during the merge yields a snapshot-consistent-enough result
// (each sample lands exactly once; count/sum may transiently disagree
// with the buckets by in-flight observations).
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		m := h.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Upper int64  `json:"upper"` // inclusive upper bound of the bucket
	Count uint64 `json:"count"` // samples in this bucket (not cumulative)
}

// HistSnapshot is a point-in-time copy of a histogram, suitable for
// percentile queries and export.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"` // exact maximum observed value
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Buckets contains only
// non-empty buckets, in increasing bound order.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank over the
// bucketed distribution. The answer is the upper bound of the bucket
// containing the rank — within one sub-bucket (<= 12.5%) of the exact
// value — except that the top-most occupied bucket reports the exact
// recorded maximum. Returns 0 with no samples.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := int64(0)
	for _, b := range s.Buckets {
		total += int64(b.Count)
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i, b := range s.Buckets {
		cum += int64(b.Count)
		if cum >= rank {
			if i == len(s.Buckets)-1 && s.Max > 0 {
				return s.Max
			}
			return b.Upper
		}
	}
	return s.Max
}

// Mean returns the average recorded value, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (s HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}
