package obs

import (
	"sort"
	"sync/atomic"
)

// PartitionCounters accumulates the hot-spot statistics of one partition
// of the consolidated index. All fields are atomic so the pipeline can
// update them lock-free from any stage.
type PartitionCounters struct {
	QueriesRouted   atomic.Int64 // queries appended to this partition's batches
	BatchesFull     atomic.Int64 // batches dispatched because they filled
	BatchesTimedOut atomic.Int64 // batches dispatched by the flush timeout
	BatchesFlushed  atomic.Int64 // batches dispatched by explicit flush/drain
	Pairs           atomic.Int64 // (query,set) pairs produced
	Overflows       atomic.Int64 // GPU result-buffer overflows (CPU fallback)
	PrefilterBlocks atomic.Int64 // thread blocks that ran the prefilter
	PrefilterPruned atomic.Int64 // blocks where the prefilter rejected every query
}

// PartitionSnapshot is the exported view of one partition's counters.
type PartitionSnapshot struct {
	ID              int   `json:"id"`
	Sets            int   `json:"sets"` // partition size (tag sets)
	QueriesRouted   int64 `json:"queries_routed"`
	BatchesFull     int64 `json:"batches_full"`
	BatchesTimedOut int64 `json:"batches_timed_out"`
	BatchesFlushed  int64 `json:"batches_flushed"`
	Pairs           int64 `json:"pairs"`
	Overflows       int64 `json:"overflows"`
	PrefilterBlocks int64 `json:"prefilter_blocks"`
	PrefilterPruned int64 `json:"prefilter_pruned"`
}

// partitionSet is one generation of per-partition counters, swapped
// wholesale at Consolidate so stats always line up with the live index.
type partitionSet struct {
	counters []PartitionCounters
	sizes    []int
}

// Partitions holds the per-partition counters of the current index
// generation. Reset installs a fresh generation; Get is bounds-checked
// against the generation it observes, so a stage racing a consolidate
// either updates the old generation (about to be discarded) or the new
// one — never crashes.
type Partitions struct {
	cur atomic.Pointer[partitionSet]
}

// Reset installs fresh counters for n partitions with the given sizes
// (sizes may be nil).
func (p *Partitions) Reset(sizes []int) {
	ps := &partitionSet{
		counters: make([]PartitionCounters, len(sizes)),
		sizes:    sizes,
	}
	p.cur.Store(ps)
}

// Get returns the counters of partition pid, or nil when out of range
// (e.g. before the first Consolidate).
func (p *Partitions) Get(pid uint32) *PartitionCounters {
	ps := p.cur.Load()
	if ps == nil || int(pid) >= len(ps.counters) {
		return nil
	}
	return &ps.counters[pid]
}

// Len returns the number of partitions in the current generation.
func (p *Partitions) Len() int {
	ps := p.cur.Load()
	if ps == nil {
		return 0
	}
	return len(ps.counters)
}

// Snapshot returns every partition's counters in id order.
func (p *Partitions) Snapshot() []PartitionSnapshot {
	ps := p.cur.Load()
	if ps == nil {
		return nil
	}
	out := make([]PartitionSnapshot, len(ps.counters))
	for i := range ps.counters {
		c := &ps.counters[i]
		out[i] = PartitionSnapshot{
			ID:              i,
			QueriesRouted:   c.QueriesRouted.Load(),
			BatchesFull:     c.BatchesFull.Load(),
			BatchesTimedOut: c.BatchesTimedOut.Load(),
			BatchesFlushed:  c.BatchesFlushed.Load(),
			Pairs:           c.Pairs.Load(),
			Overflows:       c.Overflows.Load(),
			PrefilterBlocks: c.PrefilterBlocks.Load(),
			PrefilterPruned: c.PrefilterPruned.Load(),
		}
		if i < len(ps.sizes) {
			out[i].Sets = ps.sizes[i]
		}
	}
	return out
}

// Hottest returns the k partitions with the most routed queries,
// descending — the skew view of Algorithm 1's splits.
func (p *Partitions) Hottest(k int) []PartitionSnapshot {
	all := p.Snapshot()
	sort.Slice(all, func(i, j int) bool {
		if all[i].QueriesRouted != all[j].QueriesRouted {
			return all[i].QueriesRouted > all[j].QueriesRouted
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
