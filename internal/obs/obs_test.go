package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := s.Quantile(q); v != 0 {
			t.Fatalf("Quantile(%v) on empty = %d", q, v)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("Mean on empty = %v", s.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(777)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 777 || s.Max != 777 {
		t.Fatalf("snapshot = %+v", s)
	}
	// A single sample must be reported exactly at every quantile (the
	// top bucket reports the exact max).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := s.Quantile(q); v != 777 {
			t.Fatalf("Quantile(%v) = %d, want 777", q, v)
		}
	}
}

func TestHistogramDuplicatesAndSmallValues(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(5) // below subCount: recorded exactly
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("p50 of constant 5s = %d", got)
	}
	if got := s.Quantile(0.99); got != 5 {
		t.Fatalf("p99 of constant 5s = %d", got)
	}
	if s.Max != 5 || s.Count != 100 || s.Sum != 500 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-42)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Quantile(1) != 0 {
		t.Fatalf("snapshot after negative observe = %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	n := 10000
	for i := 1; i <= n; i++ {
		h.Observe(int64(i) * 1000) // 1µs .. 10ms in ns
	}
	s := h.Snapshot()
	if s.Count != int64(n) {
		t.Fatalf("count = %d", s.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := q * float64(n) * 1000
		got := float64(s.Quantile(q))
		if rel := math.Abs(got-exact) / exact; rel > 0.13 {
			t.Fatalf("Quantile(%v) = %v, exact %v, rel err %.3f > bucket bound", q, got, exact, rel)
		}
		if got < exact*0.999 {
			t.Fatalf("Quantile(%v) = %v underestimates exact %v", q, got, exact)
		}
	}
	if s.Quantile(1) != int64(n)*1000 {
		t.Fatalf("max quantile = %d, want exact max %d", s.Quantile(1), n*1000)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(100)
	}
	for i := 0; i < 50; i++ {
		b.Observe(1_000_000)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 100 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("merged max = %d", s.Max)
	}
	if got := s.Quantile(0.25); got > 110 {
		t.Fatalf("merged p25 = %d, want ~100", got)
	}
	if got := s.Quantile(0.9); got < 900_000 {
		t.Fatalf("merged p90 = %d, want ~1ms", got)
	}
	// b unchanged.
	if b.Count() != 50 {
		t.Fatalf("merge mutated source: count = %d", b.Count())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Merge(&b) // merging empty is a no-op
	if s := a.Snapshot(); s.Count != 1 || s.Max != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
	b.Merge(&a) // merging into empty copies
	if s := b.Snapshot(); s.Count != 1 || s.Max != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < perWorker; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe((v >> 33) & 0xfffff)
			}
		}(int64(w + 1))
	}
	// Concurrent snapshots must not race with recording.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != uint64(workers*perWorker) {
		t.Fatalf("bucket total = %d, want %d", total, workers*perWorker)
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it, with
	// contiguous bucket boundaries.
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		if up := bucketUpper(idx); v > up {
			t.Fatalf("value %d above its bucket %d upper %d", v, idx, up)
		}
		if idx > 0 {
			if lo := bucketUpper(idx - 1); v <= lo {
				t.Fatalf("value %d at or below previous bucket upper %d (idx %d)", v, lo, idx)
			}
		}
	}
	// Uppers are strictly increasing over the reachable range (the top
	// octaves saturate at MaxInt64).
	for i := 1; i <= bucketIndex(math.MaxInt64); i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket uppers not strictly increasing at %d", i)
		}
	}
}

func TestPartitions(t *testing.T) {
	var p Partitions
	if p.Get(0) != nil {
		t.Fatal("Get before Reset should be nil")
	}
	if p.Snapshot() != nil || p.Len() != 0 {
		t.Fatal("empty snapshot should be nil")
	}
	p.Reset([]int{10, 20, 30})
	p.Get(1).QueriesRouted.Add(7)
	p.Get(1).Pairs.Add(3)
	p.Get(2).QueriesRouted.Add(2)
	if p.Get(99) != nil {
		t.Fatal("out-of-range Get should be nil")
	}
	snap := p.Snapshot()
	if len(snap) != 3 || snap[1].QueriesRouted != 7 || snap[1].Sets != 20 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hot := p.Hottest(2)
	if len(hot) != 2 || hot[0].ID != 1 || hot[1].ID != 2 {
		t.Fatalf("hottest = %+v", hot)
	}
	// Reset discards the old generation.
	p.Reset([]int{5})
	if got := p.Get(0).QueriesRouted.Load(); got != 0 {
		t.Fatalf("counters survived reset: %d", got)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(0, 4)
	if tr.Enabled() {
		t.Fatal("every=0 must disable tracing")
	}
	if tr.Maybe() != nil {
		t.Fatal("disabled tracer sampled a query")
	}

	tr = NewTracer(3, 4)
	sampled := 0
	for i := 0; i < 30; i++ {
		if sp := tr.Maybe(); sp != nil {
			sampled++
			sp.Event("preprocess", 2, 5)
			sp.Done(11)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 30 with every=3", sampled)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	// Oldest-first ordering.
	for i := 1; i < len(recent); i++ {
		if recent[i].ID <= recent[i-1].ID {
			t.Fatalf("ring not oldest-first: %v", recent)
		}
	}
	rec := recent[0]
	if len(rec.Events) != 2 || rec.Events[0].Stage != "preprocess" || rec.Events[1].Stage != "done" {
		t.Fatalf("events = %+v", rec.Events)
	}
	if rec.Events[1].N != 11 {
		t.Fatalf("done event N = %d", rec.Events[1].N)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Event("x", 0, 0)
	tr.Done(0)
}

func TestPipelineSnapshotAndProm(t *testing.T) {
	p := New(Options{TraceEvery: 1, TopPartitions: 2})
	p.Parts.Reset([]int{4, 4, 4})
	p.Preprocess.ObserveDuration(10 * time.Microsecond)
	p.E2E.ObserveDuration(2 * time.Millisecond)
	p.BatchOccupancy.Observe(100)
	p.Parts.Get(0).QueriesRouted.Add(5)
	p.RegisterGauge("tagmatch_queue_depth", "Queued items per pipeline queue.",
		Labels{{"queue", "input"}}, func() float64 { return 3 })
	sp := p.Tracer.Maybe()
	sp.Event("batch", 1, 42)
	sp.Done(1)

	snap := p.Snapshot(true)
	if len(snap.Stages) != 5 {
		t.Fatalf("stages = %d", len(snap.Stages))
	}
	if snap.Stages[4].Stage != StageE2E || snap.Stages[4].Count != 1 {
		t.Fatalf("e2e stage = %+v", snap.Stages[4])
	}
	if snap.Stages[4].Max != 2*time.Millisecond {
		t.Fatalf("e2e max = %v", snap.Stages[4].Max)
	}
	if len(snap.Partitions) != 3 || len(snap.HotPartitions) != 2 {
		t.Fatalf("partitions = %d hot = %d", len(snap.Partitions), len(snap.HotPartitions))
	}
	if snap.Gauges[`tagmatch_queue_depth{queue="input"}`] != 3 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	if len(snap.Traces) != 1 {
		t.Fatalf("traces = %d", len(snap.Traces))
	}

	var sb strings.Builder
	p.WriteProm(NewPromWriter(&sb))
	out := sb.String()
	for _, want := range []string{
		`# TYPE tagmatch_stage_duration_seconds histogram`,
		`tagmatch_stage_duration_seconds_bucket{stage="e2e",le="+Inf"} 1`,
		`tagmatch_stage_duration_seconds_count{stage="e2e"} 1`,
		`tagmatch_batch_occupancy_queries_count 1`,
		`tagmatch_queue_depth{queue="input"} 3`,
		`tagmatch_partition_queries_routed_total{partition="0"} 5`,
		`tagmatch_partition_series_truncated 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear exactly once per family.
	if strings.Count(out, "# TYPE tagmatch_stage_duration_seconds histogram") != 1 {
		t.Fatalf("duplicate family header:\n%s", out)
	}
	// Bucket counts must be cumulative and end at the +Inf bucket.
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestKernelCountersSnapshotAndProm(t *testing.T) {
	p := New(Options{})
	p.Kernel.SlicedBatches.Add(3)
	p.Kernel.ScalarBatches.Add(1)
	p.Kernel.GateChecks.Add(10)
	p.Kernel.GatePruned.Add(4)
	p.Kernel.GroupScans.Add(6)
	p.Kernel.ColumnsWalked.Add(90)
	p.Kernel.Columns.Observe(90)

	snap := p.Snapshot(false)
	k := snap.Kernel
	if k.SlicedBatches != 3 || k.ScalarBatches != 1 || k.GateChecks != 10 ||
		k.GatePruned != 4 || k.GroupScans != 6 || k.ColumnsWalked != 90 {
		t.Fatalf("kernel snapshot = %+v", k)
	}
	if k.Columns.Count != 1 {
		t.Fatalf("columns histogram count = %d", k.Columns.Count)
	}

	var sb strings.Builder
	p.WriteProm(NewPromWriter(&sb))
	out := sb.String()
	for _, want := range []string{
		`tagmatch_kernel_batches_total{flavor="sliced"} 3`,
		`tagmatch_kernel_batches_total{flavor="scalar"} 1`,
		`tagmatch_kernel_gate_checks_total 10`,
		`tagmatch_kernel_gate_pruned_total 4`,
		`tagmatch_kernel_group_scans_total 6`,
		`tagmatch_kernel_columns_walked_total 90`,
		`# TYPE tagmatch_kernel_columns_per_block histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE tagmatch_kernel_batches_total counter") != 1 {
		t.Fatalf("duplicate kernel family header:\n%s", out)
	}
}

func TestDisabledPipeline(t *testing.T) {
	p := New(Options{Disabled: true, TraceEvery: 5})
	if p.On {
		t.Fatal("disabled pipeline has On set")
	}
	if p.Tracing() {
		t.Fatal("disabled pipeline traces")
	}
	snap := p.Snapshot(true)
	if len(snap.Stages) != 5 {
		t.Fatal("disabled pipeline must still snapshot")
	}
}
