package obs

import "sync/atomic"

// FaultCounters is the fault-tolerance event log of the pipeline: GPU
// batch failures, retries, CPU fallbacks, device quarantine transitions,
// and load-shedding rejections. Unlike the latency histograms these are
// NOT gated by Pipeline.On — they feed the engine's Stats and the
// acceptance criteria of the failure-handling logic, and they only cost
// an atomic increment on paths that are already off the happy path.
type FaultCounters struct {
	// GPUFaults counts batch attempts that failed on a device (copy,
	// launch, or result-transfer error, including a dead device).
	GPUFaults atomic.Int64
	// BatchRetries counts batches re-dispatched to another stream or
	// device after a failed attempt.
	BatchRetries atomic.Int64
	// CPUFallbacks counts batches re-run on the host because no healthy
	// device attempt remained (quarantine, repeated failure).
	CPUFallbacks atomic.Int64
	// Quarantines counts devices taken out of rotation by the
	// consecutive-failure circuit breaker.
	Quarantines atomic.Int64
	// Probes counts recovery probes: single batches let through to a
	// quarantined device after its backoff elapsed.
	Probes atomic.Int64
	// Recoveries counts devices returned to rotation by a successful
	// probe.
	Recoveries atomic.Int64
	// QueriesShed counts submissions rejected by the overload gate
	// (ErrOverloaded).
	QueriesShed atomic.Int64
	// DeadlineExpired counts queries completed with ErrDeadlineExceeded
	// because their context deadline passed (or the context was
	// cancelled) before their batch launched.
	DeadlineExpired atomic.Int64
	// BatchesCancelled counts batches dropped before any device work
	// because every query in them had already expired.
	BatchesCancelled atomic.Int64
	// HedgesFired counts straggler hedges launched: a batch exceeded its
	// straggler budget and was re-dispatched to another executor while
	// the primary attempt was still running.
	HedgesFired atomic.Int64
	// HedgesWon counts hedges whose result was delivered (the primary
	// attempt lost the race and was discarded).
	HedgesWon atomic.Int64
	// HedgesLost counts hedges that completed after the primary had
	// already settled the batch — wasted but harmless work.
	HedgesLost atomic.Int64
	// HedgesCancelled counts straggler budgets that expired after the
	// batch had already settled, so no hedge was launched.
	HedgesCancelled atomic.Int64
	// HTTPTimeouts counts HTTP match requests answered 504 because the
	// query's deadline expired or its request context was cancelled.
	HTTPTimeouts atomic.Int64
}

// FaultSnapshot is the JSON-facing view of FaultCounters.
type FaultSnapshot struct {
	GPUFaults        int64 `json:"gpu_faults"`
	BatchRetries     int64 `json:"batch_retries"`
	CPUFallbacks     int64 `json:"cpu_fallbacks"`
	Quarantines      int64 `json:"device_quarantines"`
	Probes           int64 `json:"recovery_probes"`
	Recoveries       int64 `json:"device_recoveries"`
	QueriesShed      int64 `json:"queries_shed"`
	DeadlineExpired  int64 `json:"deadline_expired"`
	BatchesCancelled int64 `json:"batches_cancelled"`
	HedgesFired      int64 `json:"hedges_fired"`
	HedgesWon        int64 `json:"hedges_won"`
	HedgesLost       int64 `json:"hedges_lost"`
	HedgesCancelled  int64 `json:"hedges_cancelled"`
	HTTPTimeouts     int64 `json:"http_timeouts"`
}

// Snapshot returns a consistent-enough copy for export (each counter is
// read atomically; the set is not a transaction).
func (f *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		GPUFaults:        f.GPUFaults.Load(),
		BatchRetries:     f.BatchRetries.Load(),
		CPUFallbacks:     f.CPUFallbacks.Load(),
		Quarantines:      f.Quarantines.Load(),
		Probes:           f.Probes.Load(),
		Recoveries:       f.Recoveries.Load(),
		QueriesShed:      f.QueriesShed.Load(),
		DeadlineExpired:  f.DeadlineExpired.Load(),
		BatchesCancelled: f.BatchesCancelled.Load(),
		HedgesFired:      f.HedgesFired.Load(),
		HedgesWon:        f.HedgesWon.Load(),
		HedgesLost:       f.HedgesLost.Load(),
		HedgesCancelled:  f.HedgesCancelled.Load(),
		HTTPTimeouts:     f.HTTPTimeouts.Load(),
	}
}

// writeProm emits the fault counters in Prometheus text format.
func (f *FaultCounters) writeProm(w *PromWriter) {
	w.Counter("tagmatch_gpu_faults_total",
		"GPU batch attempts failed (copy, launch, or result-transfer error).",
		nil, float64(f.GPUFaults.Load()))
	w.Counter("tagmatch_batch_retries_total",
		"Batches re-dispatched to another stream/device after a failure.",
		nil, float64(f.BatchRetries.Load()))
	w.Counter("tagmatch_cpu_fallbacks_total",
		"Batches re-run on the host after GPU failure or quarantine.",
		nil, float64(f.CPUFallbacks.Load()))
	w.Counter("tagmatch_device_quarantines_total",
		"Devices quarantined by the consecutive-failure circuit breaker.",
		nil, float64(f.Quarantines.Load()))
	w.Counter("tagmatch_device_recovery_probes_total",
		"Recovery probes sent to quarantined devices.",
		nil, float64(f.Probes.Load()))
	w.Counter("tagmatch_device_recoveries_total",
		"Devices returned to rotation by a successful probe.",
		nil, float64(f.Recoveries.Load()))
	w.Counter("tagmatch_queries_shed_total",
		"Query submissions rejected by the overload gate.",
		nil, float64(f.QueriesShed.Load()))
	w.Counter("tagmatch_deadline_expired_total",
		"Queries completed with ErrDeadlineExceeded before their batch launched.",
		nil, float64(f.DeadlineExpired.Load()))
	w.Counter("tagmatch_batches_cancelled_total",
		"Batches dropped before device work because every query had expired.",
		nil, float64(f.BatchesCancelled.Load()))
	w.Counter("tagmatch_hedges_total",
		"Straggler hedges by outcome (fired: launched; won: hedge result used; lost: primary won the race; cancelled: budget expired after settle).",
		Labels{{"outcome", "fired"}}, float64(f.HedgesFired.Load()))
	w.Counter("tagmatch_hedges_total", "",
		Labels{{"outcome", "won"}}, float64(f.HedgesWon.Load()))
	w.Counter("tagmatch_hedges_total", "",
		Labels{{"outcome", "lost"}}, float64(f.HedgesLost.Load()))
	w.Counter("tagmatch_hedges_total", "",
		Labels{{"outcome", "cancelled"}}, float64(f.HedgesCancelled.Load()))
	w.Counter("tagmatch_http_timeouts_total",
		"HTTP match requests answered 504 (deadline exceeded or request cancelled).",
		nil, float64(f.HTTPTimeouts.Load()))
}
