package obs

import "sync/atomic"

// DeltaCounters instruments the live-update subsystem: the match-visible
// delta overlay (staged adds matchable ahead of consolidation, removes
// as tombstones) and the background consolidator that folds it into the
// main index. Like FaultCounters and StreamCounters they are NOT gated
// by Pipeline.On — they feed the engine's Stats, the churn bench
// assertions, and the /metrics families below.
type DeltaCounters struct {
	// AbsorbedOps counts staged operations absorbed into the overlay
	// (adds and removes; removes that cancel a pending overlay add or
	// no-op still count).
	AbsorbedOps atomic.Int64
	// OverlayMatches counts queries that drew at least one key from the
	// overlay; OverlayKeys the keys so delivered.
	OverlayMatches atomic.Int64
	OverlayKeys    atomic.Int64
	// TombSuppressed counts main-index key-table entries hidden from
	// reduce output by a live tombstone.
	TombSuppressed atomic.Int64
	// AutoConsolidations counts background (zero-drain) consolidations
	// triggered by the overlay outgrowing its threshold.
	AutoConsolidations atomic.Int64

	// SwapPause is the distribution (nanoseconds) of the background
	// consolidation's traffic pause: the Phase-C drain + index swap +
	// device upload — the part that excludes submissions, as opposed to
	// the full rebuild a synchronous Consolidate blocks for.
	SwapPause Histogram
}

// DeltaSnapshot is the JSON-facing view of DeltaCounters.
type DeltaSnapshot struct {
	AbsorbedOps        int64        `json:"absorbed_ops"`
	OverlayMatches     int64        `json:"overlay_matches"`
	OverlayKeys        int64        `json:"overlay_keys"`
	TombSuppressed     int64        `json:"tombstone_suppressions"`
	AutoConsolidations int64        `json:"auto_consolidations"`
	SwapPause          HistSnapshot `json:"swap_pause"`
}

// Snapshot returns an atomic-per-field copy for export.
func (d *DeltaCounters) Snapshot() DeltaSnapshot {
	return DeltaSnapshot{
		AbsorbedOps:        d.AbsorbedOps.Load(),
		OverlayMatches:     d.OverlayMatches.Load(),
		OverlayKeys:        d.OverlayKeys.Load(),
		TombSuppressed:     d.TombSuppressed.Load(),
		AutoConsolidations: d.AutoConsolidations.Load(),
		SwapPause:          d.SwapPause.Snapshot(),
	}
}

// writeProm emits the delta counters in Prometheus text format.
func (d *DeltaCounters) writeProm(w *PromWriter) {
	w.Counter("tagmatch_delta_absorbed_ops_total",
		"Staged add/remove operations absorbed into the match-visible delta overlay.",
		nil, float64(d.AbsorbedOps.Load()))
	w.Counter("tagmatch_delta_overlay_matches_total",
		"Queries that drew at least one key from the delta overlay.",
		nil, float64(d.OverlayMatches.Load()))
	w.Counter("tagmatch_delta_overlay_keys_total",
		"Keys delivered from the delta overlay.",
		nil, float64(d.OverlayKeys.Load()))
	w.Counter("tagmatch_delta_tombstone_suppressions_total",
		"Main-index key entries suppressed by live tombstones at reduce time.",
		nil, float64(d.TombSuppressed.Load()))
	w.Counter("tagmatch_auto_consolidations_total",
		"Background consolidations triggered by the delta overlay threshold.",
		nil, float64(d.AutoConsolidations.Load()))
	w.Histogram("tagmatch_consolidation_swap_pause_seconds",
		"Traffic pause of a background consolidation swap (drain + index swap + device upload).",
		nil, d.SwapPause.Snapshot(), 1e-9)
}
