package obs

import "time"

// Latency attribution: a decomposition of end-to-end query latency into
// per-stage wait and service components. Each component is one
// histogram the pipeline already records; attribution lines them up
// against the E2E histogram so "where did the p99 go" is answerable
// from /debug/stats without correlating dashboards by hand.
//
// Shares are computed as component total time over E2E total time.
// Components measured per batch (batch wait, GPU ops, subset-match,
// reduce) amortize over the batch's queries, and device operations on
// different streams overlap, so shares are a concurrency-weighted view:
// they can individually exceed what a serial reading would allow and do
// not sum to 100%. They answer "which stage dominates", not "what is
// the serial critical path".

// AttributionComponent is one stage×phase share of end-to-end latency.
type AttributionComponent struct {
	// Stage is the pipeline stage or device-op kind.
	Stage string `json:"stage"`
	// Phase is "wait" (queued behind a stage) or "service" (the stage
	// doing work).
	Phase string `json:"phase"`
	// Per is the recording granularity: "query" or "batch".
	Per     string        `json:"per"`
	Count   int64         `json:"count"`
	MeanNs  float64       `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	TotalNs int64         `json:"total_ns"`
	// SharePct is TotalNs over the E2E histogram's total, in percent.
	SharePct float64 `json:"share_pct"`
	// ExemplarTraceID is the sampled trace whose latency falls nearest
	// this component's p99, when tracing is on — the query to pull from
	// /debug/timeline to see a slow instance. 0 when unavailable.
	ExemplarTraceID uint64 `json:"exemplar_trace_id,omitempty"`
}

// Attribution returns the per-stage wait/service decomposition of E2E
// latency, pipeline order, wait before service.
func (p *Pipeline) Attribution() []AttributionComponent {
	e2e := p.E2E.Snapshot()
	exemplars := p.Tracer.Exemplars()

	comp := func(stage, phase, per string, h *Histogram) AttributionComponent {
		s := h.Snapshot()
		c := AttributionComponent{
			Stage:   stage,
			Phase:   phase,
			Per:     per,
			Count:   s.Count,
			MeanNs:  s.Mean(),
			P50:     s.QuantileDuration(0.50),
			P99:     s.QuantileDuration(0.99),
			TotalNs: s.Sum,
		}
		if e2e.Sum > 0 {
			c.SharePct = float64(s.Sum) / float64(e2e.Sum) * 100
		}
		// Attach the exemplar trace closest to (and preferably slower
		// than) this component's p99: a concrete query to inspect.
		p99 := c.P99
		for _, e := range exemplars { // sorted fastest→slowest
			c.ExemplarTraceID = e.TraceID
			if e.Latency >= p99 {
				break
			}
		}
		return c
	}

	return []AttributionComponent{
		comp("input", "wait", "query", &p.InputWait),
		comp(StagePreprocess, "service", "query", &p.Preprocess),
		comp("batch", "wait", "batch", &p.BatchWait),
		comp("gpu_h2d", "wait", "batch", &p.GPUH2D.Wait),
		comp("gpu_h2d", "service", "batch", &p.GPUH2D.Service),
		comp("gpu_kernel", "wait", "batch", &p.GPUKernel.Wait),
		comp("gpu_kernel", "service", "batch", &p.GPUKernel.Service),
		comp("gpu_d2h", "wait", "batch", &p.GPUD2H.Wait),
		comp("gpu_d2h", "service", "batch", &p.GPUD2H.Service),
		comp(StageSubsetMatch, "service", "batch", &p.SubsetMatch),
		comp(StageReduce, "service", "batch", &p.Reduce),
		comp(StageMerge, "service", "query", &p.Merge),
	}
}
