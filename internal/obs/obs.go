// Package obs is the pipeline-wide observability layer of the TagMatch
// reproduction: lock-free log-bucketed latency histograms for every
// pipeline stage (the measurements behind the paper's Fig 6 latency
// distributions and its stage-breakdown tuning arguments), per-partition
// hot-spot counters exposing the skew of Algorithm 1's splits, sampled
// per-query trace spans, and export helpers for the Prometheus text
// format and JSON debug snapshots.
//
// Recording is allocation-free on the hot path — atomic bucket
// increments only — so the engine keeps it enabled by default;
// cmd/tagmatch-bench's obs-overhead experiment verifies the cost stays
// under 5% of throughput.
package obs

import (
	"sync"
	"time"
)

// Stage names used consistently across histograms, traces, Prometheus
// labels and log lines.
const (
	StagePreprocess  = "preprocess"
	StageSubsetMatch = "subset_match"
	StageReduce      = "reduce"
	StageMerge       = "merge"
	StageE2E         = "e2e"
)

// Options configures a Pipeline.
type Options struct {
	// Disabled turns every recording call into a no-op branch; used by
	// the overhead benchmark and available to operators who want the
	// last percent of throughput.
	Disabled bool
	// TraceEvery samples one query in N for full tracing; 0 disables
	// tracing (the default).
	TraceEvery int
	// TraceKeep is the completed-trace ring size (default 128).
	TraceKeep int
	// TopPartitions caps the per-partition series exported in Prometheus
	// text format (the JSON snapshot always carries all partitions).
	// Default 20.
	TopPartitions int
}

// Pipeline is the engine-wide observability state. All recording methods
// are safe for concurrent use and nil-safe where documented.
type Pipeline struct {
	// On gates instrumentation at the call sites: hot paths check it
	// before taking timestamps, so a disabled pipeline costs one branch.
	On bool

	// Per-stage latency histograms (nanoseconds). Preprocess and the
	// merge stage are per-query; SubsetMatch and Reduce are per-batch
	// (dispatch→result-arrival and key-lookup respectively); E2E is the
	// submit→merge latency Fig 6 reports.
	Preprocess  Histogram
	SubsetMatch Histogram
	Reduce      Histogram
	Merge       Histogram
	E2E         Histogram

	// BatchOccupancy records queries-per-batch at dispatch: how full
	// batches are when they leave (fullness vs. timeout tuning).
	BatchOccupancy Histogram

	// InputWait is the submit→preprocess-pickup queue wait per query;
	// BatchWait is the batch-open→dispatch wait per batch (the price of
	// batching amortization, §3.3.1). Together with the GPU op wait
	// histograms they split E2E latency into wait vs service components;
	// see Attribution.
	InputWait Histogram
	BatchWait Histogram

	// DeadlineSlack records, for deadline-carrying queries at batch
	// dispatch, the time remaining until their deadline (clamped at
	// zero): the headroom the admission and batching stages left the
	// device path. A distribution piling up at zero means batching is
	// eating the budget before any device work starts.
	DeadlineSlack Histogram

	// GPUH2D/GPUKernel/GPUD2H record device-operation latencies split
	// into queue wait (stream enqueue→start) and service (start→done).
	GPUH2D    OpHist
	GPUKernel OpHist
	GPUD2H    OpHist

	// Parts carries the per-partition hot-spot counters.
	Parts Partitions

	// Faults counts fault-tolerance events (GPU failures, retries, CPU
	// fallbacks, quarantines, load shedding). Always recorded, even when
	// On is false; see FaultCounters.
	Faults FaultCounters

	// Routing counts pre-process routing activity: lookup flavor per
	// query and the lock amortization of the worker-local batch
	// accumulators. Always recorded, like Faults; see RoutingCounters.
	Routing RoutingCounters

	// Kernel counts subset-match activity: kernel flavor per batch,
	// group-gate effectiveness, and columns walked by the bit-sliced
	// scan. Always recorded, like Faults; see KernelCounters.
	Kernel KernelCounters

	// Streams counts pipelined-dispatch activity: query-window
	// hits/misses, H2D query bytes, and stream slot occupancy. Always
	// recorded, like Faults; see StreamCounters.
	Streams StreamCounters

	// Delta counts live-update activity: overlay absorption and match
	// contribution, tombstone suppressions, background consolidations
	// and their swap-pause distribution. Always recorded, like Faults;
	// see DeltaCounters.
	Delta DeltaCounters

	// Tracer samples per-query traces.
	Tracer *Tracer

	topPartitions int

	gaugeMu sync.Mutex
	gauges  []gauge
}

// OpHist is a pair of histograms for one device-operation kind,
// separating time spent queued behind the stream from time spent on the
// (simulated) hardware.
type OpHist struct {
	Wait    Histogram
	Service Histogram
}

// Observe records one operation's wait and service durations.
func (o *OpHist) Observe(wait, service time.Duration) {
	o.Wait.ObserveDuration(wait)
	o.Service.ObserveDuration(service)
}

// GPUOpHist returns the histogram pair for a device-op kind name
// ("h2d", "kernel", "d2h"), or nil.
func (p *Pipeline) GPUOpHist(kind string) *OpHist {
	switch kind {
	case "h2d":
		return &p.GPUH2D
	case "kernel":
		return &p.GPUKernel
	case "d2h":
		return &p.GPUD2H
	}
	return nil
}

type gauge struct {
	name   string
	help   string
	labels Labels
	read   func() float64
}

// New builds a Pipeline. A disabled pipeline still answers snapshots
// (all empty) so export surfaces need no special cases.
func New(o Options) *Pipeline {
	p := &Pipeline{
		On:            !o.Disabled,
		Tracer:        NewTracer(o.TraceEvery, o.TraceKeep),
		topPartitions: o.TopPartitions,
	}
	if p.topPartitions <= 0 {
		p.topPartitions = 20
	}
	if o.Disabled {
		p.Tracer = NewTracer(0, 1)
	}
	return p
}

// Tracing reports whether per-query tracing is active.
func (p *Pipeline) Tracing() bool { return p.On && p.Tracer.Enabled() }

// StageHistogram returns the histogram for a stage name, or nil.
func (p *Pipeline) StageHistogram(stage string) *Histogram {
	switch stage {
	case StagePreprocess:
		return &p.Preprocess
	case StageSubsetMatch:
		return &p.SubsetMatch
	case StageReduce:
		return &p.Reduce
	case StageMerge:
		return &p.Merge
	case StageE2E:
		return &p.E2E
	}
	return nil
}

// RegisterGauge adds a callback-backed gauge evaluated at export time.
// Gauges registered with the same name are exported as one family.
func (p *Pipeline) RegisterGauge(name, help string, labels Labels, read func() float64) {
	p.gaugeMu.Lock()
	p.gauges = append(p.gauges, gauge{name: name, help: help, labels: labels, read: read})
	p.gaugeMu.Unlock()
}

// StageSnapshot is the digest of one stage histogram.
type StageSnapshot struct {
	Stage  string        `json:"stage"`
	Count  int64         `json:"count"`
	MeanNs float64       `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
	Max    time.Duration `json:"max_ns"`
}

// Snapshot is the JSON-facing view of the whole pipeline's observability
// state (GET /debug/stats).
type Snapshot struct {
	Stages         []StageSnapshot        `json:"stages"`
	BatchOccupancy HistSnapshot           `json:"batch_occupancy"`
	Faults         FaultSnapshot          `json:"faults"`
	Routing        RoutingSnapshot        `json:"routing"`
	Kernel         KernelSnapshot         `json:"kernel"`
	Streams        StreamSnapshot         `json:"streams"`
	Delta          DeltaSnapshot          `json:"delta"`
	Gauges         map[string]float64     `json:"gauges,omitempty"`
	Attribution    []AttributionComponent `json:"attribution,omitempty"`
	Exemplars      []Exemplar             `json:"exemplars,omitempty"`
	HotPartitions  []PartitionSnapshot    `json:"hot_partitions,omitempty"`
	Partitions     []PartitionSnapshot    `json:"partitions,omitempty"`
	Traces         []TraceRecord          `json:"traces,omitempty"`
}

func stageSnap(name string, h *Histogram) StageSnapshot {
	s := h.Snapshot()
	return StageSnapshot{
		Stage:  name,
		Count:  s.Count,
		MeanNs: s.Mean(),
		P50:    s.QuantileDuration(0.50),
		P99:    s.QuantileDuration(0.99),
		Max:    time.Duration(s.Max),
	}
}

// Stages returns the per-stage digests in pipeline order.
func (p *Pipeline) Stages() []StageSnapshot {
	return []StageSnapshot{
		stageSnap(StagePreprocess, &p.Preprocess),
		stageSnap(StageSubsetMatch, &p.SubsetMatch),
		stageSnap(StageReduce, &p.Reduce),
		stageSnap(StageMerge, &p.Merge),
		stageSnap(StageE2E, &p.E2E),
	}
}

// Snapshot collects the full observability state. includeAllPartitions
// additionally inlines every partition's counters (the Prometheus export
// always caps at TopPartitions).
func (p *Pipeline) Snapshot(includeAllPartitions bool) Snapshot {
	s := Snapshot{
		Stages:         p.Stages(),
		BatchOccupancy: p.BatchOccupancy.Snapshot(),
		Faults:         p.Faults.Snapshot(),
		Routing:        p.Routing.Snapshot(),
		Kernel:         p.Kernel.Snapshot(),
		Streams:        p.Streams.Snapshot(),
		Delta:          p.Delta.Snapshot(),
		Attribution:    p.Attribution(),
		Exemplars:      p.Tracer.Exemplars(),
		HotPartitions:  p.Parts.Hottest(p.topPartitions),
		Traces:         p.Tracer.Recent(),
	}
	if includeAllPartitions {
		s.Partitions = p.Parts.Snapshot()
	}
	p.gaugeMu.Lock()
	gauges := append([]gauge(nil), p.gauges...)
	p.gaugeMu.Unlock()
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for _, g := range gauges {
			key := g.name
			if lbl := g.labels.String(); lbl != "" {
				key += lbl
			}
			s.Gauges[key] = g.read()
		}
	}
	return s
}

// WriteProm emits the pipeline's metrics in Prometheus text format:
// per-stage latency histograms (seconds), the batch-occupancy histogram,
// registered gauges, and the hottest TopPartitions partitions' counters
// labeled by partition id.
func (p *Pipeline) WriteProm(w *PromWriter) {
	for _, st := range []struct {
		name string
		h    *Histogram
	}{
		{StagePreprocess, &p.Preprocess},
		{StageSubsetMatch, &p.SubsetMatch},
		{StageReduce, &p.Reduce},
		{StageMerge, &p.Merge},
		{StageE2E, &p.E2E},
	} {
		w.Histogram("tagmatch_stage_duration_seconds",
			"Latency of each pipeline stage (preprocess/merge/e2e per query; subset_match/reduce per batch).",
			Labels{{"stage", st.name}}, st.h.Snapshot(), 1e-9)
	}
	w.Histogram("tagmatch_batch_occupancy_queries",
		"Queries per batch at dispatch time.",
		nil, p.BatchOccupancy.Snapshot(), 1)
	w.Histogram("tagmatch_queue_wait_seconds",
		"Queue wait before a pipeline stage (input: submit->preprocess pickup per query; batch: batch open->dispatch per batch).",
		Labels{{"queue", "input"}}, p.InputWait.Snapshot(), 1e-9)
	w.Histogram("tagmatch_queue_wait_seconds", "",
		Labels{{"queue", "batch"}}, p.BatchWait.Snapshot(), 1e-9)
	w.Histogram("tagmatch_deadline_slack_seconds",
		"Remaining deadline headroom of deadline-carrying queries at batch dispatch.",
		nil, p.DeadlineSlack.Snapshot(), 1e-9)
	for _, op := range []struct {
		kind string
		h    *OpHist
	}{
		{"h2d", &p.GPUH2D},
		{"kernel", &p.GPUKernel},
		{"d2h", &p.GPUD2H},
	} {
		w.Histogram("tagmatch_gpu_op_duration_seconds",
			"Device operation latency by kind and phase (wait: stream enqueue->start; service: start->done).",
			Labels{{"op", op.kind}, {"phase", "wait"}}, op.h.Wait.Snapshot(), 1e-9)
		w.Histogram("tagmatch_gpu_op_duration_seconds", "",
			Labels{{"op", op.kind}, {"phase", "service"}}, op.h.Service.Snapshot(), 1e-9)
	}
	p.Faults.writeProm(w)
	p.Routing.writeProm(w)
	p.Kernel.writeProm(w)
	p.Streams.writeProm(w)
	p.Delta.writeProm(w)

	p.gaugeMu.Lock()
	gauges := append([]gauge(nil), p.gauges...)
	p.gaugeMu.Unlock()
	for _, g := range gauges {
		w.Gauge(g.name, g.help, g.labels, g.read())
	}

	hot := p.Parts.Hottest(p.topPartitions)
	for _, ps := range hot {
		lbl := Labels{{"partition", itoa(ps.ID)}}
		w.Counter("tagmatch_partition_queries_routed_total",
			"Queries routed to the partition's batches.", lbl, float64(ps.QueriesRouted))
		w.Counter("tagmatch_partition_batches_full_total",
			"Batches dispatched because they filled.", lbl, float64(ps.BatchesFull))
		w.Counter("tagmatch_partition_batches_timeout_total",
			"Batches dispatched by the flush timeout.", lbl, float64(ps.BatchesTimedOut))
		w.Counter("tagmatch_partition_batches_flushed_total",
			"Batches dispatched by explicit flush/drain.", lbl, float64(ps.BatchesFlushed))
		w.Counter("tagmatch_partition_pairs_total",
			"(query,set) pairs produced by the partition.", lbl, float64(ps.Pairs))
		w.Counter("tagmatch_partition_overflows_total",
			"Result-buffer overflows (CPU fallback) in the partition.", lbl, float64(ps.Overflows))
		w.Counter("tagmatch_partition_prefilter_blocks_total",
			"Thread blocks that evaluated the Algorithm 4 prefilter.", lbl, float64(ps.PrefilterBlocks))
		w.Counter("tagmatch_partition_prefilter_pruned_total",
			"Blocks where the prefilter rejected the whole batch.", lbl, float64(ps.PrefilterPruned))
	}
	if n := p.Parts.Len(); n > len(hot) {
		w.Gauge("tagmatch_partition_series_truncated",
			"Partitions not individually exported (see /debug/stats for all).",
			nil, float64(n-len(hot)))
	}
}
