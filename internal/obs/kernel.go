package obs

import "sync/atomic"

// KernelCounters instruments the subset-match stage: which kernel
// flavor executed each batch and how much work the bit-sliced walk
// actually did. Like FaultCounters and RoutingCounters they are NOT
// gated by Pipeline.On — they feed the engine's Stats and the
// kernel-parity regression tests — and the kernels accumulate them in
// locals, flushing one bulk atomic add per thread block (per batch on
// the host path), never per (group, query).
type KernelCounters struct {
	// SlicedBatches counts batch subset matches executed by the
	// bit-sliced (column-transposed) kernel, on device or host.
	SlicedBatches atomic.Int64
	// ScalarBatches counts batch subset matches executed by the
	// retained scalar per-thread kernel (Config.ScalarKernel, and the
	// host fallback of a scalar-configured engine).
	ScalarBatches atomic.Int64
	// GateChecks counts (group, query) gate tests; GatePruned counts
	// those that discarded the group's 64 sets with the single
	// three-word intersection test. GatePruned / GateChecks is the
	// group-gate hit rate.
	GateChecks atomic.Int64
	GatePruned atomic.Int64
	// GroupScans counts column walks that ran because the gate passed
	// (or was disabled); ColumnsWalked accumulates the column words
	// those walks touched. ColumnsWalked / GroupScans is the mean scan
	// depth — the early-exit effectiveness of the sliced walk, to be
	// compared against the ~64×3 word operations the scalar kernel
	// spends per (group, query) worth of sets.
	GroupScans    atomic.Int64
	ColumnsWalked atomic.Int64

	// Columns is the distribution of column words walked per thread
	// block (per batch on the host path): the per-launch-unit work
	// profile of the sliced kernel.
	Columns Histogram
}

// KernelSnapshot is the JSON-facing view of KernelCounters.
type KernelSnapshot struct {
	SlicedBatches int64        `json:"sliced_batches"`
	ScalarBatches int64        `json:"scalar_batches"`
	GateChecks    int64        `json:"gate_checks"`
	GatePruned    int64        `json:"gate_pruned"`
	GroupScans    int64        `json:"group_scans"`
	ColumnsWalked int64        `json:"columns_walked"`
	Columns       HistSnapshot `json:"columns_per_block"`
}

// Snapshot returns an atomic-per-field copy for export.
func (k *KernelCounters) Snapshot() KernelSnapshot {
	return KernelSnapshot{
		SlicedBatches: k.SlicedBatches.Load(),
		ScalarBatches: k.ScalarBatches.Load(),
		GateChecks:    k.GateChecks.Load(),
		GatePruned:    k.GatePruned.Load(),
		GroupScans:    k.GroupScans.Load(),
		ColumnsWalked: k.ColumnsWalked.Load(),
		Columns:       k.Columns.Snapshot(),
	}
}

// writeProm emits the kernel counters in Prometheus text format.
func (k *KernelCounters) writeProm(w *PromWriter) {
	w.Counter("tagmatch_kernel_batches_total",
		"Batch subset matches executed, by kernel flavor.",
		Labels{{"flavor", "sliced"}}, float64(k.SlicedBatches.Load()))
	w.Counter("tagmatch_kernel_batches_total",
		"Batch subset matches executed, by kernel flavor.",
		Labels{{"flavor", "scalar"}}, float64(k.ScalarBatches.Load()))
	w.Counter("tagmatch_kernel_gate_checks_total",
		"(group, query) group-gate intersection tests in the sliced kernel.",
		nil, float64(k.GateChecks.Load()))
	w.Counter("tagmatch_kernel_gate_pruned_total",
		"Gate tests that discarded the whole 64-set group.",
		nil, float64(k.GatePruned.Load()))
	w.Counter("tagmatch_kernel_group_scans_total",
		"Column walks executed after a passing (or disabled) gate.",
		nil, float64(k.GroupScans.Load()))
	w.Counter("tagmatch_kernel_columns_walked_total",
		"Column words touched by sliced subset scans.",
		nil, float64(k.ColumnsWalked.Load()))
	w.Histogram("tagmatch_kernel_columns_per_block",
		"Column words walked per thread block (per batch on the host path).",
		nil, k.Columns.Snapshot(), 1)
}
