package obs

import "sync/atomic"

// RoutingCounters instruments the pre-process routing path: which
// lookup flavor served each query and how much partition-lock traffic
// the worker-local batch accumulators saved. Like FaultCounters they
// are NOT gated by Pipeline.On — they feed the engine's Stats and the
// contention regression tests, and they cost one bulk atomic add per
// query or per merge pass, not per (query, partition).
type RoutingCounters struct {
	// SlicedQueries counts queries routed through the bit-sliced
	// (column-transposed) partition-table lookup.
	SlicedQueries atomic.Int64
	// ScalarQueries counts queries routed through the retained scalar
	// Algorithm 2 scan (Config.ScalarRouting, CPU fallback baselines).
	ScalarQueries atomic.Int64
	// MergeLockAcqs counts partition-lock acquisitions taken by bulk
	// accumulator merges.
	MergeLockAcqs atomic.Int64
	// MergedAppends counts (query, partition) batch appends performed
	// under those acquisitions. MergedAppends / MergeLockAcqs is the
	// lock-amortization factor; per-append locking would hold it at 1.
	MergedAppends atomic.Int64
}

// RoutingSnapshot is the JSON-facing view of RoutingCounters.
type RoutingSnapshot struct {
	SlicedQueries int64 `json:"sliced_queries"`
	ScalarQueries int64 `json:"scalar_queries"`
	MergeLockAcqs int64 `json:"merge_lock_acquisitions"`
	MergedAppends int64 `json:"merged_appends"`
}

// Snapshot returns an atomic-per-field copy for export.
func (r *RoutingCounters) Snapshot() RoutingSnapshot {
	return RoutingSnapshot{
		SlicedQueries: r.SlicedQueries.Load(),
		ScalarQueries: r.ScalarQueries.Load(),
		MergeLockAcqs: r.MergeLockAcqs.Load(),
		MergedAppends: r.MergedAppends.Load(),
	}
}

// writeProm emits the routing counters in Prometheus text format.
func (r *RoutingCounters) writeProm(w *PromWriter) {
	w.Counter("tagmatch_routing_queries_total",
		"Queries routed by the pre-process stage, by lookup flavor.",
		Labels{{"flavor", "sliced"}}, float64(r.SlicedQueries.Load()))
	w.Counter("tagmatch_routing_queries_total",
		"Queries routed by the pre-process stage, by lookup flavor.",
		Labels{{"flavor", "scalar"}}, float64(r.ScalarQueries.Load()))
	w.Counter("tagmatch_routing_merge_locks_total",
		"Partition-lock acquisitions taken by bulk accumulator merges.",
		nil, float64(r.MergeLockAcqs.Load()))
	w.Counter("tagmatch_routing_merged_appends_total",
		"(query,partition) batch appends performed under bulk merges.",
		nil, float64(r.MergedAppends.Load()))
}
