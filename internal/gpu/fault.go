package gpu

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjectedFault is the error class of failures produced by a
// FaultPlan. Fault-tolerant code treats it like any other device error;
// tests use errors.Is to distinguish injected from organic failures.
var ErrInjectedFault = fmt.Errorf("gpu: injected fault")

// FaultKind classifies the faultable device operations.
type FaultKind uint8

const (
	opCopy FaultKind = iota
	opLaunch
	opAlloc
)

func (k FaultKind) String() string {
	switch k {
	case opCopy:
		return "copy"
	case opLaunch:
		return "launch"
	default:
		return "alloc"
	}
}

// FaultPlan describes deterministic fault injection for a simulated
// device — the chaos-testing hook of the fault-tolerance layer. Every
// faultable operation (host<->device copy, kernel launch, allocation)
// draws a sequence number from a per-device counter; whether an
// operation fails or straggles depends only on (Seed, sequence number,
// kind), so a plan replays identically for a fixed operation schedule
// and the per-kind failure and slowdown RATES are exact under any
// schedule. Failure and slowdown decisions use disjoint hash spaces, so
// enabling one never perturbs the other at the same seed.
//
// A FaultPlan is immutable once installed; swap plans with
// Device.SetFaultPlan (e.g. to "repair" a device mid-test and exercise
// the recovery probe).
type FaultPlan struct {
	// Seed drives the deterministic per-operation failure decisions.
	Seed int64

	// CopyFailProb, LaunchFailProb and AllocFailProb are per-operation
	// failure probabilities in [0,1] for the respective operation kinds.
	CopyFailProb   float64
	LaunchFailProb float64
	AllocFailProb  float64

	// FailOps lists exact operation sequence numbers (1-based, counted
	// across all kinds) that fail regardless of the probabilities —
	// scripted faults for precisely staged scenarios.
	FailOps []int64

	// DieAtOp kills the whole device when the operation counter reaches
	// it (1-based; 0 disables): every subsequent operation — including
	// the one that triggered the death — fails with ErrDeviceClosed,
	// modeling a mid-flight device loss (fallen off the bus, Xid error).
	DieAtOp int64

	// SlowProb is the per-operation probability in [0,1] of an injected
	// slowdown (straggler): the operation succeeds but stalls beyond its
	// modeled cost. Stragglers model the slow-not-broken device that
	// dominates real tail latency — ECC retirement storms, thermal
	// throttling, a contended PCIe switch.
	SlowProb float64

	// SlowFactor scales a straggling operation's modeled base cost: a
	// factor of 20 makes the op take 20x its CostModel cost (the extra
	// (SlowFactor-1)x is paid as stall). Values <= 1 add nothing; under
	// ZeroCost the base is zero, so use SlowDelay to give stragglers
	// magnitude there.
	SlowFactor float64

	// SlowDelay is an absolute extra stall added to every straggling
	// operation on top of the SlowFactor term. It is the knob chaos
	// tests use to set the straggler magnitude independent of the cost
	// model.
	SlowDelay time.Duration

	// SlowOps lists exact operation sequence numbers (1-based, counted
	// across all kinds) that straggle regardless of SlowProb — scripted
	// stragglers for precisely staged scenarios.
	SlowOps []int64
}

// SetFaultPlan installs (or, with nil, removes) the device's fault plan.
// Safe to call concurrently with device operations; in-flight operations
// observe either the old or the new plan.
func (d *Device) SetFaultPlan(fp *FaultPlan) {
	d.faults.Store(fp)
}

// Kill marks the device dead: every subsequent copy, launch, and
// allocation fails with ErrDeviceClosed. Running kernels complete.
// Unlike Close, Kill does not tear down the worker pool — a killed
// device still needs Close for cleanup, mirroring a lost-but-allocated
// real device.
func (d *Device) Kill() {
	d.dead.Store(true)
}

// Dead reports whether the device has been killed (by Kill or a
// FaultPlan's DieAtOp).
func (d *Device) Dead() bool { return d.dead.Load() }

// InjectedFaults returns the number of operations failed by the fault
// plan so far (device deaths not included).
func (d *Device) InjectedFaults() int64 { return d.injectedFaults.Load() }

// InjectedSlowdowns returns the number of operations the fault plan has
// stalled beyond their modeled cost so far.
func (d *Device) InjectedSlowdowns() int64 { return d.injectedSlowdowns.Load() }

// opCheck runs the fault-injection and device-death gate for one
// faultable operation whose modeled base cost is base. It returns
// ErrDeviceClosed on a dead device, an ErrInjectedFault-wrapped error
// when the plan fails this operation, and otherwise the straggler
// penalty (zero when the op is not slowed) the caller must pay via
// paySlow.
func (d *Device) opCheck(kind FaultKind, base time.Duration) (time.Duration, error) {
	fp := d.faults.Load()
	var slow time.Duration
	if fp != nil {
		n := d.faultOps.Add(1)
		if fp.DieAtOp > 0 && n >= fp.DieAtOp {
			d.dead.Store(true)
		}
		if !d.dead.Load() {
			if err := fp.check(kind, n, d.name); err != nil {
				d.injectedFaults.Add(1)
				return 0, err
			}
			slow = fp.slowPenalty(kind, n, base)
		}
	}
	if d.dead.Load() {
		return 0, fmt.Errorf("%w: %s is dead", ErrDeviceClosed, d.name)
	}
	return slow, nil
}

// slowKindOffset shifts the kind term of the slowdown draw into a hash
// space disjoint from the failure draw, so an op's straggle decision is
// independent of its failure decision at the same (Seed, n).
const slowKindOffset = 8

// slowPenalty decides whether operation n of the given kind straggles
// under the plan and returns the extra stall it pays beyond base.
func (fp *FaultPlan) slowPenalty(kind FaultKind, n int64, base time.Duration) time.Duration {
	slowed := false
	for _, s := range fp.SlowOps {
		if s == n {
			slowed = true
			break
		}
	}
	if !slowed && fp.SlowProb > 0 {
		slowed = unitUniform(fp.Seed, n, int64(kind)+slowKindOffset) < fp.SlowProb
	}
	if !slowed {
		return 0
	}
	var p time.Duration
	if fp.SlowFactor > 1 {
		p = time.Duration(float64(base) * (fp.SlowFactor - 1))
	}
	return p + fp.SlowDelay
}

// paySlow stalls the calling goroutine for an injected straggler
// penalty. Millisecond-scale penalties sleep instead of spinning: a
// straggling real device leaves the host CPU idle, and chaos tests
// inject stalls far above busy-wait scale.
func (d *Device) paySlow(p time.Duration) {
	if p <= 0 {
		return
	}
	d.injectedSlowdowns.Add(1)
	if p >= time.Millisecond {
		time.Sleep(p)
		return
	}
	spinWait(p)
}

// check decides whether operation n of the given kind fails under the
// plan.
func (fp *FaultPlan) check(kind FaultKind, n int64, dev string) error {
	for _, s := range fp.FailOps {
		if s == n {
			return fmt.Errorf("%w: scripted failure of %s op %d on %s",
				ErrInjectedFault, kind, n, dev)
		}
	}
	var p float64
	switch kind {
	case opCopy:
		p = fp.CopyFailProb
	case opLaunch:
		p = fp.LaunchFailProb
	case opAlloc:
		p = fp.AllocFailProb
	}
	if p > 0 && unitUniform(fp.Seed, n, int64(kind)) < p {
		return fmt.Errorf("%w: %s op %d on %s", ErrInjectedFault, kind, n, dev)
	}
	return nil
}

// unitUniform hashes (seed, n, kind) to a uniform float64 in [0,1) with
// a splitmix64 finalizer — deterministic, allocation-free, and
// independent across operations.
func unitUniform(seed, n, kind int64) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9 + uint64(kind) + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// faultState is the per-device fault-injection state embedded in Device.
type faultState struct {
	faults            atomic.Pointer[FaultPlan]
	faultOps          atomic.Int64 // sequence numbers for faultable operations
	injectedFaults    atomic.Int64
	injectedSlowdowns atomic.Int64
	dead              atomic.Bool
}
