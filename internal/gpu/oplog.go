package gpu

import (
	"sync"
	"time"
)

// Device-level operation telemetry: per-op records (kind, bytes,
// enqueue→start wait, start→done service), copy/compute overlap
// accounting, and SM-worker busy time. This is the measurement layer
// behind the paper's workflow-optimization claims (§3.3.2): stream
// double-buffering is supposed to hide H2D/D2H copies behind kernel
// time, and the overlap fraction computed here makes that directly
// observable instead of inferred from end-to-end throughput.
//
// The aggregate accounting (overlap intervals, busy time) is always on:
// it costs one short mutex acquisition per device operation, and device
// operations are per batch, not per query. The per-op record ring is
// sized by Config.OpLogSize and disabled at 0 (the default for bare
// gpu.New; the tagmatch facade enables it alongside the obs layer) so
// timeline export is opt-in.

// OpKind classifies a recorded device operation.
type OpKind uint8

const (
	// OpH2D is a host-to-device copy.
	OpH2D OpKind = iota
	// OpD2H is a device-to-host copy.
	OpD2H
	// OpKernel is a kernel launch (grid dispatch to completion).
	OpKernel
)

func (k OpKind) String() string {
	switch k {
	case OpH2D:
		return "h2d"
	case OpD2H:
		return "d2h"
	default:
		return "kernel"
	}
}

// MarshalJSON renders the kind as its stable string name.
func (k OpKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// OpRecord is one completed device operation. For operations issued
// through a Stream, Enqueue is the time the operation entered the
// stream's FIFO and Start-Enqueue is its queue wait; for synchronous
// host calls Enqueue equals Start and the wait is zero.
type OpRecord struct {
	Device  string    `json:"device"`
	Stream  int       `json:"stream"` // -1 for direct (non-stream) operations
	Kind    OpKind    `json:"op"`
	Bytes   int64     `json:"bytes,omitempty"`  // copies: payload size
	Blocks  int       `json:"blocks,omitempty"` // kernels: grid size
	Enqueue time.Time `json:"enqueue"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`

	// Tag is the issuer-provided attribution handle passed to the
	// enqueue call (the engine tags each op with its stream slot so a
	// pipelined stream's interleaved batches stay distinguishable). It
	// is delivered to the OnOp observer and never serialized.
	Tag any `json:"-"`
}

// KindName returns the operation kind as a stable string ("h2d", "d2h",
// "kernel") for labels and JSON.
func (r OpRecord) KindName() string { return r.Kind.String() }

// Wait returns the enqueue→start queue wait.
func (r OpRecord) Wait() time.Duration { return r.Start.Sub(r.Enqueue) }

// Service returns the start→done service time.
func (r OpRecord) Service() time.Duration { return r.End.Sub(r.Start) }

// opSite carries the issuing context of a device operation down into
// the buffer/launch internals: the stream id (or -1), the stream
// enqueue timestamp (zero for synchronous calls), the stream's op
// observer, invoked with the completed record, and the issuer's
// attribution tag.
type opSite struct {
	stream  int
	enqueue time.Time
	observe func(OpRecord)
	tag     any
}

// directSite is the opSite of synchronous host calls.
var directSite = opSite{stream: -1}

// opRecorder is the per-device telemetry state. One mutex guards both
// the overlap state machine and the record ring; transitions happen at
// op boundaries only, far off the per-set compute path.
type opRecorder struct {
	mu sync.Mutex

	// Overlap accounting: wall-clock is divided into intervals at op
	// start/end transitions, and each interval is charged to the
	// categories active during it.
	lastT         time.Time
	activeCopies  int
	activeKernels int
	kernelNs      int64 // wall time with ≥1 kernel active
	copyNs        int64 // wall time with ≥1 copy active
	overlapNs     int64 // wall time with a kernel AND a copy active

	// Record ring (opLog most recent ops, oldest first on read).
	ring   []OpRecord
	next   int
	filled bool
}

// accumulate charges the interval since the previous transition to the
// currently active categories. Callers hold mu.
func (o *opRecorder) accumulate(now time.Time) {
	if !o.lastT.IsZero() {
		dt := now.Sub(o.lastT).Nanoseconds()
		if dt > 0 {
			if o.activeKernels > 0 {
				o.kernelNs += dt
				if o.activeCopies > 0 {
					o.overlapNs += dt
				}
			}
			if o.activeCopies > 0 {
				o.copyNs += dt
			}
		}
	}
	o.lastT = now
}

// opBegin marks an operation active and returns its start timestamp.
func (d *Device) opBegin(kind OpKind) time.Time {
	now := time.Now()
	o := &d.rec
	o.mu.Lock()
	o.accumulate(now)
	if kind == OpKernel {
		o.activeKernels++
	} else {
		o.activeCopies++
	}
	o.mu.Unlock()
	return now
}

// opDone marks the operation finished, appends its record to the ring,
// and invokes the site observer (outside the recorder lock).
func (d *Device) opDone(kind OpKind, site opSite, bytes int64, blocks int, start time.Time) {
	now := time.Now()
	enq := site.enqueue
	if enq.IsZero() {
		enq = start
	}
	rec := OpRecord{
		Device:  d.name,
		Stream:  site.stream,
		Kind:    kind,
		Bytes:   bytes,
		Blocks:  blocks,
		Enqueue: enq,
		Start:   start,
		End:     now,
		Tag:     site.tag,
	}
	o := &d.rec
	o.mu.Lock()
	o.accumulate(now)
	if kind == OpKernel {
		o.activeKernels--
	} else {
		o.activeCopies--
	}
	if len(o.ring) > 0 {
		o.ring[o.next] = rec
		o.next++
		if o.next == len(o.ring) {
			o.next = 0
			o.filled = true
		}
	}
	o.mu.Unlock()
	if site.observe != nil {
		site.observe(rec)
	}
}

// OpRecords returns a copy of the device's retained operation records,
// oldest first. Empty unless Config.OpLogSize is set.
func (d *Device) OpRecords() []OpRecord {
	o := &d.rec
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []OpRecord
	if o.filled {
		out = append(out, o.ring[o.next:]...)
	}
	out = append(out, o.ring[:o.next]...)
	return out
}

// OverlapStats is the copy/compute concurrency accounting of a device.
type OverlapStats struct {
	// KernelNs is the wall time during which at least one kernel was
	// executing.
	KernelNs int64 `json:"kernel_ns"`
	// CopyNs is the wall time during which at least one host<->device
	// copy was in flight.
	CopyNs int64 `json:"copy_ns"`
	// OverlapNs is the wall time during which a kernel and a copy were
	// in flight simultaneously — the §3.3.2 stream-overlap effect.
	OverlapNs int64 `json:"overlap_ns"`
}

// OverlapStats returns the overlap accounting up to now.
func (d *Device) OverlapStats() OverlapStats {
	o := &d.rec
	o.mu.Lock()
	o.accumulate(time.Now())
	s := OverlapStats{KernelNs: o.kernelNs, CopyNs: o.copyNs, OverlapNs: o.overlapNs}
	o.mu.Unlock()
	return s
}

// OverlapFraction returns the fraction of kernel-active wall time during
// which a host<->device copy was simultaneously in flight: 1.0 means
// every kernel nanosecond had copy traffic hidden behind it, 0 means
// copies and kernels fully serialized. Returns 0 before the first
// kernel.
func (d *Device) OverlapFraction() float64 {
	s := d.OverlapStats()
	if s.KernelNs == 0 {
		return 0
	}
	return float64(s.OverlapNs) / float64(s.KernelNs)
}

// SMBusyTime returns the cumulative wall time the device's SM workers
// spent executing thread blocks.
func (d *Device) SMBusyTime() time.Duration {
	return time.Duration(d.smBusyNs.Load())
}

// Utilization returns the fraction of total SM-worker capacity consumed
// since the device was created: SM busy time divided by workers ×
// elapsed wall time. An idle device decays toward 0.
func (d *Device) Utilization() float64 {
	elapsed := time.Since(d.createdAt).Nanoseconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(d.smBusyNs.Load()) / float64(elapsed*int64(d.cfg.Workers))
}
