// Package gpu implements a software simulation of a CUDA-like GPU device.
//
// TagMatch (EuroSys '17) runs its subset-match stage on NVIDIA GPUs via
// CUDA. This reproduction has no GPU hardware, so this package provides
// the closest synthetic equivalent that exercises the same code paths:
//
//   - SPMD kernels launched over a grid of thread blocks; each block runs
//     its threads in barrier-separated phases and has block-local shared
//     state (the analogue of CUDA shared memory).
//   - Explicit device memory with an allocation budget, and host<->device
//     copies whose cost is modeled as a fixed per-call overhead plus a
//     per-byte bus cost (the PCI-Express bottleneck of §3.3.1).
//   - Streams: FIFO queues of copy/launch/callback operations. Operations
//     within a stream execute in order; operations in different streams
//     overlap, exactly the property TagMatch's workflow optimizations
//     (§3.3.2) depend on.
//   - Atomic operations on device memory (with an operation counter, since
//     atomic pressure is what sank the GPU-only design of §4.5).
//   - Nested ("dynamic parallelism") kernel launches from inside a kernel.
//
// Kernel "execution" is real work performed by a pool of worker goroutines
// (the simulated streaming multiprocessors), so relative throughput
// effects — batching amortizing per-call overhead, streams overlapping
// copy and compute, small batches wasting whole kernel invocations — all
// emerge from the same mechanisms as on real hardware.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel describes the simulated fixed costs of driver calls and the
// simulated PCI-Express bus. Costs are paid by busy-waiting in the calling
// goroutine (driver overhead is CPU-side in reality too).
type CostModel struct {
	// LaunchOverhead is the fixed cost of a kernel launch.
	LaunchOverhead time.Duration
	// CopyOverhead is the fixed cost of a host<->device copy call.
	CopyOverhead time.Duration
	// CopyBytesPerSec is the simulated bus bandwidth; 0 disables the
	// per-byte cost.
	CopyBytesPerSec float64
}

// ZeroCost is a cost model with no simulated overheads, useful in unit
// tests that exercise correctness only.
var ZeroCost = CostModel{}

// DefaultCost approximates a PCIe 3.0 x16 link and CUDA driver call
// overheads, scaled down to keep simulated runs fast while preserving the
// ratio between per-call and per-byte costs. The fixed costs are kept
// small because they are paid by busy-waiting on the host CPU: on
// low-core-count hosts a larger charge would tax the hybrid pipeline for
// work that real hardware performs on independent silicon.
var DefaultCost = CostModel{
	LaunchOverhead:  2 * time.Microsecond,
	CopyOverhead:    1500 * time.Nanosecond,
	CopyBytesPerSec: 12e9,
}

func (c CostModel) copyCost(bytes int) time.Duration {
	d := c.CopyOverhead
	if c.CopyBytesPerSec > 0 {
		d += time.Duration(float64(bytes) / c.CopyBytesPerSec * float64(time.Second))
	}
	return d
}

// spinWait burns CPU until d has elapsed. Short simulated costs (a few
// microseconds) are far below time.Sleep granularity, and the real costs
// being modeled (driver calls) also occupy the CPU.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Config describes a simulated device.
type Config struct {
	// Name identifies the device in errors and stats.
	Name string
	// Workers is the number of simulated streaming multiprocessors, i.e.
	// thread blocks executing truly in parallel. Defaults to 4.
	Workers int
	// GlobalMemBytes is the device memory budget. Alloc fails beyond it.
	// Defaults to 12 GiB (a TITAN X, as in the paper's testbed).
	GlobalMemBytes int64
	// MaxStreams bounds the number of concurrently open streams; the
	// paper's platform allowed 10 per GPU. Defaults to 10.
	MaxStreams int
	// Cost is the simulated cost model. The zero value disables all
	// simulated overheads.
	Cost CostModel
	// OpLogSize is the number of recent operation records (copies,
	// kernel launches, with enqueue/start/done timestamps) the device
	// retains for timeline export; 0 disables the ring. The aggregate
	// overlap and busy-time accounting runs regardless.
	OpLogSize int
}

// Stats is a snapshot of device activity counters.
type Stats struct {
	KernelLaunches    int64
	NestedLaunches    int64
	BlocksExecuted    int64
	AtomicOps         int64
	BytesHtoD         int64
	BytesDtoH         int64
	CopiesHtoD        int64
	CopiesDtoH        int64
	MemInUse          int64
	MemHighWater      int64
	InjectedFaults    int64
	InjectedSlowdowns int64

	// SMBusyNs is the cumulative wall time SM workers spent executing
	// thread blocks (see Device.Utilization for the derived fraction).
	SMBusyNs int64
	// KernelActiveNs/CopyActiveNs/OverlapNs are the copy/compute
	// concurrency accounting of Device.OverlapStats.
	KernelActiveNs int64
	CopyActiveNs   int64
	OverlapNs      int64
}

// Device is a simulated GPU.
type Device struct {
	name    string
	cfg     Config
	blockQ  chan blockTask
	wg      sync.WaitGroup // SM workers
	closed  atomic.Bool
	streams struct {
		sync.Mutex
		open int
	}

	// faultState carries the fault-injection plan, the operation
	// sequence counter it draws from, and the device-death flag.
	faultState

	// rec is the op-record ring and copy/compute overlap accounting;
	// see oplog.go.
	rec       opRecorder
	createdAt time.Time
	smBusyNs  atomic.Int64
	streamSeq atomic.Int64

	memInUse     atomic.Int64
	memHighWater atomic.Int64

	kernelLaunches atomic.Int64
	nestedLaunches atomic.Int64
	blocksExecuted atomic.Int64
	atomicOps      atomic.Int64
	bytesHtoD      atomic.Int64
	bytesDtoH      atomic.Int64
	copiesHtoD     atomic.Int64
	copiesDtoH     atomic.Int64
}

type blockTask struct {
	kernel   KernelFunc
	blockIdx int
	grid     Grid
	done     *sync.WaitGroup
}

// ErrDeviceClosed is returned by operations on a closed device.
var ErrDeviceClosed = errors.New("gpu: device closed")

// ErrOutOfMemory is returned when an allocation exceeds the device budget.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// ErrTooManyStreams is returned when opening a stream beyond MaxStreams.
var ErrTooManyStreams = errors.New("gpu: too many streams")

// New creates a simulated device and starts its SM worker pool.
func New(cfg Config) *Device {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.GlobalMemBytes <= 0 {
		cfg.GlobalMemBytes = 12 << 30
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 10
	}
	if cfg.Name == "" {
		cfg.Name = "sim-gpu"
	}
	d := &Device{
		name:      cfg.Name,
		cfg:       cfg,
		blockQ:    make(chan blockTask, 4*cfg.Workers),
		createdAt: time.Now(),
	}
	if cfg.OpLogSize > 0 {
		d.rec.ring = make([]OpRecord, cfg.OpLogSize)
	}
	d.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go d.smWorker()
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Config returns the configuration the device was created with (with
// defaults applied).
func (d *Device) Config() Config { return d.cfg }

// Close shuts down the worker pool. Outstanding streams must be closed
// first; launching after Close panics.
func (d *Device) Close() {
	if d.closed.CompareAndSwap(false, true) {
		close(d.blockQ)
		d.wg.Wait()
	}
}

func (d *Device) smWorker() {
	defer d.wg.Done()
	for task := range d.blockQ {
		t0 := time.Now()
		d.runBlock(task)
		d.smBusyNs.Add(time.Since(t0).Nanoseconds())
	}
}

func (d *Device) runBlock(task blockTask) {
	ctx := &BlockCtx{
		dev:      d,
		BlockIdx: task.blockIdx,
		Grid:     task.grid,
	}
	task.kernel(ctx)
	d.blocksExecuted.Add(1)
	task.done.Done()
}

// Grid describes a kernel launch geometry: Blocks thread blocks of
// BlockDim threads each (1-D, as used by TagMatch).
type Grid struct {
	Blocks   int
	BlockDim int
}

// Threads returns the total number of threads in the grid.
func (g Grid) Threads() int { return g.Blocks * g.BlockDim }

// KernelFunc is the body of a kernel, invoked once per thread block.
// Within the body, run per-thread phases with BlockCtx.Threads; successive
// Threads calls have barrier semantics (all threads finish phase n before
// any starts phase n+1), which is how CUDA __syncthreads() is expressed in
// this simulation.
type KernelFunc func(b *BlockCtx)

// BlockCtx is the execution context of one thread block.
type BlockCtx struct {
	dev      *Device
	BlockIdx int
	Grid     Grid
}

// Device returns the device executing this block.
func (b *BlockCtx) Device() *Device { return b.dev }

// Threads runs f once per thread in the block, passing the block-local
// thread id [0, BlockDim). A call to Threads is a barrier-delimited phase.
func (b *BlockCtx) Threads(f func(tid int)) {
	for tid := 0; tid < b.Grid.BlockDim; tid++ {
		f(tid)
	}
}

// GlobalID returns the grid-global thread id for a block-local tid,
// i.e. BlockIdx*BlockDim + tid — the paper's thread_id variable.
func (b *BlockCtx) GlobalID(tid int) int {
	return b.BlockIdx*b.Grid.BlockDim + tid
}

// FirstGlobalID returns the global id of the block's first thread
// (the paper's thread_block_first_id).
func (b *BlockCtx) FirstGlobalID() int { return b.BlockIdx * b.Grid.BlockDim }

// AtomicAddU32 atomically adds delta to *p and returns the OLD value, the
// semantics of CUDA's atomicAdd. The device counts atomic operations
// because atomic pressure is a first-order effect in the GPU-only design
// study (§4.5).
func (b *BlockCtx) AtomicAddU32(p *uint32, delta uint32) uint32 {
	b.dev.atomicOps.Add(1)
	return atomic.AddUint32(p, delta) - delta
}

// AtomicAddU64 atomically adds delta to *p and returns the old value.
func (b *BlockCtx) AtomicAddU64(p *uint64, delta uint64) uint64 {
	b.dev.atomicOps.Add(1)
	return atomic.AddUint64(p, delta) - delta
}

// LaunchNested launches a kernel from inside a running kernel ("dynamic
// parallelism", §4.5) and waits for it. The nested grid's blocks execute
// inline in the calling worker: a real nested launch competes with the
// parent grid for SM resources, which inline execution conservatively
// models while avoiding pool deadlock.
func (b *BlockCtx) LaunchNested(grid Grid, kernel KernelFunc) {
	d := b.dev
	d.nestedLaunches.Add(1)
	spinWait(d.cfg.Cost.LaunchOverhead)
	var done sync.WaitGroup
	done.Add(grid.Blocks)
	for blk := 0; blk < grid.Blocks; blk++ {
		d.runBlock(blockTask{kernel: kernel, blockIdx: blk, grid: grid, done: &done})
	}
	done.Wait()
}

// launch enqueues all blocks of a grid and waits for their completion.
// It is called from a stream executor goroutine. It returns
// ErrDeviceClosed on a closed or dead device — rather than panicking, so
// stream error propagation can route the failure to the dispatching
// engine — and injected fault errors under an active FaultPlan. site
// identifies the issuing stream for the op-record telemetry.
func (d *Device) launch(grid Grid, kernel KernelFunc, site opSite) error {
	return d.launchZeroed(grid, kernel, nil, 0, site)
}

// launchZeroed is launch with an optional fused device-side reset: when
// zero is non-nil, its first zeroWords words are cleared after the
// fault/closed checks and before the blocks dispatch, inside the same
// recorded operation. This is how the per-batch result-header reset is
// folded into the kernel launch instead of costing a separate H2D copy.
// The previous launch on this stream has fully completed (the executor
// is serial), so plain-looking stores suffice; they are issued as
// atomic stores because the dispatched blocks update the same words
// with atomics.
func (d *Device) launchZeroed(grid Grid, kernel KernelFunc, zero *Buffer[uint32], zeroWords int, site opSite) error {
	slow, err := d.opCheck(opLaunch, d.cfg.Cost.LaunchOverhead)
	if err != nil {
		return err
	}
	if d.closed.Load() {
		return ErrDeviceClosed
	}
	if zero != nil {
		if zero.freed {
			return fmt.Errorf("gpu: fused reset on freed buffer")
		}
		if zeroWords < 0 || zeroWords > len(zero.data) {
			return fmt.Errorf("gpu: fused reset out of range: %d > len %d",
				zeroWords, len(zero.data))
		}
		for i := 0; i < zeroWords; i++ {
			atomic.StoreUint32(&zero.data[i], 0)
		}
	}
	d.kernelLaunches.Add(1)
	start := d.opBegin(OpKernel)
	spinWait(d.cfg.Cost.LaunchOverhead)
	d.paySlow(slow)
	if grid.Blocks <= 0 || grid.BlockDim <= 0 {
		d.opDone(OpKernel, site, 0, 0, start)
		return nil
	}
	var done sync.WaitGroup
	done.Add(grid.Blocks)
	for blk := 0; blk < grid.Blocks; blk++ {
		d.blockQ <- blockTask{kernel: kernel, blockIdx: blk, grid: grid, done: &done}
	}
	done.Wait()
	d.opDone(OpKernel, site, 0, grid.Blocks, start)
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	ov := d.OverlapStats()
	return Stats{
		KernelLaunches:    d.kernelLaunches.Load(),
		NestedLaunches:    d.nestedLaunches.Load(),
		BlocksExecuted:    d.blocksExecuted.Load(),
		AtomicOps:         d.atomicOps.Load(),
		BytesHtoD:         d.bytesHtoD.Load(),
		BytesDtoH:         d.bytesDtoH.Load(),
		CopiesHtoD:        d.copiesHtoD.Load(),
		CopiesDtoH:        d.copiesDtoH.Load(),
		MemInUse:          d.memInUse.Load(),
		MemHighWater:      d.memHighWater.Load(),
		InjectedFaults:    d.injectedFaults.Load(),
		InjectedSlowdowns: d.injectedSlowdowns.Load(),
		SMBusyNs:          d.smBusyNs.Load(),
		KernelActiveNs:    ov.KernelNs,
		CopyActiveNs:      ov.CopyNs,
		OverlapNs:         ov.OverlapNs,
	}
}

// MemInUse returns the current simulated device memory consumption.
func (d *Device) MemInUse() int64 { return d.memInUse.Load() }

// OpenStreams returns the number of streams currently open on the
// device (of the MaxStreams budget).
func (d *Device) OpenStreams() int {
	d.streams.Lock()
	defer d.streams.Unlock()
	return d.streams.open
}

// reserve accounts a device memory allocation against the budget.
func (d *Device) reserve(bytes int64) error {
	for {
		cur := d.memInUse.Load()
		if cur+bytes > d.cfg.GlobalMemBytes {
			return fmt.Errorf("%w: in use %d + requested %d > budget %d on %s",
				ErrOutOfMemory, cur, bytes, d.cfg.GlobalMemBytes, d.name)
		}
		if d.memInUse.CompareAndSwap(cur, cur+bytes) {
			break
		}
	}
	for {
		hw := d.memHighWater.Load()
		cur := d.memInUse.Load()
		if cur <= hw || d.memHighWater.CompareAndSwap(hw, cur) {
			break
		}
	}
	return nil
}

func (d *Device) release(bytes int64) {
	d.memInUse.Add(-bytes)
}
