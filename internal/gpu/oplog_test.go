package gpu

import (
	"testing"
	"time"
)

// TestOpRecords exercises the per-op telemetry ring: stream-issued and
// direct operations must both be recorded, with kinds, sizes, stream
// ids, and wait/service phases consistent with how they were issued.
func TestOpRecords(t *testing.T) {
	d := New(Config{Name: "oplog", OpLogSize: 16})
	defer d.Close()

	buf := MustAlloc[uint32](d, 64)
	defer buf.Free()

	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var observed []OpRecord
	s.OnOp(func(r OpRecord) { observed = append(observed, r) })

	src := make([]uint32, 64)
	CopyToDeviceAsync(s, buf, 0, src)
	s.LaunchAsync(Grid{Blocks: 4, BlockDim: 8}, func(b *BlockCtx) {})
	dst := make([]uint32, 64)
	CopyFromDeviceAsync(s, buf, dst, 0)
	s.Synchronize()
	s.Close()

	// One direct (non-stream) copy on top.
	if err := buf.CopyFromDevice(dst, 0); err != nil {
		t.Fatal(err)
	}

	recs := d.OpRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantKinds := []OpKind{OpH2D, OpKernel, OpD2H, OpD2H}
	for i, r := range recs {
		if r.Kind != wantKinds[i] {
			t.Errorf("record %d: kind %s, want %s", i, r.Kind, wantKinds[i])
		}
		if r.Device != "oplog" {
			t.Errorf("record %d: device %q", i, r.Device)
		}
		if r.Wait() < 0 || r.Service() < 0 {
			t.Errorf("record %d: negative wait/service (%v, %v)", i, r.Wait(), r.Service())
		}
	}
	for _, r := range recs[:3] {
		if r.Stream != s.ID() {
			t.Errorf("stream op recorded with stream %d, want %d", r.Stream, s.ID())
		}
	}
	if recs[0].Bytes != 256 || recs[2].Bytes != 256 {
		t.Errorf("copy bytes = %d/%d, want 256", recs[0].Bytes, recs[2].Bytes)
	}
	if recs[1].Blocks != 4 {
		t.Errorf("kernel blocks = %d, want 4", recs[1].Blocks)
	}
	direct := recs[3]
	if direct.Stream != -1 {
		t.Errorf("direct copy stream = %d, want -1", direct.Stream)
	}
	if direct.Wait() != 0 {
		t.Errorf("direct copy wait = %v, want 0", direct.Wait())
	}
	if len(observed) != 3 {
		t.Fatalf("observer saw %d records, want 3 (stream ops only)", len(observed))
	}
	for i, r := range observed {
		if r.Kind != wantKinds[i] {
			t.Errorf("observed %d: kind %s, want %s", i, r.Kind, wantKinds[i])
		}
	}
}

// TestOpRecordsRingWraparound checks the fixed-size ring retains the
// most recent records, oldest first.
func TestOpRecordsRingWraparound(t *testing.T) {
	d := New(Config{Name: "wrap", OpLogSize: 4})
	defer d.Close()
	buf := MustAlloc[byte](d, 16)
	defer buf.Free()

	for i := 0; i < 10; i++ {
		if err := buf.CopyToDevice(0, make([]byte, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	recs := d.OpRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := int64(7 + i); r.Bytes != want {
			t.Errorf("record %d: bytes %d, want %d (most recent 4, oldest first)", i, r.Bytes, want)
		}
	}
}

// TestOpLogDisabled pins that OpLogSize=0 (the default) retains no
// records while the aggregate accounting still runs.
func TestOpLogDisabled(t *testing.T) {
	d := New(Config{Name: "off"})
	defer d.Close()
	buf := MustAlloc[byte](d, 8)
	defer buf.Free()
	if err := buf.CopyToDevice(0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if recs := d.OpRecords(); len(recs) != 0 {
		t.Fatalf("got %d records with OpLogSize=0, want 0", len(recs))
	}
	if s := d.OverlapStats(); s.CopyNs <= 0 {
		t.Errorf("copy-active time = %d, want > 0", s.CopyNs)
	}
}

// TestOverlapAccounting holds a kernel in flight while a copy runs and
// checks the overlap interval accounting: the copy's wall time must be
// charged to OverlapNs, and overlap can never exceed kernel-active or
// copy-active time. The kernel blocks on a channel rather than relying
// on scheduler concurrency, so the test is deterministic on one CPU.
func TestOverlapAccounting(t *testing.T) {
	cost := CostModel{CopyOverhead: 200 * time.Microsecond}
	d := New(Config{Name: "ov", Cost: cost})
	defer d.Close()
	buf := MustAlloc[byte](d, 1024)
	defer buf.Free()

	s1, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	s1.LaunchAsync(Grid{Blocks: 1, BlockDim: 1}, func(b *BlockCtx) {
		close(started)
		<-release
	})
	<-started
	// Kernel provably in flight: this copy's entire service time is
	// kernel-overlapped.
	if err := buf.CopyToDevice(0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	close(release)
	s1.Synchronize()
	s1.Close()

	st := d.OverlapStats()
	if st.KernelNs <= 0 || st.CopyNs <= 0 {
		t.Fatalf("kernel/copy active time = %d/%d, want both > 0", st.KernelNs, st.CopyNs)
	}
	if st.OverlapNs <= 0 {
		t.Errorf("overlap = 0 despite concurrent streams (kernel %d ns, copy %d ns)", st.KernelNs, st.CopyNs)
	}
	if st.OverlapNs > st.KernelNs || st.OverlapNs > st.CopyNs {
		t.Errorf("overlap %d exceeds kernel %d or copy %d", st.OverlapNs, st.KernelNs, st.CopyNs)
	}
	if f := d.OverlapFraction(); f < 0 || f > 1 {
		t.Errorf("overlap fraction %f out of [0,1]", f)
	}
	if d.SMBusyTime() <= 0 {
		t.Error("SM busy time = 0 after kernel execution")
	}
	if u := d.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %f out of (0,1]", u)
	}
	stats := d.Stats()
	if stats.SMBusyNs <= 0 || stats.KernelActiveNs <= 0 || stats.OverlapNs != st.OverlapNs {
		t.Errorf("Stats overlap fields not populated: %+v", stats)
	}
}
