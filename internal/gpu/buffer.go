package gpu

import (
	"fmt"
	"unsafe"
)

// Buffer is a typed region of simulated device memory.
//
// Kernels access the backing slice via Data; host code must go through
// CopyToDevice / CopyFromDevice (directly, or as asynchronous stream
// operations) so that bus costs and transfer statistics are accounted, the
// way real code must go through cudaMemcpy.
type Buffer[T any] struct {
	dev   *Device
	data  []T
	bytes int64
	freed bool
}

// Alloc allocates a device buffer of n elements of type T, charging the
// device memory budget.
func Alloc[T any](d *Device, n int) (*Buffer[T], error) {
	// Allocations ignore the straggler penalty: stragglers model the
	// data path (bus, SMs), and the index build that allocates is not
	// on the per-query tail.
	if _, err := d.opCheck(opAlloc, 0); err != nil {
		return nil, err
	}
	var probe T
	elem := int64(unsafe.Sizeof(probe))
	bytes := elem * int64(n)
	if err := d.reserve(bytes); err != nil {
		return nil, err
	}
	return &Buffer[T]{dev: d, data: make([]T, n), bytes: bytes}, nil
}

// MustAlloc is Alloc that panics on allocation failure; for tests and
// examples with known-small footprints.
func MustAlloc[T any](d *Device, n int) *Buffer[T] {
	b, err := Alloc[T](d, n)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer's device memory. Double frees are no-ops.
func (b *Buffer[T]) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.release(b.bytes)
	b.data = nil
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Bytes returns the allocation size in bytes.
func (b *Buffer[T]) Bytes() int64 { return b.bytes }

// Data exposes the device-resident slice for kernel code. Host code
// accessing Data directly bypasses the simulated bus — the equivalent of
// dereferencing a device pointer on the host, which real CUDA programs
// cannot do; keep such access inside kernels.
func (b *Buffer[T]) Data() []T { return b.data }

// elemBytes returns the size of one element.
func (b *Buffer[T]) elemBytes() int64 {
	var probe T
	return int64(unsafe.Sizeof(probe))
}

// CopyToDevice synchronously copies src into the buffer starting at
// element offset dstOff, paying the simulated bus cost.
func (b *Buffer[T]) CopyToDevice(dstOff int, src []T) error {
	return b.copyToDevice(dstOff, src, directSite)
}

// copyToDevice is CopyToDevice with the issuing site threaded through
// for op-record telemetry (stream copies pass their stream id and
// enqueue timestamp; direct host copies pass directSite).
func (b *Buffer[T]) copyToDevice(dstOff int, src []T, site opSite) error {
	n := int(b.elemBytes()) * len(src)
	slow, err := b.dev.opCheck(opCopy, b.dev.cfg.Cost.copyCost(n))
	if err != nil {
		return err
	}
	if b.freed {
		return fmt.Errorf("gpu: copy to freed buffer")
	}
	if dstOff < 0 || dstOff+len(src) > len(b.data) {
		return fmt.Errorf("gpu: H2D copy out of range: off %d + %d > len %d",
			dstOff, len(src), len(b.data))
	}
	start := b.dev.opBegin(OpH2D)
	spinWait(b.dev.cfg.Cost.copyCost(n))
	b.dev.paySlow(slow)
	copy(b.data[dstOff:], src)
	b.dev.opDone(OpH2D, site, int64(n), 0, start)
	b.dev.bytesHtoD.Add(int64(n))
	b.dev.copiesHtoD.Add(1)
	return nil
}

// CopyFromDevice synchronously copies elements [srcOff, srcOff+len(dst))
// of the buffer into dst, paying the simulated bus cost.
func (b *Buffer[T]) CopyFromDevice(dst []T, srcOff int) error {
	return b.copyFromDevice(dst, srcOff, directSite)
}

// copyFromDevice is CopyFromDevice with the issuing site threaded
// through for op-record telemetry.
func (b *Buffer[T]) copyFromDevice(dst []T, srcOff int, site opSite) error {
	n := int(b.elemBytes()) * len(dst)
	slow, err := b.dev.opCheck(opCopy, b.dev.cfg.Cost.copyCost(n))
	if err != nil {
		return err
	}
	if b.freed {
		return fmt.Errorf("gpu: copy from freed buffer")
	}
	if srcOff < 0 || srcOff+len(dst) > len(b.data) {
		return fmt.Errorf("gpu: D2H copy out of range: off %d + %d > len %d",
			srcOff, len(dst), len(b.data))
	}
	start := b.dev.opBegin(OpD2H)
	spinWait(b.dev.cfg.Cost.copyCost(n))
	b.dev.paySlow(slow)
	copy(dst, b.data[srcOff:])
	b.dev.opDone(OpD2H, site, int64(n), 0, start)
	b.dev.bytesDtoH.Add(int64(n))
	b.dev.copiesDtoH.Add(1)
	return nil
}
