package gpu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d := New(Config{Name: "test", Workers: 4, GlobalMemBytes: 1 << 20, MaxStreams: 4})
	t.Cleanup(d.Close)
	return d
}

func TestLaunchRunsEveryThreadOnce(t *testing.T) {
	d := newTestDevice(t)
	grid := Grid{Blocks: 7, BlockDim: 33}
	counts := make([]uint32, grid.Threads())
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.LaunchAsync(grid, func(b *BlockCtx) {
		b.Threads(func(tid int) {
			atomic.AddUint32(&counts[b.GlobalID(tid)], 1)
		})
	})
	s.Synchronize()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", i, c)
		}
	}
	if st := d.Stats(); st.KernelLaunches != 1 || st.BlocksExecuted != 7 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestThreadsPhasesAreBarriers(t *testing.T) {
	d := newTestDevice(t)
	grid := Grid{Blocks: 3, BlockDim: 16}
	// Phase 1 writes per-thread values; phase 2 reads a neighbour's value.
	// If phases were not barrier-separated this would read zeros.
	s, _ := d.OpenStream()
	defer s.Close()
	bad := atomic.Int32{}
	s.LaunchAsync(grid, func(b *BlockCtx) {
		vals := make([]int, b.Grid.BlockDim) // block "shared memory"
		b.Threads(func(tid int) { vals[tid] = tid + 1 })
		b.Threads(func(tid int) {
			neighbour := (tid + 1) % b.Grid.BlockDim
			if vals[neighbour] != neighbour+1 {
				bad.Add(1)
			}
		})
	})
	s.Synchronize()
	if bad.Load() != 0 {
		t.Fatalf("%d threads observed pre-barrier values", bad.Load())
	}
}

func TestStreamFIFOOrdering(t *testing.T) {
	d := newTestDevice(t)
	s, _ := d.OpenStream()
	defer s.Close()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		s.Callback(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Synchronize()
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order execution: %v", order)
		}
	}
}

func TestStreamsRunConcurrently(t *testing.T) {
	d := New(Config{Workers: 4, MaxStreams: 2})
	defer d.Close()
	s1, _ := d.OpenStream()
	defer s1.Close()
	s2, _ := d.OpenStream()
	defer s2.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	// Block stream 1 on a long callback; stream 2 must still make progress.
	s1.Callback(func() { close(started); <-release })
	<-started
	doneCh := make(chan struct{})
	s2.Callback(func() { close(doneCh) })
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("stream 2 blocked behind stream 1")
	}
	close(release)
	s1.Synchronize()
}

func TestMaxStreams(t *testing.T) {
	d := New(Config{Workers: 1, MaxStreams: 2})
	defer d.Close()
	s1, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.OpenStream(); err == nil {
		t.Fatal("third stream should fail with MaxStreams=2")
	}
	s1.Close()
	s3, err := d.OpenStream()
	if err != nil {
		t.Fatalf("stream slot not released on close: %v", err)
	}
	s3.Close()
	s2.Close()
}

func TestAllocBudget(t *testing.T) {
	d := New(Config{Workers: 1, GlobalMemBytes: 1024})
	defer d.Close()
	b1, err := Alloc[uint64](d, 64) // 512 bytes
	if err != nil {
		t.Fatal(err)
	}
	if b1.Bytes() != 512 {
		t.Fatalf("Bytes = %d", b1.Bytes())
	}
	if _, err := Alloc[uint64](d, 128); err == nil { // 1024 more: over budget
		t.Fatal("allocation over budget should fail")
	}
	if d.MemInUse() != 512 {
		t.Fatalf("MemInUse = %d after failed alloc", d.MemInUse())
	}
	b1.Free()
	if d.MemInUse() != 0 {
		t.Fatalf("MemInUse = %d after free", d.MemInUse())
	}
	b1.Free() // double free is a no-op
	if d.MemInUse() != 0 {
		t.Fatal("double free changed accounting")
	}
	if st := d.Stats(); st.MemHighWater != 512 {
		t.Fatalf("high water = %d", st.MemHighWater)
	}
}

func TestCopyRoundTripAndAccounting(t *testing.T) {
	d := newTestDevice(t)
	buf := MustAlloc[uint32](d, 100)
	defer buf.Free()
	src := make([]uint32, 50)
	for i := range src {
		src[i] = uint32(i * i)
	}
	if err := buf.CopyToDevice(10, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 50)
	if err := buf.CopyFromDevice(dst, 10); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	st := d.Stats()
	if st.BytesHtoD != 200 || st.BytesDtoH != 200 {
		t.Fatalf("byte accounting: %+v", st)
	}
	if st.CopiesHtoD != 1 || st.CopiesDtoH != 1 {
		t.Fatalf("copy-call accounting: %+v", st)
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	d := newTestDevice(t)
	buf := MustAlloc[byte](d, 8)
	defer buf.Free()
	if err := buf.CopyToDevice(4, make([]byte, 8)); err == nil {
		t.Fatal("out-of-range H2D should fail")
	}
	if err := buf.CopyFromDevice(make([]byte, 16), 0); err == nil {
		t.Fatal("out-of-range D2H should fail")
	}
	if err := buf.CopyToDevice(-1, nil); err == nil {
		t.Fatal("negative offset should fail")
	}
	buf.Free()
	if err := buf.CopyToDevice(0, []byte{1}); err == nil {
		t.Fatal("copy to freed buffer should fail")
	}
}

func TestAsyncPipelineOrdering(t *testing.T) {
	// The canonical TagMatch sequence: H2D copy, kernel, D2H copy — all
	// asynchronous on one stream — must observe each other's effects.
	d := newTestDevice(t)
	s, _ := d.OpenStream()
	defer s.Close()

	in := MustAlloc[uint32](d, 256)
	out := MustAlloc[uint32](d, 256)
	defer in.Free()
	defer out.Free()

	src := make([]uint32, 256)
	for i := range src {
		src[i] = uint32(i)
	}
	dst := make([]uint32, 256)

	CopyToDeviceAsync(s, in, 0, src)
	s.LaunchAsync(Grid{Blocks: 4, BlockDim: 64}, func(b *BlockCtx) {
		data, res := in.Data(), out.Data()
		b.Threads(func(tid int) {
			g := b.GlobalID(tid)
			res[g] = data[g] * 2
		})
	})
	CopyFromDeviceAsync(s, out, dst, 0)
	s.Synchronize()

	for i := range dst {
		if dst[i] != uint32(2*i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], 2*i)
		}
	}
}

func TestAtomicAddSemantics(t *testing.T) {
	d := newTestDevice(t)
	s, _ := d.OpenStream()
	defer s.Close()
	counter := MustAlloc[uint32](d, 1)
	defer counter.Free()
	slots := MustAlloc[uint32](d, 1024)
	defer slots.Free()

	grid := Grid{Blocks: 16, BlockDim: 64}
	s.LaunchAsync(grid, func(b *BlockCtx) {
		c, sl := counter.Data(), slots.Data()
		b.Threads(func(tid int) {
			old := b.AtomicAddU32(&c[0], 1)
			sl[old] = 1 // each thread must receive a unique slot
		})
	})
	s.Synchronize()

	got := make([]uint32, 1024)
	if err := counter.CopyFromDevice(got[:1], 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1024 {
		t.Fatalf("counter = %d, want 1024", got[0])
	}
	if err := slots.CopyFromDevice(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 1 {
			t.Fatalf("slot %d not claimed exactly once (=%d): atomicAdd returned duplicate indices", i, v)
		}
	}
	if st := d.Stats(); st.AtomicOps != 1024 {
		t.Fatalf("atomic op count = %d", st.AtomicOps)
	}
}

func TestNestedLaunch(t *testing.T) {
	d := newTestDevice(t)
	s, _ := d.OpenStream()
	defer s.Close()
	var total atomic.Int64
	s.LaunchAsync(Grid{Blocks: 2, BlockDim: 1}, func(b *BlockCtx) {
		b.Threads(func(tid int) {
			b.LaunchNested(Grid{Blocks: 3, BlockDim: 4}, func(nb *BlockCtx) {
				nb.Threads(func(ntid int) { total.Add(1) })
			})
		})
	})
	s.Synchronize()
	if total.Load() != 2*3*4 {
		t.Fatalf("nested threads = %d, want 24", total.Load())
	}
	st := d.Stats()
	if st.NestedLaunches != 2 {
		t.Fatalf("nested launches = %d", st.NestedLaunches)
	}
	// Outer (2) + nested (6) blocks all executed.
	if st.BlocksExecuted != 8 {
		t.Fatalf("blocks executed = %d", st.BlocksExecuted)
	}
}

func TestCostModelCharges(t *testing.T) {
	cost := CostModel{CopyOverhead: 200 * time.Microsecond, CopyBytesPerSec: 1e6}
	d := New(Config{Workers: 1, Cost: cost})
	defer d.Close()
	buf := MustAlloc[byte](d, 1000)
	defer buf.Free()
	start := time.Now()
	if err := buf.CopyToDevice(0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 200µs overhead + 1000 bytes at 1 MB/s = 1 ms; allow slack but require
	// clearly more than the overhead alone.
	if elapsed < 1100*time.Microsecond {
		t.Fatalf("copy took %v, expected >= ~1.2ms of simulated cost", elapsed)
	}
}

func TestLaunchEmptyGridIsNoop(t *testing.T) {
	d := newTestDevice(t)
	s, _ := d.OpenStream()
	defer s.Close()
	s.LaunchAsync(Grid{Blocks: 0, BlockDim: 64}, func(b *BlockCtx) {
		t.Error("kernel body ran for empty grid")
	})
	s.Synchronize()
}

func TestDeviceCloseIdempotent(t *testing.T) {
	d := New(Config{Workers: 2})
	d.Close()
	d.Close()
}

func TestConfigDefaults(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	cfg := d.Config()
	if cfg.Workers <= 0 || cfg.MaxStreams != 10 || cfg.GlobalMemBytes != 12<<30 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if d.Name() != "sim-gpu" {
		t.Fatalf("default name = %q", d.Name())
	}
}

func BenchmarkKernelLaunchOverhead(b *testing.B) {
	d := New(Config{Workers: 4, Cost: DefaultCost})
	defer d.Close()
	s, _ := d.OpenStream()
	defer s.Close()
	grid := Grid{Blocks: 1, BlockDim: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LaunchAsync(grid, func(bc *BlockCtx) {})
	}
	s.Synchronize()
}
