package gpu

import (
	"sync"
	"time"
)

// Event marks a point in a stream's operation sequence, the analogue of
// cudaEvent. An event completes when every operation enqueued on its
// stream before it has executed; Wait blocks for that, and Time reports
// when it happened. Events are how host code measures device-side phases
// without inserting synchronization barriers.
type Event struct {
	once sync.Once
	done chan struct{}
	at   time.Time
}

// RecordEvent enqueues an event on the stream and returns it
// immediately.
func (s *Stream) RecordEvent() *Event {
	ev := &Event{done: make(chan struct{})}
	s.ops <- func() {
		ev.once.Do(func() {
			ev.at = time.Now()
			close(ev.done)
		})
	}
	return ev
}

// Wait blocks until the event has completed.
func (ev *Event) Wait() {
	<-ev.done
}

// Completed reports whether the event has fired without blocking.
func (ev *Event) Completed() bool {
	select {
	case <-ev.done:
		return true
	default:
		return false
	}
}

// Time returns the completion timestamp, blocking until the event fires.
func (ev *Event) Time() time.Time {
	<-ev.done
	return ev.at
}

// Elapsed returns the time between two events (cudaEventElapsedTime),
// blocking until both have fired. The result is negative if b completed
// before a.
func Elapsed(a, b *Event) time.Duration {
	return b.Time().Sub(a.Time())
}
