package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestStreamDepthBufferedOpen checks the FIFO sizing contract of
// OpenStreamBuffered: values below the default round up to 64, larger
// requests are honored, and OpenStream keeps the default.
func TestStreamDepthBufferedOpen(t *testing.T) {
	d := newTestDevice(t)
	small, err := d.OpenStreamBuffered(8)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if cap(small.ops) != 64 {
		t.Fatalf("OpenStreamBuffered(8): FIFO cap = %d, want 64", cap(small.ops))
	}
	big, err := d.OpenStreamBuffered(128)
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if cap(big.ops) != 128 {
		t.Fatalf("OpenStreamBuffered(128): FIFO cap = %d, want 128", cap(big.ops))
	}
	def, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if cap(def.ops) != 64 {
		t.Fatalf("OpenStream: FIFO cap = %d, want 64", cap(def.ops))
	}
}

// TestPipelinedLaunchZeroed checks the fused header reset: the launch
// clears the requested words device-side (no separate H2D copy), and
// the kernel observes the cleared state.
func TestPipelinedLaunchZeroed(t *testing.T) {
	d := newTestDevice(t)
	hdr := MustAlloc[uint32](d, 4)
	defer hdr.Free()
	if err := hdr.CopyToDevice(0, []uint32{7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	copies := d.Stats().CopiesHtoD
	var sawAtLaunch [2]uint32
	s.LaunchZeroedAsync(Grid{Blocks: 1, BlockDim: 1}, hdr, 2, func(b *BlockCtx) {
		b.Threads(func(int) {
			sawAtLaunch[0] = atomic.LoadUint32(&hdr.Data()[0])
			sawAtLaunch[1] = atomic.LoadUint32(&hdr.Data()[1])
			atomic.AddUint32(&hdr.Data()[0], 5)
		})
	})
	if err := s.SynchronizeErr(); err != nil {
		t.Fatal(err)
	}
	if sawAtLaunch != [2]uint32{0, 0} {
		t.Fatalf("kernel saw header %v, want zeroed", sawAtLaunch)
	}
	got := make([]uint32, 4)
	if err := hdr.CopyFromDevice(got, 0); err != nil {
		t.Fatal(err)
	}
	// Words 0-1 reset (then incremented by the kernel); 2-3 untouched.
	if got[0] != 5 || got[1] != 0 || got[2] != 9 || got[3] != 10 {
		t.Fatalf("header after fused launch = %v, want [5 0 9 10]", got)
	}
	if extra := d.Stats().CopiesHtoD - copies; extra != 0 {
		t.Fatalf("fused reset issued %d H2D copies, want 0", extra)
	}
	if err := s.SynchronizeErr(); err != nil {
		t.Fatal(err)
	}

	// Out-of-range reset fails the launch instead of corrupting memory.
	s.LaunchZeroedAsync(Grid{Blocks: 1, BlockDim: 1}, hdr, 5, func(b *BlockCtx) {})
	if err := s.SynchronizeErr(); err == nil {
		t.Fatal("out-of-range fused reset succeeded")
	}
}

// TestPipelinedGatedCopy checks CopyFromDeviceGated: the gate resolves
// the destination at the FIFO head (after earlier ops of the segment),
// a nil destination skips the transfer at zero cost, and a pending
// segment error skips the gate entirely.
func TestPipelinedGatedCopy(t *testing.T) {
	d := newTestDevice(t)
	buf := MustAlloc[uint32](d, 8)
	defer buf.Free()
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The gate reads sizing state written by an earlier callback of the
	// same stream — the header-then-payload pattern of the dispatch path.
	var want []uint32
	var n int
	for i := range 8 {
		want = append(want, uint32(i*3))
	}
	CopyToDeviceAsync(s, buf, 0, want)
	s.Callback(func() { n = 5 })
	var got []uint32
	CopyFromDeviceGated(s, buf, func() ([]uint32, int) {
		got = make([]uint32, n)
		return got, 0
	})
	if err := s.SynchronizeErr(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("gate ran before the sizing callback: len(dst) = %d", len(got))
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("gated copy mismatch at %d: %d != %d", i, v, want[i])
		}
	}

	// nil destination: no transfer, no op recorded, no bus cost.
	d2h := d.Stats().CopiesDtoH
	CopyFromDeviceGated(s, buf, func() ([]uint32, int) { return nil, 0 })
	if err := s.SynchronizeErr(); err != nil {
		t.Fatal(err)
	}
	if extra := d.Stats().CopiesDtoH - d2h; extra != 0 {
		t.Fatalf("skipped gated copy recorded %d D2H ops, want 0", extra)
	}

	// A failed op earlier in the segment must skip the gate: its closure
	// reads state a failed callback chain never staged.
	d.SetFaultPlan(&FaultPlan{Seed: 1, CopyFailProb: 1})
	gateRan := false
	CopyToDeviceAsync(s, buf, 0, want)
	CopyFromDeviceGated(s, buf, func() ([]uint32, int) {
		gateRan = true
		return make([]uint32, 1), 0
	})
	err = s.SynchronizeErr()
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("segment error = %v, want injected fault", err)
	}
	if gateRan {
		t.Fatal("gate ran despite an earlier segment error")
	}
	d.SetFaultPlan(nil)
}

// TestPipelinedOpTags checks that the optional enqueue tag rides on the
// OpRecord to the OnOp observer for every async op flavor — the slot
// attribution the pipelined dispatcher relies on when batches from
// different slots interleave on one stream.
func TestPipelinedOpTags(t *testing.T) {
	d := newTestDevice(t)
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	var tags []any
	s.OnOp(func(r OpRecord) { tags = append(tags, r.Tag) })
	defer s.Close()

	type slot struct{ id int }
	a, b := &slot{1}, &slot{2}
	src := make([]uint32, 4)
	dst := make([]uint32, 4)
	CopyToDeviceAsync(s, buf, 0, src, a)
	s.LaunchZeroedAsync(Grid{Blocks: 1, BlockDim: 1}, buf, 1, func(*BlockCtx) {}, a)
	CopyFromDeviceAsync(s, buf, dst, 0, b)
	CopyFromDeviceGated(s, buf, func() ([]uint32, int) { return dst, 0 }, b)
	CopyToDeviceAsync(s, buf, 0, src) // untagged: Tag stays nil
	s.Synchronize()

	wantTags := []any{a, a, b, b, nil}
	if len(tags) != len(wantTags) {
		t.Fatalf("observed %d op records, want %d", len(tags), len(wantTags))
	}
	for i, wantTag := range wantTags {
		if tags[i] != wantTag {
			t.Fatalf("op %d tag = %v, want %v", i, tags[i], wantTag)
		}
	}

	// The synchronous in-callback variant is attributed too.
	tags = tags[:0]
	if err := CopyFromDeviceNow(s, buf, dst, 0, a); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 1 || tags[0] != a {
		t.Fatalf("CopyFromDeviceNow tags = %v, want [a]", tags)
	}
}
