package gpu

import (
	"sync"
)

// Stream is a FIFO queue of device operations, the analogue of a CUDA
// stream (§3.3.2). Operations enqueued on one stream execute strictly in
// order; operations on different streams execute concurrently, limited
// only by the device's SM workers and the (shared) simulated bus.
//
// All enqueue methods are asynchronous: they return as soon as the
// operation is queued. Synchronize blocks until every previously enqueued
// operation has completed. A Stream's methods may be called from multiple
// goroutines, but the typical TagMatch usage gives each CPU thread
// exclusive use of a stream for one copy/launch/copy sequence at a time.
type Stream struct {
	dev  *Device
	ops  chan func()
	done sync.WaitGroup // executor goroutine
}

// OpenStream opens a new stream on the device. It fails with
// ErrTooManyStreams when MaxStreams streams are already open — the
// paper's platform capped at 10 streams per GPU, and that cap shapes the
// thread-scalability results (Fig 5).
func (d *Device) OpenStream() (*Stream, error) {
	d.streams.Lock()
	if d.streams.open >= d.cfg.MaxStreams {
		d.streams.Unlock()
		return nil, ErrTooManyStreams
	}
	d.streams.open++
	d.streams.Unlock()

	s := &Stream{dev: d, ops: make(chan func(), 64)}
	s.done.Add(1)
	go s.run()
	return s, nil
}

func (s *Stream) run() {
	defer s.done.Done()
	for op := range s.ops {
		op()
	}
}

// Close drains and closes the stream, releasing its slot on the device.
func (s *Stream) Close() {
	close(s.ops)
	s.done.Wait()
	s.dev.streams.Lock()
	s.dev.streams.open--
	s.dev.streams.Unlock()
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// QueueDepth returns the number of operations enqueued on the stream and
// not yet started — a saturation gauge for the observability layer (an
// operation being executed no longer counts).
func (s *Stream) QueueDepth() int { return len(s.ops) }

// CopyToDeviceAsync enqueues an H2D copy of src into buf at dstOff.
// The src slice must not be modified until the operation completes
// (Synchronize, or a later Callback).
func CopyToDeviceAsync[T any](s *Stream, buf *Buffer[T], dstOff int, src []T) {
	s.ops <- func() {
		// Errors inside asynchronous ops are programming errors
		// (out-of-range copies); surface them loudly.
		if err := buf.CopyToDevice(dstOff, src); err != nil {
			panic(err)
		}
	}
}

// CopyFromDeviceAsync enqueues a D2H copy of buf[srcOff:srcOff+len(dst)]
// into dst.
func CopyFromDeviceAsync[T any](s *Stream, buf *Buffer[T], dst []T, srcOff int) {
	s.ops <- func() {
		if err := buf.CopyFromDevice(dst, srcOff); err != nil {
			panic(err)
		}
	}
}

// LaunchAsync enqueues a kernel launch. The stream executor blocks until
// the kernel completes before starting the next operation in this stream,
// while other streams keep running — the overlap TagMatch exploits.
func (s *Stream) LaunchAsync(grid Grid, kernel KernelFunc) {
	s.ops <- func() { s.dev.launch(grid, kernel) }
}

// Callback enqueues a host callback that runs after all previously
// enqueued operations complete, like cudaStreamAddCallback. TagMatch uses
// callbacks to hand results to the key-lookup stage without a blocking
// synchronization point.
func (s *Stream) Callback(f func()) {
	s.ops <- f
}

// Synchronize blocks until every operation enqueued before the call has
// completed.
func (s *Stream) Synchronize() {
	ch := make(chan struct{})
	s.ops <- func() { close(ch) }
	<-ch
}
