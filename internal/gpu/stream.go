package gpu

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

// Stream is a FIFO queue of device operations, the analogue of a CUDA
// stream (§3.3.2). Operations enqueued on one stream execute strictly in
// order; operations on different streams execute concurrently, limited
// only by the device's SM workers and the (shared) simulated bus.
//
// All enqueue methods are asynchronous: they return as soon as the
// operation is queued. Synchronize blocks until every previously enqueued
// operation has completed. A Stream's methods may be called from multiple
// goroutines, but the typical TagMatch usage gives each CPU thread
// exclusive use of a stream for one copy/launch/copy sequence at a time.
type Stream struct {
	dev  *Device
	id   int
	ops  chan func()
	done sync.WaitGroup // executor goroutine

	// observe, when set via OnOp before the first enqueue, receives the
	// OpRecord of every operation issued through this stream. The
	// channel send of the first subsequent enqueue publishes the write
	// to the executor goroutine.
	observe func(OpRecord)

	// segErr accumulates the first error of the current operation
	// segment (the ops enqueued since the last error-consuming callback).
	// Once set, subsequent copy/launch ops in the segment are skipped —
	// the analogue of a CUDA stream entering an error state — until
	// CallbackErr or SynchronizeErr consumes the error. Only the executor
	// goroutine touches it, so no synchronization is needed.
	segErr error
}

// OpenStream opens a new stream on the device with the default
// operation FIFO depth. It fails with ErrTooManyStreams when MaxStreams
// streams are already open — the paper's platform capped at 10 streams
// per GPU, and that cap shapes the thread-scalability results (Fig 5).
func (d *Device) OpenStream() (*Stream, error) {
	return d.OpenStreamBuffered(64)
}

// OpenStreamBuffered opens a stream whose operation FIFO holds up to
// opsBuf pending operations before enqueues block. Pipelined dispatch
// (several double-buffered batches in flight per stream) sizes this
// from its slot depth so a deep enqueue burst cannot stall a dispatcher
// against a full FIFO. Values below the default of 64 are rounded up.
func (d *Device) OpenStreamBuffered(opsBuf int) (*Stream, error) {
	if opsBuf < 64 {
		opsBuf = 64
	}
	d.streams.Lock()
	if d.streams.open >= d.cfg.MaxStreams {
		d.streams.Unlock()
		return nil, ErrTooManyStreams
	}
	d.streams.open++
	d.streams.Unlock()

	s := &Stream{
		dev: d,
		id:  int(d.streamSeq.Add(1)) - 1,
		ops: make(chan func(), opsBuf),
	}
	s.done.Add(1)
	go s.run()
	return s, nil
}

// ID returns the stream's device-unique id, assigned in open order.
func (s *Stream) ID() int { return s.id }

// OnOp installs an observer invoked with the OpRecord of every
// operation issued through this stream, from the executor goroutine.
// Install it before the first enqueue; it must not block.
func (s *Stream) OnOp(fn func(OpRecord)) { s.observe = fn }

// site returns the opSite of an operation being enqueued now. tag is
// the optional trailing attribution value of the enqueue call; only the
// first element is used.
func (s *Stream) site(tag []any) opSite {
	st := opSite{stream: s.id, enqueue: time.Now(), observe: s.observe}
	if len(tag) > 0 {
		st.tag = tag[0]
	}
	return st
}

func (s *Stream) run() {
	defer s.done.Done()
	// Label the executor goroutine so CPU profiles attribute simulated
	// bus and kernel-dispatch time to the owning device.
	pprof.Do(context.Background(), pprof.Labels("stage", "gpu-stream", "device", s.dev.name), func(context.Context) {
		for op := range s.ops {
			op()
		}
	})
}

// Close drains and closes the stream, releasing its slot on the device.
func (s *Stream) Close() {
	close(s.ops)
	s.done.Wait()
	s.dev.streams.Lock()
	s.dev.streams.open--
	s.dev.streams.Unlock()
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// QueueDepth returns the number of operations enqueued on the stream and
// not yet started — a saturation gauge for the observability layer (an
// operation being executed no longer counts).
func (s *Stream) QueueDepth() int { return len(s.ops) }

// CopyToDeviceAsync enqueues an H2D copy of src into buf at dstOff.
// The src slice must not be modified until the operation completes
// (Synchronize, or a later Callback). A failed copy puts the stream into
// an error state; see CallbackErr. The optional trailing tag is carried
// on the resulting OpRecord for the OnOp observer.
func CopyToDeviceAsync[T any](s *Stream, buf *Buffer[T], dstOff int, src []T, tag ...any) {
	site := s.site(tag)
	s.ops <- func() {
		if s.segErr != nil {
			return
		}
		s.segErr = buf.copyToDevice(dstOff, src, site)
	}
}

// CopyFromDeviceAsync enqueues a D2H copy of buf[srcOff:srcOff+len(dst)]
// into dst.
func CopyFromDeviceAsync[T any](s *Stream, buf *Buffer[T], dst []T, srcOff int, tag ...any) {
	site := s.site(tag)
	s.ops <- func() {
		if s.segErr != nil {
			return
		}
		s.segErr = buf.copyFromDevice(dst, srcOff, site)
	}
}

// CopyFromDeviceGated enqueues a D2H copy whose destination is resolved
// only when the operation reaches the head of the FIFO: gate runs on
// the executor goroutine after every previously enqueued operation
// (typically the kernel that produced the data and the callback that
// read its result header) has completed, and returns the destination
// slice plus source offset. A nil destination skips the copy entirely —
// no operation is recorded and no bus cost is paid — which is how the
// pipelined dispatch path elides the transfer for empty or overflowed
// batches. This is the exact-size, header-gated result copy of the
// paper's double-buffered cycle (§3.3.2): the size rides along with the
// previous operations of the same stream instead of forcing a
// synchronous round trip.
func CopyFromDeviceGated[T any](s *Stream, buf *Buffer[T], gate func() (dst []T, srcOff int), tag ...any) {
	site := s.site(tag)
	s.ops <- func() {
		if s.segErr != nil {
			return
		}
		dst, srcOff := gate()
		if dst == nil {
			return
		}
		s.segErr = buf.copyFromDevice(dst, srcOff, site)
	}
}

// CopyFromDeviceNow synchronously copies like Buffer.CopyFromDevice but
// attributes the operation to the stream. It is for copies issued from
// inside a stream callback: those run on the stream's executor
// goroutine without passing through its FIFO (the size-then-copy
// ablation path), so a plain CopyFromDevice would record them as
// anonymous direct operations and the stream's OnOp observer would
// never see them.
func CopyFromDeviceNow[T any](s *Stream, buf *Buffer[T], dst []T, srcOff int, tag ...any) error {
	return buf.copyFromDevice(dst, srcOff, s.site(tag))
}

// LaunchAsync enqueues a kernel launch. The stream executor blocks until
// the kernel completes before starting the next operation in this stream,
// while other streams keep running — the overlap TagMatch exploits.
func (s *Stream) LaunchAsync(grid Grid, kernel KernelFunc, tag ...any) {
	site := s.site(tag)
	s.ops <- func() {
		if s.segErr != nil {
			return
		}
		s.segErr = s.dev.launch(grid, kernel, site)
	}
}

// LaunchZeroedAsync enqueues a kernel launch fused with a device-side
// reset: the first zeroWords words of zero are cleared immediately
// before the grid is dispatched, inside the same operation. This folds
// the per-batch result-header reset into the launch — the analogue of a
// cudaMemsetAsync fused into the kernel prologue — saving the separate
// H2D copy (and its per-op bus overhead) the reset used to cost.
func (s *Stream) LaunchZeroedAsync(grid Grid, zero *Buffer[uint32], zeroWords int, kernel KernelFunc, tag ...any) {
	site := s.site(tag)
	s.ops <- func() {
		if s.segErr != nil {
			return
		}
		s.segErr = s.dev.launchZeroed(grid, kernel, zero, zeroWords, site)
	}
}

// Callback enqueues a host callback that runs after all previously
// enqueued operations complete, like cudaStreamAddCallback. TagMatch uses
// callbacks to hand results to the key-lookup stage without a blocking
// synchronization point.
//
// Callback is the error-oblivious variant: a pending segment error —
// which for this variant can only be a programming error such as an
// out-of-range copy — is surfaced as a panic on the executor goroutine.
// Code that must survive device faults uses CallbackErr.
func (s *Stream) Callback(f func()) {
	s.ops <- func() {
		if err := s.segErr; err != nil {
			s.segErr = nil
			panic(err)
		}
		f()
	}
}

// CallbackErr enqueues a host callback that receives — and consumes —
// the segment's accumulated error: nil when every operation enqueued
// since the last error-consuming callback succeeded, otherwise the first
// failure (the remaining operations of the segment were skipped). This is
// the hook of the fault-tolerant dispatch path: the engine inspects the
// error and re-routes the batch instead of crashing.
func (s *Stream) CallbackErr(f func(err error)) {
	s.ops <- func() {
		err := s.segErr
		s.segErr = nil
		f(err)
	}
}

// Synchronize blocks until every operation enqueued before the call has
// completed. A pending segment error is left in place for the next
// error-consuming callback.
func (s *Stream) Synchronize() {
	ch := make(chan struct{})
	s.ops <- func() { close(ch) }
	<-ch
}

// SynchronizeErr blocks like Synchronize and additionally returns — and
// consumes — the segment's accumulated error, if any.
func (s *Stream) SynchronizeErr() error {
	ch := make(chan error, 1)
	s.ops <- func() {
		err := s.segErr
		s.segErr = nil
		ch <- err
	}
	return <-ch
}
