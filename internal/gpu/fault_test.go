package gpu

import (
	"errors"
	"testing"
	"time"
)

// TestFaultPlanProbabilisticRate checks that a seeded probability plan
// fails roughly the configured fraction of synchronous copies, and that
// the exact failure set replays identically for the same seed.
func TestFaultPlanProbabilisticRate(t *testing.T) {
	const n = 2000
	const prob = 0.05

	run := func() []int {
		d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
		defer d.Close()
		d.SetFaultPlan(&FaultPlan{Seed: 42, CopyFailProb: prob})
		buf := MustAlloc[uint32](d, 8)
		defer buf.Free()
		src := make([]uint32, 8)
		var failed []int
		for i := 0; i < n; i++ {
			if err := buf.CopyToDevice(0, src); err != nil {
				if !errors.Is(err, ErrInjectedFault) {
					t.Fatalf("copy %d: unexpected error class: %v", i, err)
				}
				failed = append(failed, i)
			}
		}
		if got := d.InjectedFaults(); got != int64(len(failed)) {
			t.Fatalf("InjectedFaults = %d, observed %d failures", got, len(failed))
		}
		return failed
	}

	first := run()
	// Rate should be near prob: with n=2000 and p=0.05 the expectation is
	// 100; a [50, 200] window is > 5 sigma on both sides.
	if len(first) < n*5/200 || len(first) > n*5/50 {
		t.Fatalf("failure count %d far from expected %d", len(first), n/20)
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay diverged: %d vs %d failures", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at failure %d: op %d vs %d", i, first[i], second[i])
		}
	}
}

// TestFaultPlanScriptedOps checks that FailOps fails exactly the listed
// operation sequence numbers.
func TestFaultPlanScriptedOps(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4) // before the plan: draws no op number
	defer buf.Free()
	d.SetFaultPlan(&FaultPlan{Seed: 1, FailOps: []int64{2, 4}})
	src := make([]uint32, 4)
	for i := 1; i <= 5; i++ {
		err := buf.CopyToDevice(0, src)
		wantFail := i == 2 || i == 4
		if wantFail && !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("op %d: want injected fault, got %v", i, err)
		}
		if !wantFail && err != nil {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	if got := d.InjectedFaults(); got != 2 {
		t.Fatalf("InjectedFaults = %d, want 2", got)
	}
}

// TestFaultPlanDieAtOp checks mid-flight device death: the triggering
// operation and everything after it fail with ErrDeviceClosed, including
// launches and allocations, and removing the plan does not resurrect the
// device.
func TestFaultPlanDieAtOp(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	d.SetFaultPlan(&FaultPlan{Seed: 7, DieAtOp: 3})
	src := make([]uint32, 4)

	for i := 1; i <= 2; i++ {
		if err := buf.CopyToDevice(0, src); err != nil {
			t.Fatalf("op %d before death: %v", i, err)
		}
	}
	if d.Dead() {
		t.Fatal("device dead before DieAtOp reached")
	}
	if err := buf.CopyToDevice(0, src); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("op 3: want ErrDeviceClosed, got %v", err)
	}
	if !d.Dead() {
		t.Fatal("device not marked dead at DieAtOp")
	}
	// Every operation kind now fails, even with the plan removed.
	d.SetFaultPlan(nil)
	if err := buf.CopyFromDevice(src, 0); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("copy after death: want ErrDeviceClosed, got %v", err)
	}
	if _, err := Alloc[uint32](d, 4); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("alloc after death: want ErrDeviceClosed, got %v", err)
	}
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.LaunchAsync(Grid{Blocks: 1, BlockDim: 1}, func(b *BlockCtx) {})
	if err := s.SynchronizeErr(); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("launch after death: want ErrDeviceClosed, got %v", err)
	}
}

// TestStreamSegmentErrorSkipsRest checks the stream error-state model: a
// failed async op skips the rest of the segment, CallbackErr consumes the
// error, and the next segment starts clean.
func TestStreamSegmentErrorSkipsRest(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fail the first async copy (op 1 after the plan is installed).
	d.SetFaultPlan(&FaultPlan{Seed: 1, FailOps: []int64{1}})
	src := make([]uint32, 4)
	launched := false
	CopyToDeviceAsync(s, buf, 0, src)
	s.LaunchAsync(Grid{Blocks: 1, BlockDim: 1}, func(b *BlockCtx) { launched = true })
	var segErr error
	s.CallbackErr(func(e error) { segErr = e })
	s.Synchronize()
	if !errors.Is(segErr, ErrInjectedFault) {
		t.Fatalf("segment error = %v, want injected fault", segErr)
	}
	if launched {
		t.Fatal("kernel ran despite earlier copy failure in the segment")
	}
	// Launch was skipped, so it never drew an op number: the next op is 2.
	CopyToDeviceAsync(s, buf, 0, src)
	s.LaunchAsync(Grid{Blocks: 1, BlockDim: 1}, func(b *BlockCtx) { launched = true })
	if err := s.SynchronizeErr(); err != nil {
		t.Fatalf("clean segment after consumed error: %v", err)
	}
	if !launched {
		t.Fatal("kernel skipped in a clean segment")
	}
}

// TestKillMarksDeviceDead checks the direct Kill switch.
func TestKillMarksDeviceDead(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	d.Kill()
	if !d.Dead() {
		t.Fatal("Dead() = false after Kill")
	}
	if err := buf.CopyToDevice(0, make([]uint32, 4)); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("copy on killed device: want ErrDeviceClosed, got %v", err)
	}
	if st := d.Stats(); st.InjectedFaults != 0 {
		t.Fatalf("Kill counted as injected fault: %+v", st)
	}
}

// TestStragglerScriptedOps checks that SlowOps stalls exactly the listed
// operation sequence numbers: the op succeeds, the slowdown counter
// moves, and the measured wall time carries at least the SlowDelay.
func TestStragglerScriptedOps(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4) // before the plan: draws no op number
	defer buf.Free()
	const delay = 3 * time.Millisecond
	d.SetFaultPlan(&FaultPlan{Seed: 1, SlowOps: []int64{2}, SlowDelay: delay})
	src := make([]uint32, 4)

	if err := buf.CopyToDevice(0, src); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if got := d.InjectedSlowdowns(); got != 0 {
		t.Fatalf("InjectedSlowdowns = %d before the scripted op", got)
	}
	start := time.Now()
	if err := buf.CopyToDevice(0, src); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("scripted straggler op took %v, want >= %v", elapsed, delay)
	}
	if got := d.InjectedSlowdowns(); got != 1 {
		t.Fatalf("InjectedSlowdowns = %d, want 1", got)
	}
}

// TestStragglerProbabilisticRate checks that SlowProb stalls roughly the
// configured fraction of operations, that the slowed set replays
// identically for the same seed, and that slowdown draws are independent
// of failure draws (no fault is ever injected by a slow-only plan).
func TestStragglerProbabilisticRate(t *testing.T) {
	const n = 2000
	const prob = 0.05

	run := func() int64 {
		d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
		defer d.Close()
		// A microsecond stall keeps the counter moving (zero-penalty draws
		// are not stalls) without paying real sleeps across 2000 ops.
		d.SetFaultPlan(&FaultPlan{Seed: 42, SlowProb: prob, SlowDelay: time.Microsecond})
		buf := MustAlloc[uint32](d, 8)
		defer buf.Free()
		src := make([]uint32, 8)
		for i := 0; i < n; i++ {
			if err := buf.CopyToDevice(0, src); err != nil {
				t.Fatalf("copy %d: unexpected error: %v", i, err)
			}
		}
		if got := d.InjectedFaults(); got != 0 {
			t.Fatalf("slow-only plan injected %d faults", got)
		}
		return d.InjectedSlowdowns()
	}

	first := run()
	if first < n*5/200 || first > n*5/50 {
		t.Fatalf("slowdown count %d far from expected %d", first, n/20)
	}
	if second := run(); second != first {
		t.Fatalf("replay diverged: %d vs %d slowdowns", first, second)
	}
}

// TestStragglerSlowFactorScalesBase checks that SlowFactor pays a stall
// proportional to the operation's modeled base cost under a cost model.
func TestStragglerSlowFactorScalesBase(t *testing.T) {
	base := 500 * time.Microsecond
	d := New(Config{
		Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2,
		Cost: CostModel{CopyOverhead: base},
	})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	src := make([]uint32, 4)

	// Unslowed baseline: roughly the modeled copy latency.
	if err := buf.CopyToDevice(0, src); err != nil {
		t.Fatal(err)
	}

	d.SetFaultPlan(&FaultPlan{Seed: 9, SlowOps: []int64{1}, SlowFactor: 8})
	start := time.Now()
	if err := buf.CopyToDevice(0, src); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The slowed op pays base + (factor-1)*base = 8*base = 4ms total;
	// require at least half of the pure penalty to absorb timer noise.
	if want := time.Duration(float64(base) * 7 / 2); elapsed < want {
		t.Fatalf("SlowFactor straggler took %v, want >= %v", elapsed, want)
	}
	if got := d.InjectedSlowdowns(); got != 1 {
		t.Fatalf("InjectedSlowdowns = %d, want 1", got)
	}
}

// TestStragglerStatsSurface checks Device.Stats carries the slowdown
// counter alongside the fault counter.
func TestStragglerStatsSurface(t *testing.T) {
	d := New(Config{Name: "chaos", Workers: 2, GlobalMemBytes: 1 << 20, MaxStreams: 2})
	defer d.Close()
	buf := MustAlloc[uint32](d, 4)
	defer buf.Free()
	d.SetFaultPlan(&FaultPlan{Seed: 1, SlowOps: []int64{1, 2}, SlowDelay: time.Microsecond})
	src := make([]uint32, 4)
	for i := 0; i < 3; i++ {
		if err := buf.CopyToDevice(0, src); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.InjectedSlowdowns != 2 {
		t.Fatalf("Stats().InjectedSlowdowns = %d, want 2", st.InjectedSlowdowns)
	}
}
