package gpu

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	d := New(Config{Workers: 2})
	defer d.Close()
	s, err := d.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := s.RecordEvent()
	release := make(chan struct{})
	s.Callback(func() { <-release })
	after := s.RecordEvent()

	before.Wait()
	if after.Completed() {
		t.Fatal("event after a pending operation completed early")
	}
	close(release)
	after.Wait()
	if el := Elapsed(before, after); el < 0 {
		t.Fatalf("elapsed = %v, want >= 0", el)
	}
}

func TestEventMeasuresKernelPhase(t *testing.T) {
	d := New(Config{Workers: 2, Cost: CostModel{LaunchOverhead: 2 * time.Millisecond}})
	defer d.Close()
	s, _ := d.OpenStream()
	defer s.Close()

	start := s.RecordEvent()
	s.LaunchAsync(Grid{Blocks: 1, BlockDim: 1}, func(b *BlockCtx) {})
	end := s.RecordEvent()
	if el := Elapsed(start, end); el < 2*time.Millisecond {
		t.Fatalf("kernel phase measured %v, want >= launch overhead 2ms", el)
	}
}

func TestEventCompletedNonBlocking(t *testing.T) {
	d := New(Config{Workers: 1})
	defer d.Close()
	s, _ := d.OpenStream()
	defer s.Close()
	ev := s.RecordEvent()
	s.Synchronize()
	if !ev.Completed() {
		t.Fatal("event not completed after stream synchronize")
	}
	if ev.Time().IsZero() {
		t.Fatal("event time not recorded")
	}
}
