package bitvec

import "math/bits"

// Bit-sliced (column-transposed) storage for batched subset tests.
//
// A LaneBlock holds up to 64 vectors ("lanes") transposed: one uint64
// word per bit position p, whose bit L is set iff lane L's vector has
// bit p set. The batched subset test rests on the identity
//
//	m ⊆ q  ⇔  m &^ q == 0  ⇔  no bit of m sits at a zero bit of q,
//
// so OR-ing the column words at q's ZERO positions accumulates, in one
// word, the set of lanes that miss; the complement (within the
// populated lanes) is the set of lanes whose vector is a subset of q —
// 64 candidates tested per column word touched. Columns that are zero
// across all lanes can never contribute a miss, so a per-block
// used-position mask lets the scan visit only columns that are both
// populated and at a zero bit of q (the "zero-bit elimination" that
// makes the transposed scan beat 64 separate three-word tests).
type LaneBlock struct {
	// Cols[p] is the column word for bit position p (paper numbering:
	// position 0 is the MSB of block 0): bit L set iff lane L has bit p.
	Cols [W]uint64
	// Used[b] marks, in Vector's in-block bit convention, the positions
	// of block b with a nonzero column, so Used[b] &^ q[b] selects
	// exactly the columns that can veto a lane for query q.
	Used [Blocks]uint64
	// Valid marks the populated lanes.
	Valid uint64
}

// SetLane installs v as the given lane (0..63), overwriting nothing:
// lanes must be assigned at most once (rebuild the block to replace).
func (lb *LaneBlock) SetLane(lane int, v Vector) {
	m := uint64(1) << uint(lane)
	lb.Valid |= m
	for b := 0; b < Blocks; b++ {
		blk := v[b]
		for blk != 0 {
			w := bits.TrailingZeros64(blk)
			lb.Cols[b*64+63-w] |= m
			lb.Used[b] |= 1 << uint(w)
			blk &= blk - 1
		}
	}
}

// SubsetLanes returns the set of populated lanes whose vector is a
// subset of q, as a lane bitmask. It touches one column word per used
// bit position at which q is zero, clearing hit candidates as columns
// veto them. The per-column zero check matters: for a selective query
// most groups end with no surviving lane, and the survivor set usually
// empties within the first few columns — long before the ~100 relevant
// columns of a saturated group are exhausted.
func (lb *LaneBlock) SubsetLanes(q Vector) uint64 {
	hits, _ := lb.SubsetLanesCols(q)
	return hits
}

// SubsetLanesCols is SubsetLanes that additionally reports how many
// column words the scan touched before returning — the work metric the
// subset-match kernel's columns-walked telemetry accumulates.
func (lb *LaneBlock) SubsetLanesCols(q Vector) (uint64, int) {
	hits := lb.Valid
	cols := 0
	for b := 0; b < Blocks; b++ {
		rel := lb.Used[b] &^ q[b] // used columns at q's zero positions
		base := b * 64
		for rel != 0 {
			w := bits.TrailingZeros64(rel)
			cols++
			hits &^= lb.Cols[base+63-w]
			if hits == 0 {
				return 0, cols
			}
			rel &= rel - 1
		}
	}
	return hits, cols
}

// Lanes returns the number of populated lanes.
func (lb *LaneBlock) Lanes() int {
	return bits.OnesCount64(lb.Valid)
}

// SlicedGroup is the device-resident unit of the bit-sliced subset-match
// kernel: a LaneBlock of up to 64 column-transposed tag sets together
// with the group gate — the bitwise intersection of the member
// signatures. The gate is contained in every member, so if any member
// is a subset of a query q then so is the gate; contrapositively, a
// query that fails gate ⊆ q cannot contain any of the 64 members, and
// one three-word test discards the whole group. With members sorted
// lexicographically (as partitions are), neighbors share their leading
// bits, which keeps the intersection large and the gate selective —
// the role Algorithm 4's common-prefix block test plays for the scalar
// kernel.
type SlicedGroup struct {
	LaneBlock
	Gate Vector
}

// BuildSlicedGroups transposes sets into ⌈n/64⌉ SlicedGroups: set i
// becomes lane i%64 of group i/64, so (group, lane) recovers the index
// into the original slice. Callers sort sets beforehand to make the
// gates selective.
func BuildSlicedGroups(sets []Vector) []SlicedGroup {
	groups := make([]SlicedGroup, (len(sets)+63)/64)
	for g := range groups {
		grp := &groups[g]
		grp.Gate = Vector{^uint64(0), ^uint64(0), ^uint64(0)}
		for lane, i := 0, g*64; lane < 64 && i < len(sets); lane, i = lane+1, i+1 {
			grp.SetLane(lane, sets[i])
			grp.Gate = grp.Gate.And(sets[i])
		}
	}
	return groups
}
