package bitvec

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, nbits int) Vector {
	var v Vector
	for j := 0; j < nbits; j++ {
		v.Set(rng.Intn(W))
	}
	return v
}

// scalarSubsetLanes is the reference: test each occupied lane with the
// three-word SubsetOf.
func scalarSubsetLanes(masks []Vector, q Vector) uint64 {
	var hits uint64
	for l, m := range masks {
		if m.SubsetOf(q) {
			hits |= 1 << uint(l)
		}
	}
	return hits
}

func TestLaneBlockMatchesScalarSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		masks := make([]Vector, n)
		var lb LaneBlock
		for l := range masks {
			masks[l] = randVec(rng, 2+rng.Intn(40))
			lb.SetLane(l, masks[l])
		}
		if lb.Lanes() != n {
			t.Fatalf("Lanes() = %d, want %d", lb.Lanes(), n)
		}
		for qi := 0; qi < 20; qi++ {
			q := randVec(rng, 4+rng.Intn(80))
			if got, want := lb.SubsetLanes(q), scalarSubsetLanes(masks, q); got != want {
				t.Fatalf("trial %d: SubsetLanes = %#x, scalar = %#x (q=%s)",
					trial, got, want, q.Hex())
			}
		}
	}
}

func TestLaneBlockEmptyMaskLane(t *testing.T) {
	// An all-zero mask is a subset of every query, including the empty
	// one: its lane contributes no columns, so it can never miss.
	var lb LaneBlock
	lb.SetLane(3, Vector{})
	lb.SetLane(5, FromOnes(10))
	if got := lb.SubsetLanes(Vector{}); got != 1<<3 {
		t.Fatalf("empty query: hits = %#x, want lane 3 only", got)
	}
	if got := lb.SubsetLanes(FromOnes(10, 11)); got != 1<<3|1<<5 {
		t.Fatalf("hits = %#x, want lanes 3 and 5", got)
	}
}

func TestLaneBlockBoundaryBits(t *testing.T) {
	// Bits at word boundaries (0, 63, 64, 127, 128, 191) exercise the
	// MSB-first column addressing.
	positions := []int{0, 63, 64, 127, 128, 191}
	var lb LaneBlock
	masks := make([]Vector, len(positions))
	for l, p := range positions {
		masks[l] = FromOnes(p)
		lb.SetLane(l, masks[l])
	}
	for _, p := range positions {
		q := FromOnes(p)
		if got, want := lb.SubsetLanes(q), scalarSubsetLanes(masks, q); got != want {
			t.Fatalf("bit %d: hits = %#x, want %#x", p, got, want)
		}
	}
	all := FromOnes(positions...)
	if got := lb.SubsetLanes(all); got != (1<<len(positions))-1 {
		t.Fatalf("all-bits query: hits = %#x, want all lanes", got)
	}
}

func TestAndNotIsZeroMatchesSubsetOf(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v, q := randVec(rng, 1+rng.Intn(30)), randVec(rng, 1+rng.Intn(60))
		if AndNotIsZero(v, q) != v.SubsetOf(q) {
			t.Fatalf("AndNotIsZero disagrees with SubsetOf: v=%s q=%s", v.Hex(), q.Hex())
		}
	}
}

func TestPrefixSubsetOfMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		v, q := randVec(rng, 1+rng.Intn(30)), randVec(rng, 1+rng.Intn(60))
		for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 150, 191, 192, 200, rng.Intn(2 * W)} {
			if got, want := v.PrefixSubsetOf(n, q), v.Prefix(n).SubsetOf(q); got != want {
				t.Fatalf("PrefixSubsetOf(%d) = %v, materialized = %v (v=%s q=%s)",
					n, got, want, v.Hex(), q.Hex())
			}
		}
	}
}

func BenchmarkLaneBlockSubsetLanes(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	var lb LaneBlock
	for l := 0; l < 64; l++ {
		lb.SetLane(l, randVec(rng, 20))
	}
	qs := make([]Vector, 64)
	for i := range qs {
		qs[i] = randVec(rng, 60)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= lb.SubsetLanes(qs[i&63])
	}
	_ = sink
}
