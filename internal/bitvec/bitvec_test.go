package bitvec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	var v Vector
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 190, 191} {
		if v.Test(i) {
			t.Fatalf("bit %d set in zero vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.OnesCount(); got != 9 {
		t.Fatalf("OnesCount = %d, want 9", got)
	}
	v.Clear(64)
	if v.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := v.OnesCount(); got != 8 {
		t.Fatalf("OnesCount = %d, want 8", got)
	}
}

func TestBitZeroIsMSBOfBlockZero(t *testing.T) {
	var v Vector
	v.Set(0)
	if v[0] != 1<<63 {
		t.Fatalf("bit 0 should be MSB of block 0, got %x", v[0])
	}
	var w Vector
	w.Set(191)
	if w[2] != 1 {
		t.Fatalf("bit 191 should be LSB of block 2, got %x", w[2])
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromOnes(1, 70, 180)
	b := FromOnes(1, 5, 70, 100, 180)
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
	var zero Vector
	if !zero.SubsetOf(a) {
		t.Fatal("empty vector should be subset of anything")
	}
	if !b.Contains(a) {
		t.Fatal("Contains should mirror SubsetOf")
	}
}

func TestIsZero(t *testing.T) {
	var v Vector
	if !v.IsZero() {
		t.Fatal("zero value should be zero")
	}
	v.Set(100)
	if v.IsZero() {
		t.Fatal("non-empty vector reported zero")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromOnes(0, 64, 128)
	b := FromOnes(64, 128, 191)
	if got, want := a.Or(b), FromOnes(0, 64, 128, 191); got != want {
		t.Fatalf("Or = %s", got.Hex())
	}
	if got, want := a.And(b), FromOnes(64, 128); got != want {
		t.Fatalf("And = %s", got.Hex())
	}
	if got, want := a.AndNot(b), FromOnes(0); got != want {
		t.Fatalf("AndNot = %s", got.Hex())
	}
	if got, want := a.Xor(b), FromOnes(0, 191); got != want {
		t.Fatalf("Xor = %s", got.Hex())
	}
}

func TestLeftmostRightmost(t *testing.T) {
	cases := []struct {
		bits        []int
		left, right int
	}{
		{nil, -1, -1},
		{[]int{0}, 0, 0},
		{[]int{191}, 191, 191},
		{[]int{63, 64}, 63, 64},
		{[]int{5, 100, 150}, 5, 150},
		{[]int{128}, 128, 128},
	}
	for _, c := range cases {
		v := FromOnes(c.bits...)
		if got := v.LeftmostOne(); got != c.left {
			t.Errorf("LeftmostOne(%v) = %d, want %d", c.bits, got, c.left)
		}
		if got := v.RightmostOne(); got != c.right {
			t.Errorf("RightmostOne(%v) = %d, want %d", c.bits, got, c.right)
		}
	}
}

func TestNextOne(t *testing.T) {
	v := FromOnes(3, 64, 65, 190)
	var got []int
	for j := v.NextOne(0); j >= 0; j = v.NextOne(j + 1) {
		got = append(got, j)
	}
	want := []int{3, 64, 65, 190}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if v.NextOne(191) != -1 {
		t.Fatal("NextOne(191) should be -1")
	}
	if v.NextOne(200) != -1 {
		t.Fatal("NextOne beyond width should be -1")
	}
	if v.NextOne(-5) != 3 {
		t.Fatal("NextOne with negative start should clamp to 0")
	}
}

func TestNextOneMatchesOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var v Vector
		for i := 0; i < rng.Intn(40); i++ {
			v.Set(rng.Intn(W))
		}
		ones := v.Ones(nil)
		var iter []int
		for j := v.NextOne(0); j >= 0; j = v.NextOne(j + 1) {
			iter = append(iter, j)
		}
		if len(ones) != len(iter) {
			t.Fatalf("Ones=%v NextOne=%v", ones, iter)
		}
		for i := range ones {
			if ones[i] != iter[i] {
				t.Fatalf("Ones=%v NextOne=%v", ones, iter)
			}
		}
		if !sort.IntsAreSorted(ones) {
			t.Fatalf("Ones not sorted: %v", ones)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := FromOnes(10, 100)
	if got := CommonPrefixLen(a, a); got != W {
		t.Fatalf("prefix of identical = %d, want %d", got, W)
	}
	b := FromOnes(10, 101)
	if got := CommonPrefixLen(a, b); got != 100 {
		t.Fatalf("prefix = %d, want 100", got)
	}
	c := FromOnes(0)
	var zero Vector
	if got := CommonPrefixLen(c, zero); got != 0 {
		t.Fatalf("prefix = %d, want 0", got)
	}
}

func TestPrefix(t *testing.T) {
	v := FromOnes(3, 64, 100, 150)
	if got, want := v.Prefix(65), FromOnes(3, 64); got != want {
		t.Fatalf("Prefix(65) = %v", got.Ones(nil))
	}
	if got, want := v.Prefix(64), FromOnes(3); got != want {
		t.Fatalf("Prefix(64) = %v", got.Ones(nil))
	}
	if got := v.Prefix(0); !got.IsZero() {
		t.Fatal("Prefix(0) should be zero")
	}
	if got := v.Prefix(-4); !got.IsZero() {
		t.Fatal("Prefix(<0) should be zero")
	}
	if got := v.Prefix(W); got != v {
		t.Fatal("Prefix(W) should be identity")
	}
	if got := v.Prefix(W + 10); got != v {
		t.Fatal("Prefix(>W) should be identity")
	}
}

func TestCompare(t *testing.T) {
	a := FromOnes(0)
	b := FromOnes(1)
	// In lexicographic bit order a vector with an earlier one-bit is larger
	// as a big-endian integer.
	if Compare(a, b) != 1 || Compare(b, a) != -1 || Compare(a, a) != 0 {
		t.Fatal("Compare ordering wrong")
	}
	if !Less(b, a) || Less(a, b) {
		t.Fatal("Less ordering wrong")
	}
}

func TestStringAndHex(t *testing.T) {
	v := FromOnes(0, 191)
	s := v.String()
	if len(s) != W {
		t.Fatalf("String length = %d", len(s))
	}
	if s[0] != '1' || s[191] != '1' || s[1] != '0' {
		t.Fatalf("String content wrong: %s", s)
	}
	h := v.Hex()
	if len(h) != W/4 {
		t.Fatalf("Hex length = %d", len(h))
	}
	back, err := ParseHex(h)
	if err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Fatal("ParseHex(Hex(v)) != v")
	}
}

func TestParseHexErrors(t *testing.T) {
	if _, err := ParseHex("abc"); err == nil {
		t.Fatal("short input should fail")
	}
	bad := make([]byte, W/4)
	for i := range bad {
		bad[i] = 'g'
	}
	if _, err := ParseHex(string(bad)); err == nil {
		t.Fatal("invalid digit should fail")
	}
	upper, err := ParseHex("ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789")
	if err != nil {
		t.Fatalf("uppercase hex should parse: %v", err)
	}
	if upper.IsZero() {
		t.Fatal("parsed vector should not be zero")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var v Vector
		for i := 0; i < rng.Intn(30); i++ {
			v.Set(rng.Intn(W))
		}
		enc := v.AppendBinary(nil)
		if len(enc) != 24 {
			t.Fatalf("encoding length = %d", len(enc))
		}
		back, err := FromBinary(enc)
		if err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatal("binary round trip failed")
		}
	}
	if _, err := FromBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short binary should fail")
	}
}

func TestFromOnesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromOnes should panic on out-of-range positions")
		}
	}()
	FromOnes(W)
}

// Property: subset relation is a partial order and Or produces supersets.
func TestQuickSubsetProperties(t *testing.T) {
	f := func(a, b, c Vector) bool {
		// Reflexivity.
		if !a.SubsetOf(a) {
			return false
		}
		// a∩b ⊆ a and a ⊆ a∪b.
		if !a.And(b).SubsetOf(a) || !a.SubsetOf(a.Or(b)) {
			return false
		}
		// Transitivity via constructed chain: a∩b ⊆ a ⊆ a∪c.
		if !a.And(b).SubsetOf(a.Or(c)) {
			return false
		}
		// Antisymmetry: mutual subsets imply equality.
		if a.SubsetOf(b) && b.SubsetOf(a) && a != b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OnesCount is consistent with Ones and with boolean algebra
// (inclusion-exclusion).
func TestQuickOnesCount(t *testing.T) {
	f := func(a, b Vector) bool {
		if a.OnesCount() != len(a.Ones(nil)) {
			return false
		}
		return a.Or(b).OnesCount()+a.And(b).OnesCount() ==
			a.OnesCount()+b.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix semantics used by the kernel pre-filter: for any two
// vectors, both share their common prefix, and the prefix is a subset of
// each.
func TestQuickCommonPrefix(t *testing.T) {
	f := func(a, b Vector) bool {
		n := CommonPrefixLen(a, b)
		pa, pb := a.Prefix(n), b.Prefix(n)
		if pa != pb {
			return false
		}
		if !pa.SubsetOf(a) || !pa.SubsetOf(b) {
			return false
		}
		if n < W {
			// The vectors must differ at bit n.
			if a.Test(n) == b.Test(n) {
				return false
			}
		}
		return a == b == (n == W)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare defines a total order consistent with prefix structure:
// v < w and they first differ at bit n implies w has bit n set.
func TestQuickCompareOrder(t *testing.T) {
	f := func(a, b Vector) bool {
		c := Compare(a, b)
		if c != -Compare(b, a) {
			return false
		}
		if c == 0 {
			return a == b
		}
		n := CommonPrefixLen(a, b)
		if n >= W {
			return false // differing vectors must have a differing bit
		}
		if c < 0 {
			return b.Test(n) && !a.Test(n)
		}
		return a.Test(n) && !b.Test(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hex and binary round trips are identities.
func TestQuickRoundTrips(t *testing.T) {
	f := func(a Vector) bool {
		h, err := ParseHex(a.Hex())
		if err != nil || h != a {
			return false
		}
		b, err := FromBinary(a.AppendBinary(nil))
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]Vector, 1024)
	for i := range vs {
		for j := 0; j < 35; j++ {
			vs[i].Set(rng.Intn(W))
		}
	}
	q := vs[0].Or(vs[1]).Or(vs[2])
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if vs[i&1023].SubsetOf(q) {
			n++
		}
	}
	_ = n
}

func BenchmarkNextOneIteration(b *testing.B) {
	v := FromOnes(1, 17, 40, 66, 90, 120, 150, 180)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := v.NextOne(0); j >= 0; j = v.NextOne(j + 1) {
		}
	}
}
