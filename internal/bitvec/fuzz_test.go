package bitvec

import (
	"testing"
)

// FuzzParseHex checks that arbitrary strings either fail cleanly or
// round-trip exactly.
func FuzzParseHex(f *testing.F) {
	f.Add("0123456789abcdef0123456789abcdef0123456789abcdef")
	f.Add("")
	f.Add("zz")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseHex(s)
		if err != nil {
			return
		}
		if v.Hex() != normalizeHex(s) {
			t.Fatalf("round trip: %q -> %q", s, v.Hex())
		}
	})
}

// normalizeHex lowercases ASCII hex digits (ParseHex accepts both cases,
// Hex emits lowercase).
func normalizeHex(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'F' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// FuzzFromBinary checks the binary decoder against the encoder.
func FuzzFromBinary(f *testing.F) {
	f.Add(make([]byte, 24))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := FromBinary(data)
		if err != nil {
			if len(data) >= Blocks*8 {
				t.Fatalf("decoder rejected sufficient input (%d bytes)", len(data))
			}
			return
		}
		enc := v.AppendBinary(nil)
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatalf("round trip differs at byte %d", i)
			}
		}
	})
}

// FuzzSubsetAlgebra derives two vectors from fuzz bytes and checks the
// subset laws the matcher depends on.
func FuzzSubsetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var va, vb Vector
		for _, x := range a {
			va.Set(int(x) % W)
		}
		for _, x := range b {
			vb.Set(int(x) % W)
		}
		if !va.And(vb).SubsetOf(va) || !va.SubsetOf(va.Or(vb)) {
			t.Fatal("lattice laws violated")
		}
		if va.SubsetOf(vb) != (va.Or(vb) == vb) {
			t.Fatal("subset inconsistent with union")
		}
		if va.SubsetOf(vb) != (va.AndNot(vb).IsZero()) {
			t.Fatal("subset inconsistent with and-not")
		}
	})
}

// FuzzLaneBlockSubset packs fuzz-derived masks into a LaneBlock and
// checks the bit-sliced subset test against the scalar SubsetOf for
// every lane.
func FuzzLaneBlockSubset(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4}, []byte{5, 6})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{255, 0, 63, 64, 128, 191})
	f.Fuzz(func(t *testing.T, maskBytes, qBytes []byte) {
		// Each run of up to 8 bytes defines one mask (bit positions mod W);
		// at most 64 lanes.
		var lb LaneBlock
		var masks []Vector
		for i := 0; i < len(maskBytes) && len(masks) < 64; i += 8 {
			var m Vector
			for _, x := range maskBytes[i:min(i+8, len(maskBytes))] {
				m.Set(int(x) % W)
			}
			lb.SetLane(len(masks), m)
			masks = append(masks, m)
		}
		var q Vector
		for _, x := range qBytes {
			q.Set(int(x) % W)
		}
		var want uint64
		for l, m := range masks {
			if m.SubsetOf(q) {
				want |= 1 << uint(l)
			}
		}
		if got := lb.SubsetLanes(q); got != want {
			t.Fatalf("SubsetLanes = %#x, scalar = %#x (q=%s)", got, want, q.Hex())
		}
	})
}
