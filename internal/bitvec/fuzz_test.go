package bitvec

import (
	"testing"
)

// FuzzParseHex checks that arbitrary strings either fail cleanly or
// round-trip exactly.
func FuzzParseHex(f *testing.F) {
	f.Add("0123456789abcdef0123456789abcdef0123456789abcdef")
	f.Add("")
	f.Add("zz")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseHex(s)
		if err != nil {
			return
		}
		if v.Hex() != normalizeHex(s) {
			t.Fatalf("round trip: %q -> %q", s, v.Hex())
		}
	})
}

// normalizeHex lowercases ASCII hex digits (ParseHex accepts both cases,
// Hex emits lowercase).
func normalizeHex(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'F' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// FuzzFromBinary checks the binary decoder against the encoder.
func FuzzFromBinary(f *testing.F) {
	f.Add(make([]byte, 24))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := FromBinary(data)
		if err != nil {
			if len(data) >= Blocks*8 {
				t.Fatalf("decoder rejected sufficient input (%d bytes)", len(data))
			}
			return
		}
		enc := v.AppendBinary(nil)
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatalf("round trip differs at byte %d", i)
			}
		}
	})
}

// FuzzSubsetAlgebra derives two vectors from fuzz bytes and checks the
// subset laws the matcher depends on.
func FuzzSubsetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var va, vb Vector
		for _, x := range a {
			va.Set(int(x) % W)
		}
		for _, x := range b {
			vb.Set(int(x) % W)
		}
		if !va.And(vb).SubsetOf(va) || !va.SubsetOf(va.Or(vb)) {
			t.Fatal("lattice laws violated")
		}
		if va.SubsetOf(vb) != (va.Or(vb) == vb) {
			t.Fatal("subset inconsistent with union")
		}
		if va.SubsetOf(vb) != (va.AndNot(vb).IsZero()) {
			t.Fatal("subset inconsistent with and-not")
		}
	})
}
