// Package bitvec implements fixed-width 192-bit vectors used as the
// underlying representation of Bloom-filter set signatures in TagMatch.
//
// A vector is stored as three 64-bit blocks, so the fundamental subset
// check B1 ⊆ B2 compiles down to three AND-NOT block operations, exactly
// as in the paper (§3.2, footnote 4).
//
// Bit numbering follows the paper's convention: bit 0 is the leftmost bit,
// i.e. the most significant bit of block 0, and bit 191 is the rightmost
// (least significant bit of block 2). "Leftmost one-bit" therefore means
// the smallest set bit position, which is what the partition table of
// Algorithm 2 indexes on.
package bitvec

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// W is the width of a vector in bits.
const W = 192

// Blocks is the number of 64-bit blocks per vector.
const Blocks = W / 64

// Vector is a fixed-width bit vector of W bits.
//
// The zero value is the empty vector (all bits zero). Vector is a value
// type: assignment copies, and == compares contents, which makes it usable
// directly as a map key.
type Vector [Blocks]uint64

// blockOf returns the block index and the in-block mask for bit position i.
// Position 0 is the MSB of block 0.
func blockOf(i int) (int, uint64) {
	return i >> 6, 1 << (63 - uint(i&63))
}

// Set sets bit i and returns the receiver for chaining-free convenience.
func (v *Vector) Set(i int) {
	b, m := blockOf(i)
	v[b] |= m
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	b, m := blockOf(i)
	v[b] &^= m
}

// Test reports whether bit i is set.
func (v Vector) Test(i int) bool {
	b, m := blockOf(i)
	return v[b]&m != 0
}

// IsZero reports whether no bit is set.
func (v Vector) IsZero() bool {
	return v[0]|v[1]|v[2] == 0
}

// SubsetOf reports whether every bit set in v is also set in q.
// This is the three-block operation at the heart of TagMatch:
// (v[k] &^ q[k]) == 0 for every block k.
func (v Vector) SubsetOf(q Vector) bool {
	return v[0]&^q[0] == 0 && v[1]&^q[1] == 0 && v[2]&^q[2] == 0
}

// Contains reports whether v is a superset of s (s ⊆ v).
func (v Vector) Contains(s Vector) bool {
	return s.SubsetOf(v)
}

// AndNotIsZero reports whether v &^ w == 0, i.e. v ⊆ w, without
// materializing the intermediate vector. Semantically identical to
// SubsetOf; named for call sites that previously built v.AndNot(w) and
// tested IsZero on the hot path.
func AndNotIsZero(v, w Vector) bool {
	return (v[0]&^w[0])|(v[1]&^w[1])|(v[2]&^w[2]) == 0
}

// PrefixSubsetOf reports whether v.Prefix(n) ⊆ q without materializing
// the prefix vector — the fused form of the per-block pre-filter test
// (Algorithm 4), which runs once per (block, query) on the match hot
// path.
func (v Vector) PrefixSubsetOf(n int, q Vector) bool {
	if n <= 0 {
		return true
	}
	if n >= W {
		return v.SubsetOf(q)
	}
	var acc uint64
	full := n >> 6
	for b := 0; b < full; b++ {
		acc |= v[b] &^ q[b]
	}
	if rem := uint(n & 63); rem != 0 {
		acc |= v[full] &^ (^uint64(0) >> rem) &^ q[full]
	}
	return acc == 0
}

// Or returns the bitwise union of v and w.
func (v Vector) Or(w Vector) Vector {
	return Vector{v[0] | w[0], v[1] | w[1], v[2] | w[2]}
}

// And returns the bitwise intersection of v and w.
func (v Vector) And(w Vector) Vector {
	return Vector{v[0] & w[0], v[1] & w[1], v[2] & w[2]}
}

// AndNot returns v with every bit of w cleared (v &^ w).
func (v Vector) AndNot(w Vector) Vector {
	return Vector{v[0] &^ w[0], v[1] &^ w[1], v[2] &^ w[2]}
}

// Xor returns the bitwise symmetric difference of v and w.
func (v Vector) Xor(w Vector) Vector {
	return Vector{v[0] ^ w[0], v[1] ^ w[1], v[2] ^ w[2]}
}

// OnesCount returns the number of set bits (population count).
func (v Vector) OnesCount() int {
	return bits.OnesCount64(v[0]) + bits.OnesCount64(v[1]) + bits.OnesCount64(v[2])
}

// LeftmostOne returns the position of the leftmost (lowest-index) one-bit,
// or -1 if the vector is zero. This is the index used by the partition
// table (Algorithm 2).
func (v Vector) LeftmostOne() int {
	for b := 0; b < Blocks; b++ {
		if v[b] != 0 {
			return b*64 + bits.LeadingZeros64(v[b])
		}
	}
	return -1
}

// RightmostOne returns the position of the rightmost (highest-index)
// one-bit, or -1 if the vector is zero.
func (v Vector) RightmostOne() int {
	for b := Blocks - 1; b >= 0; b-- {
		if v[b] != 0 {
			return b*64 + 63 - bits.TrailingZeros64(v[b])
		}
	}
	return -1
}

// NextOne returns the position of the first one-bit at position >= i,
// or -1 if there is none. Iterating the one-bits of a query uses this:
//
//	for j := q.NextOne(0); j >= 0; j = q.NextOne(j + 1) { ... }
func (v Vector) NextOne(i int) int {
	if i >= W {
		return -1
	}
	if i < 0 {
		i = 0
	}
	b := i >> 6
	// Mask off bits before i within its block.
	blk := v[b] & (^uint64(0) >> uint(i&63))
	for {
		if blk != 0 {
			return b*64 + bits.LeadingZeros64(blk)
		}
		b++
		if b >= Blocks {
			return -1
		}
		blk = v[b]
	}
}

// CommonPrefixLen returns the length of the longest common prefix of v and
// w, i.e. the position of the leftmost bit in which they differ (W when
// they are equal). The subset-match kernel pre-filter (Algorithm 4) uses
// this on the first and last set of a thread block.
func CommonPrefixLen(v, w Vector) int {
	for b := 0; b < Blocks; b++ {
		if x := v[b] ^ w[b]; x != 0 {
			return b*64 + bits.LeadingZeros64(x)
		}
	}
	return W
}

// Prefix returns v with all bit positions >= n cleared, i.e. the length-n
// prefix of v padded with zeros.
func (v Vector) Prefix(n int) Vector {
	if n <= 0 {
		return Vector{}
	}
	if n >= W {
		return v
	}
	var out Vector
	full := n >> 6
	for b := 0; b < full; b++ {
		out[b] = v[b]
	}
	if rem := uint(n & 63); rem != 0 {
		out[full] = v[full] &^ (^uint64(0) >> rem)
	}
	return out
}

// Compare returns -1, 0, or +1 comparing v and w lexicographically by bit
// position (equivalently: as 192-bit big-endian unsigned integers). The
// tagset table stores sets in this order so that a thread block's sets
// share long prefixes.
func Compare(v, w Vector) int {
	for b := 0; b < Blocks; b++ {
		switch {
		case v[b] < w[b]:
			return -1
		case v[b] > w[b]:
			return 1
		}
	}
	return 0
}

// Less reports whether v sorts before w in lexicographic bit order.
func Less(v, w Vector) bool { return Compare(v, w) < 0 }

// Ones returns the positions of all one-bits in increasing order.
// The result is appended to dst, which may be nil.
func (v Vector) Ones(dst []int) []int {
	for b := 0; b < Blocks; b++ {
		blk := v[b]
		for blk != 0 {
			i := bits.LeadingZeros64(blk)
			dst = append(dst, b*64+i)
			blk &^= 1 << (63 - uint(i))
		}
	}
	return dst
}

// String renders the vector as a 192-character binary string, bit 0 first.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(W)
	for b := 0; b < Blocks; b++ {
		fmt.Fprintf(&sb, "%064b", v[b])
	}
	return sb.String()
}

// Hex renders the vector as 48 hexadecimal digits, block 0 first.
func (v Vector) Hex() string {
	return fmt.Sprintf("%016x%016x%016x", v[0], v[1], v[2])
}

// FromOnes builds a vector from a list of bit positions.
// It panics if a position is out of range; use New for validated input.
func FromOnes(positions ...int) Vector {
	var v Vector
	for _, p := range positions {
		if p < 0 || p >= W {
			panic(fmt.Sprintf("bitvec: position %d out of range [0,%d)", p, W))
		}
		v.Set(p)
	}
	return v
}

// ErrBadHex reports a malformed hexadecimal encoding passed to ParseHex.
var ErrBadHex = errors.New("bitvec: malformed hex vector")

// ParseHex parses the 48-digit hexadecimal form produced by Hex.
func ParseHex(s string) (Vector, error) {
	var v Vector
	if len(s) != W/4 {
		return v, fmt.Errorf("%w: want %d hex digits, got %d", ErrBadHex, W/4, len(s))
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return Vector{}, fmt.Errorf("%w: invalid digit %q at %d", ErrBadHex, c, i)
		}
		v[i/16] = v[i/16]<<4 | d
	}
	return v, nil
}

// AppendBinary appends the 24-byte big-endian binary encoding of v to dst.
func (v Vector) AppendBinary(dst []byte) []byte {
	for b := 0; b < Blocks; b++ {
		x := v[b]
		dst = append(dst,
			byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
			byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return dst
}

// FromBinary decodes a vector from the 24-byte encoding of AppendBinary.
func FromBinary(src []byte) (Vector, error) {
	var v Vector
	if len(src) < Blocks*8 {
		return v, fmt.Errorf("bitvec: short binary encoding: %d bytes", len(src))
	}
	for b := 0; b < Blocks; b++ {
		off := b * 8
		v[b] = uint64(src[off])<<56 | uint64(src[off+1])<<48 |
			uint64(src[off+2])<<40 | uint64(src[off+3])<<32 |
			uint64(src[off+4])<<24 | uint64(src[off+5])<<16 |
			uint64(src[off+6])<<8 | uint64(src[off+7])
	}
	return v, nil
}
