// Package trie implements the CPU-only baseline of the paper's
// evaluation: a Patricia (path-compressed binary) trie over 192-bit
// Bloom-filter signatures that answers subset-match queries by pruned
// depth-first traversal.
//
// This is the paper's "prefix tree" subject (§4.1): a main-memory matcher
// representative of state-of-the-art trie-based subset-matching
// algorithms (Rivest's prefix tree, PTSJ of Luo et al.). A stored vector
// v matches a query q when v ⊆ q; the trie prunes a whole subtree as soon
// as the subtree's common prefix contains a one-bit absent from q.
//
// The matcher is immutable-after-Build and safe for concurrent Match
// calls from any number of goroutines.
package trie

import (
	"tagmatch/internal/bitvec"
)

// Key is the application value associated with a stored set.
type Key = uint32

// node is a Patricia trie node. Internal nodes (pos < bitvec.W) hold the
// common prefix of their subtree (bits >= pos cleared) and branch on bit
// pos; leaves (pos == bitvec.W) hold a complete stored vector and its
// keys.
type node struct {
	prefix bitvec.Vector
	pos    int
	child  [2]*node
	keys   []Key
}

// Matcher is a subset matcher backed by a Patricia trie.
type Matcher struct {
	root   *node
	sets   int
	keys   int
	nodes  int
	frozen bool
}

// New returns an empty matcher.
func New() *Matcher {
	return &Matcher{}
}

// Add inserts one (vector, key) association. Add must not be called
// concurrently with Match; call Freeze after the last Add.
func (m *Matcher) Add(v bitvec.Vector, key Key) {
	if m.frozen {
		panic("trie: Add after Freeze")
	}
	m.keys++
	if m.root == nil {
		m.root = &node{prefix: v, pos: bitvec.W, keys: []Key{key}}
		m.sets++
		m.nodes++
		return
	}
	cur := &m.root
	for {
		n := *cur
		d := bitvec.CommonPrefixLen(v, n.prefix)
		if d < n.pos {
			// v diverges inside this node's compressed path: split.
			leaf := &node{prefix: v, pos: bitvec.W, keys: []Key{key}}
			branch := &node{prefix: v.Prefix(d), pos: d}
			if v.Test(d) {
				branch.child[1], branch.child[0] = leaf, n
			} else {
				branch.child[0], branch.child[1] = leaf, n
			}
			*cur = branch
			m.sets++
			m.nodes += 2
			return
		}
		if n.pos == bitvec.W {
			// Exact duplicate vector: extend the key list.
			n.keys = append(n.keys, key)
			return
		}
		cur = &n.child[boolToInt(v.Test(n.pos))]
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Freeze marks the matcher read-only. Freeze is optional but catches
// accidental concurrent mutation in tests.
func (m *Matcher) Freeze() { m.frozen = true }

// Sets returns the number of distinct stored vectors.
func (m *Matcher) Sets() int { return m.sets }

// Keys returns the number of stored (vector, key) associations.
func (m *Matcher) Keys() int { return m.keys }

// MemoryBytes estimates the matcher's resident size: node structures plus
// key payloads.
func (m *Matcher) MemoryBytes() int64 {
	const nodeBytes = 24 + 8 + 16 + 24 // prefix + pos + children + keys header
	return int64(m.nodes)*nodeBytes + int64(m.keys)*4
}

// Match visits the keys of every stored vector v with v ⊆ q, once per
// (vector, key) association (the multiset semantics of match).
func (m *Matcher) Match(q bitvec.Vector, visit func(Key)) {
	if m.root == nil {
		return
	}
	// Explicit stack: deep recursion over 192 levels is cheap, but an
	// iterative walk keeps the hot loop allocation-free.
	var stack [bitvec.W + 1]*node
	top := 0
	stack[top] = m.root
	top++
	for top > 0 {
		top--
		n := stack[top]
		if !n.prefix.SubsetOf(q) {
			continue // prune: whole subtree shares a bit missing from q
		}
		if n.pos == bitvec.W {
			for _, k := range n.keys {
				visit(k)
			}
			continue
		}
		// The zero-branch never requires a bit from q.
		stack[top] = n.child[0]
		top++
		if q.Test(n.pos) {
			stack[top] = n.child[1]
			top++
		}
	}
}

// MatchUnique returns the deduplicated keys of all matching vectors.
func (m *Matcher) MatchUnique(q bitvec.Vector, visit func(Key)) {
	seen := make(map[Key]struct{})
	m.Match(q, func(k Key) {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			visit(k)
		}
	})
}

// Count returns the number of matching (vector, key) associations; a
// convenience for benchmarks that only need the match cardinality.
func (m *Matcher) Count(q bitvec.Vector) int {
	n := 0
	m.Match(q, func(Key) { n++ })
	return n
}
