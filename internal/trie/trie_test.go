package trie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
)

func randomVectors(n, tags int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bitvec.Vector, n)
	for i := range out {
		for j := 0; j < tags*7; j++ {
			out[i].Set(rng.Intn(bitvec.W))
		}
	}
	return out
}

func collect(m *Matcher, q bitvec.Vector, unique bool) []Key {
	var out []Key
	if unique {
		m.MatchUnique(q, func(k Key) { out = append(out, k) })
	} else {
		m.Match(q, func(k Key) { out = append(out, k) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteForce(vs []bitvec.Vector, q bitvec.Vector, unique bool) []Key {
	var out []Key
	seen := map[Key]bool{}
	for i, v := range vs {
		if v.SubsetOf(q) {
			k := Key(i)
			if unique {
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalKeys(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyMatcher(t *testing.T) {
	m := New()
	if got := collect(m, bitvec.FromOnes(1, 2, 3), false); len(got) != 0 {
		t.Fatalf("empty matcher returned %v", got)
	}
	if m.Sets() != 0 || m.Keys() != 0 {
		t.Fatal("counters non-zero on empty matcher")
	}
}

func TestSingleVector(t *testing.T) {
	m := New()
	v := bitvec.FromOnes(5, 70, 150)
	m.Add(v, 42)
	m.Freeze()
	if got := collect(m, v, false); !equalKeys(got, []Key{42}) {
		t.Fatalf("self-match failed: %v", got)
	}
	super := v.Or(bitvec.FromOnes(9))
	if got := collect(m, super, false); !equalKeys(got, []Key{42}) {
		t.Fatalf("superset match failed: %v", got)
	}
	sub := bitvec.FromOnes(5, 70)
	if got := collect(m, sub, false); len(got) != 0 {
		t.Fatalf("subset query should not match: %v", got)
	}
}

func TestDuplicateVectorsAccumulateKeys(t *testing.T) {
	m := New()
	v := bitvec.FromOnes(1, 2)
	m.Add(v, 1)
	m.Add(v, 2)
	m.Add(v, 3)
	if m.Sets() != 1 || m.Keys() != 3 {
		t.Fatalf("Sets=%d Keys=%d", m.Sets(), m.Keys())
	}
	if got := collect(m, v, false); !equalKeys(got, []Key{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyVectorMatchesEverything(t *testing.T) {
	m := New()
	m.Add(bitvec.Vector{}, 9)
	m.Add(bitvec.FromOnes(3), 10)
	if got := collect(m, bitvec.FromOnes(100), false); !equalKeys(got, []Key{9}) {
		t.Fatalf("empty stored vector should match any query: %v", got)
	}
	if got := collect(m, bitvec.Vector{}, false); !equalKeys(got, []Key{9}) {
		t.Fatalf("empty query should match only the empty vector: %v", got)
	}
}

func TestMatchAgainstBruteForce(t *testing.T) {
	vs := randomVectors(5000, 5, 61)
	m := New()
	for i, v := range vs {
		m.Add(v, Key(i))
	}
	m.Freeze()
	queries := randomVectors(200, 9, 62)
	// Also query supersets of stored vectors to guarantee hits.
	for i := 0; i < 100; i++ {
		queries = append(queries, vs[i*13%len(vs)].Or(queries[i]))
	}
	for _, q := range queries {
		got := collect(m, q, false)
		want := bruteForce(vs, q, false)
		if !equalKeys(got, want) {
			t.Fatalf("query %s: got %d keys, want %d", q.Hex(), len(got), len(want))
		}
	}
}

func TestMatchUniqueDedups(t *testing.T) {
	m := New()
	m.Add(bitvec.FromOnes(1), 7)
	m.Add(bitvec.FromOnes(2), 7)
	m.Add(bitvec.FromOnes(3), 8)
	q := bitvec.FromOnes(1, 2, 3)
	if got := collect(m, q, false); !equalKeys(got, []Key{7, 7, 8}) {
		t.Fatalf("match: %v", got)
	}
	if got := collect(m, q, true); !equalKeys(got, []Key{7, 8}) {
		t.Fatalf("match-unique: %v", got)
	}
}

func TestCount(t *testing.T) {
	m := New()
	m.Add(bitvec.FromOnes(1), 1)
	m.Add(bitvec.FromOnes(1, 2), 2)
	m.Add(bitvec.FromOnes(50), 3)
	if got := m.Count(bitvec.FromOnes(1, 2)); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	m := New()
	m.Add(bitvec.FromOnes(1), 1)
	m.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze should panic")
		}
	}()
	m.Add(bitvec.FromOnes(2), 2)
}

func TestMemoryBytesGrows(t *testing.T) {
	m := New()
	before := m.MemoryBytes()
	for i, v := range randomVectors(1000, 5, 63) {
		m.Add(v, Key(i))
	}
	if m.MemoryBytes() <= before {
		t.Fatal("MemoryBytes did not grow")
	}
}

func TestWithBloomSignatures(t *testing.T) {
	// End-to-end through real tag hashing: interests must match their
	// own tweets plus supersets.
	m := New()
	interests := [][]string{
		{"go", "gpu"},
		{"rust"},
		{"go", "gpu", "simd"},
	}
	for i, tags := range interests {
		m.Add(bloom.Signature(tags), Key(i))
	}
	q := bloom.Signature([]string{"go", "gpu", "eurosys"})
	got := collect(m, q, false)
	if !equalKeys(got, []Key{0}) {
		t.Fatalf("got %v, want [0]", got)
	}
	q2 := bloom.Signature([]string{"go", "gpu", "simd", "x"})
	if got := collect(m, q2, false); !equalKeys(got, []Key{0, 2}) {
		t.Fatalf("got %v, want [0 2]", got)
	}
}

// Property: trie results always equal brute force on random databases.
func TestQuickTrieEquivalence(t *testing.T) {
	f := func(raw []bitvec.Vector, q bitvec.Vector) bool {
		m := New()
		for i, v := range raw {
			m.Add(v, Key(i))
		}
		return equalKeys(collect(m, q, false), bruteForce(raw, q, false))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every stored vector matches a query equal to itself and any
// superset of itself.
func TestQuickSelfAndSupersetMatch(t *testing.T) {
	f := func(raw []bitvec.Vector, extra bitvec.Vector) bool {
		m := New()
		for i, v := range raw {
			m.Add(v, Key(i))
		}
		for i, v := range raw {
			found := false
			m.Match(v.Or(extra), func(k Key) {
				if k == Key(i) {
					found = true
				}
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMatch(t *testing.T) {
	vs := randomVectors(2000, 5, 64)
	m := New()
	for i, v := range vs {
		m.Add(v, Key(i))
	}
	m.Freeze()
	queries := randomVectors(64, 9, 65)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for _, q := range queries {
				got := collect(m, q, false)
				want := bruteForce(vs, q, false)
				done <- equalKeys(got, want)
			}
		}()
	}
	for i := 0; i < 8*len(queries); i++ {
		if !<-done {
			t.Fatal("concurrent match mismatch")
		}
	}
}

func BenchmarkTrieMatch(b *testing.B) {
	vs := randomVectors(100000, 5, 66)
	m := New()
	for i, v := range vs {
		m.Add(v, Key(i))
	}
	m.Freeze()
	queries := randomVectors(1024, 8, 67)
	for i := range queries {
		queries[i] = queries[i].Or(vs[i*31%len(vs)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(queries[i&1023])
	}
}
