package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
)

// PipelineCell is one measured configuration of the dispatch-pipeline
// matrix: a stream depth (1 = the synchronous ablation baseline,
// 2 = even/odd double buffering) crossed with the per-device query
// window on or off.
type PipelineCell struct {
	Config      string `json:"config"` // e.g. "depth2_window_on"
	StreamDepth int    `json:"stream_depth"`
	WindowOn    bool   `json:"window_on"`

	QPS              float64 `json:"qps"`
	KeysPS           float64 `json:"keys_ps"`
	Keys             int64   `json:"keys"`
	P50Us            float64 `json:"p50_us"`
	P99Us            float64 `json:"p99_us"`
	H2DBytesPerQuery float64 `json:"h2d_bytes_per_query"`
	OverlapFraction  float64 `json:"overlap_fraction"`

	WindowHits          int64 `json:"window_hits"`
	WindowMisses        int64 `json:"window_misses"`
	WindowEvictions     int64 `json:"window_evictions"`
	WindowFallbacks     int64 `json:"window_fallbacks"`
	PipelinedDispatches int64 `json:"pipelined_dispatches"`
}

// PipelineResult is the JSON shape of the pipeline experiment
// (BENCH_pipeline.json): the depth × window matrix plus the derived
// metrics the CI gate asserts on. H2DReduction is the headline number
// — query-payload H2D bytes per submitted query with the window off
// over with it on, at the pipelined depth (the gate requires >= 2):
// a query routed to k partitions re-uploads its 24-byte signature k
// times without the window, but only k 4-byte ring indices with it.
// ResultsMatch asserts all four cells produced the identical total
// match output, and ThroughputRatio that the pipelined configuration
// is no slower than the depth-1 dense-upload baseline.
type PipelineResult struct {
	Cells []PipelineCell `json:"cells"`

	H2DReduction    float64 `json:"h2d_reduction"`
	ThroughputRatio float64 `json:"throughput_ratio"`
	OverlapGain     float64 `json:"overlap_gain"`
	P99Ratio        float64 `json:"p99_ratio"`
	ResultsMatch    bool    `json:"pipeline_results_match"`

	Queries         int   `json:"queries"`
	DistinctQueries int   `json:"distinct_queries"`
	PipelinedDepth  int   `json:"pipelined_depth"`
	WindowCapacity  int   `json:"window_capacity"`
	GPUs            int   `json:"gpus"`
	Threads         int   `json:"threads"`
	Seed            int64 `json:"seed"`
}

// pipelineInflight bounds the closed measurement loop: deep enough to
// keep every stream slot of every device busy, shallow enough that the
// latency percentiles measure service time plus bounded queueing
// rather than an arbitrary backlog. pipelineBatchTimeout turns the
// batch flusher on — a bounded closed loop leaves the last partial
// batches waiting for traffic that cannot arrive until they complete,
// so they must age out on the timeout.
const (
	pipelineInflight     = 64
	pipelineBatchTimeout = time.Millisecond
)

// Pipeline measures what the double-buffered stream slots and the
// per-device query window buy on the dispatch hot path (the copy tax
// of §3.2's stream pipeline, paper Fig. 5): the same query stream runs
// through the 2x2 matrix of stream depth {1, pipelined} × query window
// {off, on}, and each cell records throughput, latency percentiles,
// query-payload H2D bytes per submitted query, and the device
// copy/compute overlap fraction.
//
// The query stream cycles a fixed set of distinct signatures — the
// recurring-subscriber shape the window exploits — so after the first
// cycle the window-on cells run at steady-state hit rate and the
// bytes-per-query gap is the 24-byte signature vs the 4-byte ring
// index, times the per-query partition fan-out.
func Pipeline(p Params) (*Table, *PipelineResult) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)

	distinct := min(p.Queries, 2048)
	if distinct < 1 {
		distinct = 1
	}
	queries := ds.Queries(distinct, 0.5, -1, p.Seed+5000)

	depth := p.StreamDepth
	if depth < 2 {
		depth = 2
	}

	r := &PipelineResult{
		Queries:         p.Queries,
		DistinctQueries: distinct,
		PipelinedDepth:  depth,
		GPUs:            p.GPUs,
		Threads:         p.Threads,
		Seed:            p.Seed,
	}

	cells := []struct {
		depth    int
		windowOn bool
	}{
		{1, false}, // synchronous dense-upload baseline (the ablation)
		{1, true},
		{depth, false},
		{depth, true}, // the shipping configuration
	}
	for _, c := range cells {
		cell, winCap := runPipelineCell(p, sigs, keys, queries, c.depth, c.windowOn)
		if c.windowOn && winCap > r.WindowCapacity {
			r.WindowCapacity = winCap
		}
		r.Cells = append(r.Cells, cell)
	}

	base := &r.Cells[0]    // depth 1, window off
	denseD := &r.Cells[2]  // pipelined depth, window off
	windowD := &r.Cells[3] // pipelined depth, window on
	if windowD.H2DBytesPerQuery > 0 {
		r.H2DReduction = denseD.H2DBytesPerQuery / windowD.H2DBytesPerQuery
	}
	if base.QPS > 0 {
		r.ThroughputRatio = windowD.QPS / base.QPS
	}
	r.OverlapGain = windowD.OverlapFraction - base.OverlapFraction
	if base.P99Us > 0 {
		r.P99Ratio = windowD.P99Us / base.P99Us
	}
	r.ResultsMatch = true
	for _, c := range r.Cells[1:] {
		if c.Keys != base.Keys {
			r.ResultsMatch = false
		}
	}

	t := &Table{
		ID:    "pipeline",
		Title: "Dispatch pipeline: stream depth x query window",
		Cols:  []string{"qps", "keys/s", "h2d B/query", "overlap", "p99 ms"},
	}
	for _, c := range r.Cells {
		t.Add(c.Config, c.QPS, c.KeysPS, c.H2DBytesPerQuery, c.OverlapFraction, c.P99Us/1e3)
	}
	t.Note("h2d bytes/query reduction (window off vs on, depth %d): %.1fx", depth, r.H2DReduction)
	t.Note("throughput ratio (depth %d + window vs depth 1 dense): %.2f; overlap gain %.3f; p99 ratio %.2f",
		depth, r.ThroughputRatio, r.OverlapGain, r.P99Ratio)
	t.Note("window hits=%d misses=%d evictions=%d fallbacks=%d; pipelined dispatches=%d",
		windowD.WindowHits, windowD.WindowMisses, windowD.WindowEvictions,
		windowD.WindowFallbacks, windowD.PipelinedDispatches)
	if r.ResultsMatch {
		t.Note("exactness: all four cells matched %d keys", base.Keys)
	} else {
		t.Note("EXACTNESS VIOLATION: per-cell keys %v", cellKeys(r.Cells))
	}
	return t, r
}

func cellKeys(cells []PipelineCell) []int64 {
	out := make([]int64, len(cells))
	for i, c := range cells {
		out[i] = c.Keys
	}
	return out
}

// runPipelineCell builds an engine at one (depth, window) point, runs a
// full warmup cycle over the distinct query set (filling the window so
// the measured pass sees the steady state), and then drives the paced
// closed loop recording per-query latency and the stream-counter
// deltas. Returns the cell and the engine's effective window capacity.
func runPipelineCell(p Params, sigs []bitvec.Vector, keys []core.Key, queries []bitvec.Vector, depth int, windowOn bool) (PipelineCell, int) {
	var winCap int
	eng, devs, err := BuildEngine(EngineSpec{
		Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs,
		Mutate: func(cfg *core.Config) {
			cfg.BatchTimeout = pipelineBatchTimeout
			cfg.StreamDepth = depth
			cfg.DisableQueryWindow = !windowOn
			if p.QueryWindow > 0 {
				cfg.QueryWindow = p.QueryWindow
			}
			// Mirror applyDefaults so the result can echo the ring size.
			winCap = cfg.QueryWindow
			if winCap <= 0 {
				winCap = 16 * cfg.BatchSize
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer func() {
		eng.Close()
		closeDevices(devs)
	}()

	// One full cycle over the distinct set as warmup: allocator and
	// scheduler transients settle, and with the window on every
	// signature is resident before the clock starts.
	var warmWg sync.WaitGroup
	warmWg.Add(len(queries))
	for _, q := range queries {
		if err := eng.SubmitSignature(q, false, func(core.MatchResult) {
			warmWg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	warmWg.Wait()

	st0 := eng.Stats()
	over0 := make([]gpu.OverlapStats, len(devs))
	for i, d := range devs {
		over0[i] = d.OverlapStats()
	}

	n := p.Queries
	sem := make(chan struct{}, pipelineInflight)
	lat := make([]time.Duration, n)
	starts := make([]time.Time, n)
	var matched int64
	var wg sync.WaitGroup
	wg.Add(n)
	begin := time.Now()
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		i := i
		starts[i] = time.Now()
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(res core.MatchResult) {
			lat[i] = time.Since(starts[i])
			atomic.AddInt64(&matched, int64(len(res.Keys)))
			<-sem
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	el := time.Since(begin)

	st1 := eng.Stats()
	var kernelNs, overlapNs int64
	for i, d := range devs {
		ov := d.OverlapStats()
		kernelNs += ov.KernelNs - over0[i].KernelNs
		overlapNs += ov.OverlapNs - over0[i].OverlapNs
	}

	cell := PipelineCell{
		Config:      fmt.Sprintf("depth%d_window_%s", depth, onOff(windowOn)),
		StreamDepth: depth,
		WindowOn:    windowOn,

		QPS:    float64(n) / el.Seconds(),
		KeysPS: float64(matched) / el.Seconds(),
		Keys:   matched,
		P50Us:  quantileUs(lat, 0.50),
		P99Us:  quantileUs(lat, 0.99),

		WindowHits:          st1.WindowHits - st0.WindowHits,
		WindowMisses:        st1.WindowMisses - st0.WindowMisses,
		WindowEvictions:     st1.WindowEvictions - st0.WindowEvictions,
		WindowFallbacks:     st1.WindowFallbacks - st0.WindowFallbacks,
		PipelinedDispatches: st1.PipelinedDispatches - st0.PipelinedDispatches,
	}
	cell.H2DBytesPerQuery = float64(st1.H2DQueryBytes-st0.H2DQueryBytes) / float64(n)
	if kernelNs > 0 {
		cell.OverlapFraction = float64(overlapNs) / float64(kernelNs)
	}
	return cell, winCap
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// WriteJSON writes the result as indented JSON.
func (r *PipelineResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
