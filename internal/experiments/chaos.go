package experiments

import (
	"encoding/json"
	"io"

	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
)

// ChaosResult is the JSON shape of the chaos experiment
// (BENCH_chaos.json): the same query stream measured on a healthy
// engine and on one with injected GPU faults plus a mid-run device
// death, with the fault-tolerance counters from the degraded run.
// ResultsMatch asserts the headline robustness property: the degraded
// engine produced exactly as many matched keys as the healthy one.
type ChaosResult struct {
	QPSHealthy  float64 `json:"qps_healthy"`
	QPSFaulty   float64 `json:"qps_faulty"`
	SlowdownPct float64 `json:"slowdown_pct"`

	KeysHealthy  int64 `json:"keys_healthy"`
	KeysFaulty   int64 `json:"keys_faulty"`
	ResultsMatch bool  `json:"results_match"`

	GPUFaults         int64 `json:"gpu_faults"`
	BatchRetries      int64 `json:"batch_retries"`
	CPUFallbacks      int64 `json:"cpu_fallbacks"`
	DeviceQuarantines int64 `json:"device_quarantines"`
	DeviceDied        bool  `json:"device_died"`

	Queries int   `json:"queries"`
	GPUs    int   `json:"gpus"`
	Threads int   `json:"threads"`
	Seed    int64 `json:"seed"`
}

// Chaos measures the throughput cost of fault-tolerant dispatch under
// sustained injected faults: one device is scripted to die mid-run and
// every surviving device fails 5% of copies and launches (seeded, so
// the run is reproducible). Failed batches retry once on another
// device and then re-run on the CPU, so the degraded engine must
// produce exactly the healthy engine's results — the experiment
// records both throughputs, the relative slowdown, and the fault
// counters that show the degradation ladder actually engaged.
//
// Negative slowdown is possible at small scales: the experiment runs
// with the simulator's calibrated kernel-launch and PCIe-copy costs,
// and the CPU re-run path pays neither, so a mostly-CPU degraded run
// can out-pace the simulated devices it replaced. The robustness claim
// is ResultsMatch, not the sign of the throughput delta.
func Chaos(p Params) (*Table, *ChaosResult) {
	gpus := p.GPUs
	if gpus < 2 {
		gpus = 2 // need a victim device and a survivor
	}
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)
	queries := ds.Queries(4096, 0.5, -1, p.Seed+3000)

	build := func() (eng *engineHandle) {
		e, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: gpus,
			MaxP: ds.BaseMaxP(),
		})
		if err != nil {
			panic(err)
		}
		return &engineHandle{e, devs}
	}

	healthy := build()
	h := MeasureEngine(healthy.eng, queries, p.Queries, false)
	healthy.close()

	faulty := build()
	// Device 0 dies a few thousand ops in — early enough that most of
	// the run happens one device down. The survivors drop 5% of copies
	// and launches for the whole run.
	faulty.devs[0].SetFaultPlan(&gpu.FaultPlan{Seed: p.Seed, DieAtOp: 2000})
	for _, d := range faulty.devs[1:] {
		d.SetFaultPlan(&gpu.FaultPlan{
			Seed:           p.Seed,
			CopyFailProb:   0.05,
			LaunchFailProb: 0.05,
		})
	}
	f := MeasureEngine(faulty.eng, queries, p.Queries, false)
	st := faulty.eng.Stats()
	died := faulty.devs[0].Dead()
	faulty.close()

	r := &ChaosResult{
		QPSHealthy:   h.QPS,
		QPSFaulty:    f.QPS,
		SlowdownPct:  (h.QPS - f.QPS) / h.QPS * 100,
		KeysHealthy:  h.Keys,
		KeysFaulty:   f.Keys,
		ResultsMatch: h.Keys == f.Keys,

		GPUFaults:         st.GPUFaults,
		BatchRetries:      st.BatchRetries,
		CPUFallbacks:      st.CPUFallbacks,
		DeviceQuarantines: st.DeviceQuarantines,
		DeviceDied:        died,

		Queries: p.Queries,
		GPUs:    gpus,
		Threads: p.Threads,
		Seed:    p.Seed,
	}

	t := &Table{
		ID:    "chaos",
		Title: "Throughput under injected GPU faults (K queries/s)",
		Cols:  []string{"throughput"},
	}
	t.Add("healthy", r.QPSHealthy/1e3)
	t.Add("faulty (1 dead GPU, 5% op faults)", r.QPSFaulty/1e3)
	t.Note("slowdown: %.1f%%; faults=%d retries=%d cpu_fallbacks=%d quarantines=%d",
		r.SlowdownPct, r.GPUFaults, r.BatchRetries, r.CPUFallbacks, r.DeviceQuarantines)
	if r.ResultsMatch {
		t.Note("matched keys identical across runs (%d)", r.KeysHealthy)
	} else {
		t.Note("RESULT MISMATCH: healthy=%d faulty=%d keys", r.KeysHealthy, r.KeysFaulty)
	}
	return t, r
}

// engineHandle pairs an engine with its devices for joint teardown.
type engineHandle struct {
	eng  *core.Engine
	devs []*gpu.Device
}

func (h *engineHandle) close() {
	h.eng.Close()
	closeDevices(h.devs)
}

// WriteJSON writes the result as indented JSON.
func (r *ChaosResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
