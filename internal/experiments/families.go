package experiments

import (
	"math/rand"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/core"
	"tagmatch/internal/hashsub"
	"tagmatch/internal/icn"
	"tagmatch/internal/inverted"
	"tagmatch/internal/trie"
	"tagmatch/internal/workload"
)

// Families compares the algorithm families of the paper's introduction
// on one workload:
//
//   - database iteration with signature shortcuts: the Patricia prefix
//     tree and the compressed ICN trie (§1's "check sets one by one ...
//     use an index to take shortcuts");
//   - query-subset iteration: Rivest's hash-table matcher, exponential
//     in query width but independent of database size;
//   - inverted-index counting (Yan & Garcia-Molina), exact and linear in
//     touched postings;
//   - TagMatch's partitioned hybrid.
//
// The paper argues no pure family wins everywhere — this experiment
// makes the trade-off measurable: the hash-table matcher collapses with
// query width while the scan-based matchers collapse with database size.
func Families(p Params) *Table {
	t := &Table{
		ID:    "families",
		Title: "algorithm families, match throughput (K queries/s)",
		Cols:  []string{"narrow (+2)", "mid (+5)", "wide (+8)"},
	}
	extras := []int{2, 5, 8}

	// String-level workload: the exact matchers need real tags.
	users := int(float64(paperUsers) * p.Scale / 4)
	if users < 2000 {
		users = 2000
	}
	gen, err := workload.New(workload.NewConfig(users, p.Seed+77))
	if err != nil {
		panic(err)
	}
	var interests []workload.Interest
	gen.Generate(users, func(in workload.Interest) { interests = append(interests, in) })

	// Build all five matchers over the same interests.
	tr := trie.New()
	ib := icn.NewBuilder()
	inv := inverted.New()
	hs := hashsub.New()
	var sigs []bitvec.Vector
	var keys []core.Key
	for _, in := range interests {
		sig := bloom.Signature(in.Tags)
		tr.Add(sig, in.User)
		ib.Add(sig, in.User)
		inv.Add(in.Tags, in.User)
		hs.Add(in.Tags, in.User)
		sigs = append(sigs, sig)
		keys = append(keys, core.Key(in.User))
	}
	tr.Freeze()
	im := ib.Build()
	inv.Freeze()
	hs.Freeze()

	eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	defer closeDevices(devs)

	rng := rand.New(rand.NewSource(p.Seed + 78))
	rows := map[string][]float64{}
	for _, e := range extras {
		// String queries and their signatures, same construction.
		qTags := make([][]string, 1024)
		qSigs := make([]bitvec.Vector, len(qTags))
		for i := range qTags {
			qTags[i] = gen.Query(rng, interests[rng.Intn(len(interests))].Tags, e)
			qSigs[i] = bloom.Signature(qTags[i])
		}

		rows["TagMatch"] = append(rows["TagMatch"],
			MeasureEngine(eng, qSigs, p.Queries/2, false).QPS/1e3)
		rows["Prefix tree"] = append(rows["Prefix tree"],
			MeasureMatcher(matcherAdapter{tr}, qSigs, 2000, p.Threads, false).QPS/1e3)
		rows["ICN matcher"] = append(rows["ICN matcher"],
			MeasureMatcher(matcherAdapter{im}, qSigs, 2000, p.Threads, false).QPS/1e3)
		rows["Inverted counting"] = append(rows["Inverted counting"],
			measureStringMatcher(func(q []string, visit func(uint32)) {
				inv.Match(q, visit)
			}, qTags, 2000).QPS/1e3)
		rows["Hash-table subsets"] = append(rows["Hash-table subsets"],
			measureStringMatcher(func(q []string, visit func(uint32)) {
				if err := hs.Match(q, visit); err != nil {
					panic(err)
				}
			}, qTags, 400).QPS/1e3)
	}
	for _, label := range []string{"TagMatch", "Prefix tree", "ICN matcher", "Inverted counting", "Hash-table subsets"} {
		t.Add(label, rows[label]...)
	}
	t.Add("avg query tags", avgLens(extras, interests)...)
	t.Note("database: %d interests; hash-table subset enumeration is 2^t in distinct query tags t", len(interests))
	t.Note("paper framing (§1): scan-family cost tracks database size, subset-enumeration cost tracks query width; TagMatch's partitioning is the middle road")
	return t
}

// avgLens reports the average total query width per extra-tag setting
// (base interest ≈5 tags + extras), for reading the hash-table row.
func avgLens(extras []int, interests []workload.Interest) []float64 {
	total := 0
	for _, in := range interests {
		total += len(in.Tags)
	}
	base := float64(total) / float64(len(interests))
	out := make([]float64, len(extras))
	for i, e := range extras {
		out[i] = base + float64(e)
	}
	return out
}

// measureStringMatcher times a string-level matcher single-threaded
// (they are exact CPU structures; thread scaling is covered elsewhere).
func measureStringMatcher(match func([]string, func(uint32)), queries [][]string, n int) ThroughputResult {
	for i := 0; i < min(n/8, 100); i++ {
		match(queries[i%len(queries)], func(uint32) {})
	}
	var keysN int64
	r := timeRun(func() int64 {
		for i := 0; i < n; i++ {
			match(queries[i%len(queries)], func(uint32) { keysN++ })
		}
		return keysN
	}, n)
	return r
}
