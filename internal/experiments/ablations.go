package experiments

import (
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
	"tagmatch/internal/gpuonly"
)

// AblationPipeline measures the effect of each engineered mechanism the
// paper calls out in §3.3: the thread-block pre-filter (Algorithm 4),
// the packed result layout, the double-buffered result transfer, and the
// balanced partitioning (Algorithm 1) — each toggled against the full
// configuration.
func AblationPipeline(p Params) *Table {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)
	queries := ds.Queries(4096, 0.5, -1, p.Seed+1000)

	t := &Table{
		ID:    "ablation-pipeline",
		Title: "TagMatch design ablations, match (K queries/s)",
		Cols:  []string{"throughput"},
	}

	// Large partitions (dbSize/20 instead of the throughput-optimal
	// dbSize/1000) so each spans many thread blocks: the Algorithm 4
	// pre-filter only has leverage when a block's 256 sorted sets share
	// a prefix much longer than the partition mask, which requires
	// partitions of hundreds of blocks — the regime of the paper's
	// 200K-set partitions.
	maxP := len(sigs) / 20
	if maxP < 1024 {
		maxP = 1024
	}
	run := func(label string, mutate func(*core.Config)) {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP, Mutate: mutate,
		})
		if err != nil {
			panic(err)
		}
		// Median of three runs: single-run noise on small hosts is
		// larger than some of the effects being measured.
		var qps []float64
		for rep := 0; rep < 3; rep++ {
			qps = append(qps, MeasureEngine(eng, queries, p.Queries, false).QPS)
		}
		eng.Close()
		closeDevices(devs)
		t.Add(label, SortedCopy(qps)[1]/1e3)
	}

	run("full TagMatch", nil)
	run("no block pre-filter (Alg 4 off)", func(c *core.Config) { c.DisablePrefilter = true })
	run("split output layout (2 copies)", func(c *core.Config) { c.SplitOutputLayout = true })
	run("size-then-copy result transfer", func(c *core.Config) { c.SizeThenCopy = true })
	run("first-fit partitioning (Alg 1 off)", func(c *core.Config) { c.FirstFitPartitioning = true })
	t.Note("each row toggles one mechanism against the full configuration on 50%% of the database")
	t.Note("median of 3 runs; MAX_P=%d (dbSize/20) so partitions span many thread blocks", maxP)
	t.Note("known sim bias: the packed layout's benefit is PCIe bandwidth, which the simulator prices near zero, while its byte-packing costs host CPU — expect the split-layout row to look unrealistically good here")
	return t
}

// AblationGPUOnly reproduces the §4.5 study: the dynamic-parallelism
// GPU-only architecture against hybrid TagMatch, as the fraction of
// queries surviving pre-processing grows (driven by query breadth).
func AblationGPUOnly(p Params) *Table {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.25)
	uniqueSigs, keysBySet := KeysBySet(sigs, keys)

	t := &Table{
		ID:    "ablation-gpuonly",
		Title: "GPU-only dynamic parallelism vs hybrid TagMatch (K queries/s)",
		Cols:  []string{"+2 tags", "+6 tags", "+12 tags"},
	}
	extras := []int{2, 6, 12}

	// GPU-only with device-side pre-processing (§4.5).
	dev := gpu.New(gpu.Config{Workers: simWorkersPerGPU(1), Cost: gpu.DefaultCost})
	maxP := len(uniqueSigs) / 100
	if maxP < 64 {
		maxP = 64
	}
	dp, err := gpuonly.NewDynPar(dev, uniqueSigs, keysBySet, maxP, 256, 1<<20)
	if err != nil {
		panic(err)
	}
	var dpVals []float64
	for _, e := range extras {
		queries := ds.Queries(2048, 0.25, e, p.Seed+1100+int64(e))
		n := 2048
		start := time.Now()
		for off := 0; off < n; off += 256 {
			batch := make([]bitvec.Vector, 0, 256)
			for i := off; i < off+256; i++ {
				batch = append(batch, queries[i%len(queries)])
			}
			dp.MatchBatch(batch, func(int, uint32) {})
		}
		dpVals = append(dpVals, float64(n)/time.Since(start).Seconds()/1e3)
	}
	dp.Close()
	dev.Close()
	t.Add("GPU-only dynamic parallelism", dpVals...)

	// Hybrid TagMatch on the same database and queries.
	eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
	if err != nil {
		panic(err)
	}
	var tmVals []float64
	for _, e := range extras {
		queries := ds.Queries(2048, 0.25, e, p.Seed+1100+int64(e))
		tmVals = append(tmVals, MeasureEngine(eng, queries, p.Queries/2, false).QPS/1e3)
	}
	eng.Close()
	closeDevices(devs)
	t.Add("TagMatch (hybrid)", tmVals...)
	t.Note("paper finding (§4.5): the GPU-only design degrades as more queries survive pre-processing — atomic queue appends and scattered global-memory writes dominate")
	return t
}
