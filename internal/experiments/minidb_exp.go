package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/core"
	"tagmatch/internal/minidb"
)

// smallDocs synthesizes the scaled-down workload of §4.4: nDocs sets of
// exactly tagsPerSet tags from a modest vocabulary, "with a similar
// selectivity" to the Twitter workload.
func smallDocs(nDocs, tagsPerSet int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocab := nDocs / 10
	if vocab < 100 {
		vocab = 100
	}
	docs := make([][]string, nDocs)
	for i := range docs {
		tags := make([]string, 0, tagsPerSet)
		seen := map[int]bool{}
		for len(tags) < tagsPerSet {
			t := rng.Intn(vocab)
			if seen[t] {
				continue
			}
			seen[t] = true
			tags = append(tags, fmt.Sprintf("t%d", t))
		}
		docs[i] = tags
	}
	return docs
}

// smallQueries builds queries as a document's tags plus extra tags, the
// same construction as the main workload.
func smallQueries(docs [][]string, n, extra int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, n)
	for i := range out {
		base := docs[rng.Intn(len(docs))]
		q := make([]string, len(base), len(base)+extra)
		copy(q, base)
		for j := 0; j < extra; j++ {
			q = append(q, fmt.Sprintf("xq%d_%d", rng.Intn(1000), rng.Intn(1<<20)))
		}
		out[i] = q
	}
	return out
}

// Fig10 reproduces the MongoDB comparison: single-instance minidb
// throughput across database sizes, tags per set and extra tags per
// query, against TagMatch on the same data. The paper's db sizes
// (1M..5M) map to 10K..50K documents at benchmark scale.
func Fig10(p Params) *Table {
	t := &Table{
		ID:    "fig10",
		Title: "minidb (MongoDB stand-in) vs TagMatch (queries/s; db scaled 100:1)",
		Cols:  []string{"+2 tags", "+6 tags", "+10 tags"},
	}
	extras := []int{2, 6, 10}

	type cfg struct {
		docs int
		tps  int // tags per set
	}
	base := p.smallDocsBase()
	for _, c := range []cfg{{base, 2}, {3 * base, 3}, {5 * base, 3}} {
		docs := smallDocs(c.docs, c.tps, p.Seed+900)
		srv, err := minidb.NewServer("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		for i, d := range docs {
			if err := srv.Store().Insert(uint32(i), d); err != nil {
				panic(err)
			}
		}
		cl, err := minidb.Dial(srv.Addr())
		if err != nil {
			panic(err)
		}
		var vals []float64
		for _, e := range extras {
			queries := smallQueries(docs, 64, e, p.Seed+901)
			n := 30
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, err := cl.Query(queries[i%len(queries)]); err != nil {
					panic(err)
				}
			}
			vals = append(vals, float64(n)/time.Since(start).Seconds())
		}
		t.Add(fmt.Sprintf("minidb %d docs, %d tags/set", c.docs, c.tps), vals...)
		cl.Close()
		srv.Close()
	}

	// TagMatch on the largest small database, same query shapes.
	docs := smallDocs(5*base, 3, p.Seed+900)
	dbSigs := make([]bitvec.Vector, len(docs))
	dbKeys := make([]core.Key, len(docs))
	for i, d := range docs {
		dbSigs[i] = bloom.Signature(d)
		dbKeys[i] = core.Key(i)
	}
	var vals []float64
	eng, devs, err := BuildEngine(EngineSpec{
		Sigs: dbSigs, Keys: dbKeys, Threads: p.Threads, GPUs: p.GPUs,
	})
	if err != nil {
		panic(err)
	}
	for _, e := range extras {
		queries := smallQueries(docs, 1024, e, p.Seed+902)
		qsigs := make([]bitvec.Vector, len(queries))
		for i, q := range queries {
			qsigs[i] = bloom.Signature(q)
		}
		vals = append(vals, MeasureEngine(eng, qsigs, p.Queries/2, false).QPS)
	}
	eng.Close()
	closeDevices(devs)
	t.Add(fmt.Sprintf("TagMatch %d docs, 3 tags/set", 5*base), vals...)
	t.Note("paper db sizes 1M/3M/5M map to %d/%d/%d docs here", base, 3*base, 5*base)
	t.Note("paper shape: minidb throughput is flat in query/set width, degrades linearly with db size, and sits orders of magnitude below TagMatch")
	return t
}

// Fig11 reproduces the sharding experiment: minidb throughput as the
// cluster grows, on a 30K-document database (the paper's 3M at scale),
// 3 tags per set, 6-tag queries.
func Fig11(p Params) *Table {
	t := &Table{
		ID:    "fig11",
		Title: "minidb sharding scalability (queries/s)",
	}
	instances := []int{1, 2, 4, 8, 16, 24}
	docs := smallDocs(3*p.smallDocsBase(), 3, p.Seed+950)
	queries := smallQueries(docs, 64, 3, p.Seed+951)

	var vals []float64
	for _, ni := range instances {
		t.Cols = append(t.Cols, fmt.Sprintf("%d inst", ni))
		cluster, err := minidb.NewCluster(ni)
		if err != nil {
			panic(err)
		}
		for i, d := range docs {
			if err := cluster.InsertLocal(uint32(i), d); err != nil {
				panic(err)
			}
		}
		n := 30
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := cluster.Query(queries[i%len(queries)]); err != nil {
				panic(err)
			}
		}
		vals = append(vals, float64(n)/time.Since(start).Seconds())
		cluster.Close()
	}
	t.Add("minidb cluster", vals...)
	t.Note("paper shape: near-linear up to ~8 instances, then flattening (~3x total at 24)")
	return t
}
