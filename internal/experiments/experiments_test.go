package experiments

import (
	"strings"
	"testing"
)

// tinyParams keeps the smoke tests fast: a few tens of thousands of
// interests and short measurement runs.
func tinyParams() Params {
	p := DefaultParams()
	p.Scale = 0.00002 // ~6K users
	p.Queries = 1200
	p.SmallDBDocs = 800
	return p
}

func checkTable(t *testing.T, tb *Table, wantRows int) {
	t.Helper()
	if tb == nil {
		t.Fatal("nil table")
	}
	if len(tb.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tb.ID, len(tb.Rows), wantRows)
	}
	for _, r := range tb.Rows {
		if len(r.Values) != len(tb.Cols) {
			t.Fatalf("%s row %q: %d values for %d columns", tb.ID, r.Label, len(r.Values), len(tb.Cols))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Fatalf("%s row %q col %d: non-positive value %v", tb.ID, r.Label, i, v)
			}
		}
	}
	// Printing must not panic and must include the title.
	if !strings.Contains(tb.String(), tb.ID) {
		t.Fatalf("%s: String() missing id", tb.ID)
	}
}

func TestDatasetShape(t *testing.T) {
	p := tinyParams()
	ds := BuildDataset(p)
	if len(ds.Sigs) == 0 || len(ds.Sigs) != len(ds.Keys) {
		t.Fatalf("dataset sizes: %d sigs, %d keys", len(ds.Sigs), len(ds.Keys))
	}
	if ds.Unique == 0 || ds.Unique > len(ds.Sigs) {
		t.Fatalf("unique = %d of %d", ds.Unique, len(ds.Sigs))
	}
	// Cache must return the same dataset.
	if ds2 := BuildDataset(p); ds2 != ds {
		t.Fatal("dataset cache miss for identical params")
	}
	half, _ := ds.Slice(0.5)
	if len(half) != len(ds.Sigs)/2 {
		t.Fatalf("Slice(0.5) = %d of %d", len(half), len(ds.Sigs))
	}
	qs := ds.Queries(100, 1.0, 3, 7)
	if len(qs) != 100 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if q.IsZero() {
			t.Fatal("zero query signature")
		}
	}
}

func TestKeysBySet(t *testing.T) {
	ds := BuildDataset(tinyParams())
	sigs, keys := ds.Slice(0.2)
	us, ks := KeysBySet(sigs, keys)
	if len(us) != len(ks) {
		t.Fatal("mismatched outputs")
	}
	total := 0
	for _, k := range ks {
		total += len(k)
	}
	if total != len(sigs) {
		t.Fatalf("keys lost in grouping: %d != %d", total, len(sigs))
	}
}

func TestTable1Smoke(t *testing.T) {
	tb := Table1(tinyParams())
	checkTable(t, tb, 6)
	// Core paper shape: batching beats plain GPU by a wide margin at
	// every database size.
	var plain, batched []float64
	for _, r := range tb.Rows {
		switch r.Label {
		case "GPU-only, plain":
			plain = r.Values
		case "GPU-only, plain with batching":
			batched = r.Values
		}
	}
	for i := range plain {
		if batched[i] < 2*plain[i] {
			t.Errorf("col %d: batching %v not clearly above plain %v", i, batched[i], plain[i])
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	checkTable(t, Table3(tinyParams()), 3)
}

func TestFig2And3Smoke(t *testing.T) {
	f2, f3 := Fig2And3(tinyParams())
	checkTable(t, f2, 2)
	checkTable(t, f3, 2)
	// Shape: input throughput at +10 extra tags is below +1 for TagMatch.
	tm := f2.Rows[0].Values
	if tm[len(tm)-1] >= tm[0] {
		t.Errorf("fig2: throughput should decline with query size: %v", tm)
	}
	// Shape: output rate must not collapse with query size the way input
	// throughput does (Fig 3's headline is a RISE; at smoke scale the
	// effect is noisy, so only the strong inverse is rejected here — the
	// recorded CLI runs at benchmark scale verify the rise itself).
	out := f3.Rows[0].Values
	maxWide := 0.0
	for _, v := range out[len(out)/2:] {
		if v > maxWide {
			maxWide = v
		}
	}
	if maxWide < out[0]/2 {
		t.Errorf("fig3: output rate collapsed with query size: %v", out)
	}
}

func TestFig4Smoke(t *testing.T) {
	tb := Fig4(tinyParams())
	checkTable(t, tb, 4)
	// Shape: throughput declines as the database grows.
	for _, r := range tb.Rows {
		if r.Values[len(r.Values)-1] >= r.Values[0] {
			t.Errorf("fig4 %q: no decline across db sizes: %v", r.Label, r.Values)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	checkTable(t, Fig5(tinyParams()), 3)
}

func TestFig6Smoke(t *testing.T) {
	p := tinyParams()
	p.Queries = 600
	tb := Fig6(p)
	checkTable(t, tb, 5)
}

func TestFig7Smoke(t *testing.T) {
	checkTable(t, Fig7(tinyParams()), 2)
}

func TestFig8Smoke(t *testing.T) {
	tb := Fig8(tinyParams())
	checkTable(t, tb, 1)
	// Shape: consolidate time grows with database size.
	v := tb.Rows[0].Values
	if v[len(v)-1] <= v[0] {
		t.Errorf("fig8: consolidate time should grow with db size: %v", v)
	}
}

func TestFig9Smoke(t *testing.T) {
	tb := Fig9(tinyParams())
	checkTable(t, tb, 2)
	for _, r := range tb.Rows {
		last := r.Values[len(r.Values)-1]
		if last <= r.Values[0] {
			t.Errorf("fig9 %q: memory should grow with db size: %v", r.Label, r.Values)
		}
		_ = last
	}
}

func TestFig10Smoke(t *testing.T) {
	tb := Fig10(tinyParams())
	checkTable(t, tb, 4)
	// Shape: TagMatch (last row) far above every minidb row.
	tm := tb.Rows[len(tb.Rows)-1].Values
	for _, r := range tb.Rows[:len(tb.Rows)-1] {
		for i := range r.Values {
			if tm[i] < 5*r.Values[i] {
				t.Errorf("fig10: TagMatch %v not clearly above minidb %q %v", tm[i], r.Label, r.Values[i])
			}
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	tb := Fig11(tinyParams())
	checkTable(t, tb, 1)
	v := tb.Rows[0].Values
	// Shape: sharding must not make things dramatically worse (on a
	// single-core host scatter-gather cannot speed up, and run-to-run
	// noise is ±30%).
	if v[1] < v[0]*0.6 {
		t.Errorf("fig11: 2 instances (%v) dramatically slower than 1 (%v)", v[1], v[0])
	}
}

func TestAblationPipelineSmoke(t *testing.T) {
	checkTable(t, AblationPipeline(tinyParams()), 5)
}

func TestAblationGPUOnlySmoke(t *testing.T) {
	checkTable(t, AblationGPUOnly(tinyParams()), 2)
}

func TestHotpathSmoke(t *testing.T) {
	p := tinyParams()
	p.Queries = 600
	tb, r := Hotpath(p)
	checkTable(t, tb, 4)
	if len(r.Runs) != 4 {
		t.Fatalf("hotpath runs = %d, want 4 (cpu/gpu x pooling on/off)", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.QPS <= 0 || run.P99Us < run.P50Us {
			t.Errorf("%s pooling=%v: qps=%v p50=%v p99=%v", run.Config, run.Pooling, run.QPS, run.P50Us, run.P99Us)
		}
	}
}

func TestTablePrintFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Cols: []string{"a", "b"}}
	tb.Add("row with a rather long label", 1234567, 0.0021)
	tb.Note("hello %d", 42)
	s := tb.String()
	for _, want := range []string{"demo", "1.23M", "0.0021", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed table missing %q:\n%s", want, s)
		}
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Fatalf("SortedCopy wrong: in=%v out=%v", in, out)
	}
}

func TestFamiliesSmoke(t *testing.T) {
	tb := Families(tinyParams())
	checkTable(t, tb, 6)
	// Defining shape: the hash-table subset matcher collapses with query
	// width far faster than every scan-based matcher.
	var hs []float64
	for _, r := range tb.Rows {
		if r.Label == "Hash-table subsets" {
			hs = r.Values
		}
	}
	if hs[len(hs)-1] >= hs[0]/2 {
		t.Errorf("hash-table matcher should collapse with query width: %v", hs)
	}
}

func TestPreprocessSmoke(t *testing.T) {
	p := tinyParams()
	p.Queries = 600
	tb, r := Preprocess(p)
	checkTable(t, tb, 2)
	if r.ScalarNsPerQuery <= 0 || r.SlicedNsPerQuery <= 0 || r.Partitions <= 0 {
		t.Fatalf("bad routing numbers: %+v", r)
	}
	if len(r.E2E) != 2 {
		t.Fatalf("e2e runs = %d, want 2 (scalar, sliced)", len(r.E2E))
	}
	for _, run := range r.E2E {
		if run.QPS <= 0 {
			t.Errorf("%s routing: qps=%v", run.Routing, run.QPS)
		}
		if run.RouteAppends > 0 && run.RouteMergeLocks > run.RouteAppends {
			t.Errorf("%s routing: merge locks %d > appends %d",
				run.Routing, run.RouteMergeLocks, run.RouteAppends)
		}
	}
	// The tiny table is too small for the full 2x bar, but sliced must
	// never be slower than the scalar scan it replaces.
	if r.SlicedNsPerQuery > r.ScalarNsPerQuery {
		t.Errorf("sliced lookup slower than scalar: %v ns/q vs %v ns/q",
			r.SlicedNsPerQuery, r.ScalarNsPerQuery)
	}
}

func TestWriteBenchstat(t *testing.T) {
	tb := &Table{ID: "demo", Cols: []string{"Kq/s", "p50 us"}}
	tb.Add("cpu, pooling on", 12.5, 340)
	var sb strings.Builder
	if err := tb.WriteBenchstat(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "Benchmarkdemo/cpu-pooling-on 1 12.5 Kq/s 340 p50-us\n"
	if got != want {
		t.Fatalf("benchstat line:\n got %q\nwant %q", got, want)
	}
}
