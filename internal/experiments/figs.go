package experiments

import (
	"fmt"
	"sync"
	"time"

	"tagmatch/internal/core"
	"tagmatch/internal/metrics"
	"tagmatch/internal/trie"
)

// Fig2And3 reproduces Figures 2 and 3: input throughput and output rate
// for match-unique as the number of extra tags per query grows from 1 to
// 10, for TagMatch and the prefix tree.
func Fig2And3(p Params) (*Table, *Table) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(1.0)
	uniqueSigs, keysBySet := KeysBySet(sigs, keys)

	fig2 := &Table{ID: "fig2", Title: "match-unique input throughput vs extra query tags (K queries/s)"}
	fig3 := &Table{ID: "fig3", Title: "match-unique output rate vs extra query tags (K keys/s)"}
	extras := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, e := range extras {
		fig2.Cols = append(fig2.Cols, fmt.Sprintf("+%d", e))
		fig3.Cols = append(fig3.Cols, fmt.Sprintf("+%d", e))
	}

	tr := trie.New()
	for i, s := range uniqueSigs {
		for _, k := range keysBySet[i] {
			tr.Add(s, k)
		}
	}
	tr.Freeze()

	eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	defer closeDevices(devs)

	var tmIn, tmOut, ptIn, ptOut []float64
	for _, e := range extras {
		queries := ds.Queries(4096, 1.0, e, p.Seed+400+int64(e))
		// More extra tags → broader queries → fewer can be pushed in the
		// same budget; shrink n as e grows to bound runtime.
		n := p.Queries / (1 + e/3)
		r := MeasureEngine(eng, queries, n, true)
		tmIn = append(tmIn, r.QPS/1e3)
		tmOut = append(tmOut, r.KeysPS/1e3)
		rp := MeasureMatcher(matcherAdapter{tr}, queries, 2000, p.Threads, true)
		ptIn = append(ptIn, rp.QPS/1e3)
		ptOut = append(ptOut, rp.KeysPS/1e3)
	}
	fig2.Add("TagMatch", tmIn...)
	fig2.Add("Prefix tree", ptIn...)
	fig3.Add("TagMatch", tmOut...)
	fig3.Add("Prefix tree", ptOut...)
	fig2.Note("paper shape: both decline with query size (log scale), TagMatch ≈10x the tree throughout")
	fig3.Note("paper shape: output rate RISES with query size while input throughput falls")
	return fig2, fig3
}

// Fig4 reproduces Figure 4: throughput for match and match-unique as the
// database grows from 20% to 100%, for TagMatch and the prefix tree.
func Fig4(p Params) *Table {
	ds := BuildDataset(p)
	t := &Table{
		ID:    "fig4",
		Title: "throughput vs database size (K queries/s)",
		Cols:  []string{"20%", "40%", "60%", "80%", "100%"},
	}
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}

	var tmM, tmU, ptM, ptU []float64
	for _, frac := range fracs {
		sigs, keys := ds.Slice(frac)
		queries := ds.Queries(4096, frac, -1, p.Seed+500)

		eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
		if err != nil {
			panic(err)
		}
		tmM = append(tmM, MeasureEngine(eng, queries, p.Queries, false).QPS/1e3)
		tmU = append(tmU, MeasureEngine(eng, queries, p.Queries, true).QPS/1e3)
		eng.Close()
		closeDevices(devs)

		uniqueSigs, keysBySet := KeysBySet(sigs, keys)
		tr := trie.New()
		for i, s := range uniqueSigs {
			for _, k := range keysBySet[i] {
				tr.Add(s, k)
			}
		}
		tr.Freeze()
		ptM = append(ptM, MeasureMatcher(matcherAdapter{tr}, queries, 3000, p.Threads, false).QPS/1e3)
		ptU = append(ptU, MeasureMatcher(matcherAdapter{tr}, queries, 3000, p.Threads, true).QPS/1e3)
	}
	t.Add("TagMatch match", tmM...)
	t.Add("TagMatch match-unique", tmU...)
	t.Add("Prefix tree match", ptM...)
	t.Add("Prefix tree match-unique", ptU...)
	t.Note("paper shape: monotone decline with database size; TagMatch ≈10x tree at every size")
	return t
}

// Fig5 reproduces Figure 5: throughput as CPU threads grow, for match
// and match-unique, against the prefix tree with the same thread counts.
func Fig5(p Params) *Table {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(1.0)
	queries := ds.Queries(4096, 1.0, -1, p.Seed+600)
	threads := []int{1, 2, 4, 8, 12, 16}

	t := &Table{ID: "fig5", Title: "throughput vs CPU threads (K queries/s)"}
	for _, th := range threads {
		t.Cols = append(t.Cols, fmt.Sprintf("%dT", th))
	}

	uniqueSigs, keysBySet := KeysBySet(sigs, keys)
	tr := trie.New()
	for i, s := range uniqueSigs {
		for _, k := range keysBySet[i] {
			tr.Add(s, k)
		}
	}
	tr.Freeze()

	var tmM, tmU, ptM []float64
	for _, th := range threads {
		eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: th, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
		if err != nil {
			panic(err)
		}
		tmM = append(tmM, MeasureEngine(eng, queries, p.Queries, false).QPS/1e3)
		tmU = append(tmU, MeasureEngine(eng, queries, p.Queries, true).QPS/1e3)
		eng.Close()
		closeDevices(devs)
		ptM = append(ptM, MeasureMatcher(matcherAdapter{tr}, queries, 3000, th, false).QPS/1e3)
	}
	t.Add("TagMatch match", tmM...)
	t.Add("TagMatch match-unique", tmU...)
	t.Add("Prefix tree match", ptM...)
	t.Note("paper shape: near-linear scaling until the GPU stages saturate, then flat/declining")
	t.Note("thread counts scaled to this host's %d cores (paper swept 4..48 on 24 cores)", p.Threads)
	return t
}

// Fig6 reproduces Figure 6: the end-to-end latency distribution of
// match-unique under different batch-flush timeouts, with queries
// arriving as a paced stream rather than an open-loop flood.
func Fig6(p Params) *Table {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(1.0)
	queries := ds.Queries(4096, 1.0, -1, p.Seed+700)

	// Probe sustainable throughput once, then pace arrivals at 50% of it
	// so queueing delay reflects batching, not saturation.
	probeEng, probeDevs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
	if err != nil {
		panic(err)
	}
	capacity := MeasureEngine(probeEng, queries, p.Queries/2, true).QPS
	probeEng.Close()
	closeDevices(probeDevs)
	rate := capacity * 0.5

	t := &Table{
		ID:    "fig6",
		Title: "match-unique latency vs batch timeout (paced arrivals)",
		Cols:  []string{"median ms", "p99 ms", "max ms", "K queries/s"},
	}
	timeouts := []struct {
		label string
		d     time.Duration
	}{
		{"no timeout", 0},
		{"100ms", 100 * time.Millisecond},
		{"200ms", 200 * time.Millisecond},
		{"300ms", 300 * time.Millisecond},
		{"500ms", 500 * time.Millisecond},
	}
	n := p.Queries / 2
	for _, to := range timeouts {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP(),
			Mutate: func(c *core.Config) { c.BatchTimeout = to.d },
		})
		if err != nil {
			panic(err)
		}
		lat := metrics.NewLatencies()
		var wg sync.WaitGroup
		wg.Add(n)
		start := time.Now()
		interval := time.Duration(float64(time.Second) / rate)
		next := start
		for i := 0; i < n; i++ {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
			if err := eng.SubmitSignature(queries[i%len(queries)], true, func(r core.MatchResult) {
				lat.Observe(r.Latency)
				wg.Done()
			}); err != nil {
				panic(err)
			}
		}
		if to.d == 0 {
			eng.Drain() // without a timeout the tail would wait forever
		}
		wg.Wait()
		el := time.Since(start)
		s := lat.Summarize()
		t.Add(to.label,
			float64(s.Median)/1e6, float64(s.P99)/1e6, float64(s.Max)/1e6,
			float64(n)/el.Seconds()/1e3)
		eng.Close()
		closeDevices(devs)
	}
	t.Note("arrival rate paced at 50%% of measured capacity (%.0f queries/s)", rate)
	t.Note("paper shape: longer timeouts cut tail latency; a too-short timeout (100ms) costs ~20%% throughput")
	return t
}

// Fig7 reproduces Figure 7: throughput as MAX_P (the maximum partition
// size of Algorithm 1) sweeps around the paper's 200K sweet spot.
func Fig7(p Params) *Table {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(1.0)
	queries := ds.Queries(4096, 1.0, -1, p.Seed+800)

	base := len(sigs) / 1000 // the paper's 200K at 212M
	if base < 64 {
		base = 64
	}
	factors := []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
	t := &Table{ID: "fig7", Title: "throughput vs MAX_P (K queries/s)"}
	for _, f := range factors {
		t.Cols = append(t.Cols, fmt.Sprintf("%d", int(float64(base)*f)))
	}
	var m, u []float64
	for _, f := range factors {
		maxP := int(float64(base) * f)
		if maxP < 16 {
			maxP = 16
		}
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP,
		})
		if err != nil {
			panic(err)
		}
		m = append(m, MeasureEngine(eng, queries, p.Queries, false).QPS/1e3)
		u = append(u, MeasureEngine(eng, queries, p.Queries, true).QPS/1e3)
		eng.Close()
		closeDevices(devs)
	}
	t.Add("match", m...)
	t.Add("match-unique", u...)
	t.Note("paper shape: throughput rises to a sweet spot (~200K at full scale, here ~%d) then flattens", base)
	return t
}

// Fig8 reproduces Figure 8: consolidate (partitioning) time as the
// database grows, with MAX_P fixed at the paper's ratio.
func Fig8(p Params) *Table {
	ds := BuildDataset(p)
	t := &Table{
		ID:    "fig8",
		Title: "partitioning (consolidate) time vs database size (seconds)",
		Cols:  []string{"25%", "50%", "75%", "100%"},
	}
	maxP := len(ds.Sigs) / 1000
	if maxP < 64 {
		maxP = 64
	}
	var secs []float64
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		sigs, keys := ds.Slice(frac)
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP,
		})
		if err != nil {
			panic(err)
		}
		// Min of two rebuilds: a single consolidate is long enough for a
		// GC or scheduler hiccup to distort the curve.
		best := eng.Stats().LastConsolidate.Seconds()
		if err := eng.Consolidate(); err != nil {
			panic(err)
		}
		if again := eng.Stats().LastConsolidate.Seconds(); again < best {
			best = again
		}
		secs = append(secs, best)
		eng.Close()
		closeDevices(devs)
	}
	t.Add("consolidate time (s)", secs...)
	t.Note("paper shape: linear in database size; ~50s for 200M sets at full scale")
	return t
}

// Fig9 reproduces Figure 9: host and GPU memory usage as the database
// grows.
func Fig9(p Params) *Table {
	ds := BuildDataset(p)
	t := &Table{
		ID:    "fig9",
		Title: "memory usage vs database size (MB)",
		Cols:  []string{"25%", "50%", "75%", "100%"},
	}
	var host, dev0 []float64
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		sigs, keys := ds.Slice(frac)
		eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
		if err != nil {
			panic(err)
		}
		st := eng.Stats()
		host = append(host, float64(st.HostBytes)/1e6)
		var dsum int64
		for _, b := range st.DeviceBytes {
			dsum += b
		}
		dev0 = append(dev0, float64(dsum)/1e6)
		eng.Close()
		closeDevices(devs)
	}
	t.Add("Host (key table + index)", host...)
	t.Add("GPUs (tagset tables)", dev0...)
	t.Note("paper shape: both linear; host dominated by the key table, GPU by the tagset table")
	return t
}
