package experiments

import (
	"encoding/json"
	"io"

	"tagmatch/internal/core"
)

// ObsOverheadResult is the JSON shape of the obs-overhead comparison
// (BENCH_obs.json): throughput with the observability layer enabled vs.
// disabled, and the relative cost. The instrumentation budget is <5%.
type ObsOverheadResult struct {
	QPSOn       float64   `json:"qps_on"`
	QPSOff      float64   `json:"qps_off"`
	OverheadPct float64   `json:"overhead_pct"`
	RunsOn      []float64 `json:"runs_on"`
	RunsOff     []float64 `json:"runs_off"`
	Queries     int       `json:"queries"`
	GPUs        int       `json:"gpus"`
	Threads     int       `json:"threads"`
}

// ObsOverhead measures the throughput cost of the internal/obs
// instrumentation: the same engine and query stream with observability
// on (the default, plus 1-in-64 tracing to include the tracer's cost)
// and with DisableObservability set. Medians of repeated interleaved
// runs keep scheduler noise from swamping the few-percent effect.
func ObsOverhead(p Params) (*Table, *ObsOverheadResult) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)
	queries := ds.Queries(4096, 0.5, -1, p.Seed+2000)

	const reps = 7
	build := func(mutate func(*core.Config)) (*core.Engine, func()) {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs,
			MaxP: ds.BaseMaxP(), Mutate: mutate,
		})
		if err != nil {
			panic(err)
		}
		return eng, func() { eng.Close(); closeDevices(devs) }
	}
	engOn, closeOn := build(func(c *core.Config) { c.TraceEvery = 64 })
	engOff, closeOff := build(func(c *core.Config) { c.DisableObservability = true })

	// Alternate on/off runs so host drift (frequency scaling, background
	// load) hits both configurations equally instead of biasing whichever
	// happens to run second.
	var runsOn, runsOff []float64
	for rep := 0; rep < reps; rep++ {
		runsOn = append(runsOn, MeasureEngine(engOn, queries, p.Queries, false).QPS)
		runsOff = append(runsOff, MeasureEngine(engOff, queries, p.Queries, false).QPS)
	}
	closeOn()
	closeOff()

	r := &ObsOverheadResult{
		QPSOn:   SortedCopy(runsOn)[reps/2],
		QPSOff:  SortedCopy(runsOff)[reps/2],
		RunsOn:  runsOn,
		RunsOff: runsOff,
		Queries: p.Queries,
		GPUs:    p.GPUs,
		Threads: p.Threads,
	}
	r.OverheadPct = (r.QPSOff - r.QPSOn) / r.QPSOff * 100

	t := &Table{
		ID:    "obs-overhead",
		Title: "Observability overhead, match (K queries/s)",
		Cols:  []string{"throughput"},
	}
	t.Add("obs on (histograms+counters+1/64 traces)", r.QPSOn/1e3)
	t.Add("obs off (DisableObservability)", r.QPSOff/1e3)
	t.Note("overhead: %.1f%% (budget <5%%); median of %d runs each", r.OverheadPct, reps)
	return t, r
}

// WriteJSON writes the result as indented JSON.
func (r *ObsOverheadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
