package experiments

import (
	"encoding/json"
	"io"

	"tagmatch/internal/core"
)

// ObsOverheadResult is the JSON shape of the obs-overhead comparison
// (BENCH_obs.json): throughput with the observability layer enabled vs.
// disabled, and the relative cost. The instrumentation budget is 2%
// (gated by `make obsdiff-gate`).
type ObsOverheadResult struct {
	QPSOn       float64   `json:"qps_on"`
	QPSOff      float64   `json:"qps_off"`
	OverheadPct float64   `json:"overhead_pct"`
	RunsOn      []float64 `json:"runs_on"`
	RunsOff     []float64 `json:"runs_off"`
	Queries     int       `json:"queries"`
	GPUs        int       `json:"gpus"`
	Threads     int       `json:"threads"`
}

// ObsOverhead measures the throughput cost of the internal/obs
// instrumentation: the same engine and query stream with observability
// on (the default, plus the production 1-in-1000 span tracing to
// include the tracer's cost) and with DisableObservability set. The
// effect is a few percent, well inside single-run scheduler noise, so
// the measurement is paired: runs alternate on/off (adjacent runs share
// whatever drift the host is under — frequency scaling, background
// load — so their ratio cancels it) and the overhead is the median of
// per-pair ratios, after a discarded warmup pair.
func ObsOverhead(p Params) (*Table, *ObsOverheadResult) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)
	queries := ds.Queries(4096, 0.5, -1, p.Seed+2000)

	const reps = 21
	build := func(mutate func(*core.Config)) (*core.Engine, func()) {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs,
			MaxP: ds.BaseMaxP(), Mutate: mutate,
		})
		if err != nil {
			panic(err)
		}
		return eng, func() { eng.Close(); closeDevices(devs) }
	}
	engOn, closeOn := build(func(c *core.Config) { c.TraceEvery = 1000 })
	engOff, closeOff := build(func(c *core.Config) { c.DisableObservability = true })

	// Warmup pair: first runs pay page faults, allocator growth, and
	// branch-predictor training; discard them.
	MeasureEngine(engOn, queries, p.Queries, false)
	MeasureEngine(engOff, queries, p.Queries, false)

	// Position within a pair is itself a bias on a loaded host (the
	// second run pays the first run's GC debt), so pairs alternate
	// on-first / off-first.
	var runsOn, runsOff, ratios []float64
	for rep := 0; rep < reps; rep++ {
		var on, off float64
		if rep%2 == 0 {
			on = MeasureEngine(engOn, queries, p.Queries, false).QPS
			off = MeasureEngine(engOff, queries, p.Queries, false).QPS
		} else {
			off = MeasureEngine(engOff, queries, p.Queries, false).QPS
			on = MeasureEngine(engOn, queries, p.Queries, false).QPS
		}
		runsOn = append(runsOn, on)
		runsOff = append(runsOff, off)
		ratios = append(ratios, on/off)
	}
	closeOn()
	closeOff()

	r := &ObsOverheadResult{
		QPSOn:   SortedCopy(runsOn)[reps/2],
		QPSOff:  SortedCopy(runsOff)[reps/2],
		RunsOn:  runsOn,
		RunsOff: runsOff,
		Queries: p.Queries,
		GPUs:    p.GPUs,
		Threads: p.Threads,
	}
	r.OverheadPct = (1 - SortedCopy(ratios)[reps/2]) * 100

	t := &Table{
		ID:    "obs-overhead",
		Title: "Observability overhead, match (K queries/s)",
		Cols:  []string{"throughput"},
	}
	t.Add("obs on (histograms+counters+1/1000 traces)", r.QPSOn/1e3)
	t.Add("obs off (DisableObservability)", r.QPSOff/1e3)
	t.Note("overhead: %.1f%% (budget <2%%); median of %d paired on/off ratios", r.OverheadPct, reps)
	return t, r
}

// WriteJSON writes the result as indented JSON.
func (r *ObsOverheadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
