package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
)

// ChurnCell is one measured configuration of the live-update experiment:
// the no-churn baseline, the shipping delta-overlay + background
// consolidation path, and the stop-the-world ablation that drains the
// pipeline and rebuilds synchronously after every update batch.
type ChurnCell struct {
	Config string `json:"config"` // "no_churn", "live_bg", "stw"

	QPS    float64 `json:"qps"`
	KeysPS float64 `json:"keys_ps"`
	Keys   int64   `json:"keys"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`

	ChurnOps int64 `json:"churn_ops"`

	// Pause percentiles: for live_bg the device-upload critical section
	// of each background swap; for stw the full synchronous Consolidate
	// (drain + rebuild + upload), which stalls every query for its
	// duration.
	PauseP50Ms float64 `json:"pause_p50_ms,omitempty"`
	PauseP99Ms float64 `json:"pause_p99_ms,omitempty"`
	PauseMaxMs float64 `json:"pause_max_ms,omitempty"`

	// Update-visibility latency: time from AddSignature returning to the
	// added key appearing in a match answer.
	VisibilityP50Us float64 `json:"visibility_p50_us,omitempty"`
	VisibilityP99Us float64 `json:"visibility_p99_us,omitempty"`

	AutoConsolidations    int64 `json:"auto_consolidations,omitempty"`
	Consolidations        int64 `json:"consolidations,omitempty"`
	DeltaMatches          int64 `json:"delta_matches,omitempty"`
	TombstoneSuppressions int64 `json:"tombstone_suppressions,omitempty"`
}

// ChurnResult is the JSON shape of the live-update experiment
// (BENCH_churn.json): the three cells plus the derived metrics the CI
// gate asserts on. QPSRatio is query throughput under background
// consolidation over the no-churn baseline (the gate requires >= 0.9:
// live updates must cost at most 10% of steady-state throughput).
// PauseImprovement is the stop-the-world pause p99 over the background
// swap pause p99 (the gate requires >= 5). ResultsMatch reports the
// differential parity phase: an interleaved add/remove/match sequence
// answered through the overlay must be byte-identical (sorted keys) to
// an oracle engine consolidated before every match.
type ChurnResult struct {
	Cells []ChurnCell `json:"cells"`

	QPSRatio         float64 `json:"qps_ratio"`
	PauseImprovement float64 `json:"pause_improvement"`
	SwapPauseP99Ms   float64 `json:"swap_pause_p99_ms"`
	StwPauseP99Ms    float64 `json:"stw_pause_p99_ms"`
	VisibilityP99Ms  float64 `json:"visibility_p99_ms"`
	ResultsMatch     bool    `json:"churn_results_match"`
	ParityProbes     int     `json:"parity_probes"`

	Queries        int   `json:"queries"`
	ChurnOps       int   `json:"churn_ops"`
	DeltaThreshold int   `json:"delta_threshold"`
	GPUs           int   `json:"gpus"`
	Threads        int   `json:"threads"`
	Seed           int64 `json:"seed"`
}

// churnOp is one pre-generated live update, shared verbatim by the
// live_bg and stw cells so both fold the same work.
type churnOp struct {
	add bool
	sig bitvec.Vector
	key core.Key
}

// churnVisibilityProbes is the number of AddSignature→matchable latency
// samples taken per churn cell.
const churnVisibilityProbes = 16

// Churn measures what live updates cost and buy (the paper's §3.4
// update path, extended with the match-visible delta overlay): the same
// query stream runs with no updates, with updates folded by the
// background consolidator, and with the stop-the-world ablation that
// synchronously consolidates after every update batch. Each cell
// records throughput, latency percentiles, pause percentiles, and
// update-visibility latency; a separate differential phase pins overlay
// answers to a consolidate-before-every-match oracle.
func Churn(p Params) (*Table, *ChurnResult) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)

	distinct := min(p.Queries, 2048)
	if distinct < 1 {
		distinct = 1
	}
	queries := ds.Queries(distinct, 0.5, -1, p.Seed+6000)

	// Churn volume and fold threshold: one update per four queries, with
	// the threshold sized for ~8 background folds per run.
	churnN := p.Queries / 4
	if churnN < 256 {
		churnN = 256
	}
	thr := churnN / 8
	if thr < 64 {
		thr = 64
	}
	ops := makeChurnOps(churnN, sigs, keys, p.Seed+6100)

	r := &ChurnResult{
		Queries:        p.Queries,
		ChurnOps:       churnN,
		DeltaThreshold: thr,
		GPUs:           p.GPUs,
		Threads:        p.Threads,
		Seed:           p.Seed,
	}

	// The live_bg cell needs a small fold threshold at churn time but
	// must not thrash the consolidator during the bulk load, so the
	// database is transplanted through a snapshot: LoadSnapshot stages
	// everything in one append and consolidates once.
	var snap bytes.Buffer
	{
		src, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: 0,
		})
		if err != nil {
			panic(err)
		}
		if err := src.SaveSnapshot(&snap); err != nil {
			panic(err)
		}
		src.Close()
		closeDevices(devs)
	}
	maxP := len(sigs) / 1000
	if maxP < 64 {
		maxP = 64
	}

	for _, mode := range []string{"no_churn", "live_bg", "stw"} {
		// The throughput comparison (no_churn vs live_bg) runs each cell
		// twice and keeps the higher-qps run: on a small host a single
		// 8-second window is at the mercy of unrelated scheduling and GC
		// timing, and best-of-N under identical inputs is the standard
		// defense — applied symmetrically, so the ratio stays honest.
		// The stw ablation is not part of a tight ratio and runs once.
		runs := 2
		if mode == "stw" {
			runs = 1
		}
		var cell ChurnCell
		for i := 0; i < runs; i++ {
			c := runChurnCell(p, sigs, keys, snap.Bytes(), maxP, queries, ops, thr, mode)
			if i == 0 || c.QPS > cell.QPS {
				cell = c
			}
		}
		r.Cells = append(r.Cells, cell)
	}
	base, live, stw := &r.Cells[0], &r.Cells[1], &r.Cells[2]

	if base.QPS > 0 {
		r.QPSRatio = live.QPS / base.QPS
	}
	r.SwapPauseP99Ms = live.PauseP99Ms
	r.StwPauseP99Ms = stw.PauseP99Ms
	if live.PauseP99Ms > 0 {
		r.PauseImprovement = stw.PauseP99Ms / live.PauseP99Ms
	}
	r.VisibilityP99Ms = live.VisibilityP99Us / 1e3
	r.ResultsMatch, r.ParityProbes = churnParity(p, ds)

	t := &Table{
		ID:    "churn",
		Title: "Live updates: delta overlay + background consolidation vs stop-the-world",
		Cols:  []string{"qps", "keys/s", "p99 ms", "pause p99 ms", "vis p99 ms"},
	}
	for _, c := range r.Cells {
		t.Add(c.Config, c.QPS, c.KeysPS, c.P99Us/1e3, c.PauseP99Ms, c.VisibilityP99Us/1e3)
	}
	t.Note("qps ratio (live_bg vs no_churn): %.3f; pause improvement (stw p99 / swap p99): %.1fx",
		r.QPSRatio, r.PauseImprovement)
	t.Note("live_bg: %d churn ops, %d background folds, %d overlay matches, %d tombstone suppressions",
		live.ChurnOps, live.AutoConsolidations, live.DeltaMatches, live.TombstoneSuppressions)
	t.Note("update visibility p99: live %.2fms (overlay), stw %.2fms (next batch consolidate)",
		live.VisibilityP99Us/1e3, stw.VisibilityP99Us/1e3)
	if r.ResultsMatch {
		t.Note("parity: overlay answers byte-identical to the consolidate-every-match oracle (%d probes)", r.ParityProbes)
	} else {
		t.Note("PARITY VIOLATION: overlay diverged from the consolidation oracle")
	}
	return t, r
}

// makeChurnOps pre-generates the shared update stream: 70% adds of new
// associations (fresh keys on sampled database signatures) and 30%
// removes, split between tombstoning existing database entries and
// cancelling earlier churned adds.
func makeChurnOps(n int, sigs []bitvec.Vector, keys []core.Key, seed int64) []churnOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]churnOp, 0, n)
	next := core.Key(50_000_000)
	var pool []churnOp
	for len(ops) < n {
		switch {
		case len(pool) > 8 && rng.Float64() < 0.15:
			// Cancel a churned add: the add-then-remove pair must never
			// surface (exactly-once).
			i := rng.Intn(len(pool))
			ops = append(ops, churnOp{add: false, sig: pool[i].sig, key: pool[i].key})
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		case rng.Float64() < 0.18:
			// Tombstone a real database entry.
			i := rng.Intn(len(sigs))
			ops = append(ops, churnOp{add: false, sig: sigs[i], key: keys[i]})
		default:
			op := churnOp{add: true, sig: sigs[rng.Intn(len(sigs))], key: next}
			next++
			ops = append(ops, op)
			pool = append(pool, op)
		}
	}
	return ops
}

// runChurnCell builds an engine for one mode, runs the closed query
// loop with the update stream applied inline at its paced rate, and
// collects throughput, pause, and visibility numbers.
func runChurnCell(p Params, sigs []bitvec.Vector, keys []core.Key, snap []byte, maxP int,
	queries []bitvec.Vector, ops []churnOp, thr int, mode string) ChurnCell {
	var eng *core.Engine
	var devs []*gpu.Device
	var err error
	switch mode {
	case "live_bg":
		// Empty build + snapshot load: the small threshold must not see
		// the bulk load (see Churn).
		eng, devs, err = BuildEngine(EngineSpec{
			Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP,
			Mutate: func(cfg *core.Config) {
				cfg.BatchTimeout = pipelineBatchTimeout
				cfg.DeltaMaxSets = thr
				cfg.DeltaMaxRatio = 1e-9 // threshold fully owned by DeltaMaxSets
			},
		})
		if err == nil {
			err = eng.LoadSnapshot(bytes.NewReader(snap))
		}
	case "stw":
		eng, devs, err = BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP,
			Mutate: func(cfg *core.Config) {
				cfg.BatchTimeout = pipelineBatchTimeout
				cfg.DisableDeltaOverlay = true
			},
		})
	default: // no_churn
		eng, devs, err = BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: maxP,
			Mutate: func(cfg *core.Config) {
				cfg.BatchTimeout = pipelineBatchTimeout
			},
		})
	}
	if err != nil {
		panic(err)
	}
	defer func() {
		eng.Close()
		closeDevices(devs)
	}()

	// Warmup cycle over the distinct query set.
	var warmWg sync.WaitGroup
	warmWg.Add(len(queries))
	for _, q := range queries {
		if err := eng.SubmitSignature(q, false, func(core.MatchResult) {
			warmWg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	warmWg.Wait()

	st0 := eng.Stats()

	n := p.Queries
	churn := mode != "no_churn"
	churnEvery := 1
	if churn && len(ops) > 0 {
		churnEvery = n / len(ops)
		if churnEvery < 1 {
			churnEvery = 1
		}
	}
	probeEvery := 0
	if churn {
		probeEvery = n / churnVisibilityProbes
		if probeEvery < 1 {
			probeEvery = 1
		}
	}

	var stwPauses []time.Duration
	var vis visRecorder
	var pendingProbe struct {
		sig bitvec.Vector
		key core.Key
		t0  time.Time
	}
	probeSeq := 0
	opIdx := 0
	sinceConsolidate := 0

	sem := make(chan struct{}, pipelineInflight)
	lat := make([]time.Duration, n)
	starts := make([]time.Time, n)
	var matched int64
	var wg sync.WaitGroup
	wg.Add(n)
	begin := time.Now()
	for i := 0; i < n; i++ {
		if churn && opIdx < len(ops) && i%churnEvery == 0 {
			op := ops[opIdx]
			opIdx++
			if op.add {
				eng.AddSignature(op.sig, op.key)
			} else {
				eng.RemoveSignature(op.sig, op.key)
			}
			sinceConsolidate++
			if mode == "stw" && sinceConsolidate >= thr {
				// The ablation: drain the pipeline and rebuild
				// synchronously, the whole duration a stop-the-world pause
				// for every in-flight and queued query.
				t0 := time.Now()
				if err := eng.Consolidate(); err != nil {
					panic(err)
				}
				stwPauses = append(stwPauses, time.Since(t0))
				sinceConsolidate = 0
				if pendingProbe.key != 0 {
					vis.submit(eng, pendingProbe.sig, pendingProbe.key, pendingProbe.t0)
					pendingProbe.key = 0
				}
			}
		}
		if churn && probeEvery > 0 && i%probeEvery == probeEvery/2 && probeSeq < churnVisibilityProbes {
			sig, key := probeSignature(p.Seed, probeSeq)
			probeSeq++
			if mode == "stw" {
				// Not visible until the next batch consolidate: stamp now,
				// confirm there.
				if pendingProbe.key == 0 {
					pendingProbe.sig, pendingProbe.key, pendingProbe.t0 = sig, key, time.Now()
					eng.AddSignature(sig, key)
				}
			} else {
				t0 := time.Now()
				eng.AddSignature(sig, key)
				vis.submit(eng, sig, key, t0)
			}
		}
		sem <- struct{}{}
		i := i
		starts[i] = time.Now()
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(res core.MatchResult) {
			lat[i] = time.Since(starts[i])
			atomic.AddInt64(&matched, int64(len(res.Keys)))
			<-sem
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	vis.wg.Wait()
	el := time.Since(begin)
	st1 := eng.Stats()

	cell := ChurnCell{
		Config:   mode,
		QPS:      float64(n) / el.Seconds(),
		KeysPS:   float64(matched) / el.Seconds(),
		Keys:     matched,
		P50Us:    quantileUs(lat, 0.50),
		P99Us:    quantileUs(lat, 0.99),
		ChurnOps: int64(opIdx),

		AutoConsolidations:    st1.AutoConsolidations - st0.AutoConsolidations,
		DeltaMatches:          st1.DeltaMatches - st0.DeltaMatches,
		TombstoneSuppressions: st1.TombstoneSuppressed - st0.TombstoneSuppressed,
	}
	switch mode {
	case "live_bg":
		hs := eng.Obs().Delta.SwapPause.Snapshot()
		cell.PauseP50Ms = float64(hs.QuantileDuration(0.50)) / 1e6
		cell.PauseP99Ms = float64(hs.QuantileDuration(0.99)) / 1e6
		cell.PauseMaxMs = float64(hs.Max) / 1e6
	case "stw":
		cell.Consolidations = int64(len(stwPauses))
		cell.PauseP50Ms = quantileUs(stwPauses, 0.50) / 1e3
		cell.PauseP99Ms = quantileUs(stwPauses, 0.99) / 1e3
		var mx time.Duration
		for _, d := range stwPauses {
			if d > mx {
				mx = d
			}
		}
		cell.PauseMaxMs = float64(mx) / 1e6
	}
	if samples := vis.take(); len(samples) > 0 {
		cell.VisibilityP50Us = quantileUs(samples, 0.50)
		cell.VisibilityP99Us = quantileUs(samples, 0.99)
	}
	return cell
}

// visRecorder measures update-visibility latency without stalling the
// feeder: each probe is one extra asynchronous query whose answer must
// already contain the freshly added key (the overlay guarantees this;
// for stw the probe is submitted right after the batch consolidate).
type visRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	wg      sync.WaitGroup
}

func (v *visRecorder) submit(eng *core.Engine, sig bitvec.Vector, key core.Key, t0 time.Time) {
	v.wg.Add(1)
	if err := eng.SubmitSignature(sig, false, func(res core.MatchResult) {
		defer v.wg.Done()
		for _, k := range res.Keys {
			if k == key {
				v.mu.Lock()
				v.samples = append(v.samples, time.Since(t0))
				v.mu.Unlock()
				return
			}
		}
		panic(fmt.Sprintf("churn: probe key %d missing from the first answer after its add", key))
	}); err != nil {
		panic(err)
	}
}

func (v *visRecorder) take() []time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.samples
}

// probeSignature builds a fresh signature outside the workload's tag
// vocabulary for visibility probes, with a key outside every other key
// range.
func probeSignature(seed int64, seq int) (bitvec.Vector, core.Key) {
	var sig bitvec.Vector
	for t := 0; t < 5; t++ {
		bloom.AddTag(&sig, fmt.Sprintf("__vis-probe-%d-%d-%d", seed, seq, t))
	}
	return sig, core.Key(90_000_000 + seq)
}

// churnParity is the differential phase: a deterministic interleaved
// add/remove/match sequence runs against a live engine answering through
// the overlay and an oracle engine consolidated before every match;
// sorted answers must be byte-identical at every probe. Returns whether
// all probes matched and how many ran.
func churnParity(p Params, ds *Dataset) (bool, int) {
	n := min(len(ds.Sigs), 2000)
	sigs, keys := ds.Sigs[:n], ds.Keys[:n]
	build := func(disableOverlay bool) *core.Engine {
		eng, _, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: 2, GPUs: 0,
			Mutate: func(cfg *core.Config) {
				cfg.BatchSize = 16
				cfg.DisableDeltaOverlay = disableOverlay
			},
		})
		if err != nil {
			panic(err)
		}
		return eng
	}
	live := build(false)
	defer live.Close()
	oracle := build(true)
	defer oracle.Close()

	rng := rand.New(rand.NewSource(p.Seed + 6200))
	probeQueries := ds.Queries(64, 0.2, -1, p.Seed+6300)
	next := core.Key(70_000_000)
	var pool []churnOp
	probes, ok := 0, true
	for step := 0; step < 400 && ok; step++ {
		switch {
		case step%8 == 7:
			q := probeQueries[rng.Intn(len(probeQueries))]
			got, err := live.MatchSignature(q, false)
			if err != nil {
				panic(err)
			}
			if err := oracle.Consolidate(); err != nil {
				panic(err)
			}
			want, err := oracle.MatchSignature(q, false)
			if err != nil {
				panic(err)
			}
			probes++
			if !sameKeyMultiset(got, want) {
				ok = false
			}
		case len(pool) > 4 && rng.Float64() < 0.2:
			i := rng.Intn(len(pool))
			live.RemoveSignature(pool[i].sig, pool[i].key)
			oracle.RemoveSignature(pool[i].sig, pool[i].key)
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		case rng.Float64() < 0.25:
			i := rng.Intn(n)
			live.RemoveSignature(sigs[i], keys[i])
			oracle.RemoveSignature(sigs[i], keys[i])
		default:
			// Bias adds toward signatures the probe queries can cover.
			sig := sigs[rng.Intn(n)]
			live.AddSignature(sig, next)
			oracle.AddSignature(sig, next)
			pool = append(pool, churnOp{sig: sig, key: next})
			next++
		}
	}
	// Final cross-check: consolidating the live engine must not change
	// its answers.
	if ok {
		if err := live.Consolidate(); err != nil {
			panic(err)
		}
		if err := oracle.Consolidate(); err != nil {
			panic(err)
		}
		for _, q := range probeQueries[:8] {
			got, err := live.MatchSignature(q, false)
			if err != nil {
				panic(err)
			}
			want, err := oracle.MatchSignature(q, false)
			if err != nil {
				panic(err)
			}
			probes++
			if !sameKeyMultiset(got, want) {
				ok = false
				break
			}
		}
	}
	return ok, probes
}

// sameKeyMultiset compares two answers as multisets.
func sameKeyMultiset(a, b []core.Key) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[core.Key]int, len(a))
	for _, k := range a {
		counts[k]++
	}
	for _, k := range b {
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// WriteJSON writes the result as indented JSON.
func (r *ChurnResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
