package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
)

// TailResult is the JSON shape of the tail-latency experiment
// (BENCH_tail.json): the same query stream measured with and without
// hedged re-dispatch while one degraded device straggles on 2% of its
// operations at ~20x magnitude. HedgedP99Improvement is the headline
// metric (unhedged p99 / hedged p99; the CI gate requires >= 2);
// HedgeExactness asserts hedges actually fired and every query still
// completed exactly once, and ResultsMatch that both runs produced
// identical match output.
type TailResult struct {
	P50UnhedgedUs  float64 `json:"p50_unhedged_us"`
	P99UnhedgedUs  float64 `json:"p99_unhedged_us"`
	P999UnhedgedUs float64 `json:"p999_unhedged_us"`
	P50HedgedUs    float64 `json:"p50_hedged_us"`
	P99HedgedUs    float64 `json:"p99_hedged_us"`
	P999HedgedUs   float64 `json:"p999_hedged_us"`

	HedgedP99Improvement float64 `json:"hedged_p99_improvement"`

	HedgesFired       int64 `json:"hedges_fired"`
	HedgesWon         int64 `json:"hedges_won"`
	HedgesLost        int64 `json:"hedges_lost"`
	HedgesCancelled   int64 `json:"hedges_cancelled"`
	InjectedSlowdowns int64 `json:"injected_slowdowns"`

	KeysUnhedged   int64 `json:"keys_unhedged"`
	KeysHedged     int64 `json:"keys_hedged"`
	ResultsMatch   bool  `json:"results_match"`
	HedgeExactness bool  `json:"hedge_exactness"`

	Queries       int     `json:"queries"`
	GPUs          int     `json:"gpus"`
	Threads       int     `json:"threads"`
	Seed          int64   `json:"seed"`
	SlowProb      float64 `json:"slow_prob"`
	SlowFactor    float64 `json:"slow_factor"`
	SlowDelayUs   float64 `json:"slow_delay_us"`
	HedgeBudgetUs float64 `json:"hedge_budget_us"`
}

// Straggler magnitude of the tail experiment: 2% of device operations
// stall for 20x their modeled cost plus a 20ms floor — against the
// few-millisecond end-to-end latency of a clean query at the paced
// operating point, a straggled operation is a ~20x outlier, the
// slow-not-broken device of the failure model.
//
// The hedge budget sits between the two regimes: comfortably above a
// clean batch's dispatch-to-done time (so clean batches rarely hedge)
// and far below the straggler stall (so a hedged straggler is rescued
// at roughly budget + clean service instead of waiting out the stall).
//
// tailBatchTimeout turns the flusher on: a paced arrival stream leaves
// most batches partially filled, so they must age out on the timeout
// rather than wait for fresh traffic — exactly the latency-facing
// configuration a deadline-bound deployment would run.
//
// tailLoadFraction paces the measured run at this fraction of the
// calibrated capacity: high enough to exercise real batching, low
// enough that queues stay bounded and the tail is stragglers, not
// queue depth.
const (
	tailSlowProb     = 0.02
	tailSlowFactor   = 20
	tailSlowDelay    = 50 * time.Millisecond
	tailHedgeBudget  = 5 * time.Millisecond
	tailBatchTimeout = time.Millisecond
	tailLoadFraction = 0.5
)

// Tail measures what hedged re-dispatch buys at the latency tail: two
// identical engines index the same database and serve the same query
// stream while one degraded device straggles on 2% of its operations
// (seeded, so both runs face the same straggler pattern); one engine
// runs with hedging off, the other re-dispatches any batch that
// exceeds a fixed budget. Per-query latency is sampled submit-to-done
// under an open loop paced at half the engine's calibrated capacity: a
// closed loop would saturate the pipeline and its percentiles would
// measure queue depth (Little's law), identical with and without
// hedging, where a paced arrival stream keeps queues bounded so the
// tail is made of exactly the straggler stalls hedging can fix.
//
// The expected shape: clean queries complete in a few batch timeouts,
// while a query whose batch hits an injected stall waits out the full
// straggler delay unhedged but only the hedge budget plus a clean
// rival's service time hedged — a p99 improvement well above the
// gated 2x.
func Tail(p Params) (*Table, *TailResult) {
	gpus := p.GPUs
	if gpus < 2 {
		gpus = 2 // a hedge needs a rival device to land on
	}
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.5)
	queries := ds.Queries(4096, 0.5, -1, p.Seed+4000)

	// Wide partitions keep the per-query fan-out to a handful of
	// sub-batches. At the paper's throughput-oriented MAX_P ratio a query
	// crosses dozens of partitions, so at a 2% per-operation straggle
	// rate nearly every query would intersect a straggler and the stall
	// would dominate the median, not the tail; a latency-oriented
	// deployment sizes partitions so a straggler stays a p99 event.
	maxP := len(sigs) / 8
	if maxP < 64 {
		maxP = 64
	}

	build := func(hedge bool) (*core.Engine, []*gpu.Device) {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: gpus,
			MaxP: maxP,
			Mutate: func(cfg *core.Config) {
				cfg.BatchTimeout = tailBatchTimeout
				if hedge {
					cfg.HedgePolicy = core.HedgePolicy{
						Mode: core.HedgeFixed, Budget: tailHedgeBudget,
					}
				}
			},
		})
		if err != nil {
			panic(err)
		}
		// Only device 0 straggles — the one-degraded-device-in-the-fleet
		// scenario hedging exists for (ECC retirement storm, thermal
		// throttling on a single card). With stragglers on every device a
		// hedge's rival attempt is as likely to stall as the primary, and
		// the p99 floor becomes the double-straggle case no single
		// re-dispatch can beat.
		devs[0].SetFaultPlan(&gpu.FaultPlan{
			Seed:       p.Seed,
			SlowProb:   tailSlowProb,
			SlowFactor: tailSlowFactor,
			SlowDelay:  tailSlowDelay,
		})
		return eng, devs
	}

	run := func(hedge bool, rate float64) (lat []time.Duration, matched int64, st core.Stats, slowed int64, pacedRate float64) {
		eng, devs := build(hedge)
		// Calibrate sustainable throughput under the same straggler plan
		// and the same shallow-batch regime as the paced run (doubling as
		// warmup), then pace the measured run at tailLoadFraction of it.
		// Both runs are paced off the unhedged engine's capacity so they
		// face an identical arrival schedule.
		capacity := calibrate(eng, queries, min(p.Queries/2, 2000))
		if rate <= 0 {
			rate = capacity * tailLoadFraction
		}
		lat, matched = measureOpenLoop(eng, queries, p.Queries, rate)
		st = eng.Stats()
		for _, d := range devs {
			slowed += d.Stats().InjectedSlowdowns
		}
		eng.Close()
		closeDevices(devs)
		return lat, matched, st, slowed, rate
	}

	latU, keysU, _, slowedU, rate := run(false, 0)
	latH, keysH, stH, slowedH, _ := run(true, rate)

	r := &TailResult{
		P50UnhedgedUs:  quantileUs(latU, 0.50),
		P99UnhedgedUs:  quantileUs(latU, 0.99),
		P999UnhedgedUs: quantileUs(latU, 0.999),
		P50HedgedUs:    quantileUs(latH, 0.50),
		P99HedgedUs:    quantileUs(latH, 0.99),
		P999HedgedUs:   quantileUs(latH, 0.999),

		HedgesFired:       stH.HedgesFired,
		HedgesWon:         stH.HedgesWon,
		HedgesLost:        stH.HedgesLost,
		HedgesCancelled:   stH.HedgesCancelled,
		InjectedSlowdowns: slowedU + slowedH,

		KeysUnhedged: keysU,
		KeysHedged:   keysH,
		ResultsMatch: keysU == keysH,
		HedgeExactness: stH.HedgesFired > 0 &&
			stH.QueriesCompleted == stH.QueriesSubmitted,

		Queries:       p.Queries,
		GPUs:          gpus,
		Threads:       p.Threads,
		Seed:          p.Seed,
		SlowProb:      tailSlowProb,
		SlowFactor:    tailSlowFactor,
		SlowDelayUs:   float64(tailSlowDelay) / float64(time.Microsecond),
		HedgeBudgetUs: float64(tailHedgeBudget) / float64(time.Microsecond),
	}
	if r.P99HedgedUs > 0 {
		r.HedgedP99Improvement = r.P99UnhedgedUs / r.P99HedgedUs
	}

	t := &Table{
		ID:    "tail",
		Title: "Query latency under 2% injected 20x stragglers (ms)",
		Cols:  []string{"unhedged", "hedged"},
	}
	t.Add("p50", r.P50UnhedgedUs/1e3, r.P50HedgedUs/1e3)
	t.Add("p99", r.P99UnhedgedUs/1e3, r.P99HedgedUs/1e3)
	t.Add("p99.9", r.P999UnhedgedUs/1e3, r.P999HedgedUs/1e3)
	t.Note("hedged p99 improvement: %.1fx (budget %v, stragglers %v)",
		r.HedgedP99Improvement, tailHedgeBudget, tailSlowDelay)
	t.Note("hedges fired=%d won=%d lost=%d cancelled=%d; injected slowdowns=%d",
		r.HedgesFired, r.HedgesWon, r.HedgesLost, r.HedgesCancelled, r.InjectedSlowdowns)
	if r.ResultsMatch && r.HedgeExactness {
		t.Note("exactly-once: matched keys identical across runs (%d)", r.KeysUnhedged)
	} else {
		t.Note("EXACTNESS VIOLATION: unhedged=%d hedged=%d keys, exactness=%v",
			r.KeysUnhedged, r.KeysHedged, r.HedgeExactness)
	}
	return t, r
}

// calibrate measures sustainable throughput in the same shallow-batch
// regime the paced run operates in: a closed loop with a small
// in-flight bound. A saturating unbounded burst would measure the
// deep-batch regime, whose much higher per-query efficiency does not
// transfer to a paced arrival stream where batches age out on the
// timeout mostly unfilled. The calibration burst doubles as warmup.
func calibrate(eng *core.Engine, queries []bitvec.Vector, n int) float64 {
	const inflight = 32
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(core.MatchResult) {
			<-sem
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// measureOpenLoop drives n queries through the engine at a fixed
// arrival rate (queries/second) and records each query's
// submit-to-done wall time. Arrivals follow an absolute schedule, so a
// transient stall does not shift later arrivals (the loop catches up
// instead); a generous in-flight backstop prevents unbounded backlog
// if the rate still momentarily exceeds capacity.
func measureOpenLoop(eng *core.Engine, queries []bitvec.Vector, n int, rate float64) ([]time.Duration, int64) {
	interval := time.Duration(float64(time.Second) / rate)
	sem := make(chan struct{}, 256)
	lat := make([]time.Duration, n)
	starts := make([]time.Time, n)
	var keys int64
	var wg sync.WaitGroup
	wg.Add(n)
	begin := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(begin.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		i := i
		starts[i] = time.Now()
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(r core.MatchResult) {
			lat[i] = time.Since(starts[i])
			atomic.AddInt64(&keys, int64(len(r.Keys)))
			<-sem
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	return lat, keys
}

// quantileUs returns the q-quantile of lat in microseconds.
func quantileUs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx]) / float64(time.Microsecond)
}

// WriteJSON writes the result as indented JSON.
func (r *TailResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
