// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment function returns a Table whose rows
// mirror the rows/series the paper reports; cmd/tagmatch-bench prints
// them and bench_test.go wraps them as Go benchmarks.
//
// All experiments run against a scaled-down Twitter-like workload
// (package workload). Scale 1.0 would be the paper's full database of
// ~212M unique sets on 300M users; the default scale keeps the full
// database around one million sets so the whole suite completes in
// minutes on a laptop. Relative results — who wins, by what factor,
// where curves bend — are the reproduction target; absolute numbers are
// recorded per-scale in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/bloom"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
	"tagmatch/internal/workload"
)

// DefaultScale is the fraction of the paper's workload used when none is
// specified: 300M users × 0.002 = 600K users, giving a full database of
// roughly 1-2M interests.
const DefaultScale = 0.002

// paperUsers is the paper's full workload size (§4.2.1).
const paperUsers = 300_000_000

// Params fixes the knobs shared by all experiments.
type Params struct {
	Scale   float64 // fraction of the paper's 300M-user workload
	Seed    int64
	Threads int // CPU threads given to every subject system
	GPUs    int // simulated devices for TagMatch
	Queries int // queries per throughput measurement

	// SmallDBDocs is the base document count of the §4.4 MongoDB-
	// comparison workload; Fig10 uses 1x/3x/5x of it and Fig11 uses 3x
	// (the paper's 1M/3M/5M at its scale). Default 10000.
	SmallDBDocs int

	// StreamDepth and QueryWindow parameterize the pipeline experiment:
	// the pipelined stream depth of its non-baseline cells (0 = the
	// engine default of 2) and the per-device query-window ring size
	// (0 = the engine default of 16x the batch size).
	StreamDepth int
	QueryWindow int
}

// DefaultParams returns the standard configuration.
func DefaultParams() Params {
	return Params{
		Scale:   DefaultScale,
		Seed:    1,
		Threads: runtime.GOMAXPROCS(0),
		GPUs:    2,
		Queries: 20000,

		SmallDBDocs: 10000,
	}
}

func (p Params) smallDocsBase() int {
	if p.SmallDBDocs > 0 {
		return p.SmallDBDocs
	}
	return 10000
}

// Dataset is a generated workload: interest signatures with their user
// keys (the database) and a sample of interests used to build queries.
type Dataset struct {
	Params Params
	Gen    *workload.Generator

	Sigs []bitvec.Vector // one per interest (duplicates possible)
	Keys []core.Key

	Unique int // number of distinct signatures

	sampleSigs []bitvec.Vector // base signatures for query construction
}

var (
	dsCache   = map[string]*Dataset{}
	dsCacheMu sync.Mutex
)

// BuildDataset generates (or returns cached) the full scaled workload.
func BuildDataset(p Params) *Dataset {
	key := fmt.Sprintf("%g/%d", p.Scale, p.Seed)
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		ds.Params = p
		return ds
	}
	users := int(float64(paperUsers) * p.Scale)
	if users < 1000 {
		users = 1000
	}
	gen, err := workload.New(workload.NewConfig(users, p.Seed))
	if err != nil {
		panic(err) // static configuration; cannot fail at runtime
	}
	ds := &Dataset{Params: p, Gen: gen}
	seen := make(map[bitvec.Vector]struct{}, users)
	sampleEvery := 16
	gen.Generate(users, func(in workload.Interest) {
		sig := bloom.Signature(in.Tags)
		ds.Sigs = append(ds.Sigs, sig)
		ds.Keys = append(ds.Keys, core.Key(in.User))
		seen[sig] = struct{}{}
		if len(ds.Sigs)%sampleEvery == 0 {
			ds.sampleSigs = append(ds.sampleSigs, sig)
		}
	})
	ds.Unique = len(seen)
	dsCache[key] = ds
	return ds
}

// BaseMaxP returns the MAX_P the paper's ratio implies for the FULL
// scaled database (200K for 212M sets); experiments keep it fixed while
// sweeping database fractions, as the paper does.
func (ds *Dataset) BaseMaxP() int {
	maxP := len(ds.Sigs) / 1000
	if maxP < 64 {
		maxP = 64
	}
	return maxP
}

// Slice returns the first frac of the dataset's interests — the paper's
// "X% of the full Twitter database".
func (ds *Dataset) Slice(frac float64) (sigs []bitvec.Vector, keys []core.Key) {
	n := int(float64(len(ds.Sigs)) * frac)
	if n > len(ds.Sigs) {
		n = len(ds.Sigs)
	}
	return ds.Sigs[:n], ds.Keys[:n]
}

// Queries builds n query signatures per §4.2.2: a sampled database
// signature (from within the first frac of the database) OR-ed with
// extra random tags. extra < 0 draws from the configured 2..4 range.
//
// The extra tags come from the workload's own hashtag vocabulary (via
// the generator's query builder), as in the paper: this is what makes
// wider queries match multiplicatively more interests, the effect behind
// Fig 3's rising output rate.
func (ds *Dataset) Queries(n int, frac float64, extra int, seed int64) []bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	limit := int(float64(len(ds.sampleSigs)) * frac)
	if limit < 1 {
		limit = 1
	}
	if limit > len(ds.sampleSigs) {
		limit = len(ds.sampleSigs)
	}
	out := make([]bitvec.Vector, n)
	for i := range out {
		base := ds.sampleSigs[rng.Intn(limit)]
		extraTags := ds.Gen.Query(rng, nil, extra)
		var extraSig bitvec.Vector
		for _, tag := range extraTags {
			bloom.AddTag(&extraSig, tag)
		}
		out[i] = base.Or(extraSig)
	}
	return out
}

// KeysBySet groups a (sigs, keys) slice pair into unique signatures with
// key lists, the input shape of the baseline matchers.
func KeysBySet(sigs []bitvec.Vector, keys []core.Key) ([]bitvec.Vector, [][]uint32) {
	m := make(map[bitvec.Vector][]uint32, len(sigs))
	for i, s := range sigs {
		m[s] = append(m[s], uint32(keys[i]))
	}
	us := make([]bitvec.Vector, 0, len(m))
	ks := make([][]uint32, 0, len(m))
	for s, k := range m {
		us = append(us, s)
		ks = append(ks, k)
	}
	return us, ks
}

// Table is a printable experiment result.
type Table struct {
	ID    string // "table1", "fig4", ...
	Title string
	Cols  []string
	Rows  []Row
	Notes []string
}

// Row is one labeled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	width := 28
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, "")
	for _, c := range t.Cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%14s", fmtVal(v))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Print(&sb)
	return sb.String()
}

// ---- measurement helpers ----

// EngineSpec configures a TagMatch engine build for an experiment.
type EngineSpec struct {
	Sigs    []bitvec.Vector
	Keys    []core.Key
	Threads int
	GPUs    int
	MaxP    int // 0 = dbSize/1000 (the paper's ratio)
	Mutate  func(*core.Config)
}

// BuildEngine constructs devices and a consolidated engine.
func BuildEngine(spec EngineSpec) (*core.Engine, []*gpu.Device, error) {
	var devs []*gpu.Device
	for i := 0; i < spec.GPUs; i++ {
		devs = append(devs, gpu.New(gpu.Config{
			Name:    fmt.Sprintf("sim-gpu-%d", i),
			Workers: simWorkersPerGPU(spec.GPUs),
			Cost:    gpu.DefaultCost,
		}))
	}
	maxP := spec.MaxP
	if maxP == 0 {
		maxP = len(spec.Sigs) / 1000
		if maxP < 64 {
			maxP = 64
		}
	}
	cfg := core.Config{
		MaxPartitionSize: maxP,
		BatchSize:        256,
		Threads:          spec.Threads,
		Devices:          devs,
		StreamsPerDevice: 10,
		Replicate:        true,
		// Bulk staging below would repeatedly trip the background
		// consolidator at the default threshold; raise it past the load so
		// the explicit Consolidate that follows does one build. Mutate can
		// lower it again for live-update experiments.
		DeltaMaxSets: len(spec.Sigs) + 4096,
	}
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	eng, err := core.New(cfg)
	if err != nil {
		closeDevices(devs)
		return nil, nil, err
	}
	for i := range spec.Sigs {
		eng.AddSignature(spec.Sigs[i], spec.Keys[i])
	}
	if err := eng.Consolidate(); err != nil {
		eng.Close()
		closeDevices(devs)
		return nil, nil, err
	}
	return eng, devs, nil
}

func closeDevices(devs []*gpu.Device) {
	for _, d := range devs {
		d.Close()
	}
}

// simWorkersPerGPU sizes the simulated SM pool so that the simulation's
// GPU compute capacity does not oversubscribe the host cores.
func simWorkersPerGPU(gpus int) int {
	if gpus <= 0 {
		return 0
	}
	w := runtime.GOMAXPROCS(0) / (gpus + 1)
	if w < 2 {
		w = 2
	}
	return w
}

// ThroughputResult is one measured run.
type ThroughputResult struct {
	QPS     float64 // input throughput: queries/second
	KeysPS  float64 // output throughput: matched keys/second
	Keys    int64
	Elapsed time.Duration
}

// MeasureEngine drives n queries through the engine and reports input
// and output throughput. Queries are submitted from a single feeder, as
// in the paper's stream, and the run is timed until the last merge.
func MeasureEngine(eng *core.Engine, queries []bitvec.Vector, n int, unique bool) ThroughputResult {
	// Short untimed warmup so allocator and scheduler transients do not
	// pollute single-run numbers.
	warm := n / 8
	if warm > 1000 {
		warm = 1000
	}
	var warmWg sync.WaitGroup
	warmWg.Add(warm)
	for i := 0; i < warm; i++ {
		if err := eng.SubmitSignature(queries[i%len(queries)], unique, func(core.MatchResult) {
			warmWg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	warmWg.Wait()

	var wg sync.WaitGroup
	wg.Add(n)
	var keys int64
	var keysMu sync.Mutex
	start := time.Now()
	for i := 0; i < n; i++ {
		q := queries[i%len(queries)]
		if err := eng.SubmitSignature(q, unique, func(r core.MatchResult) {
			keysMu.Lock()
			keys += int64(len(r.Keys))
			keysMu.Unlock()
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	el := time.Since(start)
	return ThroughputResult{
		QPS:     float64(n) / el.Seconds(),
		KeysPS:  float64(keys) / el.Seconds(),
		Keys:    keys,
		Elapsed: el,
	}
}

// matcher abstracts the CPU baselines for shared measurement.
type matcher interface {
	Match(q bitvec.Vector, visit func(uint32))
	MatchUnique(q bitvec.Vector, visit func(uint32))
}

// MeasureMatcher runs queries against a CPU matcher with the given
// number of worker threads.
func MeasureMatcher(m matcher, queries []bitvec.Vector, n, threads int, unique bool) ThroughputResult {
	if threads < 1 {
		threads = 1
	}
	for i := 0; i < min(n/8, 200); i++ {
		m.Match(queries[i%len(queries)], func(uint32) {})
	}
	var keys int64
	var wg sync.WaitGroup
	start := time.Now()
	per := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := int64(0)
			for i := lo; i < hi; i++ {
				q := queries[i%len(queries)]
				if unique {
					m.MatchUnique(q, func(uint32) { local++ })
				} else {
					m.Match(q, func(uint32) { local++ })
				}
			}
			keysMuAdd(&keys, local)
		}(lo, hi)
	}
	wg.Wait()
	el := time.Since(start)
	return ThroughputResult{
		QPS:     float64(n) / el.Seconds(),
		KeysPS:  float64(keys) / el.Seconds(),
		Keys:    keys,
		Elapsed: el,
	}
}

var keysMu sync.Mutex

func keysMuAdd(p *int64, v int64) {
	keysMu.Lock()
	*p += v
	keysMu.Unlock()
}

// SortedCopy returns a sorted copy of values (test helper for monotone
// shape assertions).
func SortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Float64s(out)
	return out
}
