package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonTable is the stable serialized form of a Table.
type jsonTable struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Cols  []string  `json:"cols"`
	Rows  []jsonRow `json:"rows"`
	Notes []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// WriteJSON emits the table as a single JSON object, for plotting
// pipelines that postprocess experiment output.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{ID: t.ID, Title: t.Title, Cols: t.Cols, Notes: t.Notes}
	for _, r := range t.Rows {
		jt.Rows = append(jt.Rows, jsonRow{Label: r.Label, Values: r.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// WriteCSV emits the table as CSV: a header row of column labels, then
// one row per series.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"series"}, t.Cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBenchstat emits the table in Go benchmark output format, one line
// per row with a value-unit pair per column, so two runs can be compared
// with benchstat:
//
//	tagmatch-bench -format benchstat preprocess > old.txt
//	... change ...
//	tagmatch-bench -format benchstat preprocess > new.txt
//	benchstat old.txt new.txt
//
// Row labels and column names are sanitized into benchmark-name and unit
// tokens (no spaces); the iteration count is always 1.
func (t *Table) WriteBenchstat(w io.Writer) error {
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "Benchmark%s/%s 1", benchToken(t.ID), benchToken(r.Label)); err != nil {
			return err
		}
		for i, v := range r.Values {
			unit := "value"
			if i < len(t.Cols) {
				unit = benchToken(t.Cols[i])
			}
			if _, err := fmt.Fprintf(w, " %s %s", strconv.FormatFloat(v, 'g', -1, 64), unit); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// benchToken rewrites a free-form label into a single benchmark token:
// spaces and commas collapse to dashes, everything else passes through
// (benchstat accepts '/' in names and in units like ns/q).
func benchToken(s string) string {
	out := make([]byte, 0, len(s))
	dash := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == ',' || c == '\t' {
			dash = true
			continue
		}
		if dash && len(out) > 0 {
			out = append(out, '-')
		}
		dash = false
		out = append(out, c)
	}
	return string(out)
}

// DecodeJSONTable parses a table previously written by WriteJSON.
func DecodeJSONTable(r io.Reader) (*Table, error) {
	var jt jsonTable
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("experiments: decoding table: %w", err)
	}
	t := &Table{ID: jt.ID, Title: jt.Title, Cols: jt.Cols, Notes: jt.Notes}
	for _, r := range jt.Rows {
		t.Add(r.Label, r.Values...)
	}
	return t, nil
}
