package experiments

import (
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/gpu"
	"tagmatch/internal/gpuonly"
	"tagmatch/internal/icn"
	"tagmatch/internal/trie"
)

// table1Fracs maps the paper's 20M / 40M / 212M databases onto fractions
// of the scaled full database.
var table1Fracs = []struct {
	label string
	frac  float64
}{
	{"20M-equiv (9.4%)", 0.094},
	{"40M-equiv (18.9%)", 0.189},
	{"212M-equiv (100%)", 1.0},
}

// Table1 reproduces the summary comparison: throughput (thousands of
// match queries per second) of GPU-only plain, GPU-only batched,
// CPU prefix tree, CPU ICN matcher, CPU-only TagMatch, and TagMatch.
func Table1(p Params) *Table {
	ds := BuildDataset(p)
	t := &Table{
		ID:    "table1",
		Title: "summary throughput, match (K queries/s)",
		Cols:  []string{},
	}
	rows := map[string][]float64{}
	order := []string{
		"GPU-only, plain",
		"GPU-only, plain with batching",
		"CPU-only, prefix tree",
		"CPU-only, ICN matcher",
		"CPU-only, TagMatch",
		"TagMatch",
	}

	for _, fc := range table1Fracs {
		t.Cols = append(t.Cols, fc.label)
		sigs, keys := ds.Slice(fc.frac)
		unique, keysBySet := KeysBySet(sigs, keys)
		queries := ds.Queries(4096, fc.frac, -1, p.Seed+100)

		// GPU-only, plain: one query per kernel over the whole table.
		func() {
			dev := gpu.New(gpu.Config{Workers: simWorkersPerGPU(1), Cost: gpu.DefaultCost})
			defer dev.Close()
			pl, err := gpuonly.NewPlain(dev, unique, keysBySet, 1<<20)
			if err != nil {
				panic(err)
			}
			defer pl.Close()
			n := 60
			r := timeRun(func() int64 {
				var k int64
				for i := 0; i < n; i++ {
					pl.Match(queries[i%len(queries)], func(uint32) { k++ })
				}
				return k
			}, n)
			rows["GPU-only, plain"] = append(rows["GPU-only, plain"], r.QPS/1e3)
		}()

		// GPU-only, plain with batching.
		func() {
			dev := gpu.New(gpu.Config{Workers: simWorkersPerGPU(1), Cost: gpu.DefaultCost})
			defer dev.Close()
			bt, err := gpuonly.NewBatched(dev, unique, keysBySet, 256, 1<<20)
			if err != nil {
				panic(err)
			}
			defer bt.Close()
			n := 4096
			r := timeRun(func() int64 {
				var k int64
				for off := 0; off < n; off += 256 {
					end := min(off+256, n)
					batch := make([]bitvec.Vector, 0, 256)
					for i := off; i < end; i++ {
						batch = append(batch, queries[i%len(queries)])
					}
					bt.MatchBatch(batch, func(int, uint32) { k++ })
				}
				return k
			}, n)
			rows["GPU-only, plain with batching"] = append(rows["GPU-only, plain with batching"], r.QPS/1e3)
		}()

		// CPU prefix tree.
		tr := trie.New()
		for i, s := range unique {
			for _, k := range keysBySet[i] {
				tr.Add(s, k)
			}
		}
		tr.Freeze()
		r := MeasureMatcher(matcherAdapter{tr}, queries, 3000, p.Threads, false)
		rows["CPU-only, prefix tree"] = append(rows["CPU-only, prefix tree"], r.QPS/1e3)

		// CPU ICN matcher.
		ib := icn.NewBuilder()
		for i, s := range unique {
			for _, k := range keysBySet[i] {
				ib.Add(s, k)
			}
		}
		im := ib.Build()
		r = MeasureMatcher(matcherAdapter{im}, queries, 3000, p.Threads, false)
		rows["CPU-only, ICN matcher"] = append(rows["CPU-only, ICN matcher"], r.QPS/1e3)

		// CPU-only TagMatch (same pipeline, no devices).
		func() {
			eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: 0, MaxP: ds.BaseMaxP()})
			if err != nil {
				panic(err)
			}
			defer eng.Close()
			defer closeDevices(devs)
			r := MeasureEngine(eng, queries, p.Queries/4, false)
			rows["CPU-only, TagMatch"] = append(rows["CPU-only, TagMatch"], r.QPS/1e3)
		}()

		// TagMatch (hybrid).
		func() {
			eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
			if err != nil {
				panic(err)
			}
			defer eng.Close()
			defer closeDevices(devs)
			r := MeasureEngine(eng, queries, p.Queries, false)
			rows["TagMatch"] = append(rows["TagMatch"], r.QPS/1e3)
		}()
	}

	for _, label := range order {
		t.Add(label, rows[label]...)
	}
	t.Note("scale %.4g of the paper's workload: full database = %d interests (%d unique sets)",
		p.Scale, len(ds.Sigs), ds.Unique)
	return t
}

// matcherAdapter adapts trie/icn matchers (visit func(uint32)) to the
// shared matcher interface.
type matcherAdapter struct {
	m interface {
		Match(bitvec.Vector, func(uint32))
		MatchUnique(bitvec.Vector, func(uint32))
	}
}

func (a matcherAdapter) Match(q bitvec.Vector, visit func(uint32)) { a.m.Match(q, visit) }
func (a matcherAdapter) MatchUnique(q bitvec.Vector, visit func(uint32)) {
	a.m.MatchUnique(q, visit)
}

// timeRun measures one synchronous run.
func timeRun(run func() int64, n int) ThroughputResult {
	start := time.Now()
	keys := run()
	el := time.Since(start)
	return ThroughputResult{
		QPS:     float64(n) / el.Seconds(),
		KeysPS:  float64(keys) / el.Seconds(),
		Keys:    keys,
		Elapsed: el,
	}
}

// Table3 compares TagMatch, the prefix tree and the ICN matcher at 10%
// and 20% of the full database for match and match-unique.
func Table3(p Params) *Table {
	ds := BuildDataset(p)
	t := &Table{
		ID:    "table3",
		Title: "TagMatch vs prefix tree vs ICN matcher (K queries/s)",
		Cols:  []string{"10% match", "20% match", "10% m-unique", "20% m-unique"},
	}
	type cell struct{ frac float64 }
	fracs := []cell{{0.10}, {0.20}}

	var tm, pt, ic [4]float64
	var icnPeak, icnResident int64
	for fi, fc := range fracs {
		sigs, keys := ds.Slice(fc.frac)
		uniqueSigs, keysBySet := KeysBySet(sigs, keys)
		queries := ds.Queries(4096, fc.frac, -1, p.Seed+300)

		tr := trie.New()
		ib := icn.NewBuilder()
		for i, s := range uniqueSigs {
			for _, k := range keysBySet[i] {
				tr.Add(s, k)
				ib.Add(s, k)
			}
		}
		tr.Freeze()
		im := ib.Build()
		icnPeak = im.BuildPeakBytes()
		icnResident = im.MemoryBytes()

		eng, devs, err := BuildEngine(EngineSpec{Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs, MaxP: ds.BaseMaxP()})
		if err != nil {
			panic(err)
		}
		for ui, unique := range []bool{false, true} {
			col := fi + 2*ui
			tm[col] = MeasureEngine(eng, queries, p.Queries, unique).QPS / 1e3
			pt[col] = MeasureMatcher(matcherAdapter{tr}, queries, 3000, p.Threads, unique).QPS / 1e3
			ic[col] = MeasureMatcher(matcherAdapter{im}, queries, 3000, p.Threads, unique).QPS / 1e3
		}
		eng.Close()
		closeDevices(devs)
	}
	t.Add("TagMatch", tm[:]...)
	t.Add("Prefix tree", pt[:]...)
	t.Add("ICN matcher", ic[:]...)
	t.Note("ICN build-time peak memory at 20%%: %d bytes (%.1fx resident) — the trait that capped the paper's ICN runs at 20%%",
		icnPeak, float64(icnPeak)/float64(icnResident))
	return t
}
