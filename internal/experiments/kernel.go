package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/core"
	"tagmatch/internal/gpu"
)

// KernelRun is one end-to-end engine measurement of the match-kernel
// comparison: the kernel flavor, the achieved throughput, and — for the
// sliced flavor — the group-gate and column-walk telemetry.
type KernelRun struct {
	Kernel  string    `json:"kernel"` // "scalar" or "sliced"
	QPS     float64   `json:"qps"`
	RunsQPS []float64 `json:"runs_qps"`
	Keys    int64     `json:"keys"`

	GateChecks    int64 `json:"gate_checks,omitempty"`
	GatePruned    int64 `json:"gate_pruned,omitempty"`
	GroupScans    int64 `json:"group_scans,omitempty"`
	ColumnsWalked int64 `json:"columns_walked,omitempty"`
}

// KernelResult is the JSON shape of the match-kernel before/after
// comparison (BENCH_kernel.json): the isolated subset-match kernel cost
// per query for the scalar per-thread kernel vs. the bit-sliced
// column-transposed kernel, end-to-end throughput of engines using each
// flavor, and the correctness re-checks the sliced path must pass.
type KernelResult struct {
	Partitions int `json:"partitions"`
	Batches    int `json:"batches"`
	Queries    int `json:"queries"`

	ScalarNsPerQuery float64 `json:"scalar_kernel_ns_per_query"`
	SlicedNsPerQuery float64 `json:"sliced_kernel_ns_per_query"`
	// Speedup is scalar/sliced kernel time; the acceptance bar for the
	// bit-sliced kernel is ≥ 2.
	Speedup float64 `json:"kernel_speedup"`

	// ResultsMatch: both kernel flavors emitted exactly the brute-force
	// reference pairs in the isolated benchmark AND the end-to-end
	// engines returned the same number of matched keys.
	ResultsMatch bool `json:"results_match"`
	// ChaosResultsMatch: a sliced-kernel engine under injected GPU
	// faults (one device death plus 5% op faults on survivors, the
	// chaos experiment's fault plan) still produced exactly the healthy
	// sliced engine's matched keys — the degradation ladder's CPU
	// re-runs use the sliced host path too.
	ChaosResultsMatch bool `json:"chaos_results_match"`

	// Work telemetry from the isolated parity pass: how often the
	// per-group gate fired and how many column words a surviving scan
	// actually walked (of bitvec.W per full scan).
	GatePruneRate  float64 `json:"gate_prune_rate"`
	ColumnsPerScan float64 `json:"columns_per_scan"`

	E2E []KernelRun `json:"e2e"`
}

// Kernel measures the subset-match kernel overhaul: the bit-sliced
// column-transposed kernel against the retained scalar per-thread
// kernel, first in isolation (core.KernelBenchmark: identical routing,
// batching, and result path; only the match loop differs), then end to
// end through engines differing only in Config.ScalarKernel, and
// finally re-checking exactness of the sliced path under the chaos
// experiment's fault plan. Medians of repeated runs are reported.
func Kernel(p Params) (*Table, *KernelResult) {
	ds := BuildDataset(p)

	// Isolated kernel cost over the full dataset slice. Each rep runs
	// both flavors back to back over identical batches, so host drift
	// hits both equally; per-flavor medians are taken across reps.
	benchSigs, _ := ds.Slice(1.0)
	benchQueries := ds.Queries(2048, 1.0, -1, p.Seed+5000)
	const reps = 5
	iters := p.Queries / len(benchQueries)
	if iters < 1 {
		iters = 1
	}
	var scalarNs, slicedNs []float64
	parity := true
	var last core.KernelBenchResult
	for rep := 0; rep < reps; rep++ {
		r := core.KernelBenchmark(benchSigs, ds.BaseMaxP(), benchQueries,
			0 /* max batch */, 256, iters, simWorkersPerGPU(1))
		scalarNs = append(scalarNs, r.ScalarNs)
		slicedNs = append(slicedNs, r.SlicedNs)
		parity = parity && r.Parity
		last = r
	}
	scMed, slMed := medianFloat(scalarNs), medianFloat(slicedNs)

	res := &KernelResult{
		Partitions:       last.Partitions,
		Batches:          last.Batches,
		Queries:          p.Queries,
		ScalarNsPerQuery: scMed,
		SlicedNsPerQuery: slMed,
		Speedup:          scMed / slMed,
	}
	if last.GateChecks > 0 {
		res.GatePruneRate = float64(last.GatePruned) / float64(last.GateChecks)
	}
	if last.GroupScans > 0 {
		res.ColumnsPerScan = float64(last.ColumnsWalked) / float64(last.GroupScans)
	}

	t := &Table{
		ID:    "kernel",
		Title: "Bit-sliced subset-match kernel: kernel cost and end-to-end throughput",
		Cols:  []string{"kernel ns/q", "Kq/s"},
	}

	// End-to-end: identical engines, identical query stream, only the
	// kernel flavor differs.
	sigs, keys := ds.Slice(0.25)
	queries := ds.Queries(4096, 0.25, -1, p.Seed+5000)
	for _, flavor := range []struct {
		name   string
		scalar bool
	}{{"scalar", true}, {"sliced", false}} {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs,
			MaxP:   ds.BaseMaxP(),
			Mutate: func(c *core.Config) { c.ScalarKernel = flavor.scalar },
		})
		if err != nil {
			panic(err)
		}
		run := KernelRun{Kernel: flavor.name}
		var qps []float64
		for rep := 0; rep < reps; rep++ {
			r := MeasureEngine(eng, queries, p.Queries, false)
			qps = append(qps, r.QPS)
			run.RunsQPS = append(run.RunsQPS, r.QPS)
			run.Keys = r.Keys
		}
		st := eng.Stats()
		run.GateChecks, run.GatePruned = st.KernelGateChecks, st.KernelGatePruned
		run.GroupScans, run.ColumnsWalked = st.KernelGroupScans, st.KernelColumnsWalked
		eng.Close()
		closeDevices(devs)
		run.QPS = medianFloat(qps)
		res.E2E = append(res.E2E, run)

		nsPerQ := scMed
		if !flavor.scalar {
			nsPerQ = slMed
		}
		t.Add(fmt.Sprintf("%s kernel", flavor.name), nsPerQ, run.QPS/1e3)
	}
	res.ResultsMatch = parity &&
		len(res.E2E) == 2 && res.E2E[0].Keys == res.E2E[1].Keys

	// Chaos re-check on the sliced path: the chaos experiment's fault
	// plan (device 0 dies mid-run, survivors drop 5% of ops) against a
	// healthy twin, both sliced. Exactness must survive the retry and
	// CPU-fallback ladder with the transposed kernel in the loop.
	gpus := p.GPUs
	if gpus < 2 {
		gpus = 2
	}
	buildSliced := func() (*core.Engine, []*gpu.Device) {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: gpus,
			MaxP: ds.BaseMaxP(),
		})
		if err != nil {
			panic(err)
		}
		return eng, devs
	}
	hEng, hDevs := buildSliced()
	h := MeasureEngine(hEng, queries, p.Queries, false)
	hEng.Close()
	closeDevices(hDevs)

	fEng, fDevs := buildSliced()
	fDevs[0].SetFaultPlan(&gpu.FaultPlan{Seed: p.Seed, DieAtOp: 2000})
	for _, d := range fDevs[1:] {
		d.SetFaultPlan(&gpu.FaultPlan{
			Seed:           p.Seed,
			CopyFailProb:   0.05,
			LaunchFailProb: 0.05,
		})
	}
	f := MeasureEngine(fEng, queries, p.Queries, false)
	fSt := fEng.Stats()
	fEng.Close()
	closeDevices(fDevs)
	res.ChaosResultsMatch = h.Keys == f.Keys

	t.Note("match kernel: %.0f ns/q scalar -> %.0f ns/q sliced (%.1fx) over %d partitions, %d batches; median of %d runs",
		scMed, slMed, res.Speedup, res.Partitions, res.Batches, reps)
	t.Note("group gate pruned %.1f%% of (group,query) tests; survivors walked %.1f of %d columns",
		res.GatePruneRate*100, res.ColumnsPerScan, bitvec.W)
	if res.ResultsMatch {
		t.Note("results exact: kernel parity vs brute force and equal keys across flavors (%d)", res.E2E[1].Keys)
	} else {
		t.Note("RESULT MISMATCH: parity=%v scalar_keys=%d sliced_keys=%d",
			parity, res.E2E[0].Keys, res.E2E[1].Keys)
	}
	if res.ChaosResultsMatch {
		t.Note("chaos re-check: sliced path exact under faults (%d keys, %d cpu_fallbacks, %d retries)",
			h.Keys, fSt.CPUFallbacks, fSt.BatchRetries)
	} else {
		t.Note("CHAOS MISMATCH on sliced path: healthy=%d faulty=%d keys", h.Keys, f.Keys)
	}
	return t, res
}

// WriteJSON writes the result as indented JSON.
func (r *KernelResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
