package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tagmatch/internal/bitvec"
	"tagmatch/internal/core"
	"tagmatch/internal/obs"
)

// HotpathRun is one (engine config, pooling) cell of the hot-path
// comparison: throughput, end-to-end latency percentiles from the obs
// histograms, and allocator pressure per query.
type HotpathRun struct {
	Config         string    `json:"config"` // "cpu" or "gpu"
	Pooling        bool      `json:"pooling"`
	QPS            float64   `json:"qps"`
	P50Us          float64   `json:"p50_us"`
	P99Us          float64   `json:"p99_us"`
	AllocsPerQuery float64   `json:"allocs_per_query"`
	BytesPerQuery  float64   `json:"bytes_per_query"`
	RunsQPS        []float64 `json:"runs_qps"`
}

// HotpathResult is the JSON shape of the hot-path before/after
// comparison (BENCH_hotpath.json): pooling on (the default) vs. off
// (DisablePooling) across a CPU-only and a simulated-GPU engine.
type HotpathResult struct {
	Runs    []HotpathRun `json:"runs"`
	Queries int          `json:"queries"`
	GPUs    int          `json:"gpus"`
	Threads int          `json:"threads"`
}

// hotpathSample is one measured run of one engine.
type hotpathSample struct {
	qps          float64
	p50us, p99us float64
	allocsPerQ   float64
	bytesPerQ    float64
}

// histDelta subtracts an earlier histogram snapshot from a later one of
// the same histogram, so percentiles cover only the samples recorded in
// between (buckets are per-bucket counts, monotone over time). Max
// cannot be windowed and is carried from the later snapshot; it only
// shows through Quantile in the topmost occupied bucket.
func histDelta(before, after obs.HistSnapshot) obs.HistSnapshot {
	prev := make(map[int64]uint64, len(before.Buckets))
	for _, b := range before.Buckets {
		prev[b.Upper] = b.Count
	}
	d := obs.HistSnapshot{
		Count: after.Count - before.Count,
		Sum:   after.Sum - before.Sum,
		Max:   after.Max,
	}
	for _, b := range after.Buckets {
		if n := b.Count - prev[b.Upper]; n > 0 {
			d.Buckets = append(d.Buckets, obs.Bucket{Upper: b.Upper, Count: n})
		}
	}
	return d
}

// measureHotpath drives n queries through the engine and reports
// throughput, the E2E latency percentiles of exactly that window (via
// histogram snapshot deltas), and allocations per query (via mallocs /
// heap-bytes counter deltas, which include every pipeline goroutine).
func measureHotpath(eng *core.Engine, queries []bitvec.Vector, n int) hotpathSample {
	warm := min(n/8, 1000)
	var warmWg sync.WaitGroup
	warmWg.Add(warm)
	for i := 0; i < warm; i++ {
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(core.MatchResult) {
			warmWg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	warmWg.Wait()

	e2e := eng.Obs().StageHistogram(obs.StageE2E)
	before := e2e.Snapshot()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := eng.SubmitSignature(queries[i%len(queries)], false, func(core.MatchResult) {
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wg.Wait()
	el := time.Since(start)

	runtime.ReadMemStats(&msAfter)
	window := histDelta(before, e2e.Snapshot())
	return hotpathSample{
		qps:        float64(n) / el.Seconds(),
		p50us:      float64(window.Quantile(0.50)) / 1e3,
		p99us:      float64(window.Quantile(0.99)) / 1e3,
		allocsPerQ: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(n),
		bytesPerQ:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(n),
	}
}

// medianByQPS returns the sample with the median throughput, so the
// reported latency/alloc numbers come from one coherent run rather than
// mixing fields across runs.
func medianByQPS(samples []hotpathSample) hotpathSample {
	sorted := append([]hotpathSample(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].qps < sorted[j-1].qps; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// Hotpath measures the steady-state submit→complete path with buffer
// pooling on (the default) and off (Config.DisablePooling), on a
// CPU-only engine and on a simulated-GPU engine. Runs alternate
// pooled/unpooled so host drift hits both configurations equally;
// medians of repeated runs are reported.
func Hotpath(p Params) (*Table, *HotpathResult) {
	ds := BuildDataset(p)
	sigs, keys := ds.Slice(0.25)
	queries := ds.Queries(4096, 0.25, -1, p.Seed+3000)

	const reps = 5
	res := &HotpathResult{Queries: p.Queries, GPUs: p.GPUs, Threads: p.Threads}
	t := &Table{
		ID:    "hotpath",
		Title: "Hot-path pooling: throughput, latency, allocator pressure",
		Cols:  []string{"Kq/s", "p50 us", "p99 us", "allocs/q", "B/q"},
	}

	for _, cfg := range []struct {
		name string
		gpus int
	}{{"cpu", 0}, {"gpu", p.GPUs}} {
		build := func(disablePooling bool) (*core.Engine, func()) {
			eng, devs, err := BuildEngine(EngineSpec{
				Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: cfg.gpus,
				MaxP:   ds.BaseMaxP(),
				Mutate: func(c *core.Config) { c.DisablePooling = disablePooling },
			})
			if err != nil {
				panic(err)
			}
			return eng, func() { eng.Close(); closeDevices(devs) }
		}
		engOn, closeOn := build(false)
		engOff, closeOff := build(true)
		var on, off []hotpathSample
		for rep := 0; rep < reps; rep++ {
			on = append(on, measureHotpath(engOn, queries, p.Queries))
			off = append(off, measureHotpath(engOff, queries, p.Queries))
		}
		closeOn()
		closeOff()

		for _, side := range []struct {
			pooling bool
			samples []hotpathSample
		}{{true, on}, {false, off}} {
			med := medianByQPS(side.samples)
			run := HotpathRun{
				Config:         cfg.name,
				Pooling:        side.pooling,
				QPS:            med.qps,
				P50Us:          med.p50us,
				P99Us:          med.p99us,
				AllocsPerQuery: med.allocsPerQ,
				BytesPerQuery:  med.bytesPerQ,
			}
			for _, s := range side.samples {
				run.RunsQPS = append(run.RunsQPS, s.qps)
			}
			res.Runs = append(res.Runs, run)
			label := fmt.Sprintf("%s, pooling %s", cfg.name, map[bool]string{true: "on", false: "off"}[side.pooling])
			t.Add(label, med.qps/1e3, med.p50us, med.p99us, med.allocsPerQ, med.bytesPerQ)
		}
		onMed, offMed := medianByQPS(on), medianByQPS(off)
		t.Note("%s: pooling %+.1f%% qps, allocs/q %.1f -> %.1f, p99 %s -> %s; median of %d runs",
			cfg.name, (onMed.qps-offMed.qps)/offMed.qps*100,
			offMed.allocsPerQ, onMed.allocsPerQ,
			time.Duration(offMed.p99us*1e3).Round(time.Microsecond),
			time.Duration(onMed.p99us*1e3).Round(time.Microsecond), reps)
	}
	return t, res
}

// WriteJSON writes the result as indented JSON.
func (r *HotpathResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
