package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"tagmatch/internal/core"
)

// PreprocessRun is one end-to-end engine measurement of the routing
// comparison: the lookup flavor and the achieved throughput.
type PreprocessRun struct {
	Routing string    `json:"routing"` // "scalar" or "sliced"
	QPS     float64   `json:"qps"`
	RunsQPS []float64 `json:"runs_qps"`

	// Lock amortization of the worker-local batch accumulators during
	// the measured runs (appends / locks ≥ 1; per-append locking is 1).
	RouteMergeLocks int64 `json:"route_merge_locks"`
	RouteAppends    int64 `json:"route_appends"`
}

// PreprocessResult is the JSON shape of the routing before/after
// comparison (BENCH_preprocess.json): the isolated Algorithm 2 lookup
// cost per query for the scalar scan vs. the bit-sliced table, and the
// end-to-end throughput of engines using each flavor.
type PreprocessResult struct {
	Partitions       int     `json:"partitions"`
	Queries          int     `json:"queries"`
	ScalarNsPerQuery float64 `json:"scalar_ns_per_query"`
	SlicedNsPerQuery float64 `json:"sliced_ns_per_query"`
	// Speedup is scalar/sliced routing time: the acceptance bar for the
	// bit-sliced index is ≥ 2.
	Speedup float64         `json:"routing_speedup"`
	E2E     []PreprocessRun `json:"e2e"`
}

// Preprocess measures the pre-process stage's routing overhaul: the
// bit-sliced partition lookup against the retained scalar Algorithm 2
// scan, first in isolation (table scan only, alternating flavors over
// identical queries), then end to end through engines differing only in
// Config.ScalarRouting. Medians of repeated runs are reported.
func Preprocess(p Params) (*Table, *PreprocessResult) {
	ds := BuildDataset(p)

	// Isolated routing cost, measured over the FULL dataset slice: the
	// partition table a consolidated engine would actually route
	// against. (The end-to-end engines below use the smaller 0.25 slice
	// so five engine builds per flavor stay affordable.) Flavors
	// alternate across reps so host drift hits both equally, then
	// per-flavor medians are taken.
	routeSigs, _ := ds.Slice(1.0)
	routeQueries := ds.Queries(4096, 1.0, -1, p.Seed+4000)
	const reps = 5
	iters := p.Queries / len(routeQueries)
	if iters < 1 {
		iters = 1
	}
	var scalarNs, slicedNs []float64
	var partitions int
	for rep := 0; rep < reps; rep++ {
		sc, sl, parts := core.RoutingBenchmark(routeSigs, ds.BaseMaxP(), routeQueries, iters)
		scalarNs = append(scalarNs, sc)
		slicedNs = append(slicedNs, sl)
		partitions = parts
	}
	scMed, slMed := medianFloat(scalarNs), medianFloat(slicedNs)

	res := &PreprocessResult{
		Partitions:       partitions,
		Queries:          p.Queries,
		ScalarNsPerQuery: scMed,
		SlicedNsPerQuery: slMed,
		Speedup:          scMed / slMed,
	}
	t := &Table{
		ID:    "preprocess",
		Title: "Bit-sliced partition routing: lookup cost and end-to-end throughput",
		Cols:  []string{"route ns/q", "Kq/s"},
	}

	// End-to-end: identical engines, identical query stream, only the
	// routing flavor differs.
	sigs, keys := ds.Slice(0.25)
	queries := ds.Queries(4096, 0.25, -1, p.Seed+4000)
	for _, flavor := range []struct {
		name   string
		scalar bool
	}{{"scalar", true}, {"sliced", false}} {
		eng, devs, err := BuildEngine(EngineSpec{
			Sigs: sigs, Keys: keys, Threads: p.Threads, GPUs: p.GPUs,
			MaxP:   ds.BaseMaxP(),
			Mutate: func(c *core.Config) { c.ScalarRouting = flavor.scalar },
		})
		if err != nil {
			panic(err)
		}
		run := PreprocessRun{Routing: flavor.name}
		var qps []float64
		for rep := 0; rep < reps; rep++ {
			r := MeasureEngine(eng, queries, p.Queries, false)
			qps = append(qps, r.QPS)
			run.RunsQPS = append(run.RunsQPS, r.QPS)
		}
		st := eng.Stats()
		run.RouteMergeLocks, run.RouteAppends = st.RouteMergeLocks, st.RouteAppends
		eng.Close()
		closeDevices(devs)
		run.QPS = medianFloat(qps)
		res.E2E = append(res.E2E, run)

		nsPerQ := scMed
		if !flavor.scalar {
			nsPerQ = slMed
		}
		t.Add(fmt.Sprintf("%s routing", flavor.name), nsPerQ, run.QPS/1e3)
	}
	t.Note("routing lookup: %.0f ns/q scalar -> %.0f ns/q sliced (%.1fx) over %d partitions; median of %d runs",
		scMed, slMed, res.Speedup, partitions, reps)
	if len(res.E2E) == 2 && res.E2E[1].RouteMergeLocks > 0 {
		t.Note("batch merge amortization: %.1f appends per partition-lock acquisition",
			float64(res.E2E[1].RouteAppends)/float64(res.E2E[1].RouteMergeLocks))
	}
	return t, res
}

func medianFloat(v []float64) float64 {
	s := SortedCopy(v)
	return s[len(s)/2]
}

// WriteJSON writes the result as indented JSON.
func (r *PreprocessResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
