package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func demoTable() *Table {
	t := &Table{ID: "demo", Title: "demo table", Cols: []string{"a", "b"}}
	t.Add("row one", 1.5, 2)
	t.Add("row two", 1000, 0.25)
	t.Note("a note")
	return t
}

func TestJSONRoundTrip(t *testing.T) {
	src := demoTable()
	var buf bytes.Buffer
	if err := src.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != src.ID || back.Title != src.Title || len(back.Rows) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Rows[1].Values[0] != 1000 || back.Rows[0].Values[1] != 2 {
		t.Fatalf("round trip lost values: %+v", back.Rows)
	}
	if len(back.Notes) != 1 || back.Notes[0] != "a note" {
		t.Fatalf("round trip lost notes: %v", back.Notes)
	}
}

func TestDecodeJSONTableErrors(t *testing.T) {
	if _, err := DecodeJSONTable(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "series,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "row one,1.5,2" {
		t.Fatalf("row = %q", lines[1])
	}
}
