package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Add(5)
	if m.Count() != 15 {
		t.Fatalf("Count = %d", m.Count())
	}
	if got := m.RateOver(3 * time.Second); got != 5 {
		t.Fatalf("RateOver = %v", got)
	}
	if m.RateOver(0) != 0 {
		t.Fatal("zero duration should give zero rate")
	}
	if m.Rate() <= 0 {
		t.Fatal("Rate should be positive after events")
	}
}

func TestLatenciesEmpty(t *testing.T) {
	l := NewLatencies()
	if l.Percentile(0.5) != 0 || l.Max() != 0 || l.Count() != 0 {
		t.Fatal("empty distribution should report zeros")
	}
	if s := l.Summarize(); s.Count != 0 {
		t.Fatalf("summary of empty = %+v", s)
	}
}

func TestLatenciesPercentiles(t *testing.T) {
	l := NewLatencies()
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.Percentile(0.5); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v", got)
	}
	if got := l.Percentile(0.99); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := l.Percentile(0); got != time.Millisecond {
		t.Fatalf("P0 = %v", got)
	}
	if got := l.Percentile(1); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v", got)
	}
	s := l.Summarize()
	if s.Count != 100 || s.Median != 50*time.Millisecond || s.P99 != 99*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
}

func TestLatenciesConcurrent(t *testing.T) {
	l := NewLatencies()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("Count = %d", l.Count())
	}
}

func TestLatenciesSingleAndDuplicates(t *testing.T) {
	l := NewLatencies()
	l.Observe(7 * time.Millisecond)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := l.Percentile(p); got != 7*time.Millisecond {
			t.Fatalf("single-sample P%v = %v", p*100, got)
		}
	}
	for i := 0; i < 9; i++ {
		l.Observe(7 * time.Millisecond)
	}
	if got := l.Percentile(0.5); got != 7*time.Millisecond {
		t.Fatalf("duplicate-sample P50 = %v", got)
	}
	if s := l.Summarize(); s.Count != 10 || s.Max != 7*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
}

func TestLatenciesMerge(t *testing.T) {
	a, b := NewLatencies(), NewLatencies()
	for i := 1; i <= 50; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Percentile(0.5); got != 50*time.Millisecond {
		t.Fatalf("merged P50 = %v", got)
	}
	if got := a.Max(); got != 100*time.Millisecond {
		t.Fatalf("merged max = %v", got)
	}
	if b.Count() != 50 {
		t.Fatalf("merge mutated source: %d", b.Count())
	}

	// Merging an empty distribution is a no-op; merging into empty copies.
	empty := NewLatencies()
	a.Merge(empty)
	if a.Count() != 100 {
		t.Fatalf("count after empty merge = %d", a.Count())
	}
	empty.Merge(b)
	if empty.Count() != 50 {
		t.Fatalf("empty after merge = %d", empty.Count())
	}
}

func TestLatenciesConcurrentMerge(t *testing.T) {
	dst := NewLatencies()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := NewLatencies()
			for i := 0; i < 500; i++ {
				src.Observe(time.Microsecond)
			}
			dst.Merge(src)
		}()
	}
	wg.Wait()
	if dst.Count() != 2000 {
		t.Fatalf("Count = %d", dst.Count())
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.0 KiB",
		3 << 20:       "3.0 MiB",
		(3 << 30) / 2: "1.5 GiB",
		5 << 40:       "5.0 TiB",
	}
	for in, want := range cases {
		if got := FmtBytes(in); got != want {
			t.Errorf("FmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtRate(t *testing.T) {
	if got := FmtRate(268800); got != "268.8K/s" {
		t.Fatalf("got %q", got)
	}
	if got := FmtRate(2.5e6); got != "2.50M/s" {
		t.Fatalf("got %q", got)
	}
	if got := FmtRate(42); got != "42.0/s" {
		t.Fatalf("got %q", got)
	}
}
