// Package metrics provides the measurement utilities used by the
// benchmark harness: throughput meters, exact latency distributions with
// percentile queries (Fig 6 reports median, 99th percentile and maximum
// end-to-end latency), and byte-size formatting for the memory figures.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Meter counts events against a wall-clock window and reports rates.
type Meter struct {
	start time.Time
	count atomic.Int64
}

// NewMeter starts a meter at the current time.
func NewMeter() *Meter {
	return &Meter{start: time.Now()}
}

// Add records n events.
func (m *Meter) Add(n int64) { m.count.Add(n) }

// Count returns the number of recorded events.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.count.Load()) / el
}

// RateOver returns events per second over an explicit duration, for
// harnesses that time a phase precisely.
func (m *Meter) RateOver(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(m.count.Load()) / d.Seconds()
}

// Latencies collects an exact latency distribution. It is safe for
// concurrent Observe calls; percentile queries snapshot and sort.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatencies returns an empty distribution.
func NewLatencies() *Latencies {
	return &Latencies{}
}

// Observe records one sample.
func (l *Latencies) Observe(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// Count returns the number of samples.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// snapshotSorted returns a sorted copy of the samples.
func (l *Latencies) snapshotSorted() []time.Duration {
	l.mu.Lock()
	out := make([]time.Duration, len(l.samples))
	copy(out, l.samples)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-quantile (0 < p <= 1) by nearest-rank, or 0
// with no samples.
func (l *Latencies) Percentile(p float64) time.Duration {
	s := l.snapshotSorted()
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	rank := int(p*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Max returns the largest sample, or 0 with no samples.
func (l *Latencies) Max() time.Duration {
	s := l.snapshotSorted()
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Merge appends every sample of o into l (combining per-worker
// distributions before a percentile query).
func (l *Latencies) Merge(o *Latencies) {
	o.mu.Lock()
	samples := append([]time.Duration(nil), o.samples...)
	o.mu.Unlock()
	l.mu.Lock()
	l.samples = append(l.samples, samples...)
	l.mu.Unlock()
}

// Summary is a compact latency digest.
type Summary struct {
	Count            int
	Median, P99, Max time.Duration
}

// Summarize computes the digest Fig 6 reports per timeout setting.
func (l *Latencies) Summarize() Summary {
	s := l.snapshotSorted()
	if len(s) == 0 {
		return Summary{}
	}
	idx := func(p float64) time.Duration {
		r := int(p*float64(len(s))+0.5) - 1
		if r < 0 {
			r = 0
		}
		if r >= len(s) {
			r = len(s) - 1
		}
		return s[r]
	}
	return Summary{Count: len(s), Median: idx(0.5), P99: idx(0.99), Max: s[len(s)-1]}
}

// FmtBytes renders a byte count with a binary unit, e.g. "1.5 GiB".
func FmtBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FmtRate renders a per-second rate compactly, e.g. "268.8K/s".
func FmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fK/s", r/1e3)
	default:
		return fmt.Sprintf("%.1f/s", r)
	}
}
