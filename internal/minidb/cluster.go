package minidb

import (
	"fmt"
	"sync"
)

// Cluster is a sharded deployment: n independent server instances with
// documents distributed round-robin, and scatter-gather query routing —
// the setup of Fig 11 (all instances on one machine, query sent to every
// shard, results merged).
type Cluster struct {
	servers []*Server
	clients []*Client
	next    int
	mu      sync.Mutex
}

// NewCluster starts n server instances on ephemeral localhost ports and
// connects a client to each.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("minidb: cluster needs at least 1 instance")
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		srv, err := NewServer("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		cl, err := Dial(srv.Addr())
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Size returns the number of instances.
func (c *Cluster) Size() int { return len(c.servers) }

// Insert routes one document to the next shard round-robin.
func (c *Cluster) Insert(key uint32, tags []string) error {
	c.mu.Lock()
	cl := c.clients[c.next%len(c.clients)]
	c.next++
	c.mu.Unlock()
	return cl.Insert(key, tags)
}

// InsertLocal loads a document directly into a shard's store, bypassing
// the wire — used to populate large benchmark databases quickly without
// changing query-path behavior.
func (c *Cluster) InsertLocal(key uint32, tags []string) error {
	c.mu.Lock()
	srv := c.servers[c.next%len(c.servers)]
	c.next++
	c.mu.Unlock()
	return srv.Store().Insert(key, tags)
}

// Query scatter-gathers one subset query across every shard and merges
// the keys.
func (c *Cluster) Query(tags []string) ([]uint32, error) {
	type shardResult struct {
		keys []uint32
		err  error
	}
	results := make([]shardResult, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			keys, err := cl.Query(tags)
			results[i] = shardResult{keys, err}
		}(i, cl)
	}
	wg.Wait()
	var out []uint32
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.keys...)
	}
	return out, nil
}

// Count sums the shard collection sizes.
func (c *Cluster) Count() (int, error) {
	total := 0
	for _, cl := range c.clients {
		n, err := cl.Count()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Close tears down clients and servers.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	c.clients, c.servers = nil, nil
}
