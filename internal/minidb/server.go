package minidb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Wire protocol: newline-delimited JSON requests and responses over TCP,
// one request in flight per connection (the paper used the MongoDB Java
// API over a localhost TCP socket the same way).
type request struct {
	Op   string   `json:"op"` // "insert", "query", "count"
	Key  uint32   `json:"k,omitempty"`
	Tags []string `json:"t,omitempty"`
}

type response struct {
	OK    bool     `json:"ok"`
	Err   string   `json:"err,omitempty"`
	Keys  []uint32 `json:"keys,omitempty"`
	Count int      `json:"n,omitempty"`
}

// Server exposes a Store over TCP.
type Server struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer starts a server on addr ("127.0.0.1:0" for an ephemeral
// port) with a fresh store.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("minidb: listen: %w", err)
	}
	s := &Server{store: NewStore(), ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the underlying collection (for tests and direct loads).
func (s *Server) Store() *Store { return s.store }

// Close stops accepting, closes live connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken pipe: drop the connection
		}
		var resp response
		switch req.Op {
		case "insert":
			if err := s.store.Insert(req.Key, req.Tags); err != nil {
				resp.Err = err.Error()
			} else {
				resp.OK = true
			}
		case "query":
			keys, err := s.store.QuerySubset(req.Tags)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.OK = true
				resp.Keys = keys
			}
		case "count":
			resp.OK = true
			resp.Count = s.store.Len()
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client is a blocking single-connection client.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	w    *bufio.Writer
	mu   sync.Mutex
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("minidb: dial %s: %w", addr, err)
	}
	w := bufio.NewWriterSize(conn, 64<<10)
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(w),
		dec:  json.NewDecoder(bufio.NewReaderSize(conn, 64<<10)),
		w:    w,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("minidb: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return response{}, fmt.Errorf("minidb: flush: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("minidb: server closed connection")
		}
		return response{}, fmt.Errorf("minidb: receive: %w", err)
	}
	if !resp.OK {
		return response{}, fmt.Errorf("minidb: server error: %s", resp.Err)
	}
	return resp, nil
}

// Insert stores one document.
func (c *Client) Insert(key uint32, tags []string) error {
	_, err := c.roundTrip(request{Op: "insert", Key: key, Tags: tags})
	return err
}

// Query returns the keys of all documents whose tags are a subset of the
// query tags.
func (c *Client) Query(tags []string) ([]uint32, error) {
	resp, err := c.roundTrip(request{Op: "query", Tags: tags})
	return resp.Keys, err
}

// Count returns the collection size.
func (c *Client) Count() (int, error) {
	resp, err := c.roundTrip(request{Op: "count"})
	return resp.Count, err
}
