package minidb

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func sortU32(s []uint32) { sort.Slice(s, func(i, j int) bool { return s[i] < s[j] }) }

func TestStoreQuerySubset(t *testing.T) {
	s := NewStore()
	mustInsert := func(k uint32, tags ...string) {
		t.Helper()
		if err := s.Insert(k, tags); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert(1, "a", "b")
	mustInsert(2, "a")
	mustInsert(3, "c")
	mustInsert(4, "a", "b", "c")

	got, err := s.QuerySubset([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	sortU32(got)
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("got %v, want [1 2]", got)
	}

	got, _ = s.QuerySubset([]string{"a", "b", "c", "d"})
	sortU32(got)
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("got %v", got)
	}

	if got, _ := s.QuerySubset([]string{"z"}); len(got) != 0 {
		t.Fatalf("got %v, want none", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not accounted")
	}
}

func TestStoreEmptyTagsDocMatchesAll(t *testing.T) {
	s := NewStore()
	if err := s.Insert(9, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := s.QuerySubset([]string{"whatever"})
	if fmt.Sprint(got) != "[9]" {
		t.Fatalf("empty tag set should match any query: %v", got)
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Insert(1, []string{"go", "gpu"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(2, []string{"go"}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.Count()
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	keys, err := cl.Query([]string{"go", "gpu", "eurosys"})
	if err != nil {
		t.Fatal(err)
	}
	sortU32(keys)
	if fmt.Sprint(keys) != "[1 2]" {
		t.Fatalf("keys = %v", keys)
	}
	keys, _ = cl.Query([]string{"go"})
	if fmt.Sprint(keys) != "[2]" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestServerMultipleClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				if err := cl.Insert(uint32(g*1000+i), []string{"t", fmt.Sprint(g)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := srv.Store().Len(); n != 400 {
		t.Fatalf("Len = %d, want 400", n)
	}
}

func TestClusterShardingAndScatterGather(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	for i := 0; i < 100; i++ {
		tags := []string{"common"}
		if i%2 == 0 {
			tags = append(tags, "even")
		}
		if err := c.Insert(uint32(i), tags); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin sharding: each shard holds 25 documents.
	total := 0
	for _, srv := range c.servers {
		n := srv.Store().Len()
		if n != 25 {
			t.Fatalf("shard holds %d docs, want 25", n)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
	keys, err := c.Query([]string{"common", "even"})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 100 {
		t.Fatalf("scatter-gather returned %d keys, want 100", len(keys))
	}
	keys, _ = c.Query([]string{"common"})
	if len(keys) != 50 {
		t.Fatalf("returned %d keys, want 50 (odd docs only)", len(keys))
	}
	n, err := c.Count()
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestClusterInsertLocal(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.InsertLocal(uint32(i), []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.Query([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 {
		t.Fatalf("got %d keys", len(keys))
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero-instance cluster should fail")
	}
}

func TestClientErrorOnClosedServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv.Close()
	if _, err := cl.Query([]string{"a"}); err == nil {
		t.Fatal("query against closed server should fail")
	}
}

func BenchmarkStoreScan10K(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		s.Insert(uint32(i), []string{fmt.Sprintf("t%d", i%97), fmt.Sprintf("t%d", i%31), "common"})
	}
	q := []string{"common", "t1", "t2", "t3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QuerySubset(q); err != nil {
			b.Fatal(err)
		}
	}
}
