// Package minidb is a small general-purpose document store standing in
// for MongoDB in the paper's comparison (§4.4).
//
// The original evaluation ran MongoDB 3.2.10 on a RAM disk with an index
// on the tag array and queried it with the subset operator through a TCP
// client. Its defining performance traits, which Figs 10 and 11 report
// and this package reproduces mechanistically, are:
//
//   - subset-containment queries cannot use the tag index (an inverted
//     index accelerates membership, not containment), so every query is
//     a full collection scan;
//   - each scanned document is decoded from its serialized (BSON-like,
//     here JSON) form, making the scan cost per document large and the
//     throughput insensitive to the number of tags per set or per query;
//   - queries arrive over a TCP connection, adding a per-query round
//     trip;
//   - sharding distributes the collection over instances and
//     scatter-gathers each query, scaling until coordination and the
//     per-instance fixed costs dominate.
//
// The store is deliberately honest — it really parses every document on
// every scan — because the comparison is about architecture, not about
// a crippled competitor.
package minidb

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Document is one stored entry: an application key and its tag set.
type Document struct {
	Key  uint32   `json:"k"`
	Tags []string `json:"t"`
}

// Store is an in-memory collection of serialized documents.
type Store struct {
	mu   sync.RWMutex
	docs [][]byte
}

// NewStore returns an empty collection.
func NewStore() *Store {
	return &Store{}
}

// Insert appends one document.
func (s *Store) Insert(key uint32, tags []string) error {
	raw, err := json.Marshal(Document{Key: key, Tags: tags})
	if err != nil {
		return fmt.Errorf("minidb: encoding document: %w", err)
	}
	s.mu.Lock()
	s.docs = append(s.docs, raw)
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// QuerySubset returns the keys of every document whose tag set is a
// subset of the query tags — a full collection scan with per-document
// decode, the execution plan a document store is left with for
// containment predicates.
func (s *Store) QuerySubset(queryTags []string) ([]uint32, error) {
	qset := make(map[string]struct{}, len(queryTags))
	for _, t := range queryTags {
		qset[t] = struct{}{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint32
	for _, raw := range s.docs {
		var doc Document
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("minidb: corrupt document: %w", err)
		}
		match := true
		for _, t := range doc.Tags {
			if _, ok := qset[t]; !ok {
				match = false
				break
			}
		}
		if match {
			out = append(out, doc.Key)
		}
	}
	return out, nil
}

// MemoryBytes estimates the collection's resident size.
func (s *Store) MemoryBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.docs {
		n += int64(len(d)) + 24
	}
	return n
}
