package tagmatch_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"tagmatch"
	"tagmatch/internal/workload"
)

// TestIntegrationTwitterWorkload drives the public API with the paper's
// generated workload end to end: load interests for a few thousand
// users, consolidate, stream tweets, and verify a sample of results
// against a brute-force scan of the loaded interests.
func TestIntegrationTwitterWorkload(t *testing.T) {
	gen, err := workload.New(workload.NewConfig(3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tagmatch.New(tagmatch.Config{
		GPUs: 2, Threads: 4, BatchSize: 64,
		BatchTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var all []workload.Interest
	gen.Generate(3000, func(in workload.Interest) {
		eng.AddSet(in.Tags, tagmatch.Key(in.User))
		all = append(all, in)
	})
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}

	// Brute-force reference over the original tag sets, answering in
	// Bloom space (signature containment) exactly as the engine does.
	ref := func(q []string) []tagmatch.Key {
		qset := map[string]bool{}
		for _, tag := range q {
			qset[tag] = true
		}
		seen := map[tagmatch.Key]bool{}
		var out []tagmatch.Key
		for _, in := range all {
			ok := true
			for _, tag := range in.Tags {
				if !qset[tag] {
					ok = false
					break
				}
			}
			if ok && !seen[tagmatch.Key(in.User)] {
				seen[tagmatch.Key(in.User)] = true
				out = append(out, tagmatch.Key(in.User))
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	rng := rand.New(rand.NewSource(12))
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := map[int][]tagmatch.Key{}
	var tweets [][]string
	for i := 0; i < 400; i++ {
		base := all[rng.Intn(len(all))]
		tweet := gen.Query(rng, base.Tags, -1)
		tweets = append(tweets, tweet)
		i := i
		wg.Add(1)
		if err := eng.SubmitUnique(tweet, func(r tagmatch.MatchResult) {
			mu.Lock()
			results[i] = r.Keys
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	wg.Wait()

	mismatches := 0
	for i, tweet := range tweets {
		got := append([]tagmatch.Key(nil), results[i]...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		want := ref(tweet)
		// Bloom false positives may add keys (never drop them); with the
		// generated vocabulary they are vanishingly rare, so demand
		// near-exact agreement and zero losses.
		if len(got) < len(want) {
			t.Fatalf("tweet %d: engine returned %d keys, reference %d (lost matches)", i, len(got), len(want))
		}
		wantSet := map[tagmatch.Key]bool{}
		for _, k := range want {
			wantSet[k] = true
		}
		extra := 0
		for _, k := range got {
			if !wantSet[k] {
				extra++
			}
		}
		if extra > 0 {
			mismatches += extra
		}
	}
	// Bloom false positives at m=192/k=7: interests one tag away from
	// containment slip through with probability ≈7e-5 each; across 400
	// ~8-tag tweets against thousands of correlated interests a handful
	// of extras is expected. A large count would indicate a broken hash.
	if mismatches > 25 {
		t.Fatalf("%d unexpected extra keys across 400 tweets: false-positive rate too high", mismatches)
	}

	st := eng.Stats()
	if st.QueriesCompleted != 400 {
		t.Fatalf("completed %d queries", st.QueriesCompleted)
	}
	if st.BatchesDispatched == 0 || st.PairsProduced == 0 {
		t.Fatalf("pipeline idle: %+v", st)
	}
}

// TestIntegrationExactVerify runs the same flow with ExactVerify and
// demands perfect agreement with the string-level reference.
func TestIntegrationExactVerify(t *testing.T) {
	gen, err := workload.New(workload.NewConfig(1500, 13))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tagmatch.New(tagmatch.Config{
		GPUs: 1, Threads: 2, BatchSize: 32, ExactVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var all []workload.Interest
	gen.Generate(1500, func(in workload.Interest) {
		eng.AddSet(in.Tags, tagmatch.Key(in.User))
		all = append(all, in)
	})
	if err := eng.Consolidate(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 100; i++ {
		tweet := gen.Query(rng, all[rng.Intn(len(all))].Tags, -1)
		got, err := eng.MatchUnique(tweet)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })

		qset := map[string]bool{}
		for _, tag := range tweet {
			qset[tag] = true
		}
		seen := map[tagmatch.Key]bool{}
		var want []tagmatch.Key
		for _, in := range all {
			ok := true
			for _, tag := range in.Tags {
				if !qset[tag] {
					ok = false
					break
				}
			}
			if ok && !seen[tagmatch.Key(in.User)] {
				seen[tagmatch.Key(in.User)] = true
				want = append(want, tagmatch.Key(in.User))
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			t.Fatalf("tweet %d: got %d keys, want %d (exact mode must be exact)", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tweet %d key %d: got %d want %d", i, j, got[j], want[j])
			}
		}
	}
}
