package tagmatch_test

import (
	"fmt"
	"log"
	"sort"

	"tagmatch"
)

// Example demonstrates the complete lifecycle: stage interests,
// consolidate, and run match and match-unique queries.
func Example() {
	eng, err := tagmatch.New(tagmatch.Config{GPUs: 1, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	eng.AddSet([]string{"go", "gpu"}, 1001)
	eng.AddSet([]string{"go"}, 1002)
	eng.AddSet([]string{"cooking"}, 1003)
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	keys, err := eng.MatchUnique([]string{"go", "gpu", "eurosys"})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Println(keys)
	// Output: [1001 1002]
}

// ExampleEngine_Submit shows streaming queries for throughput: results
// arrive asynchronously via the callback.
func ExampleEngine_Submit() {
	eng, err := tagmatch.New(tagmatch.Config{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	eng.AddSet([]string{"alerts", "eu-west"}, 7)
	if err := eng.Consolidate(); err != nil {
		log.Fatal(err)
	}

	done := make(chan int, 1)
	err = eng.Submit([]string{"alerts", "eu-west", "sev1"}, func(r tagmatch.MatchResult) {
		done <- len(r.Keys)
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.Drain()
	fmt.Println(<-done)
	// Output: 1
}
